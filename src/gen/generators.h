#ifndef SWDB_GEN_GENERATORS_H_
#define SWDB_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "util/rng.h"

namespace swdb {

/// Parameters for random simple graphs.
struct RandomGraphSpec {
  uint32_t num_nodes = 20;
  uint32_t num_triples = 40;
  uint32_t num_predicates = 4;
  /// Fraction of nodes that are blank nodes.
  double blank_ratio = 0.3;
};

/// A random simple graph: num_triples edges drawn uniformly over
/// num_nodes nodes (a blank_ratio fraction of them blank) and
/// num_predicates predicates. Deterministic given the Rng state.
Graph RandomSimpleGraph(const RandomGraphSpec& spec, Dictionary* dict,
                        Rng* rng);

/// A chain of n sc triples c_0 sc c_1 sc ... sc c_n. Its RDFS closure
/// has Θ(n²) sc triples — the worst-case shape of Thm 3.6(3).
Graph ScChain(uint32_t n, Dictionary* dict);

/// A chain of n sp triples p_0 sp ... sp p_n plus `uses` triples
/// (x_i, p_0, y_i). Rule (3) propagates every use up the whole chain, so
/// the closure has Θ(n · uses) derived triples.
Graph SpChainWithUses(uint32_t n, uint32_t uses, Dictionary* dict);

/// Parameters for a synthetic RDFS schema-plus-instance workload, shaped
/// like the paper's Fig. 1 art example: a class tree connected by sc, a
/// property tree connected by sp, dom/range assertions tying properties
/// to classes, typed instances, and property assertions between them.
struct SchemaWorkloadSpec {
  uint32_t num_classes = 10;
  uint32_t num_properties = 6;
  uint32_t num_instances = 30;
  uint32_t num_facts = 60;      ///< property assertions between instances
  double typed_fraction = 0.8;  ///< instances with an explicit type triple
  double blank_instance_ratio = 0.1;
};

/// Generates the schema workload described by spec.
Graph SchemaWorkload(const SchemaWorkloadSpec& spec, Dictionary* dict,
                     Rng* rng);

/// A blank-node chain _:b0 -p-> _:b1 -p-> ... of length n (no
/// blank-induced cycles, so entailment from it is polynomial; §2.4).
Graph BlankChain(uint32_t n, Term predicate, Dictionary* dict);

/// A blank-node symmetric cycle of length n over one predicate —
/// the blank-induced-cycle shape that defeats acyclic evaluation.
Graph BlankCycle(uint32_t n, Term predicate, Dictionary* dict);

/// Derives a pattern query from a data graph: samples `body_size`
/// triples and replaces each term with a variable with probability
/// var_ratio (consistently per term). The head repeats the body. The
/// query is guaranteed to have at least one matching in `data`.
Query PatternQueryFromGraph(const Graph& data, uint32_t body_size,
                            double var_ratio, Dictionary* dict, Rng* rng);

/// Parameters for an overlapping multi-query workload: num_families
/// shapes, each spawning queries_per_family variants that share the
/// family's prefix_size-triple connected body prefix and differ in a
/// suffix_size-triple residual suffix. An isomorphic_fraction of the
/// variants are exact variable-respellings of an earlier variant in the
/// same family (ViewKey-isomorphic, so batch evaluation dedupes them).
struct QueryMixSpec {
  uint32_t num_families = 8;
  uint32_t queries_per_family = 8;
  uint32_t prefix_size = 2;
  uint32_t suffix_size = 2;
  double isomorphic_fraction = 0.25;
  /// Probability that a non-predicate data term becomes a variable.
  double var_ratio = 0.6;
};

/// Generates spec.num_families × spec.queries_per_family premise-free
/// queries over `data` (head repeats body, so every query is safe and
/// head-blank-free). Variants of one family literally share the family's
/// prefix pattern triples, so a shared-prefix trie can align them; each
/// query has at least one matching in `data` by construction.
std::vector<Query> OverlappingQueryMix(const Graph& data,
                                       const QueryMixSpec& spec,
                                       Dictionary* dict, Rng* rng);

/// Applies `mutations` random equivalence-preserving rewrites to g:
/// adding a triple derivable from g (rules (2)–(13)) or duplicating a
/// triple with a fresh blank in a blank position (a specialization-adding
/// map image). The result is RDFS-equivalent to g by construction; used
/// by normal-form and answer-invariance property tests.
Graph EquivalentMutation(const Graph& g, uint32_t mutations,
                         Dictionary* dict, Rng* rng);

}  // namespace swdb

#endif  // SWDB_GEN_GENERATORS_H_
