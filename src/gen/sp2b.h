#ifndef SWDB_GEN_SP2B_H_
#define SWDB_GEN_SP2B_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/rng.h"

namespace swdb {

/// Parameters of the SP²Bench-style DBLP-shaped corpus (Schmidt et al.,
/// arXiv:0806.4627, adapted to this library's IRI/blank model — no
/// literals, years and titles are IRIs).
///
/// The corpus is year-partitioned: publications are generated year by
/// year with a geometrically growing yearly volume, venues (journals,
/// proceedings) are minted per year, and authorship / citation targets
/// are drawn by Pólya-urn preferential attachment so author degrees and
/// citation in-degrees follow the scale-free distributions SP²Bench
/// measured on real DBLP. Generation is deterministic given the spec
/// (the seed is part of it) and the dictionary state.
struct Sp2bSpec {
  /// Stop once at least this many triples have been emitted (the
  /// overshoot is at most one publication's triples, well under 1%).
  uint64_t target_triples = 1'000'000;
  uint64_t seed = 1;

  uint32_t start_year = 1950;
  /// Publications in the first year; later years grow geometrically.
  uint32_t base_papers_per_year = 40;
  double yearly_growth = 1.12;
  /// Fraction of publications that are journal articles (the rest are
  /// inproceedings).
  double article_fraction = 0.6;
  /// Venues minted per year.
  uint32_t journals_per_year = 2;
  uint32_t proceedings_per_year = 3;

  /// Chance that an author slot mints a brand-new author instead of
  /// drawing from the preferential-attachment urn.
  double new_author_chance = 0.35;
  /// Author-list length is 1 + Geometric(author_tail_chance), capped.
  double author_tail_chance = 0.55;
  uint32_t max_authors_per_paper = 8;
  /// Fraction of newly minted authors that are blank nodes (anonymous
  /// authors). Zero keeps the corpus ground, which keeps nf(D) = cl(D)
  /// and makes serving-scale core builds trivial.
  double blank_author_fraction = 0.0;

  /// Outgoing-citation count is Geometric(citation_tail_chance), capped
  /// (and further capped by the number of existing papers). Targets are
  /// drawn preferentially, so in-degrees are power-law.
  double citation_tail_chance = 0.75;
  uint32_t max_citations_per_paper = 24;
};

/// The interned vocabulary of the corpus: classes wired into an
/// rdfs:subClassOf tree, properties with dom/range assertions, and one
/// sp edge (firstAuthor sp creator) so the RDFS rules have real work.
struct Sp2bVocab {
  // Classes.
  Term document, publication, article, inproceedings, journal, proceedings,
      person;
  // Properties.
  Term creator;       ///< publication -> author
  Term first_author;  ///< publication -> author; sp creator
  Term references;    ///< publication -> publication (citation)
  Term venue;         ///< publication -> journal / proceedings
  Term issued;        ///< publication or venue -> year
  Term editor;        ///< venue -> author
};

/// Deterministic, seedable scale-free DBLP-style triple generator.
///
/// Usage:
///   Sp2bGenerator gen(spec, &dict);
///   Graph corpus = gen.GenerateCorpus();          // >= target_triples
///   std::vector<Triple> delta = gen.NextPublications(256);  // stream
///
/// NextPublications continues the year sequence past the corpus — the
/// writer stream of a serving run appends "new publications" whose
/// citations still point at existing papers only. Entity pools
/// (authors(), papers(), ...) grow as generation proceeds; callers that
/// share them with concurrent readers must copy them while the
/// generator is quiescent.
class Sp2bGenerator {
 public:
  /// Interns the vocabulary and schema terms; emits no triples yet.
  /// The dictionary must outlive the generator.
  Sp2bGenerator(const Sp2bSpec& spec, Dictionary* dict);

  /// The schema plus publications up to spec.target_triples, as one
  /// graph. Call at most once, before any NextPublications.
  Graph GenerateCorpus();

  /// Generates publications until at least `min_triples` new triples
  /// exist (whole publications only, so the result overshoots by at
  /// most one publication). Returns the new triples.
  std::vector<Triple> NextPublications(size_t min_triples);

  const Sp2bSpec& spec() const { return spec_; }
  const Sp2bVocab& vocab() const { return vocab_; }

  /// Entity pools in mint order (stable prefixes: existing entries
  /// never move as generation proceeds).
  const std::vector<Term>& authors() const { return authors_; }
  const std::vector<Term>& papers() const { return papers_; }
  const std::vector<Term>& journals() const { return journals_; }
  const std::vector<Term>& proceedings() const { return proceedings_; }

  /// The interned year IRI (years are entities here, not literals).
  Term YearTerm(uint32_t year);
  /// The year the next publication will be issued in.
  uint32_t current_year() const { return year_; }
  /// Triples emitted so far (schema included once GenerateCorpus or the
  /// first NextPublications ran).
  uint64_t triples_emitted() const { return emitted_; }

 private:
  void EmitSchema(std::vector<Triple>* out);
  void EmitPaper(std::vector<Triple>* out);
  void EmitYearVenues(std::vector<Triple>* out);
  // One author slot: fresh mint or preferential draw.
  Term DrawAuthor(std::vector<Triple>* out);
  // Appends whole publications (advancing years) until `min` new
  // triples were emitted into *out.
  void Emit(size_t min, std::vector<Triple>* out);

  Sp2bSpec spec_;
  Dictionary* dict_;
  Sp2bVocab vocab_;
  Rng rng_;

  bool schema_emitted_ = false;
  uint64_t emitted_ = 0;

  uint32_t year_;
  uint32_t papers_left_in_year_ = 0;  // 0 forces a year advance
  double papers_per_year_;

  std::vector<Term> authors_;
  std::vector<Term> papers_;
  std::vector<Term> journals_;
  std::vector<Term> proceedings_;
  // Per-year venue pools the current year's publications draw from.
  std::vector<Term> year_journals_;
  std::vector<Term> year_proceedings_;

  // Pólya urns: one entry per authorship / citation event plus one per
  // mint, so uniform draws are preferential-attachment draws.
  std::vector<uint32_t> author_urn_;    // indexes into authors_
  std::vector<uint32_t> citation_urn_;  // indexes into papers_

  uint64_t next_author_id_ = 0;
  uint64_t next_paper_id_ = 0;
  uint64_t next_venue_id_ = 0;
};

}  // namespace swdb

#endif  // SWDB_GEN_SP2B_H_
