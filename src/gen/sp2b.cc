#include "gen/sp2b.h"

#include <cmath>
#include <utility>

#include "util/str.h"

namespace swdb {

namespace {
// A small slack on top of the target so GenerateCorpus rarely
// reallocates: one year of venues plus one maximal publication.
constexpr size_t kReserveSlack = 128;
}  // namespace

Sp2bGenerator::Sp2bGenerator(const Sp2bSpec& spec, Dictionary* dict)
    : spec_(spec),
      dict_(dict),
      rng_(spec.seed),
      year_(spec.start_year),
      papers_per_year_(spec.base_papers_per_year < 1
                           ? 1.0
                           : static_cast<double>(spec.base_papers_per_year)) {
  vocab_.document = dict_->Iri("sp2b:Document");
  vocab_.publication = dict_->Iri("sp2b:Publication");
  vocab_.article = dict_->Iri("sp2b:Article");
  vocab_.inproceedings = dict_->Iri("sp2b:Inproceedings");
  vocab_.journal = dict_->Iri("sp2b:Journal");
  vocab_.proceedings = dict_->Iri("sp2b:Proceedings");
  vocab_.person = dict_->Iri("sp2b:Person");
  vocab_.creator = dict_->Iri("sp2b:creator");
  vocab_.first_author = dict_->Iri("sp2b:firstAuthor");
  vocab_.references = dict_->Iri("sp2b:references");
  vocab_.venue = dict_->Iri("sp2b:venue");
  vocab_.issued = dict_->Iri("sp2b:issued");
  vocab_.editor = dict_->Iri("sp2b:editor");
}

Term Sp2bGenerator::YearTerm(uint32_t year) {
  return dict_->Iri(NumberedName("sp2b:year", year));
}

void Sp2bGenerator::EmitSchema(std::vector<Triple>* out) {
  const Sp2bVocab& v = vocab_;
  // Class tree.
  out->push_back(Triple(v.publication, vocab::kSc, v.document));
  out->push_back(Triple(v.article, vocab::kSc, v.publication));
  out->push_back(Triple(v.inproceedings, vocab::kSc, v.publication));
  out->push_back(Triple(v.journal, vocab::kSc, v.document));
  out->push_back(Triple(v.proceedings, vocab::kSc, v.document));
  // Property tree: firstAuthor refines creator, so rule (sp) derives a
  // creator edge for every firstAuthor edge.
  out->push_back(Triple(v.first_author, vocab::kSp, v.creator));
  // Domains and ranges: rules (dom)/(range) type every paper, person
  // and venue from the instance edges alone.
  out->push_back(Triple(v.creator, vocab::kDom, v.publication));
  out->push_back(Triple(v.creator, vocab::kRange, v.person));
  out->push_back(Triple(v.references, vocab::kDom, v.publication));
  out->push_back(Triple(v.references, vocab::kRange, v.publication));
  out->push_back(Triple(v.venue, vocab::kDom, v.publication));
  out->push_back(Triple(v.editor, vocab::kDom, v.document));
  out->push_back(Triple(v.editor, vocab::kRange, v.person));
}

Term Sp2bGenerator::DrawAuthor(std::vector<Triple>* out) {
  if (authors_.empty() || rng_.Chance(spec_.new_author_chance)) {
    const uint64_t id = next_author_id_++;
    const Term a = rng_.Chance(spec_.blank_author_fraction)
                       ? dict_->Blank(NumberedName("sp2b_author", id))
                       : dict_->Iri(NumberedName("sp2b:author", id));
    const uint32_t idx = static_cast<uint32_t>(authors_.size());
    authors_.push_back(a);
    author_urn_.push_back(idx);
    out->push_back(Triple(a, vocab::kType, vocab_.person));
    return a;
  }
  const uint32_t idx = author_urn_[rng_.Below(author_urn_.size())];
  author_urn_.push_back(idx);  // rich get richer
  return authors_[idx];
}

void Sp2bGenerator::EmitYearVenues(std::vector<Triple>* out) {
  const Term yr = YearTerm(year_);
  year_journals_.clear();
  year_proceedings_.clear();
  for (uint32_t i = 0; i < spec_.journals_per_year; ++i) {
    const Term j = dict_->Iri(NumberedName("sp2b:journal", next_venue_id_++));
    out->push_back(Triple(j, vocab::kType, vocab_.journal));
    out->push_back(Triple(j, vocab_.issued, yr));
    out->push_back(Triple(j, vocab_.editor, DrawAuthor(out)));
    journals_.push_back(j);
    year_journals_.push_back(j);
  }
  for (uint32_t i = 0; i < spec_.proceedings_per_year; ++i) {
    const Term p =
        dict_->Iri(NumberedName("sp2b:proceedings", next_venue_id_++));
    out->push_back(Triple(p, vocab::kType, vocab_.proceedings));
    out->push_back(Triple(p, vocab_.issued, yr));
    out->push_back(Triple(p, vocab_.editor, DrawAuthor(out)));
    proceedings_.push_back(p);
    year_proceedings_.push_back(p);
  }
}

void Sp2bGenerator::EmitPaper(std::vector<Triple>* out) {
  const bool is_article =
      !year_journals_.empty() &&
      (year_proceedings_.empty() || rng_.Chance(spec_.article_fraction));
  const Term paper = dict_->Iri(NumberedName("sp2b:paper", next_paper_id_++));
  out->push_back(Triple(
      paper, vocab::kType, is_article ? vocab_.article : vocab_.inproceedings));
  out->push_back(Triple(paper, vocab_.issued, YearTerm(year_)));
  const std::vector<Term>& venues =
      is_article ? year_journals_ : year_proceedings_;
  if (!venues.empty()) {
    out->push_back(
        Triple(paper, vocab_.venue, venues[rng_.Below(venues.size())]));
  }

  // Author list: 1 + Geometric(author_tail_chance), capped; duplicate
  // urn draws collapse so the list is a set.
  uint32_t want_authors = 1;
  while (want_authors < spec_.max_authors_per_paper &&
         rng_.Chance(spec_.author_tail_chance)) {
    ++want_authors;
  }
  Term coauthors[/*max_authors_per_paper bound*/ 64];
  uint32_t n_authors = 0;
  for (uint32_t i = 0; i < want_authors && i < 64; ++i) {
    const Term a = DrawAuthor(out);
    bool dup = false;
    for (uint32_t j = 0; j < n_authors; ++j) dup = dup || coauthors[j] == a;
    if (dup) continue;
    coauthors[n_authors++] = a;
    out->push_back(
        Triple(paper, i == 0 ? vocab_.first_author : vocab_.creator, a));
  }

  // Citations: Geometric(citation_tail_chance) targets drawn from the
  // urn of already-emitted papers — preferential attachment, and no
  // dangling targets (the urn never holds this paper yet).
  if (!citation_urn_.empty()) {
    uint32_t want_cites = 0;
    while (want_cites < spec_.max_citations_per_paper &&
           rng_.Chance(spec_.citation_tail_chance)) {
      ++want_cites;
    }
    uint32_t targets[/*max_citations_per_paper bound*/ 64];
    uint32_t n_cites = 0;
    for (uint32_t i = 0; i < want_cites && i < 64; ++i) {
      const uint32_t idx = citation_urn_[rng_.Below(citation_urn_.size())];
      bool dup = false;
      for (uint32_t j = 0; j < n_cites; ++j) dup = dup || targets[j] == idx;
      if (dup) continue;
      targets[n_cites++] = idx;
      out->push_back(Triple(paper, vocab_.references, papers_[idx]));
      citation_urn_.push_back(idx);  // rich get richer
    }
  }

  const uint32_t self = static_cast<uint32_t>(papers_.size());
  papers_.push_back(paper);
  citation_urn_.push_back(self);
}

void Sp2bGenerator::Emit(size_t min, std::vector<Triple>* out) {
  const size_t start = out->size();
  while (out->size() - start < min) {
    if (papers_left_in_year_ == 0) {
      if (!schema_emitted_) {
        EmitSchema(out);
        schema_emitted_ = true;
      } else {
        ++year_;
      }
      papers_left_in_year_ =
          static_cast<uint32_t>(papers_per_year_ < 1.0 ? 1.0 : papers_per_year_);
      papers_per_year_ *= spec_.yearly_growth;
      EmitYearVenues(out);
    }
    EmitPaper(out);
    --papers_left_in_year_;
  }
  emitted_ += out->size() - start;
}

Graph Sp2bGenerator::GenerateCorpus() {
  std::vector<Triple> v;
  v.reserve(static_cast<size_t>(spec_.target_triples) + kReserveSlack);
  Emit(static_cast<size_t>(spec_.target_triples), &v);
  return Graph(std::move(v));
}

std::vector<Triple> Sp2bGenerator::NextPublications(size_t min_triples) {
  std::vector<Triple> v;
  v.reserve(min_triples + kReserveSlack);
  Emit(min_triples, &v);
  return v;
}

}  // namespace swdb
