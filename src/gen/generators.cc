#include "gen/generators.h"

#include <string>

#include "inference/rules.h"
#include "util/str.h"

namespace swdb {

namespace {

std::vector<Term> MakeNodes(uint32_t count, double blank_ratio,
                            const std::string& prefix, Dictionary* dict,
                            Rng* rng) {
  std::vector<Term> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (rng->Chance(blank_ratio)) {
      nodes.push_back(dict->FreshBlank());
    } else {
      nodes.push_back(dict->Iri(prefix + std::to_string(i)));
    }
  }
  return nodes;
}

std::vector<Term> MakePredicates(uint32_t count, const std::string& prefix,
                                 Dictionary* dict) {
  std::vector<Term> preds;
  preds.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    preds.push_back(dict->Iri(prefix + std::to_string(i)));
  }
  return preds;
}

}  // namespace

Graph RandomSimpleGraph(const RandomGraphSpec& spec, Dictionary* dict,
                        Rng* rng) {
  std::vector<Term> nodes =
      MakeNodes(spec.num_nodes, spec.blank_ratio, "urn:n", dict, rng);
  std::vector<Term> preds =
      MakePredicates(spec.num_predicates, "urn:p", dict);
  Graph g;
  for (uint32_t i = 0; i < spec.num_triples; ++i) {
    Term s = nodes[rng->Below(nodes.size())];
    Term p = preds[rng->Below(preds.size())];
    Term o = nodes[rng->Below(nodes.size())];
    g.Insert(s, p, o);
  }
  return g;
}

Graph ScChain(uint32_t n, Dictionary* dict) {
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(dict->Iri(NumberedName("urn:c", i)), vocab::kSc,
             dict->Iri(NumberedName("urn:c", i + 1)));
  }
  return g;
}

Graph SpChainWithUses(uint32_t n, uint32_t uses, Dictionary* dict) {
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(dict->Iri(NumberedName("urn:sp", i)), vocab::kSp,
             dict->Iri(NumberedName("urn:sp", i + 1)));
  }
  Term base = dict->Iri("urn:sp0");
  for (uint32_t i = 0; i < uses; ++i) {
    g.Insert(dict->Iri(NumberedName("urn:ux", i)), base,
             dict->Iri(NumberedName("urn:uy", i)));
  }
  return g;
}

Graph SchemaWorkload(const SchemaWorkloadSpec& spec, Dictionary* dict,
                     Rng* rng) {
  Graph g;
  std::vector<Term> classes =
      MakePredicates(spec.num_classes, "urn:class", dict);
  std::vector<Term> props =
      MakePredicates(spec.num_properties, "urn:prop", dict);
  std::vector<Term> instances = MakeNodes(
      spec.num_instances, spec.blank_instance_ratio, "urn:inst", dict, rng);

  // Class tree: each class (except the root) subclasses a random earlier
  // one, giving an acyclic sc forest.
  for (uint32_t i = 1; i < classes.size(); ++i) {
    g.Insert(classes[i], vocab::kSc, classes[rng->Below(i)]);
  }
  // Property tree via sp, plus dom/range into random classes.
  for (uint32_t i = 0; i < props.size(); ++i) {
    if (i > 0) g.Insert(props[i], vocab::kSp, props[rng->Below(i)]);
    g.Insert(props[i], vocab::kDom, classes[rng->Below(classes.size())]);
    g.Insert(props[i], vocab::kRange, classes[rng->Below(classes.size())]);
  }
  // Typed instances.
  for (Term instance : instances) {
    if (rng->Chance(spec.typed_fraction)) {
      g.Insert(instance, vocab::kType, classes[rng->Below(classes.size())]);
    }
  }
  // Facts.
  for (uint32_t i = 0; i < spec.num_facts; ++i) {
    g.Insert(instances[rng->Below(instances.size())],
             props[rng->Below(props.size())],
             instances[rng->Below(instances.size())]);
  }
  return g;
}

Graph BlankChain(uint32_t n, Term predicate, Dictionary* dict) {
  Graph g;
  Term prev = dict->FreshBlank();
  for (uint32_t i = 0; i < n; ++i) {
    Term next = dict->FreshBlank();
    g.Insert(prev, predicate, next);
    prev = next;
  }
  return g;
}

Graph BlankCycle(uint32_t n, Term predicate, Dictionary* dict) {
  std::vector<Term> blanks;
  blanks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) blanks.push_back(dict->FreshBlank());
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(blanks[i], predicate, blanks[(i + 1) % n]);
  }
  return g;
}

Query PatternQueryFromGraph(const Graph& data, uint32_t body_size,
                            double var_ratio, Dictionary* dict, Rng* rng) {
  Query q;
  if (data.empty()) return q;
  std::unordered_map<Term, Term> to_var;
  uint32_t var_counter = 0;
  uint64_t tag = rng->Next() % 1000000;
  auto varify = [&](Term t, bool is_predicate) -> Term {
    auto it = to_var.find(t);
    if (it != to_var.end()) return it->second;
    // Blank nodes cannot appear in bodies; always replace them.
    bool replace = t.IsBlank() || rng->Chance(var_ratio);
    // Keep predicates concrete more often to produce selective queries.
    if (is_predicate && !t.IsBlank() && rng->Chance(0.5)) replace = false;
    if (!replace) return t;
    Term v = dict->Var(NumberedName("q", tag) + "_" +
                       std::to_string(var_counter++));
    to_var.emplace(t, v);
    return v;
  };
  // Sample triples via a random walk biased toward connectivity.
  std::vector<Triple> sampled;
  for (uint32_t i = 0; i < body_size; ++i) {
    sampled.push_back(data[rng->Below(data.size())]);
  }
  for (const Triple& t : sampled) {
    Triple pattern(varify(t.s, false), varify(t.p, true), varify(t.o, false));
    q.body.Insert(pattern);
  }
  q.head = q.body;
  return q;
}

Graph EquivalentMutation(const Graph& g, uint32_t mutations,
                         Dictionary* dict, Rng* rng) {
  Graph out = g;
  for (uint32_t i = 0; i < mutations; ++i) {
    if (rng->Chance(0.5)) {
      // Add one triple derivable by a single rule application.
      std::vector<RuleApplication> apps = EnumerateApplications(out);
      if (!apps.empty()) {
        const RuleApplication& app = apps[rng->Below(apps.size())];
        for (const Triple& c : app.conclusions) out.Insert(c);
        continue;
      }
    }
    // Add a redundant specialization: copy a triple, replacing one
    // blank-eligible position with a fresh blank. The fresh-blank copy
    // maps back onto the original, so equivalence is preserved.
    if (out.empty()) continue;
    Triple t = out[rng->Below(out.size())];
    Term fresh = dict->FreshBlank();
    if (rng->Chance(0.5)) {
      out.Insert(Triple(fresh, t.p, t.o));
    } else {
      out.Insert(Triple(t.s, t.p, fresh));
    }
  }
  return out;
}

}  // namespace swdb
