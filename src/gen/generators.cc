#include "gen/generators.h"

#include <string>
#include <unordered_set>
#include <utility>

#include "inference/rules.h"
#include "util/str.h"

namespace swdb {

namespace {

std::vector<Term> MakeNodes(uint32_t count, double blank_ratio,
                            const std::string& prefix, Dictionary* dict,
                            Rng* rng) {
  std::vector<Term> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (rng->Chance(blank_ratio)) {
      nodes.push_back(dict->FreshBlank());
    } else {
      nodes.push_back(dict->Iri(prefix + std::to_string(i)));
    }
  }
  return nodes;
}

std::vector<Term> MakePredicates(uint32_t count, const std::string& prefix,
                                 Dictionary* dict) {
  std::vector<Term> preds;
  preds.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    preds.push_back(dict->Iri(prefix + std::to_string(i)));
  }
  return preds;
}

}  // namespace

Graph RandomSimpleGraph(const RandomGraphSpec& spec, Dictionary* dict,
                        Rng* rng) {
  std::vector<Term> nodes =
      MakeNodes(spec.num_nodes, spec.blank_ratio, "urn:n", dict, rng);
  std::vector<Term> preds =
      MakePredicates(spec.num_predicates, "urn:p", dict);
  Graph g;
  for (uint32_t i = 0; i < spec.num_triples; ++i) {
    Term s = nodes[rng->Below(nodes.size())];
    Term p = preds[rng->Below(preds.size())];
    Term o = nodes[rng->Below(nodes.size())];
    g.Insert(s, p, o);
  }
  return g;
}

Graph ScChain(uint32_t n, Dictionary* dict) {
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(dict->Iri(NumberedName("urn:c", i)), vocab::kSc,
             dict->Iri(NumberedName("urn:c", i + 1)));
  }
  return g;
}

Graph SpChainWithUses(uint32_t n, uint32_t uses, Dictionary* dict) {
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(dict->Iri(NumberedName("urn:sp", i)), vocab::kSp,
             dict->Iri(NumberedName("urn:sp", i + 1)));
  }
  Term base = dict->Iri("urn:sp0");
  for (uint32_t i = 0; i < uses; ++i) {
    g.Insert(dict->Iri(NumberedName("urn:ux", i)), base,
             dict->Iri(NumberedName("urn:uy", i)));
  }
  return g;
}

Graph SchemaWorkload(const SchemaWorkloadSpec& spec, Dictionary* dict,
                     Rng* rng) {
  Graph g;
  std::vector<Term> classes =
      MakePredicates(spec.num_classes, "urn:class", dict);
  std::vector<Term> props =
      MakePredicates(spec.num_properties, "urn:prop", dict);
  std::vector<Term> instances = MakeNodes(
      spec.num_instances, spec.blank_instance_ratio, "urn:inst", dict, rng);

  // Class tree: each class (except the root) subclasses a random earlier
  // one, giving an acyclic sc forest.
  for (uint32_t i = 1; i < classes.size(); ++i) {
    g.Insert(classes[i], vocab::kSc, classes[rng->Below(i)]);
  }
  // Property tree via sp, plus dom/range into random classes.
  for (uint32_t i = 0; i < props.size(); ++i) {
    if (i > 0) g.Insert(props[i], vocab::kSp, props[rng->Below(i)]);
    g.Insert(props[i], vocab::kDom, classes[rng->Below(classes.size())]);
    g.Insert(props[i], vocab::kRange, classes[rng->Below(classes.size())]);
  }
  // Typed instances.
  for (Term instance : instances) {
    if (rng->Chance(spec.typed_fraction)) {
      g.Insert(instance, vocab::kType, classes[rng->Below(classes.size())]);
    }
  }
  // Facts.
  for (uint32_t i = 0; i < spec.num_facts; ++i) {
    g.Insert(instances[rng->Below(instances.size())],
             props[rng->Below(props.size())],
             instances[rng->Below(instances.size())]);
  }
  return g;
}

Graph BlankChain(uint32_t n, Term predicate, Dictionary* dict) {
  Graph g;
  Term prev = dict->FreshBlank();
  for (uint32_t i = 0; i < n; ++i) {
    Term next = dict->FreshBlank();
    g.Insert(prev, predicate, next);
    prev = next;
  }
  return g;
}

Graph BlankCycle(uint32_t n, Term predicate, Dictionary* dict) {
  std::vector<Term> blanks;
  blanks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) blanks.push_back(dict->FreshBlank());
  Graph g;
  for (uint32_t i = 0; i < n; ++i) {
    g.Insert(blanks[i], predicate, blanks[(i + 1) % n]);
  }
  return g;
}

Query PatternQueryFromGraph(const Graph& data, uint32_t body_size,
                            double var_ratio, Dictionary* dict, Rng* rng) {
  Query q;
  if (data.empty()) return q;
  std::unordered_map<Term, Term> to_var;
  uint32_t var_counter = 0;
  uint64_t tag = rng->Next() % 1000000;
  auto varify = [&](Term t, bool is_predicate) -> Term {
    auto it = to_var.find(t);
    if (it != to_var.end()) return it->second;
    // Blank nodes cannot appear in bodies; always replace them.
    bool replace = t.IsBlank() || rng->Chance(var_ratio);
    // Keep predicates concrete more often to produce selective queries.
    if (is_predicate && !t.IsBlank() && rng->Chance(0.5)) replace = false;
    if (!replace) return t;
    Term v = dict->Var(NumberedName("q", tag) + "_" +
                       std::to_string(var_counter++));
    to_var.emplace(t, v);
    return v;
  };
  // Sample triples via a random walk biased toward connectivity.
  std::vector<Triple> sampled;
  for (uint32_t i = 0; i < body_size; ++i) {
    sampled.push_back(data[rng->Below(data.size())]);
  }
  for (const Triple& t : sampled) {
    Triple pattern(varify(t.s, false), varify(t.p, true), varify(t.o, false));
    q.body.Insert(pattern);
  }
  q.head = q.body;
  return q;
}

namespace {

// Samples `count` triples from data, biased toward connectivity: after
// the first, each pick retries a few times for a triple sharing a term
// with one already chosen, falling back to a random triple.
std::vector<Triple> SampleConnectedTriples(const Graph& data, uint32_t count,
                                           Rng* rng) {
  std::vector<Triple> chosen;
  std::unordered_set<Term> seen_terms;
  auto note = [&](const Triple& t) {
    chosen.push_back(t);
    seen_terms.insert(t.s);
    seen_terms.insert(t.p);
    seen_terms.insert(t.o);
  };
  note(data[rng->Below(data.size())]);
  while (chosen.size() < count) {
    Triple pick = data[rng->Below(data.size())];
    for (int attempt = 0; attempt < 8; ++attempt) {
      Triple t = data[rng->Below(data.size())];
      if (seen_terms.count(t.s) || seen_terms.count(t.o)) {
        pick = t;
        break;
      }
    }
    note(pick);
  }
  return chosen;
}

// Renames every variable of q consistently to fresh "<tag>_<k>" names,
// producing a ViewKey-isomorphic respelling.
Query RespellVariables(const Query& q, const std::string& tag,
                       Dictionary* dict) {
  std::unordered_map<Term, Term> rename;
  uint32_t counter = 0;
  auto fresh = [&](Term t) -> Term {
    if (!t.IsVar()) return t;
    auto it = rename.find(t);
    if (it != rename.end()) return it->second;
    Term v = dict->Var(tag + "_" + std::to_string(counter++));
    rename.emplace(t, v);
    return v;
  };
  Query out;
  for (const Triple& t : q.body.triples()) {
    out.body.Insert(fresh(t.s), fresh(t.p), fresh(t.o));
  }
  for (const Triple& t : q.head.triples()) {
    out.head.Insert(fresh(t.s), fresh(t.p), fresh(t.o));
  }
  return out;
}

}  // namespace

std::vector<Query> OverlappingQueryMix(const Graph& data,
                                       const QueryMixSpec& spec,
                                       Dictionary* dict, Rng* rng) {
  std::vector<Query> out;
  if (data.empty()) return out;
  for (uint32_t f = 0; f < spec.num_families; ++f) {
    // The family fixes its prefix patterns once — variants reuse the
    // exact same Triple values (same Var terms), so their ordered bodies
    // align on this prefix by construction. Each query scopes its own
    // variables, so reusing names across queries is harmless.
    std::unordered_map<Term, Term> to_var;
    uint32_t var_counter = 0;
    auto varify = [&](Term t, bool is_predicate, const std::string& scope) {
      auto it = to_var.find(t);
      if (it != to_var.end()) return it->second;
      // Blank nodes cannot appear in bodies; always replace them.
      bool replace = t.IsBlank() || rng->Chance(spec.var_ratio);
      // Keep predicates concrete to produce selective, alignable prefixes.
      if (is_predicate && !t.IsBlank()) replace = false;
      if (!replace) return t;
      Term v = dict->Var(scope + "_" + std::to_string(var_counter++));
      to_var.emplace(t, v);
      return v;
    };
    std::vector<Triple> prefix_data =
        SampleConnectedTriples(data, spec.prefix_size, rng);
    std::string family_scope = NumberedName("f", f);
    std::vector<Triple> prefix_patterns;
    std::unordered_set<Term> prefix_terms;
    for (const Triple& t : prefix_data) {
      prefix_patterns.emplace_back(varify(t.s, false, family_scope),
                                   varify(t.p, true, family_scope),
                                   varify(t.o, false, family_scope));
      prefix_terms.insert(t.s);
      prefix_terms.insert(t.o);
    }
    std::vector<Query> family;
    for (uint32_t v = 0; v < spec.queries_per_family; ++v) {
      if (!family.empty() && rng->Chance(spec.isomorphic_fraction)) {
        out.push_back(RespellVariables(family[rng->Below(family.size())],
                                       family_scope + NumberedName("r", v),
                                       dict));
        continue;
      }
      // Variant-specific suffix: sampled connected to the prefix terms
      // and varified through the family map (shared data terms join the
      // suffix to the prefix variables), with fresh terms scoped to the
      // variant. Restore the family map afterwards so variants stay
      // independent.
      std::unordered_map<Term, Term> family_map = to_var;
      uint32_t family_counter = var_counter;
      Query q;
      for (const Triple& t : prefix_patterns) q.body.Insert(t);
      std::string variant_scope = family_scope + NumberedName("v", v);
      for (uint32_t s = 0; s < spec.suffix_size; ++s) {
        Triple pick = data[rng->Below(data.size())];
        for (int attempt = 0; attempt < 8; ++attempt) {
          Triple t = data[rng->Below(data.size())];
          if (prefix_terms.count(t.s) || prefix_terms.count(t.o)) {
            pick = t;
            break;
          }
        }
        q.body.Insert(varify(pick.s, false, variant_scope),
                      varify(pick.p, true, variant_scope),
                      varify(pick.o, false, variant_scope));
      }
      to_var = std::move(family_map);
      var_counter = family_counter;
      q.head = q.body;
      family.push_back(q);
      out.push_back(q);
    }
  }
  return out;
}

Graph EquivalentMutation(const Graph& g, uint32_t mutations,
                         Dictionary* dict, Rng* rng) {
  Graph out = g;
  for (uint32_t i = 0; i < mutations; ++i) {
    if (rng->Chance(0.5)) {
      // Add one triple derivable by a single rule application.
      std::vector<RuleApplication> apps = EnumerateApplications(out);
      if (!apps.empty()) {
        const RuleApplication& app = apps[rng->Below(apps.size())];
        for (const Triple& c : app.conclusions) out.Insert(c);
        continue;
      }
    }
    // Add a redundant specialization: copy a triple, replacing one
    // blank-eligible position with a fresh blank. The fresh-blank copy
    // maps back onto the original, so equivalence is preserved.
    if (out.empty()) continue;
    Triple t = out[rng->Below(out.size())];
    Term fresh = dict->FreshBlank();
    if (rng->Chance(0.5)) {
      out.Insert(Triple(fresh, t.p, t.o));
    } else {
      out.Insert(Triple(t.s, t.p, fresh));
    }
  }
  return out;
}

}  // namespace swdb
