#ifndef SWDB_GRAPHTHEORY_DIGRAPH_H_
#define SWDB_GRAPHTHEORY_DIGRAPH_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"

namespace swdb {

/// A standard directed graph H = (V, E) with V = {0, ..., node_count-1}
/// and E ⊆ V × V, as used by the paper's hardness constructions (§2.4).
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(uint32_t node_count) : node_count_(node_count) {}
  Digraph(uint32_t node_count,
          std::vector<std::pair<uint32_t, uint32_t>> edges);

  uint32_t node_count() const { return node_count_; }
  size_t edge_count() const { return edges_.size(); }
  const std::vector<std::pair<uint32_t, uint32_t>>& edges() const {
    return edges_;
  }
  /// Adds an edge (u, v); duplicates are ignored.
  void AddEdge(uint32_t u, uint32_t v);
  bool HasEdge(uint32_t u, uint32_t v) const;

  /// Out-neighbors of u.
  const std::vector<uint32_t>& OutNeighbors(uint32_t u) const;
  /// In-neighbors of u.
  const std::vector<uint32_t>& InNeighbors(uint32_t u) const;

  /// The complete symmetric digraph K_n without self-loops, with both
  /// edge directions — the standard target for n-colorability via
  /// homomorphism.
  static Digraph CompleteSymmetric(uint32_t n);

  /// A symmetric cycle of length n (both directions of each edge).
  static Digraph SymmetricCycle(uint32_t n);

  /// A directed path 0 → 1 → ... → n-1.
  static Digraph Path(uint32_t n);

 private:
  void InvalidateAdjacency();
  void EnsureAdjacency() const;

  uint32_t node_count_ = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges_;  // sorted, unique
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<uint32_t>> out_;
  mutable std::vector<std::vector<uint32_t>> in_;
};

/// A homomorphism h : H1 → H2 — h maps nodes so that every edge of H1 is
/// carried to an edge of H2. Backtracking search with most-constrained-
/// first ordering; std::nullopt if none exists.
std::optional<std::vector<uint32_t>> FindGraphHomomorphism(
    const Digraph& h1, const Digraph& h2);

/// True iff H1 is homomorphic to H2.
bool IsHomomorphic(const Digraph& h1, const Digraph& h2);

/// True iff H1 and H2 are homomorphically equivalent (maps both ways;
/// see the proof of paper Thm 2.9(2)).
bool HomomorphicallyEquivalent(const Digraph& h1, const Digraph& h2);

/// The graph-theoretic core of H: a minimal subgraph of H that is a
/// homomorphic image of H (Hell–Nešetřil; paper Thm 3.12 reduces to it).
/// Returned as a Digraph on the retained nodes, relabeled densely; the
/// retained original node ids are written to kept_nodes if non-null.
Digraph GraphCore(const Digraph& h, std::vector<uint32_t>* kept_nodes = nullptr);

/// The transitive reduction of an acyclic digraph: the unique minimal
/// subgraph with the same reachability relation (Aho–Garey–Ullman,
/// paper Ex. 3.14's cited result). Requires h acyclic.
Digraph TransitiveReduction(const Digraph& h);

/// True iff h has a directed cycle (self-loops count).
bool HasCycle(const Digraph& h);

/// enc(H): the RDF encoding of a standard graph used throughout the
/// paper's hardness proofs (§2.4) — one blank node X_v per node v, one
/// triple (X_u, e, X_v) per edge, with a single distinguished predicate.
/// Blank nodes are allocated from dict and returned in node_blanks
/// (index = node id) if non-null.
Graph EncodeAsRdf(const Digraph& h, Dictionary* dict, Term edge_predicate,
                  std::vector<Term>* node_blanks = nullptr);

}  // namespace swdb

#endif  // SWDB_GRAPHTHEORY_DIGRAPH_H_
