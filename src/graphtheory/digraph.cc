#include "graphtheory/digraph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <numeric>

namespace swdb {

Digraph::Digraph(uint32_t node_count,
                 std::vector<std::pair<uint32_t, uint32_t>> edges)
    : node_count_(node_count), edges_(std::move(edges)) {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  for ([[maybe_unused]] const auto& [u, v] : edges_) {
    assert(u < node_count_ && v < node_count_);
  }
}

void Digraph::AddEdge(uint32_t u, uint32_t v) {
  assert(u < node_count_ && v < node_count_);
  auto edge = std::make_pair(u, v);
  auto it = std::lower_bound(edges_.begin(), edges_.end(), edge);
  if (it != edges_.end() && *it == edge) return;
  edges_.insert(it, edge);
  InvalidateAdjacency();
}

bool Digraph::HasEdge(uint32_t u, uint32_t v) const {
  return std::binary_search(edges_.begin(), edges_.end(),
                            std::make_pair(u, v));
}

void Digraph::InvalidateAdjacency() { adjacency_valid_ = false; }

void Digraph::EnsureAdjacency() const {
  if (adjacency_valid_) return;
  out_.assign(node_count_, {});
  in_.assign(node_count_, {});
  for (const auto& [u, v] : edges_) {
    out_[u].push_back(v);
    in_[v].push_back(u);
  }
  adjacency_valid_ = true;
}

const std::vector<uint32_t>& Digraph::OutNeighbors(uint32_t u) const {
  EnsureAdjacency();
  return out_[u];
}

const std::vector<uint32_t>& Digraph::InNeighbors(uint32_t u) const {
  EnsureAdjacency();
  return in_[u];
}

Digraph Digraph::CompleteSymmetric(uint32_t n) {
  Digraph g(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < n; ++v) {
      if (u != v) g.AddEdge(u, v);
    }
  }
  return g;
}

Digraph Digraph::SymmetricCycle(uint32_t n) {
  Digraph g(n);
  for (uint32_t u = 0; u < n; ++u) {
    uint32_t v = (u + 1) % n;
    g.AddEdge(u, v);
    g.AddEdge(v, u);
  }
  return g;
}

Digraph Digraph::Path(uint32_t n) {
  Digraph g(n);
  for (uint32_t u = 0; u + 1 < n; ++u) g.AddEdge(u, u + 1);
  return g;
}

namespace {

// Backtracking homomorphism search over nodes, most-constrained-first.
class DigraphHomSearch {
 public:
  DigraphHomSearch(const Digraph& h1, const Digraph& h2)
      : h1_(h1), h2_(h2), assignment_(h1.node_count(), kUnassigned) {}

  std::optional<std::vector<uint32_t>> Find() {
    if (Search()) return assignment_;
    return std::nullopt;
  }

 private:
  static constexpr uint32_t kUnassigned =
      std::numeric_limits<uint32_t>::max();

  // Candidate check: u ↦ image consistent with already-assigned
  // neighbors.
  bool Consistent(uint32_t u, uint32_t image) const {
    for (uint32_t v : h1_.OutNeighbors(u)) {
      if (assignment_[v] != kUnassigned && !h2_.HasEdge(image, assignment_[v]))
        return false;
    }
    for (uint32_t v : h1_.InNeighbors(u)) {
      if (assignment_[v] != kUnassigned && !h2_.HasEdge(assignment_[v], image))
        return false;
    }
    // Self-loop.
    if (h1_.HasEdge(u, u) && !h2_.HasEdge(image, image)) return false;
    return true;
  }

  bool Search() {
    // Pick the unassigned node with most assigned neighbors (ties: max
    // degree).
    uint32_t pick = kUnassigned;
    int best_score = -1;
    for (uint32_t u = 0; u < h1_.node_count(); ++u) {
      if (assignment_[u] != kUnassigned) continue;
      int assigned_neighbors = 0;
      for (uint32_t v : h1_.OutNeighbors(u)) {
        assigned_neighbors += assignment_[v] != kUnassigned;
      }
      for (uint32_t v : h1_.InNeighbors(u)) {
        assigned_neighbors += assignment_[v] != kUnassigned;
      }
      int degree = static_cast<int>(h1_.OutNeighbors(u).size() +
                                    h1_.InNeighbors(u).size());
      int score = assigned_neighbors * 1024 + degree;
      if (score > best_score) {
        best_score = score;
        pick = u;
      }
    }
    if (pick == kUnassigned) return true;  // all assigned

    for (uint32_t image = 0; image < h2_.node_count(); ++image) {
      if (!Consistent(pick, image)) continue;
      assignment_[pick] = image;
      if (Search()) return true;
      assignment_[pick] = kUnassigned;
    }
    return false;
  }

  const Digraph& h1_;
  const Digraph& h2_;
  std::vector<uint32_t> assignment_;
};

}  // namespace

std::optional<std::vector<uint32_t>> FindGraphHomomorphism(
    const Digraph& h1, const Digraph& h2) {
  if (h1.node_count() > 0 && h2.node_count() == 0) return std::nullopt;
  DigraphHomSearch search(h1, h2);
  return search.Find();
}

bool IsHomomorphic(const Digraph& h1, const Digraph& h2) {
  return FindGraphHomomorphism(h1, h2).has_value();
}

bool HomomorphicallyEquivalent(const Digraph& h1, const Digraph& h2) {
  return IsHomomorphic(h1, h2) && IsHomomorphic(h2, h1);
}

Digraph GraphCore(const Digraph& h, std::vector<uint32_t>* kept_nodes) {
  // Iteratively fold the graph onto proper subgraphs: find a retraction
  // that avoids some node, restrict, repeat.
  std::vector<uint32_t> nodes(h.node_count());
  std::iota(nodes.begin(), nodes.end(), 0);
  Digraph current = h;

  auto restrict_to = [](const Digraph& g, const std::vector<uint32_t>& keep) {
    std::vector<uint32_t> relabel(g.node_count(),
                                  std::numeric_limits<uint32_t>::max());
    for (uint32_t i = 0; i < keep.size(); ++i) relabel[keep[i]] = i;
    Digraph out(static_cast<uint32_t>(keep.size()));
    for (const auto& [u, v] : g.edges()) {
      if (relabel[u] != std::numeric_limits<uint32_t>::max() &&
          relabel[v] != std::numeric_limits<uint32_t>::max()) {
        out.AddEdge(relabel[u], relabel[v]);
      }
    }
    return out;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t drop = 0; drop < current.node_count(); ++drop) {
      // Try to map current into current \ {drop}.
      std::vector<uint32_t> keep;
      keep.reserve(current.node_count() - 1);
      for (uint32_t u = 0; u < current.node_count(); ++u) {
        if (u != drop) keep.push_back(u);
      }
      Digraph smaller = restrict_to(current, keep);
      if (IsHomomorphic(current, smaller)) {
        std::vector<uint32_t> new_nodes;
        new_nodes.reserve(keep.size());
        for (uint32_t u : keep) new_nodes.push_back(nodes[u]);
        nodes = std::move(new_nodes);
        current = std::move(smaller);
        changed = true;
        break;
      }
    }
  }
  if (kept_nodes != nullptr) *kept_nodes = nodes;
  return current;
}

bool HasCycle(const Digraph& h) {
  // Kahn's algorithm: a cycle exists iff topological sort is incomplete.
  std::vector<uint32_t> indegree(h.node_count(), 0);
  for (const auto& [u, v] : h.edges()) {
    (void)u;
    ++indegree[v];
  }
  std::deque<uint32_t> queue;
  for (uint32_t u = 0; u < h.node_count(); ++u) {
    if (indegree[u] == 0) queue.push_back(u);
  }
  uint32_t removed = 0;
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    ++removed;
    for (uint32_t v : h.OutNeighbors(u)) {
      if (--indegree[v] == 0) queue.push_back(v);
    }
  }
  return removed != h.node_count();
}

Digraph TransitiveReduction(const Digraph& h) {
  assert(!HasCycle(h) && "transitive reduction requires an acyclic digraph");
  // An edge (u, v) is redundant iff v is reachable from u without it —
  // equivalently (DAG) reachable from some other out-neighbor of u.
  const uint32_t n = h.node_count();
  // reach[u] = set of nodes reachable from u (inclusive), as bitsets.
  const size_t words = (n + 63) / 64;
  std::vector<std::vector<uint64_t>> reach(n,
                                           std::vector<uint64_t>(words, 0));
  // Process in reverse topological order.
  std::vector<uint32_t> order;
  {
    std::vector<uint32_t> indegree(n, 0);
    for (const auto& [u, v] : h.edges()) {
      (void)u;
      ++indegree[v];
    }
    std::deque<uint32_t> queue;
    for (uint32_t u = 0; u < n; ++u) {
      if (indegree[u] == 0) queue.push_back(u);
    }
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (uint32_t v : h.OutNeighbors(u)) {
        if (--indegree[v] == 0) queue.push_back(v);
      }
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    uint32_t u = *it;
    reach[u][u / 64] |= 1ULL << (u % 64);
    for (uint32_t v : h.OutNeighbors(u)) {
      for (size_t w = 0; w < words; ++w) reach[u][w] |= reach[v][w];
    }
  }
  Digraph out(n);
  for (const auto& [u, v] : h.edges()) {
    bool redundant = false;
    for (uint32_t w : h.OutNeighbors(u)) {
      if (w == v) continue;
      if (reach[w][v / 64] & (1ULL << (v % 64))) {
        redundant = true;
        break;
      }
    }
    if (!redundant) out.AddEdge(u, v);
  }
  return out;
}

Graph EncodeAsRdf(const Digraph& h, Dictionary* dict, Term edge_predicate,
                  std::vector<Term>* node_blanks) {
  std::vector<Term> blanks;
  blanks.reserve(h.node_count());
  for (uint32_t u = 0; u < h.node_count(); ++u) {
    (void)u;
    blanks.push_back(dict->FreshBlank());
  }
  std::vector<Triple> triples;
  triples.reserve(h.edge_count());
  for (const auto& [u, v] : h.edges()) {
    triples.emplace_back(blanks[u], edge_predicate, blanks[v]);
  }
  if (node_blanks != nullptr) *node_blanks = std::move(blanks);
  return Graph(std::move(triples));
}

}  // namespace swdb
