#ifndef SWDB_UTIL_HASH_H_
#define SWDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>

namespace swdb {

/// Mixes a new value into a running hash (boost::hash_combine style,
/// 64-bit constants).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// Hashes a pair of hashable values.
template <typename A, typename B>
size_t HashPair(const A& a, const B& b) {
  size_t seed = std::hash<A>()(a);
  HashCombine(&seed, std::hash<B>()(b));
  return seed;
}

/// Hashes a range of hashable values into `seed`, length included (so a
/// prefix and its extension never collide structurally).
template <typename It>
size_t HashRange(It first, It last, size_t seed = 0) {
  size_t n = 0;
  for (It it = first; it != last; ++it, ++n) {
    HashCombine(&seed, std::hash<typename std::iterator_traits<It>::value_type>()(*it));
  }
  HashCombine(&seed, n);
  return seed;
}

}  // namespace swdb

#endif  // SWDB_UTIL_HASH_H_
