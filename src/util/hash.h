#ifndef SWDB_UTIL_HASH_H_
#define SWDB_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace swdb {

/// Mixes a new value into a running hash (boost::hash_combine style,
/// 64-bit constants).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 12) + (*seed >> 4);
}

/// Hashes a pair of hashable values.
template <typename A, typename B>
size_t HashPair(const A& a, const B& b) {
  size_t seed = std::hash<A>()(a);
  HashCombine(&seed, std::hash<B>()(b));
  return seed;
}

}  // namespace swdb

#endif  // SWDB_UTIL_HASH_H_
