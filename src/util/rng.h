#ifndef SWDB_UTIL_RNG_H_
#define SWDB_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace swdb {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+).
///
/// All randomized components in the library (workload generators,
/// property-test drivers) take an explicit Rng so that runs are exactly
/// reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the two lanes.
    uint64_t z = seed;
    for (uint64_t* lane : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      *lane = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be nonzero
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool Chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Below(i)]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace swdb

#endif  // SWDB_UTIL_RNG_H_
