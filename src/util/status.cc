#include "util/status.h"

namespace swdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace swdb
