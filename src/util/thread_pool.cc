#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

namespace swdb {

ThreadPool::ThreadPool(size_t num_threads) {
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();  // inline mode
    return;
  }
  const size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(task));
  }
  // The queued_ bump happens under idle_mu_ so a worker checking the
  // predicate between its queue scan and its cv wait cannot miss it.
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::PopOwn(size_t q, std::function<void()>* out) {
  std::lock_guard<std::mutex> lock(queues_[q]->mu);
  if (queues_[q]->tasks.empty()) return false;
  *out = std::move(queues_[q]->tasks.back());
  queues_[q]->tasks.pop_back();
  return true;
}

bool ThreadPool::Steal(size_t self, std::function<void()>* out) {
  for (size_t i = 0; i < queues_.size(); ++i) {
    if (i == self) continue;
    std::lock_guard<std::mutex> lock(queues_[i]->mu);
    if (queues_[i]->tasks.empty()) continue;
    *out = std::move(queues_[i]->tasks.front());
    queues_[i]->tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  // Non-workers have no own queue; stealing scans every queue.
  if (!Steal(queues_.size(), &task)) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  std::function<void()> task;
  for (;;) {
    if (PopOwn(self, &task) || Steal(self, &task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_relaxed) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) {
    // A few chunks per participant for load balance; chunk boundaries
    // must not depend on worker count for deterministic consumers, so
    // callers that need that pass an explicit grain.
    const size_t participants = num_threads() + 1;
    grain = std::max<size_t>(1, n / (participants * 4));
  }
  if (threads_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  TaskGroup group(this);
  for (size_t begin = 0; begin < n; begin += grain) {
    const size_t end = std::min(n, begin + grain);
    group.Run([&fn, begin, end] { fn(begin, end); });
  }
  group.Wait();
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    size_t n = std::thread::hardware_concurrency();
    if (const char* env = std::getenv("SWDB_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 0) n = static_cast<size_t>(parsed);
    }
    return new ThreadPool(n);
  }();
  return pool;
}

void TaskGroup::Run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++outstanding_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    std::lock_guard<std::mutex> lock(mu_);
    if (--outstanding_ == 0) cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (outstanding_ == 0) return;
    }
    // Help drain the pool instead of blocking: keeps zero-worker pools
    // and nested groups (a worker waiting on its own fan-out) live.
    if (pool_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mu_);
    // Timed wait: the task this group is waiting on may be *running* on
    // another thread (nothing left to steal), but a fresh steal target
    // can also appear; poll between wakeups.
    cv_.wait_for(lock, std::chrono::milliseconds(1),
                 [this] { return outstanding_ == 0; });
    if (outstanding_ == 0) return;
  }
}

}  // namespace swdb
