#ifndef SWDB_UTIL_STATUS_H_
#define SWDB_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace swdb {

/// Error codes used across the library. The library avoids exceptions;
/// fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (e.g. ill-formed triple or query)
  kParseError,        ///< syntax error in a textual format
  kNotFound,          ///< a looked-up entity does not exist
  kLimitExceeded,     ///< a configured resource bound was hit
  kInternal,          ///< invariant violation; indicates a library bug
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error value, modeled on absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (checked by assert).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok() && "value() on errored Result");
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok() && "value() on errored Result");
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok() && "value() on errored Result");
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace swdb

#endif  // SWDB_UTIL_STATUS_H_
