#ifndef SWDB_UTIL_STR_H_
#define SWDB_UTIL_STR_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace swdb {

/// Builds "<prefix><n>" (optionally with a suffix). Exists instead of
/// `"prefix" + std::to_string(n)` because that expression trips a known
/// GCC 12 -Wrestrict false positive (PR105651) inside libstdc++'s
/// rvalue operator+; append-based construction keeps builds
/// warnings-clean.
inline std::string NumberedName(std::string_view prefix, uint64_t n,
                                std::string_view suffix = {}) {
  std::string out(prefix);
  out += std::to_string(n);
  out += suffix;
  return out;
}

}  // namespace swdb

#endif  // SWDB_UTIL_STR_H_
