#ifndef SWDB_UTIL_CHECK_H_
#define SWDB_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace swdb {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expression,
                                     const char* file, int line,
                                     const char* message) {
  std::fprintf(stderr, "SWDB_CHECK failed at %s:%d: %s\n  %s\n", file, line,
               expression, message);
  std::abort();
}

}  // namespace internal
}  // namespace swdb

/// Aborts (in every build mode) when the condition is false. Used where
/// a violated invariant must not silently degrade into a wrong answer —
/// e.g. a search-budget exhaustion inside a boolean decision procedure.
/// Callers that want graceful degradation use the *Checked / Result
/// variants of the same APIs instead.
#define SWDB_CHECK(condition, message)                                  \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::swdb::internal::CheckFailed(#condition, __FILE__, __LINE__,     \
                                    (message));                         \
    }                                                                   \
  } while (false)

#endif  // SWDB_UTIL_CHECK_H_
