#ifndef SWDB_UTIL_LOCK_RANK_H_
#define SWDB_UTIL_LOCK_RANK_H_

#include <cassert>
#include <vector>

namespace swdb {

/// Debug-only lock-order enforcement: each mutex is assigned a rank,
/// and a thread may only acquire a mutex whose rank is strictly greater
/// than every rank it already holds. Declare a LockRankScope right
/// after taking the lock (inside the lock_guard's scope, so ranks
/// release in acquisition-reverse order):
///
///   std::lock_guard<std::mutex> lock(write_mu_);
///   LockRankScope rank(kLockRankWrite);
///
/// Violations fire assert() — the checks (and the thread-local rank
/// stack) compile away entirely under NDEBUG.
#ifndef NDEBUG

namespace lock_rank_internal {
inline thread_local std::vector<int> held_ranks;
}  // namespace lock_rank_internal

class LockRankScope {
 public:
  explicit LockRankScope(int rank) : rank_(rank) {
    auto& held = lock_rank_internal::held_ranks;
    assert((held.empty() || held.back() < rank) &&
           "lock-order violation: acquired a lower- or equal-ranked "
           "mutex while holding a higher-ranked one");
    held.push_back(rank);
  }
  ~LockRankScope() {
    auto& held = lock_rank_internal::held_ranks;
    assert(!held.empty() && held.back() == rank_ &&
           "lock ranks must release in acquisition-reverse order");
    held.pop_back();
  }
  LockRankScope(const LockRankScope&) = delete;
  LockRankScope& operator=(const LockRankScope&) = delete;

 private:
  int rank_;
};

#else  // NDEBUG

class LockRankScope {
 public:
  explicit LockRankScope(int) {}
  LockRankScope(const LockRankScope&) = delete;
  LockRankScope& operator=(const LockRankScope&) = delete;
};

#endif  // NDEBUG

/// The documented Database ordering: write_mu_ before snapshot_mu_.
inline constexpr int kLockRankWrite = 1;
inline constexpr int kLockRankSnapshot = 2;

}  // namespace swdb

#endif  // SWDB_UTIL_LOCK_RANK_H_
