#ifndef SWDB_UTIL_THREAD_POOL_H_
#define SWDB_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace swdb {

/// Single-use countdown barrier: Wait() blocks until CountDown() has been
/// called `expected` times. The lightweight helper the pool's fan-out
/// primitives are built on (std::latch shape, but with no C++20 library
/// dependency beyond <condition_variable>).
class Latch {
 public:
  explicit Latch(size_t expected) : remaining_(expected) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t remaining_;
};

/// A fixed-size work-stealing thread pool with no external dependencies.
///
/// Each worker owns a deque: the owner pushes and pops at the back
/// (LIFO, cache-friendly for recursive fan-out), idle workers steal from
/// the front of a victim's deque (FIFO, takes the oldest — typically
/// largest — task). External submissions are distributed round-robin
/// across the deques.
///
/// Concurrency contract: Submit/TaskGroup/ParallelFor may be called from
/// any thread, including pool workers (a worker waiting on a TaskGroup
/// helps drain queued tasks instead of blocking, so nested fan-out does
/// not deadlock). A pool constructed with zero threads degrades to
/// inline execution — every primitive stays correct, just sequential.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means "no workers, run inline".
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. With zero workers the task runs inline, before
  /// Submit returns.
  void Submit(std::function<void()> task);

  /// Runs fn(begin, end) over a partition of [0, n) into contiguous
  /// chunks of at most `grain` indices (grain 0 picks a chunk size that
  /// yields a few chunks per worker). The calling thread participates;
  /// returns when every chunk has run. Chunk boundaries depend only on n
  /// and grain — never on the worker count — so callers that write
  /// results into chunk-indexed slots get deterministic output ordering
  /// regardless of parallelism.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// The process-wide pool, sized by the SWDB_THREADS environment
  /// variable if set, else std::thread::hardware_concurrency(). Lives
  /// until process exit.
  static ThreadPool* Shared();

 private:
  friend class TaskGroup;

  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  // Pops from the back of queue `q` (owner side).
  bool PopOwn(size_t q, std::function<void()>* out);
  // Steals from the front of any queue other than `self` (pass
  // num_threads() when the caller is not a worker).
  bool Steal(size_t self, std::function<void()>* out);
  // Runs one queued task on the calling thread if any is available —
  // the cooperative-helping hook used by TaskGroup::Wait.
  bool RunOneTask();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

/// Tracks a group of tasks submitted to a pool and joins them. Wait()
/// helps drain the pool's queues while the group is outstanding, so a
/// worker may safely fan out a nested group.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules fn on the pool as part of this group.
  void Run(std::function<void()> fn);

  /// Blocks until every task Run() so far has finished.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t outstanding_ = 0;
};

}  // namespace swdb

#endif  // SWDB_UTIL_THREAD_POOL_H_
