#include "inference/rules.h"

#include <algorithm>

namespace swdb {

using vocab::kDom;
using vocab::kRange;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

std::string RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kExistential:
      return "(1) existential";
    case RuleId::kSpTransitivity:
      return "(2) sp-transitivity";
    case RuleId::kSpInheritance:
      return "(3) sp-inheritance";
    case RuleId::kScTransitivity:
      return "(4) sc-transitivity";
    case RuleId::kScTyping:
      return "(5) sc-typing";
    case RuleId::kDomTyping:
      return "(6) dom-typing";
    case RuleId::kRangeTyping:
      return "(7) range-typing";
    case RuleId::kSpReflexFromUse:
      return "(8) sp-reflexivity-from-use";
    case RuleId::kSpReflexVocab:
      return "(9) sp-reflexivity-vocab";
    case RuleId::kSpReflexDomRange:
      return "(10) sp-reflexivity-dom-range";
    case RuleId::kSpReflexPair:
      return "(11) sp-reflexivity-pair";
    case RuleId::kScReflexFromUse:
      return "(12) sc-reflexivity-from-use";
    case RuleId::kScReflexPair:
      return "(13) sc-reflexivity-pair";
  }
  return "(?)";
}

namespace {

Status Bad(const RuleApplication& app, const std::string& why) {
  return Status::InvalidArgument("rule " + RuleName(app.rule) + ": " + why);
}

bool AllWellFormed(const std::vector<Triple>& ts) {
  return std::all_of(ts.begin(), ts.end(),
                     [](const Triple& t) { return t.IsWellFormedData(); });
}

}  // namespace

Status ValidateApplication(const RuleApplication& app) {
  if (!AllWellFormed(app.premises) || !AllWellFormed(app.conclusions)) {
    return Bad(app, "ill-formed triple in instantiation");
  }
  const auto& pr = app.premises;
  const auto& co = app.conclusions;
  auto need = [&](bool cond, const char* why) -> Status {
    return cond ? Status::OK() : Bad(app, why);
  };
  switch (app.rule) {
    case RuleId::kExistential:
      return Bad(app, "rule (1) is a map step, not a triple-adding rule");
    case RuleId::kSpTransitivity: {
      if (pr.size() != 2 || co.size() != 1) return Bad(app, "arity");
      const Triple &t1 = pr[0], &t2 = pr[1], &c = co[0];
      return need(t1.p == kSp && t2.p == kSp && c.p == kSp &&
                      t1.o == t2.s && c.s == t1.s && c.o == t2.o,
                  "(A,sp,B),(B,sp,C) => (A,sp,C) shape mismatch");
    }
    case RuleId::kSpInheritance: {
      if (pr.size() != 2 || co.size() != 1) return Bad(app, "arity");
      const Triple &t1 = pr[0], &t2 = pr[1], &c = co[0];
      return need(t1.p == kSp && t2.p == t1.s && c.p == t1.o &&
                      c.s == t2.s && c.o == t2.o,
                  "(A,sp,B),(X,A,Y) => (X,B,Y) shape mismatch");
    }
    case RuleId::kScTransitivity: {
      if (pr.size() != 2 || co.size() != 1) return Bad(app, "arity");
      const Triple &t1 = pr[0], &t2 = pr[1], &c = co[0];
      return need(t1.p == kSc && t2.p == kSc && c.p == kSc &&
                      t1.o == t2.s && c.s == t1.s && c.o == t2.o,
                  "(A,sc,B),(B,sc,C) => (A,sc,C) shape mismatch");
    }
    case RuleId::kScTyping: {
      if (pr.size() != 2 || co.size() != 1) return Bad(app, "arity");
      const Triple &t1 = pr[0], &t2 = pr[1], &c = co[0];
      return need(t1.p == kSc && t2.p == kType && t2.o == t1.s &&
                      c.p == kType && c.s == t2.s && c.o == t1.o,
                  "(A,sc,B),(X,type,A) => (X,type,B) shape mismatch");
    }
    case RuleId::kDomTyping: {
      if (pr.size() != 3 || co.size() != 1) return Bad(app, "arity");
      const Triple &t1 = pr[0], &t2 = pr[1], &t3 = pr[2], &c = co[0];
      return need(t1.p == kDom && t2.p == kSp && t2.o == t1.s &&
                      t3.p == t2.s && c.p == kType && c.s == t3.s &&
                      c.o == t1.o,
                  "(A,dom,B),(C,sp,A),(X,C,Y) => (X,type,B) shape mismatch");
    }
    case RuleId::kRangeTyping: {
      if (pr.size() != 3 || co.size() != 1) return Bad(app, "arity");
      const Triple &t1 = pr[0], &t2 = pr[1], &t3 = pr[2], &c = co[0];
      return need(t1.p == kRange && t2.p == kSp && t2.o == t1.s &&
                      t3.p == t2.s && c.p == kType && c.s == t3.o &&
                      c.o == t1.o,
                  "(A,range,B),(C,sp,A),(X,C,Y) => (Y,type,B) shape mismatch");
    }
    case RuleId::kSpReflexFromUse: {
      if (pr.size() != 1 || co.size() != 1) return Bad(app, "arity");
      const Triple &t = pr[0], &c = co[0];
      return need(c.p == kSp && c.s == t.p && c.o == t.p,
                  "(X,A,Y) => (A,sp,A) shape mismatch");
    }
    case RuleId::kSpReflexVocab: {
      if (!pr.empty() || co.size() != 1) return Bad(app, "arity");
      const Triple& c = co[0];
      return need(c.p == kSp && c.s == c.o && vocab::IsRdfsVocab(c.s),
                  "=> (p,sp,p), p in rdfsV shape mismatch");
    }
    case RuleId::kSpReflexDomRange: {
      if (pr.size() != 1 || co.size() != 1) return Bad(app, "arity");
      const Triple &t = pr[0], &c = co[0];
      return need((t.p == kDom || t.p == kRange) && c.p == kSp &&
                      c.s == t.s && c.o == t.s,
                  "(A,p,X) => (A,sp,A), p in {dom,range} shape mismatch");
    }
    case RuleId::kSpReflexPair: {
      if (pr.size() != 1 || co.size() != 2) return Bad(app, "arity");
      const Triple &t = pr[0], &c1 = co[0], &c2 = co[1];
      return need(t.p == kSp && c1.p == kSp && c2.p == kSp && c1.s == t.s &&
                      c1.o == t.s && c2.s == t.o && c2.o == t.o,
                  "(A,sp,B) => (A,sp,A),(B,sp,B) shape mismatch");
    }
    case RuleId::kScReflexFromUse: {
      if (pr.size() != 1 || co.size() != 1) return Bad(app, "arity");
      const Triple &t = pr[0], &c = co[0];
      return need((t.p == kDom || t.p == kRange || t.p == kType) &&
                      c.p == kSc && c.s == t.o && c.o == t.o,
                  "(X,p,A) => (A,sc,A), p in {dom,range,type} shape mismatch");
    }
    case RuleId::kScReflexPair: {
      if (pr.size() != 1 || co.size() != 2) return Bad(app, "arity");
      const Triple &t = pr[0], &c1 = co[0], &c2 = co[1];
      return need(t.p == kSc && c1.p == kSc && c2.p == kSc && c1.s == t.s &&
                      c1.o == t.s && c2.s == t.o && c2.o == t.o,
                  "(A,sc,B) => (A,sc,A),(B,sc,B) shape mismatch");
    }
  }
  return Bad(app, "unknown rule id");
}

std::vector<RuleApplication> EnumerateApplications(const Graph& g) {
  std::vector<RuleApplication> out;
  auto emit = [&](RuleId rule, std::vector<Triple> premises,
                  std::vector<Triple> conclusions) {
    bool all_known = std::all_of(
        conclusions.begin(), conclusions.end(),
        [&g](const Triple& t) { return g.Contains(t); });
    bool well_formed = AllWellFormed(conclusions);
    if (all_known || !well_formed) return;
    out.push_back(RuleApplication{rule, std::move(premises),
                                  std::move(conclusions)});
  };

  // Rule (9): no premises.
  for (Term v : vocab::kAll) {
    emit(RuleId::kSpReflexVocab, {}, {Triple(v, kSp, v)});
  }

  for (const Triple& t1 : g) {
    // Unary-premise rules.
    emit(RuleId::kSpReflexFromUse, {t1}, {Triple(t1.p, kSp, t1.p)});
    if (t1.p == kDom || t1.p == kRange) {
      emit(RuleId::kSpReflexDomRange, {t1}, {Triple(t1.s, kSp, t1.s)});
    }
    if (t1.p == kDom || t1.p == kRange || t1.p == kType) {
      emit(RuleId::kScReflexFromUse, {t1}, {Triple(t1.o, kSc, t1.o)});
    }
    if (t1.p == kSp) {
      emit(RuleId::kSpReflexPair, {t1},
           {Triple(t1.s, kSp, t1.s), Triple(t1.o, kSp, t1.o)});
    }
    if (t1.p == kSc) {
      emit(RuleId::kScReflexPair, {t1},
           {Triple(t1.s, kSc, t1.s), Triple(t1.o, kSc, t1.o)});
    }

    // Binary-premise rules.
    for (const Triple& t2 : g) {
      if (t1.p == kSp && t2.p == kSp && t1.o == t2.s) {
        emit(RuleId::kSpTransitivity, {t1, t2}, {Triple(t1.s, kSp, t2.o)});
      }
      if (t1.p == kSp && t2.p == t1.s) {
        emit(RuleId::kSpInheritance, {t1, t2}, {Triple(t2.s, t1.o, t2.o)});
      }
      if (t1.p == kSc && t2.p == kSc && t1.o == t2.s) {
        emit(RuleId::kScTransitivity, {t1, t2}, {Triple(t1.s, kSc, t2.o)});
      }
      if (t1.p == kSc && t2.p == kType && t2.o == t1.s) {
        emit(RuleId::kScTyping, {t1, t2}, {Triple(t2.s, kType, t1.o)});
      }

      // Ternary-premise rules (6)/(7): t1 = (A,dom/range,B), t2 = (C,sp,A).
      if ((t1.p == kDom || t1.p == kRange) && t2.p == kSp && t2.o == t1.s) {
        for (const Triple& t3 : g) {
          if (t3.p != t2.s) continue;
          if (t1.p == kDom) {
            emit(RuleId::kDomTyping, {t1, t2, t3},
                 {Triple(t3.s, kType, t1.o)});
          } else {
            emit(RuleId::kRangeTyping, {t1, t2, t3},
                 {Triple(t3.o, kType, t1.o)});
          }
        }
      }
    }
  }
  return out;
}

}  // namespace swdb
