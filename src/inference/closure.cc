#include "inference/closure.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <utility>

#include "rdf/hom.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace swdb {

using vocab::kDom;
using vocab::kRange;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

namespace {

/// One closure run: a worklist fixpoint over hash-indexed adjacency.
///
/// Every known triple is processed exactly once. Processing a triple
/// joins it, as each premise position, against the already-known triples
/// through these indexes:
///   - uses_by_pred_: predicate → triples (rule (3) and the use premise
///     of rules (6)/(7));
///   - sp_fwd_/sp_rev_, sc_fwd_/sc_rev_: the sp/sc pair relations;
///   - sp_base_fwd_/sc_base_fwd_: only pairs NOT derived by their own
///     transitivity rule. Rules (2)/(4) run *left-linear*: an arbitrary
///     pair extends forward along base edges only (complete, since every
///     chain decomposes into base edges), while a newly arrived base
///     edge joins the full relation backward. This keeps chain closures
///     at O(pairs · base-degree) instead of O(pairs²).
///   - dom_fwd_/range_fwd_ and type_rev_ for rules (5)–(7).
class ClosureEngine {
 public:
  /// Full fixpoint over g.
  ClosureEngine(const Graph& g, std::vector<RuleApplication>* trace,
                const RuleSet& rules)
      : trace_(trace), rules_(rules) {
    for (const Triple& t : g) {
      Enqueue(t, /*base=*/true);
    }
    AddVocabAxioms();
  }

  /// Semi-naive delta mode: `closure` is seeded into the join indexes
  /// but never re-expanded; only `delta` (and what it derives) enters
  /// the expansion worklist. `closure` must be closed under `rules`,
  /// except that gaps may be covered through the delta — the DRed
  /// re-derive pass relies on exactly this.
  ClosureEngine(const Graph& closure, const Graph& delta,
                std::vector<RuleApplication>* trace, const RuleSet& rules)
      : trace_(trace), rules_(rules) {
    SeedClosed(closure);
    AddVocabAxioms();
    EnqueueDelta(delta);
  }

  void RunToFixpoint() {
    while (cursor_ < worklist_.size()) {
      // Copy: Expand enqueues, and push_back may reallocate worklist_.
      Triple t = worklist_[cursor_++];
      Expand(t);
    }
  }

  /// Round-based parallel fixpoint: each round expands the whole current
  /// frontier [cursor_, size) against the index state at round start —
  /// workers only *read* engine state, buffering conclusions per chunk —
  /// then merges the buffers in pinned chunk order. This computes the
  /// same closure as RunToFixpoint: a rule instance whose premises are
  /// both in the worklist fires when its later-expanded premise is
  /// expanded (the earlier one is indexed from the moment it was
  /// enqueued), and same-round premises see each other because the whole
  /// frontier is indexed before the round starts. The worklist order is
  /// deterministic and independent of the worker count (fixed chunk
  /// grain), though it differs from the sequential order; the resulting
  /// graph is identical. Falls back to sequential when tracing (trace
  /// order is derivation order, which rounds do not preserve) or when no
  /// pool is available.
  void RunToFixpointParallel(ThreadPool* pool) {
    if (trace_ != nullptr || pool == nullptr || pool->num_threads() == 0) {
      RunToFixpoint();
      return;
    }
    constexpr size_t kMinParallelFrontier = 256;
    constexpr size_t kGrain = 64;
    std::vector<std::vector<std::pair<Triple, bool>>> found;
    while (cursor_ < worklist_.size()) {
      const size_t begin = cursor_;
      const size_t n = worklist_.size() - begin;
      if (n < kMinParallelFrontier) {
        // Too little to amortize a fan-out; expand one triple the
        // classic way (it may grow the frontier past the threshold).
        Triple t = worklist_[cursor_++];
        Expand(t);
        continue;
      }
      const size_t nchunks = (n + kGrain - 1) / kGrain;
      found.assign(nchunks, {});
      pool->ParallelFor(n, kGrain, [this, begin, &found](size_t lo,
                                                         size_t hi) {
        CollectSink sink{this, &found[lo / kGrain]};
        for (size_t i = lo; i < hi; ++i) {
          ExpandWith(worklist_[begin + i], sink);
        }
      });
      cursor_ = begin + n;
      for (const auto& chunk : found) {
        for (const auto& [c, base] : chunk) {
          if (known_.count(c)) continue;  // first derivation wins
          Enqueue(c, base);
        }
      }
    }
  }

  /// Appends further delta triples after a previous fixpoint — the
  /// persistent-engine entry point (IncrementalClosure).
  void EnqueueDelta(const Graph& delta) {
    for (const Triple& t : delta) Enqueue(t, /*base=*/true);
  }

  /// All triples known so far, in derivation order (seeds first).
  const std::vector<Triple>& worklist() const { return worklist_; }
  size_t known_size() const { return worklist_.size(); }

  /// Destructively converts the worklist into the result graph.
  Graph TakeResult() { return Graph(std::move(worklist_)); }

 private:
  // Registers every triple of an already-closed graph without
  // scheduling it for expansion.
  void SeedClosed(const Graph& closure) {
    for (const Triple& t : closure) Enqueue(t, /*base=*/true);
    cursor_ = worklist_.size();
  }

  // Rule (9): the vocabulary reflexivity axioms hold unconditionally.
  void AddVocabAxioms() {
    if (!rules_.reflexivity) return;
    for (Term v : vocab::kAll) {
      Triple t(v, kSp, v);
      if (known_.count(t)) continue;
      Record(RuleId::kSpReflexVocab, {}, {t});
      Enqueue(t, /*base=*/true);
    }
  }

  void Record(RuleId rule, std::vector<Triple> premises,
              std::vector<Triple> conclusions) {
    if (trace_ == nullptr) return;
    trace_->push_back(
        RuleApplication{rule, std::move(premises), std::move(conclusions)});
  }

  // Registers a new triple in the worklist and all indexes. `base`
  // marks sc/sp pairs not derived by their own transitivity rule.
  void Enqueue(const Triple& t, bool base) {
    if (!known_.insert(t).second) return;
    worklist_.push_back(t);
    uses_by_pred_[t.p].push_back(t);
    if (t.p == kSp) {
      sp_fwd_[t.s].push_back(t.o);
      sp_rev_[t.o].push_back(t.s);
      if (base) sp_base_fwd_[t.s].push_back(t.o);
    } else if (t.p == kSc) {
      sc_fwd_[t.s].push_back(t.o);
      sc_rev_[t.o].push_back(t.s);
      if (base) sc_base_fwd_[t.s].push_back(t.o);
    } else if (t.p == kType) {
      type_rev_[t.o].push_back(t.s);
    } else if (t.p == kDom) {
      dom_fwd_[t.s].push_back(t.o);
    } else if (t.p == kRange) {
      range_fwd_[t.s].push_back(t.o);
    }
    if ((t.p == kSp || t.p == kSc) && base) {
      base_edges_.insert(t);
    }
  }

  // Derives conclusion c by `rule` from `premises` if new.
  void Add(const Triple& c, RuleId rule, std::vector<Triple> premises) {
    if (!c.IsWellFormedData()) return;  // blank predicate: not a triple
    if (known_.count(c)) return;
    Record(rule, std::move(premises), {c});
    bool base = !(c.p == kSp && rule == RuleId::kSpTransitivity) &&
                !(c.p == kSc && rule == RuleId::kScTransitivity);
    Enqueue(c, base);
  }

  // Rules (11)/(13) conclude two reflexive triples at once.
  void AddPair(const Triple& c1, const Triple& c2, RuleId rule,
               const Triple& premise) {
    bool n1 = !known_.count(c1);
    bool n2 = !known_.count(c2);
    if (!n1 && !n2) return;
    Record(rule, {premise}, {c1, c2});
    if (n1) Enqueue(c1, /*base=*/true);
    if (n2) Enqueue(c2, /*base=*/true);
  }

  // Both accessors return copies: Add() mutates the underlying vectors
  // while callers iterate, so handing out references would be
  // use-after-reallocation UB whenever a conclusion updates the very
  // index being scanned (e.g. rule (3) deriving more uses of the
  // predicate it is iterating).
  std::vector<Term> Neighbors(
      const std::unordered_map<Term, std::vector<Term>>& index,
      Term key) const {
    auto it = index.find(key);
    return it == index.end() ? std::vector<Term>() : it->second;
  }

  std::vector<Triple> Uses(Term predicate) const {
    auto it = uses_by_pred_.find(predicate);
    return it == uses_by_pred_.end() ? std::vector<Triple>() : it->second;
  }

  // Where rule conclusions go. DirectSink is the classic sequential
  // path: derive-and-enqueue immediately. CollectSink buffers (it only
  // *reads* engine state), which is what lets a parallel round expand a
  // whole frontier concurrently and merge the conclusions afterwards.
  struct DirectSink {
    ClosureEngine* e;
    void Add(const Triple& c, RuleId rule, std::vector<Triple> premises) {
      e->Add(c, rule, std::move(premises));
    }
    void AddPair(const Triple& c1, const Triple& c2, RuleId rule,
                 const Triple& premise) {
      e->AddPair(c1, c2, rule, premise);
    }
  };
  struct CollectSink {
    const ClosureEngine* e;
    // (conclusion, base flag) in derivation order; may still contain
    // duplicates across sinks — the merge dedups through known_.
    std::vector<std::pair<Triple, bool>>* out;
    void Add(const Triple& c, RuleId rule, std::vector<Triple> /*premises*/) {
      if (!c.IsWellFormedData()) return;
      if (e->known_.count(c)) return;
      const bool base = !(c.p == kSp && rule == RuleId::kSpTransitivity) &&
                        !(c.p == kSc && rule == RuleId::kScTransitivity);
      out->emplace_back(c, base);
    }
    void AddPair(const Triple& c1, const Triple& c2, RuleId /*rule*/,
                 const Triple& /*premise*/) {
      if (!e->known_.count(c1)) out->emplace_back(c1, true);
      if (!e->known_.count(c2)) out->emplace_back(c2, true);
    }
  };

  void Expand(const Triple& t) {
    DirectSink sink{this};
    ExpandWith(t, sink);
  }

  // Joins triple t, as every premise position, against the indexes.
  // Snapshot note: the adjacency vectors can reallocate while we append
  // during iteration, so each loop copies the neighbor list first.
  // With a CollectSink nothing reallocates, but the copies stay — the
  // cost is small and one body serves both modes.
  template <typename Sink>
  void ExpandWith(const Triple& t, Sink& sink) {
    // --- Generic: t as the "use" triple (X, A, Y). ---
    // Rule (8).
    if (rules_.reflexivity) {
      sink.Add(Triple(t.p, kSp, t.p), RuleId::kSpReflexFromUse, {t});
    }
    // Rule (3) use side and rules (6)/(7) use side: follow sp upward
    // from the predicate.
    if (rules_.sp_inheritance || rules_.marin_subproperty_typing) {
      const std::vector<Term> supers = Neighbors(sp_fwd_, t.p);
      for (Term b : supers) {
        if (rules_.sp_inheritance) {
          sink.Add(Triple(t.s, b, t.o), RuleId::kSpInheritance,
              {Triple(t.p, kSp, b), t});
        }
        if (!rules_.marin_subproperty_typing) continue;
        if (rules_.dom_typing) {
          for (Term klass : Neighbors(dom_fwd_, b)) {
            sink.Add(Triple(t.s, kType, klass), RuleId::kDomTyping,
                {Triple(b, kDom, klass), Triple(t.p, kSp, b), t});
          }
        }
        if (rules_.range_typing) {
          for (Term klass : Neighbors(range_fwd_, b)) {
            sink.Add(Triple(t.o, kType, klass), RuleId::kRangeTyping,
                {Triple(b, kRange, klass), Triple(t.p, kSp, b), t});
          }
        }
      }
    }
    // Rules (6)/(7), direct part (C = A): (t.p, dom/range, B) types the
    // use immediately; the (t.p, sp, t.p) premise is supplied by rule
    // (8) just above, so the recorded instantiation stays valid.
    if (rules_.dom_typing) {
      for (Term klass : Neighbors(dom_fwd_, t.p)) {
        sink.Add(Triple(t.s, kType, klass), RuleId::kDomTyping,
            {Triple(t.p, kDom, klass), Triple(t.p, kSp, t.p), t});
      }
    }
    if (rules_.range_typing) {
      for (Term klass : Neighbors(range_fwd_, t.p)) {
        sink.Add(Triple(t.o, kType, klass), RuleId::kRangeTyping,
            {Triple(t.p, kRange, klass), Triple(t.p, kSp, t.p), t});
      }
    }

    // --- Predicate-specific joins. ---
    if (t.p == kSp) {
      // Rule (2), left-linear (see the class comment).
      if (rules_.sp_transitivity) {
        const std::vector<Term> base_out = Neighbors(sp_base_fwd_, t.o);
        for (Term c : base_out) {
          sink.Add(Triple(t.s, kSp, c), RuleId::kSpTransitivity,
              {t, Triple(t.o, kSp, c)});
        }
        if (base_edges_.count(t)) {
          const std::vector<Term> preds = Neighbors(sp_rev_, t.s);
          for (Term z : preds) {
            sink.Add(Triple(z, kSp, t.o), RuleId::kSpTransitivity,
                {Triple(z, kSp, t.s), t});
          }
        }
      }
      // Rule (3), sp side: existing uses of predicate t.s gain t.o.
      if (rules_.sp_inheritance) {
        const std::vector<Triple> uses = Uses(t.s);
        for (const Triple& use : uses) {
          sink.Add(Triple(use.s, t.o, use.o), RuleId::kSpInheritance, {t, use});
        }
      }
      // Rules (6)/(7), sp side: t = (C, sp, A) with (A, dom/range, B).
      if (rules_.marin_subproperty_typing) {
        const std::vector<Triple> sub_uses = Uses(t.s);
        if (rules_.dom_typing) {
          for (Term klass : Neighbors(dom_fwd_, t.o)) {
            for (const Triple& use : sub_uses) {
              sink.Add(Triple(use.s, kType, klass), RuleId::kDomTyping,
                  {Triple(t.o, kDom, klass), t, use});
            }
          }
        }
        if (rules_.range_typing) {
          for (Term klass : Neighbors(range_fwd_, t.o)) {
            for (const Triple& use : sub_uses) {
              sink.Add(Triple(use.o, kType, klass), RuleId::kRangeTyping,
                  {Triple(t.o, kRange, klass), t, use});
            }
          }
        }
      }
      // Rule (11).
      if (rules_.reflexivity) {
        sink.AddPair(Triple(t.s, kSp, t.s), Triple(t.o, kSp, t.o),
                RuleId::kSpReflexPair, t);
      }
    } else if (t.p == kSc) {
      // Rule (4), left-linear.
      if (rules_.sc_transitivity) {
        const std::vector<Term> base_out = Neighbors(sc_base_fwd_, t.o);
        for (Term c : base_out) {
          sink.Add(Triple(t.s, kSc, c), RuleId::kScTransitivity,
              {t, Triple(t.o, kSc, c)});
        }
        if (base_edges_.count(t)) {
          const std::vector<Term> preds = Neighbors(sc_rev_, t.s);
          for (Term z : preds) {
            sink.Add(Triple(z, kSc, t.o), RuleId::kScTransitivity,
                {Triple(z, kSc, t.s), t});
          }
        }
      }
      // Rule (5), sc side: instances of t.s lift to t.o.
      if (rules_.sc_typing) {
        const std::vector<Term> instances = Neighbors(type_rev_, t.s);
        for (Term x : instances) {
          sink.Add(Triple(x, kType, t.o), RuleId::kScTyping,
              {t, Triple(x, kType, t.s)});
        }
      }
      // Rule (13).
      if (rules_.reflexivity) {
        sink.AddPair(Triple(t.s, kSc, t.s), Triple(t.o, kSc, t.o),
                RuleId::kScReflexPair, t);
      }
    } else if (t.p == kType) {
      // Rule (5), type side.
      if (rules_.sc_typing) {
        const std::vector<Term> supers_sc = Neighbors(sc_fwd_, t.o);
        for (Term b : supers_sc) {
          sink.Add(Triple(t.s, kType, b), RuleId::kScTyping,
              {Triple(t.o, kSc, b), t});
        }
      }
      // Rule (12).
      if (rules_.reflexivity) {
        sink.Add(Triple(t.o, kSc, t.o), RuleId::kScReflexFromUse, {t});
      }
    } else if (t.p == kDom || t.p == kRange) {
      // Rules (6)/(7), dom/range side: (c, sp, t.s) and uses of c. The
      // direct C = A case joins the uses of t.s itself; the Marin part
      // follows sp downward.
      const bool enabled =
          t.p == kDom ? rules_.dom_typing : rules_.range_typing;
      // Rules (10)/(12) first: the direct joins below cite the rule-(10)
      // reflexive triple as a premise, so it must enter the trace first.
      if (rules_.reflexivity) {
        sink.Add(Triple(t.s, kSp, t.s), RuleId::kSpReflexDomRange, {t});
        sink.Add(Triple(t.o, kSc, t.o), RuleId::kScReflexFromUse, {t});
      }
      if (enabled) {
        const std::vector<Triple> direct_uses = Uses(t.s);
        for (const Triple& use : direct_uses) {
          if (t.p == kDom) {
            sink.Add(Triple(use.s, kType, t.o), RuleId::kDomTyping,
                {t, Triple(t.s, kSp, t.s), use});
          } else {
            sink.Add(Triple(use.o, kType, t.o), RuleId::kRangeTyping,
                {t, Triple(t.s, kSp, t.s), use});
          }
        }
      }
      if (enabled && rules_.marin_subproperty_typing) {
        const std::vector<Term> subs = Neighbors(sp_rev_, t.s);
        for (Term c : subs) {
          const std::vector<Triple> uses = Uses(c);
          for (const Triple& use : uses) {
            if (t.p == kDom) {
              sink.Add(Triple(use.s, kType, t.o), RuleId::kDomTyping,
                  {t, Triple(c, kSp, t.s), use});
            } else {
              sink.Add(Triple(use.o, kType, t.o), RuleId::kRangeTyping,
                  {t, Triple(c, kSp, t.s), use});
            }
          }
        }
      }
    }
  }

  std::unordered_set<Triple> known_;
  std::vector<Triple> worklist_;
  size_t cursor_ = 0;
  std::vector<RuleApplication>* trace_;
  RuleSet rules_;

  std::unordered_map<Term, std::vector<Triple>> uses_by_pred_;
  std::unordered_map<Term, std::vector<Term>> sp_fwd_;
  std::unordered_map<Term, std::vector<Term>> sp_rev_;
  std::unordered_map<Term, std::vector<Term>> sc_fwd_;
  std::unordered_map<Term, std::vector<Term>> sc_rev_;
  std::unordered_map<Term, std::vector<Term>> sp_base_fwd_;
  std::unordered_map<Term, std::vector<Term>> sc_base_fwd_;
  std::unordered_map<Term, std::vector<Term>> dom_fwd_;
  std::unordered_map<Term, std::vector<Term>> range_fwd_;
  std::unordered_map<Term, std::vector<Term>> type_rev_;
  std::unordered_set<Triple> base_edges_;
};

/// Sound one-step derivability check used by the DRed re-derive pass:
/// true only if c has a rule-(2)–(13) derivation whose premises all lie
/// in p (possibly via a premise itself one-step derivable from p, which
/// keeps c ∈ RDFS-cl(p) — soundness is what matters here). It is
/// complete for single rule applications over p, which is exactly what
/// DRed requires of the re-derive seed.
bool DerivableOneStep(const Graph& p, const Triple& c) {
  if (!c.IsWellFormedData()) return false;
  // Rule (3), any conclusion predicate (including the reserved ones —
  // pathological graphs can mint sp/sc/type edges through it): some
  // explicit (c.s, p', c.o) with p' = c.p or (p', sp, c.p) ∈ p.
  bool hit = false;
  p.Match(c.s, std::nullopt, c.o, [&](const Triple& use) {
    if (use.p == c.p || p.Contains(Triple(use.p, kSp, c.p))) {
      hit = true;
      return false;
    }
    return true;
  });
  if (hit) return true;
  if (c.p == kSp) {
    if (c.s == c.o) {
      const Term a = c.s;
      for (Term v : vocab::kAll) {
        if (a == v) return true;  // rule (9)
      }
      if (p.CountMatches(std::nullopt, a, std::nullopt) > 0) return true;
      if (p.CountMatches(a, kDom, std::nullopt) > 0) return true;  // (10)
      if (p.CountMatches(a, kRange, std::nullopt) > 0) return true;
      if (p.CountMatches(a, kSp, std::nullopt) > 0) return true;  // (11)
      if (p.CountMatches(std::nullopt, kSp, a) > 0) return true;
      return false;
    }
    // Rule (2): a two-edge sp path.
    p.Match(c.s, kSp, std::nullopt, [&](const Triple& e) {
      if (p.Contains(Triple(e.o, kSp, c.o))) {
        hit = true;
        return false;
      }
      return true;
    });
    return hit;
  }
  if (c.p == kSc) {
    if (c.s == c.o) {
      const Term a = c.s;
      if (p.CountMatches(std::nullopt, kType, a) > 0) return true;  // (12)
      if (p.CountMatches(std::nullopt, kDom, a) > 0) return true;
      if (p.CountMatches(std::nullopt, kRange, a) > 0) return true;
      if (p.CountMatches(a, kSc, std::nullopt) > 0) return true;  // (13)
      if (p.CountMatches(std::nullopt, kSc, a) > 0) return true;
      return false;
    }
    // Rule (4): a two-edge sc path.
    p.Match(c.s, kSc, std::nullopt, [&](const Triple& e) {
      if (p.Contains(Triple(e.o, kSc, c.o))) {
        hit = true;
        return false;
      }
      return true;
    });
    return hit;
  }
  if (c.p == kType) {
    // Rule (5): (c.s, type, a) with (a, sc, c.o).
    p.Match(c.s, kType, std::nullopt, [&](const Triple& ty) {
      if (p.Contains(Triple(ty.o, kSc, c.o))) {
        hit = true;
        return false;
      }
      return true;
    });
    if (hit) return true;
    // Rule (6): (A, dom, c.o) with a use (c.s, p', _), p' = A or
    // (p', sp, A) ∈ p. (The direct part's (A, sp, A) premise is itself
    // rule-(10) derivable from the dom triple, keeping this sound.)
    // The use range is independent of the outer row: resolve it once
    // outside the join (p is not mutated here, so it stays valid).
    MatchRange dom_uses = p.Matches(c.s, std::nullopt, std::nullopt);
    p.Match(std::nullopt, kDom, c.o, [&](const Triple& d) {
      for (const Triple& use : dom_uses) {
        if (use.p == d.s || p.Contains(Triple(use.p, kSp, d.s))) {
          hit = true;
          return false;
        }
      }
      return true;
    });
    if (hit) return true;
    // Rule (7): (A, range, c.o) with a use (_, p', c.s).
    MatchRange range_uses = p.Matches(std::nullopt, std::nullopt, c.s);
    p.Match(std::nullopt, kRange, c.o, [&](const Triple& r) {
      for (const Triple& use : range_uses) {
        if (use.p == r.s || p.Contains(Triple(use.p, kSp, r.s))) {
          hit = true;
          return false;
        }
      }
      return true;
    });
    return hit;
  }
  // dom/range and ordinary predicates: only rule (3) (checked above)
  // concludes them.
  return false;
}

// Enumerates the conclusions of every rule application that uses t as a
// premise, drawing the remaining premises from g's permutation indexes.
// Conclusions may repeat, be ill-formed (blank predicate), or already be
// present — the callback filters. The callback must not mutate g.
//
// Joining against the full transitive relations in g over-approximates
// the engine's left-linear evaluation; combined with a worklist that
// eventually processes every member triple it is also complete, which is
// exactly what both the over-delete walk and the re-derive walk need.
template <typename Emit>
void ForEachConsequence(const Graph& g, const Triple& t, Emit&& emit) {
  emit(Triple(t.p, kSp, t.p));  // rule (8)
  g.Match(t.p, kSp, std::nullopt, [&](const Triple& e) {
    emit(Triple(t.s, e.o, t.o));  // rule (3), t as the use
    // Rules (6)/(7), t as the use (X, C, Y): the reflexive
    // (t.p, sp, t.p) edge makes the direct C = A case fall out.
    g.Match(e.o, kDom, std::nullopt, [&](const Triple& d) {
      emit(Triple(t.s, kType, d.o));
      return true;
    });
    g.Match(e.o, kRange, std::nullopt, [&](const Triple& r) {
      emit(Triple(t.o, kType, r.o));
      return true;
    });
    return true;
  });
  if (t.p == kSp) {
    // Rule (2), t as either premise.
    g.Match(std::nullopt, kSp, t.s, [&](const Triple& e) {
      emit(Triple(e.s, kSp, t.o));
      return true;
    });
    g.Match(t.o, kSp, std::nullopt, [&](const Triple& e) {
      emit(Triple(t.s, kSp, e.o));
      return true;
    });
    // Rule (3), t as the schema premise, and rules (6)/(7) with t as the
    // (C, sp, A) premise (A = t.o, C = t.s) all join against the uses of
    // t.s — resolve that range once and reuse it (emit must not mutate
    // g, so the range stays valid across all three loops).
    MatchRange uses = g.Matches(std::nullopt, t.s, std::nullopt);
    for (const Triple& use : uses) {
      emit(Triple(use.s, t.o, use.o));
    }
    g.Match(t.o, kDom, std::nullopt, [&](const Triple& d) {
      for (const Triple& use : uses) {
        emit(Triple(use.s, kType, d.o));
      }
      return true;
    });
    g.Match(t.o, kRange, std::nullopt, [&](const Triple& r) {
      for (const Triple& use : uses) {
        emit(Triple(use.o, kType, r.o));
      }
      return true;
    });
    emit(Triple(t.s, kSp, t.s));  // rule (11)
    emit(Triple(t.o, kSp, t.o));
  } else if (t.p == kSc) {
    // Rule (4), t as either premise.
    g.Match(std::nullopt, kSc, t.s, [&](const Triple& e) {
      emit(Triple(e.s, kSc, t.o));
      return true;
    });
    g.Match(t.o, kSc, std::nullopt, [&](const Triple& e) {
      emit(Triple(t.s, kSc, e.o));
      return true;
    });
    // Rule (5), t as the sc premise.
    g.Match(std::nullopt, kType, t.s, [&](const Triple& i) {
      emit(Triple(i.s, kType, t.o));
      return true;
    });
    emit(Triple(t.s, kSc, t.s));  // rule (13)
    emit(Triple(t.o, kSc, t.o));
  } else if (t.p == kType) {
    // Rule (5), t as the type premise.
    g.Match(t.o, kSc, std::nullopt, [&](const Triple& e) {
      emit(Triple(t.s, kType, e.o));
      return true;
    });
    emit(Triple(t.o, kSc, t.o));  // rule (12)
  } else if (t.p == kDom) {
    // Rule (6), t as the (A, dom, B) premise: the reflexive
    // (t.s, sp, t.s) edge covers the direct C = A case.
    g.Match(std::nullopt, kSp, t.s, [&](const Triple& e) {
      g.Match(std::nullopt, e.s, std::nullopt, [&](const Triple& use) {
        emit(Triple(use.s, kType, t.o));
        return true;
      });
      return true;
    });
    emit(Triple(t.s, kSp, t.s));  // rule (10)
    emit(Triple(t.o, kSc, t.o));  // rule (12)
  } else if (t.p == kRange) {
    // Rule (7), t as the (A, range, B) premise.
    g.Match(std::nullopt, kSp, t.s, [&](const Triple& e) {
      g.Match(std::nullopt, e.s, std::nullopt, [&](const Triple& use) {
        emit(Triple(use.o, kType, t.o));
        return true;
      });
      return true;
    });
    emit(Triple(t.s, kSp, t.s));  // rule (10)
    emit(Triple(t.o, kSc, t.o));  // rule (12)
  }
}

// Over-delete for the DRed deletion path: collects every closure triple
// forward-reachable from a deleted triple through a rule application,
// joining directly against the closure graph's own permutation indexes
// (the suspect cone is typically tiny, so seeding a full engine over
// |cl| would dominate). A triple provably still in the new closure —
// asserted in base_after or one-step derivable from it — is never
// suspected, which stops the reflexivity rules from tainting whole
// derivation cycles.
std::unordered_set<Triple> CollectSuspects(const Graph& cl,
                                           const Graph& deleted,
                                           const Graph& base_after) {
  std::unordered_set<Triple> suspects;
  std::unordered_set<Triple> cleared;  // memoized protection verdicts
  std::vector<Triple> work;
  auto mark = [&](const Triple& c) {
    if (!c.IsWellFormedData()) return;
    if (!cl.Contains(c)) return;
    if (suspects.count(c) || cleared.count(c)) return;
    if (base_after.Contains(c) || DerivableOneStep(base_after, c)) {
      cleared.insert(c);
      return;
    }
    suspects.insert(c);
    work.push_back(c);
  };
  for (const Triple& t : deleted) mark(t);
  while (!work.empty()) {
    const Triple t = work.back();
    work.pop_back();
    ForEachConsequence(cl, t, mark);
  }
  return suspects;
}

// Semi-naive forward worklist: derives everything downstream of `work`
// (whose triples must already be in g), inserting conclusions into g in
// place. Each conclusion batch is buffered so g is never mutated while
// its indexes are being matched.
void PropagateInsertions(Graph& g, std::vector<Triple> work) {
  std::vector<Triple> found;
  while (!work.empty()) {
    const Triple t = work.back();
    work.pop_back();
    found.clear();
    ForEachConsequence(g, t, [&](const Triple& c) {
      if (c.IsWellFormedData() && !g.Contains(c)) found.push_back(c);
    });
    for (const Triple& c : found) {
      if (g.Insert(c)) work.push_back(c);
    }
  }
}

}  // namespace


Graph RdfsClosure(const Graph& g, std::vector<RuleApplication>* trace) {
  ClosureEngine engine(g, trace, RuleSet::All());
  engine.RunToFixpoint();
  return engine.TakeResult();
}

Graph RdfsClosureParallel(const Graph& g, ThreadPool* pool) {
  ClosureEngine engine(g, /*trace=*/nullptr, RuleSet::All());
  engine.RunToFixpointParallel(pool);
  return engine.TakeResult();
}

Graph RdfsClosureWithRules(const Graph& g, const RuleSet& rules) {
  ClosureEngine engine(g, /*trace=*/nullptr, rules);
  engine.RunToFixpoint();
  return engine.TakeResult();
}

Graph RdfsClosureDelta(const Graph& closure, const Graph& delta_inserts,
                       std::vector<RuleApplication>* trace,
                       ClosureDeltaStats* stats, ThreadPool* pool) {
  ClosureEngine engine(closure, delta_inserts, trace, RuleSet::All());
  engine.RunToFixpointParallel(pool);
  Graph out = engine.TakeResult();
  if (stats != nullptr) {
    stats->delta_size = 0;
    for (const Triple& t : delta_inserts) {
      if (!closure.Contains(t)) ++stats->delta_size;
    }
    stats->derived = out.size() - closure.size();
    stats->overdeleted = 0;
    stats->rederived = 0;
  }
  return out;
}

Graph RdfsClosureErase(const Graph& closure, const Graph& base_after,
                       const Graph& deleted, ClosureDeltaStats* stats) {
  // Fast path: a deleted triple that is still one-step derivable from
  // the remaining base keeps the closure intact; if every deleted
  // triple is, nothing can fall out and the whole pass is skippable.
  bool all_protected = true;
  for (const Triple& t : deleted) {
    if (!DerivableOneStep(base_after, t)) {
      all_protected = false;
      break;
    }
  }
  if (all_protected) {
    if (stats != nullptr) {
      stats->delta_size = deleted.size();
      stats->derived = 0;
      stats->overdeleted = 0;
      stats->rederived = 0;
    }
    return closure;
  }

  // (1) Over-delete: everything forward-reachable from a deleted triple
  // through a rule application becomes suspect.
  std::unordered_set<Triple> suspects =
      CollectSuspects(closure, deleted, base_after);

  // (2) The untainted remainder survives unconditionally: a triple with
  // no derivation path touching a deleted triple keeps its derivation.
  // For the usual tiny suspect cone, patching a copy of the closure in
  // place reuses its already-built indexes; a cone that is a sizable
  // fraction of |cl| would turn the per-erase memmoves quadratic, so
  // fall back to one filtered pass (which rebuilds indexes lazily).
  Graph out;
  if (suspects.size() * 16 <= closure.size()) {
    out = closure;
    for (const Triple& t : suspects) out.Erase(t);
  } else {
    std::vector<Triple> kept;
    kept.reserve(closure.size() - suspects.size());
    for (const Triple& t : closure) {
      if (!suspects.count(t)) kept.push_back(t);
    }
    out = Graph(std::move(kept));
  }
  const size_t kept_size = out.size();

  // (3) Re-derive: a suspect re-enters if it is still asserted in the
  // base or one-step derivable from the survivors; the semi-naive
  // worklist then replays everything downstream of the rescued triples.
  std::vector<Triple> rescued;
  for (const Triple& t : suspects) {
    if (base_after.Contains(t) || DerivableOneStep(out, t)) {
      rescued.push_back(t);
    }
  }
  for (const Triple& t : rescued) out.Insert(t);
  PropagateInsertions(out, std::move(rescued));
  if (stats != nullptr) {
    stats->delta_size = deleted.size();
    stats->derived = 0;
    stats->overdeleted = suspects.size();
    stats->rederived = out.size() - kept_size;
  }
  return out;
}

Graph RdfsClosureNaive(const Graph& g) {
  Graph result = g;
  for (;;) {
    std::vector<RuleApplication> apps = EnumerateApplications(result);
    if (apps.empty()) return result;
    for (const RuleApplication& app : apps) {
      for (const Triple& c : app.conclusions) {
        result.Insert(c);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// IncrementalClosure

/// Wraps a live ClosureEngine so its join indexes persist across
/// updates: an insert enqueues only the delta and resumes the fixpoint.
class IncrementalClosure::Impl {
 public:
  explicit Impl(const Graph& base, ThreadPool* pool)
      : engine_(base, /*trace=*/nullptr, RuleSet::All()), pool_(pool) {
    engine_.RunToFixpointParallel(pool_);
  }

  /// Re-seeds from an already-closed graph (post-deletion rebuild).
  struct ReseedTag {};
  Impl(const Graph& closed, ThreadPool* pool, ReseedTag)
      : engine_(closed, Graph(), /*trace=*/nullptr, RuleSet::All()),
        pool_(pool) {
    engine_.RunToFixpointParallel(pool_);  // no-op unless the seed had gaps
  }

  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Returns the number of newly derived triples (delta included).
  size_t InsertDelta(const Graph& delta) {
    const size_t before = engine_.known_size();
    engine_.EnqueueDelta(delta);
    engine_.RunToFixpointParallel(pool_);
    return engine_.known_size() - before;
  }

  const std::vector<Triple>& worklist() const { return engine_.worklist(); }

 private:
  ClosureEngine engine_;
  ThreadPool* pool_ = nullptr;
};

IncrementalClosure::IncrementalClosure(const Graph& base)
    : impl_(std::make_unique<Impl>(base, /*pool=*/nullptr)),
      closure_(std::vector<Triple>(impl_->worklist())),
      version_(1) {}

void IncrementalClosure::set_pool(ThreadPool* pool) {
  pool_ = pool;
  if (impl_ != nullptr) impl_->set_pool(pool);
}

IncrementalClosure::~IncrementalClosure() = default;
IncrementalClosure::IncrementalClosure(IncrementalClosure&&) noexcept =
    default;
IncrementalClosure& IncrementalClosure::operator=(
    IncrementalClosure&&) noexcept = default;

void IncrementalClosure::InsertDelta(const Graph& delta,
                                     ClosureDeltaStats* stats,
                                     std::vector<Triple>* derived_out) {
  size_t fresh = 0;
  for (const Triple& t : delta) {
    if (!closure_.Contains(t)) ++fresh;
  }
  if (impl_ == nullptr) {
    // Deferred rebuild after a deletion (see EraseDelta): re-seed the
    // engine from the maintained closure now that we need it again.
    impl_ = std::make_unique<Impl>(closure_, pool_, Impl::ReseedTag{});
  }
  const size_t derived = impl_->InsertDelta(delta);
  if (stats != nullptr) {
    stats->delta_size = fresh;
    stats->derived = derived;
    stats->overdeleted = 0;
    stats->rederived = 0;
  }
  if (derived == 0) return;
  // Fold the newly derived slice into the maintained graph: small
  // slices take the single-insert path (which patches the permutation
  // indexes in place), large ones the batched merge-and-rebuild.
  const std::vector<Triple>& wl = impl_->worklist();
  if (derived_out != nullptr) {
    derived_out->assign(wl.end() - static_cast<std::ptrdiff_t>(derived),
                        wl.end());
  }
  constexpr size_t kPatchThreshold = 16;
  if (derived <= kPatchThreshold) {
    for (size_t i = wl.size() - derived; i < wl.size(); ++i) {
      closure_.Insert(wl[i]);
    }
  } else {
    closure_.InsertAll(
        Graph(std::vector<Triple>(wl.end() - derived, wl.end())));
  }
  ++version_;
}

void IncrementalClosure::EraseDelta(const Graph& base_after,
                                    const Graph& deleted,
                                    ClosureDeltaStats* stats) {
  Graph next = RdfsClosureErase(closure_, base_after, deleted, stats);
  // RdfsClosureErase never derives outside the old closure, so a size
  // match means content match.
  const bool changed = next.size() != closure_.size();
  if (changed) {
    // The engine's indexes still reference dropped triples; rebuilding
    // is O(|closure|), so defer it until the next insert actually needs
    // a live engine — erase-heavy series never pay for it.
    impl_.reset();
    closure_ = std::move(next);
    ++version_;
  }
}

Graph SemanticClosure(const Graph& g, Dictionary* dict) {
  if (g.IsGround()) {
    // For ground graphs the unique maximal ground equivalent extension is
    // the deductive closure (proof of Thm 3.6(1)).
    return RdfsClosure(g);
  }
  TermMap sk;
  Graph skolemized = Skolemize(g, dict, &sk);
  Graph closed = RdfsClosure(skolemized);
  return DeSkolemize(closed, sk);
}

// ---------------------------------------------------------------------------
// ClosureMembership

ClosureMembership::ClosureMembership(const Graph& g)
    : g_(&g), built_epoch_(g.epoch()) {
  Build();
}

bool ClosureMembership::InSync() const {
  return g_->epoch() == built_epoch_;
}

void ClosureMembership::Refresh() {
  direct_ = true;
  sp_fwd_.clear();
  sc_fwd_.clear();
  props_.clear();
  classes_.clear();
  materialized_.reset();
  built_epoch_ = g_->epoch();
  Build();
}

void ClosureMembership::Build() {
  // The direct case analysis below is valid when no reserved keyword
  // occurs in subject or object position — the same restriction the paper
  // places on graphs in Thm 3.16. Outside it, triples like (p, sp, sc) or
  // (type, dom, a) let rules (3), (6) and (7) mint sp/sc/dom/range/type
  // triples through cascades the analysis does not model, so we answer
  // from a materialized closure instead.
  for (const Triple& t : *g_) {
    if (vocab::IsRdfsVocab(t.s) || vocab::IsRdfsVocab(t.o)) {
      direct_ = false;
      break;
    }
  }
  if (!direct_) {
    materialized_ = RdfsClosure(*g_);
    return;
  }

  for (const Triple& t : *g_) {
    props_.insert(t.p);  // rule (8)
    if (t.p == kSp) {
      sp_fwd_[t.s].push_back(t.o);
      props_.insert(t.s);  // rule (11)
      props_.insert(t.o);
    } else if (t.p == kSc) {
      sc_fwd_[t.s].push_back(t.o);
      classes_.insert(t.s);  // rule (13)
      classes_.insert(t.o);
    } else if (t.p == kDom || t.p == kRange) {
      props_.insert(t.s);    // rule (10)
      classes_.insert(t.o);  // rule (12)
    } else if (t.p == kType) {
      classes_.insert(t.o);  // rule (12)
    }
  }
  for (Term v : vocab::kAll) props_.insert(v);  // rule (9)
}

bool ClosureMembership::Reaches(
    const std::unordered_map<Term, std::vector<Term>>& fwd, Term a,
    Term b) const {
  std::deque<Term> queue{a};
  std::unordered_set<Term> seen{a};
  while (!queue.empty()) {
    Term cur = queue.front();
    queue.pop_front();
    auto it = fwd.find(cur);
    if (it == fwd.end()) continue;
    for (Term next : it->second) {
      if (next == b) return true;
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

bool ClosureMembership::Contains(const Triple& t) const {
  SWDB_CHECK(InSync(),
             "ClosureMembership used after the underlying graph mutated "
             "(epoch mismatch); call Refresh() first");
  if (!direct_) return materialized_->Contains(t);
  return DirectContains(t);
}

bool ClosureMembership::DirectContains(const Triple& t) const {
  if (!t.IsWellFormedData()) return false;
  if (t.p == kSp) {
    if (t.s == t.o) return props_.count(t.s) > 0;
    return Reaches(sp_fwd_, t.s, t.o);
  }
  if (t.p == kSc) {
    if (t.s == t.o) return classes_.count(t.s) > 0;
    return Reaches(sc_fwd_, t.s, t.o);
  }
  if (t.p == kDom || t.p == kRange) {
    // No rule derives new dom/range triples outside the pathological case.
    return g_->Contains(t);
  }
  if (t.p == kType) {
    // Classes x is typed with before sc-lifting (rule 5):
    //   - explicit (x, type, c);
    //   - rule (6): (A, dom, c) with some use (x, p', _), p' ⊑sp A;
    //   - rule (7): (A, range, c) with some use (_, p', x), p' ⊑sp A.
    // Then (x, type, b) ∈ cl(G) iff some such c has c = b or c →sc* b.
    std::vector<Term> base;
    g_->Match(t.s, kType, std::nullopt, [&](const Triple& ty) {
      base.push_back(ty.o);
      return true;
    });
    // Forward sp-closure of the predicates of triples incident to x.
    auto sp_reachable_from = [&](const std::vector<Term>& starts) {
      std::unordered_set<Term> seen(starts.begin(), starts.end());
      std::deque<Term> queue(starts.begin(), starts.end());
      while (!queue.empty()) {
        Term cur = queue.front();
        queue.pop_front();
        auto it = sp_fwd_.find(cur);
        if (it == sp_fwd_.end()) continue;
        for (Term next : it->second) {
          if (seen.insert(next).second) queue.push_back(next);
        }
      }
      return seen;
    };
    std::vector<Term> subject_preds;
    g_->Match(t.s, std::nullopt, std::nullopt, [&](const Triple& use) {
      subject_preds.push_back(use.p);
      return true;
    });
    std::vector<Term> object_preds;
    for (const Triple& use : *g_) {
      if (use.o == t.s) object_preds.push_back(use.p);
    }
    for (Term a : sp_reachable_from(subject_preds)) {
      g_->Match(a, kDom, std::nullopt, [&](const Triple& dom_t) {
        base.push_back(dom_t.o);
        return true;
      });
    }
    for (Term a : sp_reachable_from(object_preds)) {
      g_->Match(a, kRange, std::nullopt, [&](const Triple& rng_t) {
        base.push_back(rng_t.o);
        return true;
      });
    }
    // sc-lift: some base class reaches t.o.
    for (Term c : base) {
      if (c == t.o || Reaches(sc_fwd_, c, t.o)) return true;
    }
    return false;
  }
  // Ordinary predicate q: (x, q, y) ∈ cl(G) iff some explicit
  // (x, p', y) has p' = q or p' →sp* q (rule 3).
  bool found = false;
  g_->Match(t.s, std::nullopt, t.o, [&](const Triple& use) {
    if (use.p == t.p || Reaches(sp_fwd_, use.p, t.p)) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

Result<bool> TryRdfsEntails(const Graph& g1, const Graph& g2,
                            MatchOptions options) {
  Graph closure = RdfsClosure(g1);
  return TryHasHomomorphism(g2, closure, options);
}

bool RdfsEntails(const Graph& g1, const Graph& g2) {
  Result<bool> r = TryRdfsEntails(g1, g2);
  SWDB_CHECK(r.ok(),
             "RDFS-entailment step budget exhausted; use TryRdfsEntails "
             "with explicit MatchOptions for graceful degradation");
  return *r;
}

bool RdfsEquivalent(const Graph& g1, const Graph& g2) {
  return RdfsEntails(g1, g2) && RdfsEntails(g2, g1);
}

}  // namespace swdb
