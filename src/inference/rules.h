#ifndef SWDB_INFERENCE_RULES_H_
#define SWDB_INFERENCE_RULES_H_

#include <string>
#include <vector>

#include "rdf/graph.h"
#include "util/status.h"

namespace swdb {

/// The deductive rules of the paper's §2.3.2, numbered as there.
/// Rule (1) (Group A, existential) is represented separately by a map
/// step in proofs; rules (2)–(13) add triples and are enumerated here.
enum class RuleId : int {
  kExistential = 1,       ///< Group A: G ⊢ G' when there is a map G' → G
  kSpTransitivity = 2,    ///< (A,sp,B),(B,sp,C) ⊢ (A,sp,C)
  kSpInheritance = 3,     ///< (A,sp,B),(X,A,Y) ⊢ (X,B,Y)
  kScTransitivity = 4,    ///< (A,sc,B),(B,sc,C) ⊢ (A,sc,C)
  kScTyping = 5,          ///< (A,sc,B),(X,type,A) ⊢ (X,type,B)
  kDomTyping = 6,         ///< (A,dom,B),(C,sp,A),(X,C,Y) ⊢ (X,type,B)
  kRangeTyping = 7,       ///< (A,range,B),(C,sp,A),(X,C,Y) ⊢ (Y,type,B)
  kSpReflexFromUse = 8,   ///< (X,A,Y) ⊢ (A,sp,A)
  kSpReflexVocab = 9,     ///< ⊢ (p,sp,p) for p ∈ rdfsV
  kSpReflexDomRange = 10, ///< (A,p,X) ⊢ (A,sp,A) for p ∈ {dom,range}
  kSpReflexPair = 11,     ///< (A,sp,B) ⊢ (A,sp,A),(B,sp,B)
  kScReflexFromUse = 12,  ///< (X,p,A) ⊢ (A,sc,A) for p ∈ {dom,range,type}
  kScReflexPair = 13,     ///< (A,sc,B) ⊢ (A,sc,A),(B,sc,B)
};

/// Short human-readable name of a rule, e.g. "(2) sp-transitivity".
std::string RuleName(RuleId rule);

/// One instantiation of a rule (2)–(13): concrete premise triples (which
/// must belong to the graph the rule is applied to) and the concrete
/// conclusion triples it adds. Conclusions of rules (11)/(13) have two
/// triples; rule (9) has no premises.
struct RuleApplication {
  RuleId rule = RuleId::kSpTransitivity;
  std::vector<Triple> premises;
  std::vector<Triple> conclusions;
};

/// Verifies that `app` is a correct instantiation of its rule schema:
/// premise/conclusion shapes match, shared variables are instantiated
/// uniformly, and every triple is a well-formed RDF triple (no blank in
/// predicate position; paper §2.3.2, "instantiation").
Status ValidateApplication(const RuleApplication& app);

/// Enumerates every application of rules (2)–(13) whose premises are in
/// `g` and whose conclusion set is not already fully contained in `g`.
/// Intended for small graphs (reference implementation and tests); the
/// production closure in closure.h uses an indexed semi-naive fixpoint.
std::vector<RuleApplication> EnumerateApplications(const Graph& g);

}  // namespace swdb

#endif  // SWDB_INFERENCE_RULES_H_
