#ifndef SWDB_INFERENCE_CLOSURE_H_
#define SWDB_INFERENCE_CLOSURE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "inference/rules.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "rdf/term.h"

namespace swdb {

class ThreadPool;

/// Computes RDFS-cl(G): all triples deducible from G by rules (2)–(13)
/// (paper Def. 2.7), via an indexed semi-naive fixpoint. The closure is
/// an RDF graph over universe(G) plus the rdfs-vocabulary, of size
/// Θ(|G|²) in the worst case (paper Thm 3.6(3)).
///
/// If `trace` is non-null, one validating RuleApplication is recorded for
/// every derived (non-input) triple, in derivation order — this is the
/// rule-step part of a proof of cl(G) from G (Def. 2.5).
Graph RdfsClosure(const Graph& g,
                  std::vector<RuleApplication>* trace = nullptr);

/// RDFS-cl(G) with the fixpoint's per-round rule joins partitioned
/// across `pool` (round-based semi-naive evaluation: each round expands
/// the whole frontier read-only into per-chunk conclusion buffers, then
/// merges them in pinned chunk order). The result graph is identical to
/// RdfsClosure(g) and deterministic regardless of worker count; a null
/// or zero-thread pool degrades to the sequential engine. Traces are not
/// supported (rounds do not preserve derivation order).
Graph RdfsClosureParallel(const Graph& g, ThreadPool* pool);

/// Reference implementation of RDFS-cl by iterating EnumerateApplications
/// to fixpoint. Exponentially slower constants; used to cross-check
/// RdfsClosure in tests.
Graph RdfsClosureNaive(const Graph& g);

/// A configurable subset of the deductive rules, for ablation studies
/// and for reproducing the incompleteness of the original W3C rule set
/// (Note 2.4). The default is the full system of §2.3.2.
struct RuleSet {
  bool sp_transitivity = true;  ///< rule (2)
  bool sp_inheritance = true;   ///< rule (3)
  bool sc_transitivity = true;  ///< rule (4)
  bool sc_typing = true;        ///< rule (5)
  bool dom_typing = true;       ///< rule (6), direct part (C = A)
  bool range_typing = true;     ///< rule (7), direct part (C = A)
  bool reflexivity = true;      ///< rules (8)–(13)
  /// The (C, sp, A) premise Marin added to rules (6)/(7) (Note 2.4).
  /// With this off, dom/range typing only fires on direct uses of the
  /// property — the original, incomplete W3C behaviour.
  bool marin_subproperty_typing = true;

  static RuleSet All() { return RuleSet(); }
  /// The pre-Marin system: dom/range typing without sp-lifting.
  static RuleSet PreMarin() {
    RuleSet r;
    r.marin_subproperty_typing = false;
    return r;
  }
};

/// RDFS-cl computed with a rule subset. Traces are not supported here
/// (ablated closures can have underivable premises); use RdfsClosure for
/// proof-grade traces.
Graph RdfsClosureWithRules(const Graph& g, const RuleSet& rules);

/// Observability counters for one incremental maintenance step.
struct ClosureDeltaStats {
  size_t delta_size = 0;    ///< input triples that were actually new
  size_t derived = 0;       ///< triples the step added to the closure
  size_t overdeleted = 0;   ///< closure triples suspected by a deletion
  size_t rederived = 0;     ///< suspects that survived re-derivation
};

/// Semi-naive delta extension of an existing closure (the monotone-
/// fixpoint reading of Def. 2.7): given `closure` = RDFS-cl(G) for some
/// G, returns RDFS-cl(G ∪ delta_inserts) by propagating only from the
/// delta — closure triples are seeded into the join indexes but never
/// re-expanded, so the work is proportional to the new derivations (plus
/// one linear seeding pass), not to a full refixpoint.
///
/// If `trace` is non-null it receives one validating RuleApplication per
/// *newly* derived triple, exactly as RdfsClosure would for those.
///
/// A non-null `pool` parallelizes the propagation rounds (ignored while
/// tracing); the result is identical either way.
Graph RdfsClosureDelta(const Graph& closure, const Graph& delta_inserts,
                       std::vector<RuleApplication>* trace = nullptr,
                       ClosureDeltaStats* stats = nullptr,
                       ThreadPool* pool = nullptr);

/// DRed-style deletion maintenance: given `closure` = RDFS-cl(G),
/// `deleted` ⊆ G and `base_after` = G \ deleted, returns
/// RDFS-cl(base_after) by (1) over-deleting everything forward-reachable
/// from the deleted triples through a rule application, (2) keeping the
/// untainted remainder P, and (3) re-deriving: suspects still in the
/// base or one-step derivable from P re-enter a semi-naive fixpoint over
/// P. Result is exactly the from-scratch closure (cross-checked in
/// tests), at cost proportional to the suspect set.
Graph RdfsClosureErase(const Graph& closure, const Graph& base_after,
                       const Graph& deleted,
                       ClosureDeltaStats* stats = nullptr);

/// A persistent incremental-maintenance engine for RDFS-cl(G): the
/// worklist engine's join indexes stay alive between updates, so a
/// single-triple insert costs only its new derivations — no re-seeding,
/// no refixpoint. This is what Database uses to keep its closure cache
/// maintained instead of resetting it on every mutation.
///
/// Deletions run the DRed over-delete/re-derive pass and rebuild the
/// engine state from the surviving triples (deletion is O(|closure|);
/// insertion is O(|new derivations| + |closure| merge).
class IncrementalClosure {
 public:
  /// Full fixpoint over `base`.
  explicit IncrementalClosure(const Graph& base);
  ~IncrementalClosure();
  IncrementalClosure(IncrementalClosure&&) noexcept;
  IncrementalClosure& operator=(IncrementalClosure&&) noexcept;

  /// The maintained closure. Reference stays valid across updates.
  const Graph& closure() const { return closure_; }

  /// Content version: bumped exactly when closure() changes.
  uint64_t version() const { return version_; }

  /// Extends the closure by RDFS-cl(base ∪ delta) via semi-naive
  /// propagation from the delta only. If `derived_out` is non-null it
  /// receives every triple this step added to the closure (the delta's
  /// new triples plus their derivations) — the invalidation cone
  /// consumers like the cross-epoch lean cache key off.
  void InsertDelta(const Graph& delta, ClosureDeltaStats* stats = nullptr,
                   std::vector<Triple>* derived_out = nullptr);

  /// Removes `deleted` from the base (which is now `base_after`) and
  /// re-establishes closure() = RDFS-cl(base_after) via DRed.
  void EraseDelta(const Graph& base_after, const Graph& deleted,
                  ClosureDeltaStats* stats = nullptr);

  /// Runs subsequent fixpoints (inserts and post-erase rebuilds) with
  /// their per-round rule joins partitioned across `pool`. The
  /// maintained closure is identical either way; nullptr reverts to
  /// sequential evaluation. The pool must outlive this object (or the
  /// next set_pool call).
  void set_pool(ThreadPool* pool);

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
  Graph closure_;
  uint64_t version_ = 0;
  ThreadPool* pool_ = nullptr;
};

/// Computes the semantic closure cl(G) of Def. 3.5: for ground graphs
/// the maximal equivalent ground extension, in general H_* where H is a
/// closure of the Skolemization G^*. Theorem 3.6(2) states
/// cl(G) = RDFS-cl(G); this function computes the left-hand side by its
/// definition (Skolemize → close → de-Skolemize) so tests can verify the
/// theorem against RdfsClosure.
Graph SemanticClosure(const Graph& g, Dictionary* dict);

/// Decides t ∈ cl(G) without materializing the closure, per query in
/// O(|G|) after an O(|G|) setup — the shape of paper Thm 3.6(4).
///
/// The direct decision procedure is valid when no URI is an explicit
/// proper sp-ancestor of the reserved vocabulary (e.g. a triple
/// (p, sp, sp) would let rule (3) derive brand-new sp edges). Such
/// pathological graphs are detected at construction and answered from a
/// materialized closure instead (IsDirect() reports which mode is used).
class ClosureMembership {
 public:
  /// Captures g.epoch(); the graph must outlive the index. Any use after
  /// the graph mutates is a detected error (see InSync/Refresh) — the
  /// index never silently serves stale answers.
  explicit ClosureMembership(const Graph& g);

  /// True iff t ∈ RDFS-cl(g). Aborts (SWDB_CHECK) if the underlying
  /// graph has mutated since construction/Refresh.
  bool Contains(const Triple& t) const;

  /// True if the linear-time direct procedure is in use (no materialized
  /// closure).
  bool IsDirect() const { return direct_; }

  /// True iff the underlying graph is still at the epoch this index was
  /// built from.
  bool InSync() const;
  /// The graph epoch the index was built at.
  uint64_t built_epoch() const { return built_epoch_; }
  /// Rebuilds the sp/sc adjacency (or materialized fallback) from the
  /// graph's current state and re-captures its epoch.
  void Refresh();

 private:
  void Build();
  bool DirectContains(const Triple& t) const;
  // Reachability a →* b in the given forward-adjacency relation.
  bool Reaches(const std::unordered_map<Term, std::vector<Term>>& fwd,
               Term a, Term b) const;

  const Graph* g_;
  uint64_t built_epoch_ = 0;
  bool direct_ = true;

  // Direct mode state.
  std::unordered_map<Term, std::vector<Term>> sp_fwd_;
  std::unordered_map<Term, std::vector<Term>> sc_fwd_;
  std::unordered_set<Term> props_;    // terms with (t,sp,t) in cl(G)
  std::unordered_set<Term> classes_;  // terms with (t,sc,t) in cl(G)

  // Fallback mode state.
  std::optional<Graph> materialized_;
};

/// Budget-aware RDFS entailment g1 ⊨ g2, characterized by the existence
/// of a map g2 → RDFS-cl(g1) (paper Thm 2.8(1)). Returns kLimitExceeded
/// instead of aborting when the matcher's step budget is exhausted.
Result<bool> TryRdfsEntails(const Graph& g1, const Graph& g2,
                            MatchOptions options = MatchOptions());

/// RDFS entailment g1 ⊨ g2. Thin shim over TryRdfsEntails that asserts
/// the step budget was not exhausted.
bool RdfsEntails(const Graph& g1, const Graph& g2);

/// RDFS equivalence: entailment in both directions (paper §2.3.1).
bool RdfsEquivalent(const Graph& g1, const Graph& g2);

}  // namespace swdb

#endif  // SWDB_INFERENCE_CLOSURE_H_
