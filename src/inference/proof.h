#ifndef SWDB_INFERENCE_PROOF_H_
#define SWDB_INFERENCE_PROOF_H_

#include <variant>
#include <vector>

#include "inference/rules.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/status.h"

namespace swdb {

/// One step of a proof G ⊢ H (paper Def. 2.5). Either:
///  - a rule step: P_j = P_{j-1} ∪ R' for an instantiation R/R' of one of
///    the rules (2)–(13) with R ⊆ P_{j-1}; or
///  - a map step (rule (1), Group A): P_j is any graph with a map
///    μ : P_j → P_{j-1}. In a proof object the resulting graph is stored
///    explicitly together with the witnessing map.
struct RuleStep {
  RuleApplication application;
};
struct MapStep {
  TermMap mu;       ///< map with mu(result) ⊆ previous graph
  Graph result;     ///< the graph P_j this step transitions to
};
using ProofStep = std::variant<RuleStep, MapStep>;

/// A proof of `goal` from `start`: the sequence of graphs P_1 = start,
/// ..., P_k = goal is reconstructed by replaying the steps.
struct Proof {
  Graph start;
  Graph goal;
  std::vector<ProofStep> steps;
};

/// Checks a proof object against Def. 2.5: every rule step's premises are
/// present and its instantiation validates; every map step's map sends
/// its result graph into the previous graph; and the final graph equals
/// the goal. Runs in time polynomial in the proof size — this is the
/// polynomial witness check of Thm 2.10.
Status CheckProof(const Proof& proof);

/// Constructs a proof of g2 from g1, or NotFound if g1 ⊭ g2. The proof
/// has the canonical shape from the proof of Thm 2.10: the rule steps of
/// the closure computation RDFS-cl(g1), followed by one map step
/// μ : g2 → RDFS-cl(g1). The map search honours `options` (budget,
/// stats); kLimitExceeded propagates to the caller.
Result<Proof> ProveEntailment(const Graph& g1, const Graph& g2,
                              MatchOptions options = MatchOptions());

}  // namespace swdb

#endif  // SWDB_INFERENCE_PROOF_H_
