#include "inference/proof.h"

#include "inference/closure.h"
#include "rdf/hom.h"
#include "util/str.h"

namespace swdb {

Status CheckProof(const Proof& proof) {
  Graph current = proof.start;
  size_t index = 0;
  for (const ProofStep& step : proof.steps) {
    ++index;
    if (const RuleStep* rs = std::get_if<RuleStep>(&step)) {
      Status valid = ValidateApplication(rs->application);
      if (!valid.ok()) return valid;
      for (const Triple& premise : rs->application.premises) {
        if (!current.Contains(premise)) {
          return Status::InvalidArgument(
              NumberedName("proof step ", index) +
              ": premise not present in current graph");
        }
      }
      for (const Triple& conclusion : rs->application.conclusions) {
        current.Insert(conclusion);
      }
    } else {
      const MapStep& ms = std::get<MapStep>(step);
      if (!ms.mu.Apply(ms.result).IsSubgraphOf(current)) {
        return Status::InvalidArgument(
            NumberedName("proof step ", index) +
            ": map step image is not a subgraph of the current graph");
      }
      current = ms.result;
    }
  }
  if (current != proof.goal) {
    return Status::InvalidArgument("proof does not end at the goal graph");
  }
  return Status::OK();
}

Result<Proof> ProveEntailment(const Graph& g1, const Graph& g2,
                              MatchOptions options) {
  Proof proof;
  proof.start = g1;
  proof.goal = g2;

  std::vector<RuleApplication> trace;
  Graph closure = RdfsClosure(g1, &trace);

  Result<std::optional<TermMap>> hom = FindHomomorphism(g2, closure, options);
  if (!hom.ok()) return hom.status();
  if (!hom->has_value()) {
    return Status::NotFound("g1 does not entail g2: no map into RDFS-cl(g1)");
  }

  for (RuleApplication& app : trace) {
    proof.steps.push_back(RuleStep{std::move(app)});
  }
  proof.steps.push_back(MapStep{**hom, g2});
  return proof;
}

}  // namespace swdb
