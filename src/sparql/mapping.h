#ifndef SWDB_SPARQL_MAPPING_H_
#define SWDB_SPARQL_MAPPING_H_

#include <vector>

#include "rdf/map.h"
#include "rdf/term.h"

namespace swdb {

/// SPARQL-algebra mappings, following the formal semantics the paper's
/// authors later gave to SPARQL (Pérez, Arenas, Gutierrez — reference
/// [34] of the paper). A mapping is a *partial* valuation μ : V ⇀ UB;
/// we reuse TermMap, whose binding set is the mapping's domain.
using Mapping = TermMap;

/// A set of mappings (the value of a graph pattern). Kept deduplicated
/// and in a deterministic order by the algebra operations.
using MappingSet = std::vector<Mapping>;

/// μ1 and μ2 are compatible when they agree on every shared variable —
/// μ1 ∪ μ2 is then itself a mapping ([34] Def. 2).
bool Compatible(const Mapping& a, const Mapping& b);

/// The union μ1 ∪ μ2 of two compatible mappings.
Mapping MergeMappings(const Mapping& a, const Mapping& b);

/// Ω1 ⋈ Ω2 = {μ1 ∪ μ2 | μ1 ∈ Ω1, μ2 ∈ Ω2, compatible} ([34] Def. 3).
MappingSet JoinSets(const MappingSet& a, const MappingSet& b);

/// Ω1 ∪ Ω2, deduplicated.
MappingSet UnionSets(const MappingSet& a, const MappingSet& b);

/// Ω1 \ Ω2 = {μ1 ∈ Ω1 | no μ2 ∈ Ω2 is compatible with μ1}.
MappingSet DiffSets(const MappingSet& a, const MappingSet& b);

/// Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 \ Ω2) — the OPTIONAL operator.
MappingSet LeftJoinSets(const MappingSet& a, const MappingSet& b);

/// Restricts every mapping to the given variables (SELECT projection);
/// deduplicates the result.
MappingSet ProjectSet(const MappingSet& set, const std::vector<Term>& vars);

/// Canonicalizes: sorts by (sorted) bindings and removes duplicates.
void NormalizeSet(MappingSet* set);

}  // namespace swdb

#endif  // SWDB_SPARQL_MAPPING_H_
