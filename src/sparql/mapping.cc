#include "sparql/mapping.h"

#include <algorithm>

namespace swdb {

namespace {

// Deterministic ordering key: the sorted (variable, value) pairs.
std::vector<std::pair<Term, Term>> SortedBindings(const Mapping& m) {
  std::vector<std::pair<Term, Term>> out(m.bindings().begin(),
                                         m.bindings().end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool Compatible(const Mapping& a, const Mapping& b) {
  // Iterate over the smaller domain.
  const Mapping& small = a.size() <= b.size() ? a : b;
  const Mapping& large = a.size() <= b.size() ? b : a;
  for (const auto& [var, value] : small.bindings()) {
    if (large.IsBound(var) && large.Apply(var) != value) return false;
  }
  return true;
}

Mapping MergeMappings(const Mapping& a, const Mapping& b) {
  Mapping merged = a;
  for (const auto& [var, value] : b.bindings()) {
    merged.Bind(var, value);
  }
  return merged;
}

MappingSet JoinSets(const MappingSet& a, const MappingSet& b) {
  MappingSet out;
  for (const Mapping& m1 : a) {
    for (const Mapping& m2 : b) {
      if (Compatible(m1, m2)) {
        out.push_back(MergeMappings(m1, m2));
      }
    }
  }
  NormalizeSet(&out);
  return out;
}

MappingSet UnionSets(const MappingSet& a, const MappingSet& b) {
  MappingSet out = a;
  out.insert(out.end(), b.begin(), b.end());
  NormalizeSet(&out);
  return out;
}

MappingSet DiffSets(const MappingSet& a, const MappingSet& b) {
  MappingSet out;
  for (const Mapping& m1 : a) {
    bool has_compatible = false;
    for (const Mapping& m2 : b) {
      if (Compatible(m1, m2)) {
        has_compatible = true;
        break;
      }
    }
    if (!has_compatible) out.push_back(m1);
  }
  NormalizeSet(&out);
  return out;
}

MappingSet LeftJoinSets(const MappingSet& a, const MappingSet& b) {
  return UnionSets(JoinSets(a, b), DiffSets(a, b));
}

MappingSet ProjectSet(const MappingSet& set, const std::vector<Term>& vars) {
  MappingSet out;
  out.reserve(set.size());
  for (const Mapping& m : set) {
    Mapping projected;
    for (Term var : vars) {
      if (m.IsBound(var)) projected.Bind(var, m.Apply(var));
    }
    out.push_back(std::move(projected));
  }
  NormalizeSet(&out);
  return out;
}

void NormalizeSet(MappingSet* set) {
  std::vector<std::pair<std::vector<std::pair<Term, Term>>, size_t>> keyed;
  keyed.reserve(set->size());
  for (size_t i = 0; i < set->size(); ++i) {
    keyed.emplace_back(SortedBindings((*set)[i]), i);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  MappingSet out;
  out.reserve(set->size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0 && keyed[i].first == keyed[i - 1].first) continue;
    out.push_back(std::move((*set)[keyed[i].second]));
  }
  *set = std::move(out);
}

}  // namespace swdb
