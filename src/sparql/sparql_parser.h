#ifndef SWDB_SPARQL_SPARQL_PARSER_H_
#define SWDB_SPARQL_SPARQL_PARSER_H_

#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "sparql/pattern.h"
#include "util/status.h"

namespace swdb {

/// A parsed SELECT query: projection variables plus a pattern.
struct SparqlQuery {
  std::vector<Term> select;  ///< empty = SELECT * (all pattern variables)
  SparqlPattern pattern = SparqlPattern::Bgp(Graph());
};

/// Parses a small SPARQL-like concrete syntax onto the [34] algebra:
///
///   SELECT ?X ?N WHERE {
///     ?X name ?N .
///     OPTIONAL { ?X email ?E . }
///     { ?X web ?W . } UNION { ?X phone ?P . }
///     FILTER ( bound(?E) && ?N != george )
///   }
///
/// Grammar (ASCII, case-sensitive keywords):
///   query   := 'SELECT' ( '*' | var+ ) 'WHERE' group
///   group   := '{' element* '}'
///   element := triple '.'                     -- extends the running BGP
///            | 'OPTIONAL' group               -- OPT(sofar, group)
///            | group ('UNION' group)*         -- AND(sofar, union-chain)
///            | 'FILTER' '(' cond ')'          -- applied to the whole group
///   cond    := or ; or := and ('||' and)* ; and := atom ('&&' atom)*
///   atom    := '!' atom | '(' cond ')' | 'bound' '(' var ')'
///            | term ('=' | '!=') term
///
/// Terms use the graph parser's syntax (?var, IRIs, keywords).
Result<SparqlQuery> ParseSparql(std::string_view text, Dictionary* dict);

}  // namespace swdb

#endif  // SWDB_SPARQL_SPARQL_PARSER_H_
