#ifndef SWDB_SPARQL_PATTERN_H_
#define SWDB_SPARQL_PATTERN_H_

#include <memory>
#include <string>

#include "rdf/graph.h"
#include "rdf/hom.h"
#include "sparql/mapping.h"
#include "util/status.h"

namespace swdb {

/// A built-in filter condition R ([34] §2.1): bound(?X), equality
/// between a variable and a term or another variable, and the Boolean
/// combinations.
class FilterExpr {
 public:
  enum class Kind { kBound, kEquals, kAnd, kOr, kNot };

  /// bound(?X).
  static FilterExpr Bound(Term var);
  /// lhs = rhs, where each side is a variable or a UB term.
  static FilterExpr Equals(Term lhs, Term rhs);
  static FilterExpr And(FilterExpr left, FilterExpr right);
  static FilterExpr Or(FilterExpr left, FilterExpr right);
  static FilterExpr Not(FilterExpr inner);

  Kind kind() const { return kind_; }
  Term lhs() const { return lhs_; }
  Term rhs() const { return rhs_; }
  const FilterExpr& left() const { return *children_[0]; }
  const FilterExpr& right() const { return *children_[1]; }

  /// μ ⊨ R. A comparison touching an unbound variable is not satisfied
  /// (and its negation is), matching [34]'s error-as-false reading.
  bool Satisfied(const Mapping& m) const;

 private:
  FilterExpr() = default;

  Kind kind_ = Kind::kBound;
  Term lhs_;
  Term rhs_;
  std::vector<std::shared_ptr<const FilterExpr>> children_;
};

/// A SPARQL graph pattern ([34] Def. 1): basic graph patterns combined
/// with AND (join), OPT (left join), UNION and FILTER.
class SparqlPattern {
 public:
  enum class Kind { kBgp, kAnd, kOptional, kUnion, kFilter };

  /// A basic graph pattern: a set of triple patterns evaluated as one
  /// conjunctive block. Triples may contain variables anywhere and must
  /// be well-formed patterns; blanks are not allowed (use variables).
  static SparqlPattern Bgp(Graph triples);
  static SparqlPattern And(SparqlPattern left, SparqlPattern right);
  static SparqlPattern Optional(SparqlPattern left, SparqlPattern right);
  static SparqlPattern Union(SparqlPattern left, SparqlPattern right);
  static SparqlPattern Filter(SparqlPattern inner, FilterExpr condition);

  Kind kind() const { return kind_; }
  const Graph& bgp() const { return bgp_; }
  const SparqlPattern& left() const { return *children_[0]; }
  const SparqlPattern& right() const { return *children_[1]; }
  const FilterExpr& condition() const { return *condition_; }

  /// All variables mentioned anywhere in the pattern, sorted.
  std::vector<Term> Variables() const;

  /// Validates every BGP (well-formed patterns, no blank nodes).
  Status Validate() const;

 private:
  SparqlPattern() = default;

  Kind kind_ = Kind::kBgp;
  Graph bgp_;
  std::vector<std::shared_ptr<const SparqlPattern>> children_;
  std::shared_ptr<const FilterExpr> condition_;
};

/// Evaluates a pattern over a graph: the mapping-set semantics of [34]
/// (Def. 3): BGPs produce the matchings of their triples; AND joins,
/// OPT left-joins, UNION unions, FILTER selects. Evaluation is against
/// g as given — pass RdfsClosure(g) or NormalForm(g) for RDFS-aware
/// matching.
Result<MappingSet> EvalPattern(const Graph& g, const SparqlPattern& p,
                               MatchOptions options = MatchOptions());

/// SELECT: evaluates and projects onto the given variables.
Result<MappingSet> EvalSelect(const Graph& g, const SparqlPattern& p,
                              const std::vector<Term>& select_vars,
                              MatchOptions options = MatchOptions());

}  // namespace swdb

#endif  // SWDB_SPARQL_PATTERN_H_
