#include "sparql/sparql_parser.h"

#include <optional>

#include "parser/text.h"

namespace swdb {

namespace {

// Token kinds for the mini-grammar.
enum class Tok {
  kEnd,
  kWord,     // SELECT / WHERE / OPTIONAL / FILTER / bound / term text
  kVar,      // ?name
  kStar,     // *
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kDot,
  kEq,       // =
  kNeq,      // !=
  kBang,     // !
  kAndAnd,   // &&
  kOrOr,     // ||
};

struct Token {
  Tok kind;
  std::string_view text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& Peek() const { return current_; }

  Token Take() {
    Token t = current_;
    Advance();
    return t;
  }

 private:
  void Advance() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      current_ = {Tok::kEnd, {}};
      return;
    }
    char c = text_[pos_];
    auto single = [&](Tok kind) {
      current_ = {kind, text_.substr(pos_, 1)};
      ++pos_;
    };
    switch (c) {
      case '{':
        single(Tok::kLBrace);
        return;
      case '}':
        single(Tok::kRBrace);
        return;
      case '(':
        single(Tok::kLParen);
        return;
      case ')':
        single(Tok::kRParen);
        return;
      case '.':
        single(Tok::kDot);
        return;
      case '*':
        single(Tok::kStar);
        return;
      case '=':
        single(Tok::kEq);
        return;
      case '!':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          current_ = {Tok::kNeq, text_.substr(pos_, 2)};
          pos_ += 2;
        } else {
          single(Tok::kBang);
        }
        return;
      case '&':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '&') {
          current_ = {Tok::kAndAnd, text_.substr(pos_, 2)};
          pos_ += 2;
          return;
        }
        single(Tok::kWord);
        return;
      case '|':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '|') {
          current_ = {Tok::kOrOr, text_.substr(pos_, 2)};
          pos_ += 2;
          return;
        }
        single(Tok::kWord);
        return;
      default:
        break;
    }
    size_t start = pos_;
    if (c == '<') {
      while (pos_ < text_.size() && text_[pos_] != '>') ++pos_;
      if (pos_ < text_.size()) ++pos_;
      current_ = {Tok::kWord, text_.substr(start, pos_ - start)};
      return;
    }
    while (pos_ < text_.size()) {
      char d = text_[pos_];
      if (d == ' ' || d == '\t' || d == '\n' || d == '\r' || d == '{' ||
          d == '}' || d == '(' || d == ')' || d == '.' || d == '=' ||
          d == '!' || d == '&' || d == '|' || d == '*') {
        break;
      }
      ++pos_;
    }
    std::string_view word = text_.substr(start, pos_ - start);
    current_ = {word.front() == '?' ? Tok::kVar : Tok::kWord, word};
  }

  std::string_view text_;
  size_t pos_ = 0;
  Token current_{Tok::kEnd, {}};
};

class Parser {
 public:
  Parser(std::string_view text, Dictionary* dict)
      : lexer_(text), dict_(dict) {}

  Result<SparqlQuery> Parse() {
    SparqlQuery query;
    if (!TakeKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    if (lexer_.Peek().kind == Tok::kStar) {
      lexer_.Take();
    } else {
      while (lexer_.Peek().kind == Tok::kVar) {
        Result<Term> var = ParseTerm(lexer_.Take().text, dict_, true);
        if (!var.ok()) return var.status();
        query.select.push_back(*var);
      }
      if (query.select.empty()) {
        return Error("SELECT needs '*' or at least one variable");
      }
    }
    if (!TakeKeyword("WHERE")) {
      return Error("expected WHERE");
    }
    Result<SparqlPattern> group = ParseGroup();
    if (!group.ok()) return group.status();
    if (lexer_.Peek().kind != Tok::kEnd) {
      return Error("trailing input after the WHERE group");
    }
    query.pattern = *std::move(group);
    Status valid = query.pattern.Validate();
    if (!valid.ok()) return valid;
    return query;
  }

 private:
  Status Error(const std::string& message) {
    return Status::ParseError("SPARQL: " + message);
  }

  bool TakeKeyword(std::string_view keyword) {
    if (lexer_.Peek().kind == Tok::kWord && lexer_.Peek().text == keyword) {
      lexer_.Take();
      return true;
    }
    return false;
  }

  // group := '{' element* '}'
  Result<SparqlPattern> ParseGroup() {
    if (lexer_.Peek().kind != Tok::kLBrace) {
      return Error("expected '{'");
    }
    lexer_.Take();

    std::optional<SparqlPattern> acc;
    Graph current_bgp;
    std::optional<FilterExpr> filter;

    auto flush_bgp = [&]() {
      if (current_bgp.empty()) return;
      SparqlPattern bgp = SparqlPattern::Bgp(std::move(current_bgp));
      current_bgp = Graph();
      acc = acc.has_value()
                ? SparqlPattern::And(*std::move(acc), std::move(bgp))
                : std::move(bgp);
    };

    for (;;) {
      const Token& token = lexer_.Peek();
      if (token.kind == Tok::kRBrace) {
        lexer_.Take();
        break;
      }
      if (token.kind == Tok::kEnd) {
        return Error("unterminated group: missing '}'");
      }
      if (token.kind == Tok::kWord && token.text == "OPTIONAL") {
        lexer_.Take();
        flush_bgp();
        Result<SparqlPattern> inner = ParseGroup();
        if (!inner.ok()) return inner.status();
        SparqlPattern base =
            acc.has_value() ? *std::move(acc) : SparqlPattern::Bgp(Graph());
        acc = SparqlPattern::Optional(std::move(base), *std::move(inner));
        continue;
      }
      if (token.kind == Tok::kWord && token.text == "FILTER") {
        lexer_.Take();
        if (lexer_.Peek().kind != Tok::kLParen) {
          return Error("FILTER needs '( ... )'");
        }
        lexer_.Take();
        Result<FilterExpr> cond = ParseOr();
        if (!cond.ok()) return cond.status();
        if (lexer_.Peek().kind != Tok::kRParen) {
          return Error("expected ')' after FILTER condition");
        }
        lexer_.Take();
        filter = filter.has_value()
                     ? FilterExpr::And(*std::move(filter), *std::move(cond))
                     : *std::move(cond);
        continue;
      }
      if (token.kind == Tok::kLBrace) {
        flush_bgp();
        Result<SparqlPattern> sub = ParseGroup();
        if (!sub.ok()) return sub.status();
        SparqlPattern chain = *std::move(sub);
        while (TakeKeyword("UNION")) {
          Result<SparqlPattern> next = ParseGroup();
          if (!next.ok()) return next.status();
          chain = SparqlPattern::Union(std::move(chain), *std::move(next));
        }
        acc = acc.has_value()
                  ? SparqlPattern::And(*std::move(acc), std::move(chain))
                  : std::move(chain);
        continue;
      }
      // Otherwise: a triple "term term term .".
      Result<Triple> triple = ParseTriple();
      if (!triple.ok()) return triple.status();
      current_bgp.Insert(*triple);
    }

    flush_bgp();
    SparqlPattern result =
        acc.has_value() ? *std::move(acc) : SparqlPattern::Bgp(Graph());
    if (filter.has_value()) {
      result = SparqlPattern::Filter(std::move(result), *std::move(filter));
    }
    return result;
  }

  Result<Triple> ParseTriple() {
    Term parts[3];
    for (int i = 0; i < 3; ++i) {
      const Token& token = lexer_.Peek();
      if (token.kind != Tok::kWord && token.kind != Tok::kVar) {
        return Error("expected a term in a triple pattern");
      }
      Result<Term> term = ParseTerm(lexer_.Take().text, dict_, true);
      if (!term.ok()) return term.status();
      parts[i] = *term;
    }
    if (lexer_.Peek().kind != Tok::kDot) {
      return Error("expected '.' after a triple pattern");
    }
    lexer_.Take();
    Triple t(parts[0], parts[1], parts[2]);
    if (!t.IsWellFormedPattern()) {
      return Error("blank node in predicate position");
    }
    return t;
  }

  // cond := or ; or := and ('||' and)* ; and := atom ('&&' atom)*
  Result<FilterExpr> ParseOr() {
    Result<FilterExpr> left = ParseAnd();
    if (!left.ok()) return left;
    FilterExpr expr = *std::move(left);
    while (lexer_.Peek().kind == Tok::kOrOr) {
      lexer_.Take();
      Result<FilterExpr> right = ParseAnd();
      if (!right.ok()) return right;
      expr = FilterExpr::Or(std::move(expr), *std::move(right));
    }
    return expr;
  }

  Result<FilterExpr> ParseAnd() {
    Result<FilterExpr> left = ParseAtom();
    if (!left.ok()) return left;
    FilterExpr expr = *std::move(left);
    while (lexer_.Peek().kind == Tok::kAndAnd) {
      lexer_.Take();
      Result<FilterExpr> right = ParseAtom();
      if (!right.ok()) return right;
      expr = FilterExpr::And(std::move(expr), *std::move(right));
    }
    return expr;
  }

  Result<FilterExpr> ParseAtom() {
    const Token& token = lexer_.Peek();
    if (token.kind == Tok::kBang) {
      lexer_.Take();
      Result<FilterExpr> inner = ParseAtom();
      if (!inner.ok()) return inner;
      return FilterExpr::Not(*std::move(inner));
    }
    if (token.kind == Tok::kLParen) {
      lexer_.Take();
      Result<FilterExpr> inner = ParseOr();
      if (!inner.ok()) return inner;
      if (lexer_.Peek().kind != Tok::kRParen) {
        return Error("expected ')'");
      }
      lexer_.Take();
      return inner;
    }
    if (token.kind == Tok::kWord && token.text == "bound") {
      lexer_.Take();
      if (lexer_.Peek().kind != Tok::kLParen) {
        return Error("bound needs '(?var)'");
      }
      lexer_.Take();
      if (lexer_.Peek().kind != Tok::kVar) {
        return Error("bound needs a variable");
      }
      Result<Term> var = ParseTerm(lexer_.Take().text, dict_, true);
      if (!var.ok()) return var.status();
      if (lexer_.Peek().kind != Tok::kRParen) {
        return Error("expected ')' after bound variable");
      }
      lexer_.Take();
      return FilterExpr::Bound(*var);
    }
    // term (= | !=) term
    if (token.kind != Tok::kWord && token.kind != Tok::kVar) {
      return Error("expected a filter atom");
    }
    Result<Term> lhs = ParseTerm(lexer_.Take().text, dict_, true);
    if (!lhs.ok()) return lhs.status();
    Tok op = lexer_.Peek().kind;
    if (op != Tok::kEq && op != Tok::kNeq) {
      return Error("expected '=' or '!=' in a comparison");
    }
    lexer_.Take();
    const Token& rhs_token = lexer_.Peek();
    if (rhs_token.kind != Tok::kWord && rhs_token.kind != Tok::kVar) {
      return Error("expected a term after the comparison operator");
    }
    Result<Term> rhs = ParseTerm(lexer_.Take().text, dict_, true);
    if (!rhs.ok()) return rhs.status();
    FilterExpr eq = FilterExpr::Equals(*lhs, *rhs);
    return op == Tok::kEq ? eq : FilterExpr::Not(std::move(eq));
  }

  Lexer lexer_;
  Dictionary* dict_;
};

}  // namespace

Result<SparqlQuery> ParseSparql(std::string_view text, Dictionary* dict) {
  Parser parser(text, dict);
  Result<SparqlQuery> query = parser.Parse();
  if (!query.ok()) return query;
  if (query->select.empty()) {
    query->select = query->pattern.Variables();
  }
  return query;
}

}  // namespace swdb
