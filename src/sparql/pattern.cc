#include "sparql/pattern.h"

#include <algorithm>

namespace swdb {

// ---------------------------------------------------------------------------
// FilterExpr

FilterExpr FilterExpr::Bound(Term var) {
  FilterExpr e;
  e.kind_ = Kind::kBound;
  e.lhs_ = var;
  return e;
}

FilterExpr FilterExpr::Equals(Term lhs, Term rhs) {
  FilterExpr e;
  e.kind_ = Kind::kEquals;
  e.lhs_ = lhs;
  e.rhs_ = rhs;
  return e;
}

FilterExpr FilterExpr::And(FilterExpr left, FilterExpr right) {
  FilterExpr e;
  e.kind_ = Kind::kAnd;
  e.children_.push_back(std::make_shared<const FilterExpr>(std::move(left)));
  e.children_.push_back(
      std::make_shared<const FilterExpr>(std::move(right)));
  return e;
}

FilterExpr FilterExpr::Or(FilterExpr left, FilterExpr right) {
  FilterExpr e;
  e.kind_ = Kind::kOr;
  e.children_.push_back(std::make_shared<const FilterExpr>(std::move(left)));
  e.children_.push_back(
      std::make_shared<const FilterExpr>(std::move(right)));
  return e;
}

FilterExpr FilterExpr::Not(FilterExpr inner) {
  FilterExpr e;
  e.kind_ = Kind::kNot;
  e.children_.push_back(
      std::make_shared<const FilterExpr>(std::move(inner)));
  return e;
}

bool FilterExpr::Satisfied(const Mapping& m) const {
  switch (kind_) {
    case Kind::kBound:
      return m.IsBound(lhs_);
    case Kind::kEquals: {
      // A side that is a variable must be bound; otherwise the
      // comparison is in error and reads as false.
      Term l = lhs_;
      if (l.IsVar()) {
        if (!m.IsBound(l)) return false;
        l = m.Apply(l);
      }
      Term r = rhs_;
      if (r.IsVar()) {
        if (!m.IsBound(r)) return false;
        r = m.Apply(r);
      }
      return l == r;
    }
    case Kind::kAnd:
      return left().Satisfied(m) && right().Satisfied(m);
    case Kind::kOr:
      return left().Satisfied(m) || right().Satisfied(m);
    case Kind::kNot:
      return !left().Satisfied(m);
  }
  return false;
}

// ---------------------------------------------------------------------------
// SparqlPattern

SparqlPattern SparqlPattern::Bgp(Graph triples) {
  SparqlPattern p;
  p.kind_ = Kind::kBgp;
  p.bgp_ = std::move(triples);
  return p;
}

SparqlPattern SparqlPattern::And(SparqlPattern left, SparqlPattern right) {
  SparqlPattern p;
  p.kind_ = Kind::kAnd;
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(left)));
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(right)));
  return p;
}

SparqlPattern SparqlPattern::Optional(SparqlPattern left,
                                      SparqlPattern right) {
  SparqlPattern p;
  p.kind_ = Kind::kOptional;
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(left)));
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(right)));
  return p;
}

SparqlPattern SparqlPattern::Union(SparqlPattern left, SparqlPattern right) {
  SparqlPattern p;
  p.kind_ = Kind::kUnion;
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(left)));
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(right)));
  return p;
}

SparqlPattern SparqlPattern::Filter(SparqlPattern inner,
                                    FilterExpr condition) {
  SparqlPattern p;
  p.kind_ = Kind::kFilter;
  p.children_.push_back(
      std::make_shared<const SparqlPattern>(std::move(inner)));
  p.condition_ = std::make_shared<const FilterExpr>(std::move(condition));
  return p;
}

std::vector<Term> SparqlPattern::Variables() const {
  std::vector<Term> vars;
  if (kind_ == Kind::kBgp) {
    vars = bgp_.Variables();
  } else {
    for (const auto& child : children_) {
      std::vector<Term> sub = child->Variables();
      vars.insert(vars.end(), sub.begin(), sub.end());
    }
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

Status SparqlPattern::Validate() const {
  if (kind_ == Kind::kBgp) {
    for (const Triple& t : bgp_) {
      if (!t.IsWellFormedPattern()) {
        return Status::InvalidArgument(
            "BGP triple with a blank node in predicate position");
      }
      if (t.s.IsBlank() || t.o.IsBlank()) {
        return Status::InvalidArgument(
            "BGPs use variables, not blank nodes");
      }
    }
    return Status::OK();
  }
  for (const auto& child : children_) {
    Status s = child->Validate();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Evaluation

namespace {

Result<MappingSet> EvalBgp(const Graph& g, const Graph& bgp,
                           const MatchOptions& options) {
  MappingSet out;
  PatternMatcher matcher(bgp, &g, options);
  Status status = matcher.Enumerate([&out](const Mapping& m) {
    out.push_back(m);
    return true;
  });
  if (!status.ok()) return status;
  NormalizeSet(&out);
  return out;
}

}  // namespace

Result<MappingSet> EvalPattern(const Graph& g, const SparqlPattern& p,
                               MatchOptions options) {
  Status valid = p.Validate();
  if (!valid.ok()) return valid;

  switch (p.kind()) {
    case SparqlPattern::Kind::kBgp:
      return EvalBgp(g, p.bgp(), options);
    case SparqlPattern::Kind::kAnd: {
      Result<MappingSet> l = EvalPattern(g, p.left(), options);
      if (!l.ok()) return l.status();
      Result<MappingSet> r = EvalPattern(g, p.right(), options);
      if (!r.ok()) return r.status();
      return JoinSets(*l, *r);
    }
    case SparqlPattern::Kind::kOptional: {
      Result<MappingSet> l = EvalPattern(g, p.left(), options);
      if (!l.ok()) return l.status();
      Result<MappingSet> r = EvalPattern(g, p.right(), options);
      if (!r.ok()) return r.status();
      return LeftJoinSets(*l, *r);
    }
    case SparqlPattern::Kind::kUnion: {
      Result<MappingSet> l = EvalPattern(g, p.left(), options);
      if (!l.ok()) return l.status();
      Result<MappingSet> r = EvalPattern(g, p.right(), options);
      if (!r.ok()) return r.status();
      return UnionSets(*l, *r);
    }
    case SparqlPattern::Kind::kFilter: {
      Result<MappingSet> inner = EvalPattern(g, p.left(), options);
      if (!inner.ok()) return inner.status();
      MappingSet out;
      for (const Mapping& m : *inner) {
        if (p.condition().Satisfied(m)) out.push_back(m);
      }
      NormalizeSet(&out);
      return out;
    }
  }
  return Status::Internal("unknown pattern kind");
}

Result<MappingSet> EvalSelect(const Graph& g, const SparqlPattern& p,
                              const std::vector<Term>& select_vars,
                              MatchOptions options) {
  Result<MappingSet> all = EvalPattern(g, p, options);
  if (!all.ok()) return all.status();
  return ProjectSet(*all, select_vars);
}

}  // namespace swdb
