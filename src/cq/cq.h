#ifndef SWDB_CQ_CQ_H_
#define SWDB_CQ_CQ_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"

namespace swdb {

/// A binary atom R_rel(a, b) of a Boolean conjunctive query. Arguments
/// are constants (IRI or blank-as-constant terms) or variables (kVar
/// terms).
struct CqAtom {
  Term relation;
  Term a;
  Term b;
};

/// A Boolean conjunctive query: the conjunction of its atoms, variables
/// existentially quantified (paper §2.4's Q_G).
struct BooleanCq {
  std::vector<CqAtom> atoms;

  /// Q_G: one atom R_p(s, o) per triple (s,p,o) ∈ g, with the blank
  /// nodes of g turned into existential variables (keeping their ids).
  static BooleanCq FromGraph(const Graph& g);

  /// All distinct variables, sorted.
  std::vector<Term> Variables() const;
};

/// The relational database D_G associated to a simple RDF graph: one
/// binary relation R_p per predicate, containing {(s,o) : (s,p,o) ∈ g}.
/// Blank nodes of g appear as plain constants in the active domain
/// (paper §2.4).
class RelationalDb {
 public:
  /// D_G from a graph.
  static RelationalDb FromGraph(const Graph& g);

  /// Tuples of relation R_p (empty if the relation does not exist).
  const std::vector<std::pair<Term, Term>>& Relation(Term p) const;

  size_t relation_count() const { return relations_.size(); }

 private:
  std::unordered_map<Term, std::vector<std::pair<Term, Term>>> relations_;
  std::vector<std::pair<Term, Term>> empty_;
};

/// A cycle induced by blank nodes (paper §2.4): a closed sequence of
/// 2+ distinct positions through universe(g) where consecutive elements
/// are joined by a triple in either direction and all elements are blank.
/// Parallel triples between two blanks and blank self-loops count.
/// If g has no such cycle, Q_g is α-acyclic (paper §2.4, citing [40]).
bool HasBlankInducedCycle(const Graph& g);

/// GYO-reduction: α-acyclicity of the query hypergraph, and on success a
/// join forest: parent[i] is the atom index atom i was eared into, or
/// nullopt for roots.
bool GyoAcyclic(const BooleanCq& q,
                std::vector<std::optional<size_t>>* parent_out = nullptr);

/// Evaluates a Boolean CQ by backtracking (reference semantics; NP-hard
/// in general).
bool EvaluateByBacktracking(const BooleanCq& q, const RelationalDb& db);

/// Evaluates an α-acyclic Boolean CQ in polynomial time by Yannakakis'
/// semijoin algorithm over a GYO join forest (paper §2.4, citing [40]).
/// Returns std::nullopt if the query is not α-acyclic.
std::optional<bool> EvaluateAcyclic(const BooleanCq& q,
                                    const RelationalDb& db);

/// Simple entailment g1 ⊨ g2 through the CQ connection of §2.4:
/// D_{g1} ⊨ Q_{g2}. Uses Yannakakis when Q_{g2} is α-acyclic (the
/// polynomial regime the paper identifies for blank-acyclic g2) and
/// backtracking otherwise. `used_acyclic_out` reports the path taken.
bool CqSimpleEntails(const Graph& g1, const Graph& g2,
                     bool* used_acyclic_out = nullptr);

}  // namespace swdb

#endif  // SWDB_CQ_CQ_H_
