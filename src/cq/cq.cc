#include "cq/cq.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>
#include <set>
#include <unordered_set>

namespace swdb {

BooleanCq BooleanCq::FromGraph(const Graph& g) {
  BooleanCq q;
  q.atoms.reserve(g.size());
  auto as_var = [](Term t) {
    return t.IsBlank() ? Term::Var(t.id()) : t;
  };
  for (const Triple& t : g) {
    assert(t.p.IsIri() && "Q_G is defined for well-formed graphs");
    q.atoms.push_back(CqAtom{t.p, as_var(t.s), as_var(t.o)});
  }
  return q;
}

std::vector<Term> BooleanCq::Variables() const {
  std::vector<Term> vars;
  for (const CqAtom& atom : atoms) {
    if (atom.a.IsVar()) vars.push_back(atom.a);
    if (atom.b.IsVar()) vars.push_back(atom.b);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

RelationalDb RelationalDb::FromGraph(const Graph& g) {
  RelationalDb db;
  for (const Triple& t : g) {
    db.relations_[t.p].emplace_back(t.s, t.o);
  }
  return db;
}

const std::vector<std::pair<Term, Term>>& RelationalDb::Relation(
    Term p) const {
  auto it = relations_.find(p);
  return it == relations_.end() ? empty_ : it->second;
}

bool HasBlankInducedCycle(const Graph& g) {
  // Union-find over blank nodes; an edge joining two already-connected
  // blanks, a parallel edge, or a blank self-loop closes a cycle.
  std::unordered_map<Term, Term> parent;
  std::function<Term(Term)> find = [&](Term x) -> Term {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    Term root = find(it->second);
    parent[x] = root;
    return root;
  };
  std::unordered_set<uint64_t> seen_pairs;
  for (const Triple& t : g) {
    if (!t.s.IsBlank() || !t.o.IsBlank()) continue;
    if (t.s == t.o) return true;  // blank self-loop
    // Canonicalize the unordered pair to detect parallel edges.
    Term lo = std::min(t.s, t.o);
    Term hi = std::max(t.s, t.o);
    uint64_t key = (static_cast<uint64_t>(lo.bits()) << 32) | hi.bits();
    if (!seen_pairs.insert(key).second) return true;  // parallel edge
    Term rs = find(t.s);
    Term ro = find(t.o);
    if (rs == ro) return true;  // closes a cycle
    parent[rs] = ro;
  }
  return false;
}

namespace {

std::vector<Term> AtomVars(const CqAtom& atom) {
  std::vector<Term> vars;
  if (atom.a.IsVar()) vars.push_back(atom.a);
  if (atom.b.IsVar() && atom.b != atom.a) vars.push_back(atom.b);
  return vars;
}

}  // namespace

bool GyoAcyclic(const BooleanCq& q,
                std::vector<std::optional<size_t>>* parent_out) {
  const size_t n = q.atoms.size();
  std::vector<std::vector<Term>> edge_vars(n);
  for (size_t i = 0; i < n; ++i) edge_vars[i] = AtomVars(q.atoms[i]);

  std::vector<bool> live(n, true);
  std::vector<std::optional<size_t>> parent(n);
  size_t live_count = n;

  bool changed = true;
  while (changed && live_count > 0) {
    changed = false;
    for (size_t e = 0; e < n && live_count > 0; ++e) {
      if (!live[e]) continue;
      // Vars of e shared with some other live edge.
      std::vector<Term> shared;
      for (Term v : edge_vars[e]) {
        bool elsewhere = false;
        for (size_t f = 0; f < n; ++f) {
          if (f == e || !live[f]) continue;
          if (std::find(edge_vars[f].begin(), edge_vars[f].end(), v) !=
              edge_vars[f].end()) {
            elsewhere = true;
            break;
          }
        }
        if (elsewhere) shared.push_back(v);
      }
      if (shared.empty()) {
        // Isolated (or last) edge: an ear with no parent; root of a tree.
        live[e] = false;
        --live_count;
        changed = true;
        continue;
      }
      for (size_t f = 0; f < n; ++f) {
        if (f == e || !live[f]) continue;
        bool covers = std::all_of(
            shared.begin(), shared.end(), [&](Term v) {
              return std::find(edge_vars[f].begin(), edge_vars[f].end(), v) !=
                     edge_vars[f].end();
            });
        if (covers) {
          live[e] = false;
          --live_count;
          parent[e] = f;
          changed = true;
          break;
        }
      }
    }
  }
  if (live_count > 0) return false;
  if (parent_out != nullptr) *parent_out = std::move(parent);
  return true;
}

namespace {

// Tuples of an atom projected onto its variables, after applying the
// atom's constant and repeated-variable filters.
std::vector<std::vector<Term>> AtomTuples(const CqAtom& atom,
                                          const RelationalDb& db) {
  std::vector<std::vector<Term>> out;
  const std::vector<Term> vars = AtomVars(atom);
  for (const auto& [s, o] : db.Relation(atom.relation)) {
    if (!atom.a.IsVar() && atom.a != s) continue;
    if (!atom.b.IsVar() && atom.b != o) continue;
    if (atom.a.IsVar() && atom.a == atom.b && s != o) continue;
    std::vector<Term> tuple;
    tuple.reserve(vars.size());
    for (Term v : vars) tuple.push_back(v == atom.a ? s : o);
    out.push_back(std::move(tuple));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::optional<bool> EvaluateAcyclic(const BooleanCq& q,
                                    const RelationalDb& db) {
  std::vector<std::optional<size_t>> parent;
  if (!GyoAcyclic(q, &parent)) return std::nullopt;

  const size_t n = q.atoms.size();
  std::vector<std::vector<Term>> vars(n);
  std::vector<std::vector<std::vector<Term>>> tuples(n);
  for (size_t i = 0; i < n; ++i) {
    vars[i] = AtomVars(q.atoms[i]);
    tuples[i] = AtomTuples(q.atoms[i], db);
    if (tuples[i].empty()) return false;
  }

  // Semijoin children into parents, children first. GYO removed atoms in
  // an order where each removed atom's parent was still live, so the
  // removal order itself is a valid bottom-up order.
  // Reconstruct removal order: GyoAcyclic removed edges in the order it
  // turned them dead; we re-derive a safe order by processing each atom
  // before its parent (forest topological order).
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    // Depth-descending: deeper nodes first.
    auto depth = [&](size_t u) {
      size_t d = 0;
      while (parent[u].has_value()) {
        u = *parent[u];
        ++d;
      }
      return d;
    };
    return depth(x) > depth(y);
  });

  for (size_t child : order) {
    if (!parent[child].has_value()) continue;
    size_t par = *parent[child];
    // Shared variables and their positions in each tuple layout.
    std::vector<std::pair<size_t, size_t>> common;  // (pos in par, in child)
    for (size_t i = 0; i < vars[par].size(); ++i) {
      for (size_t j = 0; j < vars[child].size(); ++j) {
        if (vars[par][i] == vars[child][j]) common.emplace_back(i, j);
      }
    }
    // Semijoin: keep parent tuples that join with some child tuple.
    std::set<std::vector<Term>> child_keys;
    auto key_of = [&common](const std::vector<Term>& tuple, bool is_parent) {
      std::vector<Term> key;
      key.reserve(common.size());
      for (const auto& [pi, ci] : common) {
        key.push_back(tuple[is_parent ? pi : ci]);
      }
      return key;
    };
    for (const auto& t : tuples[child]) {
      child_keys.insert(key_of(t, false));
    }
    std::vector<std::vector<Term>> kept;
    for (auto& t : tuples[par]) {
      if (child_keys.count(key_of(t, true))) kept.push_back(std::move(t));
    }
    tuples[par] = std::move(kept);
    if (tuples[par].empty()) return false;
  }
  return true;
}

bool EvaluateByBacktracking(const BooleanCq& q, const RelationalDb& db) {
  std::unordered_map<Term, Term> binding;
  std::function<bool(size_t)> search = [&](size_t index) -> bool {
    if (index == q.atoms.size()) return true;
    const CqAtom& atom = q.atoms[index];
    for (const auto& [s, o] : db.Relation(atom.relation)) {
      std::vector<Term> bound_here;
      auto try_bind = [&](Term arg, Term value) {
        if (!arg.IsVar()) return arg == value;
        auto it = binding.find(arg);
        if (it != binding.end()) return it->second == value;
        binding[arg] = value;
        bound_here.push_back(arg);
        return true;
      };
      bool ok = try_bind(atom.a, s) && try_bind(atom.b, o);
      if (ok && search(index + 1)) return true;
      for (Term v : bound_here) binding.erase(v);
    }
    return false;
  };
  return search(0);
}

bool CqSimpleEntails(const Graph& g1, const Graph& g2,
                     bool* used_acyclic_out) {
  BooleanCq query = BooleanCq::FromGraph(g2);
  RelationalDb db = RelationalDb::FromGraph(g1);
  std::optional<bool> fast = EvaluateAcyclic(query, db);
  if (used_acyclic_out != nullptr) *used_acyclic_out = fast.has_value();
  if (fast.has_value()) return *fast;
  return EvaluateByBacktracking(query, db);
}

}  // namespace swdb
