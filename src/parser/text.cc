#include "parser/text.h"

#include <sstream>
#include <vector>
#include "util/str.h"

namespace swdb {

namespace {

constexpr struct {
  const char* keyword;
  Term term;
} kVocabKeywords[] = {
    {"sp", vocab::kSp},       {"sc", vocab::kSc},   {"type", vocab::kType},
    {"dom", vocab::kDom},     {"range", vocab::kRange},
};

// Strips '#' comments and surrounding whitespace.
std::string_view StripLine(std::string_view line) {
  size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string_view::npos) return {};
  size_t end = line.find_last_not_of(" \t\r");
  return line.substr(begin, end - begin + 1);
}

std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<Triple> ParseTripleTokens(const std::vector<std::string_view>& tokens,
                                 Dictionary* dict, bool allow_vars,
                                 size_t line_number) {
  std::vector<std::string_view> parts(tokens);
  if (!parts.empty() && parts.back() == ".") parts.pop_back();
  if (parts.size() != 3) {
    return Status::ParseError(NumberedName("line ", line_number) +
                              ": expected 's p o [.]'");
  }
  Term terms[3];
  for (int i = 0; i < 3; ++i) {
    Result<Term> term = ParseTerm(parts[i], dict, allow_vars);
    if (!term.ok()) {
      return Status::ParseError(NumberedName("line ", line_number) + ": " +
                                term.status().message());
    }
    terms[i] = *term;
  }
  Triple t(terms[0], terms[1], terms[2]);
  if (!t.IsWellFormedPattern()) {
    return Status::ParseError(NumberedName("line ", line_number) +
                              ": blank node in predicate position");
  }
  if (!allow_vars && !t.IsWellFormedData()) {
    return Status::ParseError(NumberedName("line ", line_number) +
                              ": variables not allowed here");
  }
  return t;
}

}  // namespace

Result<Term> ParseTerm(std::string_view token, Dictionary* dict,
                       bool allow_vars) {
  if (token.empty()) return Status::ParseError("empty term token");
  if (token[0] == '?') {
    if (!allow_vars) {
      return Status::ParseError("variable not allowed: " +
                                std::string(token));
    }
    if (token.size() == 1) return Status::ParseError("bare '?'");
    return dict->Var(token.substr(1));
  }
  if (token.size() >= 2 && token[0] == '_' && token[1] == ':') {
    if (token.size() == 2) return Status::ParseError("bare '_:'");
    return dict->Blank(token.substr(2));
  }
  for (const auto& kw : kVocabKeywords) {
    if (token == kw.keyword) return kw.term;
  }
  if (token.front() == '<' && token.back() == '>') {
    if (token.size() <= 2) return Status::ParseError("empty IRI '<>'");
    return dict->Iri(token.substr(1, token.size() - 2));
  }
  return dict->Iri(token);
}

Result<Graph> ParseGraph(std::string_view text, Dictionary* dict,
                         bool allow_vars) {
  Graph g;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_number;
    line = StripLine(line);
    if (line.empty()) continue;
    Result<Triple> t =
        ParseTripleTokens(SplitTokens(line), dict, allow_vars, line_number);
    if (!t.ok()) return t.status();
    g.Insert(*t);
  }
  return g;
}

std::string FormatTerm(Term t, const Dictionary& dict) {
  for (const auto& kw : kVocabKeywords) {
    if (t == kw.term) return kw.keyword;
  }
  return dict.Name(t);
}

std::string FormatTriple(const Triple& t, const Dictionary& dict) {
  std::string out = FormatTerm(t.s, dict);
  out += " ";
  out += FormatTerm(t.p, dict);
  out += " ";
  out += FormatTerm(t.o, dict);
  out += " .";
  return out;
}

std::string FormatGraph(const Graph& g, const Dictionary& dict) {
  std::string out;
  for (const Triple& t : g) {
    out += FormatTriple(t, dict);
    out += '\n';
  }
  return out;
}

Result<Query> ParseQuery(std::string_view text, Dictionary* dict) {
  Query q;
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_number;
    line = StripLine(line);
    if (line.empty()) continue;

    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError(NumberedName("line ", line_number) +
                                ": expected 'section: ...'");
    }
    std::string_view section = line.substr(0, colon);
    std::string_view rest = StripLine(line.substr(colon + 1));
    std::vector<std::string_view> tokens = SplitTokens(rest);

    if (section == "head" || section == "body") {
      Result<Triple> t =
          ParseTripleTokens(tokens, dict, /*allow_vars=*/true, line_number);
      if (!t.ok()) return t.status();
      (section == "head" ? q.head : q.body).Insert(*t);
    } else if (section == "premise") {
      Result<Triple> t =
          ParseTripleTokens(tokens, dict, /*allow_vars=*/false, line_number);
      if (!t.ok()) return t.status();
      q.premise.Insert(*t);
    } else if (section == "bind") {
      for (std::string_view token : tokens) {
        Result<Term> v = ParseTerm(token, dict, /*allow_vars=*/true);
        if (!v.ok()) return v.status();
        if (!v->IsVar()) {
          return Status::ParseError(NumberedName("line ", line_number) +
                                    ": bind expects variables");
        }
        q.constraints.push_back(*v);
      }
    } else {
      return Status::ParseError(NumberedName("line ", line_number) +
                                ": unknown section '" + std::string(section) +
                                "'");
    }
  }
  std::sort(q.constraints.begin(), q.constraints.end());
  q.constraints.erase(std::unique(q.constraints.begin(), q.constraints.end()),
                      q.constraints.end());
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  return q;
}

std::string FormatQuery(const Query& q, const Dictionary& dict) {
  std::string out;
  for (const Triple& t : q.head) {
    out += "head:    ";
    out += FormatTriple(t, dict);
    out += "\n";
  }
  for (const Triple& t : q.body) {
    out += "body:    ";
    out += FormatTriple(t, dict);
    out += "\n";
  }
  for (const Triple& t : q.premise) {
    out += "premise: ";
    out += FormatTriple(t, dict);
    out += "\n";
  }
  if (!q.constraints.empty()) {
    out += "bind:   ";
    for (Term c : q.constraints) {
      out += " ";
      out += FormatTerm(c, dict);
    }
    out += "\n";
  }
  return out;
}

}  // namespace swdb
