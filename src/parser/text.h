#ifndef SWDB_PARSER_TEXT_H_
#define SWDB_PARSER_TEXT_H_

#include <string>
#include <string_view>

#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "util/status.h"

namespace swdb {

/// Parses a single term token:
///  - "?Name"            → variable (if allow_vars),
///  - "_:label"          → blank node,
///  - "sp" | "sc" | "type" | "dom" | "range" → the reserved vocabulary,
///  - anything else      → IRI (optionally wrapped in <angle brackets>).
Result<Term> ParseTerm(std::string_view token, Dictionary* dict,
                       bool allow_vars = false);

/// Parses a line-oriented N-Triples-style graph: one "s p o ." triple per
/// line (the trailing '.' is optional), '#' starts a comment, blank lines
/// ignored. Variables are rejected unless allow_vars.
Result<Graph> ParseGraph(std::string_view text, Dictionary* dict,
                         bool allow_vars = false);

/// Textual form of a term; reserved vocabulary prints as its keyword.
std::string FormatTerm(Term t, const Dictionary& dict);

/// "s p o ." for one triple.
std::string FormatTriple(const Triple& t, const Dictionary& dict);

/// One triple per line, sorted.
std::string FormatGraph(const Graph& g, const Dictionary& dict);

/// Parses a query from a line-oriented format:
///
///   head:    ?A creates ?Y .
///   body:    ?A type Flemish .
///   body:    ?A paints ?Y .
///   premise: son sp relative .
///   bind:    ?A
///
/// Sections may repeat and appear in any order; '#' comments allowed.
/// The parsed query is validated (Def. 4.1) before being returned.
Result<Query> ParseQuery(std::string_view text, Dictionary* dict);

/// Renders a query back into the ParseQuery format.
std::string FormatQuery(const Query& q, const Dictionary& dict);

}  // namespace swdb

#endif  // SWDB_PARSER_TEXT_H_
