#ifndef SWDB_PATHS_PATH_H_
#define SWDB_PATHS_PATH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"
#include "util/status.h"

namespace swdb {

/// Regular path expressions over RDF graphs — the "reachability, paths"
/// extension the paper's conclusions (§7) list as future work, in the
/// style later standardized by nSPARQL / SPARQL 1.1 property paths.
///
/// Grammar (ParsePathExpr):
///   path  := alt
///   alt   := seq ('|' seq)*
///   seq   := unary ('/' unary)*
///   unary := atom ('*' | '+' | '?')*
///   atom  := predicate | '^' predicate | '(' path ')'
///
/// A predicate token follows the graph parser's term syntax (bare IRI,
/// <IRI>, or a reserved keyword sp/sc/type/dom/range).
class PathExpr {
 public:
  enum class Kind {
    kPredicate,   ///< one forward edge via `predicate`
    kInverse,     ///< one backward edge via `predicate`
    kSequence,    ///< left then right
    kAlternation, ///< left or right
    kStar,        ///< zero or more repetitions of left
    kPlus,        ///< one or more repetitions of left
    kOptional,    ///< zero or one repetition of left
    // --- nSPARQL-style nested expressions ([35], same authors): ---
    kAnyForward,  ///< one forward edge via any predicate ("next")
    kAnyBackward, ///< one backward edge via any predicate
    kPredTest,    ///< forward edge whose *predicate node* satisfies left
    kNodeTest,    ///< keep nodes from which left reaches something
    kSelfIs,      ///< keep only the node equal to `predicate`
    kEdgeForward, ///< subject → predicate of any outgoing triple ("edge")
    kEdgeBackward,///< object → predicate of any incoming triple
  };

  static PathExpr Predicate(Term p);
  static PathExpr Inverse(Term p);
  static PathExpr Sequence(PathExpr left, PathExpr right);
  static PathExpr Alternation(PathExpr left, PathExpr right);
  static PathExpr Star(PathExpr inner);
  static PathExpr Plus(PathExpr inner);
  static PathExpr Optional(PathExpr inner);

  /// One forward edge regardless of predicate (nSPARQL's next axis
  /// with a wildcard test).
  static PathExpr AnyForward();
  static PathExpr AnyBackward();
  /// One forward edge (s,p,o) ↦ s→o such that the nested expression,
  /// evaluated *from the predicate p as a node*, reaches something —
  /// nSPARQL's next::[expr]. This is the construct that lets RDFS
  /// subproperty reasoning be expressed navigationally: the edge step
  /// "via any q with q sp* p" is PredTest(Seq(Star(Predicate(sp)),
  /// SelfIs(p))).
  static PathExpr PredTest(PathExpr inner);
  /// Keeps the nodes from which the nested expression reaches at least
  /// one node (nSPARQL's self::[expr] node test); the position does not
  /// advance.
  static PathExpr NodeTest(PathExpr inner);
  /// Keeps only the node equal to `term` (nSPARQL's self::a).
  static PathExpr SelfIs(Term term);
  /// Moves from a subject to the predicate of one of its outgoing
  /// triples (nSPARQL's edge axis). With EdgeBackward (object → its
  /// predicate) and the sp/dom/range keywords this makes the RDFS
  /// typing rules expressible as navigation:
  ///   type-of = type/(sc)* | edge/(sp)*/dom/(sc)* | ^edge/(sp)*/range/(sc)*
  static PathExpr EdgeForward();
  static PathExpr EdgeBackward();

  Kind kind() const { return kind_; }
  Term predicate() const { return predicate_; }
  const PathExpr& left() const { return *children_[0]; }
  const PathExpr& right() const { return *children_[1]; }

  /// Serializes back into the ParsePathExpr grammar.
  std::string ToString(const Dictionary& dict) const;

 private:
  PathExpr() = default;

  Kind kind_ = Kind::kPredicate;
  Term predicate_;
  std::vector<std::shared_ptr<const PathExpr>> children_;
};

/// Parses a path expression (grammar above).
Result<PathExpr> ParsePathExpr(std::string_view text, Dictionary* dict);

/// All nodes reachable from any source via the path, computed by BFS
/// over the expression structure (each step relation is evaluated
/// against the graph's indexes). Result is sorted and deduplicated.
/// Polynomial: O(|expr| · |sources| · |g|) worst case.
std::vector<Term> EvalPathFrom(const Graph& g, const PathExpr& path,
                               const std::vector<Term>& sources);

/// True iff `target` is reachable from `source` via the path.
bool PathReaches(const Graph& g, const PathExpr& path, Term source,
                 Term target);

/// All (s, o) pairs in the path's relation over universe(g). Quadratic
/// output in the worst case; intended for small graphs and tests.
std::vector<std::pair<Term, Term>> EvalPathPairs(const Graph& g,
                                                 const PathExpr& path);

}  // namespace swdb

#endif  // SWDB_PATHS_PATH_H_
