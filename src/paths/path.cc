#include "paths/path.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "parser/text.h"

namespace swdb {

PathExpr PathExpr::Predicate(Term p) {
  PathExpr e;
  e.kind_ = Kind::kPredicate;
  e.predicate_ = p;
  return e;
}

PathExpr PathExpr::Inverse(Term p) {
  PathExpr e;
  e.kind_ = Kind::kInverse;
  e.predicate_ = p;
  return e;
}

PathExpr PathExpr::Sequence(PathExpr left, PathExpr right) {
  PathExpr e;
  e.kind_ = Kind::kSequence;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(left)));
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(right)));
  return e;
}

PathExpr PathExpr::Alternation(PathExpr left, PathExpr right) {
  PathExpr e;
  e.kind_ = Kind::kAlternation;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(left)));
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(right)));
  return e;
}

PathExpr PathExpr::Star(PathExpr inner) {
  PathExpr e;
  e.kind_ = Kind::kStar;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(inner)));
  return e;
}

PathExpr PathExpr::Plus(PathExpr inner) {
  PathExpr e;
  e.kind_ = Kind::kPlus;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(inner)));
  return e;
}

PathExpr PathExpr::Optional(PathExpr inner) {
  PathExpr e;
  e.kind_ = Kind::kOptional;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(inner)));
  return e;
}

PathExpr PathExpr::AnyForward() {
  PathExpr e;
  e.kind_ = Kind::kAnyForward;
  return e;
}

PathExpr PathExpr::AnyBackward() {
  PathExpr e;
  e.kind_ = Kind::kAnyBackward;
  return e;
}

PathExpr PathExpr::PredTest(PathExpr inner) {
  PathExpr e;
  e.kind_ = Kind::kPredTest;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(inner)));
  return e;
}

PathExpr PathExpr::NodeTest(PathExpr inner) {
  PathExpr e;
  e.kind_ = Kind::kNodeTest;
  e.children_.push_back(std::make_shared<const PathExpr>(std::move(inner)));
  return e;
}

PathExpr PathExpr::SelfIs(Term term) {
  PathExpr e;
  e.kind_ = Kind::kSelfIs;
  e.predicate_ = term;
  return e;
}

PathExpr PathExpr::EdgeForward() {
  PathExpr e;
  e.kind_ = Kind::kEdgeForward;
  return e;
}

PathExpr PathExpr::EdgeBackward() {
  PathExpr e;
  e.kind_ = Kind::kEdgeBackward;
  return e;
}

std::string PathExpr::ToString(const Dictionary& dict) const {
  // Append-based construction (instead of `"lit" + str`) sidesteps the
  // GCC 12 -Wrestrict false positive PR105651.
  auto wrap = [](std::string prefix, std::string body, const char* suffix) {
    prefix += body;
    prefix += suffix;
    return prefix;
  };
  switch (kind_) {
    case Kind::kPredicate:
      return FormatTerm(predicate_, dict);
    case Kind::kInverse:
      return wrap("^", FormatTerm(predicate_, dict), "");
    case Kind::kSequence:
      return wrap("(", wrap(left().ToString(dict), "/", "") +
                           right().ToString(dict),
                  ")");
    case Kind::kAlternation:
      return wrap("(", wrap(left().ToString(dict), "|", "") +
                           right().ToString(dict),
                  ")");
    case Kind::kStar:
      return wrap("(", left().ToString(dict), ")*");
    case Kind::kPlus:
      return wrap("(", left().ToString(dict), ")+");
    case Kind::kOptional:
      return wrap("(", left().ToString(dict), ")?");
    case Kind::kAnyForward:
      return "next";
    case Kind::kAnyBackward:
      return "^next";
    case Kind::kPredTest:
      return wrap("next::[", left().ToString(dict), "]");
    case Kind::kNodeTest:
      return wrap("self::[", left().ToString(dict), "]");
    case Kind::kSelfIs:
      return wrap("self::", FormatTerm(predicate_, dict), "");
    case Kind::kEdgeForward:
      return "edge";
    case Kind::kEdgeBackward:
      return "^edge";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent over a token stream.

namespace {

struct PathTokenizer {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  }

  // Peeks the next operator character, or '\0' for a term/end.
  char PeekOp() {
    SkipSpace();
    if (pos >= text.size()) return '\0';
    char c = text[pos];
    if (c == '(' || c == ')' || c == '/' || c == '|' || c == '*' ||
        c == '+' || c == '?' || c == '^') {
      return c;
    }
    return '\0';
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  void Consume() { ++pos; }

  // Reads a predicate token (until an operator or whitespace).
  std::string_view ReadTermToken() {
    SkipSpace();
    size_t start = pos;
    if (pos < text.size() && text[pos] == '<') {
      // Angle-bracketed IRI: read through '>'.
      while (pos < text.size() && text[pos] != '>') ++pos;
      if (pos < text.size()) ++pos;
      return text.substr(start, pos - start);
    }
    while (pos < text.size()) {
      char c = text[pos];
      if (c == ' ' || c == '\t' || c == '(' || c == ')' || c == '/' ||
          c == '|' || c == '*' || c == '+' || c == '?' || c == '^') {
        break;
      }
      ++pos;
    }
    return text.substr(start, pos - start);
  }
};

class PathParser {
 public:
  PathParser(std::string_view text, Dictionary* dict)
      : tokenizer_{text}, dict_(dict) {}

  Result<PathExpr> Parse() {
    Result<PathExpr> e = ParseAlt();
    if (!e.ok()) return e;
    if (!tokenizer_.AtEnd()) {
      return Status::ParseError("trailing input in path expression");
    }
    return e;
  }

 private:
  Result<PathExpr> ParseAlt() {
    Result<PathExpr> left = ParseSeq();
    if (!left.ok()) return left;
    PathExpr expr = *std::move(left);
    while (tokenizer_.PeekOp() == '|') {
      tokenizer_.Consume();
      Result<PathExpr> right = ParseSeq();
      if (!right.ok()) return right;
      expr = PathExpr::Alternation(std::move(expr), *std::move(right));
    }
    return expr;
  }

  Result<PathExpr> ParseSeq() {
    Result<PathExpr> left = ParseUnary();
    if (!left.ok()) return left;
    PathExpr expr = *std::move(left);
    while (tokenizer_.PeekOp() == '/') {
      tokenizer_.Consume();
      Result<PathExpr> right = ParseUnary();
      if (!right.ok()) return right;
      expr = PathExpr::Sequence(std::move(expr), *std::move(right));
    }
    return expr;
  }

  Result<PathExpr> ParseUnary() {
    Result<PathExpr> atom = ParseAtom();
    if (!atom.ok()) return atom;
    PathExpr expr = *std::move(atom);
    for (;;) {
      char op = tokenizer_.PeekOp();
      if (op == '*') {
        tokenizer_.Consume();
        expr = PathExpr::Star(std::move(expr));
      } else if (op == '+') {
        tokenizer_.Consume();
        expr = PathExpr::Plus(std::move(expr));
      } else if (op == '?') {
        tokenizer_.Consume();
        expr = PathExpr::Optional(std::move(expr));
      } else {
        return expr;
      }
    }
  }

  Result<PathExpr> ParseAtom() {
    char op = tokenizer_.PeekOp();
    if (op == '(') {
      tokenizer_.Consume();
      Result<PathExpr> inner = ParseAlt();
      if (!inner.ok()) return inner;
      if (tokenizer_.PeekOp() != ')') {
        return Status::ParseError("expected ')' in path expression");
      }
      tokenizer_.Consume();
      return inner;
    }
    bool inverse = false;
    if (op == '^') {
      tokenizer_.Consume();
      inverse = true;
    }
    std::string_view token = tokenizer_.ReadTermToken();
    if (token.empty()) {
      return Status::ParseError("expected predicate in path expression");
    }
    Result<Term> term = ParseTerm(token, dict_);
    if (!term.ok()) return term.status();
    if (!term->IsIri()) {
      return Status::ParseError("path predicates must be IRIs");
    }
    return inverse ? PathExpr::Inverse(*term) : PathExpr::Predicate(*term);
  }

  PathTokenizer tokenizer_;
  Dictionary* dict_;
};

}  // namespace

Result<PathExpr> ParsePathExpr(std::string_view text, Dictionary* dict) {
  PathParser parser(text, dict);
  return parser.Parse();
}

// ---------------------------------------------------------------------------
// Evaluation.

namespace {

// One evaluation step: the image of `sources` under the path relation.
std::vector<Term> Step(const Graph& g, const PathExpr& path,
                       const std::vector<Term>& sources) {
  std::unordered_set<Term> out;
  switch (path.kind()) {
    case PathExpr::Kind::kPredicate:
      for (Term s : sources) {
        g.Match(s, path.predicate(), std::nullopt, [&](const Triple& t) {
          out.insert(t.o);
          return true;
        });
      }
      break;
    case PathExpr::Kind::kInverse:
      for (Term s : sources) {
        g.Match(std::nullopt, path.predicate(), s, [&](const Triple& t) {
          out.insert(t.s);
          return true;
        });
      }
      break;
    case PathExpr::Kind::kSequence: {
      std::vector<Term> mid = Step(g, path.left(), sources);
      std::vector<Term> end = Step(g, path.right(), mid);
      out.insert(end.begin(), end.end());
      break;
    }
    case PathExpr::Kind::kAlternation: {
      std::vector<Term> l = Step(g, path.left(), sources);
      std::vector<Term> r = Step(g, path.right(), sources);
      out.insert(l.begin(), l.end());
      out.insert(r.begin(), r.end());
      break;
    }
    case PathExpr::Kind::kStar:
    case PathExpr::Kind::kPlus: {
      // BFS over the inner relation.
      std::unordered_set<Term> seen(sources.begin(), sources.end());
      std::vector<Term> frontier = sources;
      if (path.kind() == PathExpr::Kind::kStar) {
        out.insert(sources.begin(), sources.end());
      }
      while (!frontier.empty()) {
        std::vector<Term> next_frontier;
        std::vector<Term> image = Step(g, path.left(), frontier);
        for (Term t : image) {
          out.insert(t);
          if (seen.insert(t).second) next_frontier.push_back(t);
        }
        frontier = std::move(next_frontier);
      }
      break;
    }
    case PathExpr::Kind::kOptional: {
      out.insert(sources.begin(), sources.end());
      std::vector<Term> image = Step(g, path.left(), sources);
      out.insert(image.begin(), image.end());
      break;
    }
    case PathExpr::Kind::kAnyForward:
      for (Term s : sources) {
        g.Match(s, std::nullopt, std::nullopt, [&](const Triple& t) {
          out.insert(t.o);
          return true;
        });
      }
      break;
    case PathExpr::Kind::kAnyBackward:
      for (Term s : sources) {
        for (const Triple& t : g) {
          if (t.o == s) out.insert(t.s);
        }
      }
      break;
    case PathExpr::Kind::kPredTest: {
      // Evaluate the nested test once per distinct predicate, then step
      // along the edges whose predicate passes.
      std::unordered_map<Term, bool> predicate_passes;
      for (Term s : sources) {
        g.Match(s, std::nullopt, std::nullopt, [&](const Triple& t) {
          auto it = predicate_passes.find(t.p);
          if (it == predicate_passes.end()) {
            bool pass = !Step(g, path.left(), {t.p}).empty();
            it = predicate_passes.emplace(t.p, pass).first;
          }
          if (it->second) out.insert(t.o);
          return true;
        });
      }
      break;
    }
    case PathExpr::Kind::kNodeTest:
      for (Term s : sources) {
        if (!Step(g, path.left(), {s}).empty()) out.insert(s);
      }
      break;
    case PathExpr::Kind::kSelfIs:
      for (Term s : sources) {
        if (s == path.predicate()) out.insert(s);
      }
      break;
    case PathExpr::Kind::kEdgeForward:
      for (Term s : sources) {
        g.Match(s, std::nullopt, std::nullopt, [&](const Triple& t) {
          out.insert(t.p);
          return true;
        });
      }
      break;
    case PathExpr::Kind::kEdgeBackward:
      for (Term s : sources) {
        for (const Triple& t : g) {
          if (t.o == s) out.insert(t.p);
        }
      }
      break;
  }
  return std::vector<Term>(out.begin(), out.end());
}

}  // namespace

std::vector<Term> EvalPathFrom(const Graph& g, const PathExpr& path,
                               const std::vector<Term>& sources) {
  std::vector<Term> result = Step(g, path, sources);
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

bool PathReaches(const Graph& g, const PathExpr& path, Term source,
                 Term target) {
  std::vector<Term> reached = EvalPathFrom(g, path, {source});
  return std::binary_search(reached.begin(), reached.end(), target);
}

std::vector<std::pair<Term, Term>> EvalPathPairs(const Graph& g,
                                                 const PathExpr& path) {
  std::vector<std::pair<Term, Term>> pairs;
  for (Term s : g.Universe()) {
    for (Term o : EvalPathFrom(g, path, {s})) {
      pairs.emplace_back(s, o);
    }
  }
  return pairs;
}

}  // namespace swdb
