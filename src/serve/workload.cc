#include "serve/workload.h"

#include <utility>

#include "query/premise.h"
#include "rdf/triple.h"
#include "util/str.h"

namespace swdb {

std::string_view TemplateName(TemplateId id) {
  switch (id) {
    case TemplateId::kPaperMeta: return "paper_meta";
    case TemplateId::kAuthorPubs: return "author_pubs";
    case TemplateId::kVenuePapers: return "venue_papers";
    case TemplateId::kCoauthors: return "coauthors";
    case TemplateId::kYearArticles: return "year_articles";
    case TemplateId::kCitedBy: return "cited_by";
    case TemplateId::kCitedAuthors: return "cited_authors";
    case TemplateId::kNamedAuthorsOf: return "named_authors_of";
    case TemplateId::kDocsInYear: return "docs_in_year";
    case TemplateId::kAuthoredOrEdited: return "authored_or_edited";
    case TemplateId::kPremiseCites: return "premise_cites";
    case TemplateId::kPremiseAuthor: return "premise_author";
    case TemplateId::kCitationReach: return "citation_reach";
    case TemplateId::kTypeOfPath: return "type_of_path";
    case TemplateId::kTemplateCount: break;
  }
  return "unknown";
}

WorkloadMix::Weights WorkloadMix::DefaultWeights() {
  Weights w{};
  w[static_cast<size_t>(TemplateId::kPaperMeta)] = 14;
  w[static_cast<size_t>(TemplateId::kAuthorPubs)] = 14;
  w[static_cast<size_t>(TemplateId::kVenuePapers)] = 8;
  w[static_cast<size_t>(TemplateId::kCoauthors)] = 8;
  w[static_cast<size_t>(TemplateId::kYearArticles)] = 4;
  w[static_cast<size_t>(TemplateId::kCitedBy)] = 12;
  w[static_cast<size_t>(TemplateId::kCitedAuthors)] = 6;
  w[static_cast<size_t>(TemplateId::kNamedAuthorsOf)] = 8;
  w[static_cast<size_t>(TemplateId::kDocsInYear)] = 2;
  w[static_cast<size_t>(TemplateId::kAuthoredOrEdited)] = 8;
  w[static_cast<size_t>(TemplateId::kPremiseCites)] = 4;
  w[static_cast<size_t>(TemplateId::kPremiseAuthor)] = 4;
  w[static_cast<size_t>(TemplateId::kCitationReach)] = 4;
  w[static_cast<size_t>(TemplateId::kTypeOfPath)] = 4;
  return w;
}

WorkloadMix::WorkloadMix(const Sp2bGenerator& gen, Dictionary* dict,
                         Weights weights)
    : vocab_(gen.vocab()),
      weights_(weights),
      papers_(gen.papers()) {
  // Author constants are substituted into query *bodies*, which
  // Def. 4.1 forbids to contain blank nodes — an anonymous author
  // cannot be named in a query. Freeze only the IRI authors.
  for (const Term a : gen.authors()) {
    if (a.IsIri()) authors_.push_back(a);
  }
  if (authors_.empty()) authors_ = gen.papers();  // degenerate spec guard
  venues_ = gen.journals();
  venues_.insert(venues_.end(), gen.proceedings().begin(),
                 gen.proceedings().end());
  // GenerateCorpus leaves current_year() at the year still being
  // filled; every year up to it has publications. Re-interning by name
  // returns the generator's existing year terms.
  for (uint32_t y = gen.spec().start_year; y <= gen.current_year(); ++y) {
    years_.push_back(dict->Iri(NumberedName("sp2b:year", y)));
  }
  for (uint32_t w : weights_) total_weight_ += w;

  vd_ = dict->Var("d");
  va_ = dict->Var("a");
  vb_ = dict->Var("b");
  vy_ = dict->Var("y");
  vz_ = dict->Var("z");
  vp_ = dict->Var("p");
  vo_ = dict->Var("o");

  citation_reach_ = PathExpr::Plus(PathExpr::Predicate(vocab_.references));
  // The navigational RDFS type-of relation (see paths/path.h):
  //   type/(sc)* | edge/(sp)*/dom/(sc)* | ^edge/(sp)*/range/(sc)*
  // — equal, node for node, to the closure's rdf:type facts on this
  // vocabulary. The serving driver uses that equality as a
  // cross-system check (navigation vs. maintained closure).
  const PathExpr sc_star = PathExpr::Star(PathExpr::Predicate(vocab::kSc));
  const PathExpr sp_star = PathExpr::Star(PathExpr::Predicate(vocab::kSp));
  type_of_ = PathExpr::Alternation(
      PathExpr::Sequence(PathExpr::Predicate(vocab::kType), sc_star),
      PathExpr::Alternation(
          PathExpr::Sequence(
              PathExpr::EdgeForward(),
              PathExpr::Sequence(
                  sp_star, PathExpr::Sequence(
                               PathExpr::Predicate(vocab::kDom), sc_star))),
          PathExpr::Sequence(
              PathExpr::EdgeBackward(),
              PathExpr::Sequence(
                  sp_star, PathExpr::Sequence(
                               PathExpr::Predicate(vocab::kRange),
                               sc_star)))));
}

Term WorkloadMix::RandomPaper(Rng* rng) const {
  return papers_[rng->Below(papers_.size())];
}
Term WorkloadMix::RandomAuthor(Rng* rng) const {
  return authors_[rng->Below(authors_.size())];
}
Term WorkloadMix::RandomVenue(Rng* rng) const {
  return venues_[rng->Below(venues_.size())];
}
Term WorkloadMix::RandomYear(Rng* rng) const {
  return years_[rng->Below(years_.size())];
}

ServingRequest WorkloadMix::Sample(Rng* rng) const {
  uint64_t pick = rng->Below(total_weight_);
  size_t id = 0;
  while (id + 1 < kTemplateCount && pick >= weights_[id]) {
    pick -= weights_[id];
    ++id;
  }
  return Build(static_cast<TemplateId>(id), rng);
}

ServingRequest WorkloadMix::Build(TemplateId id, Rng* rng) const {
  const Sp2bVocab& v = vocab_;
  ServingRequest req;
  req.template_id = id;
  req.kind = RequestKind::kQuery;
  switch (id) {
    case TemplateId::kPaperMeta: {
      const Term paper = RandomPaper(rng);
      req.query.body = Graph({Triple(paper, vp_, vo_)});
      req.query.head = req.query.body;
      break;
    }
    case TemplateId::kAuthorPubs: {
      const Term author = RandomAuthor(rng);
      req.query.body = Graph({Triple(vd_, v.creator, author)});
      req.query.head = req.query.body;
      break;
    }
    case TemplateId::kVenuePapers: {
      const Term venue = RandomVenue(rng);
      req.query.body = Graph(
          {Triple(vd_, v.venue, venue), Triple(vd_, v.issued, vy_)});
      req.query.head = Graph({Triple(vd_, v.issued, vy_)});
      break;
    }
    case TemplateId::kCoauthors: {
      const Term author = RandomAuthor(rng);
      req.query.body = Graph(
          {Triple(vd_, v.creator, author), Triple(vd_, v.creator, vb_)});
      req.query.head = Graph({Triple(vd_, v.creator, vb_)});
      break;
    }
    case TemplateId::kYearArticles: {
      const Term year = RandomYear(rng);
      req.query.body =
          Graph({Triple(vd_, vocab::kType, v.article),
                 Triple(vd_, v.issued, year), Triple(vd_, v.creator, va_)});
      req.query.head = Graph({Triple(vd_, v.creator, va_)});
      break;
    }
    case TemplateId::kCitedBy: {
      const Term paper = RandomPaper(rng);
      req.query.body = Graph({Triple(vd_, v.references, paper)});
      req.query.head = req.query.body;
      break;
    }
    case TemplateId::kCitedAuthors: {
      const Term author = RandomAuthor(rng);
      req.query.body = Graph(
          {Triple(vd_, v.references, vz_), Triple(vz_, v.creator, author)});
      req.query.head = Graph({Triple(vd_, v.references, vz_)});
      break;
    }
    case TemplateId::kNamedAuthorsOf: {
      const Term paper = RandomPaper(rng);
      req.query.body = Graph({Triple(paper, v.creator, va_)});
      req.query.head = req.query.body;
      req.query.constraints = {va_};
      break;
    }
    case TemplateId::kDocsInYear: {
      const Term year = RandomYear(rng);
      req.query.body = Graph({Triple(vd_, vocab::kType, v.document),
                              Triple(vd_, v.issued, year)});
      req.query.head = Graph({Triple(vd_, v.issued, year)});
      break;
    }
    case TemplateId::kAuthoredOrEdited: {
      const Term author = RandomAuthor(rng);
      req.kind = RequestKind::kUnion;
      Query wrote;
      wrote.body = Graph({Triple(vd_, v.creator, author)});
      wrote.head = wrote.body;
      Query edited;
      edited.body = Graph({Triple(vd_, v.editor, author)});
      edited.head = edited.body;
      req.union_q.branches = {std::move(wrote), std::move(edited)};
      break;
    }
    case TemplateId::kPremiseCites: {
      // "Assuming X also cited Y, which cited papers and authors does
      // X reach?" — X, Y existing papers, so the premise derives no
      // type facts the closure lacks and Prop. 5.9's Ωq equals direct
      // evaluation on nf(D + P).
      const Term x = RandomPaper(rng);
      const Term y = RandomPaper(rng);
      req.kind = RequestKind::kPremise;
      req.query.premise = Graph({Triple(x, v.references, y)});
      req.query.body = Graph(
          {Triple(x, v.references, vz_), Triple(vz_, v.creator, va_)});
      req.query.head = Graph({Triple(vz_, v.creator, va_)});
      break;
    }
    case TemplateId::kPremiseAuthor: {
      // "Assuming A also wrote P, when were A's papers issued?"
      const Term paper = RandomPaper(rng);
      const Term author = RandomAuthor(rng);
      req.kind = RequestKind::kPremise;
      req.query.premise = Graph({Triple(paper, v.creator, author)});
      req.query.body = Graph(
          {Triple(vd_, v.creator, author), Triple(vd_, v.issued, vy_)});
      req.query.head = Graph({Triple(vd_, v.issued, vy_)});
      break;
    }
    case TemplateId::kCitationReach: {
      req.kind = RequestKind::kPath;
      req.path = citation_reach_;
      req.path_sources = {RandomPaper(rng)};
      break;
    }
    case TemplateId::kTypeOfPath: {
      req.kind = RequestKind::kPath;
      req.path = type_of_;
      // Alternate papers and authors so both the dom and range legs of
      // the navigational type-of fire.
      req.path_sources = {rng->Chance(0.5) ? RandomPaper(rng)
                                           : RandomAuthor(rng)};
      break;
    }
    case TemplateId::kTemplateCount:
      break;
  }
  if (req.kind == RequestKind::kPremise) {
    // Serve the premise query through its premise-free union (Prop.
    // 5.9): the Ωq branches evaluate concurrently on any snapshot,
    // while direct premise evaluation would have to serialize with the
    // writer (nf(D + P) normalizes per call). Bodies here have 2
    // triples, so the 2^|B| enumeration is 4 masks — negligible.
    Result<std::vector<Query>> branches = EliminatePremise(req.query);
    if (branches.ok()) {
      req.union_q.branches = std::move(*branches);
    } else {
      // Unreachable for these fixed shapes; degrade to the premise-free
      // part of the body rather than crash the serving loop.
      req.kind = RequestKind::kQuery;
      req.query.premise = Graph();
    }
  }
  return req;
}

}  // namespace swdb
