#ifndef SWDB_SERVE_DRIVER_H_
#define SWDB_SERVE_DRIVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "gen/sp2b.h"
#include "query/database.h"
#include "serve/workload.h"
#include "util/rng.h"

namespace swdb {

/// Closed-loop traffic driver configuration.
struct DriverOptions {
  /// Reader threads in Run(); ignored by RunSingleThreaded.
  int readers = 4;
  /// Wall-clock stop for Run(); ignored when ops_per_reader > 0.
  double seconds = 5.0;
  /// When > 0: each reader (or the single-threaded loop) executes
  /// exactly this many operations instead of running on the clock —
  /// the deterministic-replay configuration.
  uint64_t ops_per_reader = 0;
  /// When > 1, each loop iteration samples this many requests and
  /// serves the premise-free single-query ones through one
  /// PreAnswerBatch call (one latency sample covers the group).
  size_t batch_size = 1;
  /// Fraction of operations cross-validated against a from-scratch
  /// evaluation on the same snapshot (checked mode). 0 disables.
  double check_fraction = 0.0;
  uint64_t seed = 1;

  /// Writer stream: appends sp2b "new publications" (and erases a
  /// fraction of its own earlier inserts) in mutation batches.
  bool writer = true;
  size_t writer_batch_triples = 128;
  double writer_erase_fraction = 0.25;
  /// Pause between writer batches in Run() (microseconds).
  uint32_t writer_pause_micros = 500;
  /// RunSingleThreaded: a writer batch is applied every this many
  /// reader operations (0 disables the interleaved writer).
  uint64_t writer_every = 64;
};

/// Everything one driver run measured. The structural fields (ops,
/// answers, per-template counts, checks, mismatches, answer_digest,
/// writer counters) are deterministic for RunSingleThreaded with a
/// fixed seed; the timing fields never are.
struct DriverReport {
  uint64_t ops = 0;       ///< requests served
  uint64_t answers = 0;   ///< single answers (path ops: nodes) returned
  uint64_t errors = 0;    ///< requests whose evaluation returned an error
  uint64_t checks = 0;      ///< cross-validations performed
  uint64_t mismatches = 0;  ///< cross-validations that disagreed
  std::array<uint64_t, kTemplateCount> template_ops{};
  /// XOR of per-operation answer digests — an order-independent
  /// checksum of every served answer stream.
  uint64_t answer_digest = 0;

  double elapsed_seconds = 0;
  double qps = 0;
  double mean_us = 0, p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  /// Snapshot lag: how many mutation epochs the writer had committed
  /// beyond a reader's pinned snapshot by the time its request
  /// finished (mean over ops / max).
  double mean_snapshot_lag = 0;
  uint64_t max_snapshot_lag = 0;

  uint64_t writer_batches = 0;
  uint64_t writer_inserts = 0;
  uint64_t writer_erases = 0;

  /// Deltas of the owning Database's counters across the run.
  uint64_t view_hits = 0;
  uint64_t view_misses = 0;
  uint64_t view_installs = 0;
  uint64_t batch_view_hits = 0;
  uint64_t snapshot_nf_builds = 0;
  uint64_t snapshot_publishes = 0;

  uint64_t final_triples = 0;  ///< data-graph size when the run ended
};

/// Closed-loop serving harness: N reader threads against one writer
/// thread on one Database (the library's intended deployment shape).
/// Each reader loops: pin the latest snapshot, sample a request from
/// the mix, serve it (PreAnswer / PreAnswerBatch / path evaluation),
/// record latency — and, at check_fraction, re-derives the answer from
/// scratch on the very same snapshot and counts any disagreement. The
/// writer applies generator-driven mutation batches. Doubles as the
/// repo's largest integration test (checked mode) and its headline
/// benchmark (bench/bench_serving.cc).
class TrafficDriver {
 public:
  /// `gen` supplies the writer stream; it may be null when every
  /// writer option is off. All referees must outlive the driver.
  TrafficDriver(Database* db, Sp2bGenerator* gen, const WorkloadMix* mix,
                DriverOptions options);

  /// Threaded closed loop (options.readers readers + optional writer).
  DriverReport Run();

  /// Deterministic single-threaded loop: ops_per_reader operations with
  /// a writer batch interleaved every writer_every ops, all on the
  /// calling thread. Given the same seed and a freshly built
  /// database/dictionary, two runs produce identical structural report
  /// fields and, when `op_digests` is non-null, identical per-op digest
  /// streams.
  DriverReport RunSingleThreaded(std::vector<uint64_t>* op_digests = nullptr);

 private:
  struct ReaderAccum;

  struct OpResult {
    uint64_t digest = 0;
    uint64_t answers = 0;
    bool error = false;
    bool mismatch = false;
  };

  /// Serves one request against one pinned snapshot; when `check`,
  /// cross-validates (see driver.cc per-kind rules).
  OpResult ExecuteRequest(const DatabaseSnapshot& snap,
                          const ServingRequest& req, bool check) const;
  /// Digest + optional cross-validation of one premise-free query's
  /// served result (shared by the single and the batched read path).
  OpResult JudgeQuery(const DatabaseSnapshot& snap, const Query& q,
                      TemplateId id, const Result<std::vector<Graph>>& served,
                      bool check) const;
  /// One reader loop iteration: pin a snapshot, sample batch_size
  /// requests, serve (grouping premise-free queries through
  /// PreAnswerBatch when batch_size > 1), record one latency sample.
  void OneIteration(Rng* rng, ReaderAccum* acc,
                    std::vector<uint64_t>* op_digests);
  void ReaderLoop(int tid, ReaderAccum* acc);
  void WriterLoop(DriverReport* writer_side);
  /// One writer mutation batch (shared by WriterLoop and the
  /// single-threaded interleave).
  void WriterBatch(Rng* rng, DriverReport* report);
  DriverReport Finish(std::vector<ReaderAccum>* accums, double elapsed,
                      const DatabaseStats& before, DriverReport writer_side);

  Database* db_;
  Sp2bGenerator* gen_;
  const WorkloadMix* mix_;
  DriverOptions options_;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> published_epoch_{0};
  // Writer-owned reservoir of its own applied inserts, the erase pool.
  std::vector<Triple> reservoir_;
};

}  // namespace swdb

#endif  // SWDB_SERVE_DRIVER_H_
