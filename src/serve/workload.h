#ifndef SWDB_SERVE_WORKLOAD_H_
#define SWDB_SERVE_WORKLOAD_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "gen/sp2b.h"
#include "paths/path.h"
#include "query/query.h"
#include "query/union_query.h"
#include "rdf/term.h"
#include "util/rng.h"

namespace swdb {

/// The canonical mixed query suite over the sp2b corpus. The templates
/// deliberately span every feature axis of the paper's query model
/// (Def. 4.1) plus the nSPARQL path extension: premise-free lookups and
/// joins, constraint (non-blank filter) queries, queries that only
/// answer through RDFS closure reasoning (sc / sp / dom / range), union
/// queries, premise queries, and regular path queries.
enum class TemplateId : uint8_t {
  kPaperMeta = 0,     ///< lookup: all (p, o) of one paper
  kAuthorPubs,        ///< lookup: papers by one author (sp-derived too)
  kVenuePapers,       ///< join: papers of one venue with their years
  kCoauthors,         ///< join: coauthor edges of one author
  kYearArticles,      ///< join: articles of a year with their creators
  kCitedBy,           ///< lookup: papers citing one paper
  kCitedAuthors,      ///< join: citations landing on one author's papers
  kNamedAuthorsOf,    ///< constraint: non-blank authors of one paper
  kDocsInYear,        ///< closure: documents (sc-derived) of one year
  kAuthoredOrEdited,  ///< union: papers written or venues edited
  kPremiseCites,      ///< premise: hypothetical citation, cited authors
  kPremiseAuthor,     ///< premise: hypothetical authorship, issue years
  kCitationReach,     ///< path: references+ from one paper
  kTypeOfPath,        ///< path: navigational RDFS type-of of one node
  kTemplateCount,
};

inline constexpr size_t kTemplateCount =
    static_cast<size_t>(TemplateId::kTemplateCount);

/// Short stable name of a template (for reports and JSON counters).
std::string_view TemplateName(TemplateId id);

/// How a sampled request is served and validated.
enum class RequestKind : uint8_t {
  kQuery,    ///< one premise-free Query via PreAnswer / PreAnswerBatch
  kUnion,    ///< a UnionQuery of premise-free branches
  kPremise,  ///< a premise Query served through its Ωq union (Prop. 5.9)
  kPath,     ///< a PathExpr evaluated from source nodes
};

/// One sampled request: the template it came from, the evaluation kind,
/// and the bound artifacts. For kPremise, `query` holds the original
/// premise-bearing query (checked mode and tests validate Prop. 5.9
/// against it) and `union_q` its premise-free elimination — the form
/// the driver actually serves, since direct premise evaluation must be
/// serialized with the writer (it normalizes D + P per call).
struct ServingRequest {
  TemplateId template_id = TemplateId::kPaperMeta;
  RequestKind kind = RequestKind::kQuery;
  Query query;
  UnionQuery union_q;
  std::optional<PathExpr> path;
  std::vector<Term> path_sources;
};

/// Seeded, weighted sampler over the template suite.
///
/// Construction freezes copies of the generator's entity pools (and
/// pre-interns every year term), so Sample() is const, allocates no
/// dictionary entries, and is safe to call from any number of threads
/// (each with its own Rng) while a writer keeps growing the corpus.
class WorkloadMix {
 public:
  using Weights = std::array<uint32_t, kTemplateCount>;

  /// The default template weights (sum 100): lookup/join-heavy with a
  /// steady premise + path minority, roughly the shape of a public
  /// SPARQL endpoint trace.
  static Weights DefaultWeights();

  /// Freezes the generator's current pools. The dictionary is only used
  /// during construction (variable + year interning). A weight of 0
  /// disables a template.
  WorkloadMix(const Sp2bGenerator& gen, Dictionary* dict,
              Weights weights = DefaultWeights());

  /// Draws one template by weight and binds fresh constants for it.
  ServingRequest Sample(Rng* rng) const;

  /// Builds the fully bound request for one specific template —
  /// Sample() without the weighted draw; tests use it to cover every
  /// template deterministically.
  ServingRequest Build(TemplateId id, Rng* rng) const;

  const Sp2bVocab& vocab() const { return vocab_; }

 private:
  Term RandomPaper(Rng* rng) const;
  Term RandomAuthor(Rng* rng) const;
  Term RandomVenue(Rng* rng) const;
  Term RandomYear(Rng* rng) const;

  Sp2bVocab vocab_;
  Weights weights_;
  uint32_t total_weight_ = 0;

  // Frozen pools (see class comment).
  std::vector<Term> authors_;
  std::vector<Term> papers_;
  std::vector<Term> venues_;  // journals then proceedings
  std::vector<Term> years_;

  // Pre-interned query variables.
  Term vd_, va_, vb_, vy_, vz_, vp_, vo_;

  // Pre-built fixed path expressions.
  std::optional<PathExpr> citation_reach_;
  std::optional<PathExpr> type_of_;
};

}  // namespace swdb

#endif  // SWDB_SERVE_WORKLOAD_H_
