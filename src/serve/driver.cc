#include "serve/driver.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>
#include <unordered_set>
#include <utility>

#include "paths/path.h"
#include "rdf/triple.h"

namespace swdb {

namespace {

constexpr size_t kReservoirCap = 65536;

// Distinct deterministic Rng streams per (seed, role).
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  return seed * 0x9e3779b97f4a7c15ULL + stream * 0xbf58476d1ce4e5b9ULL + 1;
}

uint64_t Mix64(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

uint64_t DigestGraph(uint64_t h, const Graph& g) {
  for (const Triple& t : g) {
    h = Mix64(h, t.s.bits());
    h = Mix64(h, t.p.bits());
    h = Mix64(h, t.o.bits());
  }
  return h;
}

// The union post-processing Database::PreAnswer(UnionQuery) applies:
// first branch error wins, then concat, sort, dedupe.
Result<std::vector<Graph>> CombineBranches(
    std::vector<Result<std::vector<Graph>>> parts) {
  std::vector<Graph> all;
  for (auto& part : parts) {
    if (!part.ok()) return part.status();
    all.insert(all.end(), part->begin(), part->end());
  }
  std::sort(all.begin(), all.end(), [](const Graph& a, const Graph& b) {
    return a.triples() < b.triples();
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

bool SameResult(const Result<std::vector<Graph>>& a,
                const Result<std::vector<Graph>>& b) {
  if (a.ok() != b.ok()) return false;
  if (!a.ok()) return true;
  return *a == *b;
}

// Independent hand-rolled BFS over `pred` edges — the checked-mode
// referee for the citation-reach path template. The citation graph is
// acyclic by construction (targets are always earlier papers), so the
// source itself is never reachable and Plus(pred) from src is exactly
// the strictly-reachable set.
std::vector<Term> BfsReach(const Graph& g, Term pred, Term src) {
  std::vector<Term> frontier{src};
  std::unordered_set<Term> seen{src};
  std::vector<Term> out;
  while (!frontier.empty()) {
    const Term u = frontier.back();
    frontier.pop_back();
    for (const Triple& t : g.Matches(u, pred, std::nullopt)) {
      if (seen.insert(t.o).second) {
        out.push_back(t.o);
        frontier.push_back(t.o);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// The checked-mode referee for the navigational type-of template: the
// maintained closure's rdf:type facts for the node. Navigation over the
// raw data graph and rule-derived closure triples are two independent
// implementations of RDFS typing; the driver asserts they agree.
std::vector<Term> ClosureTypes(const Graph& closure, Term node) {
  std::vector<Term> out;
  for (const Triple& t : closure.Matches(node, vocab::kType, std::nullopt)) {
    out.push_back(t.o);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double Percentile(const std::vector<uint32_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[idx < sorted.size() ? idx : sorted.size() - 1];
}

}  // namespace

struct TrafficDriver::ReaderAccum {
  std::vector<uint32_t> latencies;
  uint64_t ops = 0;
  uint64_t answers = 0;
  uint64_t errors = 0;
  uint64_t checks = 0;
  uint64_t mismatches = 0;
  uint64_t digest = 0;
  std::array<uint64_t, kTemplateCount> template_ops{};
  uint64_t iterations = 0;
  uint64_t lag_sum = 0;
  uint64_t lag_max = 0;
};

TrafficDriver::TrafficDriver(Database* db, Sp2bGenerator* gen,
                             const WorkloadMix* mix, DriverOptions options)
    : db_(db), gen_(gen), mix_(mix), options_(options) {}

TrafficDriver::OpResult TrafficDriver::JudgeQuery(
    const DatabaseSnapshot& snap, const Query& q, TemplateId id,
    const Result<std::vector<Graph>>& served, bool check) const {
  OpResult r;
  uint64_t h = Mix64(0x53455256, static_cast<uint64_t>(id));
  if (!served.ok()) {
    r.error = true;
    r.digest = Mix64(h, 0xE0E0);
  } else {
    r.answers = served->size();
    for (const Graph& g : *served) h = DigestGraph(h, g);
    r.digest = h;
  }
  if (check) {
    const Result<std::vector<Graph>> expected =
        db_->evaluator()->PreAnswerPrenormalized(q, snap.normalized());
    r.mismatch = !SameResult(served, expected);
  }
  return r;
}

TrafficDriver::OpResult TrafficDriver::ExecuteRequest(
    const DatabaseSnapshot& snap, const ServingRequest& req,
    bool check) const {
  switch (req.kind) {
    case RequestKind::kQuery:
      return JudgeQuery(snap, req.query, req.template_id,
                        snap.PreAnswer(req.query), check);
    case RequestKind::kUnion:
    case RequestKind::kPremise: {
      // Premise requests are served through their premise-free Ωq
      // branches (Prop. 5.9): one batched evaluation on the pinned
      // snapshot, then the union combine. Direct premise evaluation
      // would serialize with the writer, so it never runs here — the
      // Prop. 5.9 equivalence itself is asserted single-threadedly in
      // tests/serving_test.cc.
      Result<std::vector<Graph>> served =
          CombineBranches(snap.PreAnswerBatch(req.union_q.branches));
      OpResult r;
      uint64_t h =
          Mix64(0x554E494F, static_cast<uint64_t>(req.template_id));
      if (!served.ok()) {
        r.error = true;
        r.digest = Mix64(h, 0xE0E0);
      } else {
        r.answers = served->size();
        for (const Graph& g : *served) h = DigestGraph(h, g);
        r.digest = h;
      }
      if (check) {
        std::vector<Result<std::vector<Graph>>> parts;
        parts.reserve(req.union_q.branches.size());
        for (const Query& branch : req.union_q.branches) {
          parts.push_back(db_->evaluator()->PreAnswerPrenormalized(
              branch, snap.normalized()));
        }
        r.mismatch = !SameResult(served, CombineBranches(std::move(parts)));
      }
      return r;
    }
    case RequestKind::kPath: {
      const std::vector<Term> nodes =
          EvalPathFrom(snap.data(), *req.path, req.path_sources);
      OpResult r;
      r.answers = nodes.size();
      uint64_t h = Mix64(0x50415448, static_cast<uint64_t>(req.template_id));
      for (const Term n : nodes) h = Mix64(h, n.bits());
      r.digest = h;
      if (check) {
        const std::vector<Term> expected =
            req.template_id == TemplateId::kCitationReach
                ? BfsReach(snap.data(), mix_->vocab().references,
                           req.path_sources[0])
                : ClosureTypes(snap.closure(), req.path_sources[0]);
        r.mismatch = nodes != expected;
      }
      return r;
    }
  }
  return OpResult{};
}

void TrafficDriver::OneIteration(Rng* rng, ReaderAccum* acc,
                                 std::vector<uint64_t>* op_digests) {
  const size_t group = options_.batch_size < 1 ? 1 : options_.batch_size;
  const std::shared_ptr<const DatabaseSnapshot> snap = db_->Snapshot();
  // Sample the whole group (and its check coin flips) before serving,
  // so the rng stream is independent of evaluation internals.
  std::vector<ServingRequest> reqs;
  reqs.reserve(group);
  std::vector<char> checks(group, 0);
  for (size_t i = 0; i < group; ++i) {
    reqs.push_back(mix_->Sample(rng));
    checks[i] =
        options_.check_fraction > 0 && rng->Chance(options_.check_fraction);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<OpResult> results(group);
  if (group == 1) {
    results[0] = ExecuteRequest(*snap, reqs[0], checks[0] != 0);
  } else {
    // Premise-free single queries share one PreAnswerBatch call (the
    // batch trie + ViewKey dedupe path); everything else is served
    // individually inside the same timed window.
    std::vector<Query> queries;
    std::vector<size_t> slots;
    for (size_t i = 0; i < group; ++i) {
      if (reqs[i].kind == RequestKind::kQuery) {
        queries.push_back(reqs[i].query);
        slots.push_back(i);
      }
    }
    if (!queries.empty()) {
      std::vector<Result<std::vector<Graph>>> batched =
          snap->PreAnswerBatch(queries);
      for (size_t j = 0; j < slots.size(); ++j) {
        results[slots[j]] =
            JudgeQuery(*snap, queries[j], reqs[slots[j]].template_id,
                       batched[j], checks[slots[j]] != 0);
      }
    }
    for (size_t i = 0; i < group; ++i) {
      if (reqs[i].kind != RequestKind::kQuery) {
        results[i] = ExecuteRequest(*snap, reqs[i], checks[i] != 0);
      }
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const uint64_t us =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  acc->latencies.push_back(
      us > 0xffffffffULL ? 0xffffffffu : static_cast<uint32_t>(us));

  const uint64_t published = published_epoch_.load(std::memory_order_acquire);
  // A reader can pin a snapshot the writer published after its last
  // epoch store; clamp instead of wrapping.
  const uint64_t lag =
      published > snap->epoch() ? published - snap->epoch() : 0;
  acc->iterations += 1;
  acc->lag_sum += lag;
  if (lag > acc->lag_max) acc->lag_max = lag;

  for (size_t i = 0; i < group; ++i) {
    const OpResult& r = results[i];
    acc->ops += 1;
    acc->answers += r.answers;
    acc->errors += r.error ? 1 : 0;
    acc->checks += checks[i] ? 1 : 0;
    acc->mismatches += r.mismatch ? 1 : 0;
    acc->digest ^= r.digest;
    acc->template_ops[static_cast<size_t>(reqs[i].template_id)] += 1;
    if (op_digests != nullptr) op_digests->push_back(r.digest);
  }
}

void TrafficDriver::ReaderLoop(int tid, ReaderAccum* acc) {
  Rng rng(MixSeed(options_.seed, 1 + static_cast<uint64_t>(tid)));
  if (options_.ops_per_reader > 0) {
    while (acc->ops < options_.ops_per_reader &&
           !stop_.load(std::memory_order_acquire)) {
      OneIteration(&rng, acc, nullptr);
    }
  } else {
    while (!stop_.load(std::memory_order_acquire)) {
      OneIteration(&rng, acc, nullptr);
    }
  }
}

void TrafficDriver::WriterBatch(Rng* rng, DriverReport* report) {
  MutationBatch batch;
  const size_t want_erase = static_cast<size_t>(
      options_.writer_erase_fraction *
      static_cast<double>(options_.writer_batch_triples));
  for (size_t i = 0; i < want_erase && !reservoir_.empty(); ++i) {
    const size_t idx = rng->Below(reservoir_.size());
    batch.Erase(reservoir_[idx]);
    reservoir_[idx] = reservoir_.back();
    reservoir_.pop_back();
  }
  std::vector<Triple> fresh =
      gen_->NextPublications(options_.writer_batch_triples);
  for (const Triple& t : fresh) batch.Insert(t);
  const Database::ApplyResult applied = db_->Apply(batch);
  published_epoch_.store(db_->epoch(), std::memory_order_release);
  report->writer_batches += 1;
  report->writer_inserts += applied.inserted;
  report->writer_erases += applied.erased;
  for (const Triple& t : fresh) {
    if (reservoir_.size() < kReservoirCap) {
      reservoir_.push_back(t);
    } else {
      reservoir_[rng->Below(reservoir_.size())] = t;
    }
  }
}

void TrafficDriver::WriterLoop(DriverReport* writer_side) {
  Rng rng(MixSeed(options_.seed, 0));
  while (!stop_.load(std::memory_order_acquire)) {
    WriterBatch(&rng, writer_side);
    if (options_.writer_pause_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.writer_pause_micros));
    }
  }
}

DriverReport TrafficDriver::Run() {
  const DatabaseStats before = db_->CollectStats();
  // Build the closure and publish the first snapshot (plus its nf)
  // before the clock starts: the steady-state loop should not pay the
  // one-time cold build.
  const std::shared_ptr<const DatabaseSnapshot> warm = db_->Snapshot();
  (void)warm->normalized();
  published_epoch_.store(db_->epoch(), std::memory_order_release);
  stop_.store(false, std::memory_order_release);

  std::vector<ReaderAccum> accums(
      options_.readers > 0 ? static_cast<size_t>(options_.readers) : 1);
  DriverReport writer_side;
  const auto t0 = std::chrono::steady_clock::now();
  std::thread writer;
  if (options_.writer && gen_ != nullptr) {
    writer = std::thread([this, &writer_side] { WriterLoop(&writer_side); });
  }
  std::vector<std::thread> readers;
  readers.reserve(accums.size());
  for (size_t tid = 0; tid < accums.size(); ++tid) {
    readers.emplace_back([this, tid, &accums] {
      ReaderLoop(static_cast<int>(tid), &accums[tid]);
    });
  }
  if (options_.ops_per_reader == 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options_.seconds > 0 ? options_.seconds : 1.0));
    stop_.store(true, std::memory_order_release);
  }
  for (std::thread& t : readers) t.join();
  stop_.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return Finish(&accums, elapsed, before, writer_side);
}

DriverReport TrafficDriver::RunSingleThreaded(
    std::vector<uint64_t>* op_digests) {
  const DatabaseStats before = db_->CollectStats();
  const std::shared_ptr<const DatabaseSnapshot> warm = db_->Snapshot();
  (void)warm->normalized();
  published_epoch_.store(db_->epoch(), std::memory_order_release);
  stop_.store(false, std::memory_order_release);

  const uint64_t quota =
      options_.ops_per_reader > 0 ? options_.ops_per_reader : 256;
  Rng rng(MixSeed(options_.seed, 1));
  Rng writer_rng(MixSeed(options_.seed, 0));
  std::vector<ReaderAccum> accums(1);
  DriverReport writer_side;
  uint64_t next_writer_at = options_.writer_every;
  const auto t0 = std::chrono::steady_clock::now();
  while (accums[0].ops < quota) {
    if (options_.writer && gen_ != nullptr && options_.writer_every > 0 &&
        accums[0].ops >= next_writer_at) {
      WriterBatch(&writer_rng, &writer_side);
      next_writer_at += options_.writer_every;
    }
    OneIteration(&rng, &accums[0], op_digests);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return Finish(&accums, elapsed, before, writer_side);
}

DriverReport TrafficDriver::Finish(std::vector<ReaderAccum>* accums,
                                   double elapsed,
                                   const DatabaseStats& before,
                                   DriverReport writer_side) {
  DriverReport r = std::move(writer_side);
  std::vector<uint32_t> lat;
  uint64_t iterations = 0;
  uint64_t lag_sum = 0;
  for (const ReaderAccum& acc : *accums) {
    lat.insert(lat.end(), acc.latencies.begin(), acc.latencies.end());
    r.ops += acc.ops;
    r.answers += acc.answers;
    r.errors += acc.errors;
    r.checks += acc.checks;
    r.mismatches += acc.mismatches;
    r.answer_digest ^= acc.digest;
    for (size_t i = 0; i < kTemplateCount; ++i) {
      r.template_ops[i] += acc.template_ops[i];
    }
    iterations += acc.iterations;
    lag_sum += acc.lag_sum;
    if (acc.lag_max > r.max_snapshot_lag) r.max_snapshot_lag = acc.lag_max;
  }
  std::sort(lat.begin(), lat.end());
  double sum = 0;
  for (const uint32_t v : lat) sum += v;
  r.mean_us = lat.empty() ? 0 : sum / static_cast<double>(lat.size());
  r.p50_us = Percentile(lat, 0.50);
  r.p95_us = Percentile(lat, 0.95);
  r.p99_us = Percentile(lat, 0.99);
  r.max_us = lat.empty() ? 0 : lat.back();
  r.elapsed_seconds = elapsed;
  r.qps = elapsed > 0 ? static_cast<double>(r.ops) / elapsed : 0;
  r.mean_snapshot_lag =
      iterations > 0
          ? static_cast<double>(lag_sum) / static_cast<double>(iterations)
          : 0;

  const DatabaseStats after = db_->CollectStats();
  r.view_hits = after.views.hits - before.views.hits;
  r.view_misses = after.views.misses - before.views.misses;
  r.view_installs = after.views.installs - before.views.installs;
  r.batch_view_hits =
      after.batch_view_hits.load(std::memory_order_relaxed) -
      before.batch_view_hits.load(std::memory_order_relaxed);
  r.snapshot_nf_builds =
      after.snapshot_nf_builds.load(std::memory_order_relaxed) -
      before.snapshot_nf_builds.load(std::memory_order_relaxed);
  r.snapshot_publishes =
      after.snapshot_publishes.load(std::memory_order_relaxed) -
      before.snapshot_publishes.load(std::memory_order_relaxed);
  r.final_triples = db_->size();
  return r;
}

}  // namespace swdb
