#ifndef SWDB_QUERY_REDUNDANCY_H_
#define SWDB_QUERY_REDUNDANCY_H_

#include <vector>

#include "rdf/graph.h"
#include "rdf/hom.h"
#include "util/status.h"

namespace swdb {

/// Redundancy elimination over answer sets (paper §6.2).
///
/// Under union semantics, deciding whether ans∪(q, D) is lean is
/// coNP-complete (Thm 6.2) — the answer graph is arbitrary, so the
/// general leanness test applies. Under merge semantics the single
/// answers share no blank nodes, and Thm 6.3 gives a polynomial
/// algorithm: every endomorphism of the merged answer is a union of
/// *single maps* (maps from one single answer into the whole), so it
/// suffices to look for (1) a proper single map, or (2) two single maps
/// whose blank images collide.

/// Polynomial-time leanness test for a merge-semantics answer, given its
/// single answers (which must be pairwise blank-disjoint). Implements
/// the algorithm in the proof of Thm 6.3. Returns true iff the merge
/// (union) of the answers is lean.
Result<bool> IsMergeAnswerLean(const std::vector<Graph>& single_answers,
                               MatchOptions options = MatchOptions());

/// Removes redundant single answers from a merge-semantics answer set in
/// polynomial time: an answer subsumed by (mappable into) the union of
/// the others is dropped. The result is the lean core of the merged
/// answer when each single answer is itself lean.
Result<std::vector<Graph>> EliminateMergeRedundancy(
    std::vector<Graph> single_answers, MatchOptions options = MatchOptions());

}  // namespace swdb

#endif  // SWDB_QUERY_REDUNDANCY_H_
