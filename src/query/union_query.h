#ifndef SWDB_QUERY_UNION_QUERY_H_
#define SWDB_QUERY_UNION_QUERY_H_

#include <vector>

#include "query/answer.h"
#include "query/query.h"
#include "util/status.h"

namespace swdb {

/// A union of queries q1 ∪ ... ∪ qn: its answer on D is the union of the
/// branch answers. Unions arise naturally from premise elimination
/// (Prop. 5.9 turns one premise query into a union of premise-free
/// ones) and obey the containment rule of Prop. 5.11.
struct UnionQuery {
  std::vector<Query> branches;

  /// Validates every branch.
  Status Validate() const;

  /// Wraps a single query.
  static UnionQuery Of(Query q);

  /// The premise-free union Ωq equivalent to q (Prop. 5.9).
  static Result<UnionQuery> FromPremiseQuery(const Query& q,
                                             MatchOptions options = {});
};

/// ans∪ of a union query: the union over branches of their union-
/// semantics answers.
Result<Graph> AnswerUnionQuery(QueryEvaluator* evaluator,
                               const UnionQuery& q, const Graph& db);

/// Pre-answers of a union query: concatenated and deduplicated branch
/// pre-answers.
Result<std::vector<Graph>> PreAnswerUnionQuery(QueryEvaluator* evaluator,
                                               const UnionQuery& q,
                                               const Graph& db);

/// Prop. 5.11: (q1 ∪ q2) ⊑ q' iff q1 ⊑ q' and q2 ⊑ q' — for both
/// containment notions, over simple queries (premises allowed on q').
Result<bool> UnionContainedStandardSimple(const UnionQuery& q,
                                          const Query& q_prime,
                                          Dictionary* dict,
                                          MatchOptions options = {});
Result<bool> UnionContainedEntailmentSimple(const UnionQuery& q,
                                            const Query& q_prime,
                                            Dictionary* dict,
                                            MatchOptions options = {});

}  // namespace swdb

#endif  // SWDB_QUERY_UNION_QUERY_H_
