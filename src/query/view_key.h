#ifndef SWDB_QUERY_VIEW_KEY_H_
#define SWDB_QUERY_VIEW_KEY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "query/query.h"

namespace swdb {

/// A query rewritten into the normal form the view layer keys on: the
/// same shape as the input, with variables renamed to canonical ids
/// Var(0..k-1) when the renaming is answer-preserving. Evaluating
/// `query` yields pre-answers bit-identical to evaluating the original
/// (answers never mention variable names), so one materialized view can
/// serve every query that canonicalizes to the same form.
struct CanonicalQuery {
  Query query;
  /// True when variables were actually canonicalized. False for queries
  /// whose head contains blank nodes: Skolemization keys on the concrete
  /// head-blank term and on the sorted-body-variable argument tuple, so
  /// serving one such query's answers for a merely isomorphic other
  /// would change the minted blank ids. Those queries keep their exact
  /// spelling as the key (repeats of the identical query still share).
  bool renamed = false;
};

/// Content-addressed identity of a query shape: the canonicalized query
/// serialized to packed term bits (body, head, constraints, premise
/// fingerprint) with a precomputed hash. Two queries with equal ViewKeys
/// are isomorphic via a variable bijection (equal keys literally share
/// one canonical spelling), so their pre-answers coincide bit for bit;
/// the converse is best-effort — a WL-refinement tie on pathologically
/// symmetric bodies may give isomorphic queries distinct keys, which
/// costs a cache miss, never a wrong answer.
struct ViewKey {
  std::vector<uint32_t> words;
  size_t hash = 0;

  bool operator==(const ViewKey& o) const {
    return hash == o.hash && words == o.words;
  }
  bool operator!=(const ViewKey& o) const { return !(*this == o); }
};

struct ViewKeyHash {
  size_t operator()(const ViewKey& k) const { return k.hash; }
};

/// Canonicalizes q (see CanonicalQuery) and serializes it into its
/// ViewKey. The caller must have validated q (Query::Validate); on a
/// non-validating query the key degrades to the exact spelling.
/// `canonical_out`, if non-null, receives the canonical query the view
/// layer should evaluate and store.
ViewKey MakeViewKey(const Query& q, CanonicalQuery* canonical_out = nullptr);

}  // namespace swdb

#endif  // SWDB_QUERY_VIEW_KEY_H_
