#ifndef SWDB_QUERY_BATCH_H_
#define SWDB_QUERY_BATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "query/answer.h"
#include "query/query.h"
#include "query/view_cache.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "util/status.h"

namespace swdb {

class ThreadPool;

/// Counters of one PreAnswerBatch call. Every field is structural — a
/// function of the batch, the normalized graph, and the view-cache
/// state, never of scheduling — so the same batch yields the same
/// BatchStats at any worker count (asserted by the parity fuzz).
struct BatchStats {
  /// Slots in the batch (== queries.size()).
  uint64_t queries = 0;
  /// Slots served by another slot's group: every member of a ViewKey
  /// group beyond its first spelling, regardless of how the group was
  /// resolved (view hit, trie, or sequential bypass).
  uint64_t deduped = 0;
  /// Premise-bearing slots: the D + P merge mints fresh blanks per
  /// call, so these fall through to per-query evaluation, on the
  /// calling thread in batch order (the sequential mint sequence).
  uint64_t premise_fallthroughs = 0;
  /// Head-blank groups: Skolem mint order must match the sequential
  /// run, so they bypass trie sharing and evaluate on the calling
  /// thread in batch order.
  uint64_t minting_fallthroughs = 0;
  /// Groups short-circuited by the view cache before trie construction.
  uint64_t view_hits = 0;
  /// Groups whose ordered body shared a non-empty trie prefix with at
  /// least one other group.
  uint64_t trie_groups = 0;
  /// Groups with no shared prefix (or an empty body): one full matcher
  /// run each, exactly the sequential plan.
  uint64_t solo_groups = 0;
  /// Nodes of the built trie (0 when every group hit or fell through).
  uint64_t trie_nodes = 0;
  /// Prefix bindings enumerated at shared trie nodes — each is a
  /// binding the sequential path would have re-derived once per
  /// sharing query.
  uint64_t prefix_hits = 0;
  /// Work fanned out of a shared binding: suffix-matcher resumes and
  /// terminal emissions seeded by a non-empty prefix.
  uint64_t shared_bindings_reused = 0;
  /// Groups whose step budget ran out (their slots return
  /// kLimitExceeded; the rest of the batch is unaffected).
  uint64_t limit_exceeded = 0;

  bool operator==(const BatchStats&) const = default;
};

/// Evaluates a batch of queries against one pinned normalized graph.
///
/// The shared engine behind Database::PreAnswerBatch and
/// DatabaseSnapshot::PreAnswerBatch:
///   1. slots are validated (invalid slots get their own error Result);
///      premise-bearing slots are queued for per-query evaluation via
///      `premise_eval`, on the calling thread in batch order;
///   2. premise-free slots are grouped by ViewKey — isomorphic shapes
///      share one evaluation, replayed per spelling (bit-identical by
///      the CanonicalQuery contract; head-blank queries key on their
///      exact spelling, so only identical spellings share and the
///      Skolem mints match a sequential run);
///   3. groups are probed against `views` first (a fully-hit batch
///      never calls `normalized`); on any miss the normalized graph is
///      obtained once, the cache is brought up to date (Maintain), and
///      the groups are re-probed;
///   4. surviving renamed groups are evaluated through a shared-prefix
///      match trie (see batch.cc): each group's body is put in a
///      deterministic most-constrained-first static order, the ordered
///      bodies are aligned on their common prefixes, shared prefix
///      bindings are enumerated once and fanned into each group's
///      residual suffix matcher (PatternMatcher::EnumerateSeeded).
///      Trie root subtrees fan out over `pool` (nullptr runs inline);
///      every subtree owns its groups exclusively and runs a
///      deterministic sequential walk, so answers and BatchStats are
///      bit-identical at any worker count;
///   5. head-blank group leaders evaluate sequentially on the calling
///      thread, interleaved with premise slots in batch order;
///   6. per-group answers are post-processed exactly like
///      QueryEvaluator::PreAnswerPrenormalized (ValuationLess-sorted
///      matchings, sorted + deduplicated answers), installed into the
///      view cache when the advisor promoted the shape, and replayed
///      to every member slot.
///
/// `normalized` is called at most once per batch and must return the
/// normalized graph the sequential path would evaluate against;
/// `premise_eval` must be the per-query premise path. `views` may hold
/// a null cache (view layer disabled). `match.max_steps` bounds each
/// root subtree's shared prefix walk and, separately, each group's
/// total suffix-matcher spend — one group's budget, like one
/// sequential call's.
std::vector<Result<std::vector<Graph>>> PreAnswerBatchImpl(
    const std::vector<Query>& queries, QueryEvaluator* evaluator,
    const std::function<const Graph&()>& normalized,
    const std::function<Result<std::vector<Graph>>(const Query&)>&
        premise_eval,
    const ViewCacheRef& views, ThreadPool* pool, const MatchOptions& match,
    BatchStats* stats_out);

}  // namespace swdb

#endif  // SWDB_QUERY_BATCH_H_
