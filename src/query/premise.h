#ifndef SWDB_QUERY_PREMISE_H_
#define SWDB_QUERY_PREMISE_H_

#include <vector>

#include "query/query.h"
#include "rdf/hom.h"
#include "util/status.h"

namespace swdb {

/// Computes Ωq (paper Prop. 5.9): the premise-free queries
/// qμ = (μ(H), μ(B − R), ∅) over all subsets R ⊆ B and maps μ : R → P
/// such that μ(B − R) has no blank nodes. For simple queries, the union
/// of the qμ answers equals the answer of q on every database, so this
/// transformation eliminates the premise.
///
/// Constraints are carried over as follows: a qμ whose map binds a
/// constrained variable to a blank node of P is dropped (it can only
/// produce constraint-violating answers); a constrained variable bound
/// to a URI is removed from the constraint set; the rest remain.
///
/// The result is deduplicated. Worst case |Ωq| is exponential in |B|
/// (the source of the Π2P upper bound of Thm 5.12).
Result<std::vector<Query>> EliminatePremise(const Query& q,
                                            MatchOptions options = {});

}  // namespace swdb

#endif  // SWDB_QUERY_PREMISE_H_
