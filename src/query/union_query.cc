#include "query/union_query.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "query/containment.h"
#include "query/premise.h"
#include "query/view_key.h"
#include "util/thread_pool.h"

namespace swdb {

namespace {

// Whether evaluating this branch can mint fresh blank nodes (premise
// merge or head-blank Skolemization). Mint order determines the minted
// ids, so such branches are kept sequential in the fan-out below.
bool BranchMintsBlanks(const Query& q) {
  if (!q.premise.empty()) return true;
  for (const Triple& t : q.head) {
    if (t.s.IsBlank() || t.p.IsBlank() || t.o.IsBlank()) return true;
  }
  return false;
}

}  // namespace

Status UnionQuery::Validate() const {
  for (const Query& q : branches) {
    Status s = q.Validate();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

UnionQuery UnionQuery::Of(Query q) {
  UnionQuery u;
  u.branches.push_back(std::move(q));
  return u;
}

Result<UnionQuery> UnionQuery::FromPremiseQuery(const Query& q,
                                                MatchOptions options) {
  Result<std::vector<Query>> omega = EliminatePremise(q, options);
  if (!omega.ok()) return omega.status();
  UnionQuery u;
  u.branches = *std::move(omega);
  return u;
}

Result<Graph> AnswerUnionQuery(QueryEvaluator* evaluator,
                               const UnionQuery& q, const Graph& db) {
  // The union over branches of their ans∪ equals the union of all
  // branch pre-answers, so this shares PreAnswerUnionQuery's parallel
  // fan-out instead of looping sequentially.
  Result<std::vector<Graph>> pre = PreAnswerUnionQuery(evaluator, q, db);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) out.InsertAll(answer);
  return out;
}

Result<std::vector<Graph>> PreAnswerUnionQuery(QueryEvaluator* evaluator,
                                               const UnionQuery& q,
                                               const Graph& db) {
  const size_t n = q.branches.size();
  // Dedupe isomorphic premise-free branches by ViewKey: equal keys
  // share one canonical spelling, so the leader's pre-answers are
  // bit-identical to what the duplicate's own evaluation would return
  // (head-blank branches key on their exact spelling, and a sequential
  // re-evaluation would hit the Skolem cache — replaying the earlier
  // leader preserves the mint sequence). Premise-bearing branches
  // never dedupe: the D + P merge mints fresh blanks per call.
  std::vector<size_t> dup_of(n);
  std::unordered_map<ViewKey, size_t, ViewKeyHash> leader_of;
  for (size_t i = 0; i < n; ++i) {
    dup_of[i] = i;
    if (!q.branches[i].premise.empty()) continue;
    ViewKey key = MakeViewKey(q.branches[i]);
    auto [it, inserted] = leader_of.try_emplace(std::move(key), i);
    if (!inserted) dup_of[i] = it->second;
  }
  std::vector<std::optional<Result<std::vector<Graph>>>> parts(n);
  ThreadPool* pool = evaluator->options().match.pool;
  if (pool != nullptr && n > 1) {
    // Fan out the branches that cannot mint blanks; minting branches
    // (premise merges, head-blank Skolemization) stay on this thread in
    // branch order so the minted ids match the sequential run. Each
    // branch normalizes db + P itself, so there is no shared mutable
    // state beyond the internally synchronized dictionary and Skolem
    // cache.
    TaskGroup group(pool);
    for (size_t i = 0; i < n; ++i) {
      if (dup_of[i] == i && !BranchMintsBlanks(q.branches[i])) {
        group.Run([&parts, evaluator, &q, &db, i] {
          parts[i].emplace(evaluator->PreAnswer(q.branches[i], db));
        });
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (dup_of[i] == i && BranchMintsBlanks(q.branches[i])) {
        parts[i].emplace(evaluator->PreAnswer(q.branches[i], db));
      }
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (dup_of[i] == i) parts[i].emplace(evaluator->PreAnswer(q.branches[i], db));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (dup_of[i] != i) parts[i] = parts[dup_of[i]];
  }

  std::vector<Graph> all;
  for (size_t i = 0; i < n; ++i) {
    // Pinned merge order: first error in branch order wins, and the
    // concatenation below is the sequential one.
    if (!parts[i]->ok()) return parts[i]->status();
    all.insert(all.end(), (*parts[i])->begin(), (*parts[i])->end());
  }
  std::sort(all.begin(), all.end(), [](const Graph& a, const Graph& b) {
    return a.triples() < b.triples();
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

Result<bool> UnionContainedStandardSimple(const UnionQuery& q,
                                          const Query& q_prime,
                                          Dictionary* dict,
                                          MatchOptions options) {
  for (const Query& branch : q.branches) {
    Result<bool> one =
        ContainedStandardSimple(branch, q_prime, dict, options);
    if (!one.ok()) return one.status();
    if (!*one) return false;
  }
  return true;
}

Result<bool> UnionContainedEntailmentSimple(const UnionQuery& q,
                                            const Query& q_prime,
                                            Dictionary* dict,
                                            MatchOptions options) {
  for (const Query& branch : q.branches) {
    Result<bool> one =
        ContainedEntailmentSimple(branch, q_prime, dict, options);
    if (!one.ok()) return one.status();
    if (!*one) return false;
  }
  return true;
}

}  // namespace swdb
