#include "query/union_query.h"

#include <algorithm>

#include "query/containment.h"
#include "query/premise.h"

namespace swdb {

Status UnionQuery::Validate() const {
  for (const Query& q : branches) {
    Status s = q.Validate();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

UnionQuery UnionQuery::Of(Query q) {
  UnionQuery u;
  u.branches.push_back(std::move(q));
  return u;
}

Result<UnionQuery> UnionQuery::FromPremiseQuery(const Query& q,
                                                MatchOptions options) {
  Result<std::vector<Query>> omega = EliminatePremise(q, options);
  if (!omega.ok()) return omega.status();
  UnionQuery u;
  u.branches = *std::move(omega);
  return u;
}

Result<Graph> AnswerUnionQuery(QueryEvaluator* evaluator,
                               const UnionQuery& q, const Graph& db) {
  Graph out;
  for (const Query& branch : q.branches) {
    Result<Graph> part = evaluator->AnswerUnion(branch, db);
    if (!part.ok()) return part.status();
    out.InsertAll(*part);
  }
  return out;
}

Result<std::vector<Graph>> PreAnswerUnionQuery(QueryEvaluator* evaluator,
                                               const UnionQuery& q,
                                               const Graph& db) {
  std::vector<Graph> all;
  for (const Query& branch : q.branches) {
    Result<std::vector<Graph>> part = evaluator->PreAnswer(branch, db);
    if (!part.ok()) return part.status();
    all.insert(all.end(), part->begin(), part->end());
  }
  std::sort(all.begin(), all.end(), [](const Graph& a, const Graph& b) {
    return a.triples() < b.triples();
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

Result<bool> UnionContainedStandardSimple(const UnionQuery& q,
                                          const Query& q_prime,
                                          Dictionary* dict,
                                          MatchOptions options) {
  for (const Query& branch : q.branches) {
    Result<bool> one =
        ContainedStandardSimple(branch, q_prime, dict, options);
    if (!one.ok()) return one.status();
    if (!*one) return false;
  }
  return true;
}

Result<bool> UnionContainedEntailmentSimple(const UnionQuery& q,
                                            const Query& q_prime,
                                            Dictionary* dict,
                                            MatchOptions options) {
  for (const Query& branch : q.branches) {
    Result<bool> one =
        ContainedEntailmentSimple(branch, q_prime, dict, options);
    if (!one.ok()) return one.status();
    if (!*one) return false;
  }
  return true;
}

}  // namespace swdb
