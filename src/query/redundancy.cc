#include "query/redundancy.h"

#include <algorithm>

namespace swdb {

namespace {

Status CheckBlankDisjoint(const std::vector<Graph>& answers) {
  std::vector<Term> seen;
  for (const Graph& g : answers) {
    for (Term b : g.BlankNodes()) {
      if (std::binary_search(seen.begin(), seen.end(), b)) {
        return Status::InvalidArgument(
            "merge-semantics answers must be pairwise blank-disjoint");
      }
    }
    std::vector<Term> blanks = g.BlankNodes();
    std::vector<Term> merged;
    std::set_union(seen.begin(), seen.end(), blanks.begin(), blanks.end(),
                   std::back_inserter(merged));
    seen = std::move(merged);
  }
  return Status::OK();
}

}  // namespace

Result<bool> IsMergeAnswerLean(const std::vector<Graph>& single_answers,
                               MatchOptions options) {
  Status disjoint = CheckBlankDisjoint(single_answers);
  if (!disjoint.ok()) return disjoint;

  Graph merged;
  for (const Graph& g : single_answers) merged.InsertAll(g);

  // Thm 6.3: every endomorphism of the merge is a union of single maps
  // μ_j : G_j → A, and since identity is always available for the other
  // components, the merge is non-lean iff some single answer G_k has a
  // non-ground triple t and a map G_k → A \ {t}.
  for (const Graph& g : single_answers) {
    // One compiled matcher per answer against the shared merge; the
    // exclude_triple option probes A \ {t} without copying the target.
    PatternMatcher matcher(g, &merged, options);
    for (const Triple& t : g) {
      if (t.IsGround()) continue;
      matcher.set_exclude_triple(t);
      Result<std::optional<TermMap>> hom = matcher.FindAny();
      if (!hom.ok()) return hom.status();
      if (hom->has_value()) return false;  // proper endomorphism exists
    }
  }
  return true;
}

Result<std::vector<Graph>> EliminateMergeRedundancy(
    std::vector<Graph> single_answers, MatchOptions options) {
  Status disjoint = CheckBlankDisjoint(single_answers);
  if (!disjoint.ok()) return disjoint;

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t k = 0; k < single_answers.size(); ++k) {
      Graph rest;
      for (size_t j = 0; j < single_answers.size(); ++j) {
        if (j != k) rest.InsertAll(single_answers[j]);
      }
      PatternMatcher matcher(single_answers[k], &rest, options);
      Result<std::optional<TermMap>> hom = matcher.FindAny();
      if (!hom.ok()) return hom.status();
      if (hom->has_value()) {
        single_answers.erase(single_answers.begin() + k);
        changed = true;
        break;
      }
    }
  }
  return single_answers;
}

}  // namespace swdb
