#include "query/database.h"

#include "inference/closure.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "rdf/map.h"

namespace swdb {

Database::Database(Dictionary* dict, EvalOptions options)
    : dict_(dict), evaluator_(dict, options), options_(options) {}

bool Database::Insert(const Triple& t) {
  bool added = data_.Insert(t);
  if (added) Invalidate();
  return added;
}

void Database::InsertGraph(const Graph& g) {
  data_.InsertAll(g);
  Invalidate();
}

Status Database::InsertText(std::string_view text) {
  Result<Graph> g = ParseGraph(text, dict_);
  if (!g.ok()) return g.status();
  InsertGraph(*g);
  return Status::OK();
}

bool Database::Erase(const Triple& t) {
  bool removed = data_.Erase(t);
  if (removed) Invalidate();
  return removed;
}

const Graph& Database::Normalized() {
  if (!normalized_.has_value()) {
    normalized_ = options_.use_closure_only ? RdfsClosure(data_)
                                            : NormalForm(data_);
  }
  return *normalized_;
}

bool Database::Entails(const Graph& q) { return RdfsEntails(data_, q); }

Result<std::vector<Graph>> Database::PreAnswer(const Query& q) {
  if (q.premise.empty()) {
    return evaluator_.PreAnswerPrenormalized(q, Normalized());
  }
  return evaluator_.PreAnswer(q, data_);
}

Result<Graph> Database::AnswerUnion(const Query& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) out.InsertAll(answer);
  return out;
}

Result<Graph> Database::AnswerMerge(const Query& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) {
    out.InsertAll(FreshBlankCopy(answer, dict_));
  }
  return out;
}

Result<Graph> Database::ExecuteQuery(std::string_view query_text) {
  Result<Query> q = ParseQuery(query_text, dict_);
  if (!q.ok()) return q.status();
  return AnswerUnion(*q);
}

}  // namespace swdb
