#include "query/database.h"

#include <unordered_map>

#include "inference/closure.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "query/batch.h"
#include "query/union_query.h"
#include "query/view_key.h"
#include "rdf/map.h"
#include "util/check.h"
#include "util/lock_rank.h"
#include "util/thread_pool.h"

namespace swdb {

namespace {

// The pool the nf(D) = core(cl(D)) builds run on: an explicitly
// configured EvalOptions pool wins, else the process-shared pool (sized
// by SWDB_THREADS; 0 degrades to inline). Safe to default on because
// the parallel core is bit-identical to the sequential one.
ThreadPool* CorePool(const EvalOptions& options) {
  return options.match.pool != nullptr ? options.match.pool
                                       : ThreadPool::Shared();
}

// Whether evaluating q can mint fresh blank nodes: premise-bearing
// queries merge P with renamed blanks, head blanks Skolemize. Mint
// *order* determines the minted ids, so such branches must be evaluated
// in a deterministic order (the union fan-out keeps them sequential).
bool QueryMintsBlanks(const Query& q) {
  if (!q.premise.empty()) return true;
  for (const Triple& t : q.head) {
    if (t.s.IsBlank() || t.p.IsBlank() || t.o.IsBlank()) return true;
  }
  return false;
}

// Whether the query body contains blank nodes. PatternMatcher maps
// pattern blanks homomorphically (open terms, like variables), so a
// stored matching over the body *variables* does not pin where a body
// blank went — neither the view cache's kept-filter nor its semi-naive
// patch can maintain such a view soundly. These shapes bypass the cache
// and always evaluate.
bool BodyHasBlanks(const Query& q) {
  for (const Triple& t : q.body) {
    if (t.s.IsBlank() || t.p.IsBlank() || t.o.IsBlank()) return true;
  }
  return false;
}

// Folds one PreAnswerBatch call's counters into the cumulative database
// stats (relaxed atomics: snapshots call this from reader threads).
void AccumulateBatchStats(const BatchStats& s, DatabaseStats* out) {
  const auto add = [](std::atomic<uint64_t>& c, uint64_t v) {
    c.fetch_add(v, std::memory_order_relaxed);
  };
  add(out->batch_calls, 1);
  add(out->batch_queries, s.queries);
  add(out->batch_deduped, s.deduped);
  add(out->batch_premise_fallthroughs, s.premise_fallthroughs);
  add(out->batch_minting_fallthroughs, s.minting_fallthroughs);
  add(out->batch_view_hits, s.view_hits);
  add(out->batch_trie_groups, s.trie_groups);
  add(out->batch_solo_groups, s.solo_groups);
  add(out->batch_prefix_hits, s.prefix_hits);
  add(out->batch_shared_reused, s.shared_bindings_reused);
  add(out->batch_limit_exceeded, s.limit_exceeded);
}

}  // namespace

Database::Database(Dictionary* dict, EvalOptions options)
    : dict_(dict),
      evaluator_(dict, options),
      options_(options),
      view_cache_(options.views) {}

bool Database::Insert(const Triple& t) {
  std::lock_guard<std::mutex> lock(write_mu_);
  LockRankScope rank(kLockRankWrite);
  // Copy first: t may alias data_'s own storage (e.g. a reference
  // obtained from graph()), which the mutation below shifts.
  Triple copy = t;
  if (!data_.Insert(copy)) return false;
  ++stats_.inserts;
  MaintainInsert(Graph({copy}));
  if (snapshots_on_) PublishSnapshotLocked();
  return true;
}

void Database::InsertGraph(const Graph& g) {
  std::lock_guard<std::mutex> lock(write_mu_);
  LockRankScope rank(kLockRankWrite);
  // Collect the actually-new part first: maintenance propagates from the
  // real delta, and an all-duplicates insert must not invalidate
  // anything.
  std::vector<Triple> fresh;
  for (const Triple& t : g) {
    if (!data_.Contains(t)) fresh.push_back(t);
  }
  if (fresh.empty()) return;
  stats_.inserts += fresh.size();
  Graph delta(std::move(fresh));
  data_.InsertAll(delta);
  if (closure_.has_value() &&
      delta.size() > closure_->closure().size() / 2) {
    // Bulk load: replaying a delta comparable to the closure itself is
    // slower than one batched refixpoint on next use.
    closure_.reset();
    normalized_.reset();
    lean_cache_.Clear(0);  // next full build re-seeds the version
    // The closure incarnation (and its version counter) is gone; the
    // view cache's Clear bumps its fence stamp so counter reuse by the
    // next incarnation can never revalidate an old consumer.
    view_cache_.Clear();
    ++stats_.closure_bulk_resets;
  } else {
    MaintainInsert(delta);
  }
  if (snapshots_on_) PublishSnapshotLocked();
}

Status Database::InsertText(std::string_view text) {
  Result<Graph> g = ParseGraph(text, dict_);
  if (!g.ok()) return g.status();
  InsertGraph(*g);
  return Status::OK();
}

bool Database::Erase(const Triple& t) {
  std::lock_guard<std::mutex> lock(write_mu_);
  LockRankScope rank(kLockRankWrite);
  // Copy first: erasing a triple referenced out of graph() is the
  // natural call pattern, and data_.Erase shifts the storage t may
  // alias — the maintenance pass below must see the original value.
  Triple copy = t;
  if (!data_.Erase(copy)) return false;
  ++stats_.erases;
  MaintainErase(Graph({copy}));
  if (snapshots_on_) PublishSnapshotLocked();
  return true;
}

Database::ApplyResult Database::Apply(const MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(write_mu_);
  LockRankScope rank(kLockRankWrite);
  ++stats_.batches;
  ApplyResult result;
  std::vector<Triple> erased;
  for (const Triple& t : batch.erases_) {
    if (data_.Erase(t)) erased.push_back(t);
  }
  result.erased = erased.size();
  stats_.erases += erased.size();
  if (!erased.empty()) MaintainErase(Graph(std::move(erased)));

  std::vector<Triple> inserted;
  for (const Triple& t : batch.inserts_) {
    if (data_.Insert(t)) inserted.push_back(t);
  }
  result.inserted = inserted.size();
  stats_.inserts += inserted.size();
  if (!inserted.empty()) MaintainInsert(Graph(std::move(inserted)));
  if (snapshots_on_) PublishSnapshotLocked();
  return result;
}

void Database::MaintainInsert(const Graph& delta) {
  if (!closure_.has_value()) return;  // not materialized yet: stay lazy
  ClosureDeltaStats ds;
  std::vector<Triple> derived;
  closure_->InsertDelta(delta, &ds, &derived);
  closure_epoch_ = data_.epoch();
  ++stats_.closure_delta_updates;
  stats_.closure_delta_derived += ds.derived;
  // New closure triples can enable folds of cached lean components:
  // evict every entry one of them could extend (see LeanCache).
  if (!derived.empty()) {
    lean_cache_.OnInsertDelta(derived, closure_->version());
  }
}

void Database::MaintainErase(const Graph& deleted) {
  if (!closure_.has_value()) return;
  ClosureDeltaStats ds;
  const uint64_t version_before = closure_->version();
  closure_->EraseDelta(data_, deleted, &ds);
  closure_epoch_ = data_.epoch();
  ++stats_.closure_erase_updates;
  stats_.closure_overdeleted += ds.overdeleted;
  stats_.closure_rederived += ds.rederived;
  // Cached refutations survive erases (leanness transfers to subsets),
  // but lagging snapshots must not consume post-erase entries — bump
  // the fence stamp.
  if (closure_->version() != version_before) {
    lean_cache_.OnEraseDelta(closure_->version());
    // Views are patched by the nf delta on the next Maintain; the stamp
    // bump only fences pre-erase snapshots out of post-erase entries.
    view_cache_.OnErase();
  }
}

DatabaseStats Database::CollectStats() const {
  DatabaseStats out = stats_;
  out.data_graph = data_.Stats();
  if (closure_.has_value()) out.closure_graph = closure_->closure().Stats();
  out.dictionary = dict_->Stats();
  out.lean_cache = lean_cache_.stats();
  out.views = view_cache_.stats();
  return out;
}

const Graph& Database::Closure() {
  if (!closure_.has_value()) {
    closure_.emplace(data_);
    closure_epoch_ = data_.epoch();
    lean_cache_.Clear(closure_->version());  // fresh closure incarnation
    view_cache_.Clear();
    ++stats_.closure_full_builds;
  } else {
    SWDB_CHECK(closure_epoch_ == data_.epoch(),
               "maintained closure out of sync with the data graph");
    ++stats_.closure_cache_hits;
  }
  return closure_->closure();
}

const Graph& Database::Normalized() {
  if (options_.use_closure_only) return Closure();
  const Graph& cl = Closure();
  if (normalized_.has_value() && nf_version_ == closure_->version()) {
    ++stats_.nf_cache_hits;
    return *normalized_;
  }
  normalized_ = Core(cl, /*witness=*/nullptr, CorePool(options_),
                     LeanCacheRef{&lean_cache_, closure_->version(),
                                  lean_cache_.stats().erase_stamp});
  nf_version_ = closure_->version();
  ++stats_.nf_rebuilds;
  return *normalized_;
}

bool Database::Entails(const Graph& q) {
  Result<bool> r = TryHasHomomorphism(q, Closure());
  SWDB_CHECK(r.ok(),
             "RDFS-entailment step budget exhausted; use TryRdfsEntails "
             "with explicit MatchOptions for graceful degradation");
  return *r;
}

bool Database::EntailsTriple(const Triple& t) {
  if (!membership_.has_value() || !membership_->InSync()) {
    if (membership_.has_value()) {
      membership_->Refresh();
    } else {
      membership_.emplace(data_);
    }
    ++stats_.membership_builds;
  }
  ++stats_.membership_queries;
  return membership_->Contains(t);
}

Result<std::vector<Graph>> Database::PreAnswer(const Query& q) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  if (!q.premise.empty()) {
    // Premise-bearing: the D + P merge mints fresh blank nodes per
    // call, so the answers are not replayable — never cached.
    return evaluator_.PreAnswer(q, data_);
  }
  const Graph& nf = Normalized();
  if (!options_.views.enabled || BodyHasBlanks(q)) {
    return evaluator_.PreAnswerPrenormalized(q, nf);
  }
  // Maintain before lookup: bringing every view to the current nf by
  // its delta is what turns post-mutation requests into hits. The
  // writer's (version, stamp) are by definition the cache's fence.
  const uint64_t version = closure_->version();
  view_cache_.Maintain(nf, version, view_cache_.erase_stamp(), &evaluator_,
                       options_.match);
  return PreAnswerThroughCache(q, nf, version);
}

Result<std::vector<Graph>> Database::PreAnswerThroughCache(const Query& q,
                                                           const Graph& nf,
                                                           uint64_t version) {
  CanonicalQuery canon;
  const ViewKey key = MakeViewKey(q, &canon);
  const uint64_t stamp = view_cache_.erase_stamp();
  if (std::optional<std::vector<Graph>> hit =
          view_cache_.Lookup(key, version, stamp)) {
    return *std::move(hit);
  }
  // Fallthrough: evaluate the canonical spelling (bit-identical answers
  // — see CanonicalQuery), capturing matchings when the advisor decides
  // this shape has earned materialization.
  const bool materialize = view_cache_.RecordMiss(key);
  std::vector<TermMap> matchings;
  Result<std::vector<Graph>> pre = evaluator_.PreAnswerPrenormalized(
      canon.query, nf, materialize ? &matchings : nullptr);
  if (!pre.ok()) return pre;
  if (materialize) {
    view_cache_.Install(key, canon.query, std::move(matchings), *pre,
                        version, stamp);
  }
  return pre;
}

std::vector<Result<std::vector<Graph>>> Database::PreAnswerBatch(
    const std::vector<Query>& queries, BatchStats* stats_out) {
  // Pin one nf up front iff some premise-free slot will need it — the
  // same eager Normalized() the first premise-free call of a sequential
  // replay performs. All-premise (and all-invalid) batches skip it.
  bool any_premise_free = false;
  for (const Query& q : queries) {
    if (q.premise.empty() && q.Validate().ok()) {
      any_premise_free = true;
      break;
    }
  }
  const Graph* nf = nullptr;
  ViewCacheRef views;  // null cache: view layer off for this batch
  if (any_premise_free) {
    nf = &Normalized();
    if (options_.views.enabled) {
      const uint64_t version = closure_->version();
      // Maintain before the batch's lookups, exactly like the
      // sequential writer path: delta-patching every view to the
      // current nf is what turns post-mutation batches into hits.
      view_cache_.Maintain(*nf, version, view_cache_.erase_stamp(),
                           &evaluator_, options_.match);
      views = ViewCacheRef{&view_cache_, version, view_cache_.erase_stamp()};
    }
  }
  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> out = PreAnswerBatchImpl(
      queries, &evaluator_, [nf]() -> const Graph& { return *nf; },
      [this](const Query& q) { return evaluator_.PreAnswer(q, data_); },
      views, options_.match.pool, options_.match, &stats);
  AccumulateBatchStats(stats, &stats_);
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

Result<std::vector<Graph>> Database::PreAnswer(const UnionQuery& q) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  bool any_premise_free = false;
  for (const Query& branch : q.branches) {
    if (branch.premise.empty()) any_premise_free = true;
  }
  const Graph* nf = nullptr;
  uint64_t version = 0;
  if (any_premise_free) {
    nf = &Normalized();
    version = closure_->version();
    if (options_.views.enabled) {
      view_cache_.Maintain(*nf, version, view_cache_.erase_stamp(),
                           &evaluator_, options_.match);
    }
    // Branch tasks share nf read-only; build its permutations up front
    // so no two tasks race the lazy index build.
    nf->WarmIndexes();
  }

  auto eval_branch = [&](const Query& branch) -> Result<std::vector<Graph>> {
    if (!branch.premise.empty()) return evaluator_.PreAnswer(branch, data_);
    if (!options_.views.enabled || BodyHasBlanks(branch)) {
      return evaluator_.PreAnswerPrenormalized(branch, *nf);
    }
    return PreAnswerThroughCache(branch, *nf, version);
  };

  const size_t n = q.branches.size();
  // Branch dedupe via the batch path's ViewKey grouping: premise-free
  // branches canonicalizing to the same key get one evaluation,
  // replayed per spelling (equal keys share one canonical spelling, so
  // the replay is bit-identical). Head-blank branches key on their
  // exact spelling — a sequential re-evaluation of the duplicate would
  // hit the Skolem cache and mint nothing, so replaying the leader
  // (which runs first, in branch order) preserves the mint sequence.
  // Premise-bearing branches never dedupe: Merge mints per call.
  std::vector<size_t> dup_of(n);
  std::unordered_map<ViewKey, size_t, ViewKeyHash> leader_of;
  for (size_t i = 0; i < n; ++i) {
    dup_of[i] = i;
    if (!q.branches[i].premise.empty()) continue;
    ViewKey key = MakeViewKey(q.branches[i]);
    auto [it, inserted] = leader_of.try_emplace(std::move(key), i);
    if (!inserted) {
      dup_of[i] = it->second;
      stats_.union_branches_deduped.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<std::optional<Result<std::vector<Graph>>>> parts(n);
  ThreadPool* pool = options_.match.pool;
  if (pool != nullptr && n > 1) {
    // Fan out only branches that cannot mint fresh blanks (premise-free
    // with blank-free heads): minting order determines blank ids, so
    // minting branches stay on this thread in branch order — exactly
    // the sequential mint sequence. With the pinned merge below, the
    // result is bit-identical at any worker count.
    TaskGroup group(pool);
    for (size_t i = 0; i < n; ++i) {
      if (dup_of[i] == i && !QueryMintsBlanks(q.branches[i])) {
        group.Run([&, i] { parts[i].emplace(eval_branch(q.branches[i])); });
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (dup_of[i] == i && QueryMintsBlanks(q.branches[i])) {
        parts[i].emplace(eval_branch(q.branches[i]));
      }
    }
    group.Wait();
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (dup_of[i] == i) parts[i].emplace(eval_branch(q.branches[i]));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (dup_of[i] != i) parts[i] = parts[dup_of[i]];
  }

  std::vector<Graph> all;
  for (size_t i = 0; i < n; ++i) {
    // First error in branch order wins — same status the sequential
    // loop would have returned.
    if (!parts[i]->ok()) return parts[i]->status();
    all.insert(all.end(), (*parts[i])->begin(), (*parts[i])->end());
  }
  std::sort(all.begin(), all.end(), [](const Graph& a, const Graph& b) {
    return a.triples() < b.triples();
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

Result<Graph> Database::AnswerUnion(const Query& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) out.InsertAll(answer);
  return out;
}

Result<Graph> Database::AnswerUnion(const UnionQuery& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) out.InsertAll(answer);
  return out;
}

Result<Graph> Database::AnswerMerge(const Query& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) {
    out.InsertAll(FreshBlankCopy(answer, dict_));
  }
  return out;
}

Result<Graph> Database::ExecuteQuery(std::string_view query_text) {
  Result<Query> q = ParseQuery(query_text, dict_);
  if (!q.ok()) return q.status();
  return AnswerUnion(*q);
}

std::shared_ptr<const DatabaseSnapshot> Database::Snapshot() {
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    LockRankScope rank(kLockRankSnapshot);
    if (snapshot_ != nullptr) return snapshot_;
  }
  // First call: build and publish under the writer lock. Note this may
  // run the closure fixpoint; if readers start cold, either the writer
  // should take the first snapshot, or this call must not race with
  // writer-thread cache methods (Closure/Normalized/...), which do not
  // take the lock.
  std::lock_guard<std::mutex> lock(write_mu_);
  LockRankScope rank(kLockRankWrite);
  {
    std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
    LockRankScope snap_rank(kLockRankSnapshot);
    if (snapshot_ != nullptr) return snapshot_;
    snapshots_on_ = true;
  }
  PublishSnapshotLocked();
  std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
  LockRankScope snap_rank(kLockRankSnapshot);
  return snapshot_;
}

void Database::PublishSnapshotLocked() {
  // All the expensive work — graph copies, the maintained closure, the
  // index warm-up — happens before snapshot_mu_ is touched; readers
  // only ever wait for the pointer swap below.
  // Warm the *writer's* graphs first, then copy: a Graph copy shares
  // spine leaf pointers, so the copy inherits already-built indexes and
  // its own WarmIndexes below is a no-op. Warming the copy instead
  // would rebuild the permutations per publication — O(n), not O(k) —
  // and no leaf would ever be shared with the previous snapshot.
  data_.WarmIndexes();
  const Graph& closure_ref = Closure();
  closure_ref.WarmIndexes();
  auto data = std::make_shared<Graph>(data_);
  auto cl = std::make_shared<Graph>(closure_ref);
  // Readers share these const graphs; every access is const-clean.
  data->WarmIndexes();
  cl->WarmIndexes();
  const LeanCacheStats lc = lean_cache_.stats();
  std::shared_ptr<const DatabaseSnapshot> snap(new DatabaseSnapshot(
      data_.epoch(), std::move(data), std::move(cl), &evaluator_, options_,
      CorePool(options_), &stats_,
      LeanCacheRef{&lean_cache_, closure_->version(), lc.erase_stamp},
      ViewCacheRef{options_.views.enabled ? &view_cache_ : nullptr,
                   closure_->version(), view_cache_.erase_stamp()}));
  std::lock_guard<std::mutex> snap_lock(snapshot_mu_);
  LockRankScope snap_rank(kLockRankSnapshot);
  // COW observability: compare the outgoing snapshot's leaves against
  // the one it replaces (pointer identity — the delta-proportionality
  // measure the publication path is built around).
  if (snapshot_ != nullptr) {
    SpineSharing s = snap->data().SharedLeaves(snapshot_->data());
    const SpineSharing c = snap->closure().SharedLeaves(snapshot_->closure());
    s.shared += c.shared;
    s.total += c.total;
    stats_.publish_leaves_shared.fetch_add(s.shared,
                                           std::memory_order_relaxed);
    stats_.publish_leaves_copied.fetch_add(s.total - s.shared,
                                           std::memory_order_relaxed);
  }
  stats_.snapshot_publishes.fetch_add(1, std::memory_order_relaxed);
  snapshot_ = std::move(snap);
}

// ---------------------------------------------------------------------------
// DatabaseSnapshot

const Graph& DatabaseSnapshot::normalized() const {
  if (options_.use_closure_only) return *closure_;
  std::call_once(normalized_once_, [this] {
    normalized_.emplace(
        Core(*closure_, /*witness=*/nullptr, pool_, lean_cache_));
    normalized_->WarmIndexes();
    ++stats_->snapshot_nf_builds;
  });
  return *normalized_;
}

bool DatabaseSnapshot::EntailsTriple(const Triple& t) const {
  std::call_once(membership_once_, [this] { membership_.emplace(*data_); });
  return membership_->Contains(t);
}

bool DatabaseSnapshot::Entails(const Graph& q) const {
  Result<bool> r = TryHasHomomorphism(q, *closure_);
  SWDB_CHECK(r.ok(),
             "RDFS-entailment step budget exhausted; use TryRdfsEntails "
             "with explicit MatchOptions for graceful degradation");
  return *r;
}

Result<std::vector<Graph>> DatabaseSnapshot::PreAnswer(const Query& q) const {
  if (!q.premise.empty()) {
    // Premise-bearing: merges into the dictionary — see the class
    // comment for the synchronization requirement.
    return evaluator_->PreAnswer(q, *data_);
  }
  if (views_.cache == nullptr || BodyHasBlanks(q)) {
    return evaluator_->PreAnswerPrenormalized(q, normalized());
  }
  CanonicalQuery canon;
  const ViewKey key = MakeViewKey(q, &canon);
  // First probe before touching normalized(): a hit skips the lazy nf
  // build entirely — the common case for a fresh snapshot of a hot
  // shape.
  if (std::optional<std::vector<Graph>> hit =
          views_.cache->Lookup(key, views_.version, views_.erase_stamp)) {
    return *std::move(hit);
  }
  const Graph& nf = normalized();
  // A current snapshot (stamp matches) that is ahead of the cache's
  // base advances it by the nf delta, then re-probes — the same
  // maintain-then-look path the writer takes. Lagging snapshots fall
  // straight through (Maintain fences them out).
  views_.cache->Maintain(nf, views_.version, views_.erase_stamp, evaluator_,
                         options_.match);
  if (std::optional<std::vector<Graph>> hit =
          views_.cache->Lookup(key, views_.version, views_.erase_stamp)) {
    return *std::move(hit);
  }
  const bool materialize = views_.cache->RecordMiss(key);
  std::vector<TermMap> matchings;
  Result<std::vector<Graph>> pre = evaluator_->PreAnswerPrenormalized(
      canon.query, nf, materialize ? &matchings : nullptr);
  if (!pre.ok()) return pre;
  if (materialize) {
    // Installed at this snapshot's captured (version, stamp); the write
    // rule drops the offer when the writer has moved past it.
    views_.cache->Install(key, canon.query, std::move(matchings), *pre,
                          views_.version, views_.erase_stamp);
  }
  return pre;
}

std::vector<Result<std::vector<Graph>>> DatabaseSnapshot::PreAnswerBatch(
    const std::vector<Query>& queries, BatchStats* stats_out) const {
  // The pipeline probes the view cache before calling the normalized
  // lambda, so a fully-hit batch skips the lazy nf build — the same
  // short-circuit the sequential snapshot PreAnswer has per query.
  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> out = PreAnswerBatchImpl(
      queries, evaluator_, [this]() -> const Graph& { return normalized(); },
      [this](const Query& q) { return evaluator_->PreAnswer(q, *data_); },
      views_, options_.match.pool, options_.match, &stats);
  AccumulateBatchStats(stats, stats_);
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

}  // namespace swdb
