#include "query/database.h"

#include "inference/closure.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "rdf/map.h"
#include "util/check.h"

namespace swdb {

Database::Database(Dictionary* dict, EvalOptions options)
    : dict_(dict), evaluator_(dict, options), options_(options) {}

bool Database::Insert(const Triple& t) {
  // Copy first: t may alias data_'s own storage (e.g. a reference
  // obtained from graph()), which the mutation below shifts.
  Triple copy = t;
  if (!data_.Insert(copy)) return false;
  ++stats_.inserts;
  MaintainInsert(Graph({copy}));
  return true;
}

void Database::InsertGraph(const Graph& g) {
  // Collect the actually-new part first: maintenance propagates from the
  // real delta, and an all-duplicates insert must not invalidate
  // anything.
  std::vector<Triple> fresh;
  for (const Triple& t : g) {
    if (!data_.Contains(t)) fresh.push_back(t);
  }
  if (fresh.empty()) return;
  stats_.inserts += fresh.size();
  Graph delta(std::move(fresh));
  data_.InsertAll(delta);
  if (closure_.has_value() &&
      delta.size() > closure_->closure().size() / 2) {
    // Bulk load: replaying a delta comparable to the closure itself is
    // slower than one batched refixpoint on next use.
    closure_.reset();
    normalized_.reset();
    ++stats_.closure_bulk_resets;
    return;
  }
  MaintainInsert(delta);
}

Status Database::InsertText(std::string_view text) {
  Result<Graph> g = ParseGraph(text, dict_);
  if (!g.ok()) return g.status();
  InsertGraph(*g);
  return Status::OK();
}

bool Database::Erase(const Triple& t) {
  // Copy first: erasing a triple referenced out of graph() is the
  // natural call pattern, and data_.Erase shifts the storage t may
  // alias — the maintenance pass below must see the original value.
  Triple copy = t;
  if (!data_.Erase(copy)) return false;
  ++stats_.erases;
  MaintainErase(Graph({copy}));
  return true;
}

Database::ApplyResult Database::Apply(const MutationBatch& batch) {
  ++stats_.batches;
  ApplyResult result;
  std::vector<Triple> erased;
  for (const Triple& t : batch.erases_) {
    if (data_.Erase(t)) erased.push_back(t);
  }
  result.erased = erased.size();
  stats_.erases += erased.size();
  if (!erased.empty()) MaintainErase(Graph(std::move(erased)));

  std::vector<Triple> inserted;
  for (const Triple& t : batch.inserts_) {
    if (data_.Insert(t)) inserted.push_back(t);
  }
  result.inserted = inserted.size();
  stats_.inserts += inserted.size();
  if (!inserted.empty()) MaintainInsert(Graph(std::move(inserted)));
  return result;
}

void Database::MaintainInsert(const Graph& delta) {
  if (!closure_.has_value()) return;  // not materialized yet: stay lazy
  ClosureDeltaStats ds;
  closure_->InsertDelta(delta, &ds);
  closure_epoch_ = data_.epoch();
  ++stats_.closure_delta_updates;
  stats_.closure_delta_derived += ds.derived;
}

void Database::MaintainErase(const Graph& deleted) {
  if (!closure_.has_value()) return;
  ClosureDeltaStats ds;
  closure_->EraseDelta(data_, deleted, &ds);
  closure_epoch_ = data_.epoch();
  ++stats_.closure_erase_updates;
  stats_.closure_overdeleted += ds.overdeleted;
  stats_.closure_rederived += ds.rederived;
}

const Graph& Database::Closure() {
  if (!closure_.has_value()) {
    closure_.emplace(data_);
    closure_epoch_ = data_.epoch();
    ++stats_.closure_full_builds;
  } else {
    SWDB_CHECK(closure_epoch_ == data_.epoch(),
               "maintained closure out of sync with the data graph");
    ++stats_.closure_cache_hits;
  }
  return closure_->closure();
}

const Graph& Database::Normalized() {
  if (options_.use_closure_only) return Closure();
  const Graph& cl = Closure();
  if (normalized_.has_value() && nf_version_ == closure_->version()) {
    ++stats_.nf_cache_hits;
    return *normalized_;
  }
  normalized_ = Core(cl);
  nf_version_ = closure_->version();
  ++stats_.nf_rebuilds;
  return *normalized_;
}

bool Database::Entails(const Graph& q) {
  Result<bool> r = TryHasHomomorphism(q, Closure());
  SWDB_CHECK(r.ok(),
             "RDFS-entailment step budget exhausted; use TryRdfsEntails "
             "with explicit MatchOptions for graceful degradation");
  return *r;
}

bool Database::EntailsTriple(const Triple& t) {
  if (!membership_.has_value() || !membership_->InSync()) {
    if (membership_.has_value()) {
      membership_->Refresh();
    } else {
      membership_.emplace(data_);
    }
    ++stats_.membership_builds;
  }
  ++stats_.membership_queries;
  return membership_->Contains(t);
}

Result<std::vector<Graph>> Database::PreAnswer(const Query& q) {
  if (q.premise.empty()) {
    return evaluator_.PreAnswerPrenormalized(q, Normalized());
  }
  return evaluator_.PreAnswer(q, data_);
}

Result<Graph> Database::AnswerUnion(const Query& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) out.InsertAll(answer);
  return out;
}

Result<Graph> Database::AnswerMerge(const Query& q) {
  Result<std::vector<Graph>> pre = PreAnswer(q);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) {
    out.InsertAll(FreshBlankCopy(answer, dict_));
  }
  return out;
}

Result<Graph> Database::ExecuteQuery(std::string_view query_text) {
  Result<Query> q = ParseQuery(query_text, dict_);
  if (!q.ok()) return q.status();
  return AnswerUnion(*q);
}

}  // namespace swdb
