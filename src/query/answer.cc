#include "query/answer.h"

#include <algorithm>

#include "inference/closure.h"
#include "normal/normal_form.h"

namespace swdb {

QueryEvaluator::QueryEvaluator(Dictionary* dict, EvalOptions options)
    : dict_(dict), options_(options) {}

Graph QueryEvaluator::NormalizedDatabase(const Query& q, const Graph& db) {
  Graph combined = Merge(db, q.premise, dict_);
  // Premise-bearing queries re-normalize D + P per call; an EvalOptions
  // pool parallelizes that closure + core without changing the result.
  if (options_.use_closure_only) {
    return options_.match.pool != nullptr
               ? RdfsClosureParallel(combined, options_.match.pool)
               : RdfsClosure(combined);
  }
  return NormalForm(combined, options_.match.pool);
}

Term QueryEvaluator::SkolemBlank(Term head_blank,
                                 const std::vector<Term>& args) {
  SkolemKey key(head_blank, args);
  std::lock_guard<std::mutex> lock(skolem_mu_);
  auto it = skolem_cache_.find(key);
  if (it != skolem_cache_.end()) return it->second;
  Term fresh = dict_->FreshBlank();
  skolem_cache_.emplace(std::move(key), fresh);
  return fresh;
}

Result<std::vector<Graph>> QueryEvaluator::PreAnswer(const Query& q,
                                                     const Graph& db) {
  return PreAnswerPrenormalized(q, NormalizedDatabase(q, db));
}

Result<std::vector<Graph>> QueryEvaluator::PreAnswerPrenormalized(
    const Query& q, const Graph& target) {
  return PreAnswerPrenormalized(q, target, /*matchings_out=*/nullptr);
}

Result<std::vector<Graph>> QueryEvaluator::PreAnswerPrenormalized(
    const Query& q, const Graph& target,
    std::vector<TermMap>* matchings_out) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;

  std::vector<Term> body_vars = q.body.Variables();

  std::vector<Graph> answers;
  PatternMatcher matcher(q.body, &target, options_.match);
  Status status = matcher.Enumerate([&](const TermMap& v) {
    if (!q.SatisfiesConstraints(v)) return true;
    if (matchings_out != nullptr) matchings_out->push_back(v);
    std::optional<Graph> answer = AnswerFromMatching(q, body_vars, v);
    if (answer.has_value()) answers.push_back(*std::move(answer));
    return true;
  });
  if (!status.ok()) return status;

  if (matchings_out != nullptr) {
    // Distinct matchings have distinct body-variable tuples (a matching
    // is its tuple), so this order is total and reproducible.
    std::sort(matchings_out->begin(), matchings_out->end(),
              [&body_vars](const TermMap& a, const TermMap& b) {
                return ValuationLess(a, b, body_vars);
              });
  }
  std::sort(answers.begin(), answers.end(),
            [](const Graph& a, const Graph& b) {
              return a.triples() < b.triples();
            });
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

std::optional<Graph> QueryEvaluator::AnswerFromMatching(
    const Query& q, const std::vector<Term>& body_vars, const TermMap& v) {
  // Skolem arguments: the valuation of all body variables, in sorted
  // variable order (the tuple (v(?X1), ..., v(?Xk)) of Def. 4.3).
  std::vector<Term> args;
  args.reserve(body_vars.size());
  for (Term var : body_vars) args.push_back(v.Apply(var));

  // Build v(H): substitute variables, Skolemize head blanks.
  std::vector<Triple> triples;
  triples.reserve(q.head.size());
  for (const Triple& t : q.head) {
    auto value = [&](Term x) {
      if (x.IsVar()) return v.Apply(x);
      if (x.IsBlank()) return SkolemBlank(x, args);
      return x;
    };
    Triple image(value(t.s), value(t.p), value(t.o));
    if (!image.IsWellFormedData()) return std::nullopt;
    triples.push_back(image);
  }
  return Graph(std::move(triples));
}

Result<std::vector<TermMap>> QueryEvaluator::Matchings(const Query& q,
                                                       const Graph& db) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  Graph target = NormalizedDatabase(q, db);
  std::vector<Term> body_vars = q.body.Variables();

  std::vector<TermMap> matchings;
  PatternMatcher matcher(q.body, &target, options_.match);
  Status status = matcher.Enumerate([&](const TermMap& v) {
    if (!q.SatisfiesConstraints(v)) return true;
    matchings.push_back(v);
    return true;
  });
  if (!status.ok()) return status;

  std::sort(matchings.begin(), matchings.end(),
            [&body_vars](const TermMap& a, const TermMap& b) {
              return ValuationLess(a, b, body_vars);
            });
  return matchings;
}

bool ValuationLess(const TermMap& a, const TermMap& b,
                   const std::vector<Term>& vars) {
  for (Term var : vars) {
    const Term av = a.Apply(var);
    const Term bv = b.Apply(var);
    if (av != bv) return av < bv;
  }
  return false;
}

Result<Graph> QueryEvaluator::AnswerUnion(const Query& q, const Graph& db) {
  Result<std::vector<Graph>> pre = PreAnswer(q, db);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) {
    out.InsertAll(answer);
  }
  return out;
}

Result<Graph> QueryEvaluator::AnswerMerge(const Query& q, const Graph& db) {
  Result<std::vector<Graph>> pre = PreAnswer(q, db);
  if (!pre.ok()) return pre.status();
  Graph out;
  for (const Graph& answer : *pre) {
    out.InsertAll(FreshBlankCopy(answer, dict_));
  }
  return out;
}

}  // namespace swdb
