#include "query/batch.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "query/view_key.h"
#include "rdf/map.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/thread_pool.h"

namespace swdb {

namespace {

// ---------------------------------------------------------------------------
// Pipeline bookkeeping

// One ViewKey equivalence class of the batch: a canonical query, the
// slots that spell it, and everything its evaluation produces. Each
// group is owned by exactly one trie root subtree (or by the sequential
// bypass), so trie tasks write here without synchronization.
struct Group {
  ViewKey key;
  CanonicalQuery canon;
  std::vector<size_t> members;  // slot indices, ascending (batch order)
  bool materialize = false;     // advisor promoted the shape
  std::optional<Result<std::vector<Graph>>> result;

  // Trie-evaluation state (renamed groups with non-empty bodies only).
  std::vector<Term> body_vars;          // sorted body variables
  std::vector<size_t> order;            // body triple indices, static order
  std::vector<Term> path_vars;          // path index → this group's var
  std::vector<TermMap> matchings;       // constraint-passing valuations
  Status trie_status = Status::OK();
  uint64_t steps_used = 0;              // suffix-matcher spend so far
  bool dead = false;                    // budget exhausted: stop feeding
  std::unique_ptr<PatternMatcher> matcher;       // compiled full body
  std::vector<std::pair<Term, Term>> seed;       // scratch per handoff
};

// How one slot of the batch resolves.
enum class SlotKind { kError, kPremise, kGroup };
struct Slot {
  SlotKind kind = SlotKind::kError;
  size_t group = 0;  // for kGroup
  Status error = Status::OK();
};

// ---------------------------------------------------------------------------
// Static body ordering
//
// The trie can only share what different groups spell in the same
// relative order, so each body is put into a deterministic
// most-constrained-first *static* order before insertion: repeatedly
// pick, among the triples connected to the variables already chosen
// (any triple while none is), the one with the smallest candidate
// count by its constant positions (variables wildcarded — the count is
// renaming-invariant, so isomorphic prefixes across groups align).
// Ties break on the triple spelling, then the body index. The dynamic
// most-constrained ordering still runs *inside* each group's residual
// suffix matcher; only the shared prefix walk is static.

std::optional<Term> ConstOrOpen(Term t) {
  if (t.IsVar()) return std::nullopt;
  return t;
}

std::vector<size_t> OrderBody(const Graph& nf,
                              const std::vector<Triple>& body) {
  const size_t n = body.size();
  std::vector<size_t> counts(n);
  for (size_t i = 0; i < n; ++i) {
    counts[i] = nf.CountMatches(ConstOrOpen(body[i].s), ConstOrOpen(body[i].p),
                                ConstOrOpen(body[i].o));
  }
  std::vector<size_t> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  std::unordered_map<uint32_t, bool> chosen_vars;
  auto connected = [&](const Triple& t) {
    const Term terms[3] = {t.s, t.p, t.o};
    for (Term x : terms) {
      if (x.IsVar() && chosen_vars.count(x.bits())) return true;
    }
    return false;
  };
  for (size_t step = 0; step < n; ++step) {
    size_t best = n;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      const bool conn = order.empty() || connected(body[i]);
      if (best == n || std::make_tuple(!conn, counts[i], body[i], i) <
                           std::make_tuple(!best_connected, counts[best],
                                           body[best], best)) {
        best = i;
        best_connected = conn;
      }
    }
    used[best] = true;
    order.push_back(best);
    const Term terms[3] = {body[best].s, body[best].p, body[best].o};
    for (Term x : terms) {
      if (x.IsVar()) chosen_vars[x.bits()] = true;
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// The shared-prefix trie
//
// Nodes are keyed on the *path-relative* encoding of a triple:
// constants by their term bits, variables by first-occurrence index
// along the path. Two groups whose ordered bodies start with the same
// structure therefore share nodes even when their canonical variable
// ids differ — each group records its own path-index → variable
// bijection for translating prefix bindings into matcher seeds.

struct TriePos {
  bool is_var = false;
  Term konst;        // when !is_var
  uint32_t idx = 0;  // path-var index when is_var
};

struct TrieNode {
  TriePos pos[3];
  uint32_t new_vars = 0;  // path vars first bound by this edge
  uint32_t subtree = 0;   // groups terminating in or below this node
  int32_t solo = -1;      // the unique group id when subtree == 1
  std::vector<uint32_t> terminal;  // groups whose ordered body ends here
  std::vector<std::unique_ptr<TrieNode>> children;
};

constexpr uint64_t kConstTag = uint64_t{1} << 40;

uint64_t EncodePos(const TriePos& p) {
  return p.is_var ? p.idx : kConstTag | p.konst.bits();
}

class BatchTrie {
 public:
  // Inserts group g (its ordered body) into the trie, filling
  // g.path_vars as a side effect.
  void Insert(uint32_t g, Group* grp, const std::vector<Triple>& body) {
    TrieNode* node = &root_;
    std::unordered_map<uint32_t, uint32_t> path_idx;  // var bits → index
    for (size_t k = 0; k < grp->order.size(); ++k) {
      const Triple& t = body[grp->order[k]];
      const Term terms[3] = {t.s, t.p, t.o};
      uint64_t enc[3];
      // Fresh path vars get consecutive indices in s,p,o first-occurrence
      // order — the encoding is therefore determined by structure alone.
      std::vector<std::pair<uint32_t, uint32_t>> fresh;  // bits → index
      uint32_t next = static_cast<uint32_t>(grp->path_vars.size());
      for (int i = 0; i < 3; ++i) {
        if (!terms[i].IsVar()) {
          enc[i] = kConstTag | terms[i].bits();
          continue;
        }
        auto it = path_idx.find(terms[i].bits());
        if (it != path_idx.end()) {
          enc[i] = it->second;
          continue;
        }
        uint32_t idx = next;
        bool seen = false;
        for (const auto& [bits, j] : fresh) {
          if (bits == terms[i].bits()) {
            idx = j;
            seen = true;
            break;
          }
        }
        if (!seen) {
          fresh.emplace_back(terms[i].bits(), next);
          ++next;
        }
        enc[i] = idx;
      }
      TrieNode* child = nullptr;
      for (auto& c : node->children) {
        if (EncodePos(c->pos[0]) == enc[0] && EncodePos(c->pos[1]) == enc[1] &&
            EncodePos(c->pos[2]) == enc[2]) {
          child = c.get();
          break;
        }
      }
      if (child == nullptr) {
        auto fresh_node = std::make_unique<TrieNode>();
        for (int i = 0; i < 3; ++i) {
          if (enc[i] & kConstTag) {
            fresh_node->pos[i] =
                TriePos{false, terms[i], 0};
          } else {
            fresh_node->pos[i] =
                TriePos{true, Term(), static_cast<uint32_t>(enc[i])};
          }
        }
        fresh_node->new_vars = static_cast<uint32_t>(fresh.size());
        child = fresh_node.get();
        node->children.push_back(std::move(fresh_node));
        ++node_count_;
      }
      for (const auto& [bits, j] : fresh) {
        path_idx.emplace(bits, j);
        assert(j == grp->path_vars.size());
        grp->path_vars.push_back(Term::FromBits(bits));
      }
      node = child;
    }
    node->terminal.push_back(g);
  }

  // Computes subtree counts and solo ids; returns the trie node count.
  uint64_t Finalize() {
    FinalizeNode(&root_);
    return node_count_;
  }

  TrieNode* root() { return &root_; }

 private:
  // Returns (subtree count, some group id in the subtree).
  std::pair<uint32_t, int32_t> FinalizeNode(TrieNode* n) {
    uint32_t total = static_cast<uint32_t>(n->terminal.size());
    int32_t any = n->terminal.empty()
                      ? -1
                      : static_cast<int32_t>(n->terminal.front());
    for (auto& c : n->children) {
      auto [sub, g] = FinalizeNode(c.get());
      total += sub;
      if (any < 0) any = g;
    }
    n->subtree = total;
    n->solo = total == 1 ? any : -1;
    return {total, any};
  }

  TrieNode root_;
  uint64_t node_count_ = 0;
};

// Collects every group id terminating in or below n (budget poisoning).
void GatherGroups(const TrieNode* n, std::vector<uint32_t>* out) {
  out->insert(out->end(), n->terminal.begin(), n->terminal.end());
  for (const auto& c : n->children) GatherGroups(c.get(), out);
}

// One root subtree's deterministic sequential walk. Owns a local
// BatchStats (merged in root order by the caller) and the subtree's
// shared-prefix step pot; each group additionally carries its own
// suffix-matcher budget, so one group's total spend is bounded exactly
// like one sequential call's.
struct SubtreeWalker {
  const Graph& nf;
  const MatchOptions& match;
  std::vector<Group>* groups;
  std::vector<Term> values;  // path index → bound value
  uint64_t prefix_steps = 0;
  bool exhausted = false;
  BatchStats stats;

  void EmitTerminal(uint32_t g, uint32_t bound) {
    Group& grp = (*groups)[g];
    if (grp.dead) return;
    TermMap v;
    for (uint32_t j = 0; j < bound; ++j) v.Bind(grp.path_vars[j], values[j]);
    if (bound > 0) ++stats.shared_bindings_reused;
    if (!grp.canon.query.SatisfiesConstraints(v)) return;
    grp.matchings.push_back(std::move(v));
  }

  // Hands the current prefix binding to g's full-body matcher: prefix
  // triples become ground (Contains-verified by EnumerateSeeded), the
  // residual suffix runs under the usual dynamic ordering.
  void Handoff(uint32_t g, uint32_t bound) {
    Group& grp = (*groups)[g];
    if (grp.dead) return;
    if (grp.matcher == nullptr) {
      MatchOptions mo = match;
      mo.pool = nullptr;  // parallelism is across root subtrees
      mo.stats = nullptr;
      grp.matcher = std::make_unique<PatternMatcher>(grp.canon.query.body,
                                                     &nf, mo);
    }
    grp.seed.clear();
    for (uint32_t j = 0; j < bound; ++j) {
      grp.seed.emplace_back(grp.path_vars[j], values[j]);
    }
    grp.matcher->set_max_steps(
        match.max_steps > grp.steps_used ? match.max_steps - grp.steps_used
                                         : 0);
    Status s = grp.matcher->EnumerateSeeded(
        grp.seed, [&grp](const TermMap& v) {
          if (!grp.canon.query.SatisfiesConstraints(v)) return true;
          grp.matchings.push_back(v);
          return true;
        });
    grp.steps_used += grp.matcher->steps_used();
    if (bound > 0) ++stats.shared_bindings_reused;
    if (!s.ok()) {
      grp.trie_status = s;
      grp.dead = true;
    }
  }

  // n's edge vars are bound (`bound` path values live); emit its
  // terminals and descend: shared children are extended here, solo
  // subtrees hand off to their group's own matcher.
  void Walk(const TrieNode* n, uint32_t bound) {
    for (uint32_t g : n->terminal) EmitTerminal(g, bound);
    for (const auto& c : n->children) {
      if (c->subtree == 1) {
        Handoff(static_cast<uint32_t>(c->solo), bound);
      } else {
        Extend(c.get(), bound);
      }
      if (exhausted) return;
    }
  }

  // Enumerates candidates of child's edge triple under the current
  // prefix binding and recurses per extension — the "enumerate once,
  // fan into every sharer" step.
  void Extend(const TrieNode* child, uint32_t bound) {
    std::optional<Term> want[3];
    for (int i = 0; i < 3; ++i) {
      const TriePos& p = child->pos[i];
      if (!p.is_var) {
        want[i] = p.konst;
      } else if (p.idx < bound) {
        want[i] = values[p.idx];
      }
    }
    if (values.size() < bound + child->new_vars) {
      values.resize(bound + child->new_vars);
    }
    MatchRange range = nf.Matches(want[0], want[1], want[2]);
    for (const Triple& tt : range) {
      if (++prefix_steps > match.max_steps) {
        exhausted = true;
        return;
      }
      const Term cand[3] = {tt.s, tt.p, tt.o};
      uint32_t assigned = bound;
      bool ok = true;
      for (int i = 0; i < 3; ++i) {
        const TriePos& p = child->pos[i];
        if (!p.is_var || p.idx < bound) continue;
        if (p.idx == assigned) {
          values[assigned++] = cand[i];
        } else if (values[p.idx] != cand[i]) {
          ok = false;  // repeated fresh var within the triple: must agree
          break;
        }
      }
      if (!ok) continue;
      ++stats.prefix_hits;
      Walk(child, bound + child->new_vars);
      if (exhausted) return;
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// The pipeline

std::vector<Result<std::vector<Graph>>> PreAnswerBatchImpl(
    const std::vector<Query>& queries, QueryEvaluator* evaluator,
    const std::function<const Graph&()>& normalized,
    const std::function<Result<std::vector<Graph>>(const Query&)>&
        premise_eval,
    const ViewCacheRef& views, ThreadPool* pool, const MatchOptions& match,
    BatchStats* stats_out) {
  const size_t n = queries.size();
  BatchStats stats;
  stats.queries = n;

  // Pass 1 — classify slots and group premise-free queries by ViewKey.
  // (Validated bodies contain no blank nodes, so every premise-free
  // valid slot is groupable; head-blank shapes key on their exact
  // spelling and only identical spellings share.)
  std::vector<Slot> slots(n);
  std::vector<Group> groups;
  std::unordered_map<ViewKey, size_t, ViewKeyHash> group_of;
  for (size_t i = 0; i < n; ++i) {
    Status valid = queries[i].Validate();
    if (!valid.ok()) {
      slots[i] = Slot{SlotKind::kError, 0, valid};
      continue;
    }
    if (!queries[i].premise.empty()) {
      slots[i] = Slot{SlotKind::kPremise, 0, Status::OK()};
      ++stats.premise_fallthroughs;
      continue;
    }
    CanonicalQuery canon;
    ViewKey key = MakeViewKey(queries[i], &canon);
    auto [it, inserted] = group_of.try_emplace(key, groups.size());
    if (inserted) {
      Group grp;
      grp.key = std::move(key);
      grp.canon = std::move(canon);
      groups.push_back(std::move(grp));
    }
    groups[it->second].members.push_back(i);
    slots[i] = Slot{SlotKind::kGroup, it->second, Status::OK()};
  }
  for (const Group& grp : groups) stats.deduped += grp.members.size() - 1;

  // Pass 2 — probe the view cache before touching the normalized graph:
  // a fully-hit batch (the hot-serving case) skips even a snapshot's
  // lazy nf build.
  size_t unresolved = 0;
  if (views.cache != nullptr) {
    for (Group& grp : groups) {
      if (std::optional<std::vector<Graph>> hit =
              views.cache->Lookup(grp.key, views.version, views.erase_stamp)) {
        grp.result = *std::move(hit);
        ++stats.view_hits;
      }
    }
  }
  for (const Group& grp : groups) unresolved += grp.result ? 0 : 1;

  // Pass 3 — on any miss, pin the normalized graph once, bring the
  // cache up to it (no-op for a writer that maintained before calling),
  // and re-probe; survivors consult the promotion advisor per spelling,
  // exactly as many times as the sequential run would.
  const Graph* nf = nullptr;
  if (unresolved > 0) {
    nf = &normalized();
    nf->WarmIndexes();  // trie tasks share nf read-only
    if (views.cache != nullptr) {
      views.cache->Maintain(*nf, views.version, views.erase_stamp, evaluator,
                            match);
      for (Group& grp : groups) {
        if (grp.result) continue;
        if (std::optional<std::vector<Graph>> hit = views.cache->Lookup(
                grp.key, views.version, views.erase_stamp)) {
          grp.result = *std::move(hit);
          ++stats.view_hits;
          --unresolved;
          continue;
        }
        for (size_t member = 0; member < grp.members.size(); ++member) {
          grp.materialize |= views.cache->RecordMiss(grp.key);
        }
      }
    }
  }

  // Pass 4 — plan the survivors. Renamed groups with non-empty bodies
  // enter the trie; head-blank groups (Skolem mints) and empty-body
  // groups take the sequential bypass on the calling thread.
  BatchTrie trie;
  std::vector<uint32_t> trie_group_ids;
  std::vector<size_t> bypass_leaders;  // group ids, evaluated in slot order
  for (size_t g = 0; g < groups.size(); ++g) {
    Group& grp = groups[g];
    if (grp.result) continue;
    grp.body_vars = grp.canon.query.body.Variables();
    if (!grp.canon.renamed || grp.canon.query.body.size() == 0) {
      bypass_leaders.push_back(g);
      if (!grp.canon.renamed) {
        ++stats.minting_fallthroughs;
      } else {
        ++stats.solo_groups;
      }
      continue;
    }
    const std::vector<Triple> body = grp.canon.query.body.triples();
    grp.order = OrderBody(*nf, body);
    trie.Insert(static_cast<uint32_t>(g), &grp, body);
    trie_group_ids.push_back(static_cast<uint32_t>(g));
  }
  if (!trie_group_ids.empty()) {
    stats.trie_nodes = trie.Finalize();
    for (const auto& c : trie.root()->children) {
      if (c->subtree == 1) {
        ++stats.solo_groups;
      } else {
        stats.trie_groups += c->subtree;
      }
    }
  }

  // Pass 5 — evaluate. Trie root subtrees fan out over the pool (each
  // owns its groups exclusively; stats merge in root order below, so
  // results are bit-identical at any worker count). The calling thread
  // meanwhile runs every minting job in batch order — premise slots and
  // head-blank leaders interleaved by slot index — reproducing the
  // sequential mint sequence exactly.
  const auto& root_children = trie.root()->children;
  std::vector<BatchStats> subtree_stats(root_children.size());
  auto run_subtree = [&](size_t c) {
    SubtreeWalker walker{*nf, match, &groups};
    const TrieNode* child = root_children[c].get();
    if (child->subtree == 1) {
      walker.Handoff(static_cast<uint32_t>(child->solo), 0);
    } else {
      walker.Extend(child, 0);
    }
    if (walker.exhausted) {
      // The pot poisons the whole subtree: any group here could still
      // have gained matchings, and partial matching sets must never be
      // installed or replayed.
      std::vector<uint32_t> poisoned;
      GatherGroups(child, &poisoned);
      for (uint32_t g : poisoned) {
        groups[g].trie_status =
            Status::LimitExceeded("batch shared-prefix step budget exhausted");
        groups[g].dead = true;
      }
    }
    subtree_stats[c] = walker.stats;
  };

  std::vector<std::optional<Result<std::vector<Graph>>>> premise_results(n);
  auto run_sequential_jobs = [&] {
    std::vector<std::pair<size_t, size_t>> jobs;  // (slot, group or npos)
    for (size_t g : bypass_leaders) {
      jobs.emplace_back(groups[g].members.front(), g);
    }
    for (size_t i = 0; i < n; ++i) {
      if (slots[i].kind == SlotKind::kPremise) {
        jobs.emplace_back(i, static_cast<size_t>(-1));
      }
    }
    std::sort(jobs.begin(), jobs.end());
    for (const auto& [slot, g] : jobs) {
      if (g == static_cast<size_t>(-1)) {
        premise_results[slot] = premise_eval(queries[slot]);
        continue;
      }
      Group& grp = groups[g];
      grp.result = evaluator->PreAnswerPrenormalized(
          grp.canon.query, *nf, grp.materialize ? &grp.matchings : nullptr);
    }
  };

  if (pool != nullptr && !root_children.empty()) {
    TaskGroup group(pool);
    for (size_t c = 0; c < root_children.size(); ++c) {
      group.Run([&run_subtree, c] { run_subtree(c); });
    }
    run_sequential_jobs();
    group.Wait();
  } else {
    for (size_t c = 0; c < root_children.size(); ++c) run_subtree(c);
    run_sequential_jobs();
  }
  for (const BatchStats& s : subtree_stats) {
    stats.prefix_hits += s.prefix_hits;
    stats.shared_bindings_reused += s.shared_bindings_reused;
  }

  // Pass 6 — post-process trie groups exactly like
  // PreAnswerPrenormalized: matchings in ValuationLess order, answers
  // derived per matching (pure — renamed groups have blank-free heads),
  // sorted and deduplicated.
  for (uint32_t g : trie_group_ids) {
    Group& grp = groups[g];
    if (!grp.trie_status.ok()) {
      grp.result = grp.trie_status;
      continue;
    }
    std::sort(grp.matchings.begin(), grp.matchings.end(),
              [&grp](const TermMap& a, const TermMap& b) {
                return ValuationLess(a, b, grp.body_vars);
              });
    std::vector<Graph> answers;
    answers.reserve(grp.matchings.size());
    for (const TermMap& v : grp.matchings) {
      std::optional<Graph> answer =
          evaluator->AnswerFromMatching(grp.canon.query, grp.body_vars, v);
      if (answer.has_value()) answers.push_back(*std::move(answer));
    }
    std::sort(answers.begin(), answers.end(),
              [](const Graph& a, const Graph& b) {
                return a.triples() < b.triples();
              });
    answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
    grp.result = std::move(answers);
  }

  // Pass 7 — install promoted materializations (deterministic group
  // order) and count exhausted groups.
  for (Group& grp : groups) {
    if (grp.result && !grp.result->ok()) ++stats.limit_exceeded;
    if (views.cache != nullptr && grp.materialize && grp.result &&
        grp.result->ok()) {
      views.cache->Install(grp.key, grp.canon.query, std::move(grp.matchings),
                           **grp.result, views.version, views.erase_stamp);
    }
  }

  // Pass 8 — replay per slot. Graph copies share spine leaves, so
  // fanning one group's answers into many slots is pointer-cheap.
  std::vector<Result<std::vector<Graph>>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (slots[i].kind) {
      case SlotKind::kError:
        out.emplace_back(slots[i].error);
        break;
      case SlotKind::kPremise:
        out.emplace_back(*std::move(premise_results[i]));
        break;
      case SlotKind::kGroup:
        out.emplace_back(*groups[slots[i].group].result);
        break;
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

}  // namespace swdb
