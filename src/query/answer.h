#ifndef SWDB_QUERY_ANSWER_H_
#define SWDB_QUERY_ANSWER_H_

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/query.h"
#include "query/view_cache.h"
#include "rdf/hom.h"
#include "util/hash.h"
#include "util/status.h"

namespace swdb {

/// Options for query evaluation.
struct EvalOptions {
  /// Budget for the matching search.
  MatchOptions match;
  /// Evaluate against RDFS-cl(D+P) instead of nf(D+P). The paper's
  /// Note 4.4 argues nf is required for answers to be invariant under
  /// database equivalence; this switch exists so benches and tests can
  /// exhibit the difference (closure is cheaper but syntax dependent).
  bool use_closure_only = false;
  /// Materialized pre-answer view layer (Database/DatabaseSnapshot
  /// only; bare evaluator calls never cache).
  ViewCacheOptions views;
};

/// Evaluates queries over databases with the semantics of §4.1:
/// matchings are valuations v with v(B) ⊆ nf(D + P) satisfying the
/// constraints; a single answer is v(H) with head blank nodes
/// instantiated by Skolem functions of the body valuation.
///
/// One evaluator instance uses the *same* Skolem functions across every
/// database it is asked about, as required by Prop. 4.5.
class QueryEvaluator {
 public:
  explicit QueryEvaluator(Dictionary* dict, EvalOptions options = {});

  /// nf(D + P) (or RDFS-cl(D + P) under use_closure_only), the graph
  /// matchings are sought in.
  Graph NormalizedDatabase(const Query& q, const Graph& db);

  /// preans(q, D): the set of single answers v(H), deduplicated, in
  /// deterministic (sorted) order.
  Result<std::vector<Graph>> PreAnswer(const Query& q, const Graph& db);

  /// PreAnswer against an already-normalized database: the caller
  /// guarantees `normalized` equals nf(D + P) (or the closure under
  /// use_closure_only). Used by Database to amortize normalization over
  /// many premise-free queries.
  Result<std::vector<Graph>> PreAnswerPrenormalized(const Query& q,
                                                    const Graph& normalized);

  /// As above, additionally capturing every constraint-satisfying body
  /// valuation in ValuationLess order when matchings_out is non-null —
  /// the materialization entry point of the view layer (the stored
  /// matchings are what delta maintenance patches).
  Result<std::vector<Graph>> PreAnswerPrenormalized(
      const Query& q, const Graph& normalized,
      std::vector<TermMap>* matchings_out);

  /// v(H) for one constraint-passing body valuation: substitutes
  /// variables, Skolemizes head blanks from the sorted-body-variable
  /// argument tuple, and returns nullopt when the image is not a
  /// well-formed data graph. Deterministic given the Skolem cache state;
  /// the view cache re-derives patched answers through this so cached
  /// and from-scratch answers stay bit-identical.
  std::optional<Graph> AnswerFromMatching(const Query& q,
                                          const std::vector<Term>& body_vars,
                                          const TermMap& v);

  /// The raw matchings: every constraint-satisfying valuation of the
  /// body variables (Def. 4.3's v), as variable→term maps in
  /// deterministic order. This is the SquishQL-style "table of
  /// bindings" view of an answer (§1's related work); v(H) construction
  /// and Skolemization are skipped.
  Result<std::vector<TermMap>> Matchings(const Query& q, const Graph& db);

  /// ans∪(q, D): the union of all single answers (the paper's preferred
  /// semantics; blank nodes shared between single answers are preserved).
  Result<Graph> AnswerUnion(const Query& q, const Graph& db);

  /// ans+(q, D): the merge of all single answers — blank nodes renamed
  /// apart so no two single answers share any.
  Result<Graph> AnswerMerge(const Query& q, const Graph& db);

  const EvalOptions& options() const { return options_; }

 private:
  // f_N(args) key: the head blank plus the body-valuation tuple, with
  // the hash precomputed once at construction — probes and the final
  // emplace reuse it instead of re-walking the tuple.
  struct SkolemKey {
    Term blank;
    std::vector<Term> args;
    size_t hash;

    SkolemKey(Term b, std::vector<Term> a)
        : blank(b),
          args(std::move(a)),
          hash(HashRange(args.begin(), args.end(),
                         std::hash<Term>()(blank))) {}
    bool operator==(const SkolemKey& o) const {
      return blank == o.blank && args == o.args;
    }
  };
  struct SkolemKeyHash {
    size_t operator()(const SkolemKey& k) const { return k.hash; }
  };

  Term SkolemBlank(Term head_blank, const std::vector<Term>& args);

  Dictionary* dict_;
  EvalOptions options_;
  // f_N(args) cache: the same (blank, argument-tuple) always yields the
  // same fresh blank, across databases. The mutex makes SkolemBlank —
  // including its FreshBlank() mint, which the dictionary does not
  // synchronize itself — safe for concurrent readers evaluating
  // premise-free queries through database snapshots.
  std::mutex skolem_mu_;
  std::unordered_map<SkolemKey, Term, SkolemKeyHash> skolem_cache_;
};

/// Lexicographic order of two valuations on `vars` — the deterministic
/// storage order of captured matchings (Matchings() and the view cache
/// both sort by it).
bool ValuationLess(const TermMap& a, const TermMap& b,
                   const std::vector<Term>& vars);

}  // namespace swdb

#endif  // SWDB_QUERY_ANSWER_H_
