#ifndef SWDB_QUERY_ANSWER_H_
#define SWDB_QUERY_ANSWER_H_

#include <map>
#include <utility>
#include <vector>

#include "query/query.h"
#include "rdf/hom.h"
#include "util/status.h"

namespace swdb {

/// Options for query evaluation.
struct EvalOptions {
  /// Budget for the matching search.
  MatchOptions match;
  /// Evaluate against RDFS-cl(D+P) instead of nf(D+P). The paper's
  /// Note 4.4 argues nf is required for answers to be invariant under
  /// database equivalence; this switch exists so benches and tests can
  /// exhibit the difference (closure is cheaper but syntax dependent).
  bool use_closure_only = false;
};

/// Evaluates queries over databases with the semantics of §4.1:
/// matchings are valuations v with v(B) ⊆ nf(D + P) satisfying the
/// constraints; a single answer is v(H) with head blank nodes
/// instantiated by Skolem functions of the body valuation.
///
/// One evaluator instance uses the *same* Skolem functions across every
/// database it is asked about, as required by Prop. 4.5.
class QueryEvaluator {
 public:
  explicit QueryEvaluator(Dictionary* dict, EvalOptions options = {});

  /// nf(D + P) (or RDFS-cl(D + P) under use_closure_only), the graph
  /// matchings are sought in.
  Graph NormalizedDatabase(const Query& q, const Graph& db);

  /// preans(q, D): the set of single answers v(H), deduplicated, in
  /// deterministic (sorted) order.
  Result<std::vector<Graph>> PreAnswer(const Query& q, const Graph& db);

  /// PreAnswer against an already-normalized database: the caller
  /// guarantees `normalized` equals nf(D + P) (or the closure under
  /// use_closure_only). Used by Database to amortize normalization over
  /// many premise-free queries.
  Result<std::vector<Graph>> PreAnswerPrenormalized(const Query& q,
                                                    const Graph& normalized);

  /// The raw matchings: every constraint-satisfying valuation of the
  /// body variables (Def. 4.3's v), as variable→term maps in
  /// deterministic order. This is the SquishQL-style "table of
  /// bindings" view of an answer (§1's related work); v(H) construction
  /// and Skolemization are skipped.
  Result<std::vector<TermMap>> Matchings(const Query& q, const Graph& db);

  /// ans∪(q, D): the union of all single answers (the paper's preferred
  /// semantics; blank nodes shared between single answers are preserved).
  Result<Graph> AnswerUnion(const Query& q, const Graph& db);

  /// ans+(q, D): the merge of all single answers — blank nodes renamed
  /// apart so no two single answers share any.
  Result<Graph> AnswerMerge(const Query& q, const Graph& db);

 private:
  Term SkolemBlank(Term head_blank, const std::vector<Term>& args);

  Dictionary* dict_;
  EvalOptions options_;
  // f_N(args) cache: the same (blank, argument-tuple) always yields the
  // same fresh blank, across databases.
  std::map<std::pair<Term, std::vector<Term>>, Term> skolem_cache_;
};

}  // namespace swdb

#endif  // SWDB_QUERY_ANSWER_H_
