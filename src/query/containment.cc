#include "query/containment.h"

#include <algorithm>
#include <unordered_set>

#include "inference/closure.h"
#include "normal/normal_form.h"
#include "query/premise.h"
#include "rdf/iso.h"

namespace swdb {

namespace {

// Shared context for one containment test between a frozen q and q'.
struct FrozenLeft {
  Graph frozen_body;            // vf(B)
  Graph frozen_head;            // vf(H)
  TermMap freeze;               // var → fresh URI
  std::unordered_set<Term> frozen_constraints;  // {vf(c) : c ∈ C}
};

FrozenLeft FreezeLeft(const Query& q, Dictionary* dict) {
  FrozenLeft out;
  out.frozen_body = FreezeVariablesWith(q.body, dict, &out.freeze);
  out.frozen_head = FreezeVariablesWith(q.head, dict, &out.freeze);
  for (Term c : q.constraints) {
    out.frozen_constraints.insert(out.freeze.Apply(c));
  }
  return out;
}

// Condition (c) of Thm 5.7: θ maps every constrained variable of q' to
// (the frozen image of) a constrained variable of q.
bool ConstraintsCarried(const TermMap& theta, const Query& q_prime,
                        const FrozenLeft& left) {
  for (Term c : q_prime.constraints) {
    if (!left.frozen_constraints.count(theta.Apply(c))) return false;
  }
  return true;
}

// Core of Thm 5.5/5.7/5.8: enumerate substitutions θ with
// θ(B') ⊆ target and θ(C') ⊆ C. For standard containment, succeed on the
// first θ with θ(H') ≅ H; for entailment containment, accumulate
// ⋃ θ(H') and test entailment of H at the end.
Result<bool> TestAgainstTarget(const Query& q_prime, const Graph& target,
                               const FrozenLeft& left, bool entailment_based,
                               MatchOptions options,
                               bool uninterpreted_vocab = false) {
  bool contained = false;
  Graph head_union;
  PatternMatcher matcher(q_prime.body, &target, options);
  Status status = matcher.Enumerate([&](const TermMap& theta) {
    if (!ConstraintsCarried(theta, q_prime, left)) return true;
    Graph mapped_head = theta.Apply(q_prime.head);
    if (entailment_based) {
      head_union.InsertAll(mapped_head);
      return true;
    }
    if (AreIsomorphic(mapped_head, left.frozen_head)) {
      contained = true;
      return false;  // found the witnessing θ
    }
    return true;
  });
  if (!status.ok() && !contained) return status;
  if (entailment_based) {
    // §5.4 treats simple queries over uninterpreted vocabulary, where
    // entailment is plain map existence; otherwise RDFS entailment.
    return uninterpreted_vocab ? SimpleEntails(head_union, left.frozen_head)
                               : RdfsEntails(head_union, left.frozen_head);
  }
  return contained;
}

Status RequireNoPremises(const Query& q, const Query& q_prime) {
  if (!q.premise.empty() || !q_prime.premise.empty()) {
    return Status::InvalidArgument(
        "this containment test requires premise-free queries; use the "
        "*Simple variants for premises");
  }
  return Status::OK();
}

Result<bool> ContainedImpl(const Query& q, const Query& q_prime,
                           Dictionary* dict, bool entailment_based,
                           MatchOptions options) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  valid = q_prime.Validate();
  if (!valid.ok()) return valid;
  valid = RequireNoPremises(q, q_prime);
  if (!valid.ok()) return valid;

  FrozenLeft left = FreezeLeft(q, dict);
  Graph target = NormalForm(left.frozen_body);
  return TestAgainstTarget(q_prime, target, left, entailment_based, options);
}

Result<bool> ContainedSimpleImpl(const Query& q, const Query& q_prime,
                                 Dictionary* dict, bool entailment_based,
                                 MatchOptions options) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;
  valid = q_prime.Validate();
  if (!valid.ok()) return valid;

  // Prop. 5.9: expand q into premise-free Ωq; Prop. 5.11: the union is
  // contained in q' iff every member is.
  Result<std::vector<Query>> omega = EliminatePremise(q, options);
  if (!omega.ok()) return omega.status();

  for (const Query& q_mu : *omega) {
    FrozenLeft left = FreezeLeft(q_mu, dict);
    // Thm 5.8: the target is P' + B (simple vocabulary, no closure).
    Graph target = Merge(left.frozen_body, q_prime.premise, dict);
    Result<bool> one =
        TestAgainstTarget(q_prime, target, left, entailment_based, options,
                          /*uninterpreted_vocab=*/true);
    if (!one.ok()) return one.status();
    if (!*one) return false;
  }
  return true;
}

}  // namespace

Result<bool> ContainedStandard(const Query& q, const Query& q_prime,
                               Dictionary* dict, MatchOptions options) {
  return ContainedImpl(q, q_prime, dict, /*entailment_based=*/false, options);
}

Result<bool> ContainedEntailment(const Query& q, const Query& q_prime,
                                 Dictionary* dict, MatchOptions options) {
  return ContainedImpl(q, q_prime, dict, /*entailment_based=*/true, options);
}

Result<bool> ContainedStandardSimple(const Query& q, const Query& q_prime,
                                     Dictionary* dict, MatchOptions options) {
  return ContainedSimpleImpl(q, q_prime, dict, /*entailment_based=*/false,
                             options);
}

Result<bool> ContainedEntailmentSimple(const Query& q, const Query& q_prime,
                                       Dictionary* dict,
                                       MatchOptions options) {
  return ContainedSimpleImpl(q, q_prime, dict, /*entailment_based=*/true,
                             options);
}

}  // namespace swdb
