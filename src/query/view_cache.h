#ifndef SWDB_QUERY_VIEW_CACHE_H_
#define SWDB_QUERY_VIEW_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "query/view_key.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"

namespace swdb {

class QueryEvaluator;
class ViewCache;

/// Tuning knobs of the materialized pre-answer view layer.
struct ViewCacheOptions {
  /// Master switch; off routes every PreAnswer to the matcher.
  bool enabled = true;
  /// The view advisor materializes a shape once it has been requested
  /// this many times (lookups, hit or miss, across writer and
  /// snapshots). 1 materializes on first sight; 0 behaves like 1.
  uint32_t promote_after = 2;
  /// Hard cap on materialized views; further shapes stay unmaterialized.
  size_t max_entries = 1024;
  /// Shapes tracked by the frequency advisor (beyond the cap, new
  /// shapes are not counted — a bound on adversarial key churn).
  size_t max_shapes = 8192;
  /// Views whose matching set exceeds this are not materialized (the
  /// copy-out and patch costs would dwarf the matcher run they save).
  size_t max_matchings = 1u << 20;
};

/// Observability snapshot (ViewCache::stats; surfaced through
/// DatabaseStats::views by Database::CollectStats).
struct ViewCacheStats {
  uint64_t hits = 0;            ///< lookups served from a view
  uint64_t misses = 0;          ///< lookups that fell through
  uint64_t installs = 0;        ///< views materialized (advisor promotions)
  uint64_t stale_installs = 0;  ///< installs dropped (prover behind)
  uint64_t patches = 0;         ///< views delta-patched to a new nf
  uint64_t revalidations = 0;   ///< views carried over untouched
  uint64_t invalidations = 0;   ///< views dropped (patch budget/clears)
  uint64_t patch_added = 0;     ///< matchings added by delta patches
  uint64_t patch_removed = 0;   ///< matchings removed by delta patches
  uint64_t clears = 0;          ///< full invalidations
  size_t entries = 0;           ///< materialized views right now
  size_t shapes_tracked = 0;    ///< shapes the advisor is counting
  size_t matchings = 0;         ///< stored matchings across all views
  uint64_t version = 0;         ///< nf (closure) version entries reflect
  uint64_t erase_stamp = 0;     ///< current fence stamp
};

/// How a consumer addresses a shared ViewCache: `version` is the closure
/// version of the normalized graph the consumer answers against, and
/// `erase_stamp` the cache's fence stamp, both captured when that graph
/// was (at snapshot publication, or live for the writer). A default
/// (null cache) ref disables the view layer for that consumer.
struct ViewCacheRef {
  ViewCache* cache = nullptr;
  uint64_t version = 0;
  uint64_t erase_stamp = 0;
};

/// A cache of materialized pre-answer views, shared between a Database's
/// writer and every published snapshot. An entry says: evaluating this
/// canonical query over nf(D) at closure version V yields exactly these
/// matchings and these single answers. Because the evaluator is a pure
/// function of (query, normalized-graph content, Skolem cache) and the
/// Skolem cache only grows, replaying a stored answer vector is
/// bit-identical to re-running the matcher — same graphs, same order.
///
/// Maintenance is driven by the *normalized-graph delta*, not the raw
/// closure delta: folds can remove nf triples whose cause is an
/// unrelated insertion, so the closure cone alone under-approximates
/// the set of views whose answers move (see DESIGN.md). The writer
/// calls Maintain with each new nf; the cache diffs it against the nf
/// its entries reflect and, per view,
///  - revalidates it untouched when no added or removed nf triple
///    unifies with any body triple (no valuation can appear or die);
///  - patches it otherwise: stored matchings whose image lost a triple
///    are dropped, new matchings are found semi-naively by seeding the
///    matcher with each (body triple, added triple) unification, and
///    the answer vector is re-derived from the matching set;
///  - invalidates it if the patch exhausts the match budget.
///
/// Fencing: entries record the nf version and the erase stamp they were
/// written under. A consumer accepts an entry only if the entry's
/// version equals the consumer's and its stamp is not newer — so a
/// lagging snapshot can keep hitting views proven against *its* nf, but
/// never consumes entries written after a later erase or a cache clear
/// (clears also fence version-number reuse across closure rebuilds).
/// Installs are accepted only from provers whose (version, stamp) both
/// equal the cache's current state.
///
/// All methods are thread-safe behind one mutex; Maintain holds it for
/// the duration of the patch (concurrent snapshot lookups at the old
/// version would miss anyway).
class ViewCache {
 public:
  explicit ViewCache(ViewCacheOptions options = {}) : options_(options) {}
  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// The stored answer vector for `key`, if a view exists and is valid
  /// for a consumer at (version, erase_stamp); counts a hit or a miss.
  std::optional<std::vector<Graph>> Lookup(const ViewKey& key,
                                           uint64_t version,
                                           uint64_t erase_stamp) const;

  /// Advisor: records one unmaterialized request for `key`; returns
  /// true when the shape has crossed the promotion threshold and the
  /// caller should capture matchings and Install.
  bool RecordMiss(const ViewKey& key);

  /// Offers a freshly materialized view proven against the normalized
  /// graph at (prover_version, prover_stamp). Dropped silently when the
  /// cache has moved on, the entry already exists, or the view exceeds
  /// the size caps. `matchings` must be the constraint-satisfying
  /// valuations in the evaluator's sorted order and `answers` the
  /// pre-answer vector derived from them.
  void Install(const ViewKey& key, const Query& canonical,
               std::vector<TermMap> matchings, std::vector<Graph> answers,
               uint64_t prover_version, uint64_t prover_stamp);

  /// Writer-side maintenance: brings every view from the nf the cache
  /// reflects to `nf` (closure version `version`), patching by the nf
  /// delta. No-op when already in sync or when `stamp` shows the caller
  /// behind a fence. The evaluator re-derives answers (Skolemization);
  /// `match` bounds the patch matchers (its pool is ignored — patch
  /// runs are delta-proportional and must not re-enter the pool while
  /// the cache mutex is held).
  void Maintain(const Graph& nf, uint64_t version, uint64_t stamp,
                QueryEvaluator* evaluator, const MatchOptions& match);

  /// Erase fence: bumps the stamp so entries written afterwards are
  /// invisible to consumers published before the erase. Entries and
  /// version are untouched — pre-erase consumers keep hitting views
  /// proven against their own nf.
  void OnErase();

  /// Full invalidation (closure dropped or rebuilt): clears entries and
  /// the advisor, forgets the base nf, and bumps the fence stamp so
  /// version-counter reuse by a fresh closure can never revalidate a
  /// stale consumer.
  void Clear();

  /// Current fence stamp (what a live writer passes to Lookup/Install).
  uint64_t erase_stamp() const;

  ViewCacheStats stats() const;

 private:
  struct Entry {
    Query query;                     // canonical spelling (view_key.h)
    std::vector<Term> body_vars;     // sorted body variables
    std::vector<TermMap> matchings;  // constraint-passing valuations
    std::vector<Graph> answers;      // derived pre-answers, sorted+unique
    uint64_t version = 0;            // nf version this view reflects
    uint64_t stamp = 0;              // fence stamp at write/last patch
  };

  // Patches one entry across the (added, removed) nf delta; false means
  // the budget ran out and the entry must be invalidated. Caller holds
  // mu_.
  bool PatchEntry(Entry* e, const std::vector<Triple>& added,
                  const std::vector<Triple>& removed, const Graph& nf,
                  QueryEvaluator* evaluator, const MatchOptions& match);

  ViewCacheOptions options_;
  mutable std::mutex mu_;
  std::unordered_map<ViewKey, Entry, ViewKeyHash> entries_;
  std::unordered_map<ViewKey, uint32_t, ViewKeyHash> shape_counts_;
  // The normalized graph the entries reflect (COW copy; absent until
  // the first Maintain adopts one).
  std::optional<Graph> base_nf_;
  uint64_t version_ = 0;
  uint64_t erase_stamp_ = 0;
  mutable ViewCacheStats counters_;
};

}  // namespace swdb

#endif  // SWDB_QUERY_VIEW_CACHE_H_
