#ifndef SWDB_QUERY_DATABASE_H_
#define SWDB_QUERY_DATABASE_H_

#include <optional>
#include <string_view>
#include <vector>

#include "query/answer.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "util/status.h"

namespace swdb {

/// A mutable RDF database with cached normalization — the convenience
/// facade a downstream user works against.
///
/// The underlying data graph can be mutated freely; the normal form
/// nf(D) that query matching runs on (§4.1, Note 4.4) is computed
/// lazily and invalidated on every mutation. Premise-free queries reuse
/// the cached normal form; queries with premises fall back to per-call
/// normalization of D + P.
class Database {
 public:
  /// The dictionary must outlive the database.
  explicit Database(Dictionary* dict, EvalOptions options = {});

  Dictionary* dict() { return dict_; }
  const Graph& graph() const { return data_; }
  size_t size() const { return data_.size(); }

  /// Inserts a triple; returns true if new. Invalidates the cache.
  bool Insert(const Triple& t);
  /// Inserts all triples of a graph.
  void InsertGraph(const Graph& g);
  /// Parses and inserts N-Triples-style text.
  Status InsertText(std::string_view text);
  /// Removes a triple; returns true if it was present.
  bool Erase(const Triple& t);

  /// nf(D) (or its closure under use_closure_only), computed on first
  /// use and cached until the next mutation.
  const Graph& Normalized();

  /// RDFS entailment D ⊨ q (Thm 2.8).
  bool Entails(const Graph& q);

  /// Single answers of a query (§4.1).
  Result<std::vector<Graph>> PreAnswer(const Query& q);
  /// ans∪(q, D).
  Result<Graph> AnswerUnion(const Query& q);
  /// ans+(q, D).
  Result<Graph> AnswerMerge(const Query& q);
  /// Parses the query text and evaluates under union semantics.
  Result<Graph> ExecuteQuery(std::string_view query_text);

 private:
  void Invalidate() { normalized_.reset(); }

  Dictionary* dict_;
  Graph data_;
  QueryEvaluator evaluator_;
  EvalOptions options_;
  std::optional<Graph> normalized_;
};

}  // namespace swdb

#endif  // SWDB_QUERY_DATABASE_H_
