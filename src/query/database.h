#ifndef SWDB_QUERY_DATABASE_H_
#define SWDB_QUERY_DATABASE_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "inference/closure.h"
#include "query/answer.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "util/status.h"

namespace swdb {

/// Observability counters for the incremental maintenance engine. All
/// counters are cumulative since construction (or ResetStats).
struct DatabaseStats {
  uint64_t inserts = 0;  ///< triples actually added
  uint64_t erases = 0;   ///< triples actually removed
  uint64_t batches = 0;  ///< Apply() calls

  uint64_t closure_full_builds = 0;     ///< from-scratch closure fixpoints
  uint64_t closure_delta_updates = 0;   ///< semi-naive insert maintenances
  uint64_t closure_erase_updates = 0;   ///< DRed deletion maintenances
  uint64_t closure_bulk_resets = 0;     ///< bulk loads that dropped the cache
  uint64_t closure_cache_hits = 0;      ///< Closure() served without work
  uint64_t closure_delta_derived = 0;   ///< triples derived by delta updates
  uint64_t closure_overdeleted = 0;     ///< DRed suspects, cumulative
  uint64_t closure_rederived = 0;       ///< DRed re-derivations, cumulative

  uint64_t nf_rebuilds = 0;    ///< core recomputations over the closure
  uint64_t nf_cache_hits = 0;  ///< Normalized() served from cache

  uint64_t membership_builds = 0;   ///< ClosureMembership (re)builds
  uint64_t membership_queries = 0;  ///< EntailsTriple calls
};

/// A group of mutations applied atomically by Database::Apply, so the
/// maintenance engine runs once per batch (one DRed pass for the
/// erases, one semi-naive pass for the inserts) instead of once per
/// triple.
class MutationBatch {
 public:
  MutationBatch& Insert(const Triple& t) {
    inserts_.push_back(t);
    return *this;
  }
  MutationBatch& Erase(const Triple& t) {
    erases_.push_back(t);
    return *this;
  }
  bool empty() const { return inserts_.empty() && erases_.empty(); }
  size_t size() const { return inserts_.size() + erases_.size(); }

 private:
  friend class Database;
  std::vector<Triple> inserts_;
  std::vector<Triple> erases_;
};

/// A mutable RDF database with *maintained* cached artifacts — the
/// convenience facade a downstream user works against.
///
/// The derived artifacts (RDFS-cl(D); nf(D) = core(cl(D)), §4.1,
/// Note 4.4; the closure-membership index) are computed lazily on first
/// use, and from then on *maintained* across mutations instead of being
/// reset: inserts extend the closure by semi-naive delta propagation
/// (the monotone-fixpoint reading of Def. 2.7), deletions run a DRed
/// over-delete/re-derive pass, and every artifact carries the graph
/// epoch / closure version it reflects so staleness is structurally
/// impossible rather than merely unlikely. Bulk loads larger than the
/// current closure fall back to dropping the cache (a batched rebuild
/// beats replaying a huge delta). Premise-bearing queries still
/// normalize D + P per call.
class Database {
 public:
  struct ApplyResult {
    size_t inserted = 0;  ///< batch inserts that were new
    size_t erased = 0;    ///< batch erases that were present
  };

  /// The dictionary must outlive the database.
  explicit Database(Dictionary* dict, EvalOptions options = {});

  Dictionary* dict() { return dict_; }
  const Graph& graph() const { return data_; }
  size_t size() const { return data_.size(); }
  /// The data graph's mutation epoch (see Graph::epoch).
  uint64_t epoch() const { return data_.epoch(); }

  /// Inserts a triple; returns true if new. Maintains the cached
  /// closure incrementally if it exists.
  bool Insert(const Triple& t);
  /// Inserts all triples of a graph (one maintenance pass; bulk loads
  /// may drop the cache instead — see class comment).
  void InsertGraph(const Graph& g);
  /// Parses and inserts N-Triples-style text.
  Status InsertText(std::string_view text);
  /// Removes a triple; returns true if it was present. Maintains the
  /// cached closure via DRed if it exists.
  bool Erase(const Triple& t);
  /// Applies a batch of erases then inserts as one maintenance step.
  ApplyResult Apply(const MutationBatch& batch);

  /// RDFS-cl(D), computed on first use and maintained thereafter.
  const Graph& Closure();

  /// nf(D) (or its closure under use_closure_only), recomputed only
  /// when the maintained closure actually changed.
  const Graph& Normalized();

  /// RDFS entailment D ⊨ q (Thm 2.8), evaluated against the maintained
  /// closure (no per-call refixpoint).
  bool Entails(const Graph& q);

  /// t ∈ RDFS-cl(D) through the maintained membership index (paper
  /// Thm 3.6(4) shape): O(|D|) per query, no materialization in the
  /// common case.
  bool EntailsTriple(const Triple& t);

  /// Single answers of a query (§4.1).
  Result<std::vector<Graph>> PreAnswer(const Query& q);
  /// ans∪(q, D).
  Result<Graph> AnswerUnion(const Query& q);
  /// ans+(q, D).
  Result<Graph> AnswerMerge(const Query& q);
  /// Parses the query text and evaluates under union semantics.
  Result<Graph> ExecuteQuery(std::string_view query_text);

  /// Maintenance-engine counters.
  const DatabaseStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DatabaseStats(); }

 private:
  // Incremental maintenance steps; no-ops while no closure is cached.
  void MaintainInsert(const Graph& delta);
  void MaintainErase(const Graph& deleted);

  Dictionary* dict_;
  Graph data_;
  QueryEvaluator evaluator_;
  EvalOptions options_;

  // Maintained artifacts, each tagged with the state it reflects:
  // the closure with the data epoch, nf with the closure version, the
  // membership index with the data epoch (internally, via Graph::epoch).
  std::optional<IncrementalClosure> closure_;
  uint64_t closure_epoch_ = 0;
  std::optional<Graph> normalized_;
  uint64_t nf_version_ = 0;
  std::optional<ClosureMembership> membership_;

  DatabaseStats stats_;
};

}  // namespace swdb

#endif  // SWDB_QUERY_DATABASE_H_
