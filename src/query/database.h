#ifndef SWDB_QUERY_DATABASE_H_
#define SWDB_QUERY_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "inference/closure.h"
#include "normal/core.h"
#include "query/answer.h"
#include "query/batch.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "util/status.h"

namespace swdb {

struct UnionQuery;

/// Observability counters for the incremental maintenance engine. All
/// counters are cumulative since construction (or ResetStats).
///
/// The fields are relaxed atomics so the writer thread can keep counting
/// while reader threads inspect stats() — each counter is individually
/// coherent (copies taken mid-mutation may mix counters from adjacent
/// operations, which is fine for observability data).
struct DatabaseStats {
  std::atomic<uint64_t> inserts{0};  ///< triples actually added
  std::atomic<uint64_t> erases{0};   ///< triples actually removed
  std::atomic<uint64_t> batches{0};  ///< Apply() calls

  std::atomic<uint64_t> closure_full_builds{0};   ///< from-scratch fixpoints
  std::atomic<uint64_t> closure_delta_updates{0};  ///< semi-naive inserts
  std::atomic<uint64_t> closure_erase_updates{0};  ///< DRed deletions
  std::atomic<uint64_t> closure_bulk_resets{0};  ///< bulk cache drops
  std::atomic<uint64_t> closure_cache_hits{0};  ///< Closure() served free
  std::atomic<uint64_t> closure_delta_derived{0};  ///< delta-derived triples
  std::atomic<uint64_t> closure_overdeleted{0};  ///< DRed suspects
  std::atomic<uint64_t> closure_rederived{0};    ///< DRed re-derivations

  std::atomic<uint64_t> nf_rebuilds{0};    ///< core recomputations
  std::atomic<uint64_t> nf_cache_hits{0};  ///< Normalized() from cache
  /// Snapshot-side nf(D) builds: how many times some snapshot's lazy
  /// call_once slot actually ran the core computation (each snapshot
  /// builds at most once no matter how many readers race normalized()).
  std::atomic<uint64_t> snapshot_nf_builds{0};

  std::atomic<uint64_t> membership_builds{0};   ///< membership (re)builds
  std::atomic<uint64_t> membership_queries{0};  ///< EntailsTriple calls

  /// Snapshot publications and their COW cost: per publish, how many
  /// spine leaves of the published data+closure graphs were shared with
  /// the previously published snapshot vs newly materialized. A
  /// publication after a k-triple delta copies O(k) leaves — these two
  /// counters are the direct measure.
  std::atomic<uint64_t> snapshot_publishes{0};
  std::atomic<uint64_t> publish_leaves_shared{0};
  std::atomic<uint64_t> publish_leaves_copied{0};

  /// Storage/scan counters of the data graph and the maintained closure
  /// graph (empty when no closure is cached). Plain snapshots, filled by
  /// Database::CollectStats — the live stats() reference leaves them
  /// zeroed.
  GraphStats data_graph;
  GraphStats closure_graph;
  /// Interning observability (shard load, per-kind counts); plain
  /// snapshot filled by CollectStats.
  DictionaryStats dictionary;
  /// Cross-epoch proven-lean cache counters; plain snapshot filled by
  /// CollectStats.
  LeanCacheStats lean_cache;
  /// Materialized pre-answer view layer counters (hits, misses, patches,
  /// invalidations, advisor promotions); plain snapshot filled by
  /// CollectStats.
  ViewCacheStats views;

  /// Batched multi-query evaluation (PreAnswerBatch, writer and
  /// snapshots): cumulative BatchStats sums plus the call count. See
  /// query/batch.h for the per-field meanings.
  std::atomic<uint64_t> batch_calls{0};
  std::atomic<uint64_t> batch_queries{0};
  std::atomic<uint64_t> batch_deduped{0};
  std::atomic<uint64_t> batch_premise_fallthroughs{0};
  std::atomic<uint64_t> batch_minting_fallthroughs{0};
  std::atomic<uint64_t> batch_view_hits{0};
  std::atomic<uint64_t> batch_trie_groups{0};
  std::atomic<uint64_t> batch_solo_groups{0};
  std::atomic<uint64_t> batch_prefix_hits{0};
  std::atomic<uint64_t> batch_shared_reused{0};
  std::atomic<uint64_t> batch_limit_exceeded{0};
  /// Union-query fan-outs: branches served by another branch's
  /// evaluation through the same ViewKey grouping the batch path uses.
  std::atomic<uint64_t> union_branches_deduped{0};

  DatabaseStats() = default;
  DatabaseStats(const DatabaseStats& o) { *this = o; }
  DatabaseStats& operator=(const DatabaseStats& o) {
    inserts = o.inserts.load(std::memory_order_relaxed);
    erases = o.erases.load(std::memory_order_relaxed);
    batches = o.batches.load(std::memory_order_relaxed);
    closure_full_builds =
        o.closure_full_builds.load(std::memory_order_relaxed);
    closure_delta_updates =
        o.closure_delta_updates.load(std::memory_order_relaxed);
    closure_erase_updates =
        o.closure_erase_updates.load(std::memory_order_relaxed);
    closure_bulk_resets =
        o.closure_bulk_resets.load(std::memory_order_relaxed);
    closure_cache_hits = o.closure_cache_hits.load(std::memory_order_relaxed);
    closure_delta_derived =
        o.closure_delta_derived.load(std::memory_order_relaxed);
    closure_overdeleted =
        o.closure_overdeleted.load(std::memory_order_relaxed);
    closure_rederived = o.closure_rederived.load(std::memory_order_relaxed);
    nf_rebuilds = o.nf_rebuilds.load(std::memory_order_relaxed);
    nf_cache_hits = o.nf_cache_hits.load(std::memory_order_relaxed);
    snapshot_nf_builds =
        o.snapshot_nf_builds.load(std::memory_order_relaxed);
    membership_builds = o.membership_builds.load(std::memory_order_relaxed);
    membership_queries = o.membership_queries.load(std::memory_order_relaxed);
    snapshot_publishes =
        o.snapshot_publishes.load(std::memory_order_relaxed);
    publish_leaves_shared =
        o.publish_leaves_shared.load(std::memory_order_relaxed);
    publish_leaves_copied =
        o.publish_leaves_copied.load(std::memory_order_relaxed);
    batch_calls = o.batch_calls.load(std::memory_order_relaxed);
    batch_queries = o.batch_queries.load(std::memory_order_relaxed);
    batch_deduped = o.batch_deduped.load(std::memory_order_relaxed);
    batch_premise_fallthroughs =
        o.batch_premise_fallthroughs.load(std::memory_order_relaxed);
    batch_minting_fallthroughs =
        o.batch_minting_fallthroughs.load(std::memory_order_relaxed);
    batch_view_hits = o.batch_view_hits.load(std::memory_order_relaxed);
    batch_trie_groups = o.batch_trie_groups.load(std::memory_order_relaxed);
    batch_solo_groups = o.batch_solo_groups.load(std::memory_order_relaxed);
    batch_prefix_hits = o.batch_prefix_hits.load(std::memory_order_relaxed);
    batch_shared_reused =
        o.batch_shared_reused.load(std::memory_order_relaxed);
    batch_limit_exceeded =
        o.batch_limit_exceeded.load(std::memory_order_relaxed);
    union_branches_deduped =
        o.union_branches_deduped.load(std::memory_order_relaxed);
    data_graph = o.data_graph;
    closure_graph = o.closure_graph;
    dictionary = o.dictionary;
    lean_cache = o.lean_cache;
    views = o.views;
    return *this;
  }
};

/// A group of mutations applied atomically by Database::Apply, so the
/// maintenance engine runs once per batch (one DRed pass for the
/// erases, one semi-naive pass for the inserts) instead of once per
/// triple.
class MutationBatch {
 public:
  MutationBatch& Insert(const Triple& t) {
    inserts_.push_back(t);
    return *this;
  }
  MutationBatch& Erase(const Triple& t) {
    erases_.push_back(t);
    return *this;
  }
  bool empty() const { return inserts_.empty() && erases_.empty(); }
  size_t size() const { return inserts_.size() + erases_.size(); }

 private:
  friend class Database;
  std::vector<Triple> inserts_;
  std::vector<Triple> erases_;
};

/// An immutable, epoch-tagged view of a Database — the unit of the
/// concurrent read path. A snapshot owns shared_ptr copies of the data
/// graph and its RDFS closure (published with warmed indexes, so every
/// read is const-clean), plus lazily built derived artifacts (normal
/// form, closure membership) guarded by std::call_once.
///
/// Threading: all methods are safe to call from any number of threads
/// concurrently, and the snapshot stays valid and unchanged while the
/// owning Database keeps mutating — readers never observe a partial
/// mutation. PreAnswer on premise-free queries is fully concurrent
/// (Skolemization is internally synchronized); premise-bearing queries
/// merge into the dictionary and must be serialized with the writer.
/// The owning Database (whose evaluator the snapshot borrows) must
/// outlive every snapshot it handed out.
class DatabaseSnapshot {
 public:
  /// The data-graph epoch this snapshot reflects.
  uint64_t epoch() const { return epoch_; }
  /// The data graph D at epoch().
  const Graph& data() const { return *data_; }
  /// RDFS-cl(D), maintained by the writer, frozen here.
  const Graph& closure() const { return *closure_; }
  /// nf(D) = core(cl(D)) (or cl(D) under use_closure_only), built on
  /// first use by exactly one thread (call_once; every concurrent
  /// reader observes the one built graph). The core runs on the
  /// snapshot's pool — EvalOptions' match.pool if set, else the
  /// process-shared ThreadPool — with its component-parallel engine,
  /// whose output is bit-identical to the sequential core.
  const Graph& normalized() const;

  /// t ∈ RDFS-cl(D), through a membership index built on first use.
  bool EntailsTriple(const Triple& t) const;
  /// RDFS entailment D ⊨ q against the frozen closure.
  bool Entails(const Graph& q) const;
  /// Single answers of a premise-free query against nf(D), served from
  /// the owning Database's view cache when a view valid for this
  /// snapshot's (closure version, erase stamp) exists — a hit skips
  /// even the lazy nf build. On a miss the snapshot evaluates against
  /// its own nf and, when the advisor promotes the shape, offers the
  /// view back at its captured version (the cache's write rule drops
  /// the offer if the writer has moved on). See the class comment for
  /// the premise-bearing caveat.
  Result<std::vector<Graph>> PreAnswer(const Query& q) const;
  /// Single answers for a whole batch of queries against this one
  /// snapshot, slot for slot bit-identical to calling PreAnswer on each
  /// in order (same answers, same order, same Skolem mints) at any
  /// worker count. Isomorphic shapes are answered once and replayed per
  /// spelling; survivors share prefix enumeration through the batch
  /// trie (see query/batch.h). A batch fully served by the view cache
  /// skips even the lazy nf build. Premise-bearing slots serialize with
  /// the writer exactly like PreAnswer on them would.
  std::vector<Result<std::vector<Graph>>> PreAnswerBatch(
      const std::vector<Query>& queries, BatchStats* stats_out = nullptr) const;

 private:
  friend class Database;
  DatabaseSnapshot(uint64_t epoch, std::shared_ptr<const Graph> data,
                   std::shared_ptr<const Graph> closure,
                   QueryEvaluator* evaluator, EvalOptions options,
                   ThreadPool* pool, DatabaseStats* stats,
                   LeanCacheRef lean_cache, ViewCacheRef views)
      : epoch_(epoch),
        data_(std::move(data)),
        closure_(std::move(closure)),
        evaluator_(evaluator),
        options_(options),
        pool_(pool),
        stats_(stats),
        lean_cache_(lean_cache),
        views_(views) {}

  uint64_t epoch_;
  std::shared_ptr<const Graph> data_;
  std::shared_ptr<const Graph> closure_;
  QueryEvaluator* evaluator_;
  EvalOptions options_;
  ThreadPool* pool_;       // runs the lazy core build; owned elsewhere
  DatabaseStats* stats_;   // the owning Database's counters
  // The owning Database's cross-epoch lean cache, with this snapshot's
  // closure version + erase stamp captured at publication. The lazy
  // normalized() build consults it and offers its refutations back
  // (the cache's write rule drops them if the writer has moved on).
  LeanCacheRef lean_cache_;
  // The owning Database's view cache, addressed at this snapshot's
  // (closure version, erase stamp); null cache when the view layer is
  // disabled.
  ViewCacheRef views_;

  mutable std::once_flag normalized_once_;
  mutable std::optional<Graph> normalized_;
  mutable std::once_flag membership_once_;
  mutable std::optional<ClosureMembership> membership_;
};

/// A mutable RDF database with *maintained* cached artifacts — the
/// convenience facade a downstream user works against.
///
/// The derived artifacts (RDFS-cl(D); nf(D) = core(cl(D)), §4.1,
/// Note 4.4; the closure-membership index) are computed lazily on first
/// use, and from then on *maintained* across mutations instead of being
/// reset: inserts extend the closure by semi-naive delta propagation
/// (the monotone-fixpoint reading of Def. 2.7), deletions run a DRed
/// over-delete/re-derive pass, and every artifact carries the graph
/// epoch / closure version it reflects so staleness is structurally
/// impossible rather than merely unlikely. Bulk loads larger than the
/// current closure fall back to dropping the cache (a batched rebuild
/// beats replaying a huge delta). Premise-bearing queries still
/// normalize D + P per call.
///
/// Threading model (single writer, many readers): every mutating and
/// cache-maintaining method — Insert/Erase/Apply, Closure, Normalized,
/// Entails, EntailsTriple, PreAnswer — must stay on one writer thread.
/// Reader threads call Snapshot(), which copies the latest published
/// DatabaseSnapshot pointer under a leaf mutex held only for the copy;
/// mutators republish once snapshots have been requested, so a snapshot
/// is always some committed epoch's consistent state, never a
/// mid-mutation view.
class Database {
 public:
  struct ApplyResult {
    size_t inserted = 0;  ///< batch inserts that were new
    size_t erased = 0;    ///< batch erases that were present
  };

  /// The dictionary must outlive the database.
  explicit Database(Dictionary* dict, EvalOptions options = {});

  Dictionary* dict() { return dict_; }
  const Graph& graph() const { return data_; }
  size_t size() const { return data_.size(); }
  /// The data graph's mutation epoch (see Graph::epoch).
  uint64_t epoch() const { return data_.epoch(); }

  /// Inserts a triple; returns true if new. Maintains the cached
  /// closure incrementally if it exists.
  bool Insert(const Triple& t);
  /// Inserts all triples of a graph (one maintenance pass; bulk loads
  /// may drop the cache instead — see class comment).
  void InsertGraph(const Graph& g);
  /// Parses and inserts N-Triples-style text.
  Status InsertText(std::string_view text);
  /// Removes a triple; returns true if it was present. Maintains the
  /// cached closure via DRed if it exists.
  bool Erase(const Triple& t);
  /// Applies a batch of erases then inserts as one maintenance step.
  ApplyResult Apply(const MutationBatch& batch);

  /// RDFS-cl(D), computed on first use and maintained thereafter.
  const Graph& Closure();

  /// nf(D) (or its closure under use_closure_only), recomputed only
  /// when the maintained closure actually changed.
  const Graph& Normalized();

  /// RDFS entailment D ⊨ q (Thm 2.8), evaluated against the maintained
  /// closure (no per-call refixpoint).
  bool Entails(const Graph& q);

  /// t ∈ RDFS-cl(D) through the maintained membership index (paper
  /// Thm 3.6(4) shape): O(|D|) per query, no materialization in the
  /// common case.
  bool EntailsTriple(const Triple& t);

  /// Single answers of a query (§4.1). Premise-free queries route
  /// through the materialized view layer (EvalOptions::views): lookup →
  /// delta maintenance → matcher fallthrough, with answers bit-identical
  /// to the uncached path. Premise-bearing queries always evaluate (the
  /// D + P merge mints fresh blanks per call, so those answers are not
  /// replayable).
  Result<std::vector<Graph>> PreAnswer(const Query& q);
  /// Pre-answers of a union query: branch pre-answers (each routed
  /// through the view layer), concatenated, sorted, deduplicated. With a
  /// MatchOptions::pool, branches fan out over it with pinned merge
  /// order — the result is bit-identical at any worker count.
  Result<std::vector<Graph>> PreAnswer(const UnionQuery& q);
  /// Single answers for a whole batch of queries, slot for slot
  /// bit-identical to calling PreAnswer on each in order (same answers,
  /// same order, same Skolem mints, same dictionary end state) at any
  /// worker count. One normalized graph is pinned for the batch;
  /// isomorphic shapes are answered once and replayed per spelling; the
  /// survivors share prefix enumeration through the batch trie, whose
  /// root subtrees fan out over MatchOptions::pool (see query/batch.h).
  /// Writer-thread only, like PreAnswer.
  std::vector<Result<std::vector<Graph>>> PreAnswerBatch(
      const std::vector<Query>& queries, BatchStats* stats_out = nullptr);
  /// ans∪(q, D). Shares one PreAnswer materialization with any earlier
  /// PreAnswer/AnswerMerge of the same shape through the view layer
  /// instead of re-running the matcher.
  Result<Graph> AnswerUnion(const Query& q);
  /// ans∪ of a union query (branches through the view layer).
  Result<Graph> AnswerUnion(const UnionQuery& q);
  /// ans+(q, D); shares the PreAnswer materialization like AnswerUnion.
  Result<Graph> AnswerMerge(const Query& q);
  /// Parses the query text and evaluates under union semantics.
  Result<Graph> ExecuteQuery(std::string_view query_text);

  /// The latest published immutable snapshot (building and publishing
  /// one on first call). After the first call readers pay one leaf-
  /// mutex-guarded shared_ptr copy — they never wait behind closure
  /// maintenance. Each mutator publishes a fresh snapshot before it
  /// returns, so a snapshot taken after a mutation completes reflects
  /// at least that mutation.
  std::shared_ptr<const DatabaseSnapshot> Snapshot();

  /// The database's evaluator — the Skolem-function identity every
  /// cached and uncached answer path shares (Prop. 4.5). Tests use it to
  /// cross-check view-cache replays against from-scratch evaluation
  /// with bit-identical minted blanks.
  QueryEvaluator* evaluator() { return &evaluator_; }

  /// Maintenance-engine counters.
  const DatabaseStats& stats() const { return stats_; }
  /// stats() plus per-graph storage/scan snapshots (data_graph and, when
  /// a closure is cached, closure_graph). Writer-thread only, like every
  /// other cache-touching accessor.
  DatabaseStats CollectStats() const;
  void ResetStats() { stats_ = DatabaseStats(); }

 private:
  // Incremental maintenance steps; no-ops while no closure is cached.
  void MaintainInsert(const Graph& delta);
  void MaintainErase(const Graph& deleted);
  // The view-layer read path for one premise-free query against the
  // current nf (already maintained to `version`): lookup → advisor →
  // matcher fallthrough → install. Safe to call concurrently from the
  // union-query fan-out (cache methods lock; the evaluator and nf are
  // shared read-only).
  Result<std::vector<Graph>> PreAnswerThroughCache(const Query& q,
                                                   const Graph& nf,
                                                   uint64_t version);
  // Builds a snapshot of the current state and publishes it under
  // snapshot_mu_. Caller holds write_mu_.
  void PublishSnapshotLocked();

  Dictionary* dict_;
  Graph data_;
  QueryEvaluator evaluator_;
  EvalOptions options_;

  // Maintained artifacts, each tagged with the state it reflects:
  // the closure with the data epoch, nf with the closure version, the
  // membership index with the data epoch (internally, via Graph::epoch).
  std::optional<IncrementalClosure> closure_;
  uint64_t closure_epoch_ = 0;
  std::optional<Graph> normalized_;
  uint64_t nf_version_ = 0;
  std::optional<ClosureMembership> membership_;

  // Cross-epoch proven-lean component cache (see LeanCache): fed and
  // consumed by the writer's Normalized() and by every snapshot's lazy
  // normalized() build; invalidated here on closure maintenance.
  LeanCache lean_cache_;

  // Materialized pre-answer views (see ViewCache): consulted by the
  // writer's PreAnswer and by every snapshot's, delta-patched against
  // each new nf, fully cleared whenever the closure incarnation is
  // dropped (bulk resets), and erase-fenced in step with lean_cache_.
  ViewCache view_cache_;

  // Concurrent read path: mutators hold write_mu_ end to end and, once
  // snapshots_on_, republish before releasing it. snapshot_ is guarded
  // by the leaf mutex snapshot_mu_, held only for the pointer copy /
  // swap — readers never wait behind a maintenance pass. (A leaf mutex
  // instead of std::atomic<std::shared_ptr>: libstdc++ 12's _Sp_atomic
  // unlocks its embedded spinlock with a relaxed RMW, which leaves the
  // _M_ptr accesses formally racy — ThreadSanitizer reports it.)
  // Lock order: write_mu_ before snapshot_mu_ — asserted in debug
  // builds via LockRankScope (util/lock_rank.h) at every acquisition.
  std::mutex write_mu_;
  bool snapshots_on_ = false;  // guarded by write_mu_
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const DatabaseSnapshot> snapshot_;

  DatabaseStats stats_;
};

}  // namespace swdb

#endif  // SWDB_QUERY_DATABASE_H_
