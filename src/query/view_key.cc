#include "query/view_key.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/hash.h"

namespace swdb {
namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDull;
  return h;
}

bool HeadHasBlanks(const Graph& head) {
  for (const Triple& t : head) {
    if (t.s.IsBlank() || t.p.IsBlank() || t.o.IsBlank()) return true;
  }
  return false;
}

// Current variable coloring of the WL-style refinement. Constants encode
// as their term bits under a tag no color hash can collide into by
// construction of the initial colors (colors are full-width mixes).
struct Coloring {
  std::unordered_map<Term, uint64_t> color;

  uint64_t Enc(Term t) const {
    if (!t.IsVar()) return (1ull << 40) | t.bits();
    return color.at(t);
  }
  uint64_t EncTriple(uint64_t section, const Triple& t) const {
    uint64_t h = Mix(0x5851F42D4C957F2Dull, section);
    h = Mix(h, Enc(t.s));
    h = Mix(h, Enc(t.p));
    return Mix(h, Enc(t.o));
  }
};

// One refinement round: a variable's next color hashes its previous
// color with the sorted multiset of its occurrence contexts (section,
// position, whole-triple encoding under the previous coloring).
// Isomorphic queries refine to identical color multisets; variables a
// renaming cannot exchange separate after at most |vars| rounds.
size_t Refine(const Query& q, const std::vector<Term>& vars, Coloring* c) {
  std::unordered_map<Term, std::vector<uint64_t>> occ;
  auto visit = [&](uint64_t section, const Graph& g) {
    for (const Triple& t : g) {
      const uint64_t enc = c->EncTriple(section, t);
      const Term pos[3] = {t.s, t.p, t.o};
      for (uint64_t i = 0; i < 3; ++i) {
        if (pos[i].IsVar()) occ[pos[i]].push_back(Mix(enc, i));
      }
    }
  };
  visit(0, q.body);
  visit(1, q.head);
  for (Term v : q.constraints) occ[v].push_back(0xC0157A11EDull);

  std::unordered_map<Term, uint64_t> next;
  std::unordered_set<uint64_t> distinct;
  for (Term v : vars) {
    std::vector<uint64_t>& o = occ[v];
    std::sort(o.begin(), o.end());
    uint64_t h = Mix(0xA0761D6478BD642Full, c->color.at(v));
    for (uint64_t x : o) h = Mix(h, x);
    next[v] = h;
    distinct.insert(h);
  }
  c->color = std::move(next);
  return distinct.size();
}

// The canonical variable renaming: WL refinement to a stable partition,
// then first-occurrence id assignment scanning the body triples in
// color-encoded order. The scan order depends only on the coloring (an
// isomorphism invariant), so isomorphic queries whose variables the
// refinement separates receive literally identical renamed forms;
// refinement ties on symmetric bodies at worst split one shape across
// two keys (a miss, never a wrong share).
TermMap CanonicalRenaming(const Query& q, const std::vector<Term>& vars) {
  Coloring c;
  for (Term v : vars) c.color[v] = 0x243F6A8885A308D3ull;
  size_t classes = vars.empty() ? 0 : 1;
  for (size_t round = 0; round < vars.size(); ++round) {
    const size_t next = Refine(q, vars, &c);
    if (next == classes) break;  // partition stable
    classes = next;
  }

  std::vector<std::pair<uint64_t, Triple>> order;
  order.reserve(q.body.size());
  for (const Triple& t : q.body) {
    order.emplace_back(c.EncTriple(0, t), t);
  }
  // stable_sort: ties keep the body's deterministic (bit-sorted) order,
  // so the same query always canonicalizes the same way.
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  TermMap rename;
  uint32_t next_id = 0;
  for (const auto& [enc, t] : order) {
    (void)enc;
    for (Term x : {t.s, t.p, t.o}) {
      if (x.IsVar() && !rename.IsBound(x)) {
        rename.Bind(x, Term::Var(next_id++));
      }
    }
  }
  return rename;
}

void AppendGraph(const Graph& g, std::vector<uint32_t>* words) {
  words->push_back(static_cast<uint32_t>(g.size()));
  for (const Triple& t : g) {
    words->push_back(t.s.bits());
    words->push_back(t.p.bits());
    words->push_back(t.o.bits());
  }
}

}  // namespace

ViewKey MakeViewKey(const Query& q, CanonicalQuery* canonical_out) {
  CanonicalQuery canon;
  // Renaming is answer-preserving only for validating, blank-free-head
  // queries (see CanonicalQuery); everything else keys on its exact
  // spelling.
  canon.renamed = !HeadHasBlanks(q.head) && q.Validate().ok();
  if (canon.renamed) {
    const std::vector<Term> vars = q.body.Variables();
    const TermMap rename = CanonicalRenaming(q, vars);
    std::vector<Triple> body, head;
    body.reserve(q.body.size());
    for (const Triple& t : q.body) body.push_back(rename.Apply(t));
    head.reserve(q.head.size());
    for (const Triple& t : q.head) head.push_back(rename.Apply(t));
    canon.query.body = Graph(std::move(body));
    canon.query.head = Graph(std::move(head));
    canon.query.premise = q.premise;
    canon.query.constraints.reserve(q.constraints.size());
    for (Term cst : q.constraints) {
      canon.query.constraints.push_back(rename.Apply(cst));
    }
    std::sort(canon.query.constraints.begin(), canon.query.constraints.end());
  } else {
    canon.query = q;
    // Exact spelling: keep the constraint list order-insensitive too.
    std::sort(canon.query.constraints.begin(), canon.query.constraints.end());
  }

  ViewKey key;
  key.words.push_back(canon.renamed ? 1u : 0u);
  AppendGraph(canon.query.body, &key.words);
  AppendGraph(canon.query.head, &key.words);
  key.words.push_back(static_cast<uint32_t>(canon.query.constraints.size()));
  for (Term cst : canon.query.constraints) key.words.push_back(cst.bits());
  AppendGraph(canon.query.premise, &key.words);
  key.hash = HashRange(key.words.begin(), key.words.end(),
                       size_t{0x51ED270B35Aull});

  if (canonical_out != nullptr) *canonical_out = std::move(canon);
  return key;
}

}  // namespace swdb
