#include "query/premise.h"

#include <algorithm>

namespace swdb {

Result<std::vector<Query>> EliminatePremise(const Query& q,
                                            MatchOptions options) {
  Status valid = q.Validate();
  if (!valid.ok()) return valid;

  if (q.premise.empty()) {
    Query copy = q;
    copy.premise = Graph();
    return std::vector<Query>{std::move(copy)};
  }

  const std::vector<Triple>& body = q.body.triples();
  const size_t n = body.size();
  if (n > 20) {
    return Status::LimitExceeded(
        "premise elimination enumerates 2^|B| subsets; body too large");
  }

  std::vector<Query> out;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<Triple> r_part;
    std::vector<Triple> rest;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) {
        r_part.push_back(body[i]);
      } else {
        rest.push_back(body[i]);
      }
    }
    // Enumerate maps μ : R → P.
    PatternMatcher matcher(r_part, &q.premise, options);
    Status status = matcher.Enumerate([&](const TermMap& mu) {
      Graph new_body = mu.Apply(Graph(rest));
      if (!new_body.BlankNodes().empty()) return true;  // blanks leaked
      Query derived;
      derived.body = std::move(new_body);
      derived.head = mu.Apply(q.head);
      bool constraint_violated = false;
      for (Term c : q.constraints) {
        Term image = mu.Apply(c);
        if (image.IsBlank()) {
          constraint_violated = true;
          break;
        }
        if (image.IsVar()) derived.constraints.push_back(image);
      }
      if (!constraint_violated) out.push_back(std::move(derived));
      return true;
    });
    if (!status.ok()) return status;
  }

  // Deduplicate by (head, body, constraints).
  std::sort(out.begin(), out.end(), [](const Query& a, const Query& b) {
    if (a.head.triples() != b.head.triples()) {
      return a.head.triples() < b.head.triples();
    }
    if (a.body.triples() != b.body.triples()) {
      return a.body.triples() < b.body.triples();
    }
    return a.constraints < b.constraints;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Query& a, const Query& b) {
                          return a.head == b.head && a.body == b.body &&
                                 a.constraints == b.constraints;
                        }),
            out.end());
  return out;
}

}  // namespace swdb
