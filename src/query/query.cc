#include "query/query.h"

#include <algorithm>

namespace swdb {

Status Query::Validate() const {
  for (const Triple& t : body) {
    if (!t.IsWellFormedPattern()) {
      return Status::InvalidArgument("body triple with blank predicate");
    }
    if (t.s.IsBlank() || t.o.IsBlank()) {
      return Status::InvalidArgument("body must not contain blank nodes");
    }
  }
  for (const Triple& t : head) {
    if (!t.IsWellFormedPattern()) {
      return Status::InvalidArgument("head triple with blank predicate");
    }
  }
  std::vector<Term> body_vars = body.Variables();
  for (Term v : head.Variables()) {
    if (!std::binary_search(body_vars.begin(), body_vars.end(), v)) {
      return Status::InvalidArgument(
          "head variable does not occur in the body");
    }
  }
  if (!premise.Variables().empty()) {
    return Status::InvalidArgument("premise must not contain variables");
  }
  if (!premise.IsWellFormedData()) {
    return Status::InvalidArgument("premise must be a well-formed graph");
  }
  std::vector<Term> head_vars = head.Variables();
  for (Term c : constraints) {
    if (!c.IsVar() ||
        !std::binary_search(head_vars.begin(), head_vars.end(), c)) {
      return Status::InvalidArgument(
          "constraint is not a variable of the head");
    }
  }
  return Status::OK();
}

bool Query::SatisfiesConstraints(const TermMap& v) const {
  for (Term c : constraints) {
    if (v.Apply(c).IsBlank()) return false;
  }
  return true;
}

Query Query::Identity(Dictionary* dict) {
  Term x = dict->Var("X");
  Term y = dict->Var("Y");
  Term z = dict->Var("Z");
  Query q;
  q.head = Graph{Triple(x, y, z)};
  q.body = q.head;
  return q;
}

Graph FreezeVariablesWith(const Graph& g, Dictionary* dict,
                          TermMap* freeze_in_out) {
  for (Term v : g.Variables()) {
    if (!freeze_in_out->IsBound(v)) {
      freeze_in_out->Bind(v, dict->FreshIri());
    }
  }
  return freeze_in_out->Apply(g);
}

Graph FreezeVariables(const Graph& g, Dictionary* dict, TermMap* freeze_out) {
  *freeze_out = TermMap();
  return FreezeVariablesWith(g, dict, freeze_out);
}

}  // namespace swdb
