#include "query/view_cache.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "query/answer.h"
#include "util/hash.h"

namespace swdb {
namespace {

// The (sorted) symmetric difference of two normalized graphs, split into
// what `to` lost and gained relative to `from` — the delta every view is
// patched by. One merge walk; O(|from| + |to|).
void DiffSorted(const Graph& from, const Graph& to,
                std::vector<Triple>* removed, std::vector<Triple>* added) {
  auto i = from.begin();
  const auto ie = from.end();
  auto j = to.begin();
  const auto je = to.end();
  while (i != ie && j != je) {
    const Triple a = *i;
    const Triple b = *j;
    if (a == b) {
      ++i;
      ++j;
    } else if (a < b) {
      removed->push_back(a);
      ++i;
    } else {
      added->push_back(b);
      ++j;
    }
  }
  for (; i != ie; ++i) removed->push_back(*i);
  for (; j != je; ++j) added->push_back(*j);
}

// Matches one body pattern triple against one ground delta triple:
// variables bind consistently, constants must coincide. On success `out`
// holds the (partial) seed valuation; on failure its contents are
// unspecified — callers use a fresh map per attempt.
bool Unify(const Triple& pattern, const Triple& data, TermMap* out) {
  const Term ps[3] = {pattern.s, pattern.p, pattern.o};
  const Term ds[3] = {data.s, data.p, data.o};
  for (int i = 0; i < 3; ++i) {
    if (ps[i].IsVar()) {
      if (out->IsBound(ps[i])) {
        if (out->Apply(ps[i]) != ds[i]) return false;
      } else {
        out->Bind(ps[i], ds[i]);
      }
    } else if (ps[i] != ds[i]) {
      return false;
    }
  }
  return true;
}

// Whether any delta triple unifies with any body triple — the
// "can this delta create or destroy a matching" test. Sound because a
// matching appears (disappears) only when some body triple's image is an
// added (removed) nf triple, and images are unifications.
bool Touches(const std::vector<Triple>& body,
             const std::vector<Triple>& delta) {
  for (const Triple& d : delta) {
    for (const Triple& b : body) {
      TermMap scratch;
      if (Unify(b, d, &scratch)) return true;
    }
  }
  return false;
}

// A matching reduced to its value tuple over the sorted body variables —
// the dedup identity of a valuation (a matching binds exactly these).
std::vector<uint32_t> TupleBits(const TermMap& v,
                                const std::vector<Term>& vars) {
  std::vector<uint32_t> out;
  out.reserve(vars.size());
  for (Term x : vars) out.push_back(v.Apply(x).bits());
  return out;
}

struct TupleHash {
  size_t operator()(const std::vector<uint32_t>& t) const {
    return HashRange(t.begin(), t.end(), size_t{0x7E57BEEF5ull});
  }
};

}  // namespace

std::optional<std::vector<Graph>> ViewCache::Lookup(
    const ViewKey& key, uint64_t version, uint64_t erase_stamp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  // Valid iff proven against the consumer's nf version and not written
  // behind an erase/clear fence the consumer predates.
  if (it != entries_.end() && it->second.version == version &&
      it->second.stamp <= erase_stamp) {
    ++counters_.hits;
    return it->second.answers;  // Graph copies share spines (COW)
  }
  ++counters_.misses;
  return std::nullopt;
}

bool ViewCache::RecordMiss(const ViewKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return false;
  // An existing entry means the miss came from a fenced (lagging)
  // consumer; materializing again could only produce a stale install.
  if (entries_.count(key) > 0) return false;
  auto it = shape_counts_.find(key);
  if (it == shape_counts_.end()) {
    if (shape_counts_.size() >= options_.max_shapes) return false;
    it = shape_counts_.emplace(key, 0u).first;
  }
  ++it->second;
  const uint32_t threshold =
      options_.promote_after == 0 ? 1u : options_.promote_after;
  return it->second >= threshold && entries_.size() < options_.max_entries;
}

void ViewCache::Install(const ViewKey& key, const Query& canonical,
                        std::vector<TermMap> matchings,
                        std::vector<Graph> answers, uint64_t prover_version,
                        uint64_t prover_stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return;
  // Write rule: only a prover at the cache's current (version, stamp)
  // with an adopted base nf may install — anything else was proven
  // against a graph future maintenance won't diff from.
  if (!base_nf_.has_value() || prover_version != version_ ||
      prover_stamp != erase_stamp_) {
    ++counters_.stale_installs;
    return;
  }
  if (entries_.size() >= options_.max_entries) return;
  if (matchings.size() > options_.max_matchings) return;
  auto [it, fresh] = entries_.try_emplace(key);
  if (!fresh) return;
  Entry& e = it->second;
  e.query = canonical;
  e.body_vars = canonical.body.Variables();
  e.matchings = std::move(matchings);
  e.answers = std::move(answers);
  e.version = version_;
  e.stamp = erase_stamp_;
  ++counters_.installs;
}

void ViewCache::Maintain(const Graph& nf, uint64_t version, uint64_t stamp,
                         QueryEvaluator* evaluator,
                         const MatchOptions& match) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!options_.enabled) return;
  if (stamp != erase_stamp_) return;  // caller behind a fence
  if (!base_nf_.has_value()) {
    // First sight of a normalized graph: adopt it as the diff base.
    // Entries cannot exist yet (installs require a base).
    base_nf_ = nf;
    version_ = version;
    return;
  }
  if (version == version_) return;  // in sync
  if (version < version_) return;   // lagging caller (stale snapshot)
  if (entries_.empty()) {
    base_nf_ = nf;
    version_ = version;
    return;
  }

  std::vector<Triple> added;
  std::vector<Triple> removed;
  DiffSorted(*base_nf_, nf, &removed, &added);

  // Patch matchers must not fan out: TaskGroup::Wait help-drains the
  // pool, and a drained task touching this cache would deadlock on mu_.
  // They also must not share the caller's stats sink.
  MatchOptions patch_match = match;
  patch_match.pool = nullptr;
  patch_match.stats = nullptr;

  for (auto it = entries_.begin(); it != entries_.end();) {
    if (PatchEntry(&it->second, added, removed, nf, evaluator,
                   patch_match)) {
      it->second.version = version;
      it->second.stamp = erase_stamp_;
      ++it;
    } else {
      ++counters_.invalidations;
      it = entries_.erase(it);
    }
  }
  base_nf_ = nf;
  version_ = version;
}

bool ViewCache::PatchEntry(Entry* e, const std::vector<Triple>& added,
                           const std::vector<Triple>& removed,
                           const Graph& nf, QueryEvaluator* evaluator,
                           const MatchOptions& match) {
  const std::vector<Triple> body = e->query.body.triples();
  const bool add_touches = Touches(body, added);
  const bool rem_touches = Touches(body, removed);
  if (!add_touches && !rem_touches) {
    // No delta triple can be the image of any body triple, so the
    // matching set — and hence the answer set — is unchanged.
    ++counters_.revalidations;
    return true;
  }

  // Drop matchings whose image lost a triple. Checking against the new
  // nf directly (rather than against `removed`) also keeps this correct
  // when one mutation removes several triples of the same image.
  std::vector<TermMap> kept;
  kept.reserve(e->matchings.size());
  if (rem_touches) {
    for (TermMap& m : e->matchings) {
      bool alive = true;
      for (const Triple& b : body) {
        if (!nf.Contains(m.Apply(b))) {
          alive = false;
          break;
        }
      }
      if (alive) {
        kept.push_back(std::move(m));
      } else {
        ++counters_.patch_removed;
      }
    }
  } else {
    kept = std::move(e->matchings);
  }

  if (add_touches) {
    // Semi-naive: every genuinely new matching maps at least one body
    // triple onto an added nf triple, so seeding the matcher with each
    // (body[i], added triple) unification enumerates a superset of the
    // new matchings; the seen-set removes overlap with survivors and
    // across seeds.
    std::unordered_set<std::vector<uint32_t>, TupleHash> seen;
    seen.reserve(kept.size());
    for (const TermMap& m : kept) seen.insert(TupleBits(m, e->body_vars));
    for (const Triple& b : body) {
      for (const Triple& a : added) {
        TermMap seed;
        if (!Unify(b, a, &seed)) continue;
        std::vector<Triple> specialized;
        specialized.reserve(body.size());
        for (const Triple& bt : body) specialized.push_back(seed.Apply(bt));
        PatternMatcher matcher(std::move(specialized), &nf, match);
        const Status status = matcher.Enumerate([&](const TermMap& mu) {
          TermMap full;
          for (Term var : e->body_vars) {
            full.Bind(var, seed.IsBound(var) ? seed.Apply(var)
                                             : mu.Apply(var));
          }
          // The seed may bind variables to *blank* nf nodes, which the
          // specialized pattern presents to the matcher as open terms
          // (hom.h maps pattern blanks freely). The matcher can then
          // succeed by sending such a blank elsewhere while `full` keeps
          // the seed's literal binding — so re-check the candidate's
          // image triple by triple before admitting it.
          for (const Triple& bt : body) {
            if (!nf.Contains(full.Apply(bt))) return true;
          }
          if (!e->query.SatisfiesConstraints(full)) return true;
          std::vector<uint32_t> tuple = TupleBits(full, e->body_vars);
          if (seen.insert(std::move(tuple)).second) {
            kept.push_back(std::move(full));
            ++counters_.patch_added;
          }
          return true;
        });
        // Budget exhausted mid-patch: the matching set is incomplete —
        // never guess, invalidate (next request recomputes).
        if (!status.ok()) return false;
      }
    }
    std::sort(kept.begin(), kept.end(),
              [e](const TermMap& x, const TermMap& y) {
                return ValuationLess(x, y, e->body_vars);
              });
  }

  // Re-derive the answer vector from the patched matching set, exactly
  // the way the from-scratch path does (same Skolem functions, same
  // sort, same dedup) — this is what makes replays bit-identical.
  std::vector<Graph> answers;
  answers.reserve(kept.size());
  for (const TermMap& m : kept) {
    std::optional<Graph> answer =
        evaluator->AnswerFromMatching(e->query, e->body_vars, m);
    if (answer.has_value()) answers.push_back(*std::move(answer));
  }
  std::sort(answers.begin(), answers.end(),
            [](const Graph& a, const Graph& b) {
              return a.triples() < b.triples();
            });
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());

  e->matchings = std::move(kept);
  e->answers = std::move(answers);
  ++counters_.patches;
  return true;
}

void ViewCache::OnErase() {
  std::lock_guard<std::mutex> lock(mu_);
  ++erase_stamp_;
}

void ViewCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.invalidations += entries_.size();
  ++counters_.clears;
  entries_.clear();
  shape_counts_.clear();
  base_nf_.reset();
  version_ = 0;
  ++erase_stamp_;
}

uint64_t ViewCache::erase_stamp() const {
  std::lock_guard<std::mutex> lock(mu_);
  return erase_stamp_;
}

ViewCacheStats ViewCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ViewCacheStats out = counters_;
  out.entries = entries_.size();
  out.shapes_tracked = shape_counts_.size();
  out.matchings = 0;
  for (const auto& [key, e] : entries_) out.matchings += e.matchings.size();
  out.version = version_;
  out.erase_stamp = erase_stamp_;
  return out;
}

}  // namespace swdb
