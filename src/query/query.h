#ifndef SWDB_QUERY_QUERY_H_
#define SWDB_QUERY_QUERY_H_

#include <vector>

#include "rdf/graph.h"
#include "rdf/map.h"
#include "rdf/term.h"
#include "util/status.h"

namespace swdb {

/// A query q = (H, B, P, C) (paper Def. 4.1):
///  - H (head) and B (body) form a tableau: pattern graphs over
///    UB ∪ V, where B has no blank nodes and var(H) ⊆ var(B);
///  - P (premise) is a graph over UB (no variables) the user supplies as
///    a hypothesis (§4.2);
///  - C (constraints) is a set of variables of H that must be bound to
///    non-blank terms in every answer (the IS-NOT-NULL analogue).
struct Query {
  Graph head;
  Graph body;
  Graph premise;
  std::vector<Term> constraints;

  /// Validates Def. 4.1's side conditions: every variable of the head
  /// occurs in the body, the body has no blank nodes, every triple is a
  /// well-formed pattern, the premise has no variables, and every
  /// constraint is a variable of the head.
  Status Validate() const;

  /// True when the valuation v satisfies C: every constrained variable
  /// is bound to a non-blank term (Def. 4.3's side condition).
  bool SatisfiesConstraints(const TermMap& v) const;

  /// The identity query (?X,?Y,?Z) ← (?X,?Y,?Z) (paper Note 4.7);
  /// variables interned in dict.
  static Query Identity(Dictionary* dict);
};

/// Replaces each variable of g by a distinguished fresh URI, recording
/// the var → URI map in freeze_out. Used to treat query variables as
/// ground elements ("fresh constants") the way the containment
/// characterizations (Thm 5.5/5.7/5.8) and the canonical databases in
/// their proofs do.
Graph FreezeVariables(const Graph& g, Dictionary* dict, TermMap* freeze_out);

/// Applies an existing freeze map (extending it with fresh URIs for any
/// new variables).
Graph FreezeVariablesWith(const Graph& g, Dictionary* dict,
                          TermMap* freeze_in_out);

}  // namespace swdb

#endif  // SWDB_QUERY_QUERY_H_
