#ifndef SWDB_QUERY_CONTAINMENT_H_
#define SWDB_QUERY_CONTAINMENT_H_

#include "query/query.h"
#include "rdf/hom.h"
#include "util/status.h"

namespace swdb {

/// Standard containment q ⊑p q' (paper Def. 5.1(1)): on every database,
/// each pre-answer of q has an isomorphic pre-answer of q'. Decided via
/// the characterization of Thm 5.5(1)/5.7(1): a substitution θ with
/// θ(B') ⊆ nf(B), θ(H') ≅ H and θ(C') ⊆ C (variables of q treated as
/// fresh constants). Both queries must be premise-free; constraints are
/// supported. NP-complete (Thm 5.6).
Result<bool> ContainedStandard(const Query& q, const Query& q_prime,
                               Dictionary* dict, MatchOptions options = {});

/// Entailment-based containment q ⊑m q' (Def. 5.1(2)): on every database,
/// ans(q', D) ⊨ ans(q, D). Decided via Thm 5.5(2)/5.7(2): substitutions
/// θ_1..θ_n with θ_j(B') ⊆ nf(B), θ_j(C') ⊆ C, and ⋃_j θ_j(H') ⊨ H.
/// Standard containment implies entailment containment (Prop. 5.2) but
/// not conversely (Ex. 5.3). Both queries must be premise-free.
Result<bool> ContainedEntailment(const Query& q, const Query& q_prime,
                                 Dictionary* dict, MatchOptions options = {});

/// Standard containment for *simple* queries (rdfs vocabulary treated as
/// uninterpreted; §5.4) with premises allowed on both sides: q is first
/// expanded to the premise-free family Ωq (Prop. 5.9), and each member is
/// tested against q' via Thm 5.8(1) (θ(B') ⊆ P' + B, θ(H') ≅ H); the
/// union rule Prop. 5.11 conjoins the results. NP-hard, in Π2P
/// (Thm 5.12).
Result<bool> ContainedStandardSimple(const Query& q, const Query& q_prime,
                                     Dictionary* dict,
                                     MatchOptions options = {});

/// Entailment-based containment for simple queries with premises,
/// via Prop. 5.9 + Thm 5.8(2) + Prop. 5.11.
Result<bool> ContainedEntailmentSimple(const Query& q, const Query& q_prime,
                                       Dictionary* dict,
                                       MatchOptions options = {});

}  // namespace swdb

#endif  // SWDB_QUERY_CONTAINMENT_H_
