#ifndef SWDB_NORMAL_MINIMAL_H_
#define SWDB_NORMAL_MINIMAL_H_

#include <vector>

#include "rdf/graph.h"

namespace swdb {

/// True if no reserved RDFS keyword occurs in subject or object position
/// — the first hypothesis of paper Thm 3.16.
bool HasReservedVocabInSubjectOrObject(const Graph& g);

/// True if the explicit sc digraph and the explicit sp digraph of g are
/// both acyclic — "acyclic w.r.t. subproperty and subclass", the second
/// hypothesis of paper Thm 3.16 (self-loops count as cycles here only if
/// non-trivial; a reflexive triple (a,sc,a) is handled separately by the
/// theorem's proof and does not violate acyclicity).
bool IsAcyclicScSp(const Graph& g);

/// An inclusion-minimal representation: an equivalent subgraph of g from
/// which no single triple can be removed without losing equivalence
/// (Def. 3.13 relaxed to inclusion-minimality). Under the Thm 3.16
/// hypotheses this is the unique minimum representation; in general,
/// different removal orders can give non-isomorphic results (Ex. 3.14,
/// Ex. 3.15) — `order_seed` selects the order so tests can exhibit that.
Graph MinimalRepresentation(const Graph& g, uint64_t order_seed = 0);

/// All minimum-size (w.r.t. number of triples) equivalent subgraphs of g,
/// by exhaustive subset enumeration. Exponential; requires |g| ≤ 24.
/// Used to verify Examples 3.14/3.15 and Thm 3.16.
std::vector<Graph> AllMinimumRepresentations(const Graph& g);

}  // namespace swdb

#endif  // SWDB_NORMAL_MINIMAL_H_
