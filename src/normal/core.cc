#include "normal/core.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/check.h"
#include "util/thread_pool.h"

namespace swdb {

std::vector<std::vector<Triple>> BlankComponents(const Graph& g) {
  std::unordered_map<Term, Term> parent;
  // Iterative root walk with full path compression: blank chains grow
  // with the data (a 10k-blank chain is ordinary input, not an
  // adversarial one), and a recursive find would grow the call stack
  // with the chain.
  auto find = [&parent](Term x) -> Term {
    Term root = x;
    for (auto it = parent.find(root);
         it != parent.end() && it->second != root; it = parent.find(root)) {
      root = it->second;
    }
    while (x != root) {
      auto it = parent.find(x);
      Term next = it->second;
      it->second = root;
      x = next;
    }
    return root;
  };
  auto unite = [&](Term a, Term b) {
    Term ra = find(a);
    Term rb = find(b);
    if (ra != rb) parent[ra] = rb;
  };
  for (const Triple& t : g) {
    if (t.s.IsBlank() && t.o.IsBlank()) unite(t.s, t.o);
  }
  std::unordered_map<Term, size_t> component_index;
  std::vector<std::vector<Triple>> components;
  for (const Triple& t : g) {
    if (t.IsGround()) continue;
    Term representative = find(t.s.IsBlank() ? t.s : t.o);
    auto [it, inserted] =
        component_index.try_emplace(representative, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(t);
  }
  return components;
}

namespace {

constexpr size_t kNoWinner = std::numeric_limits<size_t>::max();

// Outcome of the fold search over one blank component: the first fold
// in probe order, or a refutation (possibly budget-limited).
struct ComponentResult {
  std::optional<TermMap> fold;
  bool budget_hit = false;
  uint64_t steps = 0;  // matcher steps across this component's probes
};

// Searches one component for a fold: a map component → g \ {t} for some
// triple t of the component, probing the triples in order and returning
// at the first fold. Each probe carries its own options.max_steps
// budget — identical to the sequential engine, and independent of what
// any concurrently searched component consumes, which is what makes
// budget exhaustion worker-count-invariant. `first_found`, when
// non-null, aborts the search (between probes and inside the matcher)
// once a lower-indexed component has found a fold; a cancelled result
// is never consulted, because a lower winner exists by construction.
ComponentResult SearchComponent(const std::vector<Triple>& component,
                                const Graph& g, MatchOptions options,
                                const std::atomic<size_t>* first_found,
                                size_t index) {
  ComponentResult out;
  options.pool = nullptr;   // the component search is the unit of fan-out
  options.stats = nullptr;  // a multi-probe driver; see header
  PatternMatcher matcher(component, &g, options);
  if (first_found != nullptr) matcher.set_cancellation(first_found, index);
  for (const Triple& t : component) {
    if (first_found != nullptr &&
        first_found->load(std::memory_order_relaxed) < index) {
      return out;  // a lower component owns the answer
    }
    matcher.set_exclude_triple(t);
    Result<std::optional<TermMap>> r = matcher.FindAny();
    out.steps += matcher.steps_used();
    if (!r.ok()) {
      out.budget_hit = true;
      continue;
    }
    if (r->has_value()) {
      out.fold = std::move(**r);
      return out;
    }
  }
  return out;
}

// One round of the proper-endomorphism search over a pinned-ordered
// list of components, aggregated exactly as the sequential engine
// would observe it.
struct SearchOutcome {
  // Index into `components` of the lowest component that found a fold,
  // or kNoWinner. The parallel engine may complete higher-indexed
  // searches too; those never override a lower winner.
  size_t winner = kNoWinner;
  std::optional<TermMap> fold;  // the winner's fold
  // Some pre-winner probe exhausted its budget (meaningful for the
  // round's return value only when there is no winner, mirroring the
  // sequential engine's latch-and-continue behaviour).
  bool budget_hit = false;
  // Components below the winner refuted completely within budget — the
  // exact set the sequential engine proves lean this round.
  std::vector<size_t> refuted;
  uint64_t steps_used = 0;         // deterministic: pre-winner + winner
  uint64_t steps_speculative = 0;  // parallel-only post-winner probing
};

SearchOutcome SearchAllComponents(
    const std::vector<const std::vector<Triple>*>& components, const Graph& g,
    const MatchOptions& options) {
  SearchOutcome out;
  std::vector<ComponentResult> results(components.size());
  const bool parallel = options.pool != nullptr &&
                        options.pool->num_threads() > 0 &&
                        components.size() >= 2;
  if (parallel) {
    // Component matchers resolve index ranges concurrently; build the
    // lazy permutations once, here, instead of racing there.
    g.WarmIndexes();
    // Lowest component index that found a fold so far. Only components
    // *above* it are cancelled, so every component at or below the final
    // minimum runs to its own deterministic completion — the winner (and
    // its fold) is therefore the sequential one at any worker count.
    std::atomic<size_t> first_found{kNoWinner};
    TaskGroup group(options.pool);
    for (size_t c = 0; c < components.size(); ++c) {
      group.Run([c, &components, &g, &options, &results, &first_found] {
        if (first_found.load(std::memory_order_relaxed) < c) return;
        ComponentResult r =
            SearchComponent(*components[c], g, options, &first_found, c);
        if (r.fold.has_value()) {
          size_t cur = first_found.load(std::memory_order_relaxed);
          while (cur > c && !first_found.compare_exchange_weak(
                                cur, c, std::memory_order_relaxed)) {
          }
        }
        results[c] = std::move(r);
      });
    }
    group.Wait();
  } else {
    for (size_t c = 0; c < components.size(); ++c) {
      results[c] = SearchComponent(*components[c], g, options,
                                   /*first_found=*/nullptr, 0);
      if (results[c].fold.has_value()) break;  // pinned order: lowest wins
    }
  }

  for (size_t c = 0; c < results.size(); ++c) {
    if (results[c].fold.has_value()) {
      out.winner = c;
      break;
    }
  }
  for (size_t c = 0; c < results.size(); ++c) {
    ComponentResult& r = results[c];
    if (c < out.winner) {  // everything when there is no winner
      out.steps_used += r.steps;
      if (r.budget_hit) {
        out.budget_hit = true;
      } else {
        out.refuted.push_back(c);
      }
    } else if (c == out.winner) {
      out.steps_used += r.steps;
      out.fold = std::move(r.fold);
    } else {
      out.steps_speculative += r.steps;  // speculation past the winner
    }
  }
  return out;
}

// One-sided unification: can some map (blanks of `pattern` free, ground
// terms fixed) send `pattern` onto `target`? The insert-eviction test:
// a new fold of a cached component must map one of its triples onto a
// newly derived triple, which requires exactly this.
bool UnifiesOnto(const Triple& pattern, const Triple& target) {
  auto pos_ok = [](Term pat, Term tgt) {
    return pat.IsBlank() || pat == tgt;
  };
  return pos_ok(pattern.s, target.s) && pos_ok(pattern.p, target.p) &&
         pos_ok(pattern.o, target.o);
}

}  // namespace

// --- LeanCache -------------------------------------------------------

bool LeanCache::Lookup(const std::vector<Triple>& component,
                       uint64_t consumer_erase_stamp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(component);
  if (it == entries_.end() || it->second > consumer_erase_stamp) {
    ++counters_.misses;
    return false;
  }
  ++counters_.cross_hits;
  return true;
}

void LeanCache::Insert(const std::vector<Triple>& component,
                       uint64_t prover_version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (prover_version != version_) {
    // The prover refuted against an older closure; newer inserts were
    // never checked against this entry — drop it.
    ++counters_.stale_rejects;
    return;
  }
  entries_.emplace(component, erase_stamp_);
  ++counters_.writes;
}

void LeanCache::OnInsertDelta(const std::vector<Triple>& derived,
                              uint64_t new_version) {
  std::lock_guard<std::mutex> lock(mu_);
  version_ = new_version;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool endangered = false;
    for (const Triple& c : it->first) {
      for (const Triple& d : derived) {
        if (UnifiesOnto(c, d)) {
          endangered = true;
          break;
        }
      }
      if (endangered) break;
    }
    if (endangered) {
      it = entries_.erase(it);
      ++counters_.evictions;
    } else {
      ++it;
    }
  }
}

void LeanCache::OnEraseDelta(uint64_t new_version) {
  std::lock_guard<std::mutex> lock(mu_);
  version_ = new_version;
  ++erase_stamp_;
}

void LeanCache::Clear(uint64_t new_version) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  version_ = new_version;
  ++erase_stamp_;  // fence off consumers published before the clear
  ++counters_.clears;
}

LeanCacheStats LeanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LeanCacheStats s = counters_;
  s.entries = entries_.size();
  s.erase_stamp = erase_stamp_;
  return s;
}

Result<std::optional<TermMap>> FindProperEndomorphism(const Graph& g,
                                                      MatchOptions options) {
  std::vector<std::vector<Triple>> components = BlankComponents(g);
  std::vector<const std::vector<Triple>*> targets;
  targets.reserve(components.size());
  for (const std::vector<Triple>& c : components) targets.push_back(&c);
  SearchOutcome out = SearchAllComponents(targets, g, options);
  if (out.fold.has_value()) return std::move(out.fold);
  if (out.budget_hit) {
    return Status::LimitExceeded("proper-endomorphism search budget hit");
  }
  return std::optional<TermMap>(std::nullopt);
}

bool IsLean(const Graph& g, ThreadPool* pool) {
  MatchOptions options;
  options.pool = pool;
  Result<std::optional<TermMap>> r = FindProperEndomorphism(g, options);
  SWDB_CHECK(r.ok(),
             "leanness step budget exhausted; use FindProperEndomorphism "
             "with explicit MatchOptions for graceful degradation");
  return !r->has_value();
}

Result<Graph> CoreChecked(const Graph& g, MatchOptions options,
                          TermMap* witness, CoreStats* stats,
                          LeanCacheRef shared) {
  Graph current = g;
  TermMap composed;
  CoreStats local;
  // Components proven lean in an earlier round stay lean: a fold is the
  // identity outside its own component, so every other component's
  // triples survive verbatim, and the graph only ever shrinks — a
  // shrinking target can lose homomorphisms but never gain one. (Nor
  // can components merge: folds add no triples, so blanks never become
  // newly connected.) Only refutations the sequential engine would also
  // have run are cached — never speculative parallel ones — so the
  // folding sequence and the budget accounting stay worker-count-
  // invariant.
  std::unordered_set<std::vector<Triple>, TripleVecHash> proven_lean;
  for (;;) {
    ++local.iterations;
    // Only round 1 refutes against the full input graph; later rounds
    // run on folded remnants, whose refutations don't imply leanness in
    // anyone else's graph — they stay run-local.
    const bool first_round = local.iterations == 1;
    std::vector<std::vector<Triple>> components = BlankComponents(current);
    std::vector<const std::vector<Triple>*> targets;
    targets.reserve(components.size());
    for (const std::vector<Triple>& c : components) {
      if (proven_lean.count(c) != 0) {
        ++local.lean_cache_hits;
        continue;
      }
      if (shared.cache != nullptr &&
          shared.cache->Lookup(c, shared.erase_stamp)) {
        // Cross-epoch hit: some earlier run refuted this exact
        // component against a graph ours is a guarded subset of.
        ++local.lean_cache_cross_hits;
        proven_lean.insert(c);
        continue;
      }
      targets.push_back(&c);
    }
    SearchOutcome out = SearchAllComponents(targets, current, options);
    local.steps_used += out.steps_used;
    local.steps_speculative += out.steps_speculative;
    local.components_searched +=
        out.winner == kNoWinner ? targets.size() : out.winner + 1;
    for (size_t idx : out.refuted) {
      proven_lean.insert(*targets[idx]);
      if (shared.cache != nullptr && first_round) {
        shared.cache->Insert(*targets[idx], shared.version);
      }
    }
    if (!out.fold.has_value()) {
      if (out.budget_hit) {
        if (stats != nullptr) *stats = local;
        return Status::LimitExceeded("proper-endomorphism search budget hit");
      }
      break;  // lean: done
    }
    ++local.folds;
    composed = composed.ComposeWith(*out.fold);
    current = out.fold->Apply(current);
  }
  if (witness != nullptr) *witness = composed;
  if (stats != nullptr) *stats = local;
  return current;
}

Graph Core(const Graph& g, TermMap* witness, ThreadPool* pool,
           LeanCacheRef shared) {
  MatchOptions options;
  options.pool = pool;
  Result<Graph> r = CoreChecked(g, options, witness, /*stats=*/nullptr,
                                shared);
  SWDB_CHECK(r.ok(),
             "core step budget exhausted; use CoreChecked for graceful "
             "degradation");
  return *std::move(r);
}

}  // namespace swdb
