#include "normal/core.h"

#include <cassert>
#include <functional>
#include <unordered_map>

#include "util/check.h"

namespace swdb {

namespace {

// Groups the non-ground triples of g by blank-connected component: two
// blanks are connected when they share a triple. A proper endomorphism
// restricted to one component (identity elsewhere) is still a proper
// endomorphism, so leanness can be decided one component at a time with
// component-sized patterns instead of whole-graph patterns.
std::vector<std::vector<Triple>> BlankComponents(const Graph& g) {
  std::unordered_map<Term, Term> parent;
  std::function<Term(Term)> find = [&](Term x) -> Term {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) return x;
    Term root = find(it->second);
    parent[x] = root;
    return root;
  };
  auto unite = [&](Term a, Term b) {
    Term ra = find(a);
    Term rb = find(b);
    if (ra != rb) parent[ra] = rb;
  };
  for (const Triple& t : g) {
    if (t.s.IsBlank() && t.o.IsBlank()) unite(t.s, t.o);
  }
  std::unordered_map<Term, size_t> component_index;
  std::vector<std::vector<Triple>> components;
  for (const Triple& t : g) {
    if (t.IsGround()) continue;
    Term representative = find(t.s.IsBlank() ? t.s : t.o);
    auto [it, inserted] =
        component_index.try_emplace(representative, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(t);
  }
  return components;
}

}  // namespace

Result<std::optional<TermMap>> FindProperEndomorphism(const Graph& g,
                                                      MatchOptions options) {
  // μ(g) ⊊ g iff μ(g) ⊆ g \ {t} for some triple t; ground triples map to
  // themselves so t must be non-ground, and the search can be confined
  // to t's blank-connected component.
  bool budget_hit = false;
  for (const std::vector<Triple>& component : BlankComponents(g)) {
    // One compiled matcher per component; only the excluded triple
    // changes between probes.
    PatternMatcher matcher(component, &g, options);
    for (const Triple& t : component) {
      matcher.set_exclude_triple(t);
      Result<std::optional<TermMap>> r = matcher.FindAny();
      if (!r.ok()) {
        budget_hit = true;
        continue;
      }
      if (r->has_value()) return *r;
    }
  }
  if (budget_hit) {
    return Status::LimitExceeded("proper-endomorphism search budget hit");
  }
  return std::optional<TermMap>(std::nullopt);
}

bool IsLean(const Graph& g) {
  Result<std::optional<TermMap>> r = FindProperEndomorphism(g);
  SWDB_CHECK(r.ok(),
             "leanness step budget exhausted; use FindProperEndomorphism "
             "with explicit MatchOptions for graceful degradation");
  return !r->has_value();
}

Result<Graph> CoreChecked(const Graph& g, MatchOptions options,
                          TermMap* witness) {
  Graph current = g;
  TermMap composed;
  for (;;) {
    Result<std::optional<TermMap>> r =
        FindProperEndomorphism(current, options);
    if (!r.ok()) return r.status();
    if (!r->has_value()) break;
    composed = composed.ComposeWith(**r);
    current = (*r)->Apply(current);
  }
  if (witness != nullptr) *witness = composed;
  return current;
}

Graph Core(const Graph& g, TermMap* witness) {
  Result<Graph> r = CoreChecked(g, MatchOptions(), witness);
  SWDB_CHECK(r.ok(),
             "core step budget exhausted; use CoreChecked for graceful "
             "degradation");
  return *std::move(r);
}

}  // namespace swdb
