#ifndef SWDB_NORMAL_CORE_H_
#define SWDB_NORMAL_CORE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/status.h"

namespace swdb {

class ThreadPool;

/// Groups the non-ground triples of g by blank-connected component: two
/// blanks are connected when they share a triple. A proper endomorphism
/// restricted to one component (identity elsewhere) is still a proper
/// endomorphism, and conversely a proper endomorphism of g restricts to
/// a fold of the component owning a dropped triple, so leanness can be
/// decided one component at a time with component-sized patterns.
/// Components are returned in a pinned deterministic order (first
/// appearance in g's triple order) with each component's triples in g's
/// order — the order every core/leanness engine in this file, parallel
/// or not, commits to.
std::vector<std::vector<Triple>> BlankComponents(const Graph& g);

/// Counters for one Core/CoreChecked run. `steps_used` and every other
/// field except `steps_speculative` are *deterministic*: they depend
/// only on the input graph and MatchOptions, never on the worker count,
/// and equal the sequential engine's values exactly (the parallel
/// engine's extra speculative probing is reported separately).
struct CoreStats {
  /// Proper endomorphisms found and applied (folding sequence length).
  uint64_t folds = 0;
  /// FindProperEndomorphism rounds: folds + the final lean confirmation
  /// (or the round that exhausted the budget).
  uint64_t iterations = 0;
  /// Component fold searches whose outcome the run consumed (refuted
  /// components up to each round's winner, plus the winner itself).
  uint64_t components_searched = 0;
  /// Component searches skipped because an earlier round already proved
  /// the identical component lean (folds only shrink the graph and never
  /// touch other components, so leanness persists).
  uint64_t lean_cache_hits = 0;
  /// Matcher steps consumed by the searches counted in
  /// components_searched — bit-identical to the sequential engine.
  uint64_t steps_used = 0;
  /// Matcher steps the parallel engine spent on components at indexes
  /// above a round's winner (work the sequential engine never starts).
  /// Always 0 without a pool; the only worker-count-dependent field.
  uint64_t steps_speculative = 0;
  /// Component searches skipped because a *cross-epoch* LeanCache entry
  /// (see LeanCacheRef) proved the identical component lean in an
  /// earlier run. Deterministic given the same cache state and input —
  /// lookups happen before any search is launched, so the count never
  /// depends on the worker count.
  uint64_t lean_cache_cross_hits = 0;
};

/// Content hash of a component's pinned-order triple vector — the
/// LeanCache / in-run proven-lean key. Folds never add triples, so an
/// untouched component reappears verbatim across rounds and epochs.
struct TripleVecHash {
  size_t operator()(const std::vector<Triple>& v) const {
    uint64_t h = 0x9E3779B97F4A7C15ull ^ v.size();
    for (const Triple& t : v) {
      for (uint64_t bits : {t.s.bits(), t.p.bits(), t.o.bits()}) {
        h ^= bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        h *= 0xFF51AFD7ED558CCDull;
      }
    }
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

/// LeanCache observability snapshot (LeanCache::stats).
struct LeanCacheStats {
  uint64_t cross_hits = 0;     ///< lookups served from the cache
  uint64_t misses = 0;         ///< lookups not served
  uint64_t writes = 0;         ///< entries accepted
  uint64_t stale_rejects = 0;  ///< writes dropped (prover behind)
  uint64_t evictions = 0;      ///< entries killed by an insert delta
  uint64_t clears = 0;         ///< full invalidations
  size_t entries = 0;          ///< live entries right now
  uint64_t erase_stamp = 0;    ///< current global erase stamp
};

/// A cross-epoch proven-lean component cache, shared between the writer
/// and every published snapshot of one Database. An entry says: this
/// blank component, verbatim, folds into no subset of the closure graph
/// it was proven against.
///
/// Soundness across epochs rests on three rules (see DESIGN.md):
///  - Write rule: a refutation is accepted only if the prover's closure
///    version still equals the cache's current version (checked under
///    the cache mutex), and only round-1 refutations — proven against
///    the full closure, not a folded remnant — are ever offered.
///  - Insert rule: when an insert delta extends the closure, every
///    entry containing a triple that unifies with a derived triple
///    (the entry's blanks as wildcards) is evicted — a new fold must
///    map some component triple onto a new triple, so surviving
///    entries stay refuted.
///  - Erase rule: erases only shrink the graph, and leanness transfers
///    to subsets — entries survive. But a *lagging* consumer (an older
///    snapshot whose graph still contains the erased triples) must not
///    consume entries proven against the smaller graph: every erase
///    bumps a monotone stamp, entries record the stamp at write, and a
///    consumer accepts an entry only if its stamp is ≤ the consumer's.
///
/// All methods are thread-safe (one mutex; lookups are a hash probe).
class LeanCache {
 public:
  LeanCache() = default;
  LeanCache(const LeanCache&) = delete;
  LeanCache& operator=(const LeanCache&) = delete;

  /// True if `component` is cached as lean and valid for a consumer
  /// whose graph carries `consumer_erase_stamp`.
  bool Lookup(const std::vector<Triple>& component,
              uint64_t consumer_erase_stamp) const;

  /// Offers a round-1 refutation proven against closure version
  /// `prover_version`; dropped silently if the cache has moved on.
  void Insert(const std::vector<Triple>& component, uint64_t prover_version);

  /// Applies an insert delta: advances to `new_version` and evicts
  /// every entry a derived triple could extend into a fold.
  void OnInsertDelta(const std::vector<Triple>& derived,
                     uint64_t new_version);

  /// Applies an erase: advances to `new_version` and bumps the global
  /// erase stamp (entries survive; lagging consumers are fenced off).
  void OnEraseDelta(uint64_t new_version);

  /// Full invalidation (closure rebuilt or dropped): clears entries,
  /// adopts `new_version`, and bumps the erase stamp so entries written
  /// afterwards are invisible to consumers published before the clear.
  void Clear(uint64_t new_version);

  LeanCacheStats stats() const;

 private:
  mutable std::mutex mu_;
  // component -> erase stamp at write time
  std::unordered_map<std::vector<Triple>, uint64_t, TripleVecHash> entries_;
  uint64_t version_ = 0;
  uint64_t erase_stamp_ = 0;
  mutable LeanCacheStats counters_;
};

/// How a Core/CoreChecked run consumes a shared LeanCache: `version` and
/// `erase_stamp` are the closure version and erase stamp of the graph
/// the caller is normalizing, captured when that graph was. A default
/// (null cache) ref disables cross-epoch caching entirely.
struct LeanCacheRef {
  LeanCache* cache = nullptr;
  uint64_t version = 0;
  uint64_t erase_stamp = 0;
};

/// Searches for a map μ with μ(g) a *proper* subgraph of g (the witness
/// that g is not lean, Def. 3.7). Since ground triples are fixed by every
/// map, μ(g) ⊊ g forces some non-ground triple out of the image, so the
/// search tries, for each non-ground triple t, to map t's blank component
/// into g \ {t}. Returns std::nullopt if g is lean. Deciding this is
/// coNP-complete (paper Thm 3.12(1)); `options.max_steps` bounds each
/// per-triple probe, exactly as one PatternMatcher::FindAny budget.
///
/// A non-null `options.pool` fans the per-component searches out across
/// the pool, one task and one compiled matcher per component, with
/// first-found cancellation: a component aborts once a lower-indexed
/// component has found a fold, and the fold returned is always the one
/// the lowest folding component finds first in probe order — i.e. the
/// sequential engine's fold, bit for bit. Per-probe budgets are kept
/// per-probe rather than pooled so budget exhaustion is also bit-exact
/// at any worker count (see DESIGN.md). `options.stats` is ignored (the
/// search runs many probes; use CoreStats on CoreChecked instead).
Result<std::optional<TermMap>> FindProperEndomorphism(
    const Graph& g, MatchOptions options = MatchOptions());

/// True iff g is lean: no map μ sends g to a proper subgraph of itself
/// (paper Def. 3.7). Asserts the step budget is not exhausted. A
/// non-null pool parallelizes over blank components.
bool IsLean(const Graph& g, ThreadPool* pool = nullptr);

/// Computes core(g): the unique (up to isomorphism) lean subgraph of g
/// that is an instance of g (paper Thm 3.10). Every graph is equivalent
/// to its core. If `witness` is non-null it receives the composed map μ
/// with μ(g) = core(g). A non-null pool parallelizes each round's
/// component searches; the result (graph, witness, folding sequence) is
/// bit-identical to the sequential computation.
/// A non-default `shared` ref consults (and feeds) a cross-epoch
/// LeanCache; the resulting graph is bit-identical with or without it —
/// cached components are lean, so skipping their searches changes no
/// fold — only the work done differs.
Graph Core(const Graph& g, TermMap* witness = nullptr,
           ThreadPool* pool = nullptr, LeanCacheRef shared = {});

/// Budget-aware variant of Core for adversarial inputs (computing cores
/// is DP-hard to even verify, paper Thm 3.12(2)). Parallelism comes via
/// `options.pool`; whether the budget is exhausted — and every CoreStats
/// field except steps_speculative — does not depend on the worker count
/// (a shared LeanCache can change the budget outcome between *runs*, by
/// skipping searches, but never between worker counts within one run).
Result<Graph> CoreChecked(const Graph& g, MatchOptions options,
                          TermMap* witness = nullptr,
                          CoreStats* stats = nullptr,
                          LeanCacheRef shared = {});

}  // namespace swdb

#endif  // SWDB_NORMAL_CORE_H_
