#ifndef SWDB_NORMAL_CORE_H_
#define SWDB_NORMAL_CORE_H_

#include <optional>

#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/status.h"

namespace swdb {

/// Searches for a map μ with μ(g) a *proper* subgraph of g (the witness
/// that g is not lean, Def. 3.7). Since ground triples are fixed by every
/// map, μ(g) ⊊ g forces some non-ground triple out of the image, so the
/// search tries, for each non-ground triple t, to map g into g \ {t}.
/// Returns std::nullopt if g is lean. Deciding this is coNP-complete
/// (paper Thm 3.12(1)); `options.max_steps` bounds the search.
Result<std::optional<TermMap>> FindProperEndomorphism(
    const Graph& g, MatchOptions options = MatchOptions());

/// True iff g is lean: no map μ sends g to a proper subgraph of itself
/// (paper Def. 3.7). Asserts the step budget is not exhausted.
bool IsLean(const Graph& g);

/// Computes core(g): the unique (up to isomorphism) lean subgraph of g
/// that is an instance of g (paper Thm 3.10). Every graph is equivalent
/// to its core. If `witness` is non-null it receives the composed map μ
/// with μ(g) = core(g).
Graph Core(const Graph& g, TermMap* witness = nullptr);

/// Budget-aware variant of Core for adversarial inputs (computing cores
/// is DP-hard to even verify, paper Thm 3.12(2)).
Result<Graph> CoreChecked(const Graph& g, MatchOptions options,
                          TermMap* witness = nullptr);

}  // namespace swdb

#endif  // SWDB_NORMAL_CORE_H_
