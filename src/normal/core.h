#ifndef SWDB_NORMAL_CORE_H_
#define SWDB_NORMAL_CORE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/status.h"

namespace swdb {

class ThreadPool;

/// Groups the non-ground triples of g by blank-connected component: two
/// blanks are connected when they share a triple. A proper endomorphism
/// restricted to one component (identity elsewhere) is still a proper
/// endomorphism, and conversely a proper endomorphism of g restricts to
/// a fold of the component owning a dropped triple, so leanness can be
/// decided one component at a time with component-sized patterns.
/// Components are returned in a pinned deterministic order (first
/// appearance in g's triple order) with each component's triples in g's
/// order — the order every core/leanness engine in this file, parallel
/// or not, commits to.
std::vector<std::vector<Triple>> BlankComponents(const Graph& g);

/// Counters for one Core/CoreChecked run. `steps_used` and every other
/// field except `steps_speculative` are *deterministic*: they depend
/// only on the input graph and MatchOptions, never on the worker count,
/// and equal the sequential engine's values exactly (the parallel
/// engine's extra speculative probing is reported separately).
struct CoreStats {
  /// Proper endomorphisms found and applied (folding sequence length).
  uint64_t folds = 0;
  /// FindProperEndomorphism rounds: folds + the final lean confirmation
  /// (or the round that exhausted the budget).
  uint64_t iterations = 0;
  /// Component fold searches whose outcome the run consumed (refuted
  /// components up to each round's winner, plus the winner itself).
  uint64_t components_searched = 0;
  /// Component searches skipped because an earlier round already proved
  /// the identical component lean (folds only shrink the graph and never
  /// touch other components, so leanness persists).
  uint64_t lean_cache_hits = 0;
  /// Matcher steps consumed by the searches counted in
  /// components_searched — bit-identical to the sequential engine.
  uint64_t steps_used = 0;
  /// Matcher steps the parallel engine spent on components at indexes
  /// above a round's winner (work the sequential engine never starts).
  /// Always 0 without a pool; the only worker-count-dependent field.
  uint64_t steps_speculative = 0;
};

/// Searches for a map μ with μ(g) a *proper* subgraph of g (the witness
/// that g is not lean, Def. 3.7). Since ground triples are fixed by every
/// map, μ(g) ⊊ g forces some non-ground triple out of the image, so the
/// search tries, for each non-ground triple t, to map t's blank component
/// into g \ {t}. Returns std::nullopt if g is lean. Deciding this is
/// coNP-complete (paper Thm 3.12(1)); `options.max_steps` bounds each
/// per-triple probe, exactly as one PatternMatcher::FindAny budget.
///
/// A non-null `options.pool` fans the per-component searches out across
/// the pool, one task and one compiled matcher per component, with
/// first-found cancellation: a component aborts once a lower-indexed
/// component has found a fold, and the fold returned is always the one
/// the lowest folding component finds first in probe order — i.e. the
/// sequential engine's fold, bit for bit. Per-probe budgets are kept
/// per-probe rather than pooled so budget exhaustion is also bit-exact
/// at any worker count (see DESIGN.md). `options.stats` is ignored (the
/// search runs many probes; use CoreStats on CoreChecked instead).
Result<std::optional<TermMap>> FindProperEndomorphism(
    const Graph& g, MatchOptions options = MatchOptions());

/// True iff g is lean: no map μ sends g to a proper subgraph of itself
/// (paper Def. 3.7). Asserts the step budget is not exhausted. A
/// non-null pool parallelizes over blank components.
bool IsLean(const Graph& g, ThreadPool* pool = nullptr);

/// Computes core(g): the unique (up to isomorphism) lean subgraph of g
/// that is an instance of g (paper Thm 3.10). Every graph is equivalent
/// to its core. If `witness` is non-null it receives the composed map μ
/// with μ(g) = core(g). A non-null pool parallelizes each round's
/// component searches; the result (graph, witness, folding sequence) is
/// bit-identical to the sequential computation.
Graph Core(const Graph& g, TermMap* witness = nullptr,
           ThreadPool* pool = nullptr);

/// Budget-aware variant of Core for adversarial inputs (computing cores
/// is DP-hard to even verify, paper Thm 3.12(2)). Parallelism comes via
/// `options.pool`; whether the budget is exhausted — and every CoreStats
/// field except steps_speculative — does not depend on the worker count.
Result<Graph> CoreChecked(const Graph& g, MatchOptions options,
                          TermMap* witness = nullptr,
                          CoreStats* stats = nullptr);

}  // namespace swdb

#endif  // SWDB_NORMAL_CORE_H_
