#include "normal/minimal.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>

#include "inference/closure.h"
#include "rdf/hom.h"
#include "util/check.h"
#include "util/rng.h"

namespace swdb {

using vocab::kSc;
using vocab::kSp;

bool HasReservedVocabInSubjectOrObject(const Graph& g) {
  for (const Triple& t : g) {
    if (vocab::IsRdfsVocab(t.s) || vocab::IsRdfsVocab(t.o)) return true;
  }
  return false;
}

namespace {

// DFS cycle detection over the explicit edges of the given predicate,
// ignoring self-loops.
bool PredicateDigraphHasCycle(const Graph& g, Term predicate) {
  std::unordered_map<Term, std::vector<Term>> adjacency;
  for (const Triple& t : g) {
    if (t.p == predicate && t.s != t.o) adjacency[t.s].push_back(t.o);
  }
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<Term, Color> color;
  // Iterative DFS with explicit stack of (node, next-child-index).
  for (const auto& [start, unused] : adjacency) {
    (void)unused;
    if (color.count(start)) continue;
    std::vector<std::pair<Term, size_t>> stack{{start, 0}};
    color[start] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      auto it = adjacency.find(node);
      size_t degree = it == adjacency.end() ? 0 : it->second.size();
      if (child == degree) {
        color[node] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      Term next = it->second[child++];
      auto c = color.find(next);
      if (c == color.end()) {
        color[next] = Color::kGray;
        stack.push_back({next, 0});
      } else if (c->second == Color::kGray) {
        return true;
      }
    }
  }
  return false;
}

// G' ⊆ G is equivalent to G iff G' ⊨ G (the other direction holds for
// every subgraph), i.e. iff G maps into RDFS-cl(G'). The matcher holds
// the compiled pattern G and is re-pointed at each candidate's closure,
// so the pattern is compiled once per minimization, not once per probe.
bool SubgraphStillEquivalent(PatternMatcher* g_matcher,
                             const Graph& subgraph) {
  Graph closure = RdfsClosure(subgraph);
  g_matcher->set_target(&closure);
  Result<std::optional<TermMap>> r = g_matcher->FindAny();
  SWDB_CHECK(r.ok(),
             "minimal-representation entailment budget exhausted; raise "
             "MatchOptions::max_steps");
  return r->has_value();
}

}  // namespace

bool IsAcyclicScSp(const Graph& g) {
  return !PredicateDigraphHasCycle(g, kSc) &&
         !PredicateDigraphHasCycle(g, kSp);
}

Graph MinimalRepresentation(const Graph& g, uint64_t order_seed) {
  std::vector<Triple> order(g.begin(), g.end());
  Rng rng(order_seed);
  rng.Shuffle(&order);

  Graph current = g;
  PatternMatcher g_matcher(g, &g);
  for (const Triple& t : order) {
    Graph without = current;
    without.Erase(t);
    if (SubgraphStillEquivalent(&g_matcher, without)) {
      current = std::move(without);
    }
  }
  return current;
}

std::vector<Graph> AllMinimumRepresentations(const Graph& g) {
  assert(g.size() <= 24 && "exhaustive enumeration limited to 24 triples");
  const std::vector<Triple>& triples = g.triples();
  const size_t n = triples.size();
  size_t best = n + 1;
  std::vector<Graph> result;
  PatternMatcher g_matcher(g, &g);
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    size_t bits = static_cast<size_t>(__builtin_popcountll(mask));
    if (bits > best) continue;
    std::vector<Triple> subset;
    subset.reserve(bits);
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) subset.push_back(triples[i]);
    }
    Graph candidate(std::move(subset));
    if (!SubgraphStillEquivalent(&g_matcher, candidate)) continue;
    if (bits < best) {
      best = bits;
      result.clear();
    }
    result.push_back(std::move(candidate));
  }
  return result;
}

}  // namespace swdb
