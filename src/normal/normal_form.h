#ifndef SWDB_NORMAL_NORMAL_FORM_H_
#define SWDB_NORMAL_NORMAL_FORM_H_

#include "rdf/graph.h"
#include "util/status.h"

namespace swdb {

class ThreadPool;

/// Computes nf(G) = core(cl(G)) (paper Def. 3.18): the core of the RDFS
/// closure. The normal form is unique up to isomorphism and syntax
/// independent: G ≡ H iff nf(G) ≅ nf(H) (paper Thm 3.19). A non-null
/// pool runs both halves on it — the round-based parallel closure and
/// the component-parallel core — and produces the exact graph the
/// sequential computation produces, at any worker count.
Graph NormalForm(const Graph& g, ThreadPool* pool = nullptr);

/// Decides whether `candidate` is (isomorphic to) the normal form of g —
/// the DP-complete problem of paper Thm 3.20.
bool IsNormalFormOf(const Graph& candidate, const Graph& g);

}  // namespace swdb

#endif  // SWDB_NORMAL_NORMAL_FORM_H_
