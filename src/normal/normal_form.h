#ifndef SWDB_NORMAL_NORMAL_FORM_H_
#define SWDB_NORMAL_NORMAL_FORM_H_

#include "rdf/graph.h"
#include "util/status.h"

namespace swdb {

/// Computes nf(G) = core(cl(G)) (paper Def. 3.18): the core of the RDFS
/// closure. The normal form is unique up to isomorphism and syntax
/// independent: G ≡ H iff nf(G) ≅ nf(H) (paper Thm 3.19).
Graph NormalForm(const Graph& g);

/// Decides whether `candidate` is (isomorphic to) the normal form of g —
/// the DP-complete problem of paper Thm 3.20.
bool IsNormalFormOf(const Graph& candidate, const Graph& g);

}  // namespace swdb

#endif  // SWDB_NORMAL_NORMAL_FORM_H_
