#include "normal/normal_form.h"

#include "inference/closure.h"
#include "normal/core.h"
#include "rdf/iso.h"

namespace swdb {

Graph NormalForm(const Graph& g, ThreadPool* pool) {
  if (pool == nullptr) return Core(RdfsClosure(g));
  return Core(RdfsClosureParallel(g, pool), /*witness=*/nullptr, pool);
}

bool IsNormalFormOf(const Graph& candidate, const Graph& g) {
  return AreIsomorphic(candidate, NormalForm(g));
}

}  // namespace swdb
