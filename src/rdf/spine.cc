#include "rdf/spine.h"

#include <algorithm>
#include <unordered_set>

namespace swdb {

namespace {

// Lexicographic lower bound of `key` within one leaf's columns.
size_t LeafLowerBound(const SpineLeaf& leaf, const SpineKey& key) {
  size_t lo = 0, hi = leaf.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    bool less;
    if (leaf.k0[mid] != key[0]) {
      less = leaf.k0[mid] < key[0];
    } else if (leaf.k1[mid] != key[1]) {
      less = leaf.k1[mid] < key[1];
    } else {
      less = leaf.k2[mid] < key[2];
    }
    if (less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool LeafKeyEquals(const SpineLeaf& leaf, size_t i, const SpineKey& key) {
  return leaf.k0[i] == key[0] && leaf.k1[i] == key[1] &&
         leaf.k2[i] == key[2];
}

template <typename Col>
void InsertAt(Col& col, size_t slot, uint32_t v) {
  col.insert(col.begin() + static_cast<std::ptrdiff_t>(slot), v);
}
template <typename Col>
void EraseAt(Col& col, size_t slot) {
  col.erase(col.begin() + static_cast<std::ptrdiff_t>(slot));
}

}  // namespace

size_t Spine::bytes() const {
  size_t total = leaves_.capacity() * sizeof(leaves_[0]) +
                 starts_.capacity() * sizeof(size_t);
  for (const auto& leaf : leaves_) total += leaf->bytes();
  return total;
}

void Spine::Clear() {
  leaves_.clear();
  starts_.clear();
  size_ = 0;
}

void Spine::BulkBuild(const std::vector<SpineKey>& entries) {
  Clear();
  const size_t fill = kLeafMax / 2;
  const size_t n = entries.size();
  leaves_.reserve((n + fill - 1) / fill);
  starts_.reserve(leaves_.capacity());
  for (size_t base = 0; base < n; base += fill) {
    const size_t count = std::min(fill, n - base);
    auto leaf = std::make_shared<SpineLeaf>();
    leaf->k0.reserve(count);
    leaf->k1.reserve(count);
    leaf->k2.reserve(count);
    for (size_t i = base; i < base + count; ++i) {
      leaf->k0.push_back(entries[i][0]);
      leaf->k1.push_back(entries[i][1]);
      leaf->k2.push_back(entries[i][2]);
    }
    starts_.push_back(base);
    leaves_.push_back(std::move(leaf));
  }
  size_ = n;
}

size_t Spine::LeafForKey(const SpineKey& key) const {
  // Last leaf whose first key is <= key: partition the leaves by
  // "first key > key" and step back one.
  size_t lo = 0, hi = leaves_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const SpineLeaf& leaf = *leaves_[mid];
    const SpineKey first = leaf.at(0);
    if (first <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

bool Spine::Contains(const SpineKey& key) const {
  if (empty()) return false;
  const size_t li = LeafForKey(key);
  const SpineLeaf& leaf = *leaves_[li];
  const size_t slot = LeafLowerBound(leaf, key);
  return slot < leaf.size() && LeafKeyEquals(leaf, slot, key);
}

SpineLeaf* Spine::Mutable(size_t li) {
  if (leaves_[li].use_count() != 1) {
    leaves_[li] = std::make_shared<SpineLeaf>(*leaves_[li]);
  }
  return leaves_[li].get();
}

void Spine::Split(size_t li) {
  SpineLeaf& left = *leaves_[li];  // caller just made it unshared
  const size_t half = left.size() / 2;
  auto right = std::make_shared<SpineLeaf>();
  right->k0.assign(left.k0.begin() + half, left.k0.end());
  right->k1.assign(left.k1.begin() + half, left.k1.end());
  right->k2.assign(left.k2.begin() + half, left.k2.end());
  left.k0.resize(half);
  left.k1.resize(half);
  left.k2.resize(half);
  left.k0.shrink_to_fit();
  left.k1.shrink_to_fit();
  left.k2.shrink_to_fit();
  leaves_.insert(leaves_.begin() + static_cast<std::ptrdiff_t>(li) + 1,
                 std::move(right));
  starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(li) + 1,
                 starts_[li] + half);
}

bool Spine::Insert(const SpineKey& key) {
  if (empty()) {
    auto leaf = std::make_shared<SpineLeaf>();
    leaf->k0.push_back(key[0]);
    leaf->k1.push_back(key[1]);
    leaf->k2.push_back(key[2]);
    leaves_.push_back(std::move(leaf));
    starts_.push_back(0);
    size_ = 1;
    return true;
  }
  const size_t li = LeafForKey(key);
  {
    const SpineLeaf& leaf = *leaves_[li];
    const size_t slot = LeafLowerBound(leaf, key);
    if (slot < leaf.size() && LeafKeyEquals(leaf, slot, key)) return false;
  }
  SpineLeaf* leaf = Mutable(li);
  const size_t slot = LeafLowerBound(*leaf, key);
  InsertAt(leaf->k0, slot, key[0]);
  InsertAt(leaf->k1, slot, key[1]);
  InsertAt(leaf->k2, slot, key[2]);
  // Renumber the tail before any split: Split computes the new leaf's
  // start in post-insert numbering already.
  for (size_t j = li + 1; j < starts_.size(); ++j) ++starts_[j];
  if (leaf->size() > kLeafMax) Split(li);
  ++size_;
  return true;
}

bool Spine::Erase(const SpineKey& key) {
  if (empty()) return false;
  const size_t li = LeafForKey(key);
  {
    const SpineLeaf& leaf = *leaves_[li];
    const size_t slot = LeafLowerBound(leaf, key);
    if (slot == leaf.size() || !LeafKeyEquals(leaf, slot, key)) return false;
  }
  SpineLeaf* leaf = Mutable(li);
  const size_t slot = LeafLowerBound(*leaf, key);
  EraseAt(leaf->k0, slot);
  EraseAt(leaf->k1, slot);
  EraseAt(leaf->k2, slot);
  const bool emptied = leaf->size() == 0;
  if (emptied) {
    leaves_.erase(leaves_.begin() + static_cast<std::ptrdiff_t>(li));
    starts_.erase(starts_.begin() + static_cast<std::ptrdiff_t>(li));
  }
  for (size_t j = li + (emptied ? 0 : 1); j < starts_.size(); ++j) {
    --starts_[j];
  }
  --size_;
  return true;
}

SpineKey Spine::At(size_t slot) const {
  const size_t li = LeafIndexOf(slot);
  return leaves_[li]->at(slot - starts_[li]);
}

std::vector<SpineKey> Spine::Keys() const {
  std::vector<SpineKey> out;
  out.reserve(size_);
  for (const auto& leaf : leaves_) {
    for (size_t i = 0; i < leaf->size(); ++i) out.push_back(leaf->at(i));
  }
  return out;
}

size_t Spine::LeafIndexOf(size_t slot) const {
  // Last leaf whose start is <= slot.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), slot);
  return static_cast<size_t>(it - starts_.begin()) - 1;
}

size_t Spine::LowerBound(const SpineKey& key) const {
  if (empty()) return 0;
  const size_t li = LeafForKey(key);
  const size_t slot = LeafLowerBound(*leaves_[li], key);
  if (slot == leaves_[li]->size() && li + 1 < leaves_.size()) {
    return starts_[li + 1];
  }
  return starts_[li] + slot;
}

std::pair<size_t, size_t> Spine::EqualRange(uint32_t key0,
                                            const uint32_t* key1,
                                            size_t* scanned) const {
  // Column-wise equal_range in global slot space: each probe resolves
  // its leaf by binary search on starts_, so a probe is O(log leaves)
  // and a range O(log^2 n) — no row indirection, no leaf gathering.
  size_t probes = 0;
  auto col_at = [&](int c, size_t slot) -> uint32_t {
    ++probes;
    const size_t li = LeafIndexOf(slot);
    return leaves_[li]->column(c)[slot - starts_[li]];
  };
  auto bound = [&](int c, size_t lo, size_t hi, uint32_t key,
                   bool upper) -> size_t {
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      const uint32_t v = col_at(c, mid);
      if (upper ? v <= key : v < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  size_t lo = bound(0, 0, size_, key0, /*upper=*/false);
  size_t hi = bound(0, lo, size_, key0, /*upper=*/true);
  if (key1 != nullptr && lo < hi) {
    const size_t k1_lo = bound(1, lo, hi, *key1, /*upper=*/false);
    hi = bound(1, k1_lo, hi, *key1, /*upper=*/true);
    lo = k1_lo;
  }
  if (scanned != nullptr) *scanned += probes;
  return {lo, hi};
}

bool Spine::EqualContents(const Spine& other) const {
  if (size_ != other.size_) return false;
  size_t ai = 0, ao = 0;  // our leaf index / offset within it
  size_t bi = 0, bo = 0;  // theirs
  for (size_t done = 0; done < size_;) {
    const SpineLeaf& la = *leaves_[ai];
    const SpineLeaf& lb = *other.leaves_[bi];
    if (ao == 0 && bo == 0 && &la == &lb) {
      done += la.size();
      ++ai;
      ++bi;
      continue;
    }
    const size_t run = std::min(la.size() - ao, lb.size() - bo);
    const auto d = static_cast<std::ptrdiff_t>(run);
    if (!std::equal(la.k0.begin() + ao, la.k0.begin() + ao + d,
                    lb.k0.begin() + bo) ||
        !std::equal(la.k1.begin() + ao, la.k1.begin() + ao + d,
                    lb.k1.begin() + bo) ||
        !std::equal(la.k2.begin() + ao, la.k2.begin() + ao + d,
                    lb.k2.begin() + bo)) {
      return false;
    }
    ao += run;
    bo += run;
    done += run;
    if (ao == la.size()) {
      ++ai;
      ao = 0;
    }
    if (bo == lb.size()) {
      ++bi;
      bo = 0;
    }
  }
  return true;
}

size_t Spine::CountSharedLeavesWith(const Spine& other) const {
  std::unordered_set<const SpineLeaf*> theirs;
  theirs.reserve(other.leaves_.size() * 2);
  for (const auto& leaf : other.leaves_) theirs.insert(leaf.get());
  size_t shared = 0;
  for (const auto& leaf : leaves_) {
    if (theirs.count(leaf.get()) != 0) ++shared;
  }
  return shared;
}

}  // namespace swdb
