#ifndef SWDB_RDF_GRAPH_H_
#define SWDB_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"

namespace swdb {

/// The physical order that served a triple-pattern lookup. The graph
/// keeps the primary (s,p,o) vector plus three lazily built permutations
/// so that *every* combination of bound positions resolves to one
/// contiguous index range (no post-filtering):
///
///   bound positions          order        range key
///   s / s,p / s,p,o          kSpo         prefix of (s,p,o)
///   p                        kPso         prefix of (p,s,o)
///   p,o                      kPos         prefix of (p,o,s)
///   o / o,s                  kOsp         prefix of (o,s,p)
///   (none)                   kFullScan    all triples
enum class IndexOrder : uint8_t {
  kSpo = 0,
  kPso = 1,
  kPos = 2,
  kOsp = 3,
  kFullScan = 4,
};
inline constexpr size_t kNumIndexOrders = 5;

/// Short name of an index order ("spo", "pso", "pos", "osp", "scan").
const char* IndexOrderName(IndexOrder order);

/// Column index (0..2) holding triple position `pos` (0=s, 1=p, 2=o) of
/// a permutation order. E.g. for kPso the key sequence is (p,s,o): the
/// subject lives in column 1, the predicate in column 0, the object in
/// column 2. Only valid for the three permutation orders.
int ColumnOfPosition(IndexOrder order, int pos);

/// Structure-of-arrays columns backing one permutation index. Entry i of
/// the permutation is the triple triples_[row[i]]; (k0[i], k1[i], k2[i])
/// are its raw term bits (Term::bits) permuted into the order's key
/// sequence, and the columns are sorted lexicographically by (k0,k1,k2).
/// A bound-position lookup or residual filter is therefore a contiguous
/// sweep over ONE uint32_t column — the layout the vectorized kernels in
/// scan.h operate on — instead of a strided gather through 12-byte
/// Triple structs.
struct IndexColumns {
  std::vector<uint32_t> k0, k1, k2, row;

  size_t size() const { return row.size(); }
  size_t bytes() const {
    return (k0.capacity() + k1.capacity() + k2.capacity() + row.capacity()) *
           sizeof(uint32_t);
  }
  const std::vector<uint32_t>& key_column(int k) const {
    return k == 0 ? k0 : k == 1 ? k1 : k2;
  }
  void clear() {
    k0.clear();
    k1.clear();
    k2.clear();
    row.clear();
  }
};

/// A cumulative counter that tolerates concurrent readers: relaxed
/// atomic load/store (no RMW, so hot-path increments stay cheap), which
/// may drop updates when several threads bump it at once. Exact on the
/// single-threaded paths the tests and benches measure; best-effort
/// observability under the concurrent snapshot read path. Copyable so
/// Graph keeps its value semantics.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o) : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  void Add(uint64_t d) const {
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
  }
  void Reset() const { v_.store(0, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  mutable std::atomic<uint64_t> v_{0};
};

/// Storage and scan observability for one Graph, snapshotted by
/// Graph::Stats. Counters are cumulative since construction; byte sizes
/// reflect the current footprint.
struct GraphStats {
  uint64_t index_rebuilds = 0;   ///< full columnar index (re)builds
  uint64_t index_patches = 0;    ///< in-place single-mutation patches
  uint64_t index_drops = 0;      ///< crossover / bulk-load index drops
  uint64_t matches_calls = 0;    ///< Matches() lookups served
  uint64_t rows_scanned = 0;     ///< rows examined by lookup sweeps
  uint64_t rows_yielded = 0;     ///< rows in the returned ranges
  bool indexes_built = false;    ///< permutation columns currently valid
  size_t bytes_primary = 0;      ///< primary (s,p,o) triple vector
  size_t bytes_pso = 0;          ///< pso columns (0 until built)
  size_t bytes_pos = 0;          ///< pos columns
  size_t bytes_osp = 0;          ///< osp columns
  size_t bytes_total() const {
    return bytes_primary + bytes_pso + bytes_pos + bytes_osp;
  }
};

/// A resolved, contiguous range of triples matching a pattern — the
/// equal_range analogue of Graph::Match. Iterating a MatchRange touches
/// no hash table and performs no comparisons: every element is a match.
/// Permuted ranges iterate the columnar index directly (three contiguous
/// column streams, no gather through the primary vector). The range
/// stays valid until the graph is mutated.
class MatchRange {
 public:
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Triple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Triple*;
    using reference = const Triple&;

    const Triple& operator*() const {
      if (direct_ != nullptr) return *direct_;
      scratch_.s = Term::FromBits(col_s_[idx_]);
      scratch_.p = Term::FromBits(col_p_[idx_]);
      scratch_.o = Term::FromBits(col_o_[idx_]);
      return scratch_;
    }
    const Triple* operator->() const { return &**this; }
    const_iterator& operator++() {
      if (direct_ != nullptr) {
        ++direct_;
      } else {
        ++idx_;
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return direct_ == o.direct_ && idx_ == o.idx_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class MatchRange;
    const_iterator(const Triple* direct, const uint32_t* col_s,
                   const uint32_t* col_p, const uint32_t* col_o, size_t idx)
        : direct_(direct),
          col_s_(col_s),
          col_p_(col_p),
          col_o_(col_o),
          idx_(idx) {}

    const Triple* direct_;   // current element (direct mode), else nullptr
    const uint32_t* col_s_;  // per-position key columns (columnar mode)
    const uint32_t* col_p_;
    const uint32_t* col_o_;
    size_t idx_ = 0;         // current column slot (columnar mode)
    mutable Triple scratch_;  // materialization target of operator*
  };

  MatchRange() = default;

  /// A run [first, last) directly inside the primary triple vector.
  /// `base` is the primary vector's start (for row-id resolution).
  static MatchRange Direct(const Triple* base, const Triple* first,
                           const Triple* last, IndexOrder order) {
    MatchRange r;
    r.base_ = base;
    r.direct_first_ = first;
    r.direct_last_ = last;
    r.order_ = order;
    return r;
  }

  /// A run [first, last) of slots in a permutation's columns. `base` is
  /// the primary vector's start (cols->row[i] indexes into it).
  static MatchRange Columnar(const Triple* base, const IndexColumns* cols,
                             size_t first, size_t last, IndexOrder order) {
    MatchRange r;
    r.base_ = base;
    r.cols_ = cols;
    r.first_ = first;
    r.last_ = last;
    r.order_ = order;
    return r;
  }

  size_t size() const {
    return cols_ != nullptr
               ? last_ - first_
               : static_cast<size_t>(direct_last_ - direct_first_);
  }
  bool empty() const { return size() == 0; }
  IndexOrder order() const { return order_; }

  /// True when the range is backed by permutation columns, i.e. the
  /// Filter* fast paths run vectorized over contiguous columns.
  bool columnar() const { return cols_ != nullptr; }

  /// The triple at primary row id `row` (as emitted by the Filter*
  /// methods).
  const Triple& TripleAt(uint32_t row) const { return base_[row]; }

  /// Residual bound-position filter: appends to *out the primary row ids
  /// of the range elements whose position `pos` (0=s, 1=p, 2=o) holds
  /// `value`, in range order. Vectorized compare-and-compress over the
  /// backing column when columnar(); scalar sweep in direct mode.
  /// Returns the number of rows appended.
  size_t FilterBound(int pos, Term value, std::vector<uint32_t>* out) const;

  /// Repeated-position residual (e.g. pattern (X, p, X)): appends the
  /// primary row ids of elements whose positions `pos_a` and `pos_b`
  /// hold equal terms, in range order. Returns the number appended.
  size_t FilterPairEqual(int pos_a, int pos_b,
                         std::vector<uint32_t>* out) const;

  const_iterator begin() const {
    if (cols_ != nullptr) {
      return const_iterator(nullptr, col_of_pos(0), col_of_pos(1),
                            col_of_pos(2), first_);
    }
    return const_iterator(direct_first_, nullptr, nullptr, nullptr, 0);
  }
  const_iterator end() const {
    if (cols_ != nullptr) {
      return const_iterator(nullptr, col_of_pos(0), col_of_pos(1),
                            col_of_pos(2), last_);
    }
    return const_iterator(direct_last_, nullptr, nullptr, nullptr, 0);
  }

 private:
  const uint32_t* col_of_pos(int pos) const {
    return cols_->key_column(ColumnOfPosition(order_, pos)).data();
  }

  const Triple* base_ = nullptr;          // primary vector start
  const Triple* direct_first_ = nullptr;  // direct mode bounds
  const Triple* direct_last_ = nullptr;
  const IndexColumns* cols_ = nullptr;    // columnar mode backing
  size_t first_ = 0;                      // columnar mode slot bounds
  size_t last_ = 0;
  IndexOrder order_ = IndexOrder::kFullScan;
};

/// An RDF graph: a finite set of RDF triples (paper Def. 2.1).
///
/// Triples are kept in a sorted, deduplicated vector in (s, p, o) order.
/// Three auxiliary permutations in (p,s,o), (p,o,s) and (o,s,p) order
/// are built lazily to serve the pattern-matching queries issued by the
/// homomorphism solver and the closure fixpoint. Each permutation is
/// stored as structure-of-arrays columns (IndexColumns): three raw
/// term-bit columns in key order plus the primary row id, so lookups and
/// residual filters sweep one contiguous uint32_t column (vectorized via
/// scan.h) instead of gathering Triple structs.
///
/// Single-triple Insert/Erase *maintain* built permutations in place
/// (one sorted insert/erase per column), up to a crossover: once more
/// patches accumulate between index reads than a batched rebuild would
/// cost, the columns are dropped and the next lookup rebuilds them once
/// (the bulk InsertAll path always takes the rebuild route). Either
/// way, outstanding MatchRanges are invalidated by any mutation.
///
/// Every mutation that changes the triple set bumps an epoch counter, so
/// derived structures (closure caches, membership indexes) can detect —
/// rather than silently serve — staleness.
///
/// Graph is equally used for *pattern* sets (query bodies/heads), in
/// which case triples may contain variables.
class Graph {
 public:
  using const_iterator = std::vector<Triple>::const_iterator;

  Graph() = default;
  Graph(std::initializer_list<Triple> triples);
  explicit Graph(std::vector<Triple> triples);

  /// Inserts a triple; returns true if it was not already present.
  bool Insert(const Triple& t);
  void Insert(Term s, Term p, Term o) { Insert(Triple(s, p, o)); }
  /// Inserts all triples of other.
  void InsertAll(const Graph& other);
  /// Removes a triple; returns true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const;

  /// Mutation epoch: starts at 0 and increments on every mutation that
  /// changes the triple set (no-op inserts/erases do not count).
  /// Structures caching derived state off this graph record the epoch
  /// they were built at and compare to detect staleness.
  uint64_t epoch() const { return epoch_; }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const_iterator begin() const { return triples_.begin(); }
  const_iterator end() const { return triples_.end(); }
  const std::vector<Triple>& triples() const { return triples_; }
  const Triple& operator[](size_t i) const { return triples_[i]; }

  bool operator==(const Graph& other) const {
    return triples_ == other.triples_;
  }
  bool operator!=(const Graph& other) const { return !(*this == other); }

  /// True if *this ⊆ other as sets of triples (i.e. *this is a subgraph).
  bool IsSubgraphOf(const Graph& other) const;

  /// universe(G): all elements of UB (and variables, for patterns)
  /// occurring in some triple. Sorted ascending.
  std::vector<Term> Universe() const;
  /// voc(G) = universe(G) ∩ U. Sorted ascending.
  std::vector<Term> Vocabulary() const;
  /// The blank nodes occurring in the graph. Sorted ascending.
  std::vector<Term> BlankNodes() const;
  /// The variables occurring in the pattern. Sorted ascending.
  std::vector<Term> Variables() const;

  /// True if the graph has no blank nodes (paper Def. 2.1).
  bool IsGround() const;
  /// True if the graph does not mention the RDFS vocabulary in any
  /// position (paper Def. 2.2).
  bool IsSimple() const;
  /// True if every triple is well-formed data (no variables).
  bool IsWellFormedData() const;

  /// Set-theoretic union G1 ∪ G2 (paper §2.1; blank nodes shared).
  static Graph Union(const Graph& g1, const Graph& g2);

  /// Resolves a pattern (wildcard = std::nullopt) to the contiguous index
  /// range holding exactly its matches, in O(log |G|). The range is
  /// invalidated by any mutation of the graph.
  MatchRange Matches(std::optional<Term> s, std::optional<Term> p,
                     std::optional<Term> o) const;

  /// Matches a pattern triple against the graph. Wildcard = std::nullopt.
  /// Invokes visitor for every matching triple; stops early (returning
  /// false) if the visitor returns false. Returns false iff stopped early.
  template <typename Visitor>
  bool Match(std::optional<Term> s, std::optional<Term> p,
             std::optional<Term> o, Visitor&& visitor) const {
    for (const Triple& t : Matches(s, p, o)) {
      if (!visitor(t)) return false;
    }
    return true;
  }

  /// Number of triples matching the given pattern. O(log |G|): the size
  /// of the resolved index range, with no scan.
  size_t CountMatches(std::optional<Term> s, std::optional<Term> p,
                      std::optional<Term> o) const {
    return Matches(s, p, o).size();
  }

  /// Builds the lazy index permutations now if they are stale. The lazy
  /// build mutates `mutable` state, so a const Graph shared across
  /// threads must be warmed once (by one thread) before concurrent
  /// Matches/Contains calls; after that every read path is const-clean.
  void WarmIndexes() const { EnsureIndexes(); }

  /// Storage/scan observability snapshot (see GraphStats). Counter
  /// semantics under concurrent readers follow RelaxedCounter.
  GraphStats Stats() const;

  /// Patches-between-reads crossover for a graph of n triples: beyond
  /// this many in-place index patches with no intervening index read,
  /// the permutations are dropped and rebuilt once on the next lookup.
  /// Exposed for the crossover regression tests.
  static uint64_t PatchCrossover(size_t n);

 private:
  void Normalize();
  void EnsureIndexes() const;
  // In-place maintenance of built permutations around a single-triple
  // mutation at primary position `pos` (no-ops when indexes are stale).
  void PatchIndexesInsert(uint32_t pos);
  void PatchIndexesErase(uint32_t pos);
  // Drops the permutation columns (next lookup rebuilds).
  void DropIndexes();

  // Sorted (s,p,o), deduplicated.
  std::vector<Triple> triples_;

  uint64_t epoch_ = 0;

  // Lazily built columnar permutations (see IndexColumns).
  mutable bool indexes_valid_ = false;
  mutable IndexColumns pso_;  // sorted by (p,s,o)
  mutable IndexColumns pos_;  // sorted by (p,o,s)
  mutable IndexColumns osp_;  // sorted by (o,s,p)

  // In-place patches applied since the last index read (reset by
  // EnsureIndexes); drives the patch-vs-rebuild crossover.
  RelaxedCounter unread_patches_;

  // Observability (see GraphStats / Stats()).
  RelaxedCounter index_rebuilds_;
  RelaxedCounter index_patches_;
  RelaxedCounter index_drops_;
  RelaxedCounter matches_calls_;
  RelaxedCounter rows_scanned_;
  RelaxedCounter rows_yielded_;
};

}  // namespace swdb

#endif  // SWDB_RDF_GRAPH_H_
