#ifndef SWDB_RDF_GRAPH_H_
#define SWDB_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "rdf/spine.h"
#include "rdf/triple.h"

namespace swdb {

/// The physical order that served a triple-pattern lookup. The graph
/// keeps the primary (s,p,o) spine plus three lazily built permutation
/// spines so that *every* combination of bound positions resolves to
/// one contiguous slot range (no post-filtering):
///
///   bound positions          order        range key
///   s / s,p / s,p,o          kSpo         prefix of (s,p,o)
///   p                        kPso         prefix of (p,s,o)
///   p,o                      kPos         prefix of (p,o,s)
///   o / o,s                  kOsp         prefix of (o,s,p)
///   (none)                   kFullScan    all triples (primary order)
enum class IndexOrder : uint8_t {
  kSpo = 0,
  kPso = 1,
  kPos = 2,
  kOsp = 3,
  kFullScan = 4,
};
inline constexpr size_t kNumIndexOrders = 5;

/// Short name of an index order ("spo", "pso", "pos", "osp", "scan").
const char* IndexOrderName(IndexOrder order);

/// Column index (0..2) holding triple position `pos` (0=s, 1=p, 2=o) of
/// an order's key sequence. E.g. for kPso the key sequence is (p,s,o):
/// the subject lives in column 1, the predicate in column 0, the object
/// in column 2. kSpo and kFullScan are the identity.
int ColumnOfPosition(IndexOrder order, int pos);

/// A cumulative counter that tolerates concurrent readers: relaxed
/// atomic load/store (no RMW, so hot-path increments stay cheap), which
/// may drop updates when several threads bump it at once. Exact on the
/// single-threaded paths the tests and benches measure; best-effort
/// observability under the concurrent snapshot read path. Copyable so
/// Graph keeps its value semantics.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o) : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  void Add(uint64_t d) const {
    v_.store(v_.load(std::memory_order_relaxed) + d,
             std::memory_order_relaxed);
  }
  void Reset() const { v_.store(0, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  mutable std::atomic<uint64_t> v_{0};
};

/// Storage and scan observability for one Graph, snapshotted by
/// Graph::Stats. Counters are cumulative since construction; byte and
/// leaf figures reflect the current footprint.
struct GraphStats {
  uint64_t index_rebuilds = 0;   ///< full permutation-spine (re)builds
  uint64_t index_patches = 0;    ///< single-mutation COW spine patches
  uint64_t index_drops = 0;      ///< bulk-load permutation drops
  uint64_t matches_calls = 0;    ///< Matches() lookups served
  uint64_t rows_scanned = 0;     ///< probes/rows examined by lookups
  uint64_t rows_yielded = 0;     ///< rows in the returned ranges
  bool indexes_built = false;    ///< permutation spines currently valid
  size_t bytes_primary = 0;      ///< primary (s,p,o) spine
  size_t bytes_pso = 0;          ///< pso spine (0 until built)
  size_t bytes_pos = 0;          ///< pos spine
  size_t bytes_osp = 0;          ///< osp spine
  size_t leaves_primary = 0;     ///< primary spine leaf count
  size_t leaves_index = 0;       ///< permutation spine leaves (all three)
  size_t bytes_total() const {
    return bytes_primary + bytes_pso + bytes_pos + bytes_osp;
  }
};

/// Leaf-sharing between two graphs' spines: of this graph's `total`
/// leaves, `shared` are the same objects (pointer equality) as leaves
/// of the other graph. The publication-observability measure of how
/// much of a snapshot is structurally shared with its predecessor.
struct SpineSharing {
  uint64_t shared = 0;
  uint64_t total = 0;
};

/// A resolved, contiguous slot range of one spine holding exactly the
/// matches of a pattern — the equal_range analogue of Graph::Match.
/// Iterating a MatchRange touches no hash table and performs no
/// comparisons: every element is a match, materialized leaf by leaf
/// from the backing spine's three key columns. The range stays valid
/// until the graph is mutated.
class MatchRange {
 public:
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Triple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Triple*;
    using reference = const Triple&;

    const Triple& operator*() const {
      const size_t i = idx_ - leaf_base_;
      scratch_.s = Term::FromBits(col_s_[i]);
      scratch_.p = Term::FromBits(col_p_[i]);
      scratch_.o = Term::FromBits(col_o_[i]);
      return scratch_;
    }
    const Triple* operator->() const { return &**this; }
    const_iterator& operator++() {
      ++idx_;
      if (idx_ == leaf_end_) AdvanceLeaf();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    friend class MatchRange;
    const_iterator(const Spine* spine, IndexOrder order, size_t idx,
                   size_t limit);
    void AdvanceLeaf();

    const Spine* spine_ = nullptr;
    IndexOrder order_ = IndexOrder::kFullScan;
    size_t idx_ = 0;        // current global slot
    size_t limit_ = 0;      // range end (no leaf loads at or past it)
    size_t leaf_base_ = 0;  // global slot of the cached leaf's start
    size_t leaf_end_ = 0;   // global slot one past the cached leaf
    const uint32_t* col_s_ = nullptr;  // cached leaf columns by position
    const uint32_t* col_p_ = nullptr;
    const uint32_t* col_o_ = nullptr;
    mutable Triple scratch_;  // materialization target of operator*
  };

  MatchRange() = default;

  /// A run [first, last) of global slots in `spine`.
  static MatchRange Over(const Spine* spine, size_t first, size_t last,
                         IndexOrder order) {
    MatchRange r;
    r.spine_ = spine;
    r.first_ = first;
    r.last_ = last;
    r.order_ = order;
    return r;
  }

  size_t size() const { return last_ - first_; }
  bool empty() const { return size() == 0; }
  IndexOrder order() const { return order_; }

  /// True when the range is backed by a lazily built permutation spine
  /// (pso/pos/osp) rather than the primary order.
  bool columnar() const {
    return order_ != IndexOrder::kSpo && order_ != IndexOrder::kFullScan;
  }

  /// The triple at global slot `slot` of the backing spine, as emitted
  /// by the Filter* methods. The reference is to a scratch slot reused
  /// by the next TripleAt call on this range.
  const Triple& TripleAt(uint32_t slot) const;

  /// Residual bound-position filter: appends to *out the backing-spine
  /// slots of the range elements whose position `pos` (0=s, 1=p, 2=o)
  /// holds `value`, in range order. Vectorized compare-and-compress per
  /// leaf. Returns the number of slots appended.
  size_t FilterBound(int pos, Term value, std::vector<uint32_t>* out) const;

  /// Repeated-position residual (e.g. pattern (X, p, X)): appends the
  /// backing-spine slots of elements whose positions `pos_a` and
  /// `pos_b` hold equal terms, in range order. Returns the number
  /// appended.
  size_t FilterPairEqual(int pos_a, int pos_b,
                         std::vector<uint32_t>* out) const;

  const_iterator begin() const {
    return const_iterator(spine_, order_, first_, last_);
  }
  const_iterator end() const {
    return const_iterator(spine_, order_, last_, last_);
  }

 private:
  const Spine* spine_ = nullptr;
  size_t first_ = 0;
  size_t last_ = 0;
  IndexOrder order_ = IndexOrder::kFullScan;
  mutable Triple scratch_;  // TripleAt materialization target
};

/// An RDF graph: a finite set of RDF triples (paper Def. 2.1).
///
/// Triples live in four copy-on-write column spines (see Spine): the
/// primary in (s,p,o) order — Triple::operator< compares packed term
/// bits, so the primary spine *is* the sorted triple set — plus three
/// lazily built permutations in (p,s,o), (p,o,s) and (o,s,p) order
/// serving the pattern-matching queries issued by the homomorphism
/// solver and the closure fixpoint. Each spine stores raw term bits as
/// structure-of-arrays uint32 columns per leaf, so lookups and residual
/// filters sweep contiguous columns (vectorized via scan.h).
///
/// Copying a Graph copies leaf pointers, not leaf contents: an epoch
/// that changed k triples shares every untouched leaf with its
/// predecessor, which is what makes Database snapshot publication
/// proportional to the delta instead of to |G|. Single-triple
/// Insert/Erase clone only the one leaf they touch per spine (built
/// permutations are maintained in place the same way); the bulk
/// InsertAll path drops the permutations and rebuilds them on the next
/// lookup. Either way, outstanding MatchRanges are invalidated by any
/// mutation.
///
/// Every mutation that changes the triple set bumps an epoch counter,
/// so derived structures (closure caches, membership indexes) can
/// detect — rather than silently serve — staleness.
///
/// Graph is equally used for *pattern* sets (query bodies/heads), in
/// which case triples may contain variables.
class Graph {
 public:
  /// Iterates the primary spine in (s,p,o) order, materializing each
  /// triple from the leaf columns. Single-pass semantics (operator*
  /// returns a reference into iterator-owned scratch); operator+ /
  /// operator- support positional slicing.
  class const_iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Triple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Triple*;
    using reference = const Triple&;

    const_iterator() = default;

    const Triple& operator*() const {
      const SpineKey k = spine_->At(idx_);
      scratch_.s = Term::FromBits(k[0]);
      scratch_.p = Term::FromBits(k[1]);
      scratch_.o = Term::FromBits(k[2]);
      return scratch_;
    }
    const Triple* operator->() const { return &**this; }
    const_iterator& operator++() {
      ++idx_;
      return *this;
    }
    const_iterator operator+(difference_type d) const {
      return const_iterator(spine_, idx_ + static_cast<size_t>(d));
    }
    difference_type operator-(const const_iterator& o) const {
      return static_cast<difference_type>(idx_) -
             static_cast<difference_type>(o.idx_);
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    friend class Graph;
    const_iterator(const Spine* spine, size_t idx)
        : spine_(spine), idx_(idx) {}

    const Spine* spine_ = nullptr;
    size_t idx_ = 0;
    mutable Triple scratch_;
  };

  Graph() = default;
  Graph(std::initializer_list<Triple> triples);
  explicit Graph(std::vector<Triple> triples);

  /// Inserts a triple; returns true if it was not already present.
  bool Insert(const Triple& t);
  void Insert(Term s, Term p, Term o) { Insert(Triple(s, p, o)); }
  /// Inserts all triples of other (one epoch bump if anything changed).
  void InsertAll(const Graph& other);
  /// Removes a triple; returns true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const;

  /// Mutation epoch: starts at 0 and increments on every mutation that
  /// changes the triple set (no-op inserts/erases do not count).
  /// Structures caching derived state off this graph record the epoch
  /// they were built at and compare to detect staleness.
  uint64_t epoch() const { return epoch_; }

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }
  const_iterator begin() const { return const_iterator(&spo_, 0); }
  const_iterator end() const { return const_iterator(&spo_, spo_.size()); }
  /// The triple set materialized as a sorted (s,p,o) vector. Built per
  /// call (O(n)); bind to a const reference or reuse across loops.
  std::vector<Triple> triples() const;
  /// The i-th triple in (s,p,o) order. O(log leaves).
  Triple operator[](size_t i) const {
    const SpineKey k = spo_.At(i);
    return Triple(Term::FromBits(k[0]), Term::FromBits(k[1]),
                  Term::FromBits(k[2]));
  }

  bool operator==(const Graph& other) const;
  bool operator!=(const Graph& other) const { return !(*this == other); }

  /// True if *this ⊆ other as sets of triples (i.e. *this is a subgraph).
  bool IsSubgraphOf(const Graph& other) const;

  /// universe(G): all elements of UB (and variables, for patterns)
  /// occurring in some triple. Sorted ascending.
  std::vector<Term> Universe() const;
  /// voc(G) = universe(G) ∩ U. Sorted ascending.
  std::vector<Term> Vocabulary() const;
  /// The blank nodes occurring in the graph. Sorted ascending.
  std::vector<Term> BlankNodes() const;
  /// The variables occurring in the pattern. Sorted ascending.
  std::vector<Term> Variables() const;

  /// True if the graph has no blank nodes (paper Def. 2.1).
  bool IsGround() const;
  /// True if the graph does not mention the RDFS vocabulary in any
  /// position (paper Def. 2.2).
  bool IsSimple() const;
  /// True if every triple is well-formed data (no variables).
  bool IsWellFormedData() const;

  /// Set-theoretic union G1 ∪ G2 (paper §2.1; blank nodes shared).
  static Graph Union(const Graph& g1, const Graph& g2);

  /// Resolves a pattern (wildcard = std::nullopt) to the contiguous
  /// spine range holding exactly its matches, in O(log² |G|). The range
  /// is invalidated by any mutation of the graph.
  MatchRange Matches(std::optional<Term> s, std::optional<Term> p,
                     std::optional<Term> o) const;

  /// Matches a pattern triple against the graph. Wildcard = std::nullopt.
  /// Invokes visitor for every matching triple; stops early (returning
  /// false) if the visitor returns false. Returns false iff stopped early.
  template <typename Visitor>
  bool Match(std::optional<Term> s, std::optional<Term> p,
             std::optional<Term> o, Visitor&& visitor) const {
    for (const Triple& t : Matches(s, p, o)) {
      if (!visitor(t)) return false;
    }
    return true;
  }

  /// Number of triples matching the given pattern. O(log² |G|): the
  /// size of the resolved spine range, with no scan.
  size_t CountMatches(std::optional<Term> s, std::optional<Term> p,
                      std::optional<Term> o) const {
    return Matches(s, p, o).size();
  }

  /// Builds the lazy permutation spines now if they are stale. The lazy
  /// build mutates `mutable` state, so a const Graph shared across
  /// threads must be warmed once (by one thread) before concurrent
  /// Matches/Contains calls; after that every read path is const-clean.
  void WarmIndexes() const { EnsureIndexes(); }

  /// Storage/scan observability snapshot (see GraphStats). Counter
  /// semantics under concurrent readers follow RelaxedCounter.
  GraphStats Stats() const;

  /// Of this graph's spine leaves (primary + built permutations),
  /// how many are shared (pointer-identical) with `other`. Only spines
  /// built on both sides are compared; `total` counts this graph's
  /// leaves of those spines. O(leaves).
  SpineSharing SharedLeaves(const Graph& other) const;

 private:
  void BuildFrom(std::vector<Triple> triples);
  void EnsureIndexes() const;
  // COW maintenance of built permutations around a single-triple
  // mutation (no-ops when the permutations are stale).
  void PatchIndexesInsert(const Triple& t);
  void PatchIndexesErase(const Triple& t);
  // Drops the permutation spines (next lookup rebuilds).
  void DropIndexes();

  // Primary storage: (s,p,o)-ordered key spine. Term bits compare like
  // Terms, so this spine is the sorted, deduplicated triple set.
  Spine spo_;

  uint64_t epoch_ = 0;

  // Lazily built permutation spines.
  mutable bool indexes_valid_ = false;
  mutable Spine pso_;  // sorted by (p,s,o)
  mutable Spine pos_;  // sorted by (p,o,s)
  mutable Spine osp_;  // sorted by (o,s,p)

  // Observability (see GraphStats / Stats()).
  RelaxedCounter index_rebuilds_;
  RelaxedCounter index_patches_;
  RelaxedCounter index_drops_;
  RelaxedCounter matches_calls_;
  RelaxedCounter rows_scanned_;
  RelaxedCounter rows_yielded_;
};

}  // namespace swdb

#endif  // SWDB_RDF_GRAPH_H_
