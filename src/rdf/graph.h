#ifndef SWDB_RDF_GRAPH_H_
#define SWDB_RDF_GRAPH_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"

namespace swdb {

/// The physical order that served a triple-pattern lookup. The graph
/// keeps the primary (s,p,o) vector plus three lazily built permutations
/// so that *every* combination of bound positions resolves to one
/// contiguous index range (no post-filtering):
///
///   bound positions          order        range key
///   s / s,p / s,p,o          kSpo         prefix of (s,p,o)
///   p                        kPso         prefix of (p,s,o)
///   p,o                      kPos         prefix of (p,o,s)
///   o / o,s                  kOsp         prefix of (o,s,p)
///   (none)                   kFullScan    all triples
enum class IndexOrder : uint8_t {
  kSpo = 0,
  kPso = 1,
  kPos = 2,
  kOsp = 3,
  kFullScan = 4,
};
inline constexpr size_t kNumIndexOrders = 5;

/// Short name of an index order ("spo", "pso", "pos", "osp", "scan").
const char* IndexOrderName(IndexOrder order);

/// A resolved, contiguous range of triples matching a pattern — the
/// equal_range analogue of Graph::Match. Iterating a MatchRange touches
/// no heap and performs no comparisons: every element is a match. The
/// range stays valid until the graph is mutated.
class MatchRange {
 public:
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Triple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Triple*;
    using reference = const Triple&;

    const Triple& operator*() const { return ids_ ? base_[*ids_] : *direct_; }
    const Triple* operator->() const { return &**this; }
    const_iterator& operator++() {
      if (ids_) {
        ++ids_;
      } else {
        ++direct_;
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return direct_ == o.direct_ && ids_ == o.ids_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class MatchRange;
    const_iterator(const Triple* base, const Triple* direct,
                   const uint32_t* ids)
        : base_(base), direct_(direct), ids_(ids) {}

    const Triple* base_;    // permutation base (id mode)
    const Triple* direct_;  // current element (direct mode)
    const uint32_t* ids_;   // current id (id mode), nullptr in direct mode
  };

  MatchRange() = default;

  /// A run [first, last) directly inside the primary triple vector.
  static MatchRange Direct(const Triple* first, const Triple* last,
                           IndexOrder order) {
    MatchRange r;
    r.direct_first_ = first;
    r.direct_last_ = last;
    r.order_ = order;
    return r;
  }

  /// A run [first, last) of indices into `base` (a permutation slice).
  static MatchRange Permuted(const Triple* base, const uint32_t* first,
                             const uint32_t* last, IndexOrder order) {
    MatchRange r;
    r.base_ = base;
    r.ids_first_ = first;
    r.ids_last_ = last;
    r.order_ = order;
    return r;
  }

  size_t size() const {
    return ids_first_ ? static_cast<size_t>(ids_last_ - ids_first_)
                      : static_cast<size_t>(direct_last_ - direct_first_);
  }
  bool empty() const { return size() == 0; }
  IndexOrder order() const { return order_; }

  const_iterator begin() const {
    return const_iterator(base_, direct_first_, ids_first_);
  }
  const_iterator end() const {
    return const_iterator(base_, direct_last_, ids_last_);
  }

 private:
  const Triple* base_ = nullptr;
  const Triple* direct_first_ = nullptr;
  const Triple* direct_last_ = nullptr;
  const uint32_t* ids_first_ = nullptr;
  const uint32_t* ids_last_ = nullptr;
  IndexOrder order_ = IndexOrder::kFullScan;
};

/// An RDF graph: a finite set of RDF triples (paper Def. 2.1).
///
/// Triples are kept in a sorted, deduplicated vector in (s, p, o) order.
/// Three auxiliary permutations in (p,s,o), (p,o,s) and (o,s,p) order are
/// built lazily to serve the pattern-matching queries issued by the
/// homomorphism solver and the closure fixpoint. Single-triple
/// Insert/Erase *maintain* built permutations in place (one sorted
/// insert/erase of an id per order); only the bulk InsertAll path drops
/// them for a batched rebuild. Either way, outstanding MatchRanges are
/// invalidated by any mutation.
///
/// Every mutation that changes the triple set bumps an epoch counter, so
/// derived structures (closure caches, membership indexes) can detect —
/// rather than silently serve — staleness.
///
/// Graph is equally used for *pattern* sets (query bodies/heads), in
/// which case triples may contain variables.
class Graph {
 public:
  using const_iterator = std::vector<Triple>::const_iterator;

  Graph() = default;
  Graph(std::initializer_list<Triple> triples);
  explicit Graph(std::vector<Triple> triples);

  /// Inserts a triple; returns true if it was not already present.
  bool Insert(const Triple& t);
  void Insert(Term s, Term p, Term o) { Insert(Triple(s, p, o)); }
  /// Inserts all triples of other.
  void InsertAll(const Graph& other);
  /// Removes a triple; returns true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const;

  /// Mutation epoch: starts at 0 and increments on every mutation that
  /// changes the triple set (no-op inserts/erases do not count).
  /// Structures caching derived state off this graph record the epoch
  /// they were built at and compare to detect staleness.
  uint64_t epoch() const { return epoch_; }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const_iterator begin() const { return triples_.begin(); }
  const_iterator end() const { return triples_.end(); }
  const std::vector<Triple>& triples() const { return triples_; }
  const Triple& operator[](size_t i) const { return triples_[i]; }

  bool operator==(const Graph& other) const {
    return triples_ == other.triples_;
  }
  bool operator!=(const Graph& other) const { return !(*this == other); }

  /// True if *this ⊆ other as sets of triples (i.e. *this is a subgraph).
  bool IsSubgraphOf(const Graph& other) const;

  /// universe(G): all elements of UB (and variables, for patterns)
  /// occurring in some triple. Sorted ascending.
  std::vector<Term> Universe() const;
  /// voc(G) = universe(G) ∩ U. Sorted ascending.
  std::vector<Term> Vocabulary() const;
  /// The blank nodes occurring in the graph. Sorted ascending.
  std::vector<Term> BlankNodes() const;
  /// The variables occurring in the pattern. Sorted ascending.
  std::vector<Term> Variables() const;

  /// True if the graph has no blank nodes (paper Def. 2.1).
  bool IsGround() const;
  /// True if the graph does not mention the RDFS vocabulary in any
  /// position (paper Def. 2.2).
  bool IsSimple() const;
  /// True if every triple is well-formed data (no variables).
  bool IsWellFormedData() const;

  /// Set-theoretic union G1 ∪ G2 (paper §2.1; blank nodes shared).
  static Graph Union(const Graph& g1, const Graph& g2);

  /// Resolves a pattern (wildcard = std::nullopt) to the contiguous index
  /// range holding exactly its matches, in O(log |G|). The range is
  /// invalidated by any mutation of the graph.
  MatchRange Matches(std::optional<Term> s, std::optional<Term> p,
                     std::optional<Term> o) const;

  /// Matches a pattern triple against the graph. Wildcard = std::nullopt.
  /// Invokes visitor for every matching triple; stops early (returning
  /// false) if the visitor returns false. Returns false iff stopped early.
  template <typename Visitor>
  bool Match(std::optional<Term> s, std::optional<Term> p,
             std::optional<Term> o, Visitor&& visitor) const {
    for (const Triple& t : Matches(s, p, o)) {
      if (!visitor(t)) return false;
    }
    return true;
  }

  /// Number of triples matching the given pattern. O(log |G|): the size
  /// of the resolved index range, with no scan.
  size_t CountMatches(std::optional<Term> s, std::optional<Term> p,
                      std::optional<Term> o) const {
    return Matches(s, p, o).size();
  }

  /// Builds the lazy index permutations now if they are stale. The lazy
  /// build mutates `mutable` state, so a const Graph shared across
  /// threads must be warmed once (by one thread) before concurrent
  /// Matches/Contains calls; after that every read path is const-clean.
  void WarmIndexes() const { EnsureIndexes(); }

 private:
  void Normalize();
  void EnsureIndexes() const;
  // In-place maintenance of built permutations around a single-triple
  // mutation at primary position `pos` (no-ops when indexes are stale).
  void PatchIndexesInsert(uint32_t pos);
  void PatchIndexesErase(uint32_t pos);

  // Sorted (s,p,o), deduplicated.
  std::vector<Triple> triples_;

  uint64_t epoch_ = 0;

  // Lazily built permutations of indices into triples_.
  mutable bool indexes_valid_ = false;
  mutable std::vector<uint32_t> pso_;  // sorted by (p,s,o)
  mutable std::vector<uint32_t> pos_;  // sorted by (p,o,s)
  mutable std::vector<uint32_t> osp_;  // sorted by (o,s,p)
};

}  // namespace swdb

#endif  // SWDB_RDF_GRAPH_H_
