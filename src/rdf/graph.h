#ifndef SWDB_RDF_GRAPH_H_
#define SWDB_RDF_GRAPH_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/triple.h"

namespace swdb {

/// An RDF graph: a finite set of RDF triples (paper Def. 2.1).
///
/// Triples are kept in a sorted, deduplicated vector in (s, p, o) order.
/// Two auxiliary permutations in (p, s, o) and (p, o, s) order are built
/// lazily to serve the pattern-matching queries issued by the
/// homomorphism solver and the closure fixpoint; any mutation invalidates
/// them.
///
/// Graph is equally used for *pattern* sets (query bodies/heads), in
/// which case triples may contain variables.
class Graph {
 public:
  using const_iterator = std::vector<Triple>::const_iterator;

  Graph() = default;
  Graph(std::initializer_list<Triple> triples);
  explicit Graph(std::vector<Triple> triples);

  /// Inserts a triple; returns true if it was not already present.
  bool Insert(const Triple& t);
  void Insert(Term s, Term p, Term o) { Insert(Triple(s, p, o)); }
  /// Inserts all triples of other.
  void InsertAll(const Graph& other);
  /// Removes a triple; returns true if it was present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const;
  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }
  const_iterator begin() const { return triples_.begin(); }
  const_iterator end() const { return triples_.end(); }
  const std::vector<Triple>& triples() const { return triples_; }
  const Triple& operator[](size_t i) const { return triples_[i]; }

  bool operator==(const Graph& other) const {
    return triples_ == other.triples_;
  }
  bool operator!=(const Graph& other) const { return !(*this == other); }

  /// True if *this ⊆ other as sets of triples (i.e. *this is a subgraph).
  bool IsSubgraphOf(const Graph& other) const;

  /// universe(G): all elements of UB (and variables, for patterns)
  /// occurring in some triple. Sorted ascending.
  std::vector<Term> Universe() const;
  /// voc(G) = universe(G) ∩ U. Sorted ascending.
  std::vector<Term> Vocabulary() const;
  /// The blank nodes occurring in the graph. Sorted ascending.
  std::vector<Term> BlankNodes() const;
  /// The variables occurring in the pattern. Sorted ascending.
  std::vector<Term> Variables() const;

  /// True if the graph has no blank nodes (paper Def. 2.1).
  bool IsGround() const;
  /// True if the graph does not mention the RDFS vocabulary in any
  /// position (paper Def. 2.2).
  bool IsSimple() const;
  /// True if every triple is well-formed data (no variables).
  bool IsWellFormedData() const;

  /// Set-theoretic union G1 ∪ G2 (paper §2.1; blank nodes shared).
  static Graph Union(const Graph& g1, const Graph& g2);

  /// Matches a pattern triple against the graph. Wildcard = std::nullopt.
  /// Invokes visitor for every matching triple; stops early (returning
  /// false) if the visitor returns false. Returns false iff stopped early.
  template <typename Visitor>
  bool Match(std::optional<Term> s, std::optional<Term> p,
             std::optional<Term> o, Visitor&& visitor) const;

  /// Number of triples matching the given pattern.
  size_t CountMatches(std::optional<Term> s, std::optional<Term> p,
                      std::optional<Term> o) const;

 private:
  void Normalize();
  void EnsureIndexes() const;

  // Sorted (s,p,o), deduplicated.
  std::vector<Triple> triples_;

  // Lazily built permutations of indices into triples_.
  mutable bool indexes_valid_ = false;
  mutable std::vector<uint32_t> pso_;  // sorted by (p,s,o)
  mutable std::vector<uint32_t> pos_;  // sorted by (p,o,s)
};

// ---------------------------------------------------------------------------
// Inline/template implementation.

template <typename Visitor>
bool Graph::Match(std::optional<Term> s, std::optional<Term> p,
                  std::optional<Term> o, Visitor&& visitor) const {
  auto emit = [&](const Triple& t) -> bool {
    if (s && t.s != *s) return true;
    if (p && t.p != *p) return true;
    if (o && t.o != *o) return true;
    return visitor(t);
  };
  if (s) {
    // spo order: binary search on subject.
    auto lo = std::lower_bound(
        triples_.begin(), triples_.end(), *s,
        [](const Triple& t, const Term& key) { return t.s < key; });
    for (auto it = lo; it != triples_.end() && it->s == *s; ++it) {
      if (p && it->p != *p) {
        if (it->p > *p) break;  // spo order is sorted by p within s
        continue;
      }
      if (!emit(*it)) return false;
    }
    return true;
  }
  if (p) {
    EnsureIndexes();
    const std::vector<uint32_t>& perm = o ? pos_ : pso_;
    auto lo = std::lower_bound(
        perm.begin(), perm.end(), *p,
        [this](uint32_t i, const Term& key) { return triples_[i].p < key; });
    for (auto it = lo; it != perm.end() && triples_[*it].p == *p; ++it) {
      const Triple& t = triples_[*it];
      if (o && t.o != *o) {
        if (t.o > *o) break;  // pos order is sorted by o within p
        continue;
      }
      if (!emit(t)) return false;
    }
    return true;
  }
  if (o) {
    EnsureIndexes();
    // No o-first index; scan pos_ fully (rare pattern).
    for (uint32_t i : pos_) {
      if (triples_[i].o == *o && !emit(triples_[i])) return false;
    }
    return true;
  }
  for (const Triple& t : triples_) {
    if (!visitor(t)) return false;
  }
  return true;
}

}  // namespace swdb

#endif  // SWDB_RDF_GRAPH_H_
