#include "rdf/graph.h"

#include <algorithm>

namespace swdb {

Graph::Graph(std::initializer_list<Triple> triples)
    : triples_(triples) {
  Normalize();
}

Graph::Graph(std::vector<Triple> triples) : triples_(std::move(triples)) {
  Normalize();
}

void Graph::Normalize() {
  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());
  indexes_valid_ = false;
}

bool Graph::Insert(const Triple& t) {
  auto it = std::lower_bound(triples_.begin(), triples_.end(), t);
  if (it != triples_.end() && *it == t) return false;
  triples_.insert(it, t);
  indexes_valid_ = false;
  return true;
}

void Graph::InsertAll(const Graph& other) {
  if (other.empty()) return;
  std::vector<Triple> merged;
  merged.reserve(triples_.size() + other.triples_.size());
  std::set_union(triples_.begin(), triples_.end(), other.triples_.begin(),
                 other.triples_.end(), std::back_inserter(merged));
  triples_ = std::move(merged);
  indexes_valid_ = false;
}

bool Graph::Erase(const Triple& t) {
  auto it = std::lower_bound(triples_.begin(), triples_.end(), t);
  if (it == triples_.end() || *it != t) return false;
  triples_.erase(it);
  indexes_valid_ = false;
  return true;
}

bool Graph::Contains(const Triple& t) const {
  return std::binary_search(triples_.begin(), triples_.end(), t);
}

bool Graph::IsSubgraphOf(const Graph& other) const {
  return std::includes(other.triples_.begin(), other.triples_.end(),
                       triples_.begin(), triples_.end());
}

std::vector<Term> Graph::Universe() const {
  std::vector<Term> terms;
  terms.reserve(triples_.size() * 3);
  for (const Triple& t : triples_) {
    terms.push_back(t.s);
    terms.push_back(t.p);
    terms.push_back(t.o);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<Term> Graph::Vocabulary() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsIri(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::BlankNodes() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsBlank(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::Variables() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsVar(); }),
              terms.end());
  return terms;
}

bool Graph::IsGround() const {
  for (const Triple& t : triples_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

bool Graph::IsSimple() const {
  for (const Triple& t : triples_) {
    if (vocab::IsRdfsVocab(t.s) || vocab::IsRdfsVocab(t.p) ||
        vocab::IsRdfsVocab(t.o)) {
      return false;
    }
  }
  return true;
}

bool Graph::IsWellFormedData() const {
  for (const Triple& t : triples_) {
    if (!t.IsWellFormedData()) return false;
  }
  return true;
}

Graph Graph::Union(const Graph& g1, const Graph& g2) {
  Graph out = g1;
  out.InsertAll(g2);
  return out;
}

void Graph::EnsureIndexes() const {
  if (indexes_valid_) return;
  const size_t n = triples_.size();
  pso_.resize(n);
  pos_.resize(n);
  for (uint32_t i = 0; i < n; ++i) pso_[i] = pos_[i] = i;
  std::sort(pso_.begin(), pso_.end(), [this](uint32_t a, uint32_t b) {
    const Triple& x = triples_[a];
    const Triple& y = triples_[b];
    if (x.p != y.p) return x.p < y.p;
    if (x.s != y.s) return x.s < y.s;
    return x.o < y.o;
  });
  std::sort(pos_.begin(), pos_.end(), [this](uint32_t a, uint32_t b) {
    const Triple& x = triples_[a];
    const Triple& y = triples_[b];
    if (x.p != y.p) return x.p < y.p;
    if (x.o != y.o) return x.o < y.o;
    return x.s < y.s;
  });
  indexes_valid_ = true;
}

size_t Graph::CountMatches(std::optional<Term> s, std::optional<Term> p,
                           std::optional<Term> o) const {
  size_t count = 0;
  Match(s, p, o, [&count](const Triple&) {
    ++count;
    return true;
  });
  return count;
}

}  // namespace swdb
