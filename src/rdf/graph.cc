#include "rdf/graph.h"

#include <algorithm>
#include <array>

#include "rdf/scan.h"

namespace swdb {

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPso:
      return "pso";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
    case IndexOrder::kFullScan:
      return "scan";
  }
  return "?";
}

int ColumnOfPosition(IndexOrder order, int pos) {
  // Key sequences: spo = (s,p,o), pso = (p,s,o), pos = (p,o,s),
  // osp = (o,s,p); kFullScan ranges are served by the primary spine.
  static constexpr int kMap[kNumIndexOrders][3] = {
      /* kSpo:      s,p,o -> */ {0, 1, 2},
      /* kPso:      s,p,o -> */ {1, 0, 2},
      /* kPos:      s,p,o -> */ {2, 0, 1},
      /* kOsp:      s,p,o -> */ {1, 2, 0},
      /* kFullScan: s,p,o -> */ {0, 1, 2},
  };
  return kMap[static_cast<size_t>(order)][pos];
}

namespace {

// The raw term bits of a triple permuted into each order's key
// sequence. Term::operator< compares packed bits, so lexicographic
// order over these uint32 keys is exactly the Triple comparators'
// order — the spine refactor cannot change enumeration order.
inline SpineKey KeySpo(const Triple& t) {
  return {t.s.bits(), t.p.bits(), t.o.bits()};
}
inline SpineKey KeyPso(const Triple& t) {
  return {t.p.bits(), t.s.bits(), t.o.bits()};
}
inline SpineKey KeyPos(const Triple& t) {
  return {t.p.bits(), t.o.bits(), t.s.bits()};
}
inline SpineKey KeyOsp(const Triple& t) {
  return {t.o.bits(), t.s.bits(), t.p.bits()};
}

inline Triple TripleOfSpoKey(const SpineKey& k) {
  return Triple(Term::FromBits(k[0]), Term::FromBits(k[1]),
                Term::FromBits(k[2]));
}

}  // namespace

// --- MatchRange ------------------------------------------------------

MatchRange::const_iterator::const_iterator(const Spine* spine,
                                           IndexOrder order, size_t idx,
                                           size_t limit)
    : spine_(spine), order_(order), idx_(idx), limit_(limit) {
  leaf_base_ = idx;
  leaf_end_ = idx;
  if (idx_ < limit_) AdvanceLeaf();
}

void MatchRange::const_iterator::AdvanceLeaf() {
  if (idx_ >= limit_) return;
  const size_t li = spine_->LeafIndexOf(idx_);
  const SpineLeaf& leaf = spine_->leaf(li);
  leaf_base_ = spine_->leaf_start(li);
  leaf_end_ = leaf_base_ + leaf.size();
  col_s_ = leaf.column(ColumnOfPosition(order_, 0)).data();
  col_p_ = leaf.column(ColumnOfPosition(order_, 1)).data();
  col_o_ = leaf.column(ColumnOfPosition(order_, 2)).data();
}

const Triple& MatchRange::TripleAt(uint32_t slot) const {
  const SpineKey k = spine_->At(slot);
  scratch_.s = Term::FromBits(k[ColumnOfPosition(order_, 0)]);
  scratch_.p = Term::FromBits(k[ColumnOfPosition(order_, 1)]);
  scratch_.o = Term::FromBits(k[ColumnOfPosition(order_, 2)]);
  return scratch_;
}

size_t MatchRange::FilterBound(int pos, Term value,
                               std::vector<uint32_t>* out) const {
  const size_t before = out->size();
  if (empty()) return 0;
  const int c = ColumnOfPosition(order_, pos);
  size_t li = spine_->LeafIndexOf(first_);
  for (size_t slot = first_; slot < last_; ++li) {
    const SpineLeaf& leaf = spine_->leaf(li);
    const size_t base = spine_->leaf_start(li);
    const size_t lo = slot - base;
    const size_t hi = std::min(last_ - base, leaf.size());
    const size_t emitted = out->size();
    scan::FilterEq(leaf.column(c).data(), lo, hi, value.bits(), out);
    if (base != 0) {
      // The kernel emitted leaf-local slots; lift to global slot space.
      for (size_t i = emitted; i < out->size(); ++i) {
        (*out)[i] += static_cast<uint32_t>(base);
      }
    }
    slot = base + hi;
  }
  return out->size() - before;
}

size_t MatchRange::FilterPairEqual(int pos_a, int pos_b,
                                   std::vector<uint32_t>* out) const {
  const size_t before = out->size();
  if (empty()) return 0;
  const int ca = ColumnOfPosition(order_, pos_a);
  const int cb = ColumnOfPosition(order_, pos_b);
  size_t li = spine_->LeafIndexOf(first_);
  for (size_t slot = first_; slot < last_; ++li) {
    const SpineLeaf& leaf = spine_->leaf(li);
    const size_t base = spine_->leaf_start(li);
    const size_t lo = slot - base;
    const size_t hi = std::min(last_ - base, leaf.size());
    const size_t emitted = out->size();
    scan::FilterPairEq(leaf.column(ca).data(), leaf.column(cb).data(), lo, hi,
                       out);
    if (base != 0) {
      for (size_t i = emitted; i < out->size(); ++i) {
        (*out)[i] += static_cast<uint32_t>(base);
      }
    }
    slot = base + hi;
  }
  return out->size() - before;
}

// --- Graph -----------------------------------------------------------

Graph::Graph(std::initializer_list<Triple> triples) {
  BuildFrom(std::vector<Triple>(triples));
}

Graph::Graph(std::vector<Triple> triples) { BuildFrom(std::move(triples)); }

void Graph::BuildFrom(std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  std::vector<SpineKey> keys;
  keys.reserve(triples.size());
  for (const Triple& t : triples) keys.push_back(KeySpo(t));
  spo_.BulkBuild(keys);
  indexes_valid_ = false;
}

bool Graph::Insert(const Triple& t) {
  if (!spo_.Insert(KeySpo(t))) return false;
  ++epoch_;
  PatchIndexesInsert(t);
  return true;
}

void Graph::InsertAll(const Graph& other) {
  if (other.empty()) return;
  // A single-key spine patch costs O(leaf + leaf count); a bulk rebuild
  // costs O(n) but loses all leaf sharing with prior copies. Patch per
  // triple while the delta is small relative to the leaf count.
  const size_t threshold =
      std::max<size_t>(64, spo_.size() / Spine::kLeafMax);
  if (other.size() <= threshold) {
    uint64_t changed = 0;
    for (const Triple& t : other) {
      if (spo_.Insert(KeySpo(t))) {
        ++changed;
        PatchIndexesInsert(t);
      }
    }
    // Exactly one epoch bump per changing call, like the bulk path.
    if (changed != 0) ++epoch_;
    return;
  }
  std::vector<SpineKey> ours = spo_.Keys();
  std::vector<SpineKey> theirs = other.spo_.Keys();
  std::vector<SpineKey> merged;
  merged.reserve(ours.size() + theirs.size());
  std::set_union(ours.begin(), ours.end(), theirs.begin(), theirs.end(),
                 std::back_inserter(merged));
  if (merged.size() == spo_.size()) return;  // other ⊆ *this: no-op
  spo_.BulkBuild(merged);
  ++epoch_;
  if (indexes_valid_) DropIndexes();  // bulk path: rebuild on next lookup
}

bool Graph::Erase(const Triple& t) {
  if (!spo_.Erase(KeySpo(t))) return false;
  ++epoch_;
  PatchIndexesErase(t);
  return true;
}

void Graph::DropIndexes() {
  indexes_valid_ = false;
  pso_.Clear();
  pos_.Clear();
  osp_.Clear();
  index_drops_.Add(1);
}

void Graph::PatchIndexesInsert(const Triple& t) {
  if (!indexes_valid_) return;
  pso_.Insert(KeyPso(t));
  pos_.Insert(KeyPos(t));
  osp_.Insert(KeyOsp(t));
  index_patches_.Add(1);
}

void Graph::PatchIndexesErase(const Triple& t) {
  if (!indexes_valid_) return;
  pso_.Erase(KeyPso(t));
  pos_.Erase(KeyPos(t));
  osp_.Erase(KeyOsp(t));
  index_patches_.Add(1);
}

bool Graph::Contains(const Triple& t) const { return spo_.Contains(KeySpo(t)); }

std::vector<Triple> Graph::triples() const {
  std::vector<Triple> out;
  out.reserve(spo_.size());
  for (size_t li = 0; li < spo_.leaf_count(); ++li) {
    const SpineLeaf& leaf = spo_.leaf(li);
    for (size_t i = 0; i < leaf.size(); ++i) {
      out.emplace_back(Term::FromBits(leaf.k0[i]), Term::FromBits(leaf.k1[i]),
                       Term::FromBits(leaf.k2[i]));
    }
  }
  return out;
}

bool Graph::operator==(const Graph& other) const {
  return spo_.EqualContents(other.spo_);
}

bool Graph::IsSubgraphOf(const Graph& other) const {
  if (size() > other.size()) return false;
  // Merge-walk of two sorted streams (std::includes over input
  // iterators whose operator* reuses scratch storage).
  const_iterator a = begin();
  const const_iterator ae = end();
  const_iterator b = other.begin();
  const const_iterator be = other.end();
  while (a != ae) {
    if (b == be) return false;
    const Triple ta = *a;
    const Triple tb = *b;
    if (tb < ta) {
      ++b;
    } else if (ta < tb) {
      return false;
    } else {
      ++a;
      ++b;
    }
  }
  return true;
}

std::vector<Term> Graph::Universe() const {
  std::vector<Term> terms;
  terms.reserve(spo_.size() * 3);
  for (const Triple& t : *this) {
    terms.push_back(t.s);
    terms.push_back(t.p);
    terms.push_back(t.o);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<Term> Graph::Vocabulary() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsIri(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::BlankNodes() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsBlank(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::Variables() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsVar(); }),
              terms.end());
  return terms;
}

bool Graph::IsGround() const {
  for (const Triple& t : *this) {
    if (!t.IsGround()) return false;
  }
  return true;
}

bool Graph::IsSimple() const {
  for (const Triple& t : *this) {
    if (vocab::IsRdfsVocab(t.s) || vocab::IsRdfsVocab(t.p) ||
        vocab::IsRdfsVocab(t.o)) {
      return false;
    }
  }
  return true;
}

bool Graph::IsWellFormedData() const {
  for (const Triple& t : *this) {
    if (!t.IsWellFormedData()) return false;
  }
  return true;
}

Graph Graph::Union(const Graph& g1, const Graph& g2) {
  Graph out = g1;
  out.InsertAll(g2);
  return out;
}

void Graph::EnsureIndexes() const {
  if (indexes_valid_) return;
  const size_t n = spo_.size();
  std::vector<SpineKey> keys(n);
  auto build = [&](Spine& ix, SpineKey (*key_of)(const Triple&)) {
    size_t i = 0;
    for (size_t li = 0; li < spo_.leaf_count(); ++li) {
      const SpineLeaf& leaf = spo_.leaf(li);
      for (size_t r = 0; r < leaf.size(); ++r) {
        keys[i++] = key_of(TripleOfSpoKey(leaf.at(r)));
      }
    }
    std::sort(keys.begin(), keys.end());
    ix.BulkBuild(keys);
  };
  build(pso_, KeyPso);
  build(pos_, KeyPos);
  build(osp_, KeyOsp);
  indexes_valid_ = true;
  index_rebuilds_.Add(1);
}

GraphStats Graph::Stats() const {
  GraphStats s;
  s.index_rebuilds = index_rebuilds_.value();
  s.index_patches = index_patches_.value();
  s.index_drops = index_drops_.value();
  s.matches_calls = matches_calls_.value();
  s.rows_scanned = rows_scanned_.value();
  s.rows_yielded = rows_yielded_.value();
  s.indexes_built = indexes_valid_;
  s.bytes_primary = spo_.bytes();
  s.bytes_pso = pso_.bytes();
  s.bytes_pos = pos_.bytes();
  s.bytes_osp = osp_.bytes();
  s.leaves_primary = spo_.leaf_count();
  s.leaves_index =
      pso_.leaf_count() + pos_.leaf_count() + osp_.leaf_count();
  return s;
}

SpineSharing Graph::SharedLeaves(const Graph& other) const {
  SpineSharing s;
  s.shared += spo_.CountSharedLeavesWith(other.spo_);
  s.total += spo_.leaf_count();
  if (indexes_valid_ && other.indexes_valid_) {
    s.shared += pso_.CountSharedLeavesWith(other.pso_);
    s.shared += pos_.CountSharedLeavesWith(other.pos_);
    s.shared += osp_.CountSharedLeavesWith(other.osp_);
    s.total += pso_.leaf_count() + pos_.leaf_count() + osp_.leaf_count();
  }
  return s;
}

MatchRange Graph::Matches(std::optional<Term> s, std::optional<Term> p,
                          std::optional<Term> o) const {
  matches_calls_.Add(1);

  // One- or two-key equal range over a spine's sorted columns: k0 ==
  // key0, then (optionally) k1 == key1 within the k0 run. The probes
  // are global-slot binary searches resolving leaves on the fly.
  auto range_of = [&](const Spine& ix, uint32_t key0, const uint32_t* key1,
                      IndexOrder order) {
    size_t scanned = 0;
    auto [lo, hi] = ix.EqualRange(key0, key1, &scanned);
    rows_scanned_.Add(scanned);
    rows_yielded_.Add(hi - lo);
    return MatchRange::Over(&ix, lo, hi, order);
  };

  if (s) {
    if (p && o) {
      // Fully bound: a zero- or one-element run in the primary order.
      const SpineKey key = KeySpo(Triple(*s, *p, *o));
      const size_t lo = spo_.LowerBound(key);
      const size_t hi =
          lo + ((lo < spo_.size() && spo_.At(lo) == key) ? 1 : 0);
      rows_yielded_.Add(hi - lo);
      return MatchRange::Over(&spo_, lo, hi, IndexOrder::kSpo);
    }
    if (o) {
      // (s, *, o): contiguous under (o,s,p).
      EnsureIndexes();
      const uint32_t key1 = s->bits();
      return range_of(osp_, o->bits(), &key1, IndexOrder::kOsp);
    }
    // (s) or (s, p): prefix runs of the primary (s,p,o) order.
    const uint32_t key1 = p ? p->bits() : 0;
    return range_of(spo_, s->bits(), p ? &key1 : nullptr, IndexOrder::kSpo);
  }
  if (p) {
    EnsureIndexes();
    if (o) {
      const uint32_t key1 = o->bits();
      return range_of(pos_, p->bits(), &key1, IndexOrder::kPos);
    }
    return range_of(pso_, p->bits(), nullptr, IndexOrder::kPso);
  }
  if (o) {
    EnsureIndexes();
    return range_of(osp_, o->bits(), nullptr, IndexOrder::kOsp);
  }
  rows_yielded_.Add(spo_.size());
  return MatchRange::Over(&spo_, 0, spo_.size(), IndexOrder::kFullScan);
}

}  // namespace swdb
