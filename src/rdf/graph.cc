#include "rdf/graph.h"

#include <algorithm>

namespace swdb {

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPso:
      return "pso";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
    case IndexOrder::kFullScan:
      return "scan";
  }
  return "?";
}

namespace {

// Total orders backing the three permutation indexes. Each compares all
// three positions, so equal keys imply equal triples (which the primary
// vector deduplicates) — lookups into a permutation land on exactly one
// slot.
inline bool LessPso(const Triple& x, const Triple& y) {
  if (x.p != y.p) return x.p < y.p;
  if (x.s != y.s) return x.s < y.s;
  return x.o < y.o;
}
inline bool LessPos(const Triple& x, const Triple& y) {
  if (x.p != y.p) return x.p < y.p;
  if (x.o != y.o) return x.o < y.o;
  return x.s < y.s;
}
inline bool LessOsp(const Triple& x, const Triple& y) {
  if (x.o != y.o) return x.o < y.o;
  if (x.s != y.s) return x.s < y.s;
  return x.p < y.p;
}

}  // namespace

Graph::Graph(std::initializer_list<Triple> triples)
    : triples_(triples) {
  Normalize();
}

Graph::Graph(std::vector<Triple> triples) : triples_(std::move(triples)) {
  Normalize();
}

void Graph::Normalize() {
  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());
  indexes_valid_ = false;
}

bool Graph::Insert(const Triple& t) {
  auto it = std::lower_bound(triples_.begin(), triples_.end(), t);
  if (it != triples_.end() && *it == t) return false;
  const uint32_t pos = static_cast<uint32_t>(it - triples_.begin());
  triples_.insert(it, t);
  ++epoch_;
  if (indexes_valid_) PatchIndexesInsert(pos);
  return true;
}

void Graph::InsertAll(const Graph& other) {
  if (other.empty()) return;
  std::vector<Triple> merged;
  merged.reserve(triples_.size() + other.triples_.size());
  std::set_union(triples_.begin(), triples_.end(), other.triples_.begin(),
                 other.triples_.end(), std::back_inserter(merged));
  if (merged.size() == triples_.size()) return;  // other ⊆ *this: no-op
  triples_ = std::move(merged);
  ++epoch_;
  indexes_valid_ = false;  // bulk path: batched rebuild on next lookup
}

bool Graph::Erase(const Triple& t) {
  auto it = std::lower_bound(triples_.begin(), triples_.end(), t);
  if (it == triples_.end() || *it != t) return false;
  const uint32_t pos = static_cast<uint32_t>(it - triples_.begin());
  if (indexes_valid_) PatchIndexesErase(pos);  // before triples_ shifts
  triples_.erase(it);
  ++epoch_;
  return true;
}

void Graph::PatchIndexesInsert(uint32_t pos) {
  // triples_[pos] is already in place; every pre-existing primary id at
  // or above pos shifted up by one. Renumber, then sorted-insert the new
  // id into each permutation.
  auto patch = [&](std::vector<uint32_t>& perm, auto&& less) {
    for (uint32_t& id : perm) {
      if (id >= pos) ++id;
    }
    auto it = std::lower_bound(
        perm.begin(), perm.end(), pos, [&](uint32_t a, uint32_t b) {
          return less(triples_[a], triples_[b]);
        });
    perm.insert(it, pos);
  };
  patch(pso_, LessPso);
  patch(pos_, LessPos);
  patch(osp_, LessOsp);
}

void Graph::PatchIndexesErase(uint32_t pos) {
  // Called while triples_[pos] is still present: locate the id by binary
  // search under each total order, remove it, renumber the tail.
  auto patch = [&](std::vector<uint32_t>& perm, auto&& less) {
    auto it = std::lower_bound(
        perm.begin(), perm.end(), pos, [&](uint32_t a, uint32_t b) {
          return less(triples_[a], triples_[b]);
        });
    // The orders are total over distinct triples, so lower_bound lands
    // exactly on the slot holding pos.
    perm.erase(it);
    for (uint32_t& id : perm) {
      if (id > pos) --id;
    }
  };
  patch(pso_, LessPso);
  patch(pos_, LessPos);
  patch(osp_, LessOsp);
}

bool Graph::Contains(const Triple& t) const {
  return std::binary_search(triples_.begin(), triples_.end(), t);
}

bool Graph::IsSubgraphOf(const Graph& other) const {
  return std::includes(other.triples_.begin(), other.triples_.end(),
                       triples_.begin(), triples_.end());
}

std::vector<Term> Graph::Universe() const {
  std::vector<Term> terms;
  terms.reserve(triples_.size() * 3);
  for (const Triple& t : triples_) {
    terms.push_back(t.s);
    terms.push_back(t.p);
    terms.push_back(t.o);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<Term> Graph::Vocabulary() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsIri(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::BlankNodes() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsBlank(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::Variables() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsVar(); }),
              terms.end());
  return terms;
}

bool Graph::IsGround() const {
  for (const Triple& t : triples_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

bool Graph::IsSimple() const {
  for (const Triple& t : triples_) {
    if (vocab::IsRdfsVocab(t.s) || vocab::IsRdfsVocab(t.p) ||
        vocab::IsRdfsVocab(t.o)) {
      return false;
    }
  }
  return true;
}

bool Graph::IsWellFormedData() const {
  for (const Triple& t : triples_) {
    if (!t.IsWellFormedData()) return false;
  }
  return true;
}

Graph Graph::Union(const Graph& g1, const Graph& g2) {
  Graph out = g1;
  out.InsertAll(g2);
  return out;
}

void Graph::EnsureIndexes() const {
  if (indexes_valid_) return;
  const size_t n = triples_.size();
  pso_.resize(n);
  pos_.resize(n);
  osp_.resize(n);
  for (uint32_t i = 0; i < n; ++i) pso_[i] = pos_[i] = osp_[i] = i;
  std::sort(pso_.begin(), pso_.end(), [this](uint32_t a, uint32_t b) {
    return LessPso(triples_[a], triples_[b]);
  });
  std::sort(pos_.begin(), pos_.end(), [this](uint32_t a, uint32_t b) {
    return LessPos(triples_[a], triples_[b]);
  });
  std::sort(osp_.begin(), osp_.end(), [this](uint32_t a, uint32_t b) {
    return LessOsp(triples_[a], triples_[b]);
  });
  indexes_valid_ = true;
}

namespace {

// Projects a triple onto the key positions of each index order. A key is
// the (up to two) leading positions of the order that are bound; unbound
// trailing positions compare as "match everything" via prefix keys.
struct Key2 {
  Term first;
  bool has_second;
  Term second;
};

// Lexicographic comparison of an order's leading positions against a
// one-or-two-term prefix key; usable from std::equal_range (called with
// (elem, key) and (key, elem)).
template <typename Project>
struct PrefixCmp {
  Project project;  // Triple -> std::pair<Term, Term> in index order
  Key2 key;

  bool operator()(const Triple& t, int) const {  // elem < key
    auto [a, b] = project(t);
    if (a != key.first) return a < key.first;
    return key.has_second && b < key.second;
  }
  bool operator()(int, const Triple& t) const {  // key < elem
    auto [a, b] = project(t);
    if (a != key.first) return key.first < a;
    return key.has_second && key.second < b;
  }
};

}  // namespace

MatchRange Graph::Matches(std::optional<Term> s, std::optional<Term> p,
                          std::optional<Term> o) const {
  const Triple* base = triples_.data();
  const Triple* last = base + triples_.size();

  // Equal-range over a permutation vector, comparing the projected
  // leading positions of the order against a prefix key.
  auto perm_range = [&](const std::vector<uint32_t>& perm, auto project,
                        Key2 key, IndexOrder order) {
    PrefixCmp<decltype(project)> below{project, key};
    auto lo = std::lower_bound(
        perm.begin(), perm.end(), 0,
        [&](uint32_t i, int k) { return below(triples_[i], k); });
    auto hi = std::upper_bound(
        lo, perm.end(), 0,
        [&](int k, uint32_t i) { return below(k, triples_[i]); });
    return MatchRange::Permuted(base, perm.data() + (lo - perm.begin()),
                                perm.data() + (hi - perm.begin()), order);
  };

  if (s) {
    if (p && o) {
      // Fully bound: a zero- or one-element run in the primary order.
      Triple key(*s, *p, *o);
      auto [lo, hi] = std::equal_range(triples_.begin(), triples_.end(), key);
      return MatchRange::Direct(base + (lo - triples_.begin()),
                                base + (hi - triples_.begin()),
                                IndexOrder::kSpo);
    }
    if (o) {
      // (s, *, o): contiguous under (o,s,p).
      EnsureIndexes();
      return perm_range(
          osp_,
          [](const Triple& t) { return std::pair<Term, Term>(t.o, t.s); },
          Key2{*o, true, *s}, IndexOrder::kOsp);
    }
    // (s) or (s, p): prefix runs of the primary (s,p,o) order.
    Key2 key{*s, p.has_value(), p.value_or(Term())};
    PrefixCmp<std::pair<Term, Term> (*)(const Triple&)> below{
        [](const Triple& t) { return std::pair<Term, Term>(t.s, t.p); }, key};
    auto lo = std::lower_bound(
        triples_.begin(), triples_.end(), 0,
        [&](const Triple& t, int k) { return below(t, k); });
    auto hi = std::upper_bound(
        lo, triples_.end(), 0,
        [&](int k, const Triple& t) { return below(k, t); });
    return MatchRange::Direct(base + (lo - triples_.begin()),
                              base + (hi - triples_.begin()),
                              IndexOrder::kSpo);
  }
  if (p) {
    EnsureIndexes();
    if (o) {
      return perm_range(
          pos_,
          [](const Triple& t) { return std::pair<Term, Term>(t.p, t.o); },
          Key2{*p, true, *o}, IndexOrder::kPos);
    }
    return perm_range(
        pso_,
        [](const Triple& t) { return std::pair<Term, Term>(t.p, t.s); },
        Key2{*p, false, Term()}, IndexOrder::kPso);
  }
  if (o) {
    EnsureIndexes();
    return perm_range(
        osp_,
        [](const Triple& t) { return std::pair<Term, Term>(t.o, t.s); },
        Key2{*o, false, Term()}, IndexOrder::kOsp);
  }
  return MatchRange::Direct(base, last, IndexOrder::kFullScan);
}

}  // namespace swdb
