#include "rdf/graph.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "rdf/scan.h"

namespace swdb {

const char* IndexOrderName(IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return "spo";
    case IndexOrder::kPso:
      return "pso";
    case IndexOrder::kPos:
      return "pos";
    case IndexOrder::kOsp:
      return "osp";
    case IndexOrder::kFullScan:
      return "scan";
  }
  return "?";
}

int ColumnOfPosition(IndexOrder order, int pos) {
  // Key sequences: pso = (p,s,o), pos = (p,o,s), osp = (o,s,p).
  static constexpr int kMap[3][3] = {
      /* kPso: s,p,o -> */ {1, 0, 2},
      /* kPos: s,p,o -> */ {2, 0, 1},
      /* kOsp: s,p,o -> */ {1, 2, 0},
  };
  return kMap[static_cast<size_t>(order) - 1][pos];
}

namespace {

// The raw term bits of a triple permuted into each order's key
// sequence. Term::operator< compares packed bits, so lexicographic
// order over these uint32 keys is exactly the old struct comparators'
// order — the columnar refactor cannot change enumeration order.
using Key3 = std::array<uint32_t, 3>;

inline Key3 KeyPso(const Triple& t) {
  return {t.p.bits(), t.s.bits(), t.o.bits()};
}
inline Key3 KeyPos(const Triple& t) {
  return {t.p.bits(), t.o.bits(), t.s.bits()};
}
inline Key3 KeyOsp(const Triple& t) {
  return {t.o.bits(), t.s.bits(), t.p.bits()};
}

// Lexicographic lower bound of `key` in the columns of `ix` — the patch
// paths' slot search. Compares contiguous uint32 columns only; no
// gather through the primary triple vector.
size_t ColumnarLowerBound(const IndexColumns& ix, const Key3& key) {
  size_t lo = 0, hi = ix.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    bool less;
    if (ix.k0[mid] != key[0]) {
      less = ix.k0[mid] < key[0];
    } else if (ix.k1[mid] != key[1]) {
      less = ix.k1[mid] < key[1];
    } else {
      less = ix.k2[mid] < key[2];
    }
    if (less) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

template <typename Col>
void InsertAtSlot(Col& col, size_t slot, uint32_t v) {
  col.insert(col.begin() + static_cast<std::ptrdiff_t>(slot), v);
}
template <typename Col>
void EraseAtSlot(Col& col, size_t slot) {
  col.erase(col.begin() + static_cast<std::ptrdiff_t>(slot));
}

}  // namespace

Graph::Graph(std::initializer_list<Triple> triples)
    : triples_(triples) {
  Normalize();
}

Graph::Graph(std::vector<Triple> triples) : triples_(std::move(triples)) {
  Normalize();
}

void Graph::Normalize() {
  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());
  indexes_valid_ = false;
}

bool Graph::Insert(const Triple& t) {
  auto it = std::lower_bound(triples_.begin(), triples_.end(), t);
  if (it != triples_.end() && *it == t) return false;
  const uint32_t pos = static_cast<uint32_t>(it - triples_.begin());
  triples_.insert(it, t);
  ++epoch_;
  if (indexes_valid_) {
    if (unread_patches_.value() >= PatchCrossover(triples_.size())) {
      DropIndexes();
    } else {
      PatchIndexesInsert(pos);
    }
  }
  return true;
}

void Graph::InsertAll(const Graph& other) {
  if (other.empty()) return;
  std::vector<Triple> merged;
  merged.reserve(triples_.size() + other.triples_.size());
  std::set_union(triples_.begin(), triples_.end(), other.triples_.begin(),
                 other.triples_.end(), std::back_inserter(merged));
  if (merged.size() == triples_.size()) return;  // other ⊆ *this: no-op
  triples_ = std::move(merged);
  ++epoch_;
  if (indexes_valid_) DropIndexes();  // bulk path: rebuild on next lookup
}

bool Graph::Erase(const Triple& t) {
  auto it = std::lower_bound(triples_.begin(), triples_.end(), t);
  if (it == triples_.end() || *it != t) return false;
  const uint32_t pos = static_cast<uint32_t>(it - triples_.begin());
  if (indexes_valid_) {
    if (unread_patches_.value() >= PatchCrossover(triples_.size())) {
      DropIndexes();
    } else {
      PatchIndexesErase(pos);  // before triples_ shifts
    }
  }
  triples_.erase(it);
  ++epoch_;
  return true;
}

uint64_t Graph::PatchCrossover(size_t n) {
  // A patch shifts/renumbers O(n) contiguous column entries; a rebuild
  // pays a comparison sort over the same rows — ~log2(n) passes with a
  // notably larger per-element constant. Measured on the E17 host the
  // rebuild costs on the order of tens of patches (see EXPERIMENTS.md),
  // so 3·log2(n) tracks the ratio across 10k..4M rows while keeping the
  // floor high enough that small graphs never thrash.
  uint64_t bits = 0;
  while ((n >> bits) != 0) ++bits;  // ≈ log2(n) + 1
  return std::max<uint64_t>(16, 3 * bits);
}

void Graph::DropIndexes() {
  indexes_valid_ = false;
  pso_.clear();
  pos_.clear();
  osp_.clear();
  unread_patches_.Reset();
  index_drops_.Add(1);
}

void Graph::PatchIndexesInsert(uint32_t pos) {
  // triples_[pos] is already in place; every pre-existing primary id at
  // or above pos shifted up by one. Renumber, then sorted-insert the new
  // entry's key bits and row id into each permutation's columns.
  const Triple& t = triples_[pos];
  auto patch = [&](IndexColumns& ix, const Key3& key) {
    for (uint32_t& r : ix.row) {
      if (r >= pos) ++r;
    }
    const size_t slot = ColumnarLowerBound(ix, key);
    InsertAtSlot(ix.k0, slot, key[0]);
    InsertAtSlot(ix.k1, slot, key[1]);
    InsertAtSlot(ix.k2, slot, key[2]);
    InsertAtSlot(ix.row, slot, pos);
  };
  patch(pso_, KeyPso(t));
  patch(pos_, KeyPos(t));
  patch(osp_, KeyOsp(t));
  unread_patches_.Add(1);
  index_patches_.Add(1);
}

void Graph::PatchIndexesErase(uint32_t pos) {
  // Called while triples_[pos] is still present: locate the slot by
  // binary search on the key columns, remove it, renumber the tail.
  const Triple& t = triples_[pos];
  auto patch = [&](IndexColumns& ix, const Key3& key) {
    // The orders are total over distinct triples, so the lower bound
    // lands exactly on the slot holding this entry.
    const size_t slot = ColumnarLowerBound(ix, key);
    EraseAtSlot(ix.k0, slot);
    EraseAtSlot(ix.k1, slot);
    EraseAtSlot(ix.k2, slot);
    EraseAtSlot(ix.row, slot);
    for (uint32_t& r : ix.row) {
      if (r > pos) --r;
    }
  };
  patch(pso_, KeyPso(t));
  patch(pos_, KeyPos(t));
  patch(osp_, KeyOsp(t));
  unread_patches_.Add(1);
  index_patches_.Add(1);
}

bool Graph::Contains(const Triple& t) const {
  return std::binary_search(triples_.begin(), triples_.end(), t);
}

bool Graph::IsSubgraphOf(const Graph& other) const {
  return std::includes(other.triples_.begin(), other.triples_.end(),
                       triples_.begin(), triples_.end());
}

std::vector<Term> Graph::Universe() const {
  std::vector<Term> terms;
  terms.reserve(triples_.size() * 3);
  for (const Triple& t : triples_) {
    terms.push_back(t.s);
    terms.push_back(t.p);
    terms.push_back(t.o);
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

std::vector<Term> Graph::Vocabulary() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsIri(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::BlankNodes() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsBlank(); }),
              terms.end());
  return terms;
}

std::vector<Term> Graph::Variables() const {
  std::vector<Term> terms = Universe();
  terms.erase(std::remove_if(terms.begin(), terms.end(),
                             [](Term t) { return !t.IsVar(); }),
              terms.end());
  return terms;
}

bool Graph::IsGround() const {
  for (const Triple& t : triples_) {
    if (!t.IsGround()) return false;
  }
  return true;
}

bool Graph::IsSimple() const {
  for (const Triple& t : triples_) {
    if (vocab::IsRdfsVocab(t.s) || vocab::IsRdfsVocab(t.p) ||
        vocab::IsRdfsVocab(t.o)) {
      return false;
    }
  }
  return true;
}

bool Graph::IsWellFormedData() const {
  for (const Triple& t : triples_) {
    if (!t.IsWellFormedData()) return false;
  }
  return true;
}

Graph Graph::Union(const Graph& g1, const Graph& g2) {
  Graph out = g1;
  out.InsertAll(g2);
  return out;
}

void Graph::EnsureIndexes() const {
  // An index read consumes any accumulated patches: the crossover
  // counter restarts here, so only *unread* patch bursts trigger drops.
  unread_patches_.Reset();
  if (indexes_valid_) return;
  const size_t n = triples_.size();
  // Sort (key, row) entries together, then split into columns. The
  // 16-byte entries sort with better locality than id-vector sorts that
  // gather 12-byte triples per comparison.
  struct Entry {
    Key3 key;
    uint32_t row;
  };
  std::vector<Entry> entries(n);
  auto build = [&](IndexColumns& ix, Key3 (*key_of)(const Triple&)) {
    for (uint32_t i = 0; i < n; ++i) {
      entries[i].key = key_of(triples_[i]);
      entries[i].row = i;
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
    ix.k0.resize(n);
    ix.k1.resize(n);
    ix.k2.resize(n);
    ix.row.resize(n);
    for (size_t i = 0; i < n; ++i) {
      ix.k0[i] = entries[i].key[0];
      ix.k1[i] = entries[i].key[1];
      ix.k2[i] = entries[i].key[2];
      ix.row[i] = entries[i].row;
    }
  };
  build(pso_, KeyPso);
  build(pos_, KeyPos);
  build(osp_, KeyOsp);
  indexes_valid_ = true;
  index_rebuilds_.Add(1);
}

GraphStats Graph::Stats() const {
  GraphStats s;
  s.index_rebuilds = index_rebuilds_.value();
  s.index_patches = index_patches_.value();
  s.index_drops = index_drops_.value();
  s.matches_calls = matches_calls_.value();
  s.rows_scanned = rows_scanned_.value();
  s.rows_yielded = rows_yielded_.value();
  s.indexes_built = indexes_valid_;
  s.bytes_primary = triples_.capacity() * sizeof(Triple);
  s.bytes_pso = pso_.bytes();
  s.bytes_pos = pos_.bytes();
  s.bytes_osp = osp_.bytes();
  return s;
}

size_t MatchRange::FilterBound(int pos, Term value,
                               std::vector<uint32_t>* out) const {
  const size_t before = out->size();
  if (cols_ != nullptr) {
    const std::vector<uint32_t>& col =
        cols_->key_column(ColumnOfPosition(order_, pos));
    scan::FilterEq(col.data(), first_, last_, value.bits(), out);
    // The kernel emitted permutation slots; map to primary rows in
    // place (index order is preserved).
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i] = cols_->row[(*out)[i]];
    }
  } else {
    for (const Triple* t = direct_first_; t != direct_last_; ++t) {
      const Term v = pos == 0 ? t->s : pos == 1 ? t->p : t->o;
      if (v == value) out->push_back(static_cast<uint32_t>(t - base_));
    }
  }
  return out->size() - before;
}

size_t MatchRange::FilterPairEqual(int pos_a, int pos_b,
                                   std::vector<uint32_t>* out) const {
  const size_t before = out->size();
  if (cols_ != nullptr) {
    const std::vector<uint32_t>& a =
        cols_->key_column(ColumnOfPosition(order_, pos_a));
    const std::vector<uint32_t>& b =
        cols_->key_column(ColumnOfPosition(order_, pos_b));
    scan::FilterPairEq(a.data(), b.data(), first_, last_, out);
    for (size_t i = before; i < out->size(); ++i) {
      (*out)[i] = cols_->row[(*out)[i]];
    }
  } else {
    auto at = [](const Triple& t, int p) {
      return p == 0 ? t.s : p == 1 ? t.p : t.o;
    };
    for (const Triple* t = direct_first_; t != direct_last_; ++t) {
      if (at(*t, pos_a) == at(*t, pos_b)) {
        out->push_back(static_cast<uint32_t>(t - base_));
      }
    }
  }
  return out->size() - before;
}

namespace {

// Projects a triple onto the key positions of each index order. A key is
// the (up to two) leading positions of the order that are bound; unbound
// trailing positions compare as "match everything" via prefix keys.
struct Key2 {
  Term first;
  bool has_second;
  Term second;
};

// Lexicographic comparison of an order's leading positions against a
// one-or-two-term prefix key; usable from std::equal_range (called with
// (elem, key) and (key, elem)).
template <typename Project>
struct PrefixCmp {
  Project project;  // Triple -> std::pair<Term, Term> in index order
  Key2 key;

  bool operator()(const Triple& t, int) const {  // elem < key
    auto [a, b] = project(t);
    if (a != key.first) return a < key.first;
    return key.has_second && b < key.second;
  }
  bool operator()(int, const Triple& t) const {  // key < elem
    auto [a, b] = project(t);
    if (a != key.first) return key.first < a;
    return key.has_second && key.second < b;
  }
};

}  // namespace

MatchRange Graph::Matches(std::optional<Term> s, std::optional<Term> p,
                          std::optional<Term> o) const {
  const Triple* base = triples_.data();
  const Triple* last = base + triples_.size();
  matches_calls_.Add(1);

  // One- or two-key equal range over a permutation's sorted columns:
  // k0 == key0, then (optionally) k1 == key1 within the k0 run. Both
  // narrowings are hybrid binary-search + vectorized window sweeps
  // (scan::SortedEqualRange), touching only contiguous uint32 columns.
  auto col_range = [&](const IndexColumns& ix, uint32_t key0,
                       const uint32_t* key1, IndexOrder order) {
    size_t scanned = 0;
    auto [lo, hi] =
        scan::SortedEqualRange(ix.k0.data(), 0, ix.size(), key0, &scanned);
    if (key1 != nullptr && lo < hi) {
      std::tie(lo, hi) =
          scan::SortedEqualRange(ix.k1.data(), lo, hi, *key1, &scanned);
    }
    rows_scanned_.Add(scanned);
    rows_yielded_.Add(hi - lo);
    return MatchRange::Columnar(base, &ix, lo, hi, order);
  };

  if (s) {
    if (p && o) {
      // Fully bound: a zero- or one-element run in the primary order.
      Triple key(*s, *p, *o);
      auto [lo, hi] = std::equal_range(triples_.begin(), triples_.end(), key);
      rows_yielded_.Add(static_cast<size_t>(hi - lo));
      return MatchRange::Direct(base, base + (lo - triples_.begin()),
                                base + (hi - triples_.begin()),
                                IndexOrder::kSpo);
    }
    if (o) {
      // (s, *, o): contiguous under (o,s,p).
      EnsureIndexes();
      const uint32_t key1 = s->bits();
      return col_range(osp_, o->bits(), &key1, IndexOrder::kOsp);
    }
    // (s) or (s, p): prefix runs of the primary (s,p,o) order.
    Key2 key{*s, p.has_value(), p.value_or(Term())};
    PrefixCmp<std::pair<Term, Term> (*)(const Triple&)> below{
        [](const Triple& t) { return std::pair<Term, Term>(t.s, t.p); }, key};
    auto lo = std::lower_bound(
        triples_.begin(), triples_.end(), 0,
        [&](const Triple& t, int k) { return below(t, k); });
    auto hi = std::upper_bound(
        lo, triples_.end(), 0,
        [&](int k, const Triple& t) { return below(k, t); });
    rows_yielded_.Add(static_cast<size_t>(hi - lo));
    return MatchRange::Direct(base, base + (lo - triples_.begin()),
                              base + (hi - triples_.begin()),
                              IndexOrder::kSpo);
  }
  if (p) {
    EnsureIndexes();
    if (o) {
      const uint32_t key1 = o->bits();
      return col_range(pos_, p->bits(), &key1, IndexOrder::kPos);
    }
    return col_range(pso_, p->bits(), nullptr, IndexOrder::kPso);
  }
  if (o) {
    EnsureIndexes();
    return col_range(osp_, o->bits(), nullptr, IndexOrder::kOsp);
  }
  rows_yielded_.Add(triples_.size());
  return MatchRange::Direct(base, base, last, IndexOrder::kFullScan);
}

}  // namespace swdb
