#include "rdf/term.h"

#include <bit>
#include <cassert>

#include "util/str.h"

namespace swdb {

namespace {
constexpr const char* kVocabNames[] = {
    "rdfs:subPropertyOf", "rdfs:subClassOf", "rdf:type", "rdfs:domain",
    "rdfs:range"};

Term MakeTerm(TermKind kind, uint32_t id) {
  switch (kind) {
    case TermKind::kIri:
      return Term::Iri(id);
    case TermKind::kBlank:
      return Term::Blank(id);
    case TermKind::kVar:
      return Term::Var(id);
  }
  return Term();
}
}  // namespace

// --- Dictionary::NameTable -------------------------------------------

Dictionary::NameTable::Chunk::Chunk(size_t n)
    : slots(new std::atomic<const std::string*>[n]()), capacity(n) {}

Dictionary::NameTable::~NameTable() {
  for (std::atomic<Chunk*>& slot : chunks_) {
    Chunk* c = slot.load(std::memory_order_acquire);
    if (c == nullptr) continue;
    for (size_t i = 0; i < c->capacity; ++i) {
      delete c->slots[i].load(std::memory_order_acquire);
    }
    delete c;
  }
}

void Dictionary::NameTable::Locate(uint32_t id, int* chunk,
                                   uint32_t* offset) {
  const uint32_t q = id / kBase + 1;
  const int c = std::bit_width(q) - 1;
  *chunk = c;
  *offset = id - kBase * ((1u << c) - 1);
}

Dictionary::NameTable::Chunk* Dictionary::NameTable::ChunkAt(int c) {
  Chunk* existing = chunks_[c].load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  Chunk* fresh = new Chunk(static_cast<size_t>(kBase) << c);
  if (chunks_[c].compare_exchange_strong(existing, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;  // another shard's writer won the install race
  return existing;
}

const std::string* Dictionary::NameTable::Get(uint32_t id) const {
  int c;
  uint32_t off;
  Locate(id, &c, &off);
  if (c >= kMaxChunks) return nullptr;
  const Chunk* chunk = chunks_[c].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return chunk->slots[off].load(std::memory_order_acquire);
}

void Dictionary::NameTable::Put(uint32_t id, const std::string* name) {
  int c;
  uint32_t off;
  Locate(id, &c, &off);
  assert(c < kMaxChunks && "term id space exhausted");
  ChunkAt(c)->slots[off].store(name, std::memory_order_release);
}

// --- Dictionary ------------------------------------------------------

Dictionary::Dictionary() {
  // Reserve the fixed vocabulary ids so they agree across dictionaries.
  for (const char* name : kVocabNames) {
    Intern(TermKind::kIri, name);
  }
}

Dictionary::Dictionary(const Dictionary& other) : Dictionary() {
  // Re-intern every name in id order: the sequential id allocators
  // reproduce the source ids exactly (the five vocabulary names interned
  // by the delegated constructor are hit as existing entries).
  for (int k = 0; k < 3; ++k) {
    const TermKind kind = static_cast<TermKind>(k);
    const uint32_t n = other.next_id_[k].load(std::memory_order_acquire);
    for (uint32_t id = 0; id < n; ++id) {
      const std::string* name = other.names_[k].Get(id);
      assert(name != nullptr);
      Intern(kind, *name);
    }
  }
  fresh_counter_.store(other.fresh_counter_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

Dictionary::~Dictionary() = default;

Term Dictionary::Intern(TermKind kind, std::string_view name,
                        bool* inserted) {
  const int k = static_cast<int>(kind);
  Shard& shard = shards_[ShardOf(name)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& idx = shard.index[k];
  if (auto it = idx.find(name); it != idx.end()) {
    return MakeTerm(kind, it->second);
  }
  const uint32_t id = next_id_[k].fetch_add(1, std::memory_order_relaxed);
  assert(id < (1u << 30) && "term id space exhausted");
  const auto* stored = new std::string(name);
  names_[k].Put(id, stored);
  idx.emplace(std::string_view(*stored), id);
  shard.name_bytes += stored->size();
  if (inserted != nullptr) *inserted = true;
  return MakeTerm(kind, id);
}

Term Dictionary::Iri(std::string_view name) {
  return Intern(TermKind::kIri, name);
}

Term Dictionary::Blank(std::string_view label) {
  return Intern(TermKind::kBlank, label);
}

Term Dictionary::Var(std::string_view name) {
  return Intern(TermKind::kVar, name);
}

Term Dictionary::FreshBlank() {
  // Each attempt consumes a counter value; the intern is the atomic
  // "was it free?" test, so concurrent callers never share a label.
  for (;;) {
    std::string label = "g";
    label += std::to_string(
        fresh_counter_.fetch_add(1, std::memory_order_relaxed));
    bool inserted = false;
    const Term t = Intern(TermKind::kBlank, label, &inserted);
    if (inserted) return t;
  }
}

Term Dictionary::FreshIri() {
  for (;;) {
    std::string name = "urn:swdb:skolem:c";
    name += std::to_string(
        fresh_counter_.fetch_add(1, std::memory_order_relaxed));
    bool inserted = false;
    const Term t = Intern(TermKind::kIri, name, &inserted);
    if (inserted) return t;
  }
}

Result<Term> Dictionary::FindIri(std::string_view name) const {
  const Shard& shard = shards_[ShardOf(name)];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto& idx = shard.index[static_cast<int>(TermKind::kIri)];
  auto it = idx.find(name);
  if (it == idx.end()) {
    return Status::NotFound("IRI not interned: " + std::string(name));
  }
  return Term::Iri(it->second);
}

std::string Dictionary::Name(Term t) const {
  const std::string* name = names_[static_cast<int>(t.kind())].Get(t.id());
  if (name == nullptr) {
    return NumberedName("<unknown#", t.id()) + ">";
  }
  switch (t.kind()) {
    case TermKind::kIri:
      return *name;
    case TermKind::kBlank:
      return "_:" + *name;
    case TermKind::kVar:
      return "?" + *name;
  }
  return {};
}

size_t Dictionary::CountOf(TermKind kind) const {
  return next_id_[static_cast<int>(kind)].load(std::memory_order_acquire);
}

DictionaryStats Dictionary::Stats() const {
  DictionaryStats s;
  s.iris = CountOf(TermKind::kIri);
  s.blanks = CountOf(TermKind::kBlank);
  s.vars = CountOf(TermKind::kVar);
  s.shards = kShards;
  s.shard_entries.reserve(kShards);
  s.shard_bytes.reserve(kShards);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    size_t entries = 0;
    for (const auto& idx : shard.index) entries += idx.size();
    s.shard_entries.push_back(entries);
    s.shard_bytes.push_back(shard.name_bytes);
    s.name_bytes += shard.name_bytes;
  }
  return s;
}

}  // namespace swdb
