#include "rdf/term.h"

#include <cassert>
#include "util/str.h"

namespace swdb {

namespace {
constexpr const char* kVocabNames[] = {
    "rdfs:subPropertyOf", "rdfs:subClassOf", "rdf:type", "rdfs:domain",
    "rdfs:range"};
}  // namespace

Dictionary::Dictionary() {
  // Reserve the fixed vocabulary ids so they agree across dictionaries.
  for (const char* name : kVocabNames) {
    Intern(TermKind::kIri, name);
  }
}

Term Dictionary::Intern(TermKind kind, std::string_view name) {
  auto& idx = index_[static_cast<int>(kind)];
  auto& pool = names_[static_cast<int>(kind)];
  auto it = idx.find(std::string(name));
  if (it != idx.end()) {
    return Term(kind == TermKind::kIri    ? Term::Iri(it->second)
                : kind == TermKind::kBlank ? Term::Blank(it->second)
                                            : Term::Var(it->second));
  }
  uint32_t id = static_cast<uint32_t>(pool.size());
  assert(id < (1u << 30) && "term id space exhausted");
  pool.emplace_back(name);
  idx.emplace(pool.back(), id);
  switch (kind) {
    case TermKind::kIri:
      return Term::Iri(id);
    case TermKind::kBlank:
      return Term::Blank(id);
    case TermKind::kVar:
      return Term::Var(id);
  }
  return Term();
}

Term Dictionary::Iri(std::string_view name) {
  return Intern(TermKind::kIri, name);
}

Term Dictionary::Blank(std::string_view label) {
  return Intern(TermKind::kBlank, label);
}

Term Dictionary::Var(std::string_view name) {
  return Intern(TermKind::kVar, name);
}

Term Dictionary::FreshBlank() {
  for (;;) {
    std::string label = "g";
    label += std::to_string(fresh_counter_++);
    if (!index_[static_cast<int>(TermKind::kBlank)].count(label)) {
      return Intern(TermKind::kBlank, label);
    }
  }
}

Term Dictionary::FreshIri() {
  for (;;) {
    std::string name = "urn:swdb:skolem:c";
    name += std::to_string(fresh_counter_++);
    if (!index_[static_cast<int>(TermKind::kIri)].count(name)) {
      return Intern(TermKind::kIri, name);
    }
  }
}

Result<Term> Dictionary::FindIri(std::string_view name) const {
  const auto& idx = index_[static_cast<int>(TermKind::kIri)];
  auto it = idx.find(std::string(name));
  if (it == idx.end()) {
    return Status::NotFound("IRI not interned: " + std::string(name));
  }
  return Term::Iri(it->second);
}

std::string Dictionary::Name(Term t) const {
  const auto& pool = names_[static_cast<int>(t.kind())];
  if (t.id() >= pool.size()) {
    return NumberedName("<unknown#", t.id()) + ">";
  }
  switch (t.kind()) {
    case TermKind::kIri:
      return pool[t.id()];
    case TermKind::kBlank:
      return "_:" + pool[t.id()];
    case TermKind::kVar:
      return "?" + pool[t.id()];
  }
  return {};
}

size_t Dictionary::CountOf(TermKind kind) const {
  return names_[static_cast<int>(kind)].size();
}

}  // namespace swdb
