#ifndef SWDB_RDF_TRIPLE_H_
#define SWDB_RDF_TRIPLE_H_

#include <cstddef>
#include <functional>

#include "rdf/term.h"
#include "util/hash.h"

namespace swdb {

/// An RDF triple (s, p, o) ∈ (U ∪ B) × U × (U ∪ B) (paper Def. 2.1).
/// The same struct also represents triple *patterns* (query bodies and
/// heads), where any position may hold a variable; use IsWellFormedData /
/// IsWellFormedPattern to distinguish.
struct Triple {
  Term s;
  Term p;
  Term o;

  constexpr Triple() = default;
  constexpr Triple(Term subject, Term predicate, Term object)
      : s(subject), p(predicate), o(object) {}

  /// Well-formed as data: subject and object in UB, predicate a URI.
  constexpr bool IsWellFormedData() const {
    return s.IsName() && p.IsIri() && o.IsName();
  }

  /// Well-formed as a pattern: variables allowed in any position, blanks
  /// not allowed as predicate (not well-defined in the RDF spec).
  constexpr bool IsWellFormedPattern() const { return !p.IsBlank(); }

  /// True if no position holds a blank node.
  constexpr bool IsGround() const {
    return !s.IsBlank() && !p.IsBlank() && !o.IsBlank();
  }

  /// True if no position holds a variable.
  constexpr bool HasNoVars() const {
    return !s.IsVar() && !p.IsVar() && !o.IsVar();
  }

  constexpr bool operator==(const Triple& t) const {
    return s == t.s && p == t.p && o == t.o;
  }
  constexpr bool operator!=(const Triple& t) const { return !(*this == t); }
  constexpr bool operator<(const Triple& t) const {
    if (s != t.s) return s < t.s;
    if (p != t.p) return p < t.p;
    return o < t.o;
  }
};

}  // namespace swdb

template <>
struct std::hash<swdb::Triple> {
  size_t operator()(const swdb::Triple& t) const noexcept {
    size_t seed = std::hash<swdb::Term>()(t.s);
    swdb::HashCombine(&seed, std::hash<swdb::Term>()(t.p));
    swdb::HashCombine(&seed, std::hash<swdb::Term>()(t.o));
    return seed;
  }
};

#endif  // SWDB_RDF_TRIPLE_H_
