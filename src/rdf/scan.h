#ifndef SWDB_RDF_SCAN_H_
#define SWDB_RDF_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace swdb {
namespace scan {

/// Vectorized column-scan kernels backing the columnar triple indexes
/// (graph.h). Every kernel has a scalar reference implementation that is
/// always compiled; the dispatched entry points select a SIMD body when
/// the build enables it (SWDB_SIMD, the default) and the host CPU
/// supports it, and are REQUIRED to be bit-identical to the scalar
/// reference on every input: same positions, same order, same counts.
/// Parity between the two is fuzzed in graph_test.cc, and CI runs the
/// whole suite once with SWDB_SIMD=OFF.
///
/// All position outputs are ascending (index order), so consumers that
/// enumerate candidates through them preserve the enumeration order of
/// an unfiltered sweep.

/// True when a SIMD body is compiled in *and* selected at runtime.
bool SimdEnabled();

/// Name of the kernel the dispatched entry points run: "avx2", "sse2"
/// or "scalar". Stable strings, suitable for bench labels.
const char* KernelName();

/// Appends to *out every position i in [lo, hi) with col[i] == key,
/// ascending. Returns the number of positions appended.
size_t FilterEq(const uint32_t* col, size_t lo, size_t hi, uint32_t key,
                std::vector<uint32_t>* out);
size_t FilterEqScalar(const uint32_t* col, size_t lo, size_t hi, uint32_t key,
                      std::vector<uint32_t>* out);

/// Appends to *out every position i in [lo, hi) with a[i] == b[i],
/// ascending (the repeated-position residual, e.g. pattern (X, p, X)).
/// Returns the number of positions appended.
size_t FilterPairEq(const uint32_t* a, const uint32_t* b, size_t lo,
                    size_t hi, std::vector<uint32_t>* out);
size_t FilterPairEqScalar(const uint32_t* a, const uint32_t* b, size_t lo,
                          size_t hi, std::vector<uint32_t>* out);

/// Equal-range of `key` within col[lo, hi), which must be sorted
/// ascending (unsigned): returns exactly what std::equal_range over the
/// same window returns, as absolute positions. Binary search narrows the
/// window to kSortedScanWindow, then a branch-free compare-and-count
/// sweep finishes it. If `scanned` is non-null, the number of elements
/// the final sweep examined is added to it (observability only).
std::pair<size_t, size_t> SortedEqualRange(const uint32_t* col, size_t lo,
                                           size_t hi, uint32_t key,
                                           size_t* scanned = nullptr);
std::pair<size_t, size_t> SortedEqualRangeScalar(const uint32_t* col,
                                                 size_t lo, size_t hi,
                                                 uint32_t key,
                                                 size_t* scanned = nullptr);

/// Window below which SortedEqualRange switches from halving to the
/// linear compare-and-count sweep.
inline constexpr size_t kSortedScanWindow = 256;

}  // namespace scan
}  // namespace swdb

#endif  // SWDB_RDF_SCAN_H_
