#ifndef SWDB_RDF_HOM_H_
#define SWDB_RDF_HOM_H_

#include <functional>
#include <optional>
#include <vector>

#include "rdf/graph.h"
#include "rdf/map.h"
#include "util/status.h"

namespace swdb {

/// Options for the backtracking pattern matcher.
struct MatchOptions {
  /// Backtracking-step budget; exceeding it yields kLimitExceeded. The
  /// underlying problems are NP-complete (paper Thm 2.9), so a budget
  /// keeps adversarial instances from hanging the caller.
  uint64_t max_steps = 50'000'000;

  /// Restrict the image of open *blank* terms to blank nodes of the
  /// target (used by the isomorphism search).
  bool blanks_to_blanks_only = false;

  /// Require open blank terms to take pairwise-distinct values (used by
  /// the isomorphism search).
  bool injective_blanks = false;

  /// Treat the target graph as if this triple were absent. Lets callers
  /// probe "does the pattern map into target \ {t}" for many t without
  /// copying the target or invalidating its cached indexes (the
  /// leanness/core hot path).
  std::optional<Triple> exclude_triple;

  /// Disable the most-constrained-first dynamic triple ordering and
  /// process pattern triples in their given order instead. Exists for
  /// ablation benchmarks; expect exponentially worse behaviour on joins.
  bool static_order = false;
};

/// Backtracking solver that enumerates all assignments μ of the *open*
/// terms of a pattern (its blank nodes and variables) such that
/// μ(pattern) ⊆ target.
///
/// This single engine implements the map-existence characterizations of
/// the paper: simple entailment (Thm 2.8(2)), RDFS entailment via the
/// closure (Thm 2.8(1)), leanness (Def. 3.7), query matching (§4.1) and
/// the containment tests (Thm 5.5/5.8).
///
/// The search assigns one pattern triple at a time, always choosing the
/// pending triple with the fewest matching target triples under the
/// current partial assignment (most-constrained-first), and enumerates
/// its matches through the target graph's (s,p,o)/(p,s,o)/(p,o,s)
/// indexes.
class PatternMatcher {
 public:
  /// The target graph must outlive the matcher and contain no variables.
  PatternMatcher(std::vector<Triple> pattern, const Graph* target,
                 MatchOptions options = MatchOptions());

  /// Enumerates assignments. The visitor is called once per solution map
  /// (distinct solutions, no duplicates); returning false stops the
  /// enumeration early. Returns kLimitExceeded if the step budget was
  /// exhausted before the search space was covered, OK otherwise (early
  /// stop by the visitor is still OK).
  Status Enumerate(const std::function<bool(const TermMap&)>& visitor);

  /// Convenience: the first solution found, if any.
  Result<std::optional<TermMap>> FindAny();

  /// Number of backtracking steps consumed by the last call.
  uint64_t steps_used() const { return steps_; }

 private:
  bool Search(size_t depth, const std::function<bool(const TermMap&)>& visitor,
              bool* stopped);
  // Returns the index (into pending_) of the cheapest pending triple and
  // its candidate count estimate.
  size_t PickNext(size_t depth, size_t* count_estimate) const;
  // Tries to bind the open positions of pattern triple `pt` to match
  // target triple `tt`. Records newly bound terms in newly_bound.
  bool TryBind(const Triple& pt, const Triple& tt,
               std::vector<Term>* newly_bound);

  std::vector<Triple> pattern_;
  const Graph* target_;
  MatchOptions options_;

  // Search state.
  std::vector<size_t> pending_;  // indices of unprocessed pattern triples
  TermMap assignment_;
  std::vector<Term> used_blank_values_;  // for injectivity checks
  uint64_t steps_ = 0;
  bool budget_exhausted_ = false;
};

/// Finds a map μ with μ(from) ⊆ to (a homomorphism between RDF graphs).
Result<std::optional<TermMap>> FindHomomorphism(
    const Graph& from, const Graph& to, MatchOptions options = MatchOptions());

/// True iff a homomorphism from → to exists. Asserts the step budget was
/// not exhausted; use FindHomomorphism for budget-aware callers.
bool HasHomomorphism(const Graph& from, const Graph& to);

/// Simple entailment g1 ⊨ g2 for simple graphs, characterized by the
/// existence of a map g2 → g1 (paper Thm 2.8(2)). This function computes
/// exactly that map condition; for graphs with RDFS vocabulary use
/// RdfsEntails (inference/closure.h) which first closes g1.
bool SimpleEntails(const Graph& g1, const Graph& g2);

/// Simple equivalence: maps in both directions (paper §2.3.1).
bool SimpleEquivalent(const Graph& g1, const Graph& g2);

}  // namespace swdb

#endif  // SWDB_RDF_HOM_H_
