#ifndef SWDB_RDF_HOM_H_
#define SWDB_RDF_HOM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "rdf/graph.h"
#include "rdf/map.h"
#include "util/status.h"

namespace swdb {

class ThreadPool;

/// Counters describing one Enumerate run of the pattern matcher. All
/// counters are cheap increments on the search path; collecting them is
/// always on (there is no instrumentation build flag).
struct MatchStats {
  /// Search nodes that resolved an index range and iterated candidates
  /// (solution leaves and the ground prefilter are not nodes).
  uint64_t nodes_expanded = 0;
  /// Candidate triples pulled out of index ranges across all nodes.
  uint64_t candidates_scanned = 0;
  /// Candidates that survived the exclude filter and entered TryBind.
  uint64_t binds_attempted = 0;
  /// Solutions delivered to the visitor.
  uint64_t solutions_found = 0;
  /// Budget steps consumed (== PatternMatcher::steps_used()).
  uint64_t steps_used = 0;
  /// Selectivity-cache misses: CountMatches calls made by PickNext. The
  /// incremental cache makes this far smaller than nodes × pending.
  uint64_t selectivity_recomputes = 0;
  /// Candidate ranges served, bucketed by the index order that served
  /// them (indexed by IndexOrder).
  std::array<uint64_t, kNumIndexOrders> index_hits = {};
};

/// Options for the backtracking pattern matcher.
struct MatchOptions {
  /// Backtracking-step budget; exceeding it yields kLimitExceeded. The
  /// underlying problems are NP-complete (paper Thm 2.9), so a budget
  /// keeps adversarial instances from hanging the caller.
  uint64_t max_steps = 50'000'000;

  /// Restrict the image of open *blank* terms to blank nodes of the
  /// target (used by the isomorphism search).
  bool blanks_to_blanks_only = false;

  /// Require open blank terms to take pairwise-distinct values (used by
  /// the isomorphism search).
  bool injective_blanks = false;

  /// Treat the target graph as if this triple were absent. Lets callers
  /// probe "does the pattern map into target \ {t}" for many t without
  /// copying the target or invalidating its cached indexes (the
  /// leanness/core hot path).
  std::optional<Triple> exclude_triple;

  /// Disable the most-constrained-first dynamic triple ordering and
  /// process pattern triples in their given order instead. Exists for
  /// ablation benchmarks; expect exponentially worse behaviour on joins.
  bool static_order = false;

  /// When non-null, receives a copy of the run's MatchStats at the end
  /// of every Enumerate call (also on early stop / budget exhaustion).
  MatchStats* stats = nullptr;

  /// When non-null, Enumerate fans the root-level candidate range of the
  /// most-constrained triple out across the pool: each chunk of root
  /// candidates runs an independent matcher (own dense bindings, own
  /// trail) and the per-chunk solution buffers are merged in pinned
  /// chunk order, so the visitor sees the exact sequence the sequential
  /// search would produce (bit-identical results). The step budget is
  /// shared across workers through one atomic counter, so Try* budgets
  /// stay exact; MatchStats is aggregated across workers (cache-local
  /// counters like selectivity_recomputes may differ from a sequential
  /// run). The target graph's indexes are warmed before fan-out; the
  /// pool must outlive the Enumerate call.
  ThreadPool* pool = nullptr;

  /// Root ranges smaller than this stay on the sequential path — below
  /// it, fan-out overhead beats the win. Also the parallel chunk grain.
  size_t parallel_min_root = 64;
};

/// Backtracking solver that enumerates all assignments μ of the *open*
/// terms of a pattern (its blank nodes and variables) such that
/// μ(pattern) ⊆ target.
///
/// This single engine implements the map-existence characterizations of
/// the paper: simple entailment (Thm 2.8(2)), RDFS entailment via the
/// closure (Thm 2.8(1)), leanness (Def. 3.7), query matching (§4.1) and
/// the containment tests (Thm 5.5/5.8).
///
/// The search assigns one pattern triple at a time, always choosing the
/// pending triple with the fewest matching target triples under the
/// current partial assignment (most-constrained-first), and walks its
/// candidates directly through the target graph's index ranges
/// (Graph::Matches) — the candidate loop touches no heap.
///
/// Internally the pattern is compiled once: every distinct open term
/// gets a dense slot id, bindings live in a flat array with an undo
/// trail, and per-triple selectivity counts are cached and recomputed
/// only when a slot of that triple changed (version stamps).
class PatternMatcher {
 public:
  /// The target graph must outlive the matcher and contain no variables.
  PatternMatcher(std::vector<Triple> pattern, const Graph* target,
                 MatchOptions options = MatchOptions());
  /// Convenience: pattern given as a graph (query bodies, iso search).
  PatternMatcher(const Graph& pattern, const Graph* target,
                 MatchOptions options = MatchOptions());

  /// Enumerates assignments. The visitor is called once per solution map
  /// (distinct solutions, no duplicates); returning false stops the
  /// enumeration early. Returns kLimitExceeded if the step budget was
  /// exhausted before the search space was covered, OK otherwise (early
  /// stop by the visitor is still OK).
  Status Enumerate(const std::function<bool(const TermMap&)>& visitor);

  /// Enumerates the assignments that extend `seed`: each pair (open term
  /// of the pattern → value) is pinned before the search starts, pattern
  /// triples the seed makes fully ground are verified with
  /// Graph::Contains (exactly like the ground prefilter of Enumerate),
  /// and the usual most-constrained-first search covers the residue.
  /// Seeded values are bound directly at the slot level, so — unlike
  /// substituting the seed into the pattern text — a seed value that is
  /// a blank node of the target cannot be re-assigned by the search.
  /// Solutions handed to the visitor contain all open terms, seeded ones
  /// included. Seed terms must occur in the pattern (asserted);
  /// contradictory duplicate entries yield zero solutions with OK
  /// status. Always runs sequentially: MatchOptions::pool is ignored —
  /// the batch engine parallelizes across seeded runs, not inside one.
  Status EnumerateSeeded(const std::vector<std::pair<Term, Term>>& seed,
                         const std::function<bool(const TermMap&)>& visitor);

  /// Replaces the step budget between Enumerate calls. The batch engine
  /// hands each compiled query the budget remaining after its earlier
  /// seeded runs, so one query's total spend matches a sequential call.
  void set_max_steps(uint64_t max_steps) { options_.max_steps = max_steps; }

  /// Convenience: the first solution found, if any.
  Result<std::optional<TermMap>> FindAny();

  /// Re-points the matcher at a different target graph, keeping the
  /// compiled pattern. For callers that match one pattern against many
  /// targets (minimal representations, containment probes).
  void set_target(const Graph* target);

  /// Replaces the exclude_triple option between Enumerate calls. For
  /// callers probing "pattern → target \ {t}" for many t with one
  /// compiled pattern (the leanness/core loop).
  void set_exclude_triple(std::optional<Triple> t);

  /// Cooperative cancellation for drivers racing several matchers (the
  /// parallel core engine races one matcher per blank component): the
  /// search aborts — no further solutions, OK status — as soon as
  /// `first_found->load() < index`, i.e. once a lower-indexed rival has
  /// produced the answer that makes this matcher's outcome irrelevant.
  /// This is the same mechanism EnumerateParallel uses internally for
  /// its root chunks; because the chunk matchers own those fields, a
  /// matcher with external cancellation must not also set
  /// MatchOptions::pool. `first_found` must outlive every subsequent
  /// Enumerate/FindAny call; pass nullptr to clear.
  void set_cancellation(const std::atomic<size_t>* first_found, size_t index) {
    cancel_below_ = first_found;
    chunk_index_ = index;
  }

  /// Number of backtracking steps consumed by the last call.
  uint64_t steps_used() const { return steps_; }

  /// Counters from the last Enumerate/FindAny call.
  const MatchStats& stats() const { return stats_; }

 private:
  static constexpr int32_t kNoSlot = -1;

  // A pattern triple with its open positions resolved to slot ids.
  struct CompiledTriple {
    Triple consts;                    // original terms (constants used as-is)
    std::array<int32_t, 3> slot;      // slot id per position, or kNoSlot
    // First pair of positions sharing an open slot (e.g. (X,p,X)), or
    // -1/-1. While that slot is unbound, the index range constrains only
    // the other positions, so Search pre-filters candidates with
    // MatchRange::FilterPairEqual (vectorized over the backing column)
    // instead of materializing and rejecting each triple in TryBind.
    int8_t rep_a = -1;
    int8_t rep_b = -1;
  };
  struct SlotInfo {
    Term term;      // the pattern's blank node or variable
    bool is_blank;  // blank nodes are subject to the blank-only options
  };
  // Per-pattern-triple cached candidate count with the slot-version
  // stamps it was computed under.
  struct Selectivity {
    size_t count = 0;
    std::array<uint32_t, 3> version = {};  // 0 = never computed
  };

  // Open-addressing set of term bits with backward-shift deletion; holds
  // the current images of bound blank slots for the injectivity check.
  // Sized once per Enumerate (≤ one entry per blank slot), so inserts
  // never rehash and lookups are O(1) without heap traffic.
  class FlatTermSet {
   public:
    void Reset(size_t max_elements);
    bool Contains(uint32_t key) const;
    void Insert(uint32_t key);  // key must be absent
    void Erase(uint32_t key);   // key must be present

   private:
    static constexpr uint32_t kEmpty = 0xFFFFFFFFu;  // kind bits 11: unused
    size_t Home(uint32_t key) const {
      return static_cast<size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) & mask_;
    }
    std::vector<uint32_t> table_;
    size_t mask_ = 0;
  };

  void CompilePattern();
  // Resets all per-Enumerate search state (bindings, trail, caches,
  // stats) and rebuilds pending_; returns false if a fully ground
  // pattern triple is absent from the target (no solutions).
  bool ResetSearchState();
  // One backtracking step against the budget: the local counter when
  // sequential, the shared atomic when this matcher is a parallel chunk
  // worker. Returns false (and latches budget_exhausted_) on exhaustion.
  bool ConsumeStep();
  // The parallel driver: fans `roots` (the root-level candidates of
  // pattern triple root_idx) out across options_.pool in chunks, merges
  // buffered solutions in chunk order, then replays them to the visitor.
  Status EnumerateParallel(size_t root_idx, std::vector<Triple> roots,
                           const std::function<bool(const TermMap&)>& visitor);
  // Runs this matcher over one chunk of root candidates: binds pattern
  // triple root_idx to each of roots[begin, end) in order and searches
  // the remaining depths. Used on freshly constructed chunk matchers.
  Status EnumerateChunk(size_t root_idx, const Triple* begin,
                        const Triple* end,
                        const std::function<bool(const TermMap&)>& visitor);
  bool Search(size_t depth, const std::function<bool(const TermMap&)>& visitor,
              bool* stopped);
  // Returns the index (into pending_) of the cheapest pending triple,
  // refreshing stale selectivity-cache entries along the way.
  size_t PickNext(size_t depth);
  // The pattern triple's position `pos` under the current bindings:
  // its constant, its slot's value, or nullopt if the slot is open.
  std::optional<Term> Resolve(const CompiledTriple& ct, int pos) const;
  // Binds the open slots of `ct` to the corresponding positions of the
  // candidate `tt`; pushes each new binding onto the trail. On mismatch
  // returns false with partial bindings left for UndoTo to unwind.
  bool TryBind(const CompiledTriple& ct, const Triple& tt);
  // Unwinds the trail back to the given mark.
  void UndoTo(size_t mark);
  // Refreshes solution_map_ from the dense bindings.
  void EmitSolutionMap();

  std::vector<Triple> pattern_;
  const Graph* target_;
  MatchOptions options_;

  // Compiled pattern (built once in the constructor).
  std::vector<CompiledTriple> compiled_;
  std::vector<SlotInfo> slots_;

  // Search state (reset by Enumerate; no allocation inside the search).
  std::vector<size_t> pending_;  // indices of unprocessed pattern triples
  std::vector<Term> binding_;         // value per slot
  std::vector<uint8_t> bound_;        // 1 if the slot is bound
  std::vector<uint32_t> slot_version_;  // bumped on every bind/unbind
  std::vector<uint32_t> trail_;       // bound slot ids, in bind order
  std::vector<Selectivity> sel_;      // per pattern triple
  FlatTermSet used_blank_values_;     // injectivity (iso search) only
  // Per-depth row-id buffers for the repeated-position fast path (sized
  // once in CompilePattern so recursion never reallocates the vector of
  // vectors; each depth owns its buffer across its candidate loop).
  std::vector<std::vector<uint32_t>> row_scratch_;
  TermMap solution_map_;              // scratch map handed to visitors
  uint64_t steps_ = 0;
  bool budget_exhausted_ = false;
  MatchStats stats_;

  // Parallel-chunk plumbing (set by EnumerateParallel on its chunk
  // matchers; null on user-constructed matchers unless a driver opts in
  // through set_cancellation).
  std::atomic<uint64_t>* shared_steps_ = nullptr;  // pooled step budget
  // First-solution cancellation: chunk `chunk_index_` aborts once a
  // lower-indexed chunk has found a solution (the merged first solution
  // stays the sequential one — lower chunks are never cancelled by
  // higher ones).
  const std::atomic<size_t>* cancel_below_ = nullptr;
  size_t chunk_index_ = 0;
  // Set by FindAny: lets the parallel driver stop chunks after their
  // first solution instead of enumerating everything.
  bool first_solution_only_ = false;
};

/// Finds a map μ with μ(from) ⊆ to (a homomorphism between RDF graphs).
Result<std::optional<TermMap>> FindHomomorphism(
    const Graph& from, const Graph& to, MatchOptions options = MatchOptions());

/// True iff a homomorphism from → to exists; kLimitExceeded if the step
/// budget ran out before the search space was covered.
Result<bool> TryHasHomomorphism(const Graph& from, const Graph& to,
                                MatchOptions options = MatchOptions());

/// Budget-aware simple entailment g1 ⊨ g2 for simple graphs,
/// characterized by the existence of a map g2 → g1 (paper Thm 2.8(2)).
/// Returns kLimitExceeded instead of aborting when the step budget is
/// exhausted, so library callers can degrade gracefully.
Result<bool> TrySimpleEntails(const Graph& g1, const Graph& g2,
                              MatchOptions options = MatchOptions());

/// True iff a homomorphism from → to exists. Thin shim over
/// TryHasHomomorphism that asserts the step budget was not exhausted;
/// use the Try variant for budget-aware callers.
bool HasHomomorphism(const Graph& from, const Graph& to);

/// Simple entailment g1 ⊨ g2 (paper Thm 2.8(2)). Thin shim over
/// TrySimpleEntails that asserts the step budget was not exhausted; for
/// graphs with RDFS vocabulary use RdfsEntails (inference/closure.h)
/// which first closes g1.
bool SimpleEntails(const Graph& g1, const Graph& g2);

/// Simple equivalence: maps in both directions (paper §2.3.1).
bool SimpleEquivalent(const Graph& g1, const Graph& g2);

}  // namespace swdb

#endif  // SWDB_RDF_HOM_H_
