#include "rdf/hom.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "util/check.h"
#include "util/thread_pool.h"

namespace swdb {

namespace {

// An open term is one the matcher must assign: a blank node or variable.
bool IsOpen(Term t) { return !t.IsIri(); }

}  // namespace

// ---------------------------------------------------------------------------
// FlatTermSet

void PatternMatcher::FlatTermSet::Reset(size_t max_elements) {
  size_t cap = 8;
  while (cap < 4 * max_elements) cap <<= 1;  // load factor ≤ 1/4
  table_.assign(cap, kEmpty);
  mask_ = cap - 1;
}

bool PatternMatcher::FlatTermSet::Contains(uint32_t key) const {
  for (size_t i = Home(key);; i = (i + 1) & mask_) {
    if (table_[i] == key) return true;
    if (table_[i] == kEmpty) return false;
  }
}

void PatternMatcher::FlatTermSet::Insert(uint32_t key) {
  size_t i = Home(key);
  while (table_[i] != kEmpty) i = (i + 1) & mask_;
  table_[i] = key;
}

void PatternMatcher::FlatTermSet::Erase(uint32_t key) {
  size_t i = Home(key);
  while (table_[i] != key) i = (i + 1) & mask_;
  // Backward-shift deletion: pull forward any probe-chain entry whose
  // home slot lies cyclically at or before the hole.
  size_t j = i;
  for (;;) {
    table_[i] = kEmpty;
    for (;;) {
      j = (j + 1) & mask_;
      if (table_[j] == kEmpty) return;
      size_t home = Home(table_[j]);
      if (((j - home) & mask_) >= ((j - i) & mask_)) break;
    }
    table_[i] = table_[j];
    i = j;
  }
}

// ---------------------------------------------------------------------------
// PatternMatcher

PatternMatcher::PatternMatcher(std::vector<Triple> pattern,
                               const Graph* target, MatchOptions options)
    : pattern_(std::move(pattern)), target_(target), options_(options) {
  assert(target_ != nullptr);
  CompilePattern();
}

PatternMatcher::PatternMatcher(const Graph& pattern, const Graph* target,
                               MatchOptions options)
    : PatternMatcher(pattern.triples(), target, options) {}

void PatternMatcher::set_target(const Graph* target) {
  assert(target != nullptr);
  target_ = target;
}

void PatternMatcher::set_exclude_triple(std::optional<Triple> t) {
  options_.exclude_triple = std::move(t);
}

void PatternMatcher::CompilePattern() {
  std::unordered_map<Term, int32_t> slot_of;
  compiled_.reserve(pattern_.size());
  for (const Triple& t : pattern_) {
    CompiledTriple ct;
    ct.consts = t;
    const Term terms[3] = {t.s, t.p, t.o};
    for (int pos = 0; pos < 3; ++pos) {
      if (!IsOpen(terms[pos])) {
        ct.slot[pos] = kNoSlot;
        continue;
      }
      auto [it, inserted] =
          slot_of.try_emplace(terms[pos], static_cast<int32_t>(slots_.size()));
      if (inserted) slots_.push_back({terms[pos], terms[pos].IsBlank()});
      ct.slot[pos] = it->second;
    }
    for (int a = 0; a < 3 && ct.rep_a < 0; ++a) {
      for (int b = a + 1; b < 3; ++b) {
        if (ct.slot[a] != kNoSlot && ct.slot[a] == ct.slot[b]) {
          ct.rep_a = static_cast<int8_t>(a);
          ct.rep_b = static_cast<int8_t>(b);
          break;
        }
      }
    }
    compiled_.push_back(ct);
  }
  row_scratch_.resize(pattern_.size());
  binding_.resize(slots_.size());
  bound_.assign(slots_.size(), 0);
  slot_version_.assign(slots_.size(), 1);
  sel_.assign(pattern_.size(), Selectivity());
  trail_.reserve(slots_.size());
  pending_.reserve(pattern_.size());
}

bool PatternMatcher::ResetSearchState() {
  steps_ = 0;
  budget_exhausted_ = false;
  stats_ = MatchStats();
  trail_.clear();
  std::fill(bound_.begin(), bound_.end(), uint8_t{0});
  std::fill(slot_version_.begin(), slot_version_.end(), 1u);
  std::fill(sel_.begin(), sel_.end(), Selectivity());
  solution_map_ = TermMap();
  pending_.clear();
  size_t blank_slots = 0;
  for (const SlotInfo& s : slots_) blank_slots += s.is_blank ? 1 : 0;
  if (options_.injective_blanks) used_blank_values_.Reset(blank_slots);

  // Fully ground pattern triples are containment checks; fail fast.
  for (size_t i = 0; i < pattern_.size(); ++i) {
    const Triple& t = pattern_[i];
    if (!IsOpen(t.s) && !IsOpen(t.p) && !IsOpen(t.o)) {
      bool excluded = options_.exclude_triple && t == *options_.exclude_triple;
      if (excluded || !target_->Contains(t)) {
        return false;  // no solutions
      }
    } else {
      pending_.push_back(i);
    }
  }
  return true;
}

bool PatternMatcher::ConsumeStep() {
  if (shared_steps_ != nullptr) {
    if (shared_steps_->fetch_add(1, std::memory_order_relaxed) >=
        options_.max_steps) {
      budget_exhausted_ = true;
      return false;
    }
    ++steps_;
    return true;
  }
  if (++steps_ > options_.max_steps) {
    budget_exhausted_ = true;
    return false;
  }
  return true;
}

Status PatternMatcher::Enumerate(
    const std::function<bool(const TermMap&)>& visitor) {
  bool searched_parallel = false;
  if (ResetSearchState()) {
    // Parallel fan-out: pick the root exactly as the sequential search
    // would, and split its candidate range if it is worth splitting.
    if (options_.pool != nullptr && options_.pool->num_threads() > 0 &&
        pending_.size() >= 2) {
      const size_t pick = options_.static_order ? 0 : PickNext(0);
      const CompiledTriple& ct = compiled_[pending_[pick]];
      MatchRange range =
          target_->Matches(Resolve(ct, 0), Resolve(ct, 1), Resolve(ct, 2));
      if (range.size() >= std::max<size_t>(2, options_.parallel_min_root)) {
        // Root-node accounting, with sequential parity: one expanded
        // node, every candidate scanned, excluded candidates dropped
        // here (chunks count their binds_attempted themselves).
        ++stats_.nodes_expanded;
        ++stats_.index_hits[static_cast<size_t>(range.order())];
        const bool have_exclude = options_.exclude_triple.has_value();
        const Triple exclude =
            have_exclude ? *options_.exclude_triple : Triple();
        std::vector<Triple> roots;
        roots.reserve(range.size());
        if (ct.rep_a >= 0 && !bound_[ct.slot[ct.rep_a]]) {
          // Same repeated-position pre-filter Search applies, so the
          // chunks see exactly the sequential fast path's candidates
          // and per-root binds_attempted accounting stays in parity.
          std::vector<uint32_t> rows;
          range.FilterPairEqual(ct.rep_a, ct.rep_b, &rows);
          stats_.candidates_scanned += range.size();
          for (uint32_t row : rows) {
            const Triple& tt = range.TripleAt(row);
            if (have_exclude && tt == exclude) continue;
            roots.push_back(tt);
          }
        } else {
          for (const Triple& tt : range) {
            ++stats_.candidates_scanned;
            if (have_exclude && tt == exclude) continue;
            roots.push_back(tt);
          }
        }
        EnumerateParallel(pending_[pick], std::move(roots), visitor);
        searched_parallel = true;
      }
    }
    if (!searched_parallel) {
      bool stopped = false;
      Search(0, visitor, &stopped);
    }
  }
  stats_.steps_used = steps_;
  if (options_.stats != nullptr) *options_.stats = stats_;
  if (budget_exhausted_) {
    return Status::LimitExceeded("pattern matcher step budget exhausted");
  }
  return Status::OK();
}

Status PatternMatcher::EnumerateSeeded(
    const std::vector<std::pair<Term, Term>>& seed,
    const std::function<bool(const TermMap&)>& visitor) {
  bool feasible = ResetSearchState();
  if (feasible) {
    for (const auto& [term, value] : seed) {
      int32_t slot = kNoSlot;
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].term == term) {
          slot = static_cast<int32_t>(i);
          break;
        }
      }
      assert(slot != kNoSlot && "seed term does not occur in the pattern");
      if (slot == kNoSlot) continue;
      if (bound_[slot]) {  // duplicate seed entry: must agree
        if (binding_[slot] != value) {
          feasible = false;
          break;
        }
        continue;
      }
      const SlotInfo& info = slots_[slot];
      if (info.is_blank) {
        if (options_.blanks_to_blanks_only && !value.IsBlank()) {
          feasible = false;
          break;
        }
        if (options_.injective_blanks) {
          if (used_blank_values_.Contains(value.bits())) {
            feasible = false;
            break;
          }
          used_blank_values_.Insert(value.bits());
        }
      }
      binding_[slot] = value;
      bound_[slot] = 1;
      ++slot_version_[slot];
      trail_.push_back(static_cast<uint32_t>(slot));
    }
  }
  if (feasible) {
    // Pattern triples the seed made fully ground are containment checks,
    // mirroring the ground prefilter in ResetSearchState. This must not
    // be skipped even when the seed comes from a verified prefix walk:
    // a residual triple over seeded slots only (e.g. the second triple
    // of {(X,p,Y),(X,q,Y)} seeded through the first) was never checked.
    size_t kept = 0;
    for (size_t i = 0; i < pending_.size() && feasible; ++i) {
      const size_t idx = pending_[i];
      const CompiledTriple& ct = compiled_[idx];
      std::optional<Term> s = Resolve(ct, 0);
      std::optional<Term> p = Resolve(ct, 1);
      std::optional<Term> o = Resolve(ct, 2);
      if (s && p && o) {
        const Triple t(*s, *p, *o);
        bool excluded =
            options_.exclude_triple && t == *options_.exclude_triple;
        if (excluded || !target_->Contains(t)) feasible = false;
      } else {
        pending_[kept++] = idx;
      }
    }
    if (feasible) {
      pending_.resize(kept);
      bool stopped = false;
      Search(0, visitor, &stopped);
    }
  }
  stats_.steps_used = steps_;
  if (options_.stats != nullptr) *options_.stats = stats_;
  if (budget_exhausted_) {
    return Status::LimitExceeded("pattern matcher step budget exhausted");
  }
  return Status::OK();
}

Status PatternMatcher::EnumerateParallel(
    size_t root_idx, std::vector<Triple> roots,
    const std::function<bool(const TermMap&)>& visitor) {
  struct ChunkOut {
    std::vector<TermMap> solutions;
    MatchStats stats;
    bool exhausted = false;
  };
  // One shared pot for every worker; the root expansion step above comes
  // out of it too, keeping the total budget exactly max_steps.
  std::atomic<uint64_t> shared_steps{0};
  shared_steps_ = &shared_steps;
  const bool root_ok = ConsumeStep();
  // Lowest chunk index that found a solution (first-solution mode):
  // higher chunks abort once it is set; lower chunks are never cancelled
  // by higher ones, so the merged first solution is the sequential one.
  std::atomic<size_t> first_solved{std::numeric_limits<size_t>::max()};

  const size_t grain = std::max<size_t>(1, options_.parallel_min_root / 2);
  const size_t nchunks = (roots.size() + grain - 1) / grain;
  std::vector<ChunkOut> outs(nchunks);

  MatchOptions sub_options = options_;
  sub_options.pool = nullptr;
  sub_options.stats = nullptr;

  // Chunk matchers resolve index ranges concurrently; force the lazy
  // permutation build to happen once, here, instead of racing there.
  target_->WarmIndexes();

  if (root_ok) {
    TaskGroup group(options_.pool);
    for (size_t c = 0; c < nchunks; ++c) {
      group.Run([this, c, grain, root_idx, &roots, &outs, &shared_steps,
                 &first_solved, &sub_options] {
        if (first_solution_only_ &&
            first_solved.load(std::memory_order_relaxed) < c) {
          return;  // a lower chunk already has the answer
        }
        PatternMatcher sub(pattern_, target_, sub_options);
        sub.shared_steps_ = &shared_steps;
        if (first_solution_only_) {
          sub.cancel_below_ = &first_solved;
          sub.chunk_index_ = c;
        }
        ChunkOut& out = outs[c];
        const Triple* begin = roots.data() + c * grain;
        const Triple* end =
            roots.data() + std::min(roots.size(), (c + 1) * grain);
        Status s = sub.EnumerateChunk(
            root_idx, begin, end, [this, c, &out, &first_solved](const TermMap& m) {
              out.solutions.push_back(m);
              if (!first_solution_only_) return true;
              size_t cur = first_solved.load(std::memory_order_relaxed);
              while (cur > c &&
                     !first_solved.compare_exchange_weak(cur, c)) {
              }
              return false;  // this chunk is done
            });
        out.stats = sub.stats_;
        out.exhausted = !s.ok();
      });
    }
    group.Wait();
  }
  shared_steps_ = nullptr;
  steps_ = std::min<uint64_t>(shared_steps.load(std::memory_order_relaxed),
                              options_.max_steps);

  for (const ChunkOut& out : outs) {
    stats_.nodes_expanded += out.stats.nodes_expanded;
    stats_.candidates_scanned += out.stats.candidates_scanned;
    stats_.binds_attempted += out.stats.binds_attempted;
    stats_.solutions_found += out.stats.solutions_found;
    stats_.selectivity_recomputes += out.stats.selectivity_recomputes;
    for (size_t i = 0; i < kNumIndexOrders; ++i) {
      stats_.index_hits[i] += out.stats.index_hits[i];
    }
    if (out.exhausted) budget_exhausted_ = true;
  }

  // Replay the buffered solutions in pinned chunk order — exactly the
  // root-candidate order the sequential search enumerates.
  bool stopped = false;
  for (size_t c = 0; c < nchunks && !stopped; ++c) {
    for (const TermMap& m : outs[c].solutions) {
      if (!visitor(m)) {
        stopped = true;
        break;
      }
    }
    // In first-solution mode chunks past the first nonempty one were
    // cancelled mid-search; their buffers are not the sequential suffix.
    if (first_solution_only_ && !outs[c].solutions.empty()) break;
  }
  return Status::OK();  // caller's common tail reports budget exhaustion
}

Status PatternMatcher::EnumerateChunk(
    size_t root_idx, const Triple* begin, const Triple* end,
    const std::function<bool(const TermMap&)>& visitor) {
  const bool feasible = ResetSearchState();
  assert(feasible && "parallel driver fanned out an infeasible pattern");
  (void)feasible;
  // Put the driver's root pick at depth 0, as the sequential swap would.
  const size_t pos =
      std::find(pending_.begin(), pending_.end(), root_idx) - pending_.begin();
  assert(pos < pending_.size());
  std::swap(pending_[0], pending_[pos]);
  const CompiledTriple& ct = compiled_[root_idx];

  bool stopped = false;
  for (const Triple* tt = begin; tt != end; ++tt) {
    if (cancel_below_ != nullptr &&
        cancel_below_->load(std::memory_order_relaxed) < chunk_index_) {
      break;
    }
    ++stats_.binds_attempted;
    const size_t mark = trail_.size();
    if (TryBind(ct, *tt)) {
      Search(1, visitor, &stopped);
    }
    UndoTo(mark);
    if (budget_exhausted_ || stopped) break;
  }
  stats_.steps_used = steps_;
  if (budget_exhausted_) {
    return Status::LimitExceeded("pattern matcher step budget exhausted");
  }
  return Status::OK();
}

std::optional<Term> PatternMatcher::Resolve(const CompiledTriple& ct,
                                            int pos) const {
  int32_t slot = ct.slot[pos];
  if (slot == kNoSlot) {
    return pos == 0 ? ct.consts.s : pos == 1 ? ct.consts.p : ct.consts.o;
  }
  if (bound_[slot]) return binding_[slot];
  return std::nullopt;
}

size_t PatternMatcher::PickNext(size_t depth) {
  size_t best = depth;
  size_t best_count = std::numeric_limits<size_t>::max();
  for (size_t i = depth; i < pending_.size(); ++i) {
    const size_t idx = pending_[i];
    const CompiledTriple& ct = compiled_[idx];
    Selectivity& sel = sel_[idx];
    // The cached count is valid while none of the triple's slots was
    // bound or unbound since it was computed.
    bool valid = true;
    for (int pos = 0; pos < 3; ++pos) {
      int32_t slot = ct.slot[pos];
      if (slot != kNoSlot && sel.version[pos] != slot_version_[slot]) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      sel.count = target_->CountMatches(Resolve(ct, 0), Resolve(ct, 1),
                                        Resolve(ct, 2));
      for (int pos = 0; pos < 3; ++pos) {
        int32_t slot = ct.slot[pos];
        sel.version[pos] = slot == kNoSlot ? 0 : slot_version_[slot];
      }
      ++stats_.selectivity_recomputes;
    }
    if (sel.count < best_count) {
      best_count = sel.count;
      best = i;
      if (best_count == 0) break;
    }
  }
  return best;
}

bool PatternMatcher::TryBind(const CompiledTriple& ct, const Triple& tt) {
  const Term target_terms[3] = {tt.s, tt.p, tt.o};
  for (int pos = 0; pos < 3; ++pos) {
    const int32_t slot = ct.slot[pos];
    if (slot == kNoSlot) continue;  // constant: equal by range construction
    const Term v = target_terms[pos];
    if (bound_[slot]) {
      // Either bound before this node (then the index range already
      // guarantees equality) or bound by an earlier position of this
      // same triple (repeated term, e.g. (X,p,X)) — must agree.
      if (binding_[slot] != v) return false;
      continue;
    }
    const SlotInfo& info = slots_[slot];
    if (info.is_blank) {
      if (options_.blanks_to_blanks_only && !v.IsBlank()) return false;
      if (options_.injective_blanks) {
        if (used_blank_values_.Contains(v.bits())) return false;
        used_blank_values_.Insert(v.bits());
      }
    }
    binding_[slot] = v;
    bound_[slot] = 1;
    ++slot_version_[slot];
    trail_.push_back(static_cast<uint32_t>(slot));
  }
  return true;
}

void PatternMatcher::UndoTo(size_t mark) {
  while (trail_.size() > mark) {
    const uint32_t slot = trail_.back();
    trail_.pop_back();
    bound_[slot] = 0;
    ++slot_version_[slot];
    if (options_.injective_blanks && slots_[slot].is_blank) {
      used_blank_values_.Erase(binding_[slot].bits());
    }
  }
}

void PatternMatcher::EmitSolutionMap() {
  // Every slot is bound at a solution leaf; Bind overwrites in place, so
  // after the first solution this allocates nothing.
  for (size_t i = 0; i < slots_.size(); ++i) {
    assert(bound_[i] && "open term unbound at solution depth");
    solution_map_.Bind(slots_[i].term, binding_[i]);
  }
}

bool PatternMatcher::Search(size_t depth,
                            const std::function<bool(const TermMap&)>& visitor,
                            bool* stopped) {
  if (budget_exhausted_ || *stopped) return false;
  if (cancel_below_ != nullptr &&
      cancel_below_->load(std::memory_order_relaxed) < chunk_index_) {
    *stopped = true;  // a lower-indexed chunk already has the answer
    return false;
  }
  if (!ConsumeStep()) return false;
  if (depth == pending_.size()) {
    EmitSolutionMap();
    ++stats_.solutions_found;
    if (!visitor(solution_map_)) *stopped = true;
    return true;
  }

  size_t pick = options_.static_order ? depth : PickNext(depth);
  std::swap(pending_[depth], pending_[pick]);
  const CompiledTriple& ct = compiled_[pending_[depth]];

  MatchRange range =
      target_->Matches(Resolve(ct, 0), Resolve(ct, 1), Resolve(ct, 2));
  ++stats_.nodes_expanded;
  ++stats_.index_hits[static_cast<size_t>(range.order())];

  const bool have_exclude = options_.exclude_triple.has_value();
  const Triple exclude =
      have_exclude ? *options_.exclude_triple : Triple();

  // Repeated-position residual: while the shared slot is unbound, the
  // index range constrains only the other positions, so every candidate
  // whose repeated positions differ is a guaranteed TryBind reject.
  // Filter them in one pass over the backing column (vectorized when the
  // range is columnar) and materialize only the survivors.
  if (ct.rep_a >= 0 && !bound_[ct.slot[ct.rep_a]] && !range.empty()) {
    std::vector<uint32_t>& rows = row_scratch_[depth];
    rows.clear();
    range.FilterPairEqual(ct.rep_a, ct.rep_b, &rows);
    stats_.candidates_scanned += range.size();
    for (uint32_t row : rows) {
      const Triple& tt = range.TripleAt(row);
      if (have_exclude && tt == exclude) continue;
      ++stats_.binds_attempted;
      const size_t mark = trail_.size();
      if (TryBind(ct, tt)) {
        Search(depth + 1, visitor, stopped);
      }
      UndoTo(mark);
      if (budget_exhausted_ || *stopped) break;
    }
    std::swap(pending_[depth], pending_[pick]);
    return true;
  }

  for (const Triple& tt : range) {
    ++stats_.candidates_scanned;
    if (have_exclude && tt == exclude) continue;
    ++stats_.binds_attempted;
    const size_t mark = trail_.size();
    if (TryBind(ct, tt)) {
      Search(depth + 1, visitor, stopped);
    }
    UndoTo(mark);
    if (budget_exhausted_ || *stopped) break;
  }

  std::swap(pending_[depth], pending_[pick]);
  return true;
}

Result<std::optional<TermMap>> PatternMatcher::FindAny() {
  std::optional<TermMap> found;
  first_solution_only_ = true;  // lets the parallel driver cancel chunks
  Status s = Enumerate([&found](const TermMap& m) {
    found = m;
    return false;
  });
  first_solution_only_ = false;
  if (!s.ok() && !found.has_value()) return s;
  return found;
}

Result<std::optional<TermMap>> FindHomomorphism(const Graph& from,
                                                const Graph& to,
                                                MatchOptions options) {
  PatternMatcher matcher(from, &to, options);
  return matcher.FindAny();
}

Result<bool> TryHasHomomorphism(const Graph& from, const Graph& to,
                                MatchOptions options) {
  Result<std::optional<TermMap>> r = FindHomomorphism(from, to, options);
  if (!r.ok()) return r.status();
  return r->has_value();
}

Result<bool> TrySimpleEntails(const Graph& g1, const Graph& g2,
                              MatchOptions options) {
  return TryHasHomomorphism(g2, g1, options);
}

bool HasHomomorphism(const Graph& from, const Graph& to) {
  Result<bool> r = TryHasHomomorphism(from, to);
  SWDB_CHECK(r.ok(),
             "homomorphism step budget exhausted; use TryHasHomomorphism "
             "with explicit MatchOptions for graceful degradation");
  return *r;
}

bool SimpleEntails(const Graph& g1, const Graph& g2) {
  Result<bool> r = TrySimpleEntails(g1, g2);
  SWDB_CHECK(r.ok(),
             "simple-entailment step budget exhausted; use TrySimpleEntails "
             "with explicit MatchOptions for graceful degradation");
  return *r;
}

bool SimpleEquivalent(const Graph& g1, const Graph& g2) {
  return SimpleEntails(g1, g2) && SimpleEntails(g2, g1);
}

}  // namespace swdb
