#include "rdf/hom.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/check.h"

namespace swdb {

namespace {

// An open term is one the matcher must assign: a blank node or variable.
bool IsOpen(Term t) { return !t.IsIri(); }

}  // namespace

PatternMatcher::PatternMatcher(std::vector<Triple> pattern,
                               const Graph* target, MatchOptions options)
    : pattern_(std::move(pattern)), target_(target), options_(options) {
  assert(target_ != nullptr);
}

Status PatternMatcher::Enumerate(
    const std::function<bool(const TermMap&)>& visitor) {
  steps_ = 0;
  budget_exhausted_ = false;
  assignment_ = TermMap();
  used_blank_values_.clear();
  pending_.clear();

  // Fully ground pattern triples are containment checks; fail fast.
  for (size_t i = 0; i < pattern_.size(); ++i) {
    const Triple& t = pattern_[i];
    if (!IsOpen(t.s) && !IsOpen(t.p) && !IsOpen(t.o)) {
      bool excluded = options_.exclude_triple && t == *options_.exclude_triple;
      if (excluded || !target_->Contains(t)) {
        return Status::OK();  // no solutions
      }
    } else {
      pending_.push_back(i);
    }
  }

  bool stopped = false;
  Search(0, visitor, &stopped);
  if (budget_exhausted_) {
    return Status::LimitExceeded("pattern matcher step budget exhausted");
  }
  return Status::OK();
}

size_t PatternMatcher::PickNext(size_t depth, size_t* count_estimate) const {
  size_t best = depth;
  size_t best_count = std::numeric_limits<size_t>::max();
  for (size_t i = depth; i < pending_.size(); ++i) {
    const Triple& t = pattern_[pending_[i]];
    Term s = assignment_.Apply(t.s);
    Term p = assignment_.Apply(t.p);
    Term o = assignment_.Apply(t.o);
    // Count matches, but stop as soon as the current best is reached —
    // such a triple cannot win, and full counts over large predicate
    // ranges would dominate the search otherwise.
    size_t count = 0;
    target_->Match(IsOpen(s) ? std::nullopt : std::optional<Term>(s),
                   IsOpen(p) ? std::nullopt : std::optional<Term>(p),
                   IsOpen(o) ? std::nullopt : std::optional<Term>(o),
                   [&count, best_count](const Triple&) {
                     return ++count < best_count;
                   });
    if (count < best_count) {
      best_count = count;
      best = i;
      if (count == 0) break;
    }
  }
  *count_estimate = best_count;
  return best;
}

bool PatternMatcher::TryBind(const Triple& pt, const Triple& tt,
                             std::vector<Term>* newly_bound) {
  const Term pattern_terms[3] = {pt.s, pt.p, pt.o};
  const Term target_terms[3] = {tt.s, tt.p, tt.o};
  for (int i = 0; i < 3; ++i) {
    Term p = pattern_terms[i];
    Term v = target_terms[i];
    if (!IsOpen(p)) {
      if (p != v) return false;
      continue;
    }
    if (assignment_.IsBound(p)) {
      if (assignment_.Apply(p) != v) return false;
      continue;
    }
    if (p.IsBlank()) {
      if (options_.blanks_to_blanks_only && !v.IsBlank()) return false;
      if (options_.injective_blanks &&
          std::find(used_blank_values_.begin(), used_blank_values_.end(),
                    v) != used_blank_values_.end()) {
        return false;
      }
      used_blank_values_.push_back(v);
    }
    assignment_.Bind(p, v);
    newly_bound->push_back(p);
  }
  return true;
}

bool PatternMatcher::Search(size_t depth,
                            const std::function<bool(const TermMap&)>& visitor,
                            bool* stopped) {
  if (budget_exhausted_ || *stopped) return false;
  if (++steps_ > options_.max_steps) {
    budget_exhausted_ = true;
    return false;
  }
  if (depth == pending_.size()) {
    if (!visitor(assignment_)) *stopped = true;
    return true;
  }

  size_t estimate = 16;
  size_t pick = depth;
  if (!options_.static_order) {
    pick = PickNext(depth, &estimate);
  }
  std::swap(pending_[depth], pending_[pick]);
  const Triple& pt = pattern_[pending_[depth]];

  Term s = assignment_.Apply(pt.s);
  Term p = assignment_.Apply(pt.p);
  Term o = assignment_.Apply(pt.o);

  // Materialize candidates first: recursion below mutates the graph's
  // lazily-built index state only via const access, but may re-enter
  // Match; collecting keeps the iteration simple and safe.
  std::vector<Triple> candidates;
  candidates.reserve(estimate);
  target_->Match(IsOpen(s) ? std::nullopt : std::optional<Term>(s),
                 IsOpen(p) ? std::nullopt : std::optional<Term>(p),
                 IsOpen(o) ? std::nullopt : std::optional<Term>(o),
                 [this, &candidates](const Triple& t) {
                   if (!options_.exclude_triple ||
                       t != *options_.exclude_triple) {
                     candidates.push_back(t);
                   }
                   return true;
                 });

  for (const Triple& tt : candidates) {
    std::vector<Term> newly_bound;
    size_t used_mark = used_blank_values_.size();
    if (TryBind(pt, tt, &newly_bound)) {
      Search(depth + 1, visitor, stopped);
    }
    for (Term t : newly_bound) assignment_.Unbind(t);
    used_blank_values_.resize(used_mark);
    if (budget_exhausted_ || *stopped) break;
  }

  std::swap(pending_[depth], pending_[pick]);
  return true;
}

Result<std::optional<TermMap>> PatternMatcher::FindAny() {
  std::optional<TermMap> found;
  Status s = Enumerate([&found](const TermMap& m) {
    found = m;
    return false;
  });
  if (!s.ok() && !found.has_value()) return s;
  return found;
}

Result<std::optional<TermMap>> FindHomomorphism(const Graph& from,
                                                const Graph& to,
                                                MatchOptions options) {
  PatternMatcher matcher(from.triples(), &to, options);
  return matcher.FindAny();
}

bool HasHomomorphism(const Graph& from, const Graph& to) {
  Result<std::optional<TermMap>> r = FindHomomorphism(from, to);
  SWDB_CHECK(r.ok(),
             "homomorphism step budget exhausted; use FindHomomorphism "
             "with explicit MatchOptions for graceful degradation");
  return r->has_value();
}

bool SimpleEntails(const Graph& g1, const Graph& g2) {
  return HasHomomorphism(g2, g1);
}

bool SimpleEquivalent(const Graph& g1, const Graph& g2) {
  return SimpleEntails(g1, g2) && SimpleEntails(g2, g1);
}

}  // namespace swdb
