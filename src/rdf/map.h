#ifndef SWDB_RDF_MAP_H_
#define SWDB_RDF_MAP_H_

#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"

namespace swdb {

/// A map μ : UB → UB preserving URIs (paper §2.1): μ(u) = u for u ∈ U.
/// Represented sparsely by its action on blank nodes; unmapped terms are
/// fixed. TermMap is also reused for query valuations v : V → UB by
/// binding variables (see query/matching.h).
class TermMap {
 public:
  TermMap() = default;

  /// Binds `from` (a blank node or variable) to `to` (any term of UB).
  /// Rebinding overwrites.
  void Bind(Term from, Term to);

  /// Removes a binding if present.
  void Unbind(Term from);

  /// True if `from` has an explicit binding.
  bool IsBound(Term from) const { return map_.count(from) > 0; }

  /// μ(t): the bound value, or t itself if unbound / a URI.
  Term Apply(Term t) const;

  /// μ applied positionwise to a triple.
  Triple Apply(const Triple& t) const;

  /// μ(G): the image graph (paper §2.1). Note |μ(G)| ≤ |G| since distinct
  /// triples may collapse.
  Graph Apply(const Graph& g) const;

  /// Composition: (other ∘ this)(t) = other.Apply(this->Apply(t)).
  /// The result maps every key of *this and of other.
  TermMap ComposeWith(const TermMap& other) const;

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  const std::unordered_map<Term, Term>& bindings() const { return map_; }

  bool operator==(const TermMap& other) const;

 private:
  std::unordered_map<Term, Term> map_;
};

/// True if `instance` = μ(g) for the given μ — i.e. checks the image
/// matches exactly.
bool IsImageOf(const Graph& g, const TermMap& mu, const Graph& instance);

/// A *proper* instance map for G: μ(G) has fewer blank nodes than G
/// (μ sends a blank to a URI, or identifies two blanks of G; paper §2.1).
bool IsProperInstanceMap(const Graph& g, const TermMap& mu);

/// The merge G1 + G2: union with G2's blank nodes renamed apart from
/// G1's (paper §2.1). Fresh blanks are drawn from dict. The renaming used
/// is returned through renaming_out when non-null.
Graph Merge(const Graph& g1, const Graph& g2, Dictionary* dict,
            TermMap* renaming_out = nullptr);

/// An isomorphic copy of g with every blank node replaced by a fresh one.
Graph FreshBlankCopy(const Graph& g, Dictionary* dict,
                     TermMap* renaming_out = nullptr);

/// Skolemization G^*: replaces each blank node X by a fresh constant c_X
/// (paper §3.1). The blank→constant mapping is recorded in sk_out so the
/// inverse (·)_* can undo it.
Graph Skolemize(const Graph& g, Dictionary* dict, TermMap* sk_out);

/// De-Skolemization H_*: replaces each constant c_X back by the blank X
/// according to `sk` (the map produced by Skolemize), then deletes triples
/// having blanks in predicate position (paper §3.1).
Graph DeSkolemize(const Graph& h, const TermMap& sk);

}  // namespace swdb

#endif  // SWDB_RDF_MAP_H_
