#ifndef SWDB_RDF_ISO_H_
#define SWDB_RDF_ISO_H_

#include <optional>

#include "rdf/graph.h"
#include "rdf/map.h"

namespace swdb {

/// Tests G1 ≅ G2: the existence of maps μ1, μ2 with μ1(G1) = G2 and
/// μ2(G2) = G1 (paper §2.1). Such maps necessarily restrict to a
/// bijection between the blank-node sets, so the search looks for an
/// injective blank→blank assignment whose image is exactly G2.
bool AreIsomorphic(const Graph& g1, const Graph& g2);

/// Returns a witnessing map μ with μ(g1) = g2 if the graphs are
/// isomorphic, std::nullopt otherwise.
std::optional<TermMap> FindIsomorphism(const Graph& g1, const Graph& g2);

}  // namespace swdb

#endif  // SWDB_RDF_ISO_H_
