#include "rdf/iso.h"

#include "rdf/hom.h"

namespace swdb {

namespace {

// Ground triples are fixed by every map, so isomorphic graphs must agree
// on them exactly; checking this up front prunes most negatives cheaply.
bool GroundPartsEqual(const Graph& g1, const Graph& g2) {
  auto it1 = g1.begin();
  auto it2 = g2.begin();
  for (;;) {
    while (it1 != g1.end() && !it1->IsGround()) ++it1;
    while (it2 != g2.end() && !it2->IsGround()) ++it2;
    if (it1 == g1.end() || it2 == g2.end()) {
      return it1 == g1.end() && it2 == g2.end();
    }
    if (*it1 != *it2) return false;
    ++it1;
    ++it2;
  }
}

}  // namespace

std::optional<TermMap> FindIsomorphism(const Graph& g1, const Graph& g2) {
  if (g1.size() != g2.size()) return std::nullopt;
  if (g1.BlankNodes().size() != g2.BlankNodes().size()) return std::nullopt;
  if (!GroundPartsEqual(g1, g2)) return std::nullopt;

  MatchOptions options;
  options.blanks_to_blanks_only = true;
  options.injective_blanks = true;

  PatternMatcher matcher(g1, &g2, options);
  std::optional<TermMap> witness;
  Status s = matcher.Enumerate([&](const TermMap& mu) {
    // An injective blank→blank map between equal-sized graphs has an
    // image of exactly |g1| triples; equality to g2 then certifies both
    // directions of Def. ≅.
    if (mu.Apply(g1) == g2) {
      witness = mu;
      return false;
    }
    return true;
  });
  (void)s;  // budget exhaustion simply reports non-isomorphic here
  return witness;
}

bool AreIsomorphic(const Graph& g1, const Graph& g2) {
  return FindIsomorphism(g1, g2).has_value();
}

}  // namespace swdb
