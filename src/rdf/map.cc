#include "rdf/map.h"

#include <cassert>

namespace swdb {

void TermMap::Bind(Term from, Term to) {
  assert(!from.IsIri() && "maps must preserve URIs");
  map_[from] = to;
}

void TermMap::Unbind(Term from) { map_.erase(from); }

Term TermMap::Apply(Term t) const {
  auto it = map_.find(t);
  return it == map_.end() ? t : it->second;
}

Triple TermMap::Apply(const Triple& t) const {
  return Triple(Apply(t.s), Apply(t.p), Apply(t.o));
}

Graph TermMap::Apply(const Graph& g) const {
  std::vector<Triple> out;
  out.reserve(g.size());
  for (const Triple& t : g) {
    out.push_back(Apply(t));
  }
  return Graph(std::move(out));
}

TermMap TermMap::ComposeWith(const TermMap& other) const {
  TermMap result;
  for (const auto& [from, to] : map_) {
    result.Bind(from, other.Apply(to));
  }
  for (const auto& [from, to] : other.map_) {
    if (!result.IsBound(from)) result.Bind(from, to);
  }
  return result;
}

bool TermMap::operator==(const TermMap& other) const {
  return map_ == other.map_;
}

bool IsImageOf(const Graph& g, const TermMap& mu, const Graph& instance) {
  return mu.Apply(g) == instance;
}

bool IsProperInstanceMap(const Graph& g, const TermMap& mu) {
  std::vector<Term> blanks = g.BlankNodes();
  size_t image_blanks = 0;
  std::vector<Term> images;
  images.reserve(blanks.size());
  for (Term b : blanks) {
    Term img = mu.Apply(b);
    if (img.IsBlank()) images.push_back(img);
  }
  std::sort(images.begin(), images.end());
  images.erase(std::unique(images.begin(), images.end()), images.end());
  image_blanks = images.size();
  return image_blanks < blanks.size();
}

Graph FreshBlankCopy(const Graph& g, Dictionary* dict, TermMap* renaming_out) {
  TermMap renaming;
  for (Term b : g.BlankNodes()) {
    renaming.Bind(b, dict->FreshBlank());
  }
  Graph copy = renaming.Apply(g);
  if (renaming_out != nullptr) *renaming_out = std::move(renaming);
  return copy;
}

Graph Merge(const Graph& g1, const Graph& g2, Dictionary* dict,
            TermMap* renaming_out) {
  // Rename only blanks of g2 that clash with blanks of g1; this keeps the
  // merge minimal while satisfying "disjoint blank sets" up to iso.
  std::vector<Term> b1 = g1.BlankNodes();
  TermMap renaming;
  for (Term b : g2.BlankNodes()) {
    if (std::binary_search(b1.begin(), b1.end(), b)) {
      renaming.Bind(b, dict->FreshBlank());
    }
  }
  Graph out = Graph::Union(g1, renaming.Apply(g2));
  if (renaming_out != nullptr) *renaming_out = std::move(renaming);
  return out;
}

Graph Skolemize(const Graph& g, Dictionary* dict, TermMap* sk_out) {
  TermMap sk;
  for (Term b : g.BlankNodes()) {
    sk.Bind(b, dict->FreshIri());
  }
  Graph out = sk.Apply(g);
  if (sk_out != nullptr) *sk_out = sk;
  return out;
}

Graph DeSkolemize(const Graph& h, const TermMap& sk) {
  // Invert the blank → constant map.
  std::unordered_map<Term, Term> inverse;
  for (const auto& [blank, constant] : sk.bindings()) {
    inverse[constant] = blank;
  }
  auto back = [&inverse](Term t) {
    auto it = inverse.find(t);
    return it == inverse.end() ? t : it->second;
  };
  std::vector<Triple> out;
  out.reserve(h.size());
  for (const Triple& t : h) {
    Triple r(back(t.s), back(t.p), back(t.o));
    if (!r.IsWellFormedData()) continue;  // drop blank-predicate triples
    out.push_back(r);
  }
  return Graph(std::move(out));
}

}  // namespace swdb
