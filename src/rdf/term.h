#ifndef SWDB_RDF_TERM_H_
#define SWDB_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace swdb {

/// The kind of an RDF term in this library's abstract model (paper §2.1,
/// §4): a URI reference from U, a blank node from B, or — in query
/// patterns only — a variable from V.
enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kVar = 2,
};

/// A term is an interned (kind, id) pair packed into 32 bits. Terms are
/// cheap to copy and compare; their textual form lives in a Dictionary.
///
/// Ids 0..4 of kind kIri are reserved for the RDFS vocabulary
/// rdfsV = {sp, sc, type, dom, range} (paper §2.2) and are identical
/// across all Dictionary instances.
class Term {
 public:
  /// Default-constructed term: the IRI with id 0 (sp). Prefer the named
  /// factories below.
  constexpr Term() : bits_(0) {}

  static constexpr Term Iri(uint32_t id) { return Term(TermKind::kIri, id); }
  /// Rebuilds a term from its packed bits() representation — the inverse
  /// of bits(). Used by the columnar indexes, which store raw term bits
  /// in contiguous uint32_t columns.
  static constexpr Term FromBits(uint32_t bits) {
    Term t;
    t.bits_ = bits;
    return t;
  }
  static constexpr Term Blank(uint32_t id) {
    return Term(TermKind::kBlank, id);
  }
  static constexpr Term Var(uint32_t id) { return Term(TermKind::kVar, id); }

  constexpr TermKind kind() const {
    return static_cast<TermKind>(bits_ >> 30);
  }
  constexpr uint32_t id() const { return bits_ & 0x3fffffffu; }

  constexpr bool IsIri() const { return kind() == TermKind::kIri; }
  constexpr bool IsBlank() const { return kind() == TermKind::kBlank; }
  constexpr bool IsVar() const { return kind() == TermKind::kVar; }
  /// True for elements of UB (i.e. not a variable).
  constexpr bool IsName() const { return !IsVar(); }

  constexpr bool operator==(const Term& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const Term& o) const { return bits_ != o.bits_; }
  constexpr bool operator<(const Term& o) const { return bits_ < o.bits_; }
  constexpr bool operator<=(const Term& o) const { return bits_ <= o.bits_; }
  constexpr bool operator>(const Term& o) const { return bits_ > o.bits_; }
  constexpr bool operator>=(const Term& o) const { return bits_ >= o.bits_; }

  constexpr uint32_t bits() const { return bits_; }

 private:
  constexpr Term(TermKind kind, uint32_t id)
      : bits_((static_cast<uint32_t>(kind) << 30) | (id & 0x3fffffffu)) {}

  uint32_t bits_;
};

/// The five RDFS-vocabulary terms with predefined semantics (paper §2.2):
/// rdfs:subPropertyOf, rdfs:subClassOf, rdf:type, rdfs:domain, rdfs:range.
namespace vocab {
inline constexpr Term kSp = Term::Iri(0);
inline constexpr Term kSc = Term::Iri(1);
inline constexpr Term kType = Term::Iri(2);
inline constexpr Term kDom = Term::Iri(3);
inline constexpr Term kRange = Term::Iri(4);
/// Number of reserved vocabulary ids.
inline constexpr uint32_t kReservedIris = 5;
/// All five reserved terms, in id order.
inline constexpr Term kAll[] = {kSp, kSc, kType, kDom, kRange};
/// True if t is one of the five RDFS-vocabulary terms.
inline constexpr bool IsRdfsVocab(Term t) {
  return t.IsIri() && t.id() < kReservedIris;
}
}  // namespace vocab

/// Interns term names. A Dictionary owns the string form of every IRI,
/// blank-node label and variable name used by the graphs built against
/// it, and allocates fresh blank nodes (for merges, Skolemization and
/// head-blank instantiation).
///
/// Graphs and Terms do not reference their Dictionary; callers keep the
/// association. Mixing terms from different dictionaries is a usage
/// error (ids would alias), except for the five reserved RDFS terms.
class Dictionary {
 public:
  Dictionary();

  /// Interns an IRI, returning the existing term if already present.
  Term Iri(std::string_view name);
  /// Interns a named blank node (label without the "_:" prefix).
  Term Blank(std::string_view label);
  /// Interns a variable (name without the "?" prefix).
  Term Var(std::string_view name);

  /// Allocates a blank node guaranteed distinct from all existing ones.
  Term FreshBlank();
  /// Allocates an IRI guaranteed distinct from all existing ones; used
  /// as a Skolem constant (paper §3.1) or fresh constant in proofs.
  Term FreshIri();

  /// Looks up an already-interned IRI.
  Result<Term> FindIri(std::string_view name) const;

  /// Textual form of a term: IRIs verbatim, blanks as "_:label",
  /// variables as "?name".
  std::string Name(Term t) const;

  /// Number of interned terms of the given kind.
  size_t CountOf(TermKind kind) const;

 private:
  Term Intern(TermKind kind, std::string_view name);

  // One pool per kind; names_[kind][id] is the stored spelling.
  std::vector<std::string> names_[3];
  std::unordered_map<std::string, uint32_t> index_[3];
  uint64_t fresh_counter_ = 0;
};

}  // namespace swdb

template <>
struct std::hash<swdb::Term> {
  size_t operator()(const swdb::Term& t) const noexcept {
    // Fibonacci hash of the packed bits.
    return static_cast<size_t>(t.bits()) * 0x9e3779b97f4a7c15ULL;
  }
};

#endif  // SWDB_RDF_TERM_H_
