#ifndef SWDB_RDF_TERM_H_
#define SWDB_RDF_TERM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace swdb {

/// The kind of an RDF term in this library's abstract model (paper §2.1,
/// §4): a URI reference from U, a blank node from B, or — in query
/// patterns only — a variable from V.
enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kVar = 2,
};

/// A term is an interned (kind, id) pair packed into 32 bits. Terms are
/// cheap to copy and compare; their textual form lives in a Dictionary.
///
/// Ids 0..4 of kind kIri are reserved for the RDFS vocabulary
/// rdfsV = {sp, sc, type, dom, range} (paper §2.2) and are identical
/// across all Dictionary instances.
class Term {
 public:
  /// Default-constructed term: the IRI with id 0 (sp). Prefer the named
  /// factories below.
  constexpr Term() : bits_(0) {}

  static constexpr Term Iri(uint32_t id) { return Term(TermKind::kIri, id); }
  /// Rebuilds a term from its packed bits() representation — the inverse
  /// of bits(). Used by the columnar indexes, which store raw term bits
  /// in contiguous uint32_t columns.
  static constexpr Term FromBits(uint32_t bits) {
    Term t;
    t.bits_ = bits;
    return t;
  }
  static constexpr Term Blank(uint32_t id) {
    return Term(TermKind::kBlank, id);
  }
  static constexpr Term Var(uint32_t id) { return Term(TermKind::kVar, id); }

  constexpr TermKind kind() const {
    return static_cast<TermKind>(bits_ >> 30);
  }
  constexpr uint32_t id() const { return bits_ & 0x3fffffffu; }

  constexpr bool IsIri() const { return kind() == TermKind::kIri; }
  constexpr bool IsBlank() const { return kind() == TermKind::kBlank; }
  constexpr bool IsVar() const { return kind() == TermKind::kVar; }
  /// True for elements of UB (i.e. not a variable).
  constexpr bool IsName() const { return !IsVar(); }

  constexpr bool operator==(const Term& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const Term& o) const { return bits_ != o.bits_; }
  constexpr bool operator<(const Term& o) const { return bits_ < o.bits_; }
  constexpr bool operator<=(const Term& o) const { return bits_ <= o.bits_; }
  constexpr bool operator>(const Term& o) const { return bits_ > o.bits_; }
  constexpr bool operator>=(const Term& o) const { return bits_ >= o.bits_; }

  constexpr uint32_t bits() const { return bits_; }

 private:
  constexpr Term(TermKind kind, uint32_t id)
      : bits_((static_cast<uint32_t>(kind) << 30) | (id & 0x3fffffffu)) {}

  uint32_t bits_;
};

/// The five RDFS-vocabulary terms with predefined semantics (paper §2.2):
/// rdfs:subPropertyOf, rdfs:subClassOf, rdf:type, rdfs:domain, rdfs:range.
namespace vocab {
inline constexpr Term kSp = Term::Iri(0);
inline constexpr Term kSc = Term::Iri(1);
inline constexpr Term kType = Term::Iri(2);
inline constexpr Term kDom = Term::Iri(3);
inline constexpr Term kRange = Term::Iri(4);
/// Number of reserved vocabulary ids.
inline constexpr uint32_t kReservedIris = 5;
/// All five reserved terms, in id order.
inline constexpr Term kAll[] = {kSp, kSc, kType, kDom, kRange};
/// True if t is one of the five RDFS-vocabulary terms.
inline constexpr bool IsRdfsVocab(Term t) {
  return t.IsIri() && t.id() < kReservedIris;
}
}  // namespace vocab

/// Interning observability (Dictionary::Stats): per-kind counts, the
/// per-shard intern-table load, and stored-spelling bytes.
struct DictionaryStats {
  size_t iris = 0;    ///< interned IRIs (incl. the 5 reserved)
  size_t blanks = 0;  ///< interned blank-node labels
  size_t vars = 0;    ///< interned variable names
  size_t shards = 0;  ///< number of intern shards
  std::vector<size_t> shard_entries;  ///< intern-map entries per shard
  std::vector<size_t> shard_bytes;    ///< stored spelling bytes per shard
  size_t name_bytes = 0;              ///< total spelling bytes
  size_t terms() const { return iris + blanks + vars; }
};

/// Interns term names. A Dictionary owns the string form of every IRI,
/// blank-node label and variable name used by the graphs built against
/// it, and allocates fresh blank nodes (for merges, Skolemization and
/// head-blank instantiation).
///
/// Graphs and Terms do not reference their Dictionary; callers keep the
/// association. Mixing terms from different dictionaries is a usage
/// error (ids would alias), except for the five reserved RDFS terms.
///
/// Thread safety: any number of threads may intern and look up
/// concurrently. The intern tables are split into kShards hash-selected
/// shards with per-shard mutexes, so interning distinct names rarely
/// contends; `Name()` is lock-free (the spellings live in append-only
/// chunked storage published with release/acquire). Term ids are
/// allocated from per-kind global counters fetched under the shard
/// lock, so the single-threaded intern order — and therefore every
/// id — is identical to a sequential run; under concurrency ids are
/// unique but interleaving-dependent.
class Dictionary {
 public:
  /// Number of hash-selected intern shards.
  static constexpr size_t kShards = 16;

  Dictionary();
  /// Deep copy: re-interns every name in id order, reproducing ids.
  Dictionary(const Dictionary& other);
  Dictionary& operator=(const Dictionary&) = delete;
  ~Dictionary();

  /// Interns an IRI, returning the existing term if already present.
  Term Iri(std::string_view name);
  /// Interns a named blank node (label without the "_:" prefix).
  Term Blank(std::string_view label);
  /// Interns a variable (name without the "?" prefix).
  Term Var(std::string_view name);

  /// Allocates a blank node guaranteed distinct from all existing ones.
  Term FreshBlank();
  /// Allocates an IRI guaranteed distinct from all existing ones; used
  /// as a Skolem constant (paper §3.1) or fresh constant in proofs.
  Term FreshIri();

  /// Looks up an already-interned IRI.
  Result<Term> FindIri(std::string_view name) const;

  /// Textual form of a term: IRIs verbatim, blanks as "_:label",
  /// variables as "?name". Lock-free; a term whose id has never been
  /// interned here renders as "<unknown#id>".
  std::string Name(Term t) const;

  /// Number of interned terms of the given kind.
  size_t CountOf(TermKind kind) const;

  /// Interning observability snapshot (locks each shard briefly).
  DictionaryStats Stats() const;

 private:
  // Append-only id -> spelling storage for one term kind. Writers
  // publish under their shard lock; readers are lock-free. Slots are
  // grouped into geometrically growing chunks (1024, 2048, 4096, ...)
  // installed by CAS, so no published slot ever moves.
  class NameTable {
   public:
    NameTable() = default;
    ~NameTable();
    NameTable(const NameTable&) = delete;
    NameTable& operator=(const NameTable&) = delete;

    /// The spelling of `id`, or nullptr if unpublished. Lock-free.
    const std::string* Get(uint32_t id) const;
    /// Publishes `name` (heap-allocated, ownership transferred) as the
    /// spelling of `id`. Each id is published at most once.
    void Put(uint32_t id, const std::string* name);

   private:
    struct Chunk {
      explicit Chunk(size_t n);
      std::unique_ptr<std::atomic<const std::string*>[]> slots;
      size_t capacity;
    };
    static constexpr uint32_t kBase = 1024;
    // Chunk c covers ids [kBase*(2^c - 1), kBase*(2^(c+1) - 1)); 21
    // chunks cover the whole 2^30 id space.
    static constexpr int kMaxChunks = 21;
    static void Locate(uint32_t id, int* chunk, uint32_t* offset);
    Chunk* ChunkAt(int c);

    std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  };

  struct Shard {
    mutable std::mutex mu;
    // Keys are views into the NameTable-owned heap strings (stable).
    std::unordered_map<std::string_view, uint32_t> index[3];
    size_t name_bytes = 0;
  };

  static size_t ShardOf(std::string_view name) {
    return std::hash<std::string_view>{}(name) & (kShards - 1);
  }

  /// Interns (kind, name); `*inserted` (optional) reports whether this
  /// call created the term — the atomic test used by Fresh*.
  Term Intern(TermKind kind, std::string_view name,
              bool* inserted = nullptr);

  std::array<Shard, kShards> shards_;
  NameTable names_[3];                     // per kind
  std::atomic<uint32_t> next_id_[3] = {};  // per-kind id allocators
  std::atomic<uint64_t> fresh_counter_{0};
};

}  // namespace swdb

template <>
struct std::hash<swdb::Term> {
  size_t operator()(const swdb::Term& t) const noexcept {
    // Fibonacci hash of the packed bits.
    return static_cast<size_t>(t.bits()) * 0x9e3779b97f4a7c15ULL;
  }
};

#endif  // SWDB_RDF_TERM_H_
