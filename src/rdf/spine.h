#ifndef SWDB_RDF_SPINE_H_
#define SWDB_RDF_SPINE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace swdb {

/// A 3-part lexicographic key: a triple's raw term bits (Term::bits)
/// permuted into one index order's key sequence.
using SpineKey = std::array<uint32_t, 3>;

/// One immutable chunk of a Spine: up to ~kLeafMax entries as three
/// structure-of-arrays uint32 columns, sorted lexicographically by
/// (k0, k1, k2). Leaves are shared across Spine copies by shared_ptr;
/// a leaf reachable from more than one spine is never mutated.
struct SpineLeaf {
  std::vector<uint32_t> k0, k1, k2;

  size_t size() const { return k0.size(); }
  size_t bytes() const {
    return (k0.capacity() + k1.capacity() + k2.capacity()) *
           sizeof(uint32_t);
  }
  const std::vector<uint32_t>& column(int k) const {
    return k == 0 ? k0 : k == 1 ? k1 : k2;
  }
  SpineKey at(size_t i) const { return {k0[i], k1[i], k2[i]}; }
};

/// A sorted set of 3-part keys stored as a sequence of immutable,
/// shared_ptr-shared leaves — the copy-on-write column spine behind
/// Graph's primary order and its three permutations.
///
/// Copying a Spine copies leaf *pointers* (O(n / leaf size)), not leaf
/// contents; a single-key Insert/Erase clones only the one leaf it
/// touches (and only when that leaf is shared), so an epoch that changed
/// k triples shares every untouched leaf with its predecessor and
/// publication cost is proportional to k, not to the graph.
///
/// Concurrency contract (matching Graph's): one writer mutates a spine
/// while readers only access *other* Spine objects that share leaves
/// with it. The use_count()==1 fast path is sound because a leaf
/// reachable from any reader is held by that reader's own spine, so its
/// count is at least 2 and the writer clones instead of mutating.
class Spine {
 public:
  /// Split threshold: a leaf growing past this many entries splits in
  /// half. Bulk builds fill to half of this so freshly built leaves
  /// absorb patches without immediate splits.
  static constexpr size_t kLeafMax = 2048;

  Spine() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t leaf_count() const { return leaves_.size(); }
  size_t bytes() const;

  void Clear();
  /// Rebuilds from entries that are already sorted and deduplicated.
  void BulkBuild(const std::vector<SpineKey>& entries);

  bool Contains(const SpineKey& key) const;
  /// Inserts `key`; returns false if already present.
  bool Insert(const SpineKey& key);
  /// Erases `key`; returns false if absent.
  bool Erase(const SpineKey& key);

  /// The key at global slot `slot` (< size()).
  SpineKey At(size_t slot) const;

  /// All keys in order, materialized (O(n)) — the bulk-merge input.
  std::vector<SpineKey> Keys() const;

  /// First global slot whose key is >= `key` (== size() if none).
  size_t LowerBound(const SpineKey& key) const;

  /// Global slot range of entries with k0 == key0 (and, when key1 is
  /// non-null, k1 == *key1 within that run). Exactly std::equal_range
  /// over the flattened columns. `scanned` (optional) accumulates the
  /// number of binary-search probes, for scan observability.
  std::pair<size_t, size_t> EqualRange(uint32_t key0, const uint32_t* key1,
                                       size_t* scanned = nullptr) const;

  /// Leaf geometry, for range iteration and per-leaf filter kernels.
  /// LeafIndexOf requires slot < size().
  size_t LeafIndexOf(size_t slot) const;
  const SpineLeaf& leaf(size_t li) const { return *leaves_[li]; }
  size_t leaf_start(size_t li) const { return starts_[li]; }

  /// Number of this spine's leaves that are the *same object* (pointer
  /// equality) as some leaf of `other` — the shared fraction of a
  /// published snapshot. O(leaves).
  size_t CountSharedLeavesWith(const Spine& other) const;

  /// Set equality with `other`. Streaming merge-walk over both leaf
  /// sequences (which may chunk the same contents differently);
  /// aligned shared leaves compare by pointer in O(1).
  bool EqualContents(const Spine& other) const;

 private:
  // Index of the leaf a key belongs to (the last leaf whose first key
  // is <= key), or 0 when the key precedes everything.
  size_t LeafForKey(const SpineKey& key) const;
  // A mutable reference to leaf li, cloning it first if shared.
  SpineLeaf* Mutable(size_t li);
  // Splits leaf li in half (after an insert pushed it past kLeafMax).
  void Split(size_t li);

  std::vector<std::shared_ptr<SpineLeaf>> leaves_;
  // starts_[i] = global slot of leaves_[i]'s first entry; starts_.size()
  // == leaves_.size(). Maintained on every mutation (O(leaves)).
  std::vector<size_t> starts_;
  size_t size_ = 0;
};

}  // namespace swdb

#endif  // SWDB_RDF_SPINE_H_
