#include "rdf/scan.h"

#include <algorithm>

// SIMD bodies are gated twice: SWDB_SIMD (the CMake option; absent in
// the scalar-fallback build) and the target architecture. On x86-64 the
// SSE2 body is always safe (SSE2 is part of the base ABI); the AVX2
// body is compiled with a per-function target attribute and selected at
// runtime via __builtin_cpu_supports, so the library binary still runs
// on CPUs without AVX2.
#if defined(SWDB_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define SWDB_SCAN_X86 1
#include <immintrin.h>
#endif

namespace swdb {
namespace scan {

namespace {

#if SWDB_SCAN_X86

bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
}

// --- AVX2 bodies (selected at runtime) -----------------------------------

__attribute__((target("avx2"))) size_t FilterEqAvx2(
    const uint32_t* col, size_t lo, size_t hi, uint32_t key,
    std::vector<uint32_t>* out) {
  const size_t before = out->size();
  const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    const __m256i eq = _mm256_cmpeq_epi32(v, vkey);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out->push_back(static_cast<uint32_t>(i + bit));
      mask &= mask - 1;
    }
  }
  for (; i < hi; ++i) {
    if (col[i] == key) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

__attribute__((target("avx2"))) size_t FilterPairEqAvx2(
    const uint32_t* a, const uint32_t* b, size_t lo, size_t hi,
    std::vector<uint32_t>* out) {
  const size_t before = out->size();
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i eq = _mm256_cmpeq_epi32(va, vb);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out->push_back(static_cast<uint32_t>(i + bit));
      mask &= mask - 1;
    }
  }
  for (; i < hi; ++i) {
    if (a[i] == b[i]) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

// Counts elements < key and <= key in col[lo, hi) with one pass.
// Unsigned compares built from signed cmpgt by flipping the sign bit.
__attribute__((target("avx2"))) std::pair<size_t, size_t> CountBoundsAvx2(
    const uint32_t* col, size_t lo, size_t hi, uint32_t key) {
  const __m256i flip = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vkey =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(key)), flip);
  size_t lt = 0, gt = 0;
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i)), flip);
    const unsigned lt_mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vkey, v))));
    const unsigned gt_mask = static_cast<unsigned>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(v, vkey))));
    lt += static_cast<size_t>(__builtin_popcount(lt_mask));
    gt += static_cast<size_t>(__builtin_popcount(gt_mask));
  }
  for (; i < hi; ++i) {
    lt += col[i] < key ? 1 : 0;
    gt += col[i] > key ? 1 : 0;
  }
  return {lt, (hi - lo) - gt};  // {#(< key), #(<= key)}
}

// --- SSE2 bodies (base x86-64 ABI, no runtime check needed) ---------------

size_t FilterEqSse2(const uint32_t* col, size_t lo, size_t hi, uint32_t key,
                    std::vector<uint32_t>* out) {
  const size_t before = out->size();
  const __m128i vkey = _mm_set1_epi32(static_cast<int>(key));
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + i));
    unsigned mask = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(v, vkey))));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out->push_back(static_cast<uint32_t>(i + bit));
      mask &= mask - 1;
    }
  }
  for (; i < hi; ++i) {
    if (col[i] == key) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

size_t FilterPairEqSse2(const uint32_t* a, const uint32_t* b, size_t lo,
                        size_t hi, std::vector<uint32_t>* out) {
  const size_t before = out->size();
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    unsigned mask = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))));
    while (mask != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctz(mask));
      out->push_back(static_cast<uint32_t>(i + bit));
      mask &= mask - 1;
    }
  }
  for (; i < hi; ++i) {
    if (a[i] == b[i]) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

std::pair<size_t, size_t> CountBoundsSse2(const uint32_t* col, size_t lo,
                                          size_t hi, uint32_t key) {
  const __m128i flip = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vkey =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(key)), flip);
  size_t lt = 0, gt = 0;
  size_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + i)), flip);
    const unsigned lt_mask = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(v, vkey))));
    const unsigned gt_mask = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(v, vkey))));
    lt += static_cast<size_t>(__builtin_popcount(lt_mask));
    gt += static_cast<size_t>(__builtin_popcount(gt_mask));
  }
  for (; i < hi; ++i) {
    lt += col[i] < key ? 1 : 0;
    gt += col[i] > key ? 1 : 0;
  }
  return {lt, (hi - lo) - gt};
}

#endif  // SWDB_SCAN_X86

// Scalar compare-and-count over a window; the reference body behind
// SortedEqualRangeScalar's final sweep.
std::pair<size_t, size_t> CountBoundsScalar(const uint32_t* col, size_t lo,
                                            size_t hi, uint32_t key) {
  size_t lt = 0, le = 0;
  for (size_t i = lo; i < hi; ++i) {
    lt += col[i] < key ? 1 : 0;
    le += col[i] <= key ? 1 : 0;
  }
  return {lt, le};
}

// Halve [lo, hi) under the lower_bound predicate (col[mid] < key) until
// the window fits the linear sweep. The lower bound is then
// window-start + #(elements < key in window). The upper-bound twin uses
// col[mid] <= key. Shared by the scalar and SIMD paths so both sweep
// the exact same window (a prerequisite of bit-identity, and it keeps
// the `scanned` counter comparable across builds); the window never
// exceeds kSortedScanWindow, so a huge equal run still costs
// O(log n + window), not O(run).
std::pair<size_t, size_t> NarrowLower(const uint32_t* col, size_t lo,
                                      size_t hi, uint32_t key) {
  while (hi - lo > kSortedScanWindow) {
    const size_t mid = lo + (hi - lo) / 2;
    if (col[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, hi};
}

std::pair<size_t, size_t> NarrowUpper(const uint32_t* col, size_t lo,
                                      size_t hi, uint32_t key) {
  while (hi - lo > kSortedScanWindow) {
    const size_t mid = lo + (hi - lo) / 2;
    if (col[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return {lo, hi};
}

}  // namespace

bool SimdEnabled() {
#if SWDB_SCAN_X86
  return true;
#else
  return false;
#endif
}

const char* KernelName() {
#if SWDB_SCAN_X86
  return HaveAvx2() ? "avx2" : "sse2";
#else
  return "scalar";
#endif
}

size_t FilterEqScalar(const uint32_t* col, size_t lo, size_t hi, uint32_t key,
                      std::vector<uint32_t>* out) {
  const size_t before = out->size();
  for (size_t i = lo; i < hi; ++i) {
    if (col[i] == key) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

size_t FilterEq(const uint32_t* col, size_t lo, size_t hi, uint32_t key,
                std::vector<uint32_t>* out) {
#if SWDB_SCAN_X86
  if (HaveAvx2()) return FilterEqAvx2(col, lo, hi, key, out);
  return FilterEqSse2(col, lo, hi, key, out);
#else
  return FilterEqScalar(col, lo, hi, key, out);
#endif
}

size_t FilterPairEqScalar(const uint32_t* a, const uint32_t* b, size_t lo,
                          size_t hi, std::vector<uint32_t>* out) {
  const size_t before = out->size();
  for (size_t i = lo; i < hi; ++i) {
    if (a[i] == b[i]) out->push_back(static_cast<uint32_t>(i));
  }
  return out->size() - before;
}

size_t FilterPairEq(const uint32_t* a, const uint32_t* b, size_t lo,
                    size_t hi, std::vector<uint32_t>* out) {
#if SWDB_SCAN_X86
  if (HaveAvx2()) return FilterPairEqAvx2(a, b, lo, hi, out);
  return FilterPairEqSse2(a, b, lo, hi, out);
#else
  return FilterPairEqScalar(a, b, lo, hi, out);
#endif
}

std::pair<size_t, size_t> SortedEqualRangeScalar(const uint32_t* col,
                                                 size_t lo, size_t hi,
                                                 uint32_t key,
                                                 size_t* scanned) {
  const auto [llo, lhi] = NarrowLower(col, lo, hi, key);
  const auto [ulo, uhi] = NarrowUpper(col, lo, hi, key);
  if (scanned != nullptr) *scanned += (lhi - llo) + (uhi - ulo);
  const size_t first = llo + CountBoundsScalar(col, llo, lhi, key).first;
  const size_t last = ulo + CountBoundsScalar(col, ulo, uhi, key).second;
  return {first, last};
}

std::pair<size_t, size_t> SortedEqualRange(const uint32_t* col, size_t lo,
                                           size_t hi, uint32_t key,
                                           size_t* scanned) {
#if SWDB_SCAN_X86
  const auto [llo, lhi] = NarrowLower(col, lo, hi, key);
  const auto [ulo, uhi] = NarrowUpper(col, lo, hi, key);
  if (scanned != nullptr) *scanned += (lhi - llo) + (uhi - ulo);
  if (HaveAvx2()) {
    return {llo + CountBoundsAvx2(col, llo, lhi, key).first,
            ulo + CountBoundsAvx2(col, ulo, uhi, key).second};
  }
  return {llo + CountBoundsSse2(col, llo, lhi, key).first,
          ulo + CountBoundsSse2(col, ulo, uhi, key).second};
#else
  return SortedEqualRangeScalar(col, lo, hi, key, scanned);
#endif
}

}  // namespace scan
}  // namespace swdb
