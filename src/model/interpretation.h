#ifndef SWDB_MODEL_INTERPRETATION_H_
#define SWDB_MODEL_INTERPRETATION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/graph.h"
#include "util/status.h"

namespace swdb {

/// A finite RDF interpretation I = (Res, Prop, Class, PExt, CExt, Int)
/// (paper §2.3.1), with Res = {0, ..., domain_size-1} and the harmless
/// normalization Prop ⊆ Res (property names that interact with the
/// dom/range/sp closure conditions must be resources anyway).
///
/// This module exists to cross-check the deductive machinery against the
/// paper's model theory: tests verify that the closure-derived canonical
/// interpretation really satisfies all interpretation conditions, and
/// that the map-based simple entailment agrees with term-model semantics.
class Interpretation {
 public:
  explicit Interpretation(uint32_t domain_size);

  uint32_t domain_size() const { return domain_size_; }

  /// Declares r ∈ Prop / r ∈ Class.
  void MarkProp(uint32_t r);
  void MarkClass(uint32_t r);
  bool IsProp(uint32_t r) const { return is_prop_[r]; }
  bool IsClass(uint32_t r) const { return is_class_[r]; }

  /// Adds (x, y) to PExt(r). Requires r ∈ Prop.
  void AddPExt(uint32_t r, uint32_t x, uint32_t y);
  bool InPExt(uint32_t r, uint32_t x, uint32_t y) const;
  /// All pairs in PExt(r).
  std::vector<std::pair<uint32_t, uint32_t>> PExtPairs(uint32_t r) const;

  /// Adds x to CExt(r). Requires r ∈ Class.
  void AddCExt(uint32_t r, uint32_t x);
  bool InCExt(uint32_t r, uint32_t x) const;

  /// Sets Int(u) = r for a URI term u.
  void SetInt(Term u, uint32_t r);
  /// Int(u); the URI must have been assigned.
  uint32_t Int(Term u) const;
  bool HasInt(Term u) const { return int_.count(u) > 0; }

  /// Checks all the RDFS interpretation conditions of §2.3.1 other than
  /// the graph-specific simple-interpretation condition: properties &
  /// classes, subproperty, subclass, and typing. Returns OK or a status
  /// describing the first violated condition. The five vocabulary URIs
  /// must have Int assignments.
  Status CheckRdfsConditions() const;

 private:
  uint32_t domain_size_;
  std::vector<char> is_prop_;
  std::vector<char> is_class_;
  std::vector<std::unordered_set<uint64_t>> pext_;  // packed (x<<32)|y
  std::vector<std::unordered_set<uint32_t>> cext_;
  std::unordered_map<Term, uint32_t> int_;
};

/// Tests the simple-interpretation condition (paper §2.3.1): whether
/// there exists A : blanks(g) → Res with, for every (s,p,o) ∈ g,
/// Int(p) ∈ Prop and (IntA(s), IntA(o)) ∈ PExt(Int(p)). Every URI of g
/// must have an Int assignment. This is an independent (non-PatternMatcher)
/// backtracking search used to cross-check the rdf module.
bool SatisfiesSimple(const Interpretation& i, const Graph& g);

/// Full model relation I ⊨ G: the simple-interpretation condition plus
/// all RDFS conditions on I itself.
bool Models(const Interpretation& i, const Graph& g);

}  // namespace swdb

#endif  // SWDB_MODEL_INTERPRETATION_H_
