#include "model/canonical.h"

#include <unordered_map>

#include "inference/closure.h"
#include "rdf/map.h"

namespace swdb {

namespace {

// Builds the interpretation whose resources are the universe of `data`
// (plus the reserved vocabulary when with_rdfs), Int the identity on
// URIs, and PExt/CExt/Prop/Class read off the triples of `data`.
Interpretation FromTriples(const Graph& data, bool with_rdfs,
                           std::vector<Term>* universe_out) {
  std::vector<Term> universe = data.Universe();
  if (with_rdfs) {
    for (Term v : vocab::kAll) universe.push_back(v);
    std::sort(universe.begin(), universe.end());
    universe.erase(std::unique(universe.begin(), universe.end()),
                   universe.end());
  }
  std::unordered_map<Term, uint32_t> index;
  for (uint32_t i = 0; i < universe.size(); ++i) index[universe[i]] = i;

  Interpretation interp(static_cast<uint32_t>(universe.size()));
  for (Term t : universe) {
    if (t.IsIri()) interp.SetInt(t, index[t]);
  }
  if (with_rdfs) {
    // Prop = {r : (r,sp,r) ∈ data}; Class = {c : (c,sc,c) ∈ data}.
    for (const Triple& t : data) {
      if (t.p == vocab::kSp && t.s == t.o) interp.MarkProp(index[t.s]);
      if (t.p == vocab::kSc && t.s == t.o) interp.MarkClass(index[t.s]);
    }
  } else {
    for (const Triple& t : data) interp.MarkProp(index[t.p]);
  }
  for (const Triple& t : data) {
    interp.AddPExt(index[t.p], index[t.s], index[t.o]);
    if (with_rdfs && t.p == vocab::kType) {
      interp.AddCExt(index[t.o], index[t.s]);
    }
  }
  if (universe_out != nullptr) *universe_out = std::move(universe);
  return interp;
}

}  // namespace

Interpretation TermModel(const Graph& g, std::vector<Term>* universe_out) {
  return FromTriples(g, /*with_rdfs=*/false, universe_out);
}

Interpretation CanonicalModel(const Graph& g, Dictionary* dict,
                              std::vector<Term>* universe_out) {
  TermMap sk;
  Graph skolemized = Skolemize(g, dict, &sk);
  Graph closure = RdfsClosure(skolemized);
  return FromTriples(closure, /*with_rdfs=*/true, universe_out);
}

bool SemanticSimpleEntails(const Graph& g1, const Graph& g2) {
  Interpretation term_model = TermModel(g1);
  return SatisfiesSimple(term_model, g2);
}

bool SemanticRdfsEntails(const Graph& g1, const Graph& g2,
                         Dictionary* dict) {
  Interpretation canonical = CanonicalModel(g1, dict);
  return SatisfiesSimple(canonical, g2);
}

}  // namespace swdb
