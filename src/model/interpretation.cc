#include "model/interpretation.h"

#include <cassert>

namespace swdb {

namespace {
uint64_t Pack(uint32_t x, uint32_t y) {
  return (static_cast<uint64_t>(x) << 32) | y;
}
}  // namespace

Interpretation::Interpretation(uint32_t domain_size)
    : domain_size_(domain_size),
      is_prop_(domain_size, 0),
      is_class_(domain_size, 0),
      pext_(domain_size),
      cext_(domain_size) {}

void Interpretation::MarkProp(uint32_t r) {
  assert(r < domain_size_);
  is_prop_[r] = 1;
}

void Interpretation::MarkClass(uint32_t r) {
  assert(r < domain_size_);
  is_class_[r] = 1;
}

void Interpretation::AddPExt(uint32_t r, uint32_t x, uint32_t y) {
  assert(r < domain_size_ && x < domain_size_ && y < domain_size_);
  assert(is_prop_[r] && "PExt is only defined on Prop");
  pext_[r].insert(Pack(x, y));
}

bool Interpretation::InPExt(uint32_t r, uint32_t x, uint32_t y) const {
  return r < domain_size_ && pext_[r].count(Pack(x, y)) > 0;
}

std::vector<std::pair<uint32_t, uint32_t>> Interpretation::PExtPairs(
    uint32_t r) const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(pext_[r].size());
  for (uint64_t packed : pext_[r]) {
    out.emplace_back(static_cast<uint32_t>(packed >> 32),
                     static_cast<uint32_t>(packed & 0xffffffffu));
  }
  return out;
}

void Interpretation::AddCExt(uint32_t r, uint32_t x) {
  assert(r < domain_size_ && x < domain_size_);
  assert(is_class_[r] && "CExt is only defined on Class");
  cext_[r].insert(x);
}

bool Interpretation::InCExt(uint32_t r, uint32_t x) const {
  return r < domain_size_ && cext_[r].count(x) > 0;
}

void Interpretation::SetInt(Term u, uint32_t r) {
  assert(u.IsIri() && r < domain_size_);
  int_[u] = r;
}

uint32_t Interpretation::Int(Term u) const {
  auto it = int_.find(u);
  assert(it != int_.end() && "URI without an Int assignment");
  return it->second;
}

Status Interpretation::CheckRdfsConditions() const {
  auto fail = [](const std::string& cond) {
    return Status::InvalidArgument("RDFS condition violated: " + cond);
  };
  for (Term v : vocab::kAll) {
    if (!HasInt(v)) return fail("vocabulary URI lacks Int assignment");
    if (!is_prop_[Int(v)]) return fail("Int(rdfsV) not in Prop");
  }
  const uint32_t sp = Int(vocab::kSp);
  const uint32_t sc = Int(vocab::kSc);
  const uint32_t ty = Int(vocab::kType);
  const uint32_t dom = Int(vocab::kDom);
  const uint32_t range = Int(vocab::kRange);

  // Properties and classes: PExt(dom) ∪ PExt(range) ⊆ Prop × Class.
  for (uint32_t r : {dom, range}) {
    for (const auto& [x, y] : PExtPairs(r)) {
      if (!is_prop_[x]) return fail("dom/range subject not in Prop");
      if (!is_class_[y]) return fail("dom/range object not in Class");
    }
  }

  // Subproperty: PExt(sp) transitive and reflexive over Prop; pairs in
  // Prop × Prop with extension inclusion.
  for (uint32_t r = 0; r < domain_size_; ++r) {
    if (is_prop_[r] && !InPExt(sp, r, r)) {
      return fail("PExt(sp) not reflexive over Prop");
    }
  }
  for (const auto& [x, y] : PExtPairs(sp)) {
    if (!is_prop_[x] || !is_prop_[y]) return fail("sp pair not in Prop");
    for (uint64_t packed : pext_[x]) {
      if (!pext_[y].count(packed)) return fail("sp without PExt inclusion");
    }
    for (const auto& [y2, z] : PExtPairs(sp)) {
      if (y2 == y && !InPExt(sp, x, z)) return fail("PExt(sp) not transitive");
    }
  }

  // Subclass: analogous with CExt.
  for (uint32_t r = 0; r < domain_size_; ++r) {
    if (is_class_[r] && !InPExt(sc, r, r)) {
      return fail("PExt(sc) not reflexive over Class");
    }
  }
  for (const auto& [x, y] : PExtPairs(sc)) {
    if (!is_class_[x] || !is_class_[y]) return fail("sc pair not in Class");
    for (uint32_t member : cext_[x]) {
      if (!cext_[y].count(member)) return fail("sc without CExt inclusion");
    }
    for (const auto& [y2, z] : PExtPairs(sc)) {
      if (y2 == y && !InPExt(sc, x, z)) return fail("PExt(sc) not transitive");
    }
  }

  // Typing: (x,y) ∈ PExt(type) iff y ∈ Class and x ∈ CExt(y).
  for (const auto& [x, y] : PExtPairs(ty)) {
    if (!is_class_[y] || !InCExt(y, x)) {
      return fail("PExt(type) pair without CExt membership");
    }
  }
  for (uint32_t y = 0; y < domain_size_; ++y) {
    if (!is_class_[y]) continue;
    for (uint32_t x : cext_[y]) {
      if (!InPExt(ty, x, y)) {
        return fail("CExt membership missing from PExt(type)");
      }
    }
  }
  // dom/range propagation into CExt.
  for (const auto& [x, y] : PExtPairs(dom)) {
    for (const auto& [u, v] : PExtPairs(x)) {
      (void)v;
      if (!InCExt(y, u)) return fail("dom: subject not in CExt of domain");
    }
  }
  for (const auto& [x, y] : PExtPairs(range)) {
    for (const auto& [u, v] : PExtPairs(x)) {
      (void)u;
      if (!InCExt(y, v)) return fail("range: object not in CExt of range");
    }
  }
  return Status::OK();
}

namespace {

// Recursive search for a blank-node assignment A : blanks(g) → Res.
bool SearchAssignment(const Interpretation& i, const Graph& g,
                      const std::vector<Term>& blanks, size_t index,
                      std::unordered_map<Term, uint32_t>* assignment) {
  if (index == blanks.size()) {
    for (const Triple& t : g) {
      if (!t.p.IsIri() || !i.HasInt(t.p)) return false;
      uint32_t p = i.Int(t.p);
      if (!i.IsProp(p)) return false;
      auto value = [&](Term x) -> uint32_t {
        return x.IsBlank() ? assignment->at(x) : i.Int(x);
      };
      if (!i.InPExt(p, value(t.s), value(t.o))) return false;
    }
    return true;
  }
  for (uint32_t r = 0; r < i.domain_size(); ++r) {
    (*assignment)[blanks[index]] = r;
    if (SearchAssignment(i, g, blanks, index + 1, assignment)) return true;
  }
  assignment->erase(blanks[index]);
  return false;
}

}  // namespace

bool SatisfiesSimple(const Interpretation& i, const Graph& g) {
  // Every URI of the graph must be interpreted.
  for (Term u : g.Vocabulary()) {
    if (!i.HasInt(u)) return false;
  }
  std::vector<Term> blanks = g.BlankNodes();
  std::unordered_map<Term, uint32_t> assignment;
  return SearchAssignment(i, g, blanks, 0, &assignment);
}

bool Models(const Interpretation& i, const Graph& g) {
  return i.CheckRdfsConditions().ok() && SatisfiesSimple(i, g);
}

}  // namespace swdb
