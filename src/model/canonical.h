#ifndef SWDB_MODEL_CANONICAL_H_
#define SWDB_MODEL_CANONICAL_H_

#include <vector>

#include "model/interpretation.h"
#include "rdf/graph.h"
#include "rdf/term.h"

namespace swdb {

/// The term model of a simple graph g: Res = universe(g), Int = identity
/// on voc(g), Prop = predicates of g, PExt(p) = {(s,o) : (s,p,o) ∈ g}
/// (blank nodes become anonymous resources). This is the universal model
/// for simple entailment: g ⊨ h iff TermModel(g) satisfies h.
/// `universe_out`, if non-null, receives the term at each resource index.
Interpretation TermModel(const Graph& g,
                         std::vector<Term>* universe_out = nullptr);

/// The canonical RDFS interpretation of a (general) graph g, built from
/// the Skolemized closure RDFS-cl(g^*): resources are the universe of the
/// closure plus the reserved vocabulary; Prop = {r : (r,sp,r) ∈ cl},
/// Class = {c : (c,sc,c) ∈ cl}; PExt and CExt read off the closure's
/// triples. By soundness and completeness (paper Thm 2.6 + 2.8) this
/// interpretation is universal: g ⊨ h iff CanonicalModel(g) satisfies h.
Interpretation CanonicalModel(const Graph& g, Dictionary* dict,
                              std::vector<Term>* universe_out = nullptr);

/// Semantic simple entailment via the term model; cross-checks
/// SimpleEntails (rdf/hom.h) in tests.
bool SemanticSimpleEntails(const Graph& g1, const Graph& g2);

/// Semantic RDFS entailment via the canonical model; cross-checks
/// RdfsEntails (inference/closure.h) in tests.
bool SemanticRdfsEntails(const Graph& g1, const Graph& g2, Dictionary* dict);

}  // namespace swdb

#endif  // SWDB_MODEL_CANONICAL_H_
