// Quickstart: build an RDF graph, test entailment, compute closure /
// core / normal form, and run a query — the library's core API in one
// sitting.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "inference/closure.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "query/answer.h"
#include "rdf/graph.h"
#include "rdf/hom.h"

int main() {
  using namespace swdb;

  // Every graph lives against a Dictionary that interns term names.
  Dictionary dict;

  // 1. Build a graph: programmatically...
  Graph g;
  g.Insert(dict.Iri("cat"), vocab::kSc, dict.Iri("mammal"));
  g.Insert(dict.Iri("mammal"), vocab::kSc, dict.Iri("animal"));
  g.Insert(dict.Iri("tom"), vocab::kType, dict.Iri("cat"));

  // ...or from text.
  Result<Graph> parsed = ParseGraph(
      "tom chases _:someone .\n"
      "chases dom cat .\n",
      &dict);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  g.InsertAll(*parsed);

  std::printf("== input graph (%zu triples) ==\n%s\n", g.size(),
              FormatGraph(g, dict).c_str());

  // 2. RDFS entailment (Thm 2.8: map into the closure).
  Result<Graph> question =
      ParseGraph("tom type animal .\n_:X type mammal .\n", &dict);
  std::printf("entails {tom type animal; _X type mammal}? %s\n\n",
              RdfsEntails(g, *question) ? "yes" : "no");

  // 3. Closure, core, normal form (Sections 2.4 and 3).
  Graph closure = RdfsClosure(g);
  std::printf("closure has %zu triples (quadratic worst case)\n",
              closure.size());
  Graph core = Core(g);
  std::printf("core has %zu triples (lean: %s)\n", core.size(),
              IsLean(core) ? "yes" : "no");
  Graph nf = NormalForm(g);
  std::printf("normal form nf(G) = core(cl(G)) has %zu triples\n\n",
              nf.size());

  // 4. Query with the tableau language of Section 4.
  Result<Query> query = ParseQuery(
      "head: ?X verdict smallAnimal .\n"
      "body: ?X type animal .\n"
      "bind: ?X\n",
      &dict);
  if (!query.ok()) {
    std::printf("query error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  QueryEvaluator evaluator(&dict);
  Result<Graph> answer = evaluator.AnswerUnion(*query, g);
  if (!answer.ok()) {
    std::printf("evaluation error: %s\n",
                answer.status().ToString().c_str());
    return 1;
  }
  std::printf("== answer (union semantics) ==\n%s",
              FormatGraph(*answer, dict).c_str());
  return 0;
}
