// Normal forms for RDF graphs (paper Section 3): closures and their
// non-uniqueness pitfalls (Ex. 3.2), lean graphs and cores (Ex. 3.8),
// non-unique minimal representations (Ex. 3.14 / 3.15), and the
// syntax-independent normal form nf(G) = core(cl(G)) (Ex. 3.17).
//
//   $ ./examples/normalization

#include <cstdio>

#include "inference/closure.h"
#include "normal/core.h"
#include "normal/minimal.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "rdf/iso.h"

int main() {
  using namespace swdb;
  Dictionary dict;
  auto parse = [&dict](const char* text) {
    Result<Graph> g = ParseGraph(text, &dict);
    return g.ok() ? *g : Graph();
  };

  // --- Leanness and cores (Ex. 3.8, Thm 3.10/3.11). ---
  Graph g1 = parse("a p _:X .\na p _:Y .");
  Graph g2 = parse("a p _:X .\n_:X q _:Y .\n_:Y r b .");
  std::printf("Ex 3.8  G1 lean? %s   G2 lean? %s\n",
              IsLean(g1) ? "yes" : "no", IsLean(g2) ? "yes" : "no");
  std::printf("core(G1):\n%s", FormatGraph(Core(g1), dict).c_str());

  // --- Closure size (Thm 3.6(3)): quadratic on sc-chains. ---
  Graph chain = parse(
      "c0 sc c1 .\nc1 sc c2 .\nc2 sc c3 .\nc3 sc c4 .\nc4 sc c5 .");
  std::printf("\nsc-chain of %zu triples closes to %zu triples\n",
              chain.size(), RdfsClosure(chain).size());

  // --- Non-unique minimal representations (Ex. 3.14). ---
  Graph ex314 = parse("b sp c .\nc sp b .\nb sp a .\nc sp a .");
  std::vector<Graph> minimums = AllMinimumRepresentations(ex314);
  std::printf("\nEx 3.14 has %zu distinct minimum representations:\n",
              minimums.size());
  for (const Graph& m : minimums) {
    std::printf("%s---\n", FormatGraph(m, dict).c_str());
  }

  // --- Ex. 3.15: acyclic, yet still two minimal representations. ---
  Graph ex315 = parse(
      "a sc b .\ntype dom a .\nx type a .\nx type b .");
  minimums = AllMinimumRepresentations(ex315);
  std::printf("Ex 3.15 (acyclic!) has %zu minimum representations\n",
              minimums.size());

  // --- Thm 3.16: unique minimum in the restricted class. ---
  Graph restricted = parse(
      "a sc b .\nb sc c .\na sc c .\n"
      "p dom c .\nu p v .\nu type c .");
  std::printf(
      "restricted graph: vocab-in-data=%s, acyclic=%s, "
      "#minimums=%zu\n",
      HasReservedVocabInSubjectOrObject(restricted) ? "yes" : "no",
      IsAcyclicScSp(restricted) ? "yes" : "no",
      AllMinimumRepresentations(restricted).size());

  // --- Ex. 3.17: closure is syntax dependent, nf is not. ---
  Graph ex317_g = parse("a sc b .\nb sc c .\na sc _:N .\n_:N sc c .");
  Graph ex317_h = parse("a sc b .\nb sc c .\na sc c .");
  std::printf(
      "\nEx 3.17: G ≡ H? %s | cl(G) ≅ cl(H)? %s | nf(G) ≅ nf(H)? %s\n",
      RdfsEquivalent(ex317_g, ex317_h) ? "yes" : "no",
      AreIsomorphic(RdfsClosure(ex317_g), RdfsClosure(ex317_h)) ? "yes"
                                                                : "no",
      AreIsomorphic(NormalForm(ex317_g), NormalForm(ex317_h)) ? "yes"
                                                              : "no");
  std::printf("nf(G):\n%s", FormatGraph(NormalForm(ex317_g), dict).c_str());
  return 0;
}
