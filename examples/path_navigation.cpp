// Regular path queries — the "reachability, paths" extension listed as
// future work in the paper's conclusions (§7), implemented on top of the
// core model. Demonstrates plain navigation, inverse steps, and
// RDFS-aware reachability by evaluating over the closure.
//
//   $ ./examples/path_navigation

#include <cstdio>

#include "inference/closure.h"
#include "parser/text.h"
#include "paths/path.h"

namespace {

constexpr const char* kSocialGraph = R"(
# A little influence network.
monet     influenced vanGogh .
vanGogh   influenced schiele .
cezanne   influenced picasso .
picasso   influenced bacon .
monet     friendOf   renoir .
renoir    influenced picasso .
# A class hierarchy on the side.
impressionist  sc painter .
cubist         sc painter .
painter        sc artist .
monet   type impressionist .
picasso type cubist .
)";

}  // namespace

int main() {
  using namespace swdb;
  Dictionary dict;
  Result<Graph> parsed = ParseGraph(kSocialGraph, &dict);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Graph g = *parsed;

  auto show = [&](const char* label, const char* expr, const char* from,
                  const Graph& data) {
    Result<PathExpr> path = ParsePathExpr(expr, &dict);
    if (!path.ok()) {
      std::printf("%s: %s\n", expr, path.status().ToString().c_str());
      return;
    }
    std::printf("%-44s {", label);
    bool first = true;
    for (Term t : EvalPathFrom(data, *path, {dict.Iri(from)})) {
      std::printf("%s%s", first ? "" : ", ", FormatTerm(t, dict).c_str());
      first = false;
    }
    std::printf("}\n");
  };

  std::printf("== navigation over the raw graph ==\n");
  show("influenced(monet):", "influenced", "monet", g);
  show("influenced+(monet):", "influenced+", "monet", g);
  show("(friendOf/influenced)(monet):", "friendOf/influenced", "monet", g);
  show("(influenced|friendOf)+(monet):", "(influenced|friendOf)+", "monet",
       g);
  show("^influenced(picasso):", "^influenced", "picasso", g);
  show("(^influenced)+(bacon):", "(^influenced)+", "bacon", g);

  std::printf("\n== RDFS-aware: evaluate over the closure ==\n");
  Graph closure = RdfsClosure(g);
  show("sc+(impressionist), raw:", "sc+", "impressionist", g);
  show("sc+(impressionist), closure:", "sc+", "impressionist", closure);
  show("type/sc*(monet), closure:", "type/(sc)*", "monet", closure);
  return 0;
}
