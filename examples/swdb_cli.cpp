// swdb_cli — a command-line front end to the library, in the spirit of
// the small tools that ship with RDF stores.
//
// Usage:
//   swdb_cli closure  <graph-file>             print RDFS-cl(G)
//   swdb_cli core     <graph-file>             print core(G)
//   swdb_cli nf       <graph-file>             print nf(G) = core(cl(G))
//   swdb_cli lean     <graph-file>             report whether G is lean
//   swdb_cli minimal  <graph-file>             print a minimal representation
//   swdb_cli entails  <graph-file> <goal-file> decide G ⊨ H, print a proof
//   swdb_cli query    <graph-file> <query-file> [--merge]
//   swdb_cli paths    <graph-file> <path-expr> <start-node> [--closure]
//   swdb_cli sparql   <graph-file> <sparql-file> [--closure]
//   swdb_cli stats    <graph-file>             sizes of G, cl(G), core(G)
//
// Graph files are in the line-oriented "s p o ." format (see
// parser/text.h); query files in the "head:/body:/premise:/bind:"
// format.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "inference/closure.h"
#include "inference/proof.h"
#include "normal/core.h"
#include "normal/minimal.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "paths/path.h"
#include "query/database.h"
#include "sparql/sparql_parser.h"

namespace {

using namespace swdb;

int Fail(const std::string& message) {
  std::fprintf(stderr, "swdb_cli: %s\n", message.c_str());
  return 1;
}

Result<std::string> ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Result<Graph> LoadGraph(const char* path, Dictionary* dict) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseGraph(*text, dict);
}

int CmdUnary(const char* mode, const char* file) {
  Dictionary dict;
  Result<Graph> g = LoadGraph(file, &dict);
  if (!g.ok()) return Fail(g.status().ToString());
  if (std::strcmp(mode, "closure") == 0) {
    std::fputs(FormatGraph(RdfsClosure(*g), dict).c_str(), stdout);
  } else if (std::strcmp(mode, "core") == 0) {
    std::fputs(FormatGraph(Core(*g), dict).c_str(), stdout);
  } else if (std::strcmp(mode, "nf") == 0) {
    std::fputs(FormatGraph(NormalForm(*g), dict).c_str(), stdout);
  } else if (std::strcmp(mode, "lean") == 0) {
    std::printf("%s\n", IsLean(*g) ? "lean" : "not lean");
  } else if (std::strcmp(mode, "minimal") == 0) {
    std::fputs(FormatGraph(MinimalRepresentation(*g), dict).c_str(),
               stdout);
  } else if (std::strcmp(mode, "stats") == 0) {
    Graph cl = RdfsClosure(*g);
    Graph core = Core(*g);
    std::printf("triples:     %zu\n", g->size());
    std::printf("blanks:      %zu\n", g->BlankNodes().size());
    std::printf("ground:      %s\n", g->IsGround() ? "yes" : "no");
    std::printf("simple:      %s\n", g->IsSimple() ? "yes" : "no");
    std::printf("lean:        %s\n",
                core.size() == g->size() ? "yes" : "no");
    std::printf("|closure|:   %zu\n", cl.size());
    std::printf("|core|:      %zu\n", core.size());
    std::printf("|nf|:        %zu\n", Core(cl).size());
  }
  return 0;
}

int CmdEntails(const char* graph_file, const char* goal_file) {
  Dictionary dict;
  Result<Graph> g = LoadGraph(graph_file, &dict);
  if (!g.ok()) return Fail(g.status().ToString());
  Result<Graph> goal = LoadGraph(goal_file, &dict);
  if (!goal.ok()) return Fail(goal.status().ToString());
  Result<Proof> proof = ProveEntailment(*g, *goal);
  if (!proof.ok()) {
    std::printf("NOT ENTAILED (%s)\n", proof.status().ToString().c_str());
    return 2;
  }
  Status check = CheckProof(*proof);
  std::printf("ENTAILED — proof with %zu steps, checker: %s\n",
              proof->steps.size(), check.ToString().c_str());
  return check.ok() ? 0 : 1;
}

int CmdQuery(const char* graph_file, const char* query_file, bool merge) {
  Dictionary dict;
  Database db(&dict);
  {
    Result<std::string> text = ReadFile(graph_file);
    if (!text.ok()) return Fail(text.status().ToString());
    Status s = db.InsertText(*text);
    if (!s.ok()) return Fail(s.ToString());
  }
  Result<std::string> query_text = ReadFile(query_file);
  if (!query_text.ok()) return Fail(query_text.status().ToString());
  Result<Query> query = ParseQuery(*query_text, &dict);
  if (!query.ok()) return Fail(query.status().ToString());
  Result<Graph> answer =
      merge ? db.AnswerMerge(*query) : db.AnswerUnion(*query);
  if (!answer.ok()) return Fail(answer.status().ToString());
  std::fputs(FormatGraph(*answer, dict).c_str(), stdout);
  return 0;
}

int CmdPaths(const char* graph_file, const char* expr, const char* start,
             bool over_closure) {
  Dictionary dict;
  Result<Graph> g = LoadGraph(graph_file, &dict);
  if (!g.ok()) return Fail(g.status().ToString());
  Result<PathExpr> path = ParsePathExpr(expr, &dict);
  if (!path.ok()) return Fail(path.status().ToString());
  Result<Term> source = ParseTerm(start, &dict);
  if (!source.ok()) return Fail(source.status().ToString());
  Graph data = over_closure ? RdfsClosure(*g) : *g;
  for (Term t : EvalPathFrom(data, *path, {*source})) {
    std::printf("%s\n", FormatTerm(t, dict).c_str());
  }
  return 0;
}

int CmdSparql(const char* graph_file, const char* query_file,
              bool over_closure) {
  Dictionary dict;
  Result<Graph> g = LoadGraph(graph_file, &dict);
  if (!g.ok()) return Fail(g.status().ToString());
  Result<std::string> text = ReadFile(query_file);
  if (!text.ok()) return Fail(text.status().ToString());
  Result<SparqlQuery> query = ParseSparql(*text, &dict);
  if (!query.ok()) return Fail(query.status().ToString());
  Graph data = over_closure ? RdfsClosure(*g) : *g;
  Result<MappingSet> rows = EvalSelect(data, query->pattern, query->select);
  if (!rows.ok()) return Fail(rows.status().ToString());
  for (const Mapping& row : *rows) {
    for (Term var : query->select) {
      std::printf("%s=%s\t", FormatTerm(var, dict).c_str(),
                  row.IsBound(var) ? FormatTerm(row.Apply(var), dict).c_str()
                                   : "");
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return Fail("usage: swdb_cli <closure|core|nf|lean|minimal|stats|"
                "entails|query|paths> <args...>  (see source header)");
  }
  const char* mode = argv[1];
  if (std::strcmp(mode, "closure") == 0 || std::strcmp(mode, "core") == 0 ||
      std::strcmp(mode, "nf") == 0 || std::strcmp(mode, "lean") == 0 ||
      std::strcmp(mode, "minimal") == 0 || std::strcmp(mode, "stats") == 0) {
    return CmdUnary(mode, argv[2]);
  }
  if (std::strcmp(mode, "entails") == 0) {
    if (argc < 4) return Fail("entails needs <graph-file> <goal-file>");
    return CmdEntails(argv[2], argv[3]);
  }
  if (std::strcmp(mode, "query") == 0) {
    if (argc < 4) return Fail("query needs <graph-file> <query-file>");
    bool merge = argc > 4 && std::strcmp(argv[4], "--merge") == 0;
    return CmdQuery(argv[2], argv[3], merge);
  }
  if (std::strcmp(mode, "sparql") == 0) {
    if (argc < 4) return Fail("sparql needs <graph-file> <sparql-file>");
    bool over_closure = argc > 4 && std::strcmp(argv[4], "--closure") == 0;
    return CmdSparql(argv[2], argv[3], over_closure);
  }
  if (std::strcmp(mode, "paths") == 0) {
    if (argc < 5) {
      return Fail("paths needs <graph-file> <path-expr> <start-node>");
    }
    bool over_closure = argc > 5 && std::strcmp(argv[5], "--closure") == 0;
    return CmdPaths(argv[2], argv[3], argv[4], over_closure);
  }
  return Fail(std::string("unknown mode: ") + mode);
}
