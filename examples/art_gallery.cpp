// The paper's Fig. 1 example: an RDF schema describing art resources,
// with schema and data at the same level. Demonstrates RDFS inference,
// machine-checkable proofs, and tableau queries with constraints.
//
//   $ ./examples/art_gallery

#include <cstdio>

#include "inference/closure.h"
#include "inference/proof.h"
#include "parser/text.h"
#include "query/answer.h"

namespace {

constexpr const char* kArtGraph = R"(
# --- Schema (Fig. 1 of the paper) ---
painter   sc artist .
sculptor  sc artist .
painting  sc artifact .
sculpture sc artifact .
paints    sp creates .
sculpts   sp creates .
paints    dom painter .
paints    range painting .
sculpts   dom sculptor .
sculpts   range sculpture .
creates   dom artist .
creates   range artifact .
exhibited dom artifact .
exhibited range museum .
# --- Data ---
Picasso    paints    Guernica .
Rodin      sculpts   TheThinker .
VanGogh    paints    StarryNight .
Guernica   exhibited ReinaSofia .
StarryNight exhibited MoMA .
_:flemish  paints    TheBattle .
TheBattle  exhibited Uffizi .
)";

}  // namespace

int main() {
  using namespace swdb;
  Dictionary dict;

  Result<Graph> parsed = ParseGraph(kArtGraph, &dict);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Graph art = *parsed;
  std::printf("art graph: %zu explicit triples\n", art.size());

  // RDFS inference: what does the schema add?
  Graph closure = RdfsClosure(art);
  std::printf("closure:   %zu triples after RDFS inference\n\n",
              closure.size());

  for (const char* fact : {"Picasso type artist .",
                           "Guernica type artifact .",
                           "Rodin creates TheThinker .",
                           "Picasso sculpts Guernica ."}) {
    Result<Graph> goal = ParseGraph(fact, &dict);
    bool entailed = RdfsEntails(art, *goal);
    std::printf("  %-32s %s\n", fact, entailed ? "ENTAILED" : "not entailed");
  }

  // A machine-checkable proof object (Def. 2.5 / Thm 2.10 witness).
  Result<Graph> goal = ParseGraph("VanGogh type artist .", &dict);
  Result<Proof> proof = ProveEntailment(art, *goal);
  if (proof.ok()) {
    Status check = CheckProof(*proof);
    std::printf(
        "\nproof of 'VanGogh type artist': %zu steps, checker says %s\n",
        proof->steps.size(), check.ToString().c_str());
  }

  // Query: all creators of exhibited artifacts, named artists only.
  Result<Query> query = ParseQuery(
      "head: ?A showsAt ?M .\n"
      "body: ?A creates ?W .\n"
      "body: ?W exhibited ?M .\n"
      "bind: ?A\n",
      &dict);
  QueryEvaluator evaluator(&dict);
  Result<Graph> answer = evaluator.AnswerUnion(*query, art);
  if (!answer.ok()) {
    std::printf("evaluation error: %s\n",
                answer.status().ToString().c_str());
    return 1;
  }
  std::printf("\n== artists with exhibited work (named only) ==\n%s",
              FormatGraph(*answer, dict).c_str());

  // Same query without the constraint also reveals the anonymous
  // Flemish painter.
  Result<Query> open_query = ParseQuery(
      "head: ?A showsAt ?M .\n"
      "body: ?A creates ?W .\n"
      "body: ?W exhibited ?M .\n",
      &dict);
  Result<Graph> open_answer = evaluator.AnswerUnion(*open_query, art);
  std::printf("\n== including anonymous artists ==\n%s",
              FormatGraph(*open_answer, dict).c_str());
  return 0;
}
