// Queries with premises (paper §4.2 and §5.4): hypothetical reasoning,
// the Ωq premise-elimination rewriting of Prop. 5.9, and containment of
// queries with premises.
//
//   $ ./examples/premise_queries

#include <cstdio>

#include "parser/text.h"
#include "query/answer.h"
#include "query/containment.h"
#include "query/premise.h"

int main() {
  using namespace swdb;
  Dictionary dict;

  // A little genealogy database. Note there is no triple linking "son"
  // to "relative" — the user supplies that hypothesis with the query.
  Result<Graph> db = ParseGraph(
      "paul  son     Peter .\n"
      "anna  daughter Peter .\n"
      "mark  relative Peter .\n",
      &dict);

  Result<Query> query = ParseQuery(
      "head: ?X relative Peter .\n"
      "body: ?X relative Peter .\n"
      "premise: son sp relative .\n"
      "premise: daughter sp relative .\n",
      &dict);
  if (!db.ok() || !query.ok()) {
    std::printf("setup error\n");
    return 1;
  }

  QueryEvaluator evaluator(&dict);
  Result<Graph> without = evaluator.AnswerUnion(
      [&] {
        Query q = *query;
        q.premise = Graph();
        return q;
      }(),
      *db);
  Result<Graph> with = evaluator.AnswerUnion(*query, *db);
  std::printf("== relatives of Peter, no hypothesis ==\n%s\n",
              FormatGraph(*without, dict).c_str());
  std::printf("== with premise {son ⊑sp relative, daughter ⊑sp relative} "
              "==\n%s\n",
              FormatGraph(*with, dict).c_str());

  // Premise elimination (Prop. 5.9): rewrite a premise query into a
  // union of premise-free ones. The example mirrors the paper's Ex. 5.10.
  Result<Query> ex510 = ParseQuery(
      "head: ?X p ?Y .\n"
      "body: ?X q ?Y .\n"
      "body: ?Y t s .\n"
      "premise: a t s .\n"
      "premise: b t s .\n",
      &dict);
  Result<std::vector<Query>> omega = EliminatePremise(*ex510);
  if (omega.ok()) {
    std::printf("== Ωq for the Ex. 5.10 query (%zu members) ==\n",
                omega->size());
    for (const Query& qm : *omega) {
      std::printf("%s---\n", FormatQuery(qm, dict).c_str());
    }
  }

  // Containment with premises (Thm 5.8): a query whose body can only be
  // satisfied through its premise still contains a fixed-head query.
  Query fixed;
  {
    Result<Graph> head = ParseGraph("peter isA person .", &dict);
    fixed.head = *head;
  }
  Result<Query> hypothetical = ParseQuery(
      "head: peter isA person .\n"
      "body: ?W t s .\n"
      "premise: w0 t s .\n",
      &dict);
  Result<bool> contained =
      ContainedStandardSimple(fixed, *hypothetical, &dict);
  std::printf("fixed-head ⊑p hypothetical query: %s\n",
              contained.ok() && *contained ? "yes" : "no");

  Query no_premise = *hypothetical;
  no_premise.premise = Graph();
  Result<bool> uncontained =
      ContainedStandardSimple(fixed, no_premise, &dict);
  std::printf("same, premise removed:            %s\n",
              uncontained.ok() && *uncontained ? "yes" : "no");
  return 0;
}
