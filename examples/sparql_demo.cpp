// SPARQL graph patterns over the abstract RDF model — the algebra the
// paper's authors later formalized for SPARQL (reference [34]),
// implemented on top of this library's matcher. Shows AND / OPTIONAL /
// UNION / FILTER, the OPTIONAL non-associativity pitfall, and
// RDFS-aware evaluation by querying the closure.
//
//   $ ./examples/sparql_demo

#include <cstdio>

#include "inference/closure.h"
#include "parser/text.h"
#include "sparql/sparql_parser.h"

namespace {

constexpr const char* kAddressBook = R"(
b1 name paul .
b2 name george .
b2 email georgeAtB3 .
b3 name ringo .
b3 email ringoAtM .
b3 web wwwRingo .
# a touch of schema for the RDFS part
email sp contact .
web   sp contact .
)";

}  // namespace

int main() {
  using namespace swdb;
  Dictionary dict;
  Result<Graph> parsed = ParseGraph(kAddressBook, &dict);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Graph db = *parsed;

  auto run = [&](const char* label, const char* text, const Graph& data) {
    Result<SparqlQuery> query = ParseSparql(text, &dict);
    if (!query.ok()) {
      std::printf("%s: %s\n", label, query.status().ToString().c_str());
      return;
    }
    Result<MappingSet> rows = EvalSelect(data, query->pattern,
                                         query->select);
    if (!rows.ok()) {
      std::printf("%s: %s\n", label, rows.status().ToString().c_str());
      return;
    }
    std::printf("== %s ==\n", label);
    for (const Mapping& row : *rows) {
      std::printf("  ");
      for (Term var : query->select) {
        std::printf("%s=%s  ", FormatTerm(var, dict).c_str(),
                    row.IsBound(var)
                        ? FormatTerm(row.Apply(var), dict).c_str()
                        : "∅");
      }
      std::printf("\n");
    }
  };

  run("names with optional email",
      "SELECT ?N ?E WHERE { ?X name ?N . OPTIONAL { ?X email ?E . } }",
      db);

  run("email or web page",
      "SELECT ?X WHERE { { ?X email ?E . } UNION { ?X web ?W . } }", db);

  run("filter: the email-less",
      "SELECT ?N WHERE { ?X name ?N . OPTIONAL { ?X email ?E . } "
      "FILTER ( !bound(?E) ) }",
      db);

  run("filter: everyone but george",
      "SELECT ?N WHERE { ?X name ?N . FILTER ( ?N != george ) }", db);

  // The [34] non-associativity pitfall, §OPT: grouping changes answers.
  run("left-grouped OPT",
      "SELECT * WHERE { { ?X name paul . OPTIONAL { ?Y name george . } } "
      "OPTIONAL { ?X email ?Z . } }",
      db);
  run("right-grouped OPT",
      "SELECT * WHERE { ?X name paul . "
      "OPTIONAL { ?Y name george . OPTIONAL { ?X email ?Z . } } }",
      db);

  // RDFS-aware: 'contact' has no explicit triples, but the closure
  // lifts email/web through sp.
  run("contacts, raw graph",
      "SELECT ?X ?C WHERE { ?X contact ?C . }", db);
  run("contacts, over RDFS-cl(G)",
      "SELECT ?X ?C WHERE { ?X contact ?C . }", RdfsClosure(db));
  return 0;
}
