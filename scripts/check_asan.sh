#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UndefinedBehaviorSanitizer in a
# separate build directory and runs the full test suite under it. The
# matcher's trail/pointer machinery is the main customer.
#
# Usage: scripts/check_asan.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"

cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=address,undefined
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j

echo "asan/ubsan: all tests passed"
