#!/usr/bin/env bash
# Builds and runs the snapshot-publication benchmark (E18) and writes
# the results to BENCH_publish.json at the repo root.
#
# Usage: scripts/bench_publish.sh [build-dir] [extra benchmark args...]
# The acceptance check of this PR reads PublishCowCopy/1000000 vs
# PublishFullCopyBaseline/1000000: the COW copy must be >= 10x cheaper.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_publish

"$build_dir/bench/bench_publish" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  "$@" > "$repo_root/BENCH_publish.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_publish.json"
echo "wrote $repo_root/BENCH_publish.json"
