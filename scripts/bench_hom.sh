#!/usr/bin/env bash
# Builds and runs the homomorphism-kernel benchmark (E13) and writes the
# results to BENCH_hom.json at the repo root.
#
# Usage: scripts/bench_hom.sh [build-dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_hom

"$build_dir/bench/bench_hom" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  "$@" > "$repo_root/BENCH_hom.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_hom.json"
echo "wrote $repo_root/BENCH_hom.json"
