#!/usr/bin/env python3
"""Annotate a Google-Benchmark JSON file with host context, in place.

Adds to the "context" header: the CPU model string, the core count, and
the effective worker-thread setting (SWDB_THREADS), so BENCH_*.json runs
are comparable across machines.

Usage: bench_context.py FILE.json
"""
import json
import os
import sys


def cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return "unknown"


def main() -> int:
    path = sys.argv[1]
    with open(path) as f:
        doc = json.load(f)
    ctx = doc.setdefault("context", {})
    ctx["cpu_model"] = cpu_model()
    ctx["num_cores"] = os.cpu_count() or 0
    ctx["swdb_threads"] = os.environ.get("SWDB_THREADS", "")
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
