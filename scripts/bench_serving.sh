#!/usr/bin/env bash
# Builds and runs the end-to-end serving benchmark (E21) and writes the
# results to BENCH_serving.json at the repo root.
#
# Usage: scripts/bench_serving.sh [build-dir] [extra bench_serving args...]
#
# The default run sweeps reader counts 1, 4, 8 against one writer on a
# 1M-triple sp2b corpus (QPS + p50/p95/p99 latency + snapshot lag per
# count) and finishes with a checked run at 100k triples that
# cross-validates a 25% sample of served answers against from-scratch
# evaluation on the same snapshot. The binary exits nonzero on any
# mismatch or error, which fails this script — the JSON is only
# published when every sampled answer agreed with its referee.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_serving

"$build_dir/bench/bench_serving" "$@" > "$repo_root/BENCH_serving.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_serving.json"
echo "wrote $repo_root/BENCH_serving.json"
