#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer in a separate build directory and
# runs the concurrency-sensitive suites: the thread pool + parallel
# matcher/closure tests and the Database snapshot stress tests.
#
# Usage: scripts/check_tsan.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=thread
cmake --build "$build_dir" -j --target parallel_test concurrency_test
ctest --test-dir "$build_dir" --output-on-failure -R '^(parallel|concurrency)_test$'

echo "tsan: concurrency suites passed"
