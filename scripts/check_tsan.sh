#!/usr/bin/env bash
# Builds the tree with ThreadSanitizer in a separate build directory and
# runs the concurrency-sensitive suites: the thread pool + parallel
# matcher/closure tests, the parallel core/nf engine parity tests, the
# Database snapshot stress tests (including racing normalized() readers
# against the call_once core build, and readers answering through the
# shared view cache while the writer delta-patches it), the
# sharded-dictionary tests (concurrent interning, lock-free Name()
# readers, fresh-blank races), the view-cache suite (parallel
# union-query fan-out over the materialized view layer), the batch
# suite (trie root subtrees fanned over the pool while the calling
# thread runs the minting jobs), and the serving suite (the closed-loop
# traffic driver: N checked readers pinning snapshots against one
# writer applying generator mutation batches).
#
# check_asan.sh needs no such list — it runs the full ctest suite, so
# serving_test is covered there automatically.
#
# Usage: scripts/check_tsan.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-tsan}"

# Worker-pool width for the parity sweeps. Exported (not just assigned)
# so it reaches the test processes ctest spawns; default 4 keeps the
# pool tests meaningful on any host.
export SWDB_THREADS="${SWDB_THREADS:-4}"

cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=thread
cmake --build "$build_dir" -j --target parallel_test concurrency_test \
  core_parallel_test view_cache_test batch_test serving_test
ctest --test-dir "$build_dir" --output-on-failure \
  -R '^(parallel|concurrency|core_parallel|view_cache|batch|serving)_test$'

echo "tsan: concurrency suites passed (SWDB_THREADS=$SWDB_THREADS)"
