#!/usr/bin/env bash
# Builds and runs the columnar-storage / vectorized-scan benchmark (E17)
# and writes the results to BENCH_scan.json at the repo root.
#
# Usage: scripts/bench_scan.sh [build-dir] [extra benchmark args...]
# The SIMD kernels are on by default; pass a dedicated build dir and
# -DSWDB_SIMD=OFF through cmake yourself for a scalar-build comparison
# (the in-binary *Scalar series already isolates the kernel ablation).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_scan

"$build_dir/bench/bench_scan" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  "$@" > "$repo_root/BENCH_scan.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_scan.json"
echo "wrote $repo_root/BENCH_scan.json"
