#!/usr/bin/env bash
# Builds and runs the materialized-view benchmark (E19) and writes the
# results to BENCH_views.json at the repo root.
#
# Usage: scripts/bench_views.sh [build-dir] [extra benchmark args...]
# The acceptance checks of this PR read, at N = 100k:
#   RepeatedShapeWarm vs RepeatedShapeUncached  (warm must be >= 10x faster)
#   InsertThenQueryPatched vs InsertThenQueryRecompute (patched must win)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_views

"$build_dir/bench/bench_views" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  "$@" > "$repo_root/BENCH_views.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_views.json"
echo "wrote $repo_root/BENCH_views.json"
