#!/usr/bin/env bash
# Builds and runs the batched multi-query evaluation benchmark (E20)
# and writes the results to BENCH_batch.json at the repo root.
#
# Usage: scripts/bench_batch.sh [build-dir] [extra benchmark args...]
# The acceptance checks of this PR read, at N = 100k on the 64-query
# overlapping mix:
#   BatchedSingleThread vs SequentialReplay  (batched must be >= 1.5x)
#   BatchedPooled/8 vs SequentialReplay      (>= 3x; like E15, only
#     meaningful on >= 8 cores — bench_context.py stamps the host's
#     core count into the JSON so the check knows when to skip)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_batch

"$build_dir/bench/bench_batch" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  "$@" > "$repo_root/BENCH_batch.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_batch.json"
echo "wrote $repo_root/BENCH_batch.json"
