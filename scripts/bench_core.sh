#!/usr/bin/env bash
# Builds and runs the core/nf benchmark (E4 + E16), writes the results
# to BENCH_core.json at the repo root, and prints the E16 strong-scaling
# table (speedup of t workers over the sequential engine; the parallel
# core is bit-identical at every t, so this is pure wall-clock). The
# acceptance bar is >= 3x at 8 threads on the lean-gadget series; it is
# checked only when the host has >= 8 cores — strong scaling cannot be
# expressed on fewer (the JSON header records the core count either
# way).
#
# Usage: scripts/bench_core.sh [build-dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_core

"$build_dir/bench/bench_core" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 \
  "$@" > "$repo_root/BENCH_core.json"

python3 "$repo_root/scripts/bench_context.py" "$repo_root/BENCH_core.json"
echo "wrote $repo_root/BENCH_core.json"

python3 - "$repo_root/BENCH_core.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
results = {b["name"]: b for b in doc["benchmarks"]}
cores = doc.get("context", {}).get("num_cores", 0)

def scaling(prefix, label):
    rows = {}
    for name, b in results.items():
        if name.startswith(prefix + "/"):
            t = int(name.split("/")[1])
            rows[t] = b["real_time"]
    if 1 not in rows:
        return None
    print(f"\n{label} (speedup over sequential):")
    for t in sorted(rows):
        print(f"  t={t:<3} {rows[1] / rows[t]:6.2f}x")
    return {t: rows[1] / rows[t] for t in rows}

lean = scaling("BM_CoreLeanGadgets", "lean-gadget core (all components refuted)")
nf = scaling("BM_NormalFormLeanGadgets", "nf(D) = core(cl(D)) end to end")
scaling("BM_CoreFoldingChain", "folding chain (sequential winner, no speedup expected)")

print(f"\nhost cores: {cores}")
if cores < 8:
    print("acceptance (>=3x at 8 threads): SKIPPED — fewer than 8 cores; "
          "strong scaling is not expressible on this host")
    sys.exit(0)
ok = True
for label, table in (("lean-gadget core", lean), ("normal form", nf)):
    ratio = (table or {}).get(8, 0.0)
    status = "PASS" if ratio >= 3.0 else "FAIL"
    ok = ok and ratio >= 3.0
    print(f"acceptance ({label}, t=8): {ratio:.2f}x >= 3x ... {status}")
sys.exit(0 if ok else 1)
EOF
