#!/usr/bin/env bash
# Builds and runs the incremental-maintenance benchmark (E14), writes the
# results to BENCH_incremental.json at the repo root, and prints the
# delta-vs-full per-update speedups (the acceptance bar is ≥10× on the
# single-triple-insert series at the largest graph size).
#
# Usage: scripts/bench_incremental.sh [build-dir] [extra benchmark args...]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

# Benchmarks must never run instrumented: pin SWDB_SANITIZE=OFF so a
# stale sanitized cache in the build dir cannot leak into the numbers.
cmake -B "$build_dir" -S "$repo_root" -DSWDB_SANITIZE=OFF >/dev/null
cmake --build "$build_dir" -j --target bench_incremental

"$build_dir/bench/bench_incremental" \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  "$@" > "$repo_root/BENCH_incremental.json"

python3 "$repo_root/scripts/bench_context.py" \
  "$repo_root/BENCH_incremental.json"
echo "wrote $repo_root/BENCH_incremental.json"

python3 - "$repo_root/BENCH_incremental.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    results = {b["name"]: b for b in json.load(f)["benchmarks"]}

def speedups(full_prefix, fast_prefix, label):
    print(f"\n{label} (per-update speedup, full / incremental):")
    pairs = []
    for name, b in results.items():
        if name.startswith(full_prefix + "/"):
            n = name.split("/")[1]
            fast = results.get(f"{fast_prefix}/{n}")
            if fast:
                pairs.append((int(n), b["real_time"] / fast["real_time"]))
    for n, ratio in sorted(pairs):
        print(f"  n={n:<6} {ratio:8.1f}x")
    return sorted(pairs)

ins = speedups("BM_InsertSeriesFull", "BM_InsertSeriesDelta", "insert series")
speedups("BM_EraseSeriesFull", "BM_EraseSeriesDRed", "erase series")
speedups("BM_IndexRebuildInsert", "BM_IndexPatchInsert", "index maintenance")

largest_n, largest_ratio = ins[-1]
status = "PASS" if largest_ratio >= 10.0 else "FAIL"
print(f"\nacceptance (insert series, n={largest_n}): "
      f"{largest_ratio:.1f}x >= 10x ... {status}")
sys.exit(0 if largest_ratio >= 10.0 else 1)
EOF
