// Batched multi-query evaluation (query/batch.h): PreAnswerBatch must
// be slot for slot bit-identical to calling PreAnswer sequentially —
// same answers, same order, same minted blank ids, same BatchStats —
// at every worker count, across random overlapping workloads and the
// adversarial shapes (no overlap, all identical, premise slots,
// head-blank slots, invalid slots, empty batches).

#include "query/batch.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "query/database.h"
#include "query/query.h"
#include "query/union_query.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "testutil.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

using swdb::testing::Q;

// Worker counts the parity sweeps cover; 0 means no pool configured.
constexpr int kWorkerCounts[] = {0, 1, 2, 4, 8};

// Deterministically rebuilds one seed's workload into a fresh
// dictionary: twin dictionaries fed the same seed intern the same terms
// in the same order, so graphs and answers are comparable bit for bit
// across independent Database instances.
struct Workload {
  Graph data;
  std::vector<Query> queries;
};

Workload BuildWorkload(uint64_t seed, Dictionary* dict) {
  Rng rng(seed * 7919 + 13);
  Workload w;
  RandomGraphSpec gspec;
  gspec.num_nodes = 24;
  gspec.num_triples = 70;
  gspec.num_predicates = 5;
  gspec.blank_ratio = 0.2;
  w.data = RandomSimpleGraph(gspec, dict, &rng);
  QueryMixSpec qspec;
  qspec.num_families = 4;
  qspec.queries_per_family = 5;
  qspec.prefix_size = 2;
  qspec.suffix_size = 1;
  qspec.isomorphic_fraction = 0.3;
  w.queries = OverlappingQueryMix(w.data, qspec, dict, &rng);
  // Shapes the generator never emits: head-blank Skolemization (twice —
  // the identical respelling must dedupe), a premise-bearing slot, and
  // a constraint-filtered shape.
  w.queries.push_back(Q(dict,
                        "head: ?X madeOf _:stuff .\n"
                        "body: ?X urn:p0 ?Y .\n"));
  w.queries.push_back(Q(dict,
                        "head: ?X madeOf _:stuff .\n"
                        "body: ?X urn:p0 ?Y .\n"));
  w.queries.push_back(Q(dict,
                        "head: ?X rel ?Y .\n"
                        "body: ?X kin ?Y .\n"
                        "premise: urn:p1 sp kin .\n"));
  w.queries.push_back(Q(dict,
                        "head: ?X seen ?Y .\n"
                        "body: ?X urn:p1 ?Y .\n"
                        "bind: ?Y\n"));
  return w;
}

// One batched run at the given worker count, on its own twin
// dictionary/database. Returns the per-slot results, the BatchStats,
// and a dictionary end-state probe (the bits of the next fresh blank —
// equal probes mean the runs minted the same number of blanks).
struct BatchRun {
  std::vector<Result<std::vector<Graph>>> results;
  BatchStats stats;
  uint32_t next_blank_bits = 0;
};

BatchRun RunBatched(uint64_t seed, int workers) {
  Dictionary dict;
  std::optional<ThreadPool> pool;
  EvalOptions options;
  if (workers > 0) {
    pool.emplace(workers);
    options.match.pool = &*pool;
  }
  Database db(&dict, options);
  Workload w = BuildWorkload(seed, &dict);
  db.InsertGraph(w.data);
  BatchRun run;
  run.results = db.PreAnswerBatch(w.queries, &run.stats);
  run.next_blank_bits = dict.FreshBlank().bits();
  return run;
}

TEST(BatchParity, MatchesSequentialAtEveryWorkerCountFuzz) {
  constexpr uint64_t kSeeds = 20;
  uint64_t total_trie_groups = 0;
  uint64_t total_prefix_hits = 0;
  uint64_t total_shared_reused = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    // Reference: the same workload answered by sequential PreAnswer
    // calls on a twin database.
    Dictionary dict_seq;
    Database seq(&dict_seq, EvalOptions{});
    Workload w = BuildWorkload(seed, &dict_seq);
    seq.InsertGraph(w.data);
    std::vector<Result<std::vector<Graph>>> expected;
    for (const Query& q : w.queries) expected.push_back(seq.PreAnswer(q));
    const uint32_t expected_blank = dict_seq.FreshBlank().bits();

    std::optional<BatchStats> stats0;
    for (int workers : kWorkerCounts) {
      BatchRun run = RunBatched(seed, workers);
      ASSERT_EQ(run.results.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(run.results[i].ok(), expected[i].ok())
            << "seed " << seed << " workers " << workers << " slot " << i;
        if (expected[i].ok()) {
          ASSERT_EQ(*run.results[i], *expected[i])
              << "seed " << seed << " workers " << workers << " slot " << i;
        }
      }
      // Same Skolem mints ⇒ same dictionary end state.
      EXPECT_EQ(run.next_blank_bits, expected_blank)
          << "seed " << seed << " workers " << workers;
      // BatchStats are structural: identical at every worker count.
      if (!stats0) {
        stats0 = run.stats;
      } else {
        EXPECT_TRUE(run.stats == *stats0)
            << "seed " << seed << " workers " << workers;
      }
      EXPECT_EQ(run.stats.queries, w.queries.size());
      EXPECT_EQ(run.stats.premise_fallthroughs, 1u);
      EXPECT_GE(run.stats.deduped, 1u);  // the repeated head-blank slot
      if (workers == 0) {
        total_trie_groups += run.stats.trie_groups;
        total_prefix_hits += run.stats.prefix_hits;
        total_shared_reused += run.stats.shared_bindings_reused;
      }
    }
  }
  // The fuzz must actually drive the tentpole path: across the seeds,
  // overlapping families have to land groups in shared trie subtrees
  // and fan shared prefix bindings into suffix matchers.
  EXPECT_GT(total_trie_groups, 0u);
  EXPECT_GT(total_prefix_hits, 0u);
  EXPECT_GT(total_shared_reused, 0u);
}

TEST(BatchParity, AllIdenticalBatchAnswersOnce) {
  const std::string text = "a p b .\nb p c .\nc p d .\na q c .\n";
  Dictionary dict_seq;
  Database seq(&dict_seq, EvalOptions{});
  ASSERT_TRUE(seq.InsertText(text).ok());
  auto make = [](Dictionary* d) {
    return Q(d,
             "head: ?X r ?Z .\n"
             "body: ?X p ?Y .\nbody: ?Y p ?Z .\n");
  };
  Result<std::vector<Graph>> one = seq.PreAnswer(make(&dict_seq));
  ASSERT_TRUE(one.ok());

  Dictionary dict;
  Database db(&dict, EvalOptions{});
  ASSERT_TRUE(db.InsertText(text).ok());
  std::vector<Query> batch(8, make(&dict));
  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> results =
      db.PreAnswerBatch(batch, &stats);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, *one);
  }
  EXPECT_EQ(stats.deduped, 7u);
  // One group, alone in the trie: no shared prefix to split on.
  EXPECT_EQ(stats.trie_groups, 0u);
  EXPECT_EQ(stats.solo_groups, 1u);
  EXPECT_EQ(db.CollectStats().batch_deduped, 7u);
}

TEST(BatchParity, NoOverlapBatchFallsBackToSoloPlans) {
  const std::string text =
      "a p1 b .\nb p2 c .\nc p3 d .\nd p4 e .\ne p5 a .\n";
  Dictionary dict_seq;
  Database seq(&dict_seq, EvalOptions{});
  ASSERT_TRUE(seq.InsertText(text).ok());
  auto make = [](Dictionary* d) {
    std::vector<Query> qs;
    qs.push_back(Q(d, "head: ?X r1 ?Y .\nbody: ?X p1 ?Y .\n"));
    qs.push_back(Q(d, "head: ?X r2 ?Y .\nbody: ?X p2 ?Y .\n"));
    qs.push_back(Q(d,
                   "head: ?X r3 ?Z .\n"
                   "body: ?X p3 ?Y .\nbody: ?Y p4 ?Z .\n"));
    qs.push_back(Q(d, "head: ?X r5 ?Y .\nbody: ?X p5 ?Y .\n"));
    return qs;
  };
  std::vector<Result<std::vector<Graph>>> expected;
  for (const Query& q : make(&dict_seq)) expected.push_back(seq.PreAnswer(q));

  Dictionary dict;
  Database db(&dict, EvalOptions{});
  ASSERT_TRUE(db.InsertText(text).ok());
  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> results =
      db.PreAnswerBatch(make(&dict), &stats);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(*results[i], *expected[i]) << i;
  }
  // Nothing shares: every group runs its own full matcher, exactly the
  // sequential plan.
  EXPECT_EQ(stats.deduped, 0u);
  EXPECT_EQ(stats.trie_groups, 0u);
  EXPECT_EQ(stats.solo_groups, 4u);
  EXPECT_EQ(stats.shared_bindings_reused, 0u);
}

TEST(BatchParity, EmptyBatchAndInvalidSlots) {
  Dictionary dict;
  Database db(&dict, EvalOptions{});
  ASSERT_TRUE(db.InsertText("a p b .\n").ok());
  BatchStats stats;
  EXPECT_TRUE(db.PreAnswerBatch({}, &stats).empty());
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_TRUE(stats == BatchStats{});

  // An unsafe slot (head variable not in the body) errors alone; its
  // status matches the sequential call's, and neighbors are unaffected.
  Query bad;
  bad.head = swdb::testing::G(&dict, "?X r ?Y .");
  bad.body = swdb::testing::G(&dict, "?X p ?Z .");
  Query good = Q(&dict, "head: ?X r ?Y .\nbody: ?X p ?Y .\n");
  Result<std::vector<Graph>> bad_seq = db.PreAnswer(bad);
  Result<std::vector<Graph>> good_seq = db.PreAnswer(good);
  ASSERT_FALSE(bad_seq.ok());
  ASSERT_TRUE(good_seq.ok());
  std::vector<Result<std::vector<Graph>>> results =
      db.PreAnswerBatch({bad, good}, &stats);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status().code(), bad_seq.status().code());
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(*results[1], *good_seq);
  EXPECT_EQ(stats.queries, 2u);
}

TEST(BatchParity, SnapshotBatchMatchesSequentialAndHitsViews) {
  EvalOptions eager;
  eager.views.promote_after = 1;
  const std::string text = "a p b .\nb p c .\nc q d .\nb q d .\n";
  auto make = [](Dictionary* d) {
    std::vector<Query> qs;
    qs.push_back(Q(d,
                   "head: ?X r ?Z .\n"
                   "body: ?X p ?Y .\nbody: ?Y q ?Z .\n"));
    // Isomorphic respelling of the first: same group.
    qs.push_back(Q(d,
                   "head: ?U r ?W .\n"
                   "body: ?U p ?V .\nbody: ?V q ?W .\n"));
    qs.push_back(Q(d, "head: ?X s ?Y .\nbody: ?X q ?Y .\n"));
    return qs;
  };

  Dictionary dict_seq;
  Database seq(&dict_seq, eager);
  ASSERT_TRUE(seq.InsertText(text).ok());
  auto snap_seq = seq.Snapshot();
  std::vector<Result<std::vector<Graph>>> expected;
  for (const Query& q : make(&dict_seq)) {
    expected.push_back(snap_seq->PreAnswer(q));
  }

  Dictionary dict;
  Database db(&dict, eager);
  ASSERT_TRUE(db.InsertText(text).ok());
  auto snap = db.Snapshot();
  std::vector<Query> queries = make(&dict);
  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> results =
      snap->PreAnswerBatch(queries, &stats);
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    ASSERT_TRUE(expected[i].ok());
    EXPECT_EQ(*results[i], *expected[i]) << i;
  }
  EXPECT_EQ(stats.deduped, 1u);
  EXPECT_EQ(stats.view_hits, 0u);  // cold cache on the first batch

  // The eager advisor materialized both shapes on the miss pass, so a
  // fresh snapshot's re-ask is served entirely from the cache (the
  // pipeline probes views before building nf, so this batch skips even
  // the lazy normalized-graph build).
  auto snap2 = db.Snapshot();
  BatchStats stats2;
  std::vector<Result<std::vector<Graph>>> again =
      snap2->PreAnswerBatch(queries, &stats2);
  ASSERT_EQ(again.size(), results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(*again[i], *results[i]) << i;
  }
  EXPECT_EQ(stats2.view_hits, 2u);  // every group, one per shape
  EXPECT_EQ(stats2.trie_nodes, 0u);
  EXPECT_EQ(stats2.solo_groups + stats2.trie_groups, 0u);
}

TEST(BatchParity, BudgetExhaustionPoisonsOnlyTheExhaustedGroups) {
  // A dense two-hop workload under a tiny step budget: the batched path
  // must report the same per-slot LimitExceeded the sequential path
  // does, and slots of cheap disjoint shapes stay healthy.
  Dictionary dict;
  EvalOptions options;
  options.match.max_steps = 40;
  Database db(&dict, options);
  Graph data;
  Term p = dict.Iri("p");
  for (int i = 0; i < 14; ++i) {
    for (int j = 0; j < 14; ++j) {
      data.Insert(dict.Iri("n" + std::to_string(i)), p,
                  dict.Iri("n" + std::to_string(j)));
    }
  }
  data.Insert(dict.Iri("lone"), dict.Iri("q"), dict.Iri("peak"));
  db.InsertGraph(data);

  std::vector<Query> batch;
  batch.push_back(Q(&dict,
                    "head: ?X r ?Z .\n"
                    "body: ?X p ?Y .\nbody: ?Y p ?Z .\n"));
  batch.push_back(Q(&dict,
                    "head: ?X r2 ?W .\n"
                    "body: ?X p ?Y .\nbody: ?Y p ?W .\nbody: ?W p ?X .\n"));
  batch.push_back(Q(&dict, "head: ?X slim ?Y .\nbody: ?X q ?Y .\n"));

  std::vector<Result<std::vector<Graph>>> expected;
  for (const Query& q : batch) expected.push_back(db.PreAnswer(q));
  ASSERT_FALSE(expected[0].ok());
  ASSERT_FALSE(expected[1].ok());
  ASSERT_TRUE(expected[2].ok());

  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> results =
      db.PreAnswerBatch(batch, &stats);
  EXPECT_EQ(results[0].status().code(), StatusCode::kLimitExceeded);
  EXPECT_EQ(results[1].status().code(), StatusCode::kLimitExceeded);
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(*results[2], *expected[2]);
  EXPECT_EQ(stats.limit_exceeded, 2u);
}

TEST(BatchParity, BudgetExhaustionMidTriePoisonsTerminalSharers) {
  // Exhaustion *inside* the shared-prefix walk, below the root level.
  // The 2-hop query's whole body lies on the shared prefix, so it is a
  // trie terminal and never spends a single group step — the only way
  // it can fail is the subtree's shared step pot overflowing mid-walk
  // and poisoning every sharer. The 3-hop query shares the expensive
  // [e, p] prefix and differs only in its residual suffix.
  Dictionary dict;
  EvalOptions options;
  options.match.max_steps = 300;
  Database db(&dict, options);
  Graph data;
  const Term e = dict.Iri("e");
  const Term p = dict.Iri("p");
  const Term t = dict.Iri("t");
  // |e| = 5 < |p| = 500 < |t| = 600: the static most-constrained-first
  // order puts e then p in front for both queries, aligning their trie
  // prefixes; enumerating that prefix alone costs 505 > 300 steps.
  for (int i = 0; i < 5; ++i) {
    const Term x = dict.Iri("x" + std::to_string(i));
    const Term y = dict.Iri("y" + std::to_string(i));
    data.Insert(x, e, y);
    for (int j = 0; j < 100; ++j) {
      data.Insert(y, p,
                  dict.Iri("z" + std::to_string(i) + "_" + std::to_string(j)));
    }
  }
  // Bulk t-triples over nodes disjoint from every z: heavy enough to
  // sort after p, yet the residual probe Matches(z, t, *) is empty, so
  // the 3-hop group's own budget survives until the pot blows.
  for (int k = 0; k < 600; ++k) {
    const Term w = dict.Iri("w" + std::to_string(k));
    data.Insert(w, t, w);
  }
  data.Insert(dict.Iri("lone"), dict.Iri("q"), dict.Iri("peak"));
  db.InsertGraph(data);

  std::vector<Query> batch;
  batch.push_back(Q(&dict,
                    "head: ?X r ?Z .\n"
                    "body: ?X e ?Y .\nbody: ?Y p ?Z .\n"));
  batch.push_back(Q(&dict,
                    "head: ?X r2 ?W .\n"
                    "body: ?X e ?Y .\nbody: ?Y p ?Z .\nbody: ?Z t ?W .\n"));
  batch.push_back(Q(&dict, "head: ?X slim ?Y .\nbody: ?X q ?Y .\n"));

  std::vector<Result<std::vector<Graph>>> expected;
  for (const Query& q : batch) expected.push_back(db.PreAnswer(q));
  ASSERT_FALSE(expected[0].ok());
  ASSERT_FALSE(expected[1].ok());
  ASSERT_TRUE(expected[2].ok());

  BatchStats stats;
  std::vector<Result<std::vector<Graph>>> results =
      db.PreAnswerBatch(batch, &stats);
  EXPECT_EQ(results[0].status().code(), StatusCode::kLimitExceeded);
  EXPECT_EQ(results[1].status().code(), StatusCode::kLimitExceeded);
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(*results[2], *expected[2]);
  EXPECT_EQ(stats.limit_exceeded, 2u);
  // Both hop queries went through the trie (no solo handoff for them),
  // and the walk got well past the 5 root-level e-candidates before the
  // pot blew — exhaustion happened in a nested Extend, not at the root.
  EXPECT_EQ(stats.trie_groups, 2u);
  EXPECT_GT(stats.prefix_hits, 50u);
}

TEST(UnionDedupe, IsomorphicBranchesEvaluateOnce) {
  const std::string text = "a p b .\nb p c .\nc q d .\nx type a .\n";
  auto build = [](Dictionary* d) {
    UnionQuery u;
    u.branches.push_back(Q(d,
                           "head: ?X r ?Z .\n"
                           "body: ?X p ?Y .\nbody: ?Y q ?Z .\n"));
    u.branches.push_back(Q(d, "head: ?X t ?Y .\nbody: ?X type ?Y .\n"));
    // Respelling of branch 0: dedupes onto it.
    u.branches.push_back(Q(d,
                           "head: ?A r ?C .\n"
                           "body: ?A p ?B .\nbody: ?B q ?C .\n"));
    // Identical head-blank branches: exact-spelling dedupe.
    u.branches.push_back(Q(d,
                           "head: ?X has _:thing .\n"
                           "body: ?X type ?Y .\n"));
    u.branches.push_back(Q(d,
                           "head: ?X has _:thing .\n"
                           "body: ?X type ?Y .\n"));
    return u;
  };

  // Expected: the branch pre-answers evaluated one by one on a twin,
  // concatenated in branch order, sorted, deduplicated — the definition
  // the union path implements.
  Dictionary dict_seq;
  Database seq(&dict_seq, EvalOptions{});
  ASSERT_TRUE(seq.InsertText(text).ok());
  std::vector<Graph> all;
  for (const Query& branch : build(&dict_seq).branches) {
    Result<std::vector<Graph>> part = seq.PreAnswer(branch);
    ASSERT_TRUE(part.ok());
    all.insert(all.end(), part->begin(), part->end());
  }
  std::sort(all.begin(), all.end(), [](const Graph& a, const Graph& b) {
    return a.triples() < b.triples();
  });
  all.erase(std::unique(all.begin(), all.end()), all.end());

  Dictionary dict;
  Database db(&dict, EvalOptions{});
  ASSERT_TRUE(db.InsertText(text).ok());
  Result<std::vector<Graph>> deduped = db.PreAnswer(build(&dict));
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(*deduped, all);
  EXPECT_EQ(db.CollectStats().union_branches_deduped, 2u);

  // The evaluator-level free function dedupes the same way.
  Dictionary dict_free;
  Graph data = swdb::testing::Data(&dict_free, text);
  QueryEvaluator eval(&dict_free);
  Result<std::vector<Graph>> free_fn =
      PreAnswerUnionQuery(&eval, build(&dict_free), data);
  ASSERT_TRUE(free_fn.ok());
  EXPECT_EQ(*free_fn, all);
}

}  // namespace
}  // namespace swdb
