// End-to-end serving harness tests: deterministic replay of the
// single-threaded driver, checked-mode (full cross-validation)
// threaded runs, Prop. 5.9 premise elimination as served vs. direct
// evaluation, and workload template well-formedness.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gen/sp2b.h"
#include "query/database.h"
#include "serve/driver.h"
#include "serve/workload.h"
#include "util/rng.h"

namespace swdb {
namespace {

struct Rig {
  std::unique_ptr<Dictionary> dict;
  std::unique_ptr<Sp2bGenerator> gen;
  std::unique_ptr<Database> db;
  std::unique_ptr<WorkloadMix> mix;
};

Rig MakeRig(uint64_t triples, uint64_t seed,
            double blank_author_fraction = 0.0) {
  Rig rig;
  rig.dict = std::make_unique<Dictionary>();
  Sp2bSpec spec;
  spec.target_triples = triples;
  spec.seed = seed;
  spec.blank_author_fraction = blank_author_fraction;
  rig.gen = std::make_unique<Sp2bGenerator>(spec, rig.dict.get());
  rig.db = std::make_unique<Database>(rig.dict.get());
  rig.db->InsertGraph(rig.gen->GenerateCorpus());
  rig.mix = std::make_unique<WorkloadMix>(*rig.gen, rig.dict.get());
  return rig;
}

// Satellite 1a: same seed + single-threaded driver, run twice against
// freshly built databases → identical per-op digest streams and
// identical structural stats.
TEST(ServingTest, SingleThreadedReplayIsDeterministic) {
  auto run = [](std::vector<uint64_t>* digests) {
    Rig rig = MakeRig(4000, 7);
    DriverOptions opts;
    opts.ops_per_reader = 300;
    opts.seed = 42;
    opts.check_fraction = 0.15;
    opts.writer = true;
    opts.writer_every = 50;
    opts.writer_batch_triples = 40;
    TrafficDriver driver(rig.db.get(), rig.gen.get(), rig.mix.get(), opts);
    return driver.RunSingleThreaded(digests);
  };
  std::vector<uint64_t> digests1, digests2;
  const DriverReport r1 = run(&digests1);
  const DriverReport r2 = run(&digests2);

  EXPECT_EQ(digests1, digests2);
  EXPECT_EQ(r1.answer_digest, r2.answer_digest);
  EXPECT_EQ(r1.ops, r2.ops);
  EXPECT_EQ(r1.answers, r2.answers);
  EXPECT_EQ(r1.checks, r2.checks);
  EXPECT_EQ(r1.template_ops, r2.template_ops);
  EXPECT_EQ(r1.writer_batches, r2.writer_batches);
  EXPECT_EQ(r1.writer_inserts, r2.writer_inserts);
  EXPECT_EQ(r1.writer_erases, r2.writer_erases);

  EXPECT_EQ(r1.ops, 300u);
  EXPECT_GT(r1.answers, 0u);
  EXPECT_GT(r1.checks, 0u);
  EXPECT_GT(r1.writer_batches, 0u);
  EXPECT_EQ(r1.errors, 0u);
  EXPECT_EQ(r1.mismatches, 0u);
}

// Satellite 1b: 4 readers + 1 writer, cross-validation fraction 1.0 —
// every served answer equals a from-scratch evaluation on the same
// snapshot (queries and unions against its nf, paths against its data
// graph / maintained closure).
TEST(ServingTest, CheckedModeFourReadersOneWriter) {
  Rig rig = MakeRig(6000, 11);
  DriverOptions opts;
  opts.readers = 4;
  opts.ops_per_reader = 120;
  opts.check_fraction = 1.0;
  opts.seed = 3;
  opts.writer = true;
  opts.writer_batch_triples = 48;
  opts.writer_pause_micros = 200;
  TrafficDriver driver(rig.db.get(), rig.gen.get(), rig.mix.get(), opts);
  const DriverReport r = driver.Run();

  EXPECT_EQ(r.ops, 480u);
  EXPECT_EQ(r.checks, r.ops);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GE(r.writer_batches, 1u);
  EXPECT_GT(r.snapshot_publishes, 0u);
}

// The batched read path (PreAnswerBatch grouping) under full
// cross-validation, deterministic mode — batch answers must be slot for
// slot what sequential from-scratch evaluation produces.
TEST(ServingTest, BatchedModeSurvivesFullValidation) {
  Rig rig = MakeRig(4000, 13);
  DriverOptions opts;
  opts.ops_per_reader = 240;
  opts.batch_size = 8;
  opts.check_fraction = 1.0;
  opts.seed = 5;
  opts.writer = true;
  opts.writer_every = 40;
  opts.writer_batch_triples = 32;
  TrafficDriver driver(rig.db.get(), rig.gen.get(), rig.mix.get(), opts);
  const DriverReport r = driver.RunSingleThreaded(nullptr);

  EXPECT_EQ(r.ops, 240u);
  EXPECT_EQ(r.checks, r.ops);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.errors, 0u);
}

// Checked mode also holds on a corpus with anonymous (blank-node)
// authors, where nf(D) is a proper core and the constraint template
// actually filters.
TEST(ServingTest, CheckedModeWithBlankAuthors) {
  Rig rig = MakeRig(3000, 17, /*blank_author_fraction=*/0.2);
  DriverOptions opts;
  opts.ops_per_reader = 150;
  opts.check_fraction = 1.0;
  opts.seed = 9;
  opts.writer = true;
  opts.writer_every = 50;
  opts.writer_batch_triples = 24;
  TrafficDriver driver(rig.db.get(), rig.gen.get(), rig.mix.get(), opts);
  const DriverReport r = driver.RunSingleThreaded(nullptr);

  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.errors, 0u);
}

// Prop. 5.9 as a system-level property: the served form of a premise
// template (its premise-free Ωq union, evaluated on a snapshot) has
// exactly the answers of direct premise evaluation (which normalizes
// D + P per call and must run on the writer thread).
TEST(ServingTest, PremiseTemplatesMatchDirectEvaluation) {
  Rig rig = MakeRig(3000, 19);
  Rng rng(23);
  for (int round = 0; round < 12; ++round) {
    for (const TemplateId id :
         {TemplateId::kPremiseCites, TemplateId::kPremiseAuthor}) {
      const ServingRequest req = rig.mix->Build(id, &rng);
      ASSERT_EQ(req.kind, RequestKind::kPremise);
      ASSERT_FALSE(req.union_q.branches.empty());

      const std::shared_ptr<const DatabaseSnapshot> snap = rig.db->Snapshot();
      Graph via_omega;
      for (const Query& branch : req.union_q.branches) {
        const Result<std::vector<Graph>> pre = snap->PreAnswer(branch);
        ASSERT_TRUE(pre.ok());
        for (const Graph& answer : *pre) via_omega.InsertAll(answer);
      }

      const Result<Graph> direct = rig.db->AnswerUnion(req.query);
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(via_omega, *direct)
          << "template " << TemplateName(id) << " round " << round;
    }
  }
}

// Every template builds structurally valid artifacts.
TEST(ServingTest, EveryTemplateBuildsValidRequests) {
  Rig rig = MakeRig(2000, 29);
  Rng rng(31);
  for (size_t i = 0; i < kTemplateCount; ++i) {
    const TemplateId id = static_cast<TemplateId>(i);
    for (int round = 0; round < 5; ++round) {
      const ServingRequest req = rig.mix->Build(id, &rng);
      EXPECT_EQ(req.template_id, id);
      switch (req.kind) {
        case RequestKind::kQuery:
          EXPECT_TRUE(req.query.Validate().ok()) << TemplateName(id);
          break;
        case RequestKind::kUnion:
          EXPECT_TRUE(req.union_q.Validate().ok()) << TemplateName(id);
          break;
        case RequestKind::kPremise:
          EXPECT_TRUE(req.query.Validate().ok()) << TemplateName(id);
          EXPECT_TRUE(req.union_q.Validate().ok()) << TemplateName(id);
          break;
        case RequestKind::kPath:
          EXPECT_TRUE(req.path.has_value()) << TemplateName(id);
          EXPECT_FALSE(req.path_sources.empty()) << TemplateName(id);
          break;
      }
    }
  }
}

// The weighted sampler draws every template with nonzero default
// weight over a modest number of samples.
TEST(ServingTest, SamplerCoversAllTemplates) {
  Rig rig = MakeRig(2000, 37);
  Rng rng(41);
  std::vector<int> seen(kTemplateCount, 0);
  for (int i = 0; i < 2000; ++i) {
    seen[static_cast<size_t>(rig.mix->Sample(&rng).template_id)] += 1;
  }
  for (size_t i = 0; i < kTemplateCount; ++i) {
    EXPECT_GT(seen[i], 0) << TemplateName(static_cast<TemplateId>(i));
  }
}

}  // namespace
}  // namespace swdb
