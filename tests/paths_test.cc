#include "paths/path.h"

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

class PathsTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Graph g_ = Data(&dict_,
                  "a p b .\n"
                  "b p c .\n"
                  "c p d .\n"
                  "a q x .\n"
                  "x r d .\n"
                  "d p a .\n");  // p-cycle a→b→c→d→a

  std::vector<Term> Eval(const std::string& expr, const char* from) {
    Result<PathExpr> path = ParsePathExpr(expr, &dict_);
    EXPECT_TRUE(path.ok()) << path.status().ToString();
    if (!path.ok()) return {};
    return EvalPathFrom(g_, *path, {dict_.Iri(from)});
  }
};

TEST_F(PathsTest, SinglePredicateStep) {
  std::vector<Term> out = Eval("p", "a");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], dict_.Iri("b"));
}

TEST_F(PathsTest, InverseStep) {
  std::vector<Term> out = Eval("^p", "b");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], dict_.Iri("a"));
}

TEST_F(PathsTest, Sequence) {
  std::vector<Term> out = Eval("p/p", "a");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], dict_.Iri("c"));
}

TEST_F(PathsTest, Alternation) {
  std::vector<Term> out = Eval("p|q", "a");
  EXPECT_EQ(out.size(), 2u);  // b and x
}

TEST_F(PathsTest, StarIncludesSource) {
  std::vector<Term> out = Eval("q*", "a");
  EXPECT_EQ(out.size(), 2u);  // a itself and x
}

TEST_F(PathsTest, PlusExcludesSourceUnlessCyclic) {
  std::vector<Term> acyclic = Eval("q+", "a");
  ASSERT_EQ(acyclic.size(), 1u);
  EXPECT_EQ(acyclic[0], dict_.Iri("x"));
  // p is cyclic, so a reaches itself via p+.
  std::vector<Term> cyclic = Eval("p+", "a");
  EXPECT_EQ(cyclic.size(), 4u);  // a, b, c, d
}

TEST_F(PathsTest, OptionalStep) {
  std::vector<Term> out = Eval("q?", "a");
  EXPECT_EQ(out.size(), 2u);  // a and x
}

TEST_F(PathsTest, ComplexExpression) {
  // Either hop twice on p, or take the q/r detour — both reach d from b?
  // From a: (p/p)|(q/r) reaches c and d.
  std::vector<Term> out = Eval("(p/p)|(q/r)", "a");
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(PathsTest, PathReachesHelper) {
  Result<PathExpr> path = ParsePathExpr("p+", &dict_);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(PathReaches(g_, *path, dict_.Iri("a"), dict_.Iri("d")));
  EXPECT_FALSE(PathReaches(g_, *path, dict_.Iri("a"), dict_.Iri("x")));
}

TEST_F(PathsTest, PairsEnumerateRelation) {
  Result<PathExpr> path = ParsePathExpr("p", &dict_);
  ASSERT_TRUE(path.ok());
  std::vector<std::pair<Term, Term>> pairs = EvalPathPairs(g_, *path);
  EXPECT_EQ(pairs.size(), 4u);
}

TEST_F(PathsTest, InverseStarWalksBackwards) {
  std::vector<Term> out = Eval("(^p)+", "d");
  EXPECT_EQ(out.size(), 4u);  // cycle backwards
}

TEST_F(PathsTest, RdfsAwarePathOverClosure) {
  // Reachability through the subclass hierarchy: evaluate sc+ over the
  // closure to follow derived edges too.
  Dictionary dict;
  Graph schema = Data(&dict,
                      "cat sc mammal .\n"
                      "mammal sc animal .\n");
  Result<PathExpr> path = ParsePathExpr("sc+", &dict);
  ASSERT_TRUE(path.ok());
  Graph closure = RdfsClosure(schema);
  std::vector<Term> from_cat =
      EvalPathFrom(closure, *path, {dict.Iri("cat")});
  // cat, mammal, animal — reflexive (cat,sc,cat) includes cat itself.
  EXPECT_EQ(from_cat.size(), 3u);
}

TEST_F(PathsTest, ParserRejectsGarbage) {
  Dictionary dict;
  EXPECT_FALSE(ParsePathExpr("", &dict).ok());
  EXPECT_FALSE(ParsePathExpr("(p", &dict).ok());
  EXPECT_FALSE(ParsePathExpr("p//q", &dict).ok());
  EXPECT_FALSE(ParsePathExpr("p | ", &dict).ok());
  EXPECT_FALSE(ParsePathExpr("^", &dict).ok());
  EXPECT_FALSE(ParsePathExpr("p q", &dict).ok());
}

TEST_F(PathsTest, ParserPrecedence) {
  // '/' binds tighter than '|'; postfix binds tightest.
  Dictionary dict;
  Result<PathExpr> path = ParsePathExpr("a/b|c*", &dict);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->kind(), PathExpr::Kind::kAlternation);
  EXPECT_EQ(path->left().kind(), PathExpr::Kind::kSequence);
  EXPECT_EQ(path->right().kind(), PathExpr::Kind::kStar);
}

TEST_F(PathsTest, ToStringRoundTrips) {
  Dictionary dict;
  for (const char* expr :
       {"p", "^p", "(p/q)", "(p|q)", "(p)*", "((p/q))+", "(sc)*"}) {
    Result<PathExpr> path = ParsePathExpr(expr, &dict);
    ASSERT_TRUE(path.ok()) << expr;
    std::string printed = path->ToString(dict);
    Result<PathExpr> reparsed = ParsePathExpr(printed, &dict);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(reparsed->ToString(dict), printed);
  }
}

TEST_F(PathsTest, EmptySourcesGiveEmptyResult) {
  Result<PathExpr> path = ParsePathExpr("p+", &dict_);
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(EvalPathFrom(g_, *path, {}).empty());
}

}  // namespace
}  // namespace swdb
