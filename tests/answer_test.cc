#include "query/answer.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "rdf/iso.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

TEST(Answer, SimpleJoinQuery) {
  Dictionary dict;
  Graph db = Data(&dict,
                  "picasso paints guernica .\n"
                  "rembrandt paints nightwatch .\n"
                  "guernica exhibited reina .\n");
  Query q = Q(&dict,
              "head: ?A master ?Y .\n"
              "body: ?A paints ?Y .\n"
              "body: ?Y exhibited reina .\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(pre->size(), 1u);
  EXPECT_TRUE((*pre)[0].Contains(Triple(dict.Iri("picasso"),
                                        dict.Iri("master"),
                                        dict.Iri("guernica"))));
}

TEST(Answer, RdfsInferenceInMatching) {
  // The paper's Fig. 1 flavor: dom/range/sp/sc inference feeds matching.
  Dictionary dict;
  Graph db = Data(&dict,
                  "paints sp creates .\n"
                  "creates dom artist .\n"
                  "artist sc person .\n"
                  "picasso paints guernica .\n");
  Query q = Q(&dict,
              "head: ?X answer yes .\n"
              "body: ?X type person .\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(pre->size(), 1u);
  EXPECT_TRUE((*pre)[0].Contains(
      Triple(dict.Iri("picasso"), dict.Iri("answer"), dict.Iri("yes"))));
}

TEST(Answer, ConstraintsFilterBlankBindings) {
  Dictionary dict;
  // _:B has its own fact so nf(db) cannot fold it onto c.
  Graph db = Data(&dict,
                  "a knows _:B .\n"
                  "_:B lives paris .\n"
                  "a knows c .\n");
  Query unconstrained = Q(&dict,
                          "head: ?Y known yes .\n"
                          "body: a knows ?Y .\n");
  Query constrained = Q(&dict,
                        "head: ?Y known yes .\n"
                        "body: a knows ?Y .\n"
                        "bind: ?Y\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> all = eval.PreAnswer(unconstrained, db);
  Result<std::vector<Graph>> bound = eval.PreAnswer(constrained, db);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(all->size(), 2u);
  ASSERT_EQ(bound->size(), 1u);
  EXPECT_TRUE((*bound)[0].Contains(
      Triple(dict.Iri("c"), dict.Iri("known"), dict.Iri("yes"))));
}

TEST(Answer, PremiseSuppliesHypotheticalFacts) {
  // §4.2: ask for relatives of Peter knowing son ⊑sp relative.
  Dictionary dict;
  Graph db = Data(&dict, "paul son Peter .");
  Query without = Q(&dict,
                    "head: ?X relative Peter .\n"
                    "body: ?X relative Peter .\n");
  Query with = Q(&dict,
                 "head: ?X relative Peter .\n"
                 "body: ?X relative Peter .\n"
                 "premise: son sp relative .\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> no_premise = eval.PreAnswer(without, db);
  Result<std::vector<Graph>> premise = eval.PreAnswer(with, db);
  ASSERT_TRUE(no_premise.ok());
  ASSERT_TRUE(premise.ok());
  EXPECT_TRUE(no_premise->empty());
  ASSERT_EQ(premise->size(), 1u);
  EXPECT_TRUE((*premise)[0].Contains(Triple(
      dict.Iri("paul"), dict.Iri("relative"), dict.Iri("Peter"))));
}

TEST(Answer, SkolemHeadBlanksArePerValuation) {
  Dictionary dict;
  Graph db = Data(&dict, "a p b .\na p c .");
  // Head blank N: each valuation mints its own blank via f_N(v(?Y)).
  Query q;
  q.head = Graph{Triple(dict.Var("Y"), dict.Iri("tagged"),
                        dict.Blank("N"))};
  q.body = Graph{Triple(dict.Iri("a"), dict.Iri("p"), dict.Var("Y"))};
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(pre->size(), 2u);
  Term blank_b = (*pre)[0][0].o;
  Term blank_c = (*pre)[1][0].o;
  EXPECT_TRUE(blank_b.IsBlank());
  EXPECT_TRUE(blank_c.IsBlank());
  EXPECT_NE(blank_b, blank_c);
}

TEST(Answer, SkolemIsStableAcrossDatabases) {
  // Prop 4.5 requires the same f_N for every database an evaluator sees.
  Dictionary dict;
  Graph db1 = Data(&dict, "a p b .");
  Graph db2 = Data(&dict, "a p b .\na p c .");
  Query q;
  q.head = Graph{Triple(dict.Var("Y"), dict.Iri("tagged"),
                        dict.Blank("N"))};
  q.body = Graph{Triple(dict.Iri("a"), dict.Iri("p"), dict.Var("Y"))};
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre1 = eval.PreAnswer(q, db1);
  Result<std::vector<Graph>> pre2 = eval.PreAnswer(q, db2);
  ASSERT_TRUE(pre1.ok());
  ASSERT_TRUE(pre2.ok());
  // The v(Y)=b answer is byte-identical across databases.
  ASSERT_EQ(pre1->size(), 1u);
  EXPECT_TRUE(std::find(pre2->begin(), pre2->end(), (*pre1)[0]) !=
              pre2->end());
}

TEST(Answer, IllFormedInstantiationsAreSkipped) {
  // ?P bound to a blank, then used in predicate position of the head:
  // the single answer is not a well-formed graph and is dropped.
  Dictionary dict;
  // _:B carries its own property so the core cannot fold it onto q.
  Graph db = Data(&dict, "a p _:B .\n_:B r s .\na p q .\nx q y .");
  Query q;
  q.head = Graph{Triple(dict.Iri("x"), dict.Var("P"), dict.Iri("y"))};
  q.body = Graph{Triple(dict.Iri("a"), dict.Iri("p"), dict.Var("P"))};
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
  ASSERT_TRUE(pre.ok());
  for (const Graph& answer : *pre) {
    EXPECT_TRUE(answer.IsWellFormedData());
  }
  // The URI binding survives.
  Graph expected{Triple(dict.Iri("x"), dict.Iri("q"), dict.Iri("y"))};
  EXPECT_TRUE(std::find(pre->begin(), pre->end(), expected) != pre->end());
}

TEST(Answer, Note47IdentityQueryUnionVsMerge) {
  Dictionary dict;
  Graph db = Data(&dict, "_:X b c .\n_:X b d .");
  Query identity = Query::Identity(&dict);
  QueryEvaluator eval(&dict);
  Result<Graph> union_ans = eval.AnswerUnion(identity, db);
  Result<Graph> merge_ans = eval.AnswerMerge(identity, db);
  ASSERT_TRUE(union_ans.ok());
  ASSERT_TRUE(merge_ans.ok());
  // Union semantics: the identity query is the identity modulo ≡.
  EXPECT_TRUE(RdfsEquivalent(*union_ans, db));
  // Merge semantics breaks the blank bridge: not equivalent to db.
  EXPECT_FALSE(RdfsEquivalent(*merge_ans, db));
  // But the union always entails the merge (Prop 4.5(2)).
  EXPECT_TRUE(RdfsEntails(*union_ans, *merge_ans));
}

TEST(Answer, UnionEntailsMergeOnRandomWorkloads) {
  // Prop 4.5(2) as a property test.
  Rng rng(55);
  for (int round = 0; round < 5; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 8;
    spec.num_triples = 12;
    spec.num_predicates = 3;
    spec.blank_ratio = 0.4;
    Graph db = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(db, 2, 0.6, &dict, &rng);
    if (!q.Validate().ok() || q.body.empty()) continue;
    QueryEvaluator eval(&dict);
    Result<Graph> union_ans = eval.AnswerUnion(q, db);
    Result<Graph> merge_ans = eval.AnswerMerge(q, db);
    ASSERT_TRUE(union_ans.ok());
    ASSERT_TRUE(merge_ans.ok());
    EXPECT_TRUE(RdfsEntails(*union_ans, *merge_ans)) << "round " << round;
  }
}

TEST(Answer, MonotoneUnderEntailment) {
  // Prop 4.5(1): D' ⊨ D implies ans(q, D') ⊨ ans(q, D).
  Dictionary dict;
  Graph db = Data(&dict,
                  "a p b .\n"
                  "b p c .");
  Graph db_stronger = Data(&dict,
                           "a p b .\n"
                           "b p c .\n"
                           "c p d .");
  Query q = Q(&dict,
              "head: ?X r ?Y .\n"
              "body: ?X p ?Y .\n");
  QueryEvaluator eval(&dict);
  Result<Graph> weak = eval.AnswerUnion(q, db);
  Result<Graph> strong = eval.AnswerUnion(q, db_stronger);
  ASSERT_TRUE(weak.ok());
  ASSERT_TRUE(strong.ok());
  EXPECT_TRUE(RdfsEntails(*strong, *weak));
}

TEST(Answer, Theorem46InvarianceUnderEquivalence) {
  // D ≡ D' gives isomorphic answers.
  Dictionary dict;
  Rng rng(91);
  Graph db = Data(&dict,
                  "a sc b .\n"
                  "x type a .\n"
                  "x p y .");
  Graph equivalent = EquivalentMutation(db, 3, &dict, &rng);
  ASSERT_TRUE(RdfsEquivalent(db, equivalent));
  Query q = Q(&dict,
              "head: ?X r ?C .\n"
              "body: ?X type ?C .\n");
  QueryEvaluator eval(&dict);
  Result<Graph> ans1 = eval.AnswerUnion(q, db);
  Result<Graph> ans2 = eval.AnswerUnion(q, equivalent);
  ASSERT_TRUE(ans1.ok());
  ASSERT_TRUE(ans2.ok());
  EXPECT_TRUE(AreIsomorphic(*ans1, *ans2));
}

TEST(Answer, ClosureOnlyModeBreaksInvariance) {
  // Note 4.4: matching against a closure instead of nf is syntax
  // dependent. Exhibit a pair of equivalent databases with different
  // closure-mode answers but identical nf-mode answers.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc _:N .\n"
                 "_:N sc c .\n");
  Graph h = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n");
  ASSERT_TRUE(RdfsEquivalent(g, h));
  Query q = Q(&dict,
              "head: ?X r ?Y .\n"
              "body: ?X sc ?Y .\n");
  EvalOptions closure_mode;
  closure_mode.use_closure_only = true;
  QueryEvaluator closure_eval(&dict, closure_mode);
  QueryEvaluator nf_eval(&dict);
  Result<Graph> cg = closure_eval.AnswerUnion(q, g);
  Result<Graph> ch = closure_eval.AnswerUnion(q, h);
  Result<Graph> ng = nf_eval.AnswerUnion(q, g);
  Result<Graph> nh = nf_eval.AnswerUnion(q, h);
  ASSERT_TRUE(cg.ok() && ch.ok() && ng.ok() && nh.ok());
  EXPECT_FALSE(AreIsomorphic(*cg, *ch));  // closure mode: syntax leaks
  EXPECT_TRUE(AreIsomorphic(*ng, *nh));   // nf mode: invariant
}

TEST(Answer, EvaluationRejectsInvalidQuery) {
  Dictionary dict;
  Query q;
  q.head = Graph{Triple(dict.Var("X"), dict.Iri("p"), dict.Iri("a"))};
  q.body = Graph();  // head var not in body
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, Graph());
  EXPECT_FALSE(pre.ok());
}

TEST(Answer, MatchingsExposeBindingsTable) {
  Dictionary dict;
  Graph db = Data(&dict, "a p b .\na p c .\nz q b .");
  Query q = Q(&dict,
              "head: ?X r ?Y .\n"
              "body: ?X p ?Y .\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<TermMap>> rows = eval.Matchings(q, db);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  Term x = dict.Var("X");
  Term y = dict.Var("Y");
  EXPECT_EQ((*rows)[0].Apply(x), dict.Iri("a"));
  EXPECT_EQ((*rows)[0].Apply(y), dict.Iri("b"));
  EXPECT_EQ((*rows)[1].Apply(y), dict.Iri("c"));
}

TEST(Answer, MatchingsRespectConstraints) {
  Dictionary dict;
  Graph db = Data(&dict, "a p _:B .\n_:B r s .\na p c .");
  Query q = Q(&dict,
              "head: ?Y known yes .\n"
              "body: a p ?Y .\n"
              "bind: ?Y\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<TermMap>> rows = eval.Matchings(q, db);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].Apply(dict.Var("Y")), dict.Iri("c"));
}

}  // namespace
}  // namespace swdb
