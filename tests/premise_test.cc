#include "query/premise.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "query/answer.h"
#include "rdf/iso.h"
#include "testutil.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

TEST(Premise, EmptyPremiseYieldsTheQueryItself) {
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  ASSERT_TRUE(omega.ok());
  ASSERT_EQ(omega->size(), 1u);
  EXPECT_EQ((*omega)[0].body, q.body);
}

TEST(Premise, Example510Expansion) {
  // q: (?X,p,?Y) ← (?X,q,?Y),(?Y,t,s) with P = {(a,t,s),(b,t,s)}
  // expands to three premise-free queries (paper Ex. 5.10).
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X q ?Y .\n"
              "body: ?Y t s .\n"
              "premise: a t s .\n"
              "premise: b t s .\n");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  ASSERT_TRUE(omega.ok());
  // q1: (?X,p,a) ← (?X,q,a); q2: (?X,p,b) ← (?X,q,b); q3 = q sans P.
  EXPECT_EQ(omega->size(), 3u);
  bool found_a = false;
  bool found_b = false;
  bool found_full = false;
  for (const Query& qm : *omega) {
    if (qm.body.size() == 1 &&
        qm.body.Contains(Triple(dict.Var("X"), dict.Iri("q"),
                                dict.Iri("a")))) {
      found_a = true;
      EXPECT_TRUE(qm.head.Contains(
          Triple(dict.Var("X"), dict.Iri("p"), dict.Iri("a"))));
    }
    if (qm.body.size() == 1 &&
        qm.body.Contains(Triple(dict.Var("X"), dict.Iri("q"),
                                dict.Iri("b")))) {
      found_b = true;
    }
    if (qm.body.size() == 2) found_full = true;
  }
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
  EXPECT_TRUE(found_full);
}

TEST(Premise, ExpansionPreservesAnswersOnDatabases) {
  // Prop 5.9: ans(q, D) = ⋃ ans(qμ, D) for every database.
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X q ?Y .\n"
              "body: ?Y t s .\n"
              "premise: a t s .\n"
              "premise: b t s .\n");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  ASSERT_TRUE(omega.ok());

  Rng rng(3);
  for (int round = 0; round < 8; ++round) {
    Dictionary round_dict = dict;
    RandomGraphSpec spec;
    spec.num_nodes = 6;
    spec.num_triples = 10;
    spec.num_predicates = 3;
    // Ground databases: Prop 5.9's split argument matches against the
    // plain merge D + P, which for ground simple data coincides with the
    // nf-based matching the evaluator performs.
    spec.blank_ratio = 0.0;
    Graph db = RandomSimpleGraph(spec, &round_dict, &rng);
    // Sprinkle in the premise vocabulary so joins can fire.
    db.Insert(round_dict.Iri("urn:n1"), round_dict.Iri("q"),
              round_dict.Iri("a"));
    db.Insert(round_dict.Iri("urn:n2"), round_dict.Iri("t"),
              round_dict.Iri("s"));
    db.Insert(round_dict.Iri("urn:n3"), round_dict.Iri("q"),
              round_dict.Iri("urn:n2"));

    QueryEvaluator eval(&round_dict);
    Result<Graph> direct = eval.AnswerUnion(q, db);
    ASSERT_TRUE(direct.ok());
    Graph expanded;
    for (const Query& qm : *omega) {
      Result<Graph> part = eval.AnswerUnion(qm, db);
      ASSERT_TRUE(part.ok());
      expanded.InsertAll(*part);
    }
    EXPECT_EQ(*direct, expanded) << "round " << round;
  }
}

TEST(Premise, BlankPremiseBindingsCannotLeakIntoBody) {
  // A map sending a shared variable to a blank of P would put a blank in
  // the rewritten body; those maps are discarded.
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X q ?Y .\n"
              "body: ?Y t s .\n"
              "premise: _:B t s .\n");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  ASSERT_TRUE(omega.ok());
  for (const Query& qm : *omega) {
    EXPECT_TRUE(qm.body.BlankNodes().empty());
    EXPECT_TRUE(qm.Validate().ok()) << qm.Validate().ToString();
  }
  // Only the untouched R = ∅ variant survives: R = {(?Y,t,s)} would leak
  // _:B into the rewritten body and is dropped.
  ASSERT_EQ(omega->size(), 1u);
  EXPECT_EQ((*omega)[0].body.size(), 2u);
}

TEST(Premise, BlankAllowedInHeadAfterElimination) {
  // If the eliminated variable appears only in the head-relevant part,
  // a premise blank may legitimately surface in the head (heads allow
  // blanks).
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X q c .\n"
              "body: ?Y t s .\n"
              "premise: _:B t s .\n");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  ASSERT_TRUE(omega.ok());
  bool found_blank_head = false;
  for (const Query& qm : *omega) {
    if (!qm.head.BlankNodes().empty()) {
      found_blank_head = true;
      EXPECT_TRUE(qm.Validate().ok());
    }
  }
  EXPECT_TRUE(found_blank_head);
}

TEST(Premise, ConstraintOnEliminatedVariable) {
  Dictionary dict;
  // ?Y constrained; premise binds ?Y to a URI in one variant (kept,
  // constraint discharged) — and to a blank in another (dropped).
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X q ?Y .\n"
              "body: ?Y t s .\n"
              "premise: a t s .\n"
              "premise: _:B t s .\n"
              "bind: ?Y\n");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  ASSERT_TRUE(omega.ok());
  for (const Query& qm : *omega) {
    // No rewritten query may mention the blank in its body, and any
    // remaining constraint must be a head variable.
    EXPECT_TRUE(qm.Validate().ok()) << qm.Validate().ToString();
    EXPECT_TRUE(qm.body.BlankNodes().empty());
  }
}

TEST(Premise, BodyTooLargeIsRejected) {
  Dictionary dict;
  Query q;
  Term t = dict.Iri("t");
  for (int i = 0; i < 25; ++i) {
    q.body.Insert(dict.Var(NumberedName("v", i)), t,
                  dict.Var(NumberedName("w", i)));
  }
  q.premise = Data(&dict, "a t b .");
  Result<std::vector<Query>> omega = EliminatePremise(q);
  EXPECT_FALSE(omega.ok());
  EXPECT_EQ(omega.status().code(), StatusCode::kLimitExceeded);
}

}  // namespace
}  // namespace swdb
