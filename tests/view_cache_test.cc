// The materialized pre-answer view layer: ViewKey canonicalization
// (isomorphic query shapes share one key), ViewCache lookup/install/
// maintenance through the Database pipeline, and the soundness fuzz —
// cached PreAnswer must be bit-identical to from-scratch evaluation
// after every interleaved mutation.

#include "query/view_key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "query/database.h"
#include "query/query.h"
#include "query/union_query.h"
#include "query/view_cache.h"
#include "rdf/graph.h"
#include "rdf/term.h"
#include "testutil.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

using swdb::testing::Q;

// ---------------------------------------------------------------------------
// Canonicalization

TEST(ViewKey, IsomorphicQueriesShareAKey) {
  Dictionary dict;
  Query a = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\nbody: ?Y q ?Z .\n");
  Query b = Q(&dict,
              "head: ?U p ?V .\n"
              "body: ?U p ?V .\nbody: ?V q ?W .\n");
  CanonicalQuery ca, cb;
  EXPECT_EQ(MakeViewKey(a, &ca), MakeViewKey(b, &cb));
  EXPECT_TRUE(ca.renamed);
  // Equal keys literally share one canonical spelling.
  EXPECT_EQ(ca.query.body, cb.query.body);
  EXPECT_EQ(ca.query.head, cb.query.head);
}

TEST(ViewKey, BodyTripleOrderDoesNotMatter) {
  Dictionary dict;
  Query a = Q(&dict,
              "head: ?X r ?Z .\n"
              "body: ?X p ?Y .\nbody: ?Y q ?Z .\n");
  Query b = Q(&dict,
              "head: ?X r ?Z .\n"
              "body: ?Y q ?Z .\nbody: ?X p ?Y .\n");
  EXPECT_EQ(MakeViewKey(a), MakeViewKey(b));
}

TEST(ViewKey, DifferentShapesGetDifferentKeys) {
  Dictionary dict;
  Query chain = Q(&dict,
                  "head: ?X r ?Z .\n"
                  "body: ?X p ?Y .\nbody: ?Y p ?Z .\n");
  Query fork = Q(&dict,
                 "head: ?X r ?Z .\n"
                 "body: ?X p ?Y .\nbody: ?X p ?Z .\n");
  Query constant = Q(&dict,
                     "head: ?X r ?Z .\n"
                     "body: ?X p ?Y .\nbody: ?Y q ?Z .\n");
  EXPECT_NE(MakeViewKey(chain), MakeViewKey(fork));
  EXPECT_NE(MakeViewKey(chain), MakeViewKey(constant));
}

TEST(ViewKey, ConstraintOrderDoesNotMatterButPresenceDoes) {
  Dictionary dict;
  Query a = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n"
              "bind: ?X ?Y\n");
  // The same query with the constraint list in the other order (built
  // by hand — the parser normalizes the order itself).
  Query b = a;
  std::reverse(b.constraints.begin(), b.constraints.end());
  Query without = Q(&dict,
                    "head: ?X p ?Y .\n"
                    "body: ?X p ?Y .\n"
                    "bind: ?X\n");
  EXPECT_EQ(MakeViewKey(a), MakeViewKey(b));
  EXPECT_NE(MakeViewKey(a), MakeViewKey(without));
}

TEST(ViewKey, HeadBlankQueriesKeyOnExactSpelling) {
  Dictionary dict;
  // Skolemization keys on the concrete head blank and the concrete
  // sorted-variable tuple, so these shapes must not be renamed.
  Query a = Q(&dict,
              "head: ?X knows _:b .\n"
              "body: ?X p ?Y .\n");
  Query iso = Q(&dict,
                "head: ?U knows _:b .\n"
                "body: ?U p ?V .\n");
  CanonicalQuery ca;
  ViewKey ka = MakeViewKey(a, &ca);
  EXPECT_FALSE(ca.renamed);
  // The exact same spelling still shares.
  EXPECT_EQ(ka, MakeViewKey(a));
  // The isomorphic respelling must NOT share a key (its Skolem mints
  // would differ).
  EXPECT_NE(ka, MakeViewKey(iso));
}

TEST(ViewKey, PremiseIsPartOfTheKey) {
  Dictionary dict;
  Query bare = Q(&dict,
                 "head: ?X p ?Y .\n"
                 "body: ?X p ?Y .\n");
  Query with = Q(&dict,
                 "head: ?X p ?Y .\n"
                 "body: ?X p ?Y .\n"
                 "premise: a p b .\n");
  EXPECT_NE(MakeViewKey(bare), MakeViewKey(with));
}

// ---------------------------------------------------------------------------
// The Database pipeline through the cache

EvalOptions EagerViews() {
  EvalOptions options;
  options.views.promote_after = 1;  // materialize on first sight
  return options;
}

TEST(ViewCacheDatabase, RepeatedShapeHitsAndStaysBitIdentical) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\nc p d .\n").ok());
  Query q = Q(&dict,
              "head: ?X r ?Z .\n"
              "body: ?X p ?Y .\nbody: ?Y p ?Z .\n");
  Result<std::vector<Graph>> first = db.PreAnswer(q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 2u);
  Result<std::vector<Graph>> second = db.PreAnswer(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);

  // An isomorphic respelling is served from the same view.
  Query iso = Q(&dict,
                "head: ?A r ?C .\n"
                "body: ?B p ?C .\nbody: ?A p ?B .\n");
  Result<std::vector<Graph>> third = db.PreAnswer(iso);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*first, *third);

  DatabaseStats stats = db.CollectStats();
  EXPECT_EQ(stats.views.installs, 1u);
  EXPECT_GE(stats.views.hits, 2u);
  EXPECT_EQ(stats.views.entries, 1u);
}

TEST(ViewCacheDatabase, DisabledViewsNeverCache) {
  Dictionary dict;
  EvalOptions options;
  options.views.enabled = false;
  Database db(&dict, options);
  ASSERT_TRUE(db.InsertText("a p b .\n").ok());
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n");
  ASSERT_TRUE(db.PreAnswer(q).ok());
  ASSERT_TRUE(db.PreAnswer(q).ok());
  DatabaseStats stats = db.CollectStats();
  EXPECT_EQ(stats.views.hits, 0u);
  EXPECT_EQ(stats.views.installs, 0u);
  EXPECT_EQ(stats.views.entries, 0u);
}

TEST(ViewCacheDatabase, InsertPatchesInsteadOfRecomputing) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\n").ok());
  Query q = Q(&dict,
              "head: ?X r ?Z .\n"
              "body: ?X p ?Y .\nbody: ?Y p ?Z .\n");
  ASSERT_TRUE(db.PreAnswer(q).ok());  // installs the view

  // A relevant insert: the view must be patched, not dropped, and the
  // patched answers must equal from-scratch evaluation.
  db.Insert(Triple(dict.Iri("c"), dict.Iri("p"), dict.Iri("d")));
  Result<std::vector<Graph>> cached = db.PreAnswer(q);
  ASSERT_TRUE(cached.ok());
  Result<std::vector<Graph>> scratch = db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(*cached, *scratch);

  DatabaseStats stats = db.CollectStats();
  EXPECT_GE(stats.views.patches, 1u);
  EXPECT_EQ(stats.views.invalidations, 0u);
  EXPECT_GE(stats.views.patch_added, 1u);
  EXPECT_GE(stats.views.hits, 1u);
}

TEST(ViewCacheDatabase, UnrelatedInsertRevalidates) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\n").ok());
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n");
  ASSERT_TRUE(db.PreAnswer(q).ok());
  // No delta triple can unify with (?X p ?Y)'s predicate constant.
  db.Insert(Triple(dict.Iri("x"), dict.Iri("q"), dict.Iri("y")));
  ASSERT_TRUE(db.PreAnswer(q).ok());
  DatabaseStats stats = db.CollectStats();
  EXPECT_GE(stats.views.revalidations, 1u);
  EXPECT_GE(stats.views.hits, 1u);
}

TEST(ViewCacheDatabase, ErasePatchesAndStaysSound) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\nc p d .\n").ok());
  Query q = Q(&dict,
              "head: ?X r ?Z .\n"
              "body: ?X p ?Y .\nbody: ?Y p ?Z .\n");
  Result<std::vector<Graph>> before = db.PreAnswer(q);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 2u);

  db.Erase(Triple(dict.Iri("b"), dict.Iri("p"), dict.Iri("c")));
  Result<std::vector<Graph>> cached = db.PreAnswer(q);
  ASSERT_TRUE(cached.ok());
  Result<std::vector<Graph>> scratch = db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(*cached, *scratch);
  EXPECT_TRUE(cached->empty());

  DatabaseStats stats = db.CollectStats();
  EXPECT_GE(stats.views.patch_removed, 1u);
}

TEST(ViewCacheDatabase, EraseEmptyingTheNfPatchesViewsToEmpty) {
  // Maintain across an erase delta that removes *every* nf triple: the
  // diff's removed set is the whole base nf, every stored matching loses
  // its image, and the patched view must be the empty answer vector —
  // not an invalidation, not a stale replay, not a crash on the empty
  // added set.
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\nc p d .\n").ok());
  Query q = Q(&dict,
              "head: ?X r ?Z .\n"
              "body: ?X p ?Y .\nbody: ?Y p ?Z .\n");
  Result<std::vector<Graph>> before = db.PreAnswer(q);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->size(), 2u);  // view installed with live matchings

  const Term p = dict.Iri("p");
  db.Erase(Triple(dict.Iri("a"), p, dict.Iri("b")));
  db.Erase(Triple(dict.Iri("b"), p, dict.Iri("c")));
  db.Erase(Triple(dict.Iri("c"), p, dict.Iri("d")));
  EXPECT_EQ(db.size(), 0u);

  Result<std::vector<Graph>> cached = db.PreAnswer(q);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->empty());
  Result<std::vector<Graph>> scratch = db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(*cached, *scratch);

  DatabaseStats stats = db.CollectStats();
  EXPECT_GE(stats.views.patches, 1u);
  EXPECT_GE(stats.views.patch_removed, 2u);
  EXPECT_EQ(stats.views.invalidations, 0u);
  EXPECT_EQ(stats.views.entries, 1u);  // the emptied view stays resident

  // And the emptied view still patches back up when data returns.
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\n").ok());
  Result<std::vector<Graph>> revived = db.PreAnswer(q);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->size(), 1u);
  Result<std::vector<Graph>> scratch2 =
      db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(scratch2.ok());
  EXPECT_EQ(*revived, *scratch2);
}

TEST(ViewCacheDatabase, HeadBlankAnswersReplayTheSameSkolemMints) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\nc p d .\n").ok());
  Query q = Q(&dict,
              "head: ?X knows _:w .\n"
              "body: ?X p ?Y .\n");
  Result<std::vector<Graph>> first = db.PreAnswer(q);
  ASSERT_TRUE(first.ok());
  // The cached replay must carry the very same minted blank ids.
  Result<std::vector<Graph>> second = db.PreAnswer(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  Result<std::vector<Graph>> scratch = db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(*first, *scratch);
  EXPECT_GE(db.CollectStats().views.hits, 1u);
}

TEST(ViewCacheDatabase, BulkLoadResetClearsTheCache) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\n").ok());
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n");
  ASSERT_TRUE(db.PreAnswer(q).ok());
  ASSERT_EQ(db.CollectStats().views.entries, 1u);

  // A bulk insert larger than half the closure drops the closure
  // incarnation; the view cache must go with it (version counters
  // restart) and the next answers must still be correct.
  std::vector<Triple> bulk;
  for (int i = 0; i < 64; ++i) {
    bulk.emplace_back(dict.Iri("n" + std::to_string(i)), dict.Iri("p"),
                      dict.Iri("n" + std::to_string(i + 1)));
  }
  db.InsertGraph(Graph(std::move(bulk)));
  DatabaseStats mid = db.CollectStats();
  EXPECT_GE(mid.views.clears, 1u);
  EXPECT_EQ(mid.views.entries, 0u);

  Result<std::vector<Graph>> cached = db.PreAnswer(q);
  ASSERT_TRUE(cached.ok());
  Result<std::vector<Graph>> scratch = db.evaluator()->PreAnswer(q, db.graph());
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(*cached, *scratch);
  EXPECT_EQ(cached->size(), 65u);
}

TEST(ViewCacheDatabase, AnswerUnionSharesThePreAnswerMaterialization) {
  Dictionary dict;
  Database db(&dict, EagerViews());
  ASSERT_TRUE(db.InsertText("a p b .\nb p c .\n").ok());
  Query q = Q(&dict,
              "head: ?X r ?Y .\n"
              "body: ?X p ?Y .\n");
  ASSERT_TRUE(db.PreAnswer(q).ok());  // materializes the view
  ASSERT_TRUE(db.AnswerUnion(q).ok());
  ASSERT_TRUE(db.AnswerMerge(q).ok());
  // Both answer forms were served from the one materialization.
  EXPECT_GE(db.CollectStats().views.hits, 2u);
}

// ---------------------------------------------------------------------------
// Union queries through the database (parallel fan-out, pinned merge)

TEST(ViewCacheDatabase, UnionQueryMatchesSequentialAtAnyWorkerCount) {
  Dictionary dict;
  Dictionary dict_par;
  std::string text =
      "a p b .\nb p c .\nc q d .\na sc b .\nb sc c .\nx type a .\n";
  auto build_union = [](Dictionary* d) {
    UnionQuery out;
    out.branches.push_back(Q(d,
                             "head: ?X r ?Y .\n"
                             "body: ?X p ?Y .\n"));
    out.branches.push_back(Q(d,
                             "head: ?X r ?Z .\n"
                             "body: ?X p ?Y .\nbody: ?Y q ?Z .\n"));
    out.branches.push_back(Q(d,
                             "head: ?X anc ?Z .\n"
                             "body: ?X sc ?Z .\n"));
    out.branches.push_back(Q(d,
                             "head: ?X madeOf _:stuff .\n"
                             "body: ?X type ?Y .\n"));
    return out;
  };

  Database seq(&dict, EagerViews());
  ASSERT_TRUE(seq.InsertText(text).ok());
  Result<std::vector<Graph>> sequential = seq.PreAnswer(build_union(&dict));
  ASSERT_TRUE(sequential.ok());

  ThreadPool pool(4);
  EvalOptions par_options = EagerViews();
  par_options.match.pool = &pool;
  Database par(&dict_par, par_options);
  ASSERT_TRUE(par.InsertText(text).ok());
  Result<std::vector<Graph>> parallel = par.PreAnswer(build_union(&dict_par));
  ASSERT_TRUE(parallel.ok());

  // Same dictionaries interned the same text in the same order, so the
  // graphs must be bit-identical across worker counts.
  EXPECT_EQ(*sequential, *parallel);
  // And re-asking hits the views built on the first pass.
  Result<std::vector<Graph>> again = par.PreAnswer(build_union(&dict_par));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*parallel, *again);
  EXPECT_GE(par.CollectStats().views.hits, 3u);
}

TEST(UnionQueryParallel, FreeFunctionMatchesSequentialBitForBit) {
  // Twin dictionaries interning the same text in the same order, so
  // minted blank ids are comparable across the two runs.
  const std::string data_text = "a p b .\nb p c .\na sc b .\nx type a .\n";
  auto build_union = [](Dictionary* d) {
    UnionQuery out;
    out.branches.push_back(Q(d,
                             "head: ?X r ?Y .\n"
                             "body: ?X p ?Y .\n"));
    out.branches.push_back(Q(d,
                             "head: ?X anc ?Y .\n"
                             "body: ?X sc ?Y .\n"));
    out.branches.push_back(Q(d,
                             "head: ?X has _:thing .\n"
                             "body: ?X type ?Y .\n"));
    return out;
  };

  Dictionary dict_seq;
  Graph data_seq = swdb::testing::Data(&dict_seq, data_text);
  QueryEvaluator seq_eval(&dict_seq);
  Result<std::vector<Graph>> sequential =
      PreAnswerUnionQuery(&seq_eval, build_union(&dict_seq), data_seq);
  ASSERT_TRUE(sequential.ok());

  Dictionary dict_par;
  Graph data_par = swdb::testing::Data(&dict_par, data_text);
  ThreadPool pool(4);
  EvalOptions options;
  options.match.pool = &pool;
  QueryEvaluator par_eval(&dict_par, options);
  Result<std::vector<Graph>> parallel =
      PreAnswerUnionQuery(&par_eval, build_union(&dict_par), data_par);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*sequential, *parallel);

  Result<Graph> union_graph =
      AnswerUnionQuery(&par_eval, build_union(&dict_par), data_par);
  ASSERT_TRUE(union_graph.ok());
  Graph expected;
  for (const Graph& g : *parallel) expected.InsertAll(g);
  EXPECT_EQ(*union_graph, expected);
}

// ---------------------------------------------------------------------------
// Soundness fuzz: cached == from-scratch after every mutation

std::vector<Term> Universe(Dictionary* dict) {
  return {
      dict->Iri("u:a"), dict->Iri("u:b"), dict->Iri("u:c"),
      dict->Iri("u:d"), dict->Iri("u:p"), dict->Iri("u:q"),
      dict->Iri("u:x"), dict->Blank("uB1"), dict->Blank("uB2"),
  };
}

Triple RandomTriple(const std::vector<Term>& universe, Rng* rng,
                    double schema_bias) {
  for (;;) {
    Term s = universe[rng->Below(universe.size())];
    Term o = universe[rng->Below(universe.size())];
    Term p;
    if (rng->Next() % 100 < static_cast<uint64_t>(schema_bias * 100)) {
      p = vocab::kAll[rng->Below(vocab::kReservedIris)];
    } else {
      p = universe[rng->Below(universe.size())];
    }
    Triple t(s, p, o);
    if (t.IsWellFormedData()) return t;
  }
}

std::vector<Query> FuzzQueries(Dictionary* dict) {
  std::vector<Query> queries;
  queries.push_back(Q(dict,
                      "head: ?X hasP ?Y .\n"
                      "body: ?X u:p ?Y .\n"));
  queries.push_back(Q(dict,
                      "head: ?X twoStep ?Z .\n"
                      "body: ?X u:p ?Y .\nbody: ?Y u:p ?Z .\n"));
  queries.push_back(Q(dict,
                      "head: ?X selfLoop ?X .\n"
                      "body: ?X ?P ?X .\n"));
  queries.push_back(Q(dict,
                      "head: ?X below ?Y .\n"
                      "body: ?X sc ?Y .\n"));
  // Head blank: Skolem replay must be exact.
  queries.push_back(Q(dict,
                      "head: ?X madeOf _:m .\n"
                      "body: ?X u:q ?Y .\n"));
  // Constraint: blank-valued matchings must stay filtered after patches.
  queries.push_back(Q(dict,
                      "head: ?X seen ?Y .\n"
                      "body: ?X ?P ?Y .\n"
                      "bind: ?Y\n"));
  // Symmetric body over a variable predicate: patch seeds bind
  // variables to blank nf nodes, whose images must stay pinned (the
  // matcher would otherwise remap the blank and admit a matching whose
  // image is not in nf).
  queries.push_back(Q(dict,
                      "head: ?X mutual ?Y .\n"
                      "body: ?X ?P ?Y .\n"
                      "body: ?Y ?P ?X .\n"));
  return queries;
}

TEST(ViewCacheFuzz, CachedEqualsFromScratchAcrossInterleavedMutations) {
  // >= 200 interleaved mutations across seeds (ISSUE 8 acceptance).
  constexpr uint64_t kSeeds = 4;
  constexpr int kMutations = 60;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Dictionary dict;
    Rng rng(seed * 7919);
    Database db(&dict, EagerViews());
    std::vector<Term> universe = Universe(&dict);
    std::vector<Query> queries = FuzzQueries(&dict);

    // Seed data so early queries have answers.
    for (int i = 0; i < 12; ++i) {
      db.Insert(RandomTriple(universe, &rng, 0.4));
    }

    for (int step = 0; step < kMutations; ++step) {
      // Interleave: ~2/3 inserts, ~1/3 erases of a present triple.
      if (rng.Next() % 3 != 0 || db.size() == 0) {
        db.Insert(RandomTriple(universe, &rng, 0.4));
      } else {
        const std::vector<Triple> triples = db.graph().triples();
        db.Erase(triples[rng.Below(triples.size())]);
      }
      for (const Query& q : queries) {
        Result<std::vector<Graph>> cached = db.PreAnswer(q);
        ASSERT_TRUE(cached.ok()) << cached.status().ToString();
        Result<std::vector<Graph>> scratch =
            db.evaluator()->PreAnswer(q, db.graph());
        ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
        ASSERT_EQ(*cached, *scratch)
            << "seed " << seed << " step " << step << ": cached PreAnswer "
            << "diverged from from-scratch evaluation";
      }
    }

    // The run must actually have exercised the cache paths it claims to
    // test: views were served, patched, and fenced.
    DatabaseStats stats = db.CollectStats();
    EXPECT_GT(stats.views.hits, 0u) << "seed " << seed;
    EXPECT_GT(stats.views.installs, 0u) << "seed " << seed;
    EXPECT_GT(stats.views.patches + stats.views.revalidations, 0u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace swdb
