// Entailment regression cases in the style of the W3C RDF Semantics
// test suite, restricted to the paper's fragment (no literals, the
// rdfsV vocabulary only). Each case is a (premise graph, conclusion
// graph, expected) triple checked through RdfsEntails and cross-checked
// against the canonical-model semantics.

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "model/canonical.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

struct EntailmentCase {
  const char* name;
  const char* premise;
  const char* conclusion;
  bool entailed;
};

const EntailmentCase kCases[] = {
    {"subclass-lifting",
     "a sc b .\nx type a .",
     "x type b .", true},
    {"subclass-is-not-symmetric",
     "a sc b .\nx type b .",
     "x type a .", false},
    {"subclass-transitivity",
     "a sc b .\nb sc c .",
     "a sc c .", true},
    {"subclass-reflexivity-of-mentioned-class",
     "a sc b .",
     "a sc a .", true},
    {"no-reflexivity-for-unmentioned-terms",
     "a sc b .",
     "z sc z .", false},
    {"subproperty-use-lifting",
     "p sp q .\nx p y .",
     "x q y .", true},
    {"subproperty-not-backwards",
     "p sp q .\nx q y .",
     "x p y .", false},
    {"domain-typing",
     "p dom c .\nx p y .",
     "x type c .", true},
    {"domain-does-not-type-objects",
     "p dom c .\nx p y .",
     "y type c .", false},
    {"range-typing",
     "p range c .\nx p y .",
     "y type c .", true},
    {"domain-through-subproperty",
     "q dom c .\np sp q .\nx p y .",
     "x type c .", true},
    {"range-through-subproperty-chain",
     "r range c .\nq sp r .\np sp q .\nx p y .",
     "y type c .", true},
    {"blank-node-generalization",
     "x p y .",
     "_:B p y .", true},
    {"blank-node-is-existential-not-universal",
     "_:B p y .",
     "x p y .", false},
    {"shared-blank-requires-one-witness",
     "x p y .\nx q z .",
     "_:B p y .\n_:B q z .", true},
    {"split-witnesses-do-not-join",
     "x p y .\nw q z .",
     "_:B p y .\n_:B q z .", false},
    {"vocabulary-tautology",
     "x p y .",
     "type sp type .", true},
    {"predicate-reflexive-sp",
     "x p y .",
     "p sp p .", true},
    {"dom-subject-becomes-property",
     "p dom c .",
     "p sp p .", true},
    {"dom-object-becomes-class",
     "p dom c .",
     "c sc c .", true},
    {"type-object-becomes-class",
     "x type c .",
     "c sc c .", true},
    {"typing-is-not-instantiation",
     "x type c .",
     "c type x .", false},
    {"combined-schema-inference",
     "painter sc artist .\npaints sp creates .\ncreates dom artist .\n"
     "paints range painting .\npicasso paints guernica .",
     "picasso creates guernica .\npicasso type artist .\n"
     "guernica type painting .", true},
    {"no-spurious-cross-typing",
     "p dom c .\nq dom d .\nx p y .",
     "x type d .", false},
    {"blank-as-property-via-marin",
     "p sp _:Q .\n_:Q dom c .\nx p y .",
     "x type c .", true},
    {"sc-cycle-makes-equivalent-classes",
     "a sc b .\nb sc a .\nx type a .",
     "x type b .", true},
};

class EntailmentCases : public ::testing::TestWithParam<EntailmentCase> {};

TEST_P(EntailmentCases, DeductiveMatchesExpected) {
  const EntailmentCase& c = GetParam();
  Dictionary dict;
  Graph premise = Data(&dict, c.premise);
  Graph conclusion = Data(&dict, c.conclusion);
  EXPECT_EQ(RdfsEntails(premise, conclusion), c.entailed) << c.name;
}

TEST_P(EntailmentCases, SemanticsAgrees) {
  const EntailmentCase& c = GetParam();
  Dictionary dict;
  Graph premise = Data(&dict, c.premise);
  Graph conclusion = Data(&dict, c.conclusion);
  EXPECT_EQ(SemanticRdfsEntails(premise, conclusion, &dict), c.entailed)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fragment, EntailmentCases, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<EntailmentCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace swdb
