#include "query/union_query.h"

#include <gtest/gtest.h>

#include "query/containment.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

TEST(UnionQuery, AnswerIsUnionOfBranchAnswers) {
  Dictionary dict;
  Graph db = Data(&dict, "a p b .\nc q d .");
  UnionQuery u;
  u.branches.push_back(Q(&dict,
                         "head: ?X r1 ?Y .\n"
                         "body: ?X p ?Y .\n"));
  u.branches.push_back(Q(&dict,
                         "head: ?X r2 ?Y .\n"
                         "body: ?X q ?Y .\n"));
  QueryEvaluator eval(&dict);
  Result<Graph> ans = AnswerUnionQuery(&eval, u, db);
  ASSERT_TRUE(ans.ok());
  EXPECT_TRUE(ans->Contains(
      Triple(dict.Iri("a"), dict.Iri("r1"), dict.Iri("b"))));
  EXPECT_TRUE(ans->Contains(
      Triple(dict.Iri("c"), dict.Iri("r2"), dict.Iri("d"))));
}

TEST(UnionQuery, FromPremiseQueryMatchesDirectEvaluation) {
  // A UnionQuery built via Prop 5.9 answers like the original premise
  // query on ground databases.
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X p ?Y .\n"
              "body: ?X q ?Y .\nbody: ?Y t s .\n"
              "premise: a t s .\n");
  Result<UnionQuery> u = UnionQuery::FromPremiseQuery(q);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->branches.size(), 2u);
  Graph db = Data(&dict, "n1 q a .\nn2 q m .\nm t s .");
  QueryEvaluator eval(&dict);
  Result<Graph> direct = eval.AnswerUnion(q, db);
  Result<Graph> expanded = AnswerUnionQuery(&eval, *u, db);
  ASSERT_TRUE(direct.ok() && expanded.ok());
  EXPECT_EQ(*direct, *expanded);
}

TEST(UnionQuery, PreAnswersAreDeduplicated) {
  Dictionary dict;
  Graph db = Data(&dict, "a p b .");
  Query same = Q(&dict,
                 "head: ?X r ?Y .\n"
                 "body: ?X p ?Y .\n");
  UnionQuery u;
  u.branches.push_back(same);
  u.branches.push_back(same);
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = PreAnswerUnionQuery(&eval, u, db);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->size(), 1u);
}

TEST(UnionQuery, Prop511ContainmentNeedsAllBranches) {
  Dictionary dict;
  Query narrow = Q(&dict,
                   "head: ?X sel ?Y .\n"
                   "body: ?X p ?Y .\nbody: ?Y t s .\n");
  Query other = Q(&dict,
                  "head: ?X sel ?Y .\n"
                  "body: ?X q ?Y .\n");
  Query broad = Q(&dict,
                  "head: ?X sel ?Y .\n"
                  "body: ?X p ?Y .\n");
  // narrow ⊑ broad, but (narrow ∪ other) ⋢ broad.
  UnionQuery just_narrow = UnionQuery::Of(narrow);
  UnionQuery both;
  both.branches = {narrow, other};
  Result<bool> one =
      UnionContainedStandardSimple(just_narrow, broad, &dict);
  Result<bool> two = UnionContainedStandardSimple(both, broad, &dict);
  ASSERT_TRUE(one.ok() && two.ok());
  EXPECT_TRUE(*one);
  EXPECT_FALSE(*two);
}

TEST(UnionQuery, EntailmentVariantAgreesOnSimpleBranches) {
  Dictionary dict;
  Query narrow = Q(&dict,
                   "head: ?X sel ?Y .\n"
                   "body: ?X p ?Y .\nbody: ?Y t s .\n");
  Query broad = Q(&dict,
                  "head: ?X sel ?Y .\n"
                  "body: ?X p ?Y .\n");
  UnionQuery u = UnionQuery::Of(narrow);
  Result<bool> m = UnionContainedEntailmentSimple(u, broad, &dict);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(*m);
}

TEST(UnionQuery, ValidateChecksEveryBranch) {
  Dictionary dict;
  UnionQuery u;
  u.branches.push_back(Q(&dict,
                         "head: ?X r ?Y .\n"
                         "body: ?X p ?Y .\n"));
  Query bad;
  bad.head = Graph{Triple(dict.Var("Z"), dict.Iri("r"), dict.Iri("a"))};
  u.branches.push_back(bad);  // head var not in body
  EXPECT_FALSE(u.Validate().ok());
}

}  // namespace
}  // namespace swdb
