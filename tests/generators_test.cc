#include "gen/generators.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "cq/cq.h"
#include "inference/closure.h"
#include "query/answer.h"
#include "query/view_key.h"

namespace swdb {
namespace {

TEST(Generators, RandomSimpleGraphIsDeterministicPerSeed) {
  Dictionary d1;
  Dictionary d2;
  Rng r1(42);
  Rng r2(42);
  RandomGraphSpec spec;
  Graph g1 = RandomSimpleGraph(spec, &d1, &r1);
  Graph g2 = RandomSimpleGraph(spec, &d2, &r2);
  EXPECT_EQ(g1, g2);
}

TEST(Generators, RandomSimpleGraphRespectsSpec) {
  Dictionary dict;
  Rng rng(9);
  RandomGraphSpec spec;
  spec.num_nodes = 10;
  spec.num_triples = 50;
  spec.num_predicates = 3;
  spec.blank_ratio = 0;
  Graph g = RandomSimpleGraph(spec, &dict, &rng);
  EXPECT_LE(g.size(), 50u);  // duplicates collapse
  EXPECT_GT(g.size(), 20u);
  EXPECT_TRUE(g.IsGround());
  EXPECT_TRUE(g.IsSimple());
}

TEST(Generators, ScChainShape) {
  Dictionary dict;
  Graph g = ScChain(5, &dict);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.CountMatches(std::nullopt, vocab::kSc, std::nullopt), 5u);
}

TEST(Generators, SpChainWithUsesShape) {
  Dictionary dict;
  Graph g = SpChainWithUses(4, 3, &dict);
  EXPECT_EQ(g.CountMatches(std::nullopt, vocab::kSp, std::nullopt), 4u);
  EXPECT_EQ(g.size(), 7u);
  // Closure propagates every use up the chain.
  Graph cl = RdfsClosure(g);
  Term top = dict.Iri("urn:sp4");
  EXPECT_EQ(cl.CountMatches(std::nullopt, top, std::nullopt), 3u);
}

TEST(Generators, SchemaWorkloadIsAcyclicAndWellFormed) {
  Dictionary dict;
  Rng rng(3);
  SchemaWorkloadSpec spec;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  EXPECT_TRUE(g.IsWellFormedData());
  EXPECT_GT(g.CountMatches(std::nullopt, vocab::kSc, std::nullopt), 0u);
  EXPECT_GT(g.CountMatches(std::nullopt, vocab::kDom, std::nullopt), 0u);
}

TEST(Generators, BlankChainHasNoCycle) {
  Dictionary dict;
  Graph chain = BlankChain(10, dict.Iri("p"), &dict);
  EXPECT_FALSE(HasBlankInducedCycle(chain));
  EXPECT_EQ(chain.size(), 10u);
  Graph cycle = BlankCycle(10, dict.Iri("p"), &dict);
  EXPECT_TRUE(HasBlankInducedCycle(cycle));
  EXPECT_EQ(cycle.size(), 10u);
}

TEST(Generators, PatternQueryAlwaysMatchesItsSource) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 8;
    spec.num_triples = 15;
    spec.blank_ratio = 0.2;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 3, 0.5, &dict, &rng);
    ASSERT_TRUE(q.Validate().ok()) << q.Validate().ToString();
    QueryEvaluator eval(&dict);
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, data);
    ASSERT_TRUE(pre.ok());
    EXPECT_FALSE(pre->empty()) << "round " << round;
  }
}

TEST(Generators, EquivalentMutationPreservesEquivalence) {
  Rng rng(31);
  for (int round = 0; round < 5; ++round) {
    Dictionary dict;
    SchemaWorkloadSpec spec;
    spec.num_classes = 4;
    spec.num_properties = 3;
    spec.num_instances = 4;
    spec.num_facts = 6;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Graph mutated = EquivalentMutation(g, 5, &dict, &rng);
    EXPECT_TRUE(RdfsEquivalent(g, mutated)) << "round " << round;
    EXPECT_GE(mutated.size(), g.size());
  }
}

TEST(Generators, OverlappingQueryMixShapeAndValidity) {
  Rng rng(47);
  Dictionary dict;
  RandomGraphSpec gspec;
  gspec.num_nodes = 30;
  gspec.num_triples = 80;
  gspec.blank_ratio = 0.0;
  Graph data = RandomSimpleGraph(gspec, &dict, &rng);
  QueryMixSpec spec;
  spec.num_families = 4;
  spec.queries_per_family = 6;
  spec.prefix_size = 2;
  spec.suffix_size = 2;
  std::vector<Query> mix = OverlappingQueryMix(data, spec, &dict, &rng);
  ASSERT_EQ(mix.size(), 24u);
  QueryEvaluator eval(&dict);
  for (size_t i = 0; i < mix.size(); ++i) {
    const Query& q = mix[i];
    ASSERT_TRUE(q.Validate().ok()) << i << ": " << q.Validate().ToString();
    EXPECT_TRUE(q.premise.empty());
    EXPECT_EQ(q.head.triples(), q.body.triples());
    EXPECT_GE(q.body.size(), spec.prefix_size);
    // Every query matches its source graph somewhere.
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, data);
    ASSERT_TRUE(pre.ok()) << i;
    EXPECT_FALSE(pre->empty()) << i;
  }
}

TEST(Generators, OverlappingQueryMixContainsIsomorphicRespellings) {
  Rng rng(48);
  Dictionary dict;
  RandomGraphSpec gspec;
  gspec.num_nodes = 25;
  gspec.num_triples = 60;
  gspec.blank_ratio = 0.0;
  Graph data = RandomSimpleGraph(gspec, &dict, &rng);
  QueryMixSpec spec;
  spec.num_families = 6;
  spec.queries_per_family = 8;
  spec.isomorphic_fraction = 0.5;
  std::vector<Query> mix = OverlappingQueryMix(data, spec, &dict, &rng);
  // Group by canonical ViewKey: with a 0.5 respelling fraction some
  // queries must collapse onto an earlier variant's key, and distinct
  // suffixes must keep the mix from collapsing to one key per family.
  std::unordered_map<ViewKey, size_t, ViewKeyHash> groups;
  for (const Query& q : mix) ++groups[MakeViewKey(q)];
  EXPECT_LT(groups.size(), mix.size());
  EXPECT_GT(groups.size(), spec.num_families);
}

}  // namespace
}  // namespace swdb
