#include "gen/generators.h"

#include <gtest/gtest.h>

#include "cq/cq.h"
#include "inference/closure.h"
#include "query/answer.h"

namespace swdb {
namespace {

TEST(Generators, RandomSimpleGraphIsDeterministicPerSeed) {
  Dictionary d1;
  Dictionary d2;
  Rng r1(42);
  Rng r2(42);
  RandomGraphSpec spec;
  Graph g1 = RandomSimpleGraph(spec, &d1, &r1);
  Graph g2 = RandomSimpleGraph(spec, &d2, &r2);
  EXPECT_EQ(g1, g2);
}

TEST(Generators, RandomSimpleGraphRespectsSpec) {
  Dictionary dict;
  Rng rng(9);
  RandomGraphSpec spec;
  spec.num_nodes = 10;
  spec.num_triples = 50;
  spec.num_predicates = 3;
  spec.blank_ratio = 0;
  Graph g = RandomSimpleGraph(spec, &dict, &rng);
  EXPECT_LE(g.size(), 50u);  // duplicates collapse
  EXPECT_GT(g.size(), 20u);
  EXPECT_TRUE(g.IsGround());
  EXPECT_TRUE(g.IsSimple());
}

TEST(Generators, ScChainShape) {
  Dictionary dict;
  Graph g = ScChain(5, &dict);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.CountMatches(std::nullopt, vocab::kSc, std::nullopt), 5u);
}

TEST(Generators, SpChainWithUsesShape) {
  Dictionary dict;
  Graph g = SpChainWithUses(4, 3, &dict);
  EXPECT_EQ(g.CountMatches(std::nullopt, vocab::kSp, std::nullopt), 4u);
  EXPECT_EQ(g.size(), 7u);
  // Closure propagates every use up the chain.
  Graph cl = RdfsClosure(g);
  Term top = dict.Iri("urn:sp4");
  EXPECT_EQ(cl.CountMatches(std::nullopt, top, std::nullopt), 3u);
}

TEST(Generators, SchemaWorkloadIsAcyclicAndWellFormed) {
  Dictionary dict;
  Rng rng(3);
  SchemaWorkloadSpec spec;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  EXPECT_TRUE(g.IsWellFormedData());
  EXPECT_GT(g.CountMatches(std::nullopt, vocab::kSc, std::nullopt), 0u);
  EXPECT_GT(g.CountMatches(std::nullopt, vocab::kDom, std::nullopt), 0u);
}

TEST(Generators, BlankChainHasNoCycle) {
  Dictionary dict;
  Graph chain = BlankChain(10, dict.Iri("p"), &dict);
  EXPECT_FALSE(HasBlankInducedCycle(chain));
  EXPECT_EQ(chain.size(), 10u);
  Graph cycle = BlankCycle(10, dict.Iri("p"), &dict);
  EXPECT_TRUE(HasBlankInducedCycle(cycle));
  EXPECT_EQ(cycle.size(), 10u);
}

TEST(Generators, PatternQueryAlwaysMatchesItsSource) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 8;
    spec.num_triples = 15;
    spec.blank_ratio = 0.2;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 3, 0.5, &dict, &rng);
    ASSERT_TRUE(q.Validate().ok()) << q.Validate().ToString();
    QueryEvaluator eval(&dict);
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, data);
    ASSERT_TRUE(pre.ok());
    EXPECT_FALSE(pre->empty()) << "round " << round;
  }
}

TEST(Generators, EquivalentMutationPreservesEquivalence) {
  Rng rng(31);
  for (int round = 0; round < 5; ++round) {
    Dictionary dict;
    SchemaWorkloadSpec spec;
    spec.num_classes = 4;
    spec.num_properties = 3;
    spec.num_instances = 4;
    spec.num_facts = 6;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Graph mutated = EquivalentMutation(g, 5, &dict, &rng);
    EXPECT_TRUE(RdfsEquivalent(g, mutated)) << "round " << round;
    EXPECT_GE(mutated.size(), g.size());
  }
}

}  // namespace
}  // namespace swdb
