#include "gen/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cq/cq.h"
#include "gen/sp2b.h"
#include "inference/closure.h"
#include "query/answer.h"
#include "query/view_key.h"

namespace swdb {
namespace {

TEST(Generators, RandomSimpleGraphIsDeterministicPerSeed) {
  Dictionary d1;
  Dictionary d2;
  Rng r1(42);
  Rng r2(42);
  RandomGraphSpec spec;
  Graph g1 = RandomSimpleGraph(spec, &d1, &r1);
  Graph g2 = RandomSimpleGraph(spec, &d2, &r2);
  EXPECT_EQ(g1, g2);
}

TEST(Generators, RandomSimpleGraphRespectsSpec) {
  Dictionary dict;
  Rng rng(9);
  RandomGraphSpec spec;
  spec.num_nodes = 10;
  spec.num_triples = 50;
  spec.num_predicates = 3;
  spec.blank_ratio = 0;
  Graph g = RandomSimpleGraph(spec, &dict, &rng);
  EXPECT_LE(g.size(), 50u);  // duplicates collapse
  EXPECT_GT(g.size(), 20u);
  EXPECT_TRUE(g.IsGround());
  EXPECT_TRUE(g.IsSimple());
}

TEST(Generators, ScChainShape) {
  Dictionary dict;
  Graph g = ScChain(5, &dict);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.CountMatches(std::nullopt, vocab::kSc, std::nullopt), 5u);
}

TEST(Generators, SpChainWithUsesShape) {
  Dictionary dict;
  Graph g = SpChainWithUses(4, 3, &dict);
  EXPECT_EQ(g.CountMatches(std::nullopt, vocab::kSp, std::nullopt), 4u);
  EXPECT_EQ(g.size(), 7u);
  // Closure propagates every use up the chain.
  Graph cl = RdfsClosure(g);
  Term top = dict.Iri("urn:sp4");
  EXPECT_EQ(cl.CountMatches(std::nullopt, top, std::nullopt), 3u);
}

TEST(Generators, SchemaWorkloadIsAcyclicAndWellFormed) {
  Dictionary dict;
  Rng rng(3);
  SchemaWorkloadSpec spec;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  EXPECT_TRUE(g.IsWellFormedData());
  EXPECT_GT(g.CountMatches(std::nullopt, vocab::kSc, std::nullopt), 0u);
  EXPECT_GT(g.CountMatches(std::nullopt, vocab::kDom, std::nullopt), 0u);
}

TEST(Generators, BlankChainHasNoCycle) {
  Dictionary dict;
  Graph chain = BlankChain(10, dict.Iri("p"), &dict);
  EXPECT_FALSE(HasBlankInducedCycle(chain));
  EXPECT_EQ(chain.size(), 10u);
  Graph cycle = BlankCycle(10, dict.Iri("p"), &dict);
  EXPECT_TRUE(HasBlankInducedCycle(cycle));
  EXPECT_EQ(cycle.size(), 10u);
}

TEST(Generators, PatternQueryAlwaysMatchesItsSource) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 8;
    spec.num_triples = 15;
    spec.blank_ratio = 0.2;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 3, 0.5, &dict, &rng);
    ASSERT_TRUE(q.Validate().ok()) << q.Validate().ToString();
    QueryEvaluator eval(&dict);
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, data);
    ASSERT_TRUE(pre.ok());
    EXPECT_FALSE(pre->empty()) << "round " << round;
  }
}

TEST(Generators, EquivalentMutationPreservesEquivalence) {
  Rng rng(31);
  for (int round = 0; round < 5; ++round) {
    Dictionary dict;
    SchemaWorkloadSpec spec;
    spec.num_classes = 4;
    spec.num_properties = 3;
    spec.num_instances = 4;
    spec.num_facts = 6;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Graph mutated = EquivalentMutation(g, 5, &dict, &rng);
    EXPECT_TRUE(RdfsEquivalent(g, mutated)) << "round " << round;
    EXPECT_GE(mutated.size(), g.size());
  }
}

TEST(Generators, OverlappingQueryMixShapeAndValidity) {
  Rng rng(47);
  Dictionary dict;
  RandomGraphSpec gspec;
  gspec.num_nodes = 30;
  gspec.num_triples = 80;
  gspec.blank_ratio = 0.0;
  Graph data = RandomSimpleGraph(gspec, &dict, &rng);
  QueryMixSpec spec;
  spec.num_families = 4;
  spec.queries_per_family = 6;
  spec.prefix_size = 2;
  spec.suffix_size = 2;
  std::vector<Query> mix = OverlappingQueryMix(data, spec, &dict, &rng);
  ASSERT_EQ(mix.size(), 24u);
  QueryEvaluator eval(&dict);
  for (size_t i = 0; i < mix.size(); ++i) {
    const Query& q = mix[i];
    ASSERT_TRUE(q.Validate().ok()) << i << ": " << q.Validate().ToString();
    EXPECT_TRUE(q.premise.empty());
    EXPECT_EQ(q.head.triples(), q.body.triples());
    EXPECT_GE(q.body.size(), spec.prefix_size);
    // Every query matches its source graph somewhere.
    Result<std::vector<Graph>> pre = eval.PreAnswer(q, data);
    ASSERT_TRUE(pre.ok()) << i;
    EXPECT_FALSE(pre->empty()) << i;
  }
}

TEST(Generators, OverlappingQueryMixContainsIsomorphicRespellings) {
  Rng rng(48);
  Dictionary dict;
  RandomGraphSpec gspec;
  gspec.num_nodes = 25;
  gspec.num_triples = 60;
  gspec.blank_ratio = 0.0;
  Graph data = RandomSimpleGraph(gspec, &dict, &rng);
  QueryMixSpec spec;
  spec.num_families = 6;
  spec.queries_per_family = 8;
  spec.isomorphic_fraction = 0.5;
  std::vector<Query> mix = OverlappingQueryMix(data, spec, &dict, &rng);
  // Group by canonical ViewKey: with a 0.5 respelling fraction some
  // queries must collapse onto an earlier variant's key, and distinct
  // suffixes must keep the mix from collapsing to one key per family.
  std::unordered_map<ViewKey, size_t, ViewKeyHash> groups;
  for (const Query& q : mix) ++groups[MakeViewKey(q)];
  EXPECT_LT(groups.size(), mix.size());
  EXPECT_GT(groups.size(), spec.num_families);
}

// ---------------------------------------------------------------------
// sp2b: the SP²Bench-style DBLP-shaped serving corpus.

Sp2bSpec SmallSp2b(uint64_t target, uint64_t seed) {
  Sp2bSpec spec;
  spec.target_triples = target;
  spec.seed = seed;
  return spec;
}

TEST(Sp2b, SameSeedSameCorpusAndStream) {
  Dictionary d1, d2;
  Sp2bGenerator g1(SmallSp2b(10000, 5), &d1);
  Sp2bGenerator g2(SmallSp2b(10000, 5), &d2);
  EXPECT_EQ(g1.GenerateCorpus(), g2.GenerateCorpus());
  // The writer stream continues deterministically too.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(g1.NextPublications(500), g2.NextPublications(500));
  }
  EXPECT_EQ(g1.triples_emitted(), g2.triples_emitted());
  EXPECT_EQ(g1.authors().size(), g2.authors().size());
}

TEST(Sp2b, DifferentSeedsDiffer) {
  Dictionary d1, d2;
  Sp2bGenerator g1(SmallSp2b(10000, 5), &d1);
  Sp2bGenerator g2(SmallSp2b(10000, 6), &d2);
  EXPECT_NE(g1.GenerateCorpus(), g2.GenerateCorpus());
}

TEST(Sp2b, HitsTripleTargetWithinOnePercent) {
  for (const uint64_t target : {uint64_t{10000}, uint64_t{100000}}) {
    Dictionary dict;
    Sp2bGenerator gen(SmallSp2b(target, 1), &dict);
    const Graph corpus = gen.GenerateCorpus();
    EXPECT_GE(corpus.size(), target);
    EXPECT_LE(corpus.size(), target + target / 100)
        << "overshoot above 1% at target " << target;
    // The emitted stream had no duplicate triples.
    EXPECT_EQ(corpus.size(), gen.triples_emitted());
  }
}

TEST(Sp2b, MaxAuthorDegreeGrowsWithCorpusSize) {
  auto max_degree = [](uint64_t target) {
    Dictionary dict;
    Sp2bGenerator gen(SmallSp2b(target, 1), &dict);
    const Graph corpus = gen.GenerateCorpus();
    const Sp2bVocab& v = gen.vocab();
    std::unordered_map<Term, size_t> degree;
    for (const Triple& t : corpus) {
      if (t.p == v.creator || t.p == v.first_author) degree[t.o] += 1;
    }
    size_t best = 0;
    for (const auto& [author, d] : degree) best = std::max(best, d);
    return best;
  };
  const size_t at_10k = max_degree(10000);
  const size_t at_100k = max_degree(100000);
  // Preferential attachment: the most prolific author's degree must
  // keep growing with corpus size (a uniform-attachment corpus would
  // plateau near the mean).
  EXPECT_GT(at_10k, 10u);
  EXPECT_GT(at_100k, 2 * at_10k);
}

TEST(Sp2b, NoDanglingCitationsAndWellFormed) {
  for (const uint64_t target : {uint64_t{10000}, uint64_t{100000}}) {
    Dictionary dict;
    Sp2bGenerator gen(SmallSp2b(target, 3), &dict);
    const Graph corpus = gen.GenerateCorpus();
    const Sp2bVocab& v = gen.vocab();
    std::unordered_set<Term> papers;
    for (const Triple& t : corpus) {
      ASSERT_TRUE(t.IsWellFormedData());
      if (t.p == vocab::kType &&
          (t.o == v.article || t.o == v.inproceedings)) {
        papers.insert(t.s);
      }
    }
    EXPECT_EQ(papers.size(), gen.papers().size());
    size_t citations = 0;
    for (const Triple& t : corpus) {
      if (t.p != v.references) continue;
      ++citations;
      ASSERT_TRUE(papers.count(t.s)) << "citation from a non-paper";
      ASSERT_TRUE(papers.count(t.o)) << "dangling citation target";
    }
    EXPECT_GT(citations, target / 20);
  }
}

TEST(Sp2b, StreamContinuesYearPartition) {
  Dictionary dict;
  Sp2bGenerator gen(SmallSp2b(5000, 7), &dict);
  (void)gen.GenerateCorpus();
  const uint32_t year_before = gen.current_year();
  EXPECT_GT(year_before, gen.spec().start_year);
  // New publications keep citing only already-existing papers.
  const size_t papers_before = gen.papers().size();
  const std::vector<Triple> delta = gen.NextPublications(2000);
  EXPECT_GE(delta.size(), 2000u);
  EXPECT_GE(gen.current_year(), year_before);
  EXPECT_GT(gen.papers().size(), papers_before);
  std::unordered_set<Term> all_papers(gen.papers().begin(),
                                      gen.papers().end());
  for (const Triple& t : delta) {
    if (t.p == gen.vocab().references) {
      EXPECT_TRUE(all_papers.count(t.o));
    }
  }
}

}  // namespace
}  // namespace swdb
