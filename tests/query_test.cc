#include "query/query.h"

#include <gtest/gtest.h>

#include "parser/text.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::G;
using swdb::testing::Q;

TEST(QueryValidate, AcceptsWellFormedQuery) {
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?A creates ?Y .\n"
              "body: ?A type Flemish .\n"
              "body: ?A paints ?Y .\n"
              "bind: ?A\n");
  EXPECT_TRUE(q.Validate().ok());
  EXPECT_EQ(q.head.size(), 1u);
  EXPECT_EQ(q.body.size(), 2u);
  EXPECT_EQ(q.constraints.size(), 1u);
}

TEST(QueryValidate, RejectsHeadVariableNotInBody) {
  Dictionary dict;
  Query q;
  q.head = G(&dict, "?X p ?Z .");
  q.body = G(&dict, "?X p ?Y .");
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidate, RejectsBlankInBody) {
  Dictionary dict;
  Query q;
  q.head = G(&dict, "?X p a .");
  q.body = Graph{Triple(dict.Var("X"), dict.Iri("p"), dict.Blank("B"))};
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidate, AllowsBlankInHead) {
  // Note 4.2: blank nodes are allowed in heads.
  Dictionary dict;
  Query q;
  q.head = Graph{Triple(dict.Blank("N"), dict.Iri("p"), dict.Var("X"))};
  q.body = G(&dict, "?X q b .");
  EXPECT_TRUE(q.Validate().ok()) << q.Validate().ToString();
}

TEST(QueryValidate, RejectsVariableInPremise) {
  Dictionary dict;
  Query q;
  q.head = G(&dict, "?X p a .");
  q.body = G(&dict, "?X p a .");
  q.premise = G(&dict, "?Y q b .");
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidate, RejectsConstraintNotInHead) {
  Dictionary dict;
  Query q;
  q.head = G(&dict, "?X p a .");
  q.body = G(&dict, "?X p ?Y .");
  q.constraints.push_back(dict.Var("Y"));  // in body but not head
  EXPECT_FALSE(q.Validate().ok());
}

TEST(QueryValidate, IdentityQueryIsValid) {
  Dictionary dict;
  Query q = Query::Identity(&dict);
  EXPECT_TRUE(q.Validate().ok());
  EXPECT_EQ(q.head, q.body);
}

TEST(QueryParse, PremiseAndBindSections) {
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?X relative Peter .\n"
              "body: ?X relative Peter .\n"
              "premise: son sp relative .\n");
  EXPECT_EQ(q.premise.size(), 1u);
  EXPECT_TRUE(
      q.premise.Contains(Triple(dict.Iri("son"), vocab::kSp,
                                dict.Iri("relative"))));
}

TEST(QueryParse, RoundTripThroughFormat) {
  Dictionary dict;
  Query q = Q(&dict,
              "head: ?A creates ?Y .\n"
              "body: ?A paints ?Y .\n"
              "body: ?Y exhibited Uffizi .\n"
              "premise: a b c .\n"
              "bind: ?A ?Y\n");
  std::string text = FormatQuery(q, dict);
  Result<Query> reparsed = ParseQuery(text, &dict);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->head, q.head);
  EXPECT_EQ(reparsed->body, q.body);
  EXPECT_EQ(reparsed->premise, q.premise);
  EXPECT_EQ(reparsed->constraints, q.constraints);
}

TEST(QueryParse, RejectsUnknownSection) {
  Dictionary dict;
  Result<Query> q = ParseQuery("frobnicate: a b c .", &dict);
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(QueryParse, RejectsInvalidQueries) {
  Dictionary dict;
  // Head variable missing from body.
  Result<Query> q = ParseQuery(
      "head: ?X p ?Z .\n"
      "body: ?X p b .\n",
      &dict);
  EXPECT_FALSE(q.ok());
}

TEST(FreezeVars, ConsistentAcrossGraphs) {
  Dictionary dict;
  Graph body = G(&dict, "?X p ?Y .");
  Graph head = G(&dict, "?X q ?Y .");
  TermMap freeze;
  Graph frozen_body = FreezeVariablesWith(body, &dict, &freeze);
  Graph frozen_head = FreezeVariablesWith(head, &dict, &freeze);
  EXPECT_TRUE(frozen_body.Variables().empty());
  EXPECT_TRUE(frozen_head.Variables().empty());
  // The same variable froze to the same constant in both graphs.
  Term fx = freeze.Apply(dict.Var("X"));
  EXPECT_TRUE(fx.IsIri());
  EXPECT_EQ(frozen_body.CountMatches(fx, std::nullopt, std::nullopt), 1u);
  EXPECT_EQ(frozen_head.CountMatches(fx, std::nullopt, std::nullopt), 1u);
}

}  // namespace
}  // namespace swdb
