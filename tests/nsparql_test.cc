// Nested path expressions (nSPARQL-style, [35] — same authors) and
// their headline property: RDFS inference can be captured by navigating
// the *raw* graph. We verify the navigational translations against this
// library's closure on hand-built and randomized schema workloads.

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "paths/path.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;

// The navigational type expression:
//   type/(sc)* | edge/(sp)*/dom/(sc)* | ^edge/(sp)*/range/(sc)*
PathExpr NavigationalType() {
  PathExpr sc_star = PathExpr::Star(PathExpr::Predicate(vocab::kSc));
  PathExpr sp_star = PathExpr::Star(PathExpr::Predicate(vocab::kSp));
  PathExpr by_type = PathExpr::Sequence(PathExpr::Predicate(vocab::kType),
                                        sc_star);
  PathExpr by_dom = PathExpr::Sequence(
      PathExpr::Sequence(
          PathExpr::Sequence(PathExpr::EdgeForward(), sp_star),
          PathExpr::Predicate(vocab::kDom)),
      PathExpr::Star(PathExpr::Predicate(vocab::kSc)));
  PathExpr by_range = PathExpr::Sequence(
      PathExpr::Sequence(
          PathExpr::Sequence(PathExpr::EdgeBackward(),
                             PathExpr::Star(PathExpr::Predicate(vocab::kSp))),
          PathExpr::Predicate(vocab::kRange)),
      PathExpr::Star(PathExpr::Predicate(vocab::kSc)));
  return PathExpr::Alternation(PathExpr::Alternation(by_type, by_dom),
                               by_range);
}

// The navigational edge step for predicate p:
//   next::[ (sp)* / self::p ]
PathExpr NavigationalEdge(Term p) {
  return PathExpr::PredTest(PathExpr::Sequence(
      PathExpr::Star(PathExpr::Predicate(vocab::kSp)), PathExpr::SelfIs(p)));
}

TEST(Nsparql, AnyForwardAndBackward) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\na q c .\nd r a .");
  std::vector<Term> fwd =
      EvalPathFrom(g, PathExpr::AnyForward(), {dict.Iri("a")});
  EXPECT_EQ(fwd.size(), 2u);
  std::vector<Term> bwd =
      EvalPathFrom(g, PathExpr::AnyBackward(), {dict.Iri("a")});
  ASSERT_EQ(bwd.size(), 1u);
  EXPECT_EQ(bwd[0], dict.Iri("d"));
}

TEST(Nsparql, EdgeAxes) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\na q c .");
  std::vector<Term> preds =
      EvalPathFrom(g, PathExpr::EdgeForward(), {dict.Iri("a")});
  EXPECT_EQ(preds.size(), 2u);
  std::vector<Term> in_preds =
      EvalPathFrom(g, PathExpr::EdgeBackward(), {dict.Iri("b")});
  ASSERT_EQ(in_preds.size(), 1u);
  EXPECT_EQ(in_preds[0], dict.Iri("p"));
}

TEST(Nsparql, SelfIsAndNodeTest) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\nc p d .");
  // Keep only nodes with an outgoing p edge ending at b.
  PathExpr test = PathExpr::NodeTest(PathExpr::Sequence(
      PathExpr::Predicate(dict.Iri("p")), PathExpr::SelfIs(dict.Iri("b"))));
  std::vector<Term> kept =
      EvalPathFrom(g, test, {dict.Iri("a"), dict.Iri("c")});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], dict.Iri("a"));
}

TEST(Nsparql, PredTestStepsViaSubproperties) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "son sp child .\n"
                 "child sp relative .\n"
                 "paul son peter .\n"
                 "mary child peter .\n"
                 "john knows peter .\n");
  // Navigational "relative" edge: steps via son and child but not knows.
  PathExpr nav = NavigationalEdge(dict.Iri("relative"));
  std::vector<Term> from_paul = EvalPathFrom(g, nav, {dict.Iri("paul")});
  ASSERT_EQ(from_paul.size(), 1u);
  EXPECT_EQ(from_paul[0], dict.Iri("peter"));
  std::vector<Term> from_john = EvalPathFrom(g, nav, {dict.Iri("john")});
  EXPECT_TRUE(from_john.empty());
}

TEST(Nsparql, NavigationalEdgeMatchesClosureEdge) {
  // The [35] property, edge form: stepping via next::[(sp)*/self::p] on
  // the RAW graph equals stepping via p on the CLOSURE.
  Rng rng(401);
  for (int round = 0; round < 8; ++round) {
    Dictionary dict;
    SchemaWorkloadSpec spec;
    spec.num_classes = 4;
    spec.num_properties = 4;
    spec.num_instances = 6;
    spec.num_facts = 10;
    spec.blank_instance_ratio = 0;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Graph cl = RdfsClosure(g);
    Term p = dict.Iri("urn:prop0");
    PathExpr nav = NavigationalEdge(p);
    PathExpr plain = PathExpr::Predicate(p);
    for (Term start : g.Universe()) {
      if (!start.IsIri()) continue;
      EXPECT_EQ(EvalPathFrom(g, nav, {start}),
                EvalPathFrom(cl, plain, {start}))
          << "round " << round;
    }
  }
}

TEST(Nsparql, NavigationalTypeMatchesClosureTypeOnInstances) {
  // The [35] property, typing form: the navigational type expression on
  // the RAW graph computes exactly the closure's type edges, for
  // instance nodes (nodes that are not themselves classes/properties).
  Rng rng(403);
  for (int round = 0; round < 8; ++round) {
    Dictionary dict;
    SchemaWorkloadSpec spec;
    spec.num_classes = 4;
    spec.num_properties = 3;
    spec.num_instances = 6;
    spec.num_facts = 10;
    spec.blank_instance_ratio = 0;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Graph cl = RdfsClosure(g);
    PathExpr nav = NavigationalType();
    PathExpr plain = PathExpr::Predicate(vocab::kType);
    // Instance nodes: subjects of facts/type triples that are not
    // classes or properties (the generator names them urn:inst*).
    for (Term node : g.Universe()) {
      if (!node.IsIri()) continue;
      std::string name = dict.Name(node);
      if (name.rfind("urn:inst", 0) != 0) continue;
      EXPECT_EQ(EvalPathFrom(g, nav, {node}),
                EvalPathFrom(cl, plain, {node}))
          << "round " << round << " node " << name;
    }
  }
}

TEST(Nsparql, HandBuiltTypingExample) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "paints sp creates .\n"
                 "creates dom artist .\n"
                 "creates range artifact .\n"
                 "artist sc person .\n"
                 "picasso paints guernica .\n");
  PathExpr nav = NavigationalType();
  std::vector<Term> types =
      EvalPathFrom(g, nav, {dict.Iri("picasso")});
  // artist (via edge/sp*/dom) and person (sc-lift).
  EXPECT_EQ(types.size(), 2u);
  std::vector<Term> guernica_types =
      EvalPathFrom(g, nav, {dict.Iri("guernica")});
  ASSERT_EQ(guernica_types.size(), 1u);
  EXPECT_EQ(guernica_types[0], dict.Iri("artifact"));
}

TEST(Nsparql, ToStringCoversNewKinds) {
  Dictionary dict;
  PathExpr nav = NavigationalEdge(dict.Iri("p"));
  std::string printed = nav.ToString(dict);
  EXPECT_NE(printed.find("next::["), std::string::npos);
  EXPECT_NE(printed.find("self::p"), std::string::npos);
  EXPECT_EQ(PathExpr::EdgeForward().ToString(dict), "edge");
  EXPECT_EQ(PathExpr::AnyBackward().ToString(dict), "^next");
}

}  // namespace
}  // namespace swdb
