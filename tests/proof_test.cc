#include "inference/proof.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

TEST(Proof, ProveAndCheckRdfsEntailment) {
  Dictionary dict;
  Graph g1 = Data(&dict,
                  "a sc b .\n"
                  "b sc c .\n"
                  "x type a .\n");
  Graph g2 = Data(&dict, "x type c .");
  Result<Proof> proof = ProveEntailment(g1, g2);
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  EXPECT_TRUE(CheckProof(*proof).ok()) << CheckProof(*proof).ToString();
  EXPECT_EQ(proof->start, g1);
  EXPECT_EQ(proof->goal, g2);
}

TEST(Proof, ProveEntailmentWithBlanksInGoal) {
  Dictionary dict;
  Graph g1 = Data(&dict, "p dom c .\nu p v .");
  Graph g2 = Data(&dict, "_:W type c .");
  Result<Proof> proof = ProveEntailment(g1, g2);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(CheckProof(*proof).ok()) << CheckProof(*proof).ToString();
  // The final step must be a map step instantiating the blank.
  ASSERT_FALSE(proof->steps.empty());
  EXPECT_TRUE(std::holds_alternative<MapStep>(proof->steps.back()));
}

TEST(Proof, NonEntailmentIsNotFound) {
  Dictionary dict;
  Graph g1 = Data(&dict, "a sc b .");
  Graph g2 = Data(&dict, "b sc a .");
  Result<Proof> proof = ProveEntailment(g1, g2);
  EXPECT_FALSE(proof.ok());
  EXPECT_EQ(proof.status().code(), StatusCode::kNotFound);
}

TEST(Proof, CheckRejectsMissingPremise) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .");
  Term a = dict.Iri("a");
  Term b = dict.Iri("b");
  Term c = dict.Iri("c");
  Proof bogus;
  bogus.start = g;
  bogus.goal = Graph{Triple(a, kSc, c)};
  bogus.steps.push_back(RuleStep{RuleApplication{
      RuleId::kScTransitivity,
      {Triple(a, kSc, b), Triple(b, kSc, c)},  // (b,sc,c) not in graph
      {Triple(a, kSc, c)}}});
  Status s = CheckProof(bogus);
  EXPECT_FALSE(s.ok());
}

TEST(Proof, CheckRejectsInvalidInstantiation) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\nb sc c .");
  Term a = dict.Iri("a");
  Term b = dict.Iri("b");
  Term c = dict.Iri("c");
  Proof bogus;
  bogus.start = g;
  bogus.goal = Graph{Triple(c, kSc, a)};
  bogus.steps.push_back(RuleStep{RuleApplication{
      RuleId::kScTransitivity,
      {Triple(a, kSc, b), Triple(b, kSc, c)},
      {Triple(c, kSc, a)}}});  // wrong conclusion shape
  EXPECT_FALSE(CheckProof(bogus).ok());
}

TEST(Proof, CheckRejectsBadMapStep) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .");
  Graph goal = Data(&dict, "_:X p c .");  // X would need to map onto (.,p,c)
  Proof bogus;
  bogus.start = g;
  bogus.goal = goal;
  TermMap mu;
  mu.Bind(dict.Blank("X"), dict.Iri("a"));
  bogus.steps.push_back(MapStep{mu, goal});  // μ(goal) = (a,p,c) ∉ g
  EXPECT_FALSE(CheckProof(bogus).ok());
}

TEST(Proof, CheckRejectsWrongGoal) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .");
  Proof bogus;
  bogus.start = g;
  bogus.goal = Data(&dict, "zz p b .");
  EXPECT_FALSE(CheckProof(bogus).ok());
}

TEST(Proof, IdentityProofOfSubgraph) {
  // A subgraph is proved by a single identity map step.
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\nc p d .");
  Graph sub = Data(&dict, "a p b .");
  Proof proof;
  proof.start = g;
  proof.goal = sub;
  proof.steps.push_back(MapStep{TermMap(), sub});
  EXPECT_TRUE(CheckProof(proof).ok());
}

TEST(Proof, RandomWorkloadsProveTheirClosureTriples) {
  Dictionary dict;
  Rng rng(5);
  SchemaWorkloadSpec spec;
  spec.num_classes = 4;
  spec.num_properties = 3;
  spec.num_instances = 4;
  spec.num_facts = 6;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  Graph cl = RdfsClosure(g);
  // Prove a handful of derived triples.
  int proved = 0;
  for (const Triple& t : cl) {
    if (g.Contains(t) || proved >= 5) continue;
    Result<Proof> proof = ProveEntailment(g, Graph{t});
    ASSERT_TRUE(proof.ok());
    EXPECT_TRUE(CheckProof(*proof).ok());
    ++proved;
  }
  EXPECT_GT(proved, 0);
}

}  // namespace
}  // namespace swdb
