#include "rdf/iso.h"

#include <gtest/gtest.h>

#include "rdf/map.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

class IsoTest : public ::testing::Test {
 protected:
  Dictionary dict_;
};

TEST_F(IsoTest, IdenticalGraphs) {
  Graph g = Data(&dict_, "a p b .\n_:X p b .");
  EXPECT_TRUE(AreIsomorphic(g, g));
}

TEST_F(IsoTest, BlankRenaming) {
  Graph g1 = Data(&dict_, "_:X p _:Y .\n_:Y p a .");
  Graph g2 = Data(&dict_, "_:U p _:V .\n_:V p a .");
  EXPECT_TRUE(AreIsomorphic(g1, g2));
  std::optional<TermMap> mu = FindIsomorphism(g1, g2);
  ASSERT_TRUE(mu.has_value());
  EXPECT_EQ(mu->Apply(g1), g2);
}

TEST_F(IsoTest, DifferentSizes) {
  Graph g1 = Data(&dict_, "_:X p a .");
  Graph g2 = Data(&dict_, "_:X p a .\n_:Y p a .");
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST_F(IsoTest, EquivalentButNotIsomorphic) {
  // {(a,p,X)} and {(a,p,X),(a,p,Y)} are equivalent yet not isomorphic.
  Graph g1 = Data(&dict_, "a p _:X .");
  Graph g2 = Data(&dict_, "a p _:X .\na p _:Y .");
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST_F(IsoTest, GroundPartsMustBeEqual) {
  Graph g1 = Data(&dict_, "a p b .\n_:X p b .");
  Graph g2 = Data(&dict_, "a p c .\n_:X p b .");
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST_F(IsoTest, BlankCannotMapToUri) {
  // Same sizes, same blank counts, but the structures differ.
  Graph g1 = Data(&dict_, "_:X p _:X .\n_:Y q a .");
  Graph g2 = Data(&dict_, "b p b .\n_:Y q a .\n");
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST_F(IsoTest, DirectionMatters) {
  Graph g1 = Data(&dict_, "_:X p _:Y .\n_:X p _:Z .");  // out-star
  Graph g2 = Data(&dict_, "_:Y p _:X .\n_:Z p _:X .");  // in-star
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST_F(IsoTest, CyclesOfDifferentLength) {
  Graph c2 = Data(&dict_, "_:A p _:B .\n_:B p _:A .");
  Graph c3 = Data(&dict_, "_:U p _:V .\n_:V p _:W .\n_:W p _:U .");
  EXPECT_FALSE(AreIsomorphic(c2, c3));
  // But there is a homomorphism c3 → ... none to c2? There is: 3-cycle
  // into 2-cycle requires 2-coloring of an odd cycle — impossible; both
  // directions fail, consistent with non-isomorphism.
}

TEST_F(IsoTest, PredicatesAreRigid) {
  Graph g1 = Data(&dict_, "_:X p _:Y .");
  Graph g2 = Data(&dict_, "_:X q _:Y .");
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST_F(IsoTest, PermutedCycleIsIsomorphic) {
  Graph c3a = Data(&dict_, "_:U p _:V .\n_:V p _:W .\n_:W p _:U .");
  Graph c3b = Data(&dict_, "_:B p _:C .\n_:C p _:A .\n_:A p _:B .");
  EXPECT_TRUE(AreIsomorphic(c3a, c3b));
}

}  // namespace
}  // namespace swdb
