#include "query/containment.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "query/answer.h"
#include "rdf/iso.h"
#include "testutil.h"
#include "util/rng.h"
#include "util/str.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

class ContainmentTest : public ::testing::Test {
 protected:
  Dictionary dict_;
};

TEST_F(ContainmentTest, IdenticalQueriesContainEachOther) {
  Query q = Q(&dict_,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n");
  EXPECT_TRUE(*ContainedStandard(q, q, &dict_));
  EXPECT_TRUE(*ContainedEntailment(q, q, &dict_));
}

TEST_F(ContainmentTest, MoreRestrictiveBodyIsContained) {
  // q asks for p-edges into c; q' asks for all p-edges. q ⊑ q'.
  Query q = Q(&dict_,
              "head: ?X sel c .\n"
              "body: ?X p c .\n");
  Query q_prime = Q(&dict_,
                    "head: ?X sel ?Y .\n"
                    "body: ?X p ?Y .\n");
  EXPECT_TRUE(*ContainedStandard(q, q_prime, &dict_));
  EXPECT_FALSE(*ContainedStandard(q_prime, q, &dict_));
  EXPECT_TRUE(*ContainedEntailment(q, q_prime, &dict_));
  EXPECT_FALSE(*ContainedEntailment(q_prime, q, &dict_));
}

TEST_F(ContainmentTest, Example53RdfsVocabulary) {
  // B = {?X sc ?Y, ?Y sc ?Z}; B' = B ∪ {?X sc ?Z}; heads equal bodies.
  // Both m-containments hold, neither p-containment does.
  Query q = Q(&dict_,
              "head: ?X sc ?Y .\nhead: ?Y sc ?Z .\n"
              "body: ?X sc ?Y .\nbody: ?Y sc ?Z .\n");
  Query q_prime = Q(&dict_,
                    "head: ?X sc ?Y .\nhead: ?Y sc ?Z .\nhead: ?X sc ?Z .\n"
                    "body: ?X sc ?Y .\nbody: ?Y sc ?Z .\nbody: ?X sc ?Z .\n");
  EXPECT_TRUE(*ContainedEntailment(q, q_prime, &dict_));
  EXPECT_TRUE(*ContainedEntailment(q_prime, q, &dict_));
  EXPECT_FALSE(*ContainedStandard(q, q_prime, &dict_));
  EXPECT_FALSE(*ContainedStandard(q_prime, q, &dict_));
}

TEST_F(ContainmentTest, Example53BlankInHead) {
  // H = (?X,q,c), H' = (?X,q,Y) with Y blank, same bodies:
  // q' ⊑m q but q' ⋢p q.
  Query q;
  q.head = Graph{Triple(dict_.Var("X"), dict_.Iri("q"), dict_.Iri("c"))};
  q.body = Graph{Triple(dict_.Var("X"), dict_.Iri("b"), dict_.Var("W"))};
  Query q_prime;
  q_prime.head =
      Graph{Triple(dict_.Var("X"), dict_.Iri("q"), dict_.Blank("Y"))};
  q_prime.body = q.body;
  EXPECT_TRUE(*ContainedEntailment(q_prime, q, &dict_));
  EXPECT_FALSE(*ContainedStandard(q_prime, q, &dict_));
}

TEST_F(ContainmentTest, Example53ProjectedHead) {
  // H = {(?X,q,?Y),(?Z,p,?Y)}, H' = {(?Z,p,?Y)}, same bodies:
  // q' ⊑m q but q' ⋢p q.
  Query q = Q(&dict_,
              "head: ?X q ?Y .\nhead: ?Z p ?Y .\n"
              "body: ?X q ?Y .\nbody: ?Z p ?Y .\n");
  Query q_prime = Q(&dict_,
                    "head: ?Z p ?Y .\n"
                    "body: ?X q ?Y .\nbody: ?Z p ?Y .\n");
  EXPECT_TRUE(*ContainedEntailment(q_prime, q, &dict_));
  EXPECT_FALSE(*ContainedStandard(q_prime, q, &dict_));
}

TEST_F(ContainmentTest, StandardImpliesEntailment) {
  // Prop 5.2 as a property test: q' is built as a generalization of q
  // (extra constants turned into fresh variables), so ⊑p holds by
  // construction on many rounds, and whenever it does, ⊑m must too.
  Rng rng(101);
  int positive = 0;
  for (int round = 0; round < 25; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 5;
    spec.num_triples = 6;
    spec.num_predicates = 2;
    spec.blank_ratio = 0;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 2, 0.3, &dict, &rng);
    if (!q.Validate().ok()) continue;

    // Generalize: consistently replace some non-predicate constants of
    // q with fresh variables.
    std::unordered_map<Term, Term> gen;
    auto generalize = [&](Term t, bool is_predicate) -> Term {
      if (!t.IsIri() || is_predicate) return t;
      auto it = gen.find(t);
      if (it != gen.end()) return it->second;
      if (!rng.Chance(0.5)) return t;
      Term v = dict.Var(NumberedName("g", round) + "_" +
                        std::to_string(gen.size()));
      gen.emplace(t, v);
      return v;
    };
    Query q_prime;
    for (const Triple& t : q.body) {
      q_prime.body.Insert(generalize(t.s, false), generalize(t.p, true),
                          generalize(t.o, false));
    }
    for (const Triple& t : q.head) {
      q_prime.head.Insert(generalize(t.s, false), generalize(t.p, true),
                          generalize(t.o, false));
    }
    if (!q_prime.Validate().ok()) continue;
    Result<bool> p = ContainedStandard(q, q_prime, &dict);
    Result<bool> m = ContainedEntailment(q, q_prime, &dict);
    ASSERT_TRUE(p.ok() && m.ok());
    if (*p) {
      EXPECT_TRUE(*m) << "round " << round;
      ++positive;
    }
  }
  EXPECT_GT(positive, 0);
}

TEST_F(ContainmentTest, RdfsSemanticsInBody) {
  // q's body is subsumed via sc-transitivity: nf(B) contains the
  // transitive edge the body of q' needs.
  Query q = Q(&dict_,
              "head: ?X sel ?Z .\n"
              "body: ?X sc ?Y .\nbody: ?Y sc ?Z .\nbody: ?X sc ?Z .\n");
  Query q_prime = Q(&dict_,
                    "head: ?X sel ?Z .\n"
                    "body: ?X sc ?Z .\n");
  // q (three-triple body) is contained in q': every q-answer is a
  // q'-answer, because θ(B') = (x,sc,z) ∈ nf(B) and heads line up.
  EXPECT_TRUE(*ContainedStandard(q, q_prime, &dict_));
  Query q2 = Q(&dict_,
               "head: ?X sel ?Z .\n"
               "body: ?X sc ?Y .\nbody: ?Y sc ?Z .\n");
  EXPECT_TRUE(*ContainedStandard(q2, q_prime, &dict_));  // via transitivity
  // The reverse ALSO holds for sc — rule (13) reflexivity lets the
  // two-step chain bend through (x,sc,x): θ = (X↦x, Y↦x, Z↦z).
  EXPECT_TRUE(*ContainedStandard(q_prime, q2, &dict_));
  // With an uninterpreted predicate there is no reflexivity, and the
  // one-step query is NOT contained in the two-step one.
  Query e1 = Q(&dict_,
               "head: ?X sel ?Z .\n"
               "body: ?X e ?Z .\n");
  Query e2 = Q(&dict_,
               "head: ?X sel ?Z .\n"
               "body: ?X e ?Y .\nbody: ?Y e ?Z .\n");
  EXPECT_FALSE(*ContainedStandard(e1, e2, &dict_));
  EXPECT_FALSE(*ContainedStandard(e2, e1, &dict_));
}

TEST_F(ContainmentTest, ConstraintsMustBeCarried) {
  // Thm 5.7(c): a constrained q'-variable must map to a constrained
  // q-variable.
  Query q = Q(&dict_,
              "head: ?X sel ?Y .\n"
              "body: ?X p ?Y .\n");
  Query q_constrained = Q(&dict_,
                          "head: ?X sel ?Y .\n"
                          "body: ?X p ?Y .\n"
                          "bind: ?Y\n");
  // Unconstrained q is NOT contained in constrained q' (q returns
  // blank-valued answers q' filters out).
  EXPECT_FALSE(*ContainedStandard(q, q_constrained, &dict_));
  // Constrained q IS contained in unconstrained q'.
  EXPECT_TRUE(*ContainedStandard(q_constrained, q, &dict_));
  // And in itself.
  EXPECT_TRUE(*ContainedStandard(q_constrained, q_constrained, &dict_));
}

TEST_F(ContainmentTest, PremiseOnRightSuppliesFacts) {
  // q: fixed fact head with empty body; q': body satisfied only via its
  // premise.
  Query q;
  q.head = Data(&dict_, "a ans b .");
  Query q_prime;
  q_prime.head = Data(&dict_, "a ans b .");
  q_prime.body = Graph{Triple(dict_.Var("X"), dict_.Iri("t"),
                              dict_.Iri("s"))};
  EXPECT_FALSE(*ContainedStandardSimple(q, q_prime, &dict_));
  q_prime.premise = Data(&dict_, "w t s .");
  EXPECT_TRUE(*ContainedStandardSimple(q, q_prime, &dict_));
  EXPECT_TRUE(*ContainedEntailmentSimple(q, q_prime, &dict_));
}

TEST_F(ContainmentTest, PremiseOnLeftIsEliminated) {
  // q has a premise; its Ωq members must all be contained in q'.
  Query q = Q(&dict_,
              "head: ?X p ?Y .\n"
              "body: ?X q ?Y .\nbody: ?Y t s .\n"
              "premise: a t s .\n");
  Query q_prime = Q(&dict_,
                    "head: ?X p ?Y .\n"
                    "body: ?X q ?Y .\n");
  EXPECT_TRUE(*ContainedStandardSimple(q, q_prime, &dict_));
  // Reverse direction fails: q' answers edges whose target lacks (·,t,s).
  EXPECT_FALSE(*ContainedStandardSimple(q_prime, q, &dict_));
}

TEST_F(ContainmentTest, PremiseBlankMatchesLikeConstant) {
  // A premise blank can absorb a body variable of q' (Thm 5.8's θ ranges
  // over UB).
  Query q;
  q.head = Data(&dict_, "a ans b .");
  Query q_prime;
  q_prime.head = Data(&dict_, "a ans b .");
  q_prime.body = Graph{Triple(dict_.Var("X"), dict_.Iri("t"),
                              dict_.Iri("s"))};
  q_prime.premise = Data(&dict_, "_:B t s .");
  EXPECT_TRUE(*ContainedStandardSimple(q, q_prime, &dict_));
}

TEST_F(ContainmentTest, PremiseFreeSimpleAgreesWithGeneralOnSimpleQueries) {
  // For premise-free fully simple queries the §5.4 decision procedure
  // and the nf-based one coincide.
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 5;
    spec.num_triples = 5;
    spec.num_predicates = 2;
    spec.blank_ratio = 0;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 2, 0.5, &dict, &rng);
    Query q_prime = PatternQueryFromGraph(data, 2, 0.5, &dict, &rng);
    if (!q.Validate().ok() || !q_prime.Validate().ok()) continue;
    // Variable predicates can match closure tautologies like (p,sp,p)
    // in the nf-based variant but not in the §5.4 simple variant; the
    // agreement claim is for fully simple patterns only.
    auto has_var_predicate = [](const Query& query) {
      for (const Triple& t : query.body) {
        if (t.p.IsVar()) return true;
      }
      for (const Triple& t : query.head) {
        if (t.p.IsVar()) return true;
      }
      return false;
    };
    if (has_var_predicate(q) || has_var_predicate(q_prime)) continue;
    Result<bool> general = ContainedStandard(q, q_prime, &dict);
    Result<bool> simple = ContainedStandardSimple(q, q_prime, &dict);
    ASSERT_TRUE(general.ok() && simple.ok());
    EXPECT_EQ(*general, *simple) << "round " << round;
  }
}

TEST_F(ContainmentTest, PositiveContainmentIsSoundOnSampledDatabases) {
  // Whenever the characterization says q ⊑p q', every pre-answer of q
  // must have an isomorphic counterpart among q''s pre-answers, on any
  // database — sample a few.
  Rng rng(131);
  int verified = 0;
  for (int round = 0; round < 30 && verified < 6; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 5;
    spec.num_triples = 7;
    spec.num_predicates = 2;
    spec.blank_ratio = 0;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 1, 0.3, &dict, &rng);
    Query q_prime = PatternQueryFromGraph(data, 1, 0.8, &dict, &rng);
    if (!q.Validate().ok() || !q_prime.Validate().ok()) continue;
    Result<bool> contained = ContainedStandard(q, q_prime, &dict);
    if (!contained.ok() || !*contained) continue;
    ++verified;
    QueryEvaluator eval(&dict);
    Result<std::vector<Graph>> pre_q = eval.PreAnswer(q, data);
    Result<std::vector<Graph>> pre_qp = eval.PreAnswer(q_prime, data);
    ASSERT_TRUE(pre_q.ok() && pre_qp.ok());
    for (const Graph& answer : *pre_q) {
      bool matched = false;
      for (const Graph& candidate : *pre_qp) {
        if (AreIsomorphic(answer, candidate)) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << "round " << round;
    }
  }
  EXPECT_GT(verified, 0);
}

TEST_F(ContainmentTest, RejectsPremisesInGeneralVariant) {
  Query q = Q(&dict_,
              "head: ?X p ?Y .\n"
              "body: ?X p ?Y .\n"
              "premise: a t b .\n");
  Result<bool> r = ContainedStandard(q, q, &dict_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ContainmentTest, NegativeContainmentHasCounterexampleDatabase) {
  // The "only if" direction of Thm 5.5(1): when the characterization
  // says q is NOT contained in q', the canonical database D = frozen(B)
  // witnesses it — some pre-answer of q has no isomorphic counterpart
  // among q''s pre-answers.
  Rng rng(211);
  int verified = 0;
  for (int round = 0; round < 60 && verified < 8; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 5;
    spec.num_triples = 7;
    spec.num_predicates = 2;
    spec.blank_ratio = 0;
    Graph data = RandomSimpleGraph(spec, &dict, &rng);
    Query q = PatternQueryFromGraph(data, 2, 0.4, &dict, &rng);
    Query q_prime = PatternQueryFromGraph(data, 2, 0.4, &dict, &rng);
    if (!q.Validate().ok() || !q_prime.Validate().ok()) continue;
    Result<bool> contained = ContainedStandard(q, q_prime, &dict);
    if (!contained.ok() || *contained) continue;
    // Build the canonical counterexample database.
    TermMap freeze;
    Graph frozen_b = FreezeVariablesWith(q.body, &dict, &freeze);
    QueryEvaluator eval(&dict);
    Result<std::vector<Graph>> pre_q = eval.PreAnswer(q, frozen_b);
    Result<std::vector<Graph>> pre_qp = eval.PreAnswer(q_prime, frozen_b);
    ASSERT_TRUE(pre_q.ok() && pre_qp.ok());
    bool all_matched = true;
    for (const Graph& answer : *pre_q) {
      bool matched = false;
      for (const Graph& candidate : *pre_qp) {
        if (AreIsomorphic(answer, candidate)) {
          matched = true;
          break;
        }
      }
      all_matched = all_matched && matched;
    }
    EXPECT_FALSE(all_matched) << "round " << round;
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

}  // namespace
}  // namespace swdb
