#include "inference/closure.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "rdf/hom.h"
#include "rdf/iso.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using vocab::kDom;
using vocab::kRange;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

class ClosureTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Term a_ = dict_.Iri("a");
  Term b_ = dict_.Iri("b");
  Term c_ = dict_.Iri("c");
  Term d_ = dict_.Iri("d");
  Term p_ = dict_.Iri("p");
  Term q_ = dict_.Iri("q");
  Term x_ = dict_.Iri("x");
  Term y_ = dict_.Iri("y");
};

TEST_F(ClosureTest, EmptyGraphClosureIsVocabReflexivity) {
  Graph cl = RdfsClosure(Graph());
  EXPECT_EQ(cl.size(), 5u);
  for (Term v : vocab::kAll) {
    EXPECT_TRUE(cl.Contains(Triple(v, kSp, v)));
  }
}

TEST_F(ClosureTest, ScTransitivityAndReflexivity) {
  Graph g{Triple(a_, kSc, b_), Triple(b_, kSc, c_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(a_, kSc, c_)));
  EXPECT_TRUE(cl.Contains(Triple(a_, kSc, a_)));
  EXPECT_TRUE(cl.Contains(Triple(b_, kSc, b_)));
  EXPECT_TRUE(cl.Contains(Triple(c_, kSc, c_)));
}

TEST_F(ClosureTest, SpInheritancePropagatesUses) {
  Graph g{Triple(p_, kSp, q_), Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(x_, q_, y_)));
  EXPECT_TRUE(cl.Contains(Triple(p_, kSp, p_)));
  EXPECT_TRUE(cl.Contains(Triple(q_, kSp, q_)));
}

TEST_F(ClosureTest, TypeLiftsThroughSubclass) {
  Graph g{Triple(a_, kSc, b_), Triple(x_, kType, a_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(x_, kType, b_)));
  EXPECT_TRUE(cl.Contains(Triple(a_, kSc, a_)));  // rule (12)
}

TEST_F(ClosureTest, DomainTyping) {
  Graph g{Triple(p_, kDom, c_), Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(x_, kType, c_)));
  EXPECT_FALSE(cl.Contains(Triple(y_, kType, c_)));
}

TEST_F(ClosureTest, RangeTyping) {
  Graph g{Triple(p_, kRange, c_), Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(y_, kType, c_)));
  EXPECT_FALSE(cl.Contains(Triple(x_, kType, c_)));
}

TEST_F(ClosureTest, DomainTypingThroughSubproperty) {
  // Marin's rule (6): dom on the superproperty types users of the sub.
  Graph g{Triple(q_, kDom, c_), Triple(p_, kSp, q_), Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(x_, kType, c_)));
}

TEST_F(ClosureTest, RangeTypingThroughBlankProperty) {
  // Note 2.4's problem case: a blank node standing for a property.
  Dictionary dict;
  Term blank = dict.Blank("P");
  Graph g{Triple(blank, kRange, c_), Triple(p_, kSp, blank),
          Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(y_, kType, c_)));
}

TEST_F(ClosureTest, ChainedTypingAcrossRules) {
  // dom typing then sc lifting.
  Graph g{Triple(p_, kDom, a_), Triple(a_, kSc, b_), Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(x_, kType, a_)));
  EXPECT_TRUE(cl.Contains(Triple(x_, kType, b_)));
}

TEST_F(ClosureTest, SpChainPropagation) {
  // p0 sp p1 sp p2; a use of p0 gains all three predicates.
  Graph g{Triple(p_, kSp, q_), Triple(q_, kSp, d_), Triple(x_, p_, y_)};
  Graph cl = RdfsClosure(g);
  EXPECT_TRUE(cl.Contains(Triple(p_, kSp, d_)));
  EXPECT_TRUE(cl.Contains(Triple(x_, q_, y_)));
  EXPECT_TRUE(cl.Contains(Triple(x_, d_, y_)));
}

TEST_F(ClosureTest, ClosureIsIdempotent) {
  Dictionary dict;
  Rng rng(7);
  SchemaWorkloadSpec spec;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  Graph cl = RdfsClosure(g);
  EXPECT_EQ(RdfsClosure(cl), cl);
}

TEST_F(ClosureTest, ClosureContainsInput) {
  Dictionary dict;
  Rng rng(13);
  SchemaWorkloadSpec spec;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  EXPECT_TRUE(g.IsSubgraphOf(RdfsClosure(g)));
}

TEST_F(ClosureTest, MatchesNaiveReferenceOnSchemaWorkloads) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Dictionary dict;
    Rng rng(seed);
    SchemaWorkloadSpec spec;
    spec.num_classes = 5;
    spec.num_properties = 4;
    spec.num_instances = 6;
    spec.num_facts = 10;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    EXPECT_EQ(RdfsClosure(g), RdfsClosureNaive(g)) << "seed " << seed;
  }
}

TEST_F(ClosureTest, MatchesNaiveReferenceWithVocabInDataPositions) {
  // Example 3.15-style pathological graph.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "type dom a .\n"
                 "x type a .\n");
  EXPECT_EQ(RdfsClosure(g), RdfsClosureNaive(g));
}

TEST_F(ClosureTest, MatchesNaiveOnSpIntoVocabPathology) {
  // (e, sp, sc): rule (3) mints sc edges from e edges.
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph g{Triple(e, kSp, kSc), Triple(a_, e, b_), Triple(x_, kType, a_)};
  Graph cl = RdfsClosure(g);
  EXPECT_EQ(cl, RdfsClosureNaive(g));
  EXPECT_TRUE(cl.Contains(Triple(a_, kSc, b_)));
  EXPECT_TRUE(cl.Contains(Triple(x_, kType, b_)));
}

TEST_F(ClosureTest, SemanticClosureEqualsDeductiveClosureGround) {
  // Thm 3.6(2) for a ground graph.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "p dom a .\n"
                 "u p v .\n");
  EXPECT_EQ(SemanticClosure(g, &dict), RdfsClosure(g));
}

TEST_F(ClosureTest, SemanticClosureEqualsDeductiveClosureWithBlanks) {
  // Thm 3.6(2) through Skolemization (Lemma 3.4).
  Dictionary dict;
  Graph g = Data(&dict,
                 "_:X sc b .\n"
                 "a sp _:P .\n"
                 "u a v .\n");
  EXPECT_EQ(SemanticClosure(g, &dict), RdfsClosure(g));
}

TEST_F(ClosureTest, ClosureSizeQuadraticOnScChain) {
  // Thm 3.6(3): |cl(G)| = Θ(|G|²) — an sc-chain of n triples closes to
  // n(n+1)/2 sc pairs + n+1 reflexive + 5 vocab + (sc,sp,sc) reflexive.
  Dictionary dict;
  const uint32_t n = 30;
  Graph g = ScChain(n, &dict);
  Graph cl = RdfsClosure(g);
  size_t expected_sc_pairs = static_cast<size_t>(n) * (n + 1) / 2;
  size_t count = cl.CountMatches(std::nullopt, kSc, std::nullopt);
  EXPECT_EQ(count, expected_sc_pairs + (n + 1));  // pairs + reflexives
}

TEST_F(ClosureTest, TraceReplaysToClosure) {
  Dictionary dict;
  Rng rng(99);
  SchemaWorkloadSpec spec;
  spec.num_classes = 4;
  spec.num_properties = 3;
  spec.num_instances = 5;
  spec.num_facts = 8;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  std::vector<RuleApplication> trace;
  Graph cl = RdfsClosure(g, &trace);
  Graph replay = g;
  for (const RuleApplication& app : trace) {
    EXPECT_TRUE(ValidateApplication(app).ok())
        << ValidateApplication(app).ToString();
    for (const Triple& premise : app.premises) {
      EXPECT_TRUE(replay.Contains(premise));
    }
    for (const Triple& conclusion : app.conclusions) {
      replay.Insert(conclusion);
    }
  }
  EXPECT_EQ(replay, cl);
}

TEST_F(ClosureTest, RdfsEntailsBasics) {
  Graph g1{Triple(a_, kSc, b_), Triple(x_, kType, a_)};
  Graph g2{Triple(x_, kType, b_)};
  EXPECT_TRUE(RdfsEntails(g1, g2));
  EXPECT_FALSE(RdfsEntails(g2, g1));
  EXPECT_FALSE(RdfsEquivalent(g1, g2));
}

TEST_F(ClosureTest, RdfsEntailsWithBlankInQuery) {
  Graph g1{Triple(p_, kDom, c_), Triple(x_, p_, y_)};
  Dictionary dict;
  Term blank = dict.Blank("W");
  Graph g2{Triple(blank, kType, c_)};
  EXPECT_TRUE(RdfsEntails(g1, g2));
}

TEST_F(ClosureTest, RdfsEntailsTautologies) {
  // (type, sp, type) is entailed by everything (rule 9).
  Graph g2{Triple(kType, kSp, kType)};
  EXPECT_TRUE(RdfsEntails(Graph(), g2));
}

TEST_F(ClosureTest, EquivalentGraphsWithDifferentSyntax) {
  // Example 3.17: G and H are equivalent.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "_:N sc c .\n"
                 "a sc _:N .\n");
  Graph h = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n");
  EXPECT_TRUE(RdfsEquivalent(g, h));
}

TEST_F(ClosureTest, Example32NaiveClosureIsNotUnique) {
  // Example 3.2 / Def. 3.1: a graph with two incomparable maximal
  // equivalent extensions — adding (X,r,d) or (X,q,d) each preserves
  // equivalence, but adding both does not.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p _:X .\n"
                 "a p c .\n"
                 "a p b .\n"
                 "c r d .\n"
                 "b q d .\n");
  Term x = dict.Blank("X");
  Triple via_r(x, dict.Iri("r"), dict.Iri("d"));
  Triple via_q(x, dict.Iri("q"), dict.Iri("d"));
  Graph with_r = g;
  with_r.Insert(via_r);
  Graph with_q = g;
  with_q.Insert(via_q);
  Graph with_both = with_r;
  with_both.Insert(via_q);
  EXPECT_TRUE(RdfsEquivalent(g, with_r));
  EXPECT_TRUE(RdfsEquivalent(g, with_q));
  EXPECT_FALSE(RdfsEquivalent(g, with_both));
  // Hence there are (at least) two distinct maximal equivalent
  // extensions, so Def. 3.1 does not define a unique closure — the
  // motivation for the Skolemization-based Def. 3.5.
}

TEST_F(ClosureTest, Lemma33DeductiveClosureInsideEveryNaiveClosure) {
  // Lemma 3.3: RDFS-cl(G) is contained in every maximal equivalent
  // extension; spot-check by growing Example 3.2's graph either way.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p _:X .\n"
                 "a p c .\n"
                 "c r d .\n");
  Graph cl = RdfsClosure(g);
  Graph extended = g;
  extended.Insert(dict.Blank("X"), dict.Iri("r"), dict.Iri("d"));
  ASSERT_TRUE(RdfsEquivalent(g, extended));
  // Any maximal equivalent extension contains the extension's closure,
  // which contains RDFS-cl(G).
  EXPECT_TRUE(cl.IsSubgraphOf(RdfsClosure(extended)));
}

}  // namespace
}  // namespace swdb
