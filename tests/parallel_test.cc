// The parallel execution layer:
//   * ThreadPool / Latch / TaskGroup primitives (inline degradation,
//     range coverage, nested fan-out);
//   * parallel PatternMatcher enumeration bit-identical to sequential
//     (solution sequence, order included) across fuzzed graphs/patterns;
//   * parallel FindAny returning the sequential first solution;
//   * shared step budgets staying exact under fan-out;
//   * RdfsClosureParallel / RdfsClosureDelta(pool) / IncrementalClosure
//     with a pool producing graphs identical to the sequential engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "gen/generators.h"
#include "inference/closure.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

// ---------------------------------------------------------------------
// ThreadPool primitives.
// ---------------------------------------------------------------------

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  int count = 0;  // no atomics needed: everything runs on this thread
  pool.Submit([&count] { ++count; });
  EXPECT_EQ(count, 1);
  TaskGroup group(&pool);
  group.Run([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count, 2);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);  // chunks are disjoint: no races
  pool.ParallelFor(hits.size(), 7, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ParallelForZeroAndTiny) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 0, [&calls](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<size_t> total{0};
  pool.ParallelFor(3, 0, [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPool, NestedTaskGroupsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 8; ++i) {
    outer.Run([&pool, &count] {
      TaskGroup inner(&pool);  // fan out from inside a worker
      for (int j = 0; j < 8; ++j) {
        inner.Run([&count] { count.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  outer.Wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(Latch, BlocksUntilCountedDown) {
  ThreadPool pool(2);
  Latch latch(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&latch, &done] {
      done.fetch_add(1);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(done.load(), 3);
}

// ---------------------------------------------------------------------
// Parallel matcher: bit-identical to sequential.
// ---------------------------------------------------------------------

// The open terms of a pattern, in deterministic order.
std::vector<Term> OpenTerms(const Graph& pattern) {
  std::vector<Term> open;
  for (const Triple& t : pattern) {
    for (Term x : {t.s, t.p, t.o}) {
      if (x.IsVar() || x.IsBlank()) open.push_back(x);
    }
  }
  std::sort(open.begin(), open.end());
  open.erase(std::unique(open.begin(), open.end()), open.end());
  return open;
}

// Enumerates all solutions as tuples of open-term images, preserving
// the enumeration order.
std::vector<std::vector<Term>> Solutions(const Graph& pattern,
                                         const Graph& target,
                                         const MatchOptions& options,
                                         Status* status_out = nullptr) {
  const std::vector<Term> open = OpenTerms(pattern);
  std::vector<std::vector<Term>> out;
  PatternMatcher matcher(pattern, &target, options);
  Status s = matcher.Enumerate([&](const TermMap& v) {
    std::vector<Term> row;
    row.reserve(open.size());
    for (Term x : open) row.push_back(v.Apply(x));
    out.push_back(std::move(row));
    return true;
  });
  if (status_out != nullptr) *status_out = s;
  return out;
}

class ParallelMatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMatchFuzz, EnumerationBitIdenticalToSequential) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Dictionary dict;
  Rng rng(seed);
  RandomGraphSpec spec;
  spec.num_nodes = 18;
  spec.num_triples = 120;
  spec.num_predicates = 3;
  spec.blank_ratio = 0.2;
  Graph data = RandomSimpleGraph(spec, &dict, &rng);
  Query q = PatternQueryFromGraph(data, 3, 0.6, &dict, &rng);

  ThreadPool pool(4);
  MatchOptions seq;
  MatchOptions par;
  par.pool = &pool;
  par.parallel_min_root = 2;  // force fan-out even on tiny root ranges

  std::vector<std::vector<Term>> want = Solutions(q.body, data, seq);
  std::vector<std::vector<Term>> got = Solutions(q.body, data, par);
  EXPECT_EQ(got, want) << "seed " << seed;
  EXPECT_FALSE(want.empty());  // PatternQueryFromGraph guarantees a match
}

TEST_P(ParallelMatchFuzz, FindAnyReturnsSequentialFirstSolution) {
  const uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  Dictionary dict;
  Rng rng(seed);
  RandomGraphSpec spec;
  spec.num_nodes = 14;
  spec.num_triples = 90;
  spec.blank_ratio = 0.4;
  Graph data = RandomSimpleGraph(spec, &dict, &rng);
  Query q = PatternQueryFromGraph(data, 3, 0.7, &dict, &rng);
  const std::vector<Term> open = OpenTerms(q.body);

  ThreadPool pool(4);
  MatchOptions par;
  par.pool = &pool;
  par.parallel_min_root = 2;

  PatternMatcher seq_matcher(q.body, &data, MatchOptions());
  PatternMatcher par_matcher(q.body, &data, par);
  Result<std::optional<TermMap>> want = seq_matcher.FindAny();
  Result<std::optional<TermMap>> got = par_matcher.FindAny();
  ASSERT_TRUE(want.ok() && got.ok());
  ASSERT_TRUE(want->has_value());
  ASSERT_TRUE(got->has_value());
  for (Term x : open) {
    EXPECT_EQ((*got)->Apply(x), (*want)->Apply(x)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelMatchFuzz, ::testing::Range(1, 21));

TEST(ParallelMatch, SharedBudgetStaysExact) {
  Dictionary dict;
  Rng rng(7);
  RandomGraphSpec spec;
  spec.num_nodes = 12;
  spec.num_triples = 150;
  spec.num_predicates = 2;
  Graph data = RandomSimpleGraph(spec, &dict, &rng);
  // A joined pattern with a tiny budget: must exhaust, and the total
  // consumed steps must never exceed the budget even with many workers.
  Query q = PatternQueryFromGraph(data, 3, 0.9, &dict, &rng);

  ThreadPool pool(4);
  MatchOptions par;
  par.pool = &pool;
  par.parallel_min_root = 2;
  par.max_steps = 5;
  MatchStats stats;
  par.stats = &stats;

  PatternMatcher matcher(q.body, &data, par);
  Status s = matcher.Enumerate([](const TermMap&) { return true; });
  EXPECT_EQ(s.code(), StatusCode::kLimitExceeded);
  EXPECT_LE(stats.steps_used, par.max_steps);
}

TEST(ParallelMatch, StatsAggregateAcrossWorkers) {
  Dictionary dict;
  Rng rng(11);
  RandomGraphSpec spec;
  spec.num_nodes = 16;
  spec.num_triples = 100;
  Graph data = RandomSimpleGraph(spec, &dict, &rng);
  Query q = PatternQueryFromGraph(data, 3, 0.6, &dict, &rng);

  ThreadPool pool(4);
  MatchOptions seq;
  MatchStats seq_stats;
  seq.stats = &seq_stats;
  MatchOptions par;
  MatchStats par_stats;
  par.pool = &pool;
  par.parallel_min_root = 2;
  par.stats = &par_stats;

  Solutions(q.body, data, seq);
  Solutions(q.body, data, par);
  // A full (non-cancelled) enumeration explores the same tree; the core
  // counters must agree exactly with the sequential run.
  EXPECT_EQ(par_stats.solutions_found, seq_stats.solutions_found);
  EXPECT_EQ(par_stats.nodes_expanded, seq_stats.nodes_expanded);
  EXPECT_EQ(par_stats.binds_attempted, seq_stats.binds_attempted);
  EXPECT_EQ(par_stats.steps_used, seq_stats.steps_used);
}

// ---------------------------------------------------------------------
// Parallel closure: identical graphs.
// ---------------------------------------------------------------------

TEST(ParallelClosure, SchemaWorkloadMatchesSequential) {
  Dictionary dict;
  Rng rng(3);
  SchemaWorkloadSpec spec;
  spec.num_classes = 30;
  spec.num_properties = 12;
  spec.num_instances = 100;
  spec.num_facts = 250;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  ThreadPool pool(4);
  EXPECT_EQ(RdfsClosureParallel(g, &pool), RdfsClosure(g));
}

TEST(ParallelClosure, ScChainMatchesSequential) {
  Dictionary dict;
  Graph g = ScChain(60, &dict);  // Θ(n²) closure: many parallel rounds
  ThreadPool pool(4);
  EXPECT_EQ(RdfsClosureParallel(g, &pool), RdfsClosure(g));
}

TEST(ParallelClosure, SpChainWithUsesMatchesSequential) {
  Dictionary dict;
  Graph g = SpChainWithUses(40, 30, &dict);
  ThreadPool pool(4);
  EXPECT_EQ(RdfsClosureParallel(g, &pool), RdfsClosure(g));
}

TEST(ParallelClosure, PathologicalVocabularyMatchesSequential) {
  // Reserved vocabulary in subject/object positions exercises the rule
  // cascades the direct membership analysis cannot model; the parallel
  // engine must agree with the sequential one there too.
  Dictionary dict;
  Rng rng(5);
  std::vector<Term> universe = {
      dict.Iri("u:a"), dict.Iri("u:b"), dict.Iri("u:c"),
      dict.Iri("u:p"), dict.Iri("u:q"),
  };
  for (Term v : vocab::kAll) universe.push_back(v);
  std::vector<Triple> triples;
  for (int i = 0; i < 400; ++i) {
    Term s = universe[rng.Below(universe.size())];
    Term p = rng.Chance(0.5) ? vocab::kAll[rng.Below(vocab::kReservedIris)]
                             : universe[rng.Below(universe.size())];
    Term o = universe[rng.Below(universe.size())];
    triples.emplace_back(s, p, o);
  }
  Graph g(std::move(triples));
  ThreadPool pool(4);
  EXPECT_EQ(RdfsClosureParallel(g, &pool), RdfsClosure(g));
}

TEST(ParallelClosure, NullAndZeroThreadPoolsDegrade) {
  Dictionary dict;
  Graph g = ScChain(25, &dict);
  ThreadPool zero(0);
  EXPECT_EQ(RdfsClosureParallel(g, nullptr), RdfsClosure(g));
  EXPECT_EQ(RdfsClosureParallel(g, &zero), RdfsClosure(g));
}

TEST(ParallelClosure, DeltaWithPoolMatchesScratch) {
  Dictionary dict;
  Rng rng(9);
  SchemaWorkloadSpec spec;
  spec.num_classes = 20;
  spec.num_properties = 8;
  spec.num_instances = 60;
  spec.num_facts = 150;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  Graph cl = RdfsClosure(g);
  Graph delta = SpChainWithUses(15, 20, &dict);
  ThreadPool pool(4);
  Graph got = RdfsClosureDelta(cl, delta, nullptr, nullptr, &pool);
  EXPECT_EQ(got, RdfsClosure(Graph::Union(g, delta)));
}

TEST(ParallelClosure, IncrementalEngineWithPoolMatchesScratch) {
  Dictionary dict;
  Rng rng(13);
  SchemaWorkloadSpec spec;
  spec.num_classes = 15;
  spec.num_properties = 6;
  spec.num_instances = 40;
  spec.num_facts = 80;
  Graph base = SchemaWorkload(spec, &dict, &rng);
  ThreadPool pool(4);

  IncrementalClosure inc(base);
  inc.set_pool(&pool);
  Graph accumulated = base;
  for (int round = 0; round < 5; ++round) {
    Graph delta = SpChainWithUses(10 + round, 5, &dict);
    accumulated.InsertAll(delta);
    inc.InsertDelta(delta);
    EXPECT_EQ(inc.closure(), RdfsClosure(accumulated)) << "round " << round;
  }
}

}  // namespace
}  // namespace swdb
