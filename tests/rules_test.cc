#include "inference/rules.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using vocab::kDom;
using vocab::kRange;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

class RulesTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Term a_ = dict_.Iri("a");
  Term b_ = dict_.Iri("b");
  Term c_ = dict_.Iri("c");
  Term p_ = dict_.Iri("p");
  Term q_ = dict_.Iri("q");
  Term x_ = dict_.Iri("x");
  Term y_ = dict_.Iri("y");
};

TEST_F(RulesTest, ValidateSpTransitivity) {
  RuleApplication app{RuleId::kSpTransitivity,
                      {Triple(a_, kSp, b_), Triple(b_, kSp, c_)},
                      {Triple(a_, kSp, c_)}};
  EXPECT_TRUE(ValidateApplication(app).ok());
  app.conclusions[0] = Triple(c_, kSp, a_);
  EXPECT_FALSE(ValidateApplication(app).ok());
}

TEST_F(RulesTest, ValidateSpInheritance) {
  RuleApplication app{RuleId::kSpInheritance,
                      {Triple(p_, kSp, q_), Triple(x_, p_, y_)},
                      {Triple(x_, q_, y_)}};
  EXPECT_TRUE(ValidateApplication(app).ok());
  // Premise predicate must equal the sp-subject.
  app.premises[1] = Triple(x_, q_, y_);
  EXPECT_FALSE(ValidateApplication(app).ok());
}

TEST_F(RulesTest, ValidateRejectsBlankPredicateInstantiation) {
  Term blank = dict_.Blank("B");
  RuleApplication app{RuleId::kSpInheritance,
                      {Triple(p_, kSp, blank), Triple(x_, p_, y_)},
                      {Triple(x_, blank, y_)}};
  EXPECT_FALSE(ValidateApplication(app).ok());
}

TEST_F(RulesTest, ValidateScTypingShape) {
  RuleApplication app{RuleId::kScTyping,
                      {Triple(a_, kSc, b_), Triple(x_, kType, a_)},
                      {Triple(x_, kType, b_)}};
  EXPECT_TRUE(ValidateApplication(app).ok());
  app.conclusions[0] = Triple(x_, kType, a_);
  EXPECT_FALSE(ValidateApplication(app).ok());
}

TEST_F(RulesTest, ValidateDomTyping) {
  RuleApplication app{
      RuleId::kDomTyping,
      {Triple(p_, kDom, b_), Triple(q_, kSp, p_), Triple(x_, q_, y_)},
      {Triple(x_, kType, b_)}};
  EXPECT_TRUE(ValidateApplication(app).ok());
  // Conclusion subject must be the use-triple's subject (not object).
  app.conclusions[0] = Triple(y_, kType, b_);
  EXPECT_FALSE(ValidateApplication(app).ok());
}

TEST_F(RulesTest, ValidateRangeTyping) {
  RuleApplication app{
      RuleId::kRangeTyping,
      {Triple(p_, kRange, b_), Triple(q_, kSp, p_), Triple(x_, q_, y_)},
      {Triple(y_, kType, b_)}};
  EXPECT_TRUE(ValidateApplication(app).ok());
  app.conclusions[0] = Triple(x_, kType, b_);
  EXPECT_FALSE(ValidateApplication(app).ok());
}

TEST_F(RulesTest, ValidateReflexivityRules) {
  EXPECT_TRUE(ValidateApplication({RuleId::kSpReflexFromUse,
                                   {Triple(x_, p_, y_)},
                                   {Triple(p_, kSp, p_)}})
                  .ok());
  EXPECT_TRUE(ValidateApplication(
                  {RuleId::kSpReflexVocab, {}, {Triple(kType, kSp, kType)}})
                  .ok());
  EXPECT_FALSE(ValidateApplication(
                   {RuleId::kSpReflexVocab, {}, {Triple(p_, kSp, p_)}})
                   .ok());
  EXPECT_TRUE(ValidateApplication({RuleId::kSpReflexDomRange,
                                   {Triple(p_, kDom, b_)},
                                   {Triple(p_, kSp, p_)}})
                  .ok());
  EXPECT_FALSE(ValidateApplication({RuleId::kSpReflexDomRange,
                                    {Triple(p_, kType, b_)},
                                    {Triple(p_, kSp, p_)}})
                   .ok());
  EXPECT_TRUE(ValidateApplication(
                  {RuleId::kSpReflexPair,
                   {Triple(a_, kSp, b_)},
                   {Triple(a_, kSp, a_), Triple(b_, kSp, b_)}})
                  .ok());
  EXPECT_TRUE(ValidateApplication({RuleId::kScReflexFromUse,
                                   {Triple(x_, kType, b_)},
                                   {Triple(b_, kSc, b_)}})
                  .ok());
  EXPECT_TRUE(ValidateApplication(
                  {RuleId::kScReflexPair,
                   {Triple(a_, kSc, b_)},
                   {Triple(a_, kSc, a_), Triple(b_, kSc, b_)}})
                  .ok());
}

TEST_F(RulesTest, RuleNamesAreNumbered) {
  EXPECT_EQ(RuleName(RuleId::kSpTransitivity).substr(0, 3), "(2)");
  EXPECT_EQ(RuleName(RuleId::kScReflexPair).substr(0, 4), "(13)");
}

TEST_F(RulesTest, EnumerateFindsTransitivity) {
  Graph g{Triple(a_, kSp, b_), Triple(b_, kSp, c_)};
  std::vector<RuleApplication> apps = EnumerateApplications(g);
  bool found = false;
  for (const RuleApplication& app : apps) {
    EXPECT_TRUE(ValidateApplication(app).ok())
        << ValidateApplication(app).ToString();
    if (app.rule == RuleId::kSpTransitivity &&
        app.conclusions[0] == Triple(a_, kSp, c_)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(RulesTest, EnumerateSkipsKnownConclusions) {
  Graph g{Triple(a_, kSp, b_), Triple(b_, kSp, c_), Triple(a_, kSp, c_),
          Triple(a_, kSp, a_), Triple(b_, kSp, b_), Triple(c_, kSp, c_)};
  for (const RuleApplication& app : EnumerateApplications(g)) {
    // Anything enumerated must add at least one new triple.
    bool adds_new = false;
    for (const Triple& t : app.conclusions) {
      if (!g.Contains(t)) adds_new = true;
    }
    EXPECT_TRUE(adds_new);
  }
}

TEST_F(RulesTest, EnumerateAllApplicationsValidate) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "p sp q .\n"
                 "q dom c .\n"
                 "c sc d .\n"
                 "x p y .\n"
                 "x type c .\n");
  for (const RuleApplication& app : EnumerateApplications(g)) {
    EXPECT_TRUE(ValidateApplication(app).ok())
        << RuleName(app.rule) << ": " << ValidateApplication(app).ToString();
  }
}

TEST_F(RulesTest, EnumerateMarinRules) {
  // Rules (6)/(7) with a blank property (Note 2.4, Marin's fix): the
  // blank stands for a property; the use triple goes through its
  // sp-subproperty.
  Dictionary dict;
  Term blank = dict.Blank("P");
  Term d = dict.Iri("d");
  Graph g{Triple(blank, kDom, d), Triple(p_, kSp, blank), Triple(x_, p_, y_)};
  bool found = false;
  for (const RuleApplication& app : EnumerateApplications(g)) {
    if (app.rule == RuleId::kDomTyping &&
        app.conclusions[0] == Triple(x_, kType, d)) {
      found = true;
      EXPECT_TRUE(ValidateApplication(app).ok());
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace swdb
