#include "normal/core.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gen/generators.h"
#include "rdf/iso.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;

TEST(Lean, GroundGraphsAreLean) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\nb p c .\na q c .");
  EXPECT_TRUE(IsLean(g));
}

TEST(Lean, Example38NotLean) {
  // Example 3.8, G1: a -p-> X, a -p-> Y is not lean.
  Dictionary dict;
  Graph g1 = Data(&dict, "a p _:X .\na p _:Y .");
  EXPECT_FALSE(IsLean(g1));
}

TEST(Lean, Example38Lean) {
  // Example 3.8, G2: a -p-> X, a -p-> Y -q-> ..., Y -r-> b is lean.
  Dictionary dict;
  Graph g2 = Data(&dict,
                  "a p _:X .\n"
                  "_:X q _:Y .\n"
                  "_:Y r b .");
  EXPECT_TRUE(IsLean(g2));
}

TEST(Lean, RedundantSpecializationIsNotLean) {
  Dictionary dict;
  Graph g = Data(&dict, "a p b .\na p _:X .");
  EXPECT_FALSE(IsLean(g));  // X → b
}

TEST(Lean, BlankChainFoldsOntoLoop) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p a .\n"
                 "_:X p _:Y .\n"
                 "_:Y p _:Z .");
  EXPECT_FALSE(IsLean(g));
}

TEST(Lean, ProperEndomorphismWitness) {
  Dictionary dict;
  Graph g = Data(&dict, "a p _:X .\na p _:Y .");
  Result<std::optional<TermMap>> mu = FindProperEndomorphism(g);
  ASSERT_TRUE(mu.ok());
  ASSERT_TRUE(mu->has_value());
  Graph image = (*mu)->Apply(g);
  EXPECT_TRUE(image.IsSubgraphOf(g));
  EXPECT_LT(image.size(), g.size());
}

TEST(Core, CollapsesRedundantBlanks) {
  Dictionary dict;
  Graph g = Data(&dict, "a p _:X .\na p _:Y .\na p b .");
  Graph core = Core(g);
  EXPECT_EQ(core, Data(&dict, "a p b ."));
}

TEST(Core, LeanGraphIsItsOwnCore) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p _:X .\n"
                 "_:X q _:Y .\n"
                 "_:Y r b .");
  EXPECT_EQ(Core(g), g);
}

TEST(Core, WitnessMapsGraphOntoCore) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p _:X .\n"
                 "a p _:Y .\n"
                 "_:Y q b .\n"
                 "_:Z q b .");
  TermMap witness;
  Graph core = Core(g, &witness);
  EXPECT_EQ(witness.Apply(g), core);
  EXPECT_TRUE(core.IsSubgraphOf(g));
  EXPECT_TRUE(IsLean(core));
}

TEST(Core, CoreIsEquivalentToGraph) {
  Dictionary dict;
  Rng rng(3);
  RandomGraphSpec spec;
  spec.num_nodes = 8;
  spec.num_triples = 12;
  spec.blank_ratio = 0.5;
  for (int round = 0; round < 10; ++round) {
    Graph g = RandomSimpleGraph(spec, &dict, &rng);
    Graph core = Core(g);
    EXPECT_TRUE(SimpleEquivalent(g, core)) << "round " << round;
    EXPECT_TRUE(IsLean(core)) << "round " << round;
  }
}

TEST(Core, UniqueUpToIsomorphismAcrossPresentations) {
  // Thm 3.10: computing the core of two isomorphic copies (with blanks
  // renamed) gives isomorphic results.
  Dictionary dict;
  Rng rng(11);
  RandomGraphSpec spec;
  spec.num_nodes = 7;
  spec.num_triples = 10;
  spec.blank_ratio = 0.6;
  for (int round = 0; round < 10; ++round) {
    Graph g = RandomSimpleGraph(spec, &dict, &rng);
    Graph copy = FreshBlankCopy(g, &dict);
    EXPECT_TRUE(AreIsomorphic(Core(g), Core(copy))) << "round " << round;
  }
}

TEST(Core, Theorem311MinimalityForSimpleGraphs) {
  // core(G) is the unique minimal graph equivalent to G: no equivalent
  // subgraph can be smaller.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p _:X .\n"
                 "_:X p a .\n"
                 "a p _:Y .\n"
                 "_:Y p a .\n"
                 "a p a .");
  Graph core = Core(g);
  EXPECT_EQ(core, Data(&dict, "a p a ."));
}

TEST(Core, Theorem311EquivalenceIffIsomorphicCores) {
  Dictionary dict;
  Graph g1 = Data(&dict, "a p _:X .\na p _:Y .");
  Graph g2 = Data(&dict, "a p _:Z .");
  Graph g3 = Data(&dict, "a p b .");
  EXPECT_TRUE(AreIsomorphic(Core(g1), Core(g2)));
  EXPECT_FALSE(AreIsomorphic(Core(g1), Core(g3)));
  EXPECT_TRUE(SimpleEquivalent(g1, g2));
  EXPECT_FALSE(SimpleEquivalent(g1, g3));
}

TEST(Core, IdempotentOnRandomGraphs) {
  // core(core(g)) = core(g): the core is lean, so the second pass finds
  // no proper endomorphism and returns its input unchanged.
  Dictionary dict;
  Rng rng(17);
  RandomGraphSpec spec;
  spec.num_nodes = 9;
  spec.num_triples = 16;
  spec.blank_ratio = 0.6;
  for (int round = 0; round < 15; ++round) {
    Graph core = Core(RandomSimpleGraph(spec, &dict, &rng));
    EXPECT_EQ(Core(core), core) << "round " << round;
  }
}

TEST(Core, WitnessFoldsRandomGraphsOntoCore) {
  Dictionary dict;
  Rng rng(29);
  RandomGraphSpec spec;
  spec.num_nodes = 8;
  spec.num_triples = 14;
  spec.blank_ratio = 0.7;
  for (int round = 0; round < 15; ++round) {
    Graph g = RandomSimpleGraph(spec, &dict, &rng);
    TermMap witness;
    Graph core = Core(g, &witness);
    EXPECT_EQ(witness.Apply(g), core) << "round " << round;
    EXPECT_TRUE(core.IsSubgraphOf(g)) << "round " << round;
    EXPECT_TRUE(IsLean(core)) << "round " << round;
  }
}

TEST(BlankComponents, GroupsByConnectedBlanks) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a p _:X .\n"
                 "_:X q _:Y .\n"  // X–Y share a triple: one component
                 "b p c .\n"      // ground: in no component
                 "a p _:Z .");    // Z alone: second component
  std::vector<std::vector<Triple>> components = BlankComponents(g);
  Term a = dict.Iri("a");
  Term p = dict.Iri("p");
  Term q = dict.Iri("q");
  Term x = dict.Blank("X");
  Term y = dict.Blank("Y");
  Term z = dict.Blank("Z");
  ASSERT_EQ(components.size(), 2u);
  // Pinned order: components appear in order of their first triple in
  // g's (sorted) triple order, and "a p _:Z" sorts before "_:X q _:Y".
  EXPECT_EQ(components[0],
            (std::vector<Triple>{Triple(a, p, x), Triple(x, q, y)}));
  EXPECT_EQ(components[1], std::vector<Triple>{Triple(a, p, z)});
}

TEST(BlankComponents, PartitionsNonGroundTriples) {
  // Every non-ground triple lands in exactly one component, ground
  // triples in none, and no blank spans two components.
  Dictionary dict;
  Rng rng(41);
  RandomGraphSpec spec;
  spec.num_nodes = 10;
  spec.num_triples = 20;
  spec.blank_ratio = 0.5;
  for (int round = 0; round < 10; ++round) {
    Graph g = RandomSimpleGraph(spec, &dict, &rng);
    std::vector<std::vector<Triple>> components = BlankComponents(g);
    std::set<Triple> seen;
    std::set<Term> seen_blanks;
    for (const std::vector<Triple>& component : components) {
      ASSERT_FALSE(component.empty());
      std::set<Term> blanks;
      for (const Triple& t : component) {
        EXPECT_FALSE(t.IsGround());
        EXPECT_TRUE(g.Contains(t));
        EXPECT_TRUE(seen.insert(t).second) << "triple in two components";
        for (Term term : {t.s, t.p, t.o}) {
          if (term.IsBlank()) blanks.insert(term);
        }
      }
      for (Term b : blanks) {
        EXPECT_TRUE(seen_blanks.insert(b).second)
            << "blank shared across components";
      }
    }
    size_t non_ground = 0;
    for (const Triple& t : g) {
      if (!t.IsGround()) ++non_ground;
    }
    EXPECT_EQ(seen.size(), non_ground) << "round " << round;
  }
}

TEST(BlankComponents, DeepBlankChainDoesNotOverflowTheStack) {
  // Regression: the union-find `find` used to be recursive, and a
  // 10k-blank chain unioned into one long parent path blew the stack.
  // The iterative, path-compressing find must handle it.
  Dictionary dict;
  Graph g = BlankChain(10000, dict.Iri("p"), &dict);
  std::vector<std::vector<Triple>> components = BlankComponents(g);
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].size(), g.size());
}

TEST(Core, BudgetAwareVariantReportsExhaustion) {
  Dictionary dict;
  Rng rng(5);
  RandomGraphSpec spec;
  spec.num_nodes = 12;
  spec.num_triples = 30;
  spec.blank_ratio = 1.0;
  Graph g = RandomSimpleGraph(spec, &dict, &rng);
  MatchOptions options;
  options.max_steps = 1;
  Result<Graph> r = CoreChecked(g, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kLimitExceeded);
}

}  // namespace
}  // namespace swdb
