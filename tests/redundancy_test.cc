#include "query/redundancy.h"

#include <gtest/gtest.h>

#include "normal/core.h"
#include "query/answer.h"
#include "rdf/map.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

TEST(Redundancy, DisjointGroundAnswersAreLean) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p b ."),
                                Data(&dict, "c p d .")};
  Result<bool> lean = IsMergeAnswerLean(answers);
  ASSERT_TRUE(lean.ok());
  EXPECT_TRUE(*lean);
}

TEST(Redundancy, BlankAnswerSubsumedByGroundAnswer) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p b ."),
                                Data(&dict, "a p _:X .")};
  Result<bool> lean = IsMergeAnswerLean(answers);
  ASSERT_TRUE(lean.ok());
  EXPECT_FALSE(*lean);
}

TEST(Redundancy, TwoBlankAnswersCollapse) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p _:X ."),
                                Data(&dict, "a p _:Y .")};
  Result<bool> lean = IsMergeAnswerLean(answers);
  ASSERT_TRUE(lean.ok());
  EXPECT_FALSE(*lean);
}

TEST(Redundancy, IncomparableBlankAnswersAreLean) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p _:X .\n_:X q c ."),
                                Data(&dict, "a p _:Y .\n_:Y r d .")};
  Result<bool> lean = IsMergeAnswerLean(answers);
  ASSERT_TRUE(lean.ok());
  EXPECT_TRUE(*lean);
}

TEST(Redundancy, AgreesWithGeneralLeanTest) {
  // The polynomial merge algorithm must agree with the general coNP
  // leanness test on the merged graph.
  Dictionary dict;
  std::vector<std::vector<Graph>> cases = {
      {Data(&dict, "a p b ."), Data(&dict, "c p d .")},
      {Data(&dict, "a p b ."), Data(&dict, "a p _:X1 .")},
      {Data(&dict, "a p _:X2 .\n_:X2 q c ."), Data(&dict, "a p _:Y2 .")},
      {Data(&dict, "_:U1 p _:V1 ."), Data(&dict, "_:U2 p _:V2 .")},
      {Data(&dict, "a p _:W1 .\n_:W1 p a ."), Data(&dict, "a p a .")},
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    Graph merged;
    for (const Graph& g : cases[i]) merged.InsertAll(g);
    Result<bool> fast = IsMergeAnswerLean(cases[i]);
    ASSERT_TRUE(fast.ok());
    EXPECT_EQ(*fast, IsLean(merged)) << "case " << i;
  }
}

TEST(Redundancy, RejectsSharedBlanks) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p _:S ."),
                                Data(&dict, "b q _:S .")};
  Result<bool> lean = IsMergeAnswerLean(answers);
  EXPECT_FALSE(lean.ok());
  EXPECT_EQ(lean.status().code(), StatusCode::kInvalidArgument);
}

TEST(Redundancy, EliminationDropsSubsumedAnswers) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p b ."),
                                Data(&dict, "a p _:X3 ."),
                                Data(&dict, "c q _:Z3 .")};
  Result<std::vector<Graph>> reduced = EliminateMergeRedundancy(answers);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->size(), 2u);
  Result<bool> lean = IsMergeAnswerLean(*reduced);
  ASSERT_TRUE(lean.ok());
  EXPECT_TRUE(*lean);
}

TEST(Redundancy, EliminationKeepsIncomparableAnswers) {
  Dictionary dict;
  std::vector<Graph> answers = {Data(&dict, "a p _:X4 .\n_:X4 q c ."),
                                Data(&dict, "a p _:Y4 .\n_:Y4 r d .")};
  Result<std::vector<Graph>> reduced = EliminateMergeRedundancy(answers);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->size(), 2u);
}

TEST(Redundancy, MergeAnswersFromEvaluatorAreDisjoint) {
  // Wiring test: pre-answers rendered blank-disjoint via FreshBlankCopy
  // feed the merge redundancy pipeline.
  Dictionary dict;
  Graph db = Data(&dict,
                  "a p b .\n"
                  "a p _:B .\n"
                  "_:B r s .\n");
  Query q = Q(&dict,
              "head: a p ?Y .\n"
              "body: a p ?Y .\n");
  QueryEvaluator eval(&dict);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
  ASSERT_TRUE(pre.ok());
  std::vector<Graph> disjoint;
  for (const Graph& g : *pre) {
    disjoint.push_back(FreshBlankCopy(g, &dict));
  }
  Result<bool> lean = IsMergeAnswerLean(disjoint);
  ASSERT_TRUE(lean.ok());
  // (a,p,B') is subsumed by (a,p,b) after the blanks are split apart.
  EXPECT_FALSE(*lean);
  Result<std::vector<Graph>> reduced = EliminateMergeRedundancy(disjoint);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->size(), 1u);
}

}  // namespace
}  // namespace swdb
