// The parallel core engine (component-level fan-out of the
// proper-endomorphism search behind Core()/nf(D)). Everything
// observable — the core graph, the composed witness, the folding
// sequence, budget-exhaustion status, and the deterministic CoreStats
// counters — must be bit-identical to the sequential engine at every
// worker count; only steps_speculative (wasted parallel probing) may
// differ. This binary is part of the TSan job (scripts/check_tsan.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "gen/generators.h"
#include "graphtheory/digraph.h"
#include "inference/closure.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "rdf/graph.h"
#include "rdf/hom.h"
#include "rdf/map.h"
#include "util/rng.h"
#include "util/str.h"
#include "util/thread_pool.h"

namespace swdb {
namespace {

const std::vector<size_t> kWorkerCounts = {0, 1, 2, 4, 8};

// A blank-heavy graph with several independent blank components: a
// union of random blobs (each blob's blanks are fresh, so blobs never
// share a component) over a partially shared ground vocabulary.
Graph MultiComponentGraph(uint64_t seed, Dictionary* dict) {
  Rng rng(seed * 977 + 13);
  RandomGraphSpec spec;
  spec.num_nodes = 8;
  spec.num_triples = 14;
  spec.num_predicates = 2;
  spec.blank_ratio = 0.6;
  Graph g;
  const int blobs = 2 + static_cast<int>(seed % 4);
  for (int b = 0; b < blobs; ++b) {
    g.InsertAll(RandomSimpleGraph(spec, dict, &rng));
  }
  return g;
}

TEST(CoreParallel, BitIdenticalAcrossWorkerCounts) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Dictionary dict;
    Graph g = MultiComponentGraph(seed, &dict);

    TermMap seq_witness;
    CoreStats seq_stats;
    Result<Graph> seq =
        CoreChecked(g, MatchOptions(), &seq_witness, &seq_stats);
    ASSERT_TRUE(seq.ok()) << "seed " << seed;

    for (size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      MatchOptions options;
      options.pool = &pool;
      TermMap witness;
      CoreStats stats;
      Result<Graph> par = CoreChecked(g, options, &witness, &stats);
      ASSERT_TRUE(par.ok()) << "seed " << seed << " workers " << workers;
      // Bit-identical graph: the same triples in the same order.
      EXPECT_EQ(par->triples(), seq->triples())
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(witness, seq_witness)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(stats.folds, seq_stats.folds)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(stats.iterations, seq_stats.iterations)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(stats.steps_used, seq_stats.steps_used)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(stats.components_searched, seq_stats.components_searched)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(stats.lean_cache_hits, seq_stats.lean_cache_hits)
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(CoreParallel, BudgetExhaustionParity) {
  // Any budget, any worker count: CoreChecked succeeds or returns the
  // same LimitExceeded, with the identical deterministic step count.
  const std::vector<uint64_t> budgets = {1, 4, 32, 256, 2048, 50'000'000};
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Dictionary dict;
    Graph g = MultiComponentGraph(seed, &dict);
    for (uint64_t budget : budgets) {
      MatchOptions seq_options;
      seq_options.max_steps = budget;
      TermMap seq_witness;
      CoreStats seq_stats;
      Result<Graph> seq = CoreChecked(g, seq_options, &seq_witness,
                                      &seq_stats);
      for (size_t workers : kWorkerCounts) {
        ThreadPool pool(workers);
        MatchOptions options = seq_options;
        options.pool = &pool;
        TermMap witness;
        CoreStats stats;
        Result<Graph> par = CoreChecked(g, options, &witness, &stats);
        ASSERT_EQ(par.ok(), seq.ok())
            << "seed " << seed << " budget " << budget << " workers "
            << workers;
        if (seq.ok()) {
          EXPECT_EQ(par->triples(), seq->triples());
          EXPECT_EQ(witness, seq_witness);
        } else {
          EXPECT_EQ(par.status().code(), StatusCode::kLimitExceeded);
          EXPECT_EQ(par.status().code(), seq.status().code());
        }
        // The deterministic counters hold on both the success and the
        // exhaustion path.
        EXPECT_EQ(stats.folds, seq_stats.folds);
        EXPECT_EQ(stats.steps_used, seq_stats.steps_used)
            << "seed " << seed << " budget " << budget << " workers "
            << workers;
        EXPECT_EQ(stats.components_searched, seq_stats.components_searched);
      }
    }
  }
}

TEST(CoreParallel, FindProperEndomorphismReturnsSequentialFold) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Dictionary dict;
    Graph g = MultiComponentGraph(seed, &dict);
    Result<std::optional<TermMap>> seq = FindProperEndomorphism(g);
    ASSERT_TRUE(seq.ok());
    for (size_t workers : kWorkerCounts) {
      ThreadPool pool(workers);
      MatchOptions options;
      options.pool = &pool;
      Result<std::optional<TermMap>> par = FindProperEndomorphism(g, options);
      ASSERT_TRUE(par.ok()) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(*par, *seq) << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(CoreParallel, LowestComponentWinsOverFasterHigherFold) {
  // Component 0 is an anchored odd cycle — lean, and expensive to
  // certify (the coNP shape of Thm 3.12). Component 1 folds instantly.
  // The sequential engine refutes component 0 before touching
  // component 1; the parallel engine finds component 1's fold first and
  // must still wait out component 0 (first-found cancellation only ever
  // cancels *higher* components), returning the identical fold.
  Dictionary dict;
  Term e = dict.Iri("e");
  Graph g;
  std::vector<Term> cycle_blanks;
  g.InsertAll(EncodeAsRdf(Digraph::SymmetricCycle(7), &dict, e,
                          &cycle_blanks));
  g.Insert(dict.Iri("anchor"), dict.Iri("ap"), cycle_blanks[0]);
  Term a = dict.Iri("a");
  Term p = dict.Iri("p");
  Term x = dict.FreshBlank();
  g.Insert(a, p, x);
  g.Insert(a, p, dict.Iri("b"));

  Result<std::optional<TermMap>> seq = FindProperEndomorphism(g);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(seq->has_value());
  EXPECT_EQ((*seq)->Apply(x), dict.Iri("b"));
  for (size_t workers : kWorkerCounts) {
    ThreadPool pool(workers);
    MatchOptions options;
    options.pool = &pool;
    Result<std::optional<TermMap>> par = FindProperEndomorphism(g, options);
    ASSERT_TRUE(par.ok()) << "workers " << workers;
    EXPECT_EQ(*par, *seq) << "workers " << workers;
  }
}

TEST(CoreParallel, IsLeanAgreesWithSequential) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Dictionary dict;
    Graph g = MultiComponentGraph(seed, &dict);
    const bool lean = IsLean(g);
    for (size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
      ThreadPool pool(workers);
      EXPECT_EQ(IsLean(g, &pool), lean)
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(CoreParallel, ParallelWitnessFoldsGraphOntoCore) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Dictionary dict;
    Graph g = MultiComponentGraph(seed, &dict);
    ThreadPool pool(4);
    MatchOptions options;
    options.pool = &pool;
    TermMap witness;
    Result<Graph> core = CoreChecked(g, options, &witness);
    ASSERT_TRUE(core.ok());
    EXPECT_EQ(witness.Apply(g), *core) << "seed " << seed;
    EXPECT_TRUE(core->IsSubgraphOf(g)) << "seed " << seed;
    EXPECT_TRUE(IsLean(*core, &pool)) << "seed " << seed;
  }
}

TEST(CoreParallel, NormalFormOnPoolMatchesSequential) {
  // nf(D) = core(cl(D)) end to end: parallel closure + parallel core
  // produce the exact sequential graph.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Dictionary dict;
    Rng rng(seed + 5);
    SchemaWorkloadSpec spec;
    spec.num_classes = 6;
    spec.num_properties = 5;
    spec.num_instances = 10;
    spec.num_facts = 24;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    // Blank redundancy so the core actually folds something.
    Graph extra = MultiComponentGraph(seed, &dict);
    g.InsertAll(extra);
    Graph seq = NormalForm(g);
    for (size_t workers : {size_t{1}, size_t{4}}) {
      ThreadPool pool(workers);
      Graph par = NormalForm(g, &pool);
      EXPECT_EQ(par.triples(), seq.triples())
          << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(CoreParallel, SingleComponentFallsBackToSequential) {
  // One giant blank component: the component fan-out has nothing to
  // split (a documented limitation — see DESIGN.md); the pool path must
  // still be correct and identical.
  Dictionary dict;
  Term p = dict.Iri("p");
  Term a = dict.Iri("a");
  Graph g;
  g.Insert(a, p, a);
  Term prev = dict.FreshBlank();
  for (int i = 0; i < 6; ++i) {
    Term next = dict.FreshBlank();
    g.Insert(prev, p, next);
    prev = next;
  }
  Graph seq_core = Core(g);
  EXPECT_EQ(seq_core, Graph({Triple(a, p, a)}));
  ThreadPool pool(4);
  EXPECT_EQ(Core(g, nullptr, &pool).triples(), seq_core.triples());
}

TEST(CoreParallel, GroundGraphWithPoolIsItsOwnCore) {
  Dictionary dict;
  Graph g;
  g.Insert(dict.Iri("a"), dict.Iri("p"), dict.Iri("b"));
  g.Insert(dict.Iri("b"), dict.Iri("p"), dict.Iri("c"));
  ThreadPool pool(4);
  EXPECT_EQ(Core(g, nullptr, &pool), g);
  EXPECT_TRUE(IsLean(g, &pool));
}

}  // namespace
}  // namespace swdb
