#include "rdf/term.h"

#include <gtest/gtest.h>

namespace swdb {
namespace {

TEST(Term, KindsAndIds) {
  Term iri = Term::Iri(42);
  EXPECT_TRUE(iri.IsIri());
  EXPECT_FALSE(iri.IsBlank());
  EXPECT_FALSE(iri.IsVar());
  EXPECT_TRUE(iri.IsName());
  EXPECT_EQ(iri.id(), 42u);

  Term blank = Term::Blank(7);
  EXPECT_TRUE(blank.IsBlank());
  EXPECT_TRUE(blank.IsName());
  EXPECT_EQ(blank.id(), 7u);

  Term var = Term::Var(3);
  EXPECT_TRUE(var.IsVar());
  EXPECT_FALSE(var.IsName());
  EXPECT_EQ(var.id(), 3u);
}

TEST(Term, OrderingGroupsByKind) {
  // IRIs sort before blanks, blanks before variables (kind is in the
  // high bits).
  EXPECT_LT(Term::Iri(1000), Term::Blank(0));
  EXPECT_LT(Term::Blank(1000), Term::Var(0));
  EXPECT_LT(Term::Iri(1), Term::Iri(2));
}

TEST(Term, EqualityRequiresKindAndId) {
  EXPECT_EQ(Term::Iri(5), Term::Iri(5));
  EXPECT_NE(Term::Iri(5), Term::Blank(5));
  EXPECT_NE(Term::Iri(5), Term::Iri(6));
}

TEST(Vocab, ReservedTermsAreIris) {
  for (Term v : vocab::kAll) {
    EXPECT_TRUE(v.IsIri());
    EXPECT_TRUE(vocab::IsRdfsVocab(v));
  }
  EXPECT_FALSE(vocab::IsRdfsVocab(Term::Iri(vocab::kReservedIris)));
  EXPECT_FALSE(vocab::IsRdfsVocab(Term::Blank(0)));
}

TEST(Dictionary, ReservedVocabularyIsPreInterned) {
  Dictionary dict;
  EXPECT_EQ(dict.Iri("rdfs:subPropertyOf"), vocab::kSp);
  EXPECT_EQ(dict.Iri("rdfs:subClassOf"), vocab::kSc);
  EXPECT_EQ(dict.Iri("rdf:type"), vocab::kType);
  EXPECT_EQ(dict.Iri("rdfs:domain"), vocab::kDom);
  EXPECT_EQ(dict.Iri("rdfs:range"), vocab::kRange);
}

TEST(Dictionary, VocabIdsAgreeAcrossDictionaries) {
  Dictionary d1;
  Dictionary d2;
  EXPECT_EQ(d1.Iri("rdf:type"), d2.Iri("rdf:type"));
}

TEST(Dictionary, InterningIsIdempotent) {
  Dictionary dict;
  Term a1 = dict.Iri("urn:a");
  Term a2 = dict.Iri("urn:a");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, dict.Iri("urn:b"));
}

TEST(Dictionary, KindsHaveSeparateNamespaces) {
  Dictionary dict;
  Term iri = dict.Iri("x");
  Term blank = dict.Blank("x");
  Term var = dict.Var("x");
  EXPECT_NE(iri, blank);
  EXPECT_NE(blank, var);
  EXPECT_EQ(dict.Name(iri), "x");
  EXPECT_EQ(dict.Name(blank), "_:x");
  EXPECT_EQ(dict.Name(var), "?x");
}

TEST(Dictionary, FreshBlanksAreDistinct) {
  Dictionary dict;
  Term b1 = dict.FreshBlank();
  Term b2 = dict.FreshBlank();
  EXPECT_NE(b1, b2);
  EXPECT_TRUE(b1.IsBlank());
}

TEST(Dictionary, FreshBlankAvoidsExistingLabels) {
  Dictionary dict;
  dict.Blank("g0");
  Term fresh = dict.FreshBlank();
  EXPECT_NE(dict.Name(fresh), "_:g0");
}

TEST(Dictionary, FreshIriIsDistinctAndIri) {
  Dictionary dict;
  Term c1 = dict.FreshIri();
  Term c2 = dict.FreshIri();
  EXPECT_NE(c1, c2);
  EXPECT_TRUE(c1.IsIri());
}

TEST(Dictionary, FindIri) {
  Dictionary dict;
  dict.Iri("urn:a");
  Result<Term> found = dict.FindIri("urn:a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, dict.Iri("urn:a"));
  EXPECT_EQ(dict.FindIri("urn:missing").status().code(),
            StatusCode::kNotFound);
}

TEST(Dictionary, CountOf) {
  Dictionary dict;
  size_t base = dict.CountOf(TermKind::kIri);
  EXPECT_EQ(base, vocab::kReservedIris);
  dict.Iri("urn:a");
  EXPECT_EQ(dict.CountOf(TermKind::kIri), base + 1);
  EXPECT_EQ(dict.CountOf(TermKind::kBlank), 0u);
  dict.FreshBlank();
  EXPECT_EQ(dict.CountOf(TermKind::kBlank), 1u);
}

}  // namespace
}  // namespace swdb
