#include "rdf/term.h"

#include <gtest/gtest.h>

namespace swdb {
namespace {

TEST(Term, KindsAndIds) {
  Term iri = Term::Iri(42);
  EXPECT_TRUE(iri.IsIri());
  EXPECT_FALSE(iri.IsBlank());
  EXPECT_FALSE(iri.IsVar());
  EXPECT_TRUE(iri.IsName());
  EXPECT_EQ(iri.id(), 42u);

  Term blank = Term::Blank(7);
  EXPECT_TRUE(blank.IsBlank());
  EXPECT_TRUE(blank.IsName());
  EXPECT_EQ(blank.id(), 7u);

  Term var = Term::Var(3);
  EXPECT_TRUE(var.IsVar());
  EXPECT_FALSE(var.IsName());
  EXPECT_EQ(var.id(), 3u);
}

TEST(Term, OrderingGroupsByKind) {
  // IRIs sort before blanks, blanks before variables (kind is in the
  // high bits).
  EXPECT_LT(Term::Iri(1000), Term::Blank(0));
  EXPECT_LT(Term::Blank(1000), Term::Var(0));
  EXPECT_LT(Term::Iri(1), Term::Iri(2));
}

TEST(Term, EqualityRequiresKindAndId) {
  EXPECT_EQ(Term::Iri(5), Term::Iri(5));
  EXPECT_NE(Term::Iri(5), Term::Blank(5));
  EXPECT_NE(Term::Iri(5), Term::Iri(6));
}

TEST(Vocab, ReservedTermsAreIris) {
  for (Term v : vocab::kAll) {
    EXPECT_TRUE(v.IsIri());
    EXPECT_TRUE(vocab::IsRdfsVocab(v));
  }
  EXPECT_FALSE(vocab::IsRdfsVocab(Term::Iri(vocab::kReservedIris)));
  EXPECT_FALSE(vocab::IsRdfsVocab(Term::Blank(0)));
}

TEST(Dictionary, ReservedVocabularyIsPreInterned) {
  Dictionary dict;
  EXPECT_EQ(dict.Iri("rdfs:subPropertyOf"), vocab::kSp);
  EXPECT_EQ(dict.Iri("rdfs:subClassOf"), vocab::kSc);
  EXPECT_EQ(dict.Iri("rdf:type"), vocab::kType);
  EXPECT_EQ(dict.Iri("rdfs:domain"), vocab::kDom);
  EXPECT_EQ(dict.Iri("rdfs:range"), vocab::kRange);
}

TEST(Dictionary, VocabIdsAgreeAcrossDictionaries) {
  Dictionary d1;
  Dictionary d2;
  EXPECT_EQ(d1.Iri("rdf:type"), d2.Iri("rdf:type"));
}

TEST(Dictionary, InterningIsIdempotent) {
  Dictionary dict;
  Term a1 = dict.Iri("urn:a");
  Term a2 = dict.Iri("urn:a");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, dict.Iri("urn:b"));
}

TEST(Dictionary, KindsHaveSeparateNamespaces) {
  Dictionary dict;
  Term iri = dict.Iri("x");
  Term blank = dict.Blank("x");
  Term var = dict.Var("x");
  EXPECT_NE(iri, blank);
  EXPECT_NE(blank, var);
  EXPECT_EQ(dict.Name(iri), "x");
  EXPECT_EQ(dict.Name(blank), "_:x");
  EXPECT_EQ(dict.Name(var), "?x");
}

TEST(Dictionary, FreshBlanksAreDistinct) {
  Dictionary dict;
  Term b1 = dict.FreshBlank();
  Term b2 = dict.FreshBlank();
  EXPECT_NE(b1, b2);
  EXPECT_TRUE(b1.IsBlank());
}

TEST(Dictionary, FreshBlankAvoidsExistingLabels) {
  Dictionary dict;
  dict.Blank("g0");
  Term fresh = dict.FreshBlank();
  EXPECT_NE(dict.Name(fresh), "_:g0");
}

TEST(Dictionary, FreshIriIsDistinctAndIri) {
  Dictionary dict;
  Term c1 = dict.FreshIri();
  Term c2 = dict.FreshIri();
  EXPECT_NE(c1, c2);
  EXPECT_TRUE(c1.IsIri());
}

TEST(Dictionary, FindIri) {
  Dictionary dict;
  dict.Iri("urn:a");
  Result<Term> found = dict.FindIri("urn:a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, dict.Iri("urn:a"));
  EXPECT_EQ(dict.FindIri("urn:missing").status().code(),
            StatusCode::kNotFound);
}

TEST(Dictionary, SequentialInternOrderIsDeterministic) {
  // The sharded dictionary allocates ids from per-kind global counters
  // under the owning shard's lock, so a single-threaded intern sequence
  // yields exactly the same ids as any other dictionary fed the same
  // sequence — graphs serialized by id stay comparable across runs.
  Dictionary a;
  Dictionary b;
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) names.push_back("u:n" + std::to_string(i));
  for (const std::string& n : names) {
    EXPECT_EQ(a.Iri(n), b.Iri(n));
    EXPECT_EQ(a.Blank(n), b.Blank(n));
  }
  EXPECT_EQ(a.FreshBlank(), b.FreshBlank());
  EXPECT_EQ(a.CountOf(TermKind::kIri), b.CountOf(TermKind::kIri));
}

TEST(Dictionary, StatsCountShardsAndSpellings) {
  Dictionary dict;
  dict.Iri("urn:alpha");
  dict.Blank("beta");
  dict.Var("x");
  DictionaryStats s = dict.Stats();
  EXPECT_EQ(s.iris, vocab::kReservedIris + 1);
  EXPECT_EQ(s.blanks, 1u);
  EXPECT_EQ(s.vars, 1u);
  EXPECT_EQ(s.shards, s.shard_entries.size());
  EXPECT_EQ(s.shards, s.shard_bytes.size());
  size_t entries = 0;
  size_t bytes = 0;
  for (size_t n : s.shard_entries) entries += n;
  for (size_t n : s.shard_bytes) bytes += n;
  EXPECT_EQ(entries, s.terms());
  EXPECT_EQ(bytes, s.name_bytes);
  EXPECT_GE(s.name_bytes, std::string("urn:alpha").size() +
                              std::string("beta").size() + 1);
}

TEST(Dictionary, CopyReproducesIdsAndSpellings) {
  Dictionary dict;
  Term i = dict.Iri("urn:copy");
  Term b = dict.FreshBlank();
  Dictionary copy = dict;
  EXPECT_EQ(copy.Iri("urn:copy"), i);
  EXPECT_EQ(copy.Name(b), dict.Name(b));
  // Fresh allocation continues independently but from the same state.
  EXPECT_EQ(copy.FreshBlank(), dict.FreshBlank());
}

TEST(Dictionary, CountOf) {
  Dictionary dict;
  size_t base = dict.CountOf(TermKind::kIri);
  EXPECT_EQ(base, vocab::kReservedIris);
  dict.Iri("urn:a");
  EXPECT_EQ(dict.CountOf(TermKind::kIri), base + 1);
  EXPECT_EQ(dict.CountOf(TermKind::kBlank), 0u);
  dict.FreshBlank();
  EXPECT_EQ(dict.CountOf(TermKind::kBlank), 1u);
}

}  // namespace
}  // namespace swdb
