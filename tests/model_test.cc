#include "model/canonical.h"
#include "model/interpretation.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "rdf/hom.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

TEST(Interpretation, BasicAccessors) {
  Interpretation i(3);
  i.MarkProp(0);
  i.MarkClass(1);
  i.AddPExt(0, 1, 2);
  i.AddCExt(1, 2);
  EXPECT_TRUE(i.IsProp(0));
  EXPECT_FALSE(i.IsProp(1));
  EXPECT_TRUE(i.InPExt(0, 1, 2));
  EXPECT_FALSE(i.InPExt(0, 2, 1));
  EXPECT_TRUE(i.InCExt(1, 2));
}

TEST(Interpretation, CheckRdfsConditionsOnHandBuiltModel) {
  // Domain: 0=sp 1=sc 2=type 3=dom 4=range (properties), 5=class, 6=el.
  Interpretation i(7);
  for (uint32_t r = 0; r < 5; ++r) i.MarkProp(r);
  i.MarkClass(5);
  for (Term v : vocab::kAll) i.SetInt(v, v.id());
  // sp reflexive over Prop.
  for (uint32_t r = 0; r < 5; ++r) i.AddPExt(0, r, r);
  // sc reflexive over Class.
  i.AddPExt(1, 5, 5);
  // 6 is an instance of class 5.
  i.MarkClass(5);
  i.AddCExt(5, 6);
  i.AddPExt(2, 6, 5);  // PExt(type) mirrors CExt
  EXPECT_TRUE(i.CheckRdfsConditions().ok())
      << i.CheckRdfsConditions().ToString();
}

TEST(Interpretation, CheckDetectsMissingSpReflexivity) {
  Interpretation i(6);
  for (uint32_t r = 0; r < 5; ++r) i.MarkProp(r);
  i.MarkProp(5);
  for (Term v : vocab::kAll) i.SetInt(v, v.id());
  for (uint32_t r = 0; r < 5; ++r) i.AddPExt(0, r, r);
  // Prop member 5 lacks (5,5) in PExt(sp).
  EXPECT_FALSE(i.CheckRdfsConditions().ok());
}

TEST(Interpretation, CheckDetectsTypeCExtMismatch) {
  Interpretation i(7);
  for (uint32_t r = 0; r < 5; ++r) i.MarkProp(r);
  for (Term v : vocab::kAll) i.SetInt(v, v.id());
  for (uint32_t r = 0; r < 5; ++r) i.AddPExt(0, r, r);
  i.MarkClass(5);
  i.AddPExt(1, 5, 5);
  i.AddCExt(5, 6);  // CExt says 6 : 5, but PExt(type) does not
  EXPECT_FALSE(i.CheckRdfsConditions().ok());
}

TEST(CanonicalModel, SatisfiesRdfsConditions) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Dictionary dict;
    Rng rng(seed);
    SchemaWorkloadSpec spec;
    spec.num_classes = 5;
    spec.num_properties = 4;
    spec.num_instances = 6;
    spec.num_facts = 10;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Interpretation canonical = CanonicalModel(g, &dict);
    EXPECT_TRUE(canonical.CheckRdfsConditions().ok())
        << "seed " << seed << ": "
        << canonical.CheckRdfsConditions().ToString();
    EXPECT_TRUE(SatisfiesSimple(canonical, g)) << "seed " << seed;
  }
}

TEST(CanonicalModel, ModelsItsOwnGraph) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "_:X type a .\n"
                 "p dom b .\n"
                 "_:X p _:Y .\n");
  Interpretation canonical = CanonicalModel(g, &dict);
  EXPECT_TRUE(Models(canonical, g));
}

TEST(TermModel, SemanticSimpleEntailsAgreesWithMapCharacterization) {
  // Thm 2.8(2) checked semantically: the independent term-model
  // satisfaction test agrees with the homomorphism test.
  Rng rng(42);
  for (int round = 0; round < 30; ++round) {
    Dictionary dict;
    RandomGraphSpec spec;
    spec.num_nodes = 6;
    spec.num_triples = 8;
    spec.num_predicates = 2;
    spec.blank_ratio = 0.5;
    Graph g1 = RandomSimpleGraph(spec, &dict, &rng);
    spec.num_triples = 4;
    Graph g2 = RandomSimpleGraph(spec, &dict, &rng);
    EXPECT_EQ(SemanticSimpleEntails(g1, g2), SimpleEntails(g1, g2))
        << "round " << round;
    EXPECT_TRUE(SemanticSimpleEntails(g1, g1));
  }
}

TEST(CanonicalModel, SemanticRdfsEntailsAgreesWithClosureCharacterization) {
  // Thm 2.8(1) checked semantically on schema workloads.
  Rng rng(17);
  for (int round = 0; round < 10; ++round) {
    Dictionary dict;
    SchemaWorkloadSpec spec;
    spec.num_classes = 4;
    spec.num_properties = 3;
    spec.num_instances = 4;
    spec.num_facts = 6;
    Graph g1 = SchemaWorkload(spec, &dict, &rng);
    SchemaWorkloadSpec small = spec;
    small.num_facts = 2;
    small.num_instances = 2;
    Graph g2 = SchemaWorkload(small, &dict, &rng);
    EXPECT_EQ(SemanticRdfsEntails(g1, g2, &dict), RdfsEntails(g1, g2))
        << "round " << round;
  }
}

TEST(CanonicalModel, EntailedTriplesAreSatisfied) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "x type a .\n");
  Graph entailed = Data(&dict, "x type c .");
  Graph not_entailed = Data(&dict, "c sc a .");
  EXPECT_TRUE(SemanticRdfsEntails(g, entailed, &dict));
  EXPECT_FALSE(SemanticRdfsEntails(g, not_entailed, &dict));
}

TEST(TermModel, BlankAssignmentSearchHandlesJoins) {
  Dictionary dict;
  Graph g1 = Data(&dict, "a p b .\nb p c .");
  Graph chain = Data(&dict, "_:X p _:Y .\n_:Y p _:Z .");
  Graph cycle = Data(&dict, "_:X p _:Y .\n_:Y p _:X .");
  EXPECT_TRUE(SemanticSimpleEntails(g1, chain));
  EXPECT_FALSE(SemanticSimpleEntails(g1, cycle));
}

}  // namespace
}  // namespace swdb
