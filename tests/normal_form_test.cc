#include "normal/normal_form.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "normal/core.h"
#include "rdf/iso.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;

TEST(NormalForm, IsCoreOfClosure) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "x type a .\n");
  EXPECT_EQ(NormalForm(g), Core(RdfsClosure(g)));
}

TEST(NormalForm, Example317EquivalentGraphsGetIsomorphicNormalForms) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc _:N .\n"
                 "_:N sc c .\n");
  Graph h = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n");
  ASSERT_TRUE(RdfsEquivalent(g, h));
  // Closures differ (syntax dependence)...
  EXPECT_FALSE(AreIsomorphic(RdfsClosure(g), RdfsClosure(h)));
  // ...but the normal forms agree (Thm 3.19(2)).
  EXPECT_TRUE(AreIsomorphic(NormalForm(g), NormalForm(h)));
}

TEST(NormalForm, NonEquivalentGraphsGetDifferentNormalForms) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .");
  Graph h = Data(&dict, "b sc a .");
  EXPECT_FALSE(AreIsomorphic(NormalForm(g), NormalForm(h)));
}

TEST(NormalForm, IdempotentUpToIsomorphism) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "p dom a .\n"
                 "x p y .\n");
  Graph nf = NormalForm(g);
  EXPECT_TRUE(AreIsomorphic(NormalForm(nf), nf));
}

TEST(NormalForm, EquivalentToOriginal) {
  Dictionary dict;
  Rng rng(21);
  SchemaWorkloadSpec spec;
  spec.num_classes = 4;
  spec.num_properties = 3;
  spec.num_instances = 5;
  spec.num_facts = 8;
  Graph g = SchemaWorkload(spec, &dict, &rng);
  EXPECT_TRUE(RdfsEquivalent(NormalForm(g), g));
}

TEST(NormalForm, SyntaxIndependenceOnMutatedEquivalents) {
  // Thm 3.19(2) as a property test: randomized equivalence-preserving
  // mutations never change the normal form (up to isomorphism).
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Dictionary dict;
    Rng rng(seed);
    SchemaWorkloadSpec spec;
    spec.num_classes = 3;
    spec.num_properties = 2;
    spec.num_instances = 3;
    spec.num_facts = 4;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    Graph mutated = EquivalentMutation(g, 4, &dict, &rng);
    ASSERT_TRUE(RdfsEquivalent(g, mutated)) << "seed " << seed;
    EXPECT_TRUE(AreIsomorphic(NormalForm(g), NormalForm(mutated)))
        << "seed " << seed;
  }
}

TEST(NormalForm, IsNormalFormOfDecision) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc _:N .\n"
                 "_:N sc c .\n");
  Graph h = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n");
  EXPECT_TRUE(IsNormalFormOf(NormalForm(h), g));
  EXPECT_FALSE(IsNormalFormOf(h, g));  // h is not closed
}

TEST(NormalForm, SimpleGraphNormalFormContainsVocabAxioms) {
  // For simple graphs nf adds only the vocabulary reflexivity axioms and
  // the (p,sp,p)/(p-predicate) tautologies of the closure.
  Dictionary dict;
  Graph g = Data(&dict, "a p b .");
  Graph nf = NormalForm(g);
  EXPECT_TRUE(nf.Contains(Triple(dict.Iri("a"), dict.Iri("p"),
                                 dict.Iri("b"))));
  EXPECT_TRUE(nf.Contains(Triple(dict.Iri("p"), vocab::kSp, dict.Iri("p"))));
  EXPECT_TRUE(
      nf.Contains(Triple(vocab::kType, vocab::kSp, vocab::kType)));
}

}  // namespace
}  // namespace swdb
