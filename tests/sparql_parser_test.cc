#include "sparql/sparql_parser.h"

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

class SparqlParserTest : public ::testing::Test {
 protected:
  Dictionary dict_;
  Graph db_ = Data(&dict_,
                   "b1 name paul .\n"
                   "b2 name george .\n"
                   "b2 email georgeAtB3 .\n"
                   "b3 name ringo .\n"
                   "b3 email ringoAtM .\n"
                   "b3 web wwwRingo .\n");

  MappingSet Run(const std::string& text) {
    Result<SparqlQuery> q = ParseSparql(text, &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
    if (!q.ok()) return {};
    Result<MappingSet> rows =
        EvalSelect(db_, q->pattern, q->select);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? *rows : MappingSet{};
  }
};

TEST_F(SparqlParserTest, BasicSelect) {
  MappingSet rows = Run("SELECT ?X ?N WHERE { ?X name ?N . }");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SparqlParserTest, SelectStarKeepsAllVariables) {
  MappingSet rows = Run("SELECT * WHERE { ?X name ?N . ?X email ?E . }");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].size(), 3u);
}

TEST_F(SparqlParserTest, MultiTripleBgpJoins) {
  MappingSet rows =
      Run("SELECT ?X WHERE { ?X name ?N . ?X email ?E . }");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SparqlParserTest, OptionalKeepsAllNames) {
  MappingSet rows = Run(
      "SELECT ?N ?E WHERE { ?X name ?N . OPTIONAL { ?X email ?E . } }");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SparqlParserTest, UnionOfGroups) {
  MappingSet rows = Run(
      "SELECT ?X WHERE { { ?X email ?E . } UNION { ?X web ?W . } }");
  EXPECT_EQ(rows.size(), 2u);  // b2 and b3 after projection
}

TEST_F(SparqlParserTest, FilterBoundAndComparison) {
  MappingSet without_email = Run(
      "SELECT ?N WHERE { ?X name ?N . OPTIONAL { ?X email ?E . } "
      "FILTER ( !bound(?E) ) }");
  ASSERT_EQ(without_email.size(), 1u);
  EXPECT_EQ(without_email[0].Apply(dict_.Var("N")), dict_.Iri("paul"));

  MappingSet not_george = Run(
      "SELECT ?N WHERE { ?X name ?N . FILTER ( ?N != george ) }");
  EXPECT_EQ(not_george.size(), 2u);
}

TEST_F(SparqlParserTest, FilterBooleanCombinations) {
  MappingSet rows = Run(
      "SELECT ?N WHERE { ?X name ?N . "
      "FILTER ( ?N = paul || ?N = ringo ) }");
  EXPECT_EQ(rows.size(), 2u);
  MappingSet none = Run(
      "SELECT ?N WHERE { ?X name ?N . "
      "FILTER ( ?N = paul && ?N = ringo ) }");
  EXPECT_TRUE(none.empty());
}

TEST_F(SparqlParserTest, NestedGroupsAndMixedOperators) {
  MappingSet rows = Run(
      "SELECT ?X ?N ?E ?W WHERE { "
      "  ?X name ?N . "
      "  OPTIONAL { ?X email ?E . ?X web ?W . } "
      "}");
  // Only ringo has both email and web; the others keep bare names.
  ASSERT_EQ(rows.size(), 3u);
  int extended = 0;
  for (const Mapping& m : rows) {
    extended += m.IsBound(dict_.Var("W"));
  }
  EXPECT_EQ(extended, 1);
}

TEST_F(SparqlParserTest, RdfsInferenceThroughClosure) {
  Dictionary dict;
  Graph schema = Data(&dict,
                      "writes sp creates .\n"
                      "john writes hamlet .\n");
  Result<SparqlQuery> q =
      ParseSparql("SELECT ?X WHERE { ?X creates ?W . }", &dict);
  ASSERT_TRUE(q.ok());
  Result<MappingSet> rows =
      EvalSelect(RdfsClosure(schema), q->pattern, q->select);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(SparqlParserTest, ParseErrors) {
  Dictionary dict;
  EXPECT_FALSE(ParseSparql("WHERE { ?X p ?Y . }", &dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?X p ?Y . }", &dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?X { ?X p ?Y . }", &dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?X WHERE { ?X p ?Y }", &dict).ok());
  EXPECT_FALSE(ParseSparql("SELECT ?X WHERE { ?X p ?Y .", &dict).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?X WHERE { FILTER ( bound(q) ) }", &dict).ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?X WHERE { ?X p ?Y . } garbage", &dict).ok());
}

TEST_F(SparqlParserTest, EmptyGroupGivesOneEmptyMapping) {
  MappingSet rows = Run("SELECT * WHERE { }");
  // The empty BGP has exactly the empty mapping as its solution.
  EXPECT_EQ(rows.size(), 1u);
}

}  // namespace
}  // namespace swdb
