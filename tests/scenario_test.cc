// A larger end-to-end scenario: a university knowledge base exercised
// through the Database facade, premises, containment, paths, and the
// SPARQL algebra together — the "downstream user" workflow.

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "paths/path.h"
#include "query/containment.h"
#include "query/database.h"
#include "sparql/sparql_parser.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Q;

constexpr const char* kUniversity = R"(
# --- Schema ---
professor     sc faculty .
lecturer      sc faculty .
faculty       sc employee .
phdStudent    sc student .
employee      sc person .
student       sc person .
teaches       sp involvedIn .
takes         sp involvedIn .
supervises    sp mentors .
teaches       dom faculty .
teaches       range course .
takes         dom student .
takes         range course .
supervises    dom professor .
supervises    range phdStudent .
prerequisite  dom course .
prerequisite  range course .
# --- Data ---
ada     teaches  logic .
ada     supervises bob .
turing  teaches  computability .
grace   takes    logic .
bob     takes    computability .
logic   prerequisite computability .
computability prerequisite complexity .
_:tutor teaches  complexity .
_:tutor supervises carol .
)";

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(&dict_);
    ASSERT_TRUE(db_->InsertText(kUniversity).ok());
  }

  Dictionary dict_;
  std::unique_ptr<Database> db_;
};

TEST_F(ScenarioTest, SchemaInferenceCascades) {
  // ada teaches ⇒ faculty ⇒ employee ⇒ person; supervises ⇒ professor.
  for (const char* fact :
       {"ada type faculty .", "ada type employee .", "ada type person .",
        "ada type professor .", "bob type phdStudent .",
        "bob type student .", "grace type student .",
        "logic type course .", "complexity type course .",
        "ada involvedIn logic .", "grace involvedIn logic .",
        "ada mentors bob ."}) {
    Result<Graph> goal = ParseGraph(fact, &dict_);
    ASSERT_TRUE(goal.ok());
    EXPECT_TRUE(db_->Entails(*goal)) << fact;
  }
  for (const char* non_fact :
       {"grace type faculty .", "ada takes logic .",
        "bob type professor ."}) {
    Result<Graph> goal = ParseGraph(non_fact, &dict_);
    ASSERT_TRUE(goal.ok());
    EXPECT_FALSE(db_->Entails(*goal)) << non_fact;
  }
}

TEST_F(ScenarioTest, AnonymousTutorIsAProfessor) {
  // The blank tutor supervises, so dom typing makes it a professor.
  Result<Graph> goal =
      ParseGraph("_:someone type professor .\n_:someone teaches complexity .",
                 &dict_);
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE(db_->Entails(*goal));
}

TEST_F(ScenarioTest, QueryWithConstraintSkipsAnonymousStaff) {
  Query q = Q(&dict_,
              "head: ?T staffOf ?C .\n"
              "body: ?T teaches ?C .\n"
              "bind: ?T\n");
  Result<std::vector<Graph>> pre = db_->PreAnswer(q);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->size(), 2u);  // ada, turing; not the blank tutor
}

TEST_F(ScenarioTest, HypotheticalPremiseQuery) {
  // Hypothesis: teaching assistants count as teachers.
  Query q = Q(&dict_,
              "head: ?X type faculty .\n"
              "body: ?X type faculty .\n"
              "premise: assists sp teaches .\n"
              "premise: dan assists logic .\n");
  Result<std::vector<Graph>> pre = db_->PreAnswer(q);
  ASSERT_TRUE(pre.ok());
  bool dan_found = false;
  for (const Graph& answer : *pre) {
    for (const Triple& t : answer) {
      if (t.s == dict_.Iri("dan")) dan_found = true;
    }
  }
  EXPECT_TRUE(dan_found);
}

TEST_F(ScenarioTest, ContainmentAmongCourseQueries) {
  // Containment quantifies over ALL databases, so the sp schema triple
  // must be part of the query for the subsumption to hold: a teachers
  // query that carries "teaches sp involvedIn" in its body is contained
  // in the plain involvedIn query (nf(B) closes the derived edge).
  Query all_involved = Q(&dict_,
                         "head: ?P inCourse ?C .\n"
                         "body: ?P involvedIn ?C .\n");
  Query schema_aware_teachers = Q(&dict_,
                                  "head: ?P inCourse ?C .\n"
                                  "body: teaches sp involvedIn .\n"
                                  "body: ?P teaches ?C .\n");
  Result<bool> narrower =
      ContainedStandard(schema_aware_teachers, all_involved, &dict_);
  ASSERT_TRUE(narrower.ok());
  EXPECT_TRUE(*narrower);
  // Without the schema triple in the body, no database-independent
  // containment holds in either direction.
  Query bare_teachers = Q(&dict_,
                          "head: ?P inCourse ?C .\n"
                          "body: ?P teaches ?C .\n");
  Result<bool> without = ContainedStandard(bare_teachers, all_involved,
                                           &dict_);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(*without);
  Result<bool> reverse = ContainedStandard(all_involved, bare_teachers,
                                           &dict_);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(*reverse);
}

TEST_F(ScenarioTest, PrerequisiteChainsViaPaths) {
  Result<PathExpr> path = ParsePathExpr("prerequisite+", &dict_);
  ASSERT_TRUE(path.ok());
  std::vector<Term> downstream =
      EvalPathFrom(db_->graph(), *path, {dict_.Iri("logic")});
  EXPECT_EQ(downstream.size(), 2u);  // computability, complexity
  // Who is qualified to take complexity? Students of any prerequisite.
  Result<PathExpr> qualified =
      ParsePathExpr("^prerequisite+/^takes", &dict_);
  ASSERT_TRUE(qualified.ok());
  std::vector<Term> students =
      EvalPathFrom(db_->graph(), *qualified, {dict_.Iri("complexity")});
  EXPECT_EQ(students.size(), 2u);  // grace (logic), bob (computability)
}

TEST_F(ScenarioTest, SparqlOverTheClosure) {
  Result<SparqlQuery> q = ParseSparql(
      "SELECT ?P ?C WHERE { "
      "  ?P type person . "
      "  OPTIONAL { ?P involvedIn ?C . } "
      "  FILTER ( bound(?C) ) "
      "}",
      &dict_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Result<MappingSet> rows =
      EvalSelect(db_->Normalized(), q->pattern, q->select);
  ASSERT_TRUE(rows.ok());
  // ada/logic, turing/computability, grace/logic, bob/computability —
  // the anonymous tutor is a person too but folds in nf? It has its own
  // distinct facts (supervises carol), so it survives normalization.
  EXPECT_GE(rows->size(), 5u);
}

TEST_F(ScenarioTest, NormalizationIsConsistentUnderMutation) {
  size_t before = db_->Normalized().size();
  db_->Insert(Triple(dict_.Iri("dana"), dict_.Iri("takes"),
                     dict_.Iri("logic")));
  size_t after = db_->Normalized().size();
  EXPECT_GT(after, before);
  Result<Graph> goal = ParseGraph("dana type student .", &dict_);
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE(db_->Entails(*goal));
}

}  // namespace
}  // namespace swdb
