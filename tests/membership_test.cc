#include <gtest/gtest.h>

#include "gen/generators.h"
#include "inference/closure.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

// Cross-checks ClosureMembership against the materialized closure on
// every triple over a small term universe.
void CrossCheck(const Graph& g, bool expect_direct) {
  ClosureMembership membership(g);
  EXPECT_EQ(membership.IsDirect(), expect_direct);
  Graph cl = RdfsClosure(g);

  std::vector<Term> universe = g.Universe();
  for (Term v : vocab::kAll) universe.push_back(v);
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());

  for (Term s : universe) {
    for (Term p : universe) {
      if (!p.IsIri()) continue;
      for (Term o : universe) {
        Triple t(s, p, o);
        EXPECT_EQ(membership.Contains(t), cl.Contains(t))
            << "disagreement on triple (" << s.bits() << "," << p.bits()
            << "," << o.bits() << ")";
      }
    }
  }
}

TEST(ClosureMembership, DirectModeOnScSpChains) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "p sp q .\n"
                 "x p y .\n");
  CrossCheck(g, /*expect_direct=*/true);
}

TEST(ClosureMembership, DirectModeWithDomRange) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "p dom c .\n"
                 "q range d .\n"
                 "r sp p .\n"
                 "r sp q .\n"
                 "x r y .\n"
                 "c sc e .\n");
  CrossCheck(g, /*expect_direct=*/true);
}

TEST(ClosureMembership, DirectModeWithTypeFacts) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "x type a .\n"
                 "y type b .\n");
  CrossCheck(g, /*expect_direct=*/true);
}

TEST(ClosureMembership, DirectModeWithBlanks) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "_:X sc b .\n"
                 "a sc _:X .\n"
                 "u type _:X .\n"
                 "p dom _:C .\n"
                 "m p n .\n");
  CrossCheck(g, /*expect_direct=*/true);
}

TEST(ClosureMembership, DirectModeOnScCycle) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc a .\n"
                 "x type a .\n");
  CrossCheck(g, /*expect_direct=*/true);
}

TEST(ClosureMembership, FallbackOnVocabInObjectPosition) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "e sp sc .\n"
                 "a e b .\n"
                 "x type a .\n");
  CrossCheck(g, /*expect_direct=*/false);
}

TEST(ClosureMembership, FallbackOnVocabInSubjectPosition) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "type dom a .\n"
                 "a sc b .\n"
                 "x type a .\n"
                 "x type b .\n");
  CrossCheck(g, /*expect_direct=*/false);
}

TEST(ClosureMembership, RandomSchemaWorkloads) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Dictionary dict;
    Rng rng(seed);
    SchemaWorkloadSpec spec;
    spec.num_classes = 5;
    spec.num_properties = 4;
    spec.num_instances = 5;
    spec.num_facts = 8;
    Graph g = SchemaWorkload(spec, &dict, &rng);
    CrossCheck(g, /*expect_direct=*/true);
  }
}

TEST(ClosureMembership, IllFormedTripleNeverInClosure) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .");
  ClosureMembership membership(g);
  Term a = dict.Iri("a");
  Term blank = dict.Blank("B");
  EXPECT_FALSE(membership.Contains(Triple(a, blank, a)));
}

}  // namespace
}  // namespace swdb
