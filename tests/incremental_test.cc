// The incremental maintenance engine, cross-checked against from-scratch
// recomputation:
//   * RdfsClosureDelta / RdfsClosureErase vs RdfsClosure on random
//     mutation sequences (including pathological vocabulary placements);
//   * IncrementalClosure (the persistent engine) under interleaved
//     insert/erase series;
//   * Graph's in-place permutation-index maintenance vs freshly built
//     indexes, across every bound-position combination;
//   * the Database facade: ≥1000 random Insert/Erase/Apply/ExecuteQuery/
//     Entails steps, asserting the maintained closure and nf(D) are
//     bit-identical to scratch recomputation at every step.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "gen/generators.h"
#include "inference/closure.h"
#include "normal/normal_form.h"
#include "query/database.h"
#include "rdf/graph.h"
#include "testutil.h"
#include "util/rng.h"

namespace swdb {
namespace {

using swdb::testing::Data;

// A small universe that exercises every rule: schema terms, instances,
// and (for the pathological variants) the reserved vocabulary itself.
std::vector<Term> Universe(Dictionary* dict, bool pathological) {
  std::vector<Term> terms = {
      dict->Iri("u:a"), dict->Iri("u:b"), dict->Iri("u:c"),
      dict->Iri("u:p"), dict->Iri("u:q"), dict->Iri("u:x"),
      dict->Iri("u:y"), dict->Blank("uB1"), dict->Blank("uB2"),
  };
  if (pathological) {
    for (Term v : vocab::kAll) terms.push_back(v);
  }
  return terms;
}

Triple RandomTriple(const std::vector<Term>& universe, Rng* rng,
                    double schema_bias) {
  Term s = universe[rng->Below(universe.size())];
  Term o = universe[rng->Below(universe.size())];
  Term p;
  if (rng->Next() % 100 < static_cast<uint64_t>(schema_bias * 100)) {
    p = vocab::kAll[rng->Below(vocab::kReservedIris)];
  } else {
    p = universe[rng->Below(universe.size())];
  }
  return Triple(s, p, o);
}

// ---------------------------------------------------------------------
// Free-function delta maintenance vs scratch.
// ---------------------------------------------------------------------

TEST(RdfsClosureDelta, ExtendsClosureExactly) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "cat sc mammal .\n"
                 "mammal sc animal .\n"
                 "tom type cat .\n");
  Graph cl = RdfsClosure(g);
  Graph delta = Data(&dict, "animal sc being .\nfelix type cat .\n");
  ClosureDeltaStats stats;
  Graph incremental = RdfsClosureDelta(cl, delta, nullptr, &stats);
  EXPECT_EQ(incremental, RdfsClosure(Graph::Union(g, delta)));
  EXPECT_EQ(stats.delta_size, 2u);
  EXPECT_GT(stats.derived, 0u);
}

TEST(RdfsClosureDelta, NoOpDeltaDerivesNothing) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\nb sc c .\n");
  Graph cl = RdfsClosure(g);
  // (a, sc, c) is already derived; re-asserting it must be free.
  ClosureDeltaStats stats;
  Graph incremental =
      RdfsClosureDelta(cl, Data(&dict, "a sc c ."), nullptr, &stats);
  EXPECT_EQ(incremental, cl);
  EXPECT_EQ(stats.delta_size, 0u);
  EXPECT_EQ(stats.derived, 0u);
}

TEST(RdfsClosureDelta, RecordsTraceForNewDerivationsOnly) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\n");
  Graph cl = RdfsClosure(g);
  std::vector<RuleApplication> trace;
  Graph incremental =
      RdfsClosureDelta(cl, Data(&dict, "b sc c ."), &trace);
  EXPECT_EQ(incremental, RdfsClosure(Data(&dict, "a sc b .\nb sc c .")));
  EXPECT_FALSE(trace.empty());
  // Every traced application derives something new relative to the old
  // closure (a single application may pair a new conclusion with an
  // already-known one, e.g. rule (12) emitting both reflexivity edges).
  for (const RuleApplication& app : trace) {
    bool any_new = false;
    for (const Triple& c : app.conclusions) {
      any_new = any_new || !cl.Contains(c);
    }
    EXPECT_TRUE(any_new);
  }
}

TEST(RdfsClosureErase, DeletedButRederivableTripleSurvives) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n");  // asserted AND derivable
  Graph cl = RdfsClosure(g);
  Graph deleted = Data(&dict, "a sc c .");
  Graph after = g;
  after.Erase(deleted[0]);
  ClosureDeltaStats stats;
  Graph maintained = RdfsClosureErase(cl, after, deleted, &stats);
  EXPECT_EQ(maintained, RdfsClosure(after));
  EXPECT_TRUE(maintained.Contains(deleted[0]));  // rederived via chain
  // The deleted triple is one-step derivable from the remaining base,
  // so over-deletion protects it outright: no suspicion propagates.
  EXPECT_EQ(stats.overdeleted, 0u);
}

TEST(RdfsClosureErase, DownstreamDerivationsFall) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "p dom c .\n"
                 "c sc d .\n"
                 "x p y .\n");
  Graph cl = RdfsClosure(g);
  Term x = dict.Iri("x");
  Term d = dict.Iri("d");
  ASSERT_TRUE(cl.Contains(Triple(x, vocab::kType, d)));
  Graph deleted = Data(&dict, "x p y .");
  Graph after = g;
  after.Erase(deleted[0]);
  Graph maintained = RdfsClosureErase(cl, after, deleted);
  EXPECT_EQ(maintained, RdfsClosure(after));
  EXPECT_FALSE(maintained.Contains(Triple(x, vocab::kType, d)));
}

// Randomized: arbitrary single-triple inserts and erases, pathological
// vocabulary allowed everywhere, maintained closure must stay
// bit-identical to the scratch recomputation.
class DeltaClosureFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaClosureFuzz,
                         ::testing::Range<uint64_t>(1, 21));

TEST_P(DeltaClosureFuzz, DeltaAndEraseMatchScratch) {
  Dictionary dict;
  Rng rng(GetParam());
  const bool pathological = GetParam() % 2 == 0;
  std::vector<Term> universe = Universe(&dict, pathological);
  Graph base;
  Graph cl = RdfsClosure(base);
  for (int step = 0; step < 60; ++step) {
    const bool erase = !base.empty() && rng.Below(100) < 35;
    if (erase) {
      Triple victim = base[rng.Below(base.size())];
      base.Erase(victim);
      cl = RdfsClosureErase(cl, base, Graph({victim}));
    } else {
      Triple t = RandomTriple(universe, &rng, 0.5);
      if (!t.IsWellFormedData()) continue;
      if (!base.Insert(t)) continue;
      cl = RdfsClosureDelta(cl, Graph({t}));
    }
    ASSERT_EQ(cl, RdfsClosure(base))
        << "seed " << GetParam() << " step " << step;
  }
}

// ---------------------------------------------------------------------
// IncrementalClosure: the persistent engine.
// ---------------------------------------------------------------------

TEST(IncrementalClosure, MaintainsAcrossInterleavedUpdates) {
  Dictionary dict;
  Rng rng(7);
  std::vector<Term> universe = Universe(&dict, /*pathological=*/false);
  Graph base = Data(&dict, "a sc b .\nx type a .\n");
  IncrementalClosure inc(base);
  EXPECT_EQ(inc.closure(), RdfsClosure(base));
  uint64_t version = inc.version();
  for (int step = 0; step < 40; ++step) {
    if (!base.empty() && rng.Below(100) < 30) {
      Triple victim = base[rng.Below(base.size())];
      base.Erase(victim);
      inc.EraseDelta(base, Graph({victim}));
    } else {
      Triple t = RandomTriple(universe, &rng, 0.5);
      if (!t.IsWellFormedData() || !base.Insert(t)) continue;
      inc.InsertDelta(Graph({t}));
    }
    ASSERT_EQ(inc.closure(), RdfsClosure(base)) << "step " << step;
    ASSERT_GE(inc.version(), version);
    version = inc.version();
  }
}

TEST(IncrementalClosure, VersionBumpsOnlyOnContentChange) {
  Dictionary dict;
  Graph base = Data(&dict, "a sc b .\nb sc c .\n");
  IncrementalClosure inc(base);
  const uint64_t v0 = inc.version();
  // Already derived: no content change, no version bump.
  inc.InsertDelta(Data(&dict, "a sc c ."));
  EXPECT_EQ(inc.version(), v0);
  inc.InsertDelta(Data(&dict, "c sc d ."));
  EXPECT_GT(inc.version(), v0);
}

// ---------------------------------------------------------------------
// Graph: in-place permutation-index maintenance.
// ---------------------------------------------------------------------

// Compares every bound-position combination between the incrementally
// maintained graph and a freshly indexed copy of the same triple set.
void ExpectIndexesEquivalent(const Graph& maintained, Rng* rng,
                             const std::vector<Term>& universe) {
  Graph fresh(std::vector<Triple>(maintained.begin(), maintained.end()));
  for (int i = 0; i < 40; ++i) {
    std::optional<Term> s, p, o;
    if (rng->Below(2)) s = universe[rng->Below(universe.size())];
    if (rng->Below(2)) p = universe[rng->Below(universe.size())];
    if (rng->Below(2)) o = universe[rng->Below(universe.size())];
    std::vector<Triple> got, want;
    maintained.Match(s, p, o, [&](const Triple& t) {
      got.push_back(t);
      return true;
    });
    fresh.Match(s, p, o, [&](const Triple& t) {
      want.push_back(t);
      return true;
    });
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want);
    ASSERT_EQ(maintained.CountMatches(s, p, o), fresh.CountMatches(s, p, o));
  }
}

TEST(GraphIndexMaintenance, PatchedIndexesMatchFreshRebuild) {
  Dictionary dict;
  Rng rng(11);
  std::vector<Term> universe = Universe(&dict, /*pathological=*/false);
  Graph g;
  // Warm the permutation indexes so mutations take the patch path.
  g.CountMatches(std::nullopt, universe[0], std::nullopt);
  uint64_t epoch = g.epoch();
  for (int step = 0; step < 300; ++step) {
    if (!g.empty() && rng.Below(100) < 40) {
      Triple victim = g[rng.Below(g.size())];
      ASSERT_TRUE(g.Erase(victim));
      ASSERT_GT(g.epoch(), epoch);
    } else {
      Triple t = RandomTriple(universe, &rng, 0.3);
      if (!t.IsWellFormedData()) continue;
      bool added = g.Insert(t);
      ASSERT_EQ(g.epoch() > epoch, added);  // no-ops keep the epoch
    }
    epoch = g.epoch();
    if (step % 10 == 0) ExpectIndexesEquivalent(g, &rng, universe);
  }
  ExpectIndexesEquivalent(g, &rng, universe);
}

TEST(GraphEpoch, CountsOnlyEffectiveMutations) {
  Dictionary dict;
  Graph g;
  Triple t(dict.Iri("a"), dict.Iri("p"), dict.Iri("b"));
  EXPECT_EQ(g.epoch(), 0u);
  EXPECT_TRUE(g.Insert(t));
  EXPECT_EQ(g.epoch(), 1u);
  EXPECT_FALSE(g.Insert(t));  // duplicate
  EXPECT_EQ(g.epoch(), 1u);
  g.InsertAll(Graph({t}));  // subset: no-op
  EXPECT_EQ(g.epoch(), 1u);
  Triple u(dict.Iri("a"), dict.Iri("p"), dict.Iri("c"));
  g.InsertAll(Graph({u}));
  EXPECT_EQ(g.epoch(), 2u);
  EXPECT_TRUE(g.Erase(t));
  EXPECT_EQ(g.epoch(), 3u);
  EXPECT_FALSE(g.Erase(t));  // absent
  EXPECT_EQ(g.epoch(), 3u);
}

// ---------------------------------------------------------------------
// ClosureMembership: epoch awareness.
// ---------------------------------------------------------------------

TEST(ClosureMembershipEpoch, DetectsStalenessAndRefreshes) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\n");
  ClosureMembership membership(g);
  EXPECT_TRUE(membership.InSync());
  Term a = dict.Iri("a");
  Term c = dict.Iri("c");
  EXPECT_FALSE(membership.Contains(Triple(a, vocab::kSc, c)));
  g.Insert(Triple(dict.Iri("b"), vocab::kSc, c));
  EXPECT_FALSE(membership.InSync());
  membership.Refresh();
  EXPECT_TRUE(membership.InSync());
  EXPECT_EQ(membership.built_epoch(), g.epoch());
  EXPECT_TRUE(membership.Contains(Triple(a, vocab::kSc, c)));
}

TEST(ClosureMembershipEpochDeathTest, StaleUseAborts) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\n");
  ClosureMembership membership(g);
  g.Insert(Triple(dict.Iri("b"), vocab::kSc, dict.Iri("c")));
  EXPECT_DEATH(membership.Contains(g[0]), "epoch mismatch");
}

// ---------------------------------------------------------------------
// Database: the full facade under random interleaved traffic.
// ---------------------------------------------------------------------

TEST(DatabaseIncremental, MutationBatchGroupsMaintenance) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a sc b .\nb sc c .\nx type a .\n").ok());
  (void)db.Normalized();  // materialize the caches
  MutationBatch batch;
  batch.Erase(Data(&dict, "b sc c .")[0])
      .Insert(Triple(dict.Iri("c"), vocab::kSc, dict.Iri("d")))
      .Insert(Triple(dict.Iri("y"), vocab::kType, dict.Iri("b")));
  Database::ApplyResult r = db.Apply(batch);
  EXPECT_EQ(r.erased, 1u);
  EXPECT_EQ(r.inserted, 2u);
  EXPECT_EQ(db.stats().batches, 1u);
  EXPECT_EQ(db.Closure(), RdfsClosure(db.graph()));
  EXPECT_EQ(db.Normalized(), NormalForm(db.graph()));
  // One DRed pass + one delta pass, not one per triple.
  EXPECT_EQ(db.stats().closure_erase_updates, 1u);
  EXPECT_EQ(db.stats().closure_delta_updates, 1u);
}

TEST(DatabaseIncremental, StatsObserveMaintenance) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a sc b .\n").ok());
  EXPECT_EQ(db.stats().closure_full_builds, 0u);  // lazy
  (void)db.Closure();
  EXPECT_EQ(db.stats().closure_full_builds, 1u);
  (void)db.Closure();
  EXPECT_EQ(db.stats().closure_cache_hits, 1u);
  db.Insert(Triple(dict.Iri("b"), vocab::kSc, dict.Iri("c")));
  EXPECT_EQ(db.stats().closure_delta_updates, 1u);
  EXPECT_EQ(db.stats().closure_full_builds, 1u);  // never recomputed
  db.Erase(Triple(dict.Iri("b"), vocab::kSc, dict.Iri("c")));
  EXPECT_EQ(db.stats().closure_erase_updates, 1u);
  (void)db.Normalized();
  (void)db.Normalized();
  EXPECT_EQ(db.stats().nf_rebuilds, 1u);
  EXPECT_EQ(db.stats().nf_cache_hits, 1u);
  EXPECT_TRUE(db.EntailsTriple(Triple(dict.Iri("a"), vocab::kSc,
                                      dict.Iri("b"))));
  EXPECT_EQ(db.stats().membership_builds, 1u);
}

TEST(DatabaseIncremental, NfCacheSurvivesDerivableInserts) {
  Dictionary dict;
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a sc b .\nb sc c .\n").ok());
  (void)db.Normalized();
  ASSERT_EQ(db.stats().nf_rebuilds, 1u);
  // (a, sc, c) is already in the closure: the maintained closure does
  // not change, so nf(D) must not be recomputed.
  db.Insert(Triple(dict.Iri("a"), vocab::kSc, dict.Iri("c")));
  (void)db.Normalized();
  EXPECT_EQ(db.stats().nf_rebuilds, 1u);
  EXPECT_EQ(db.stats().nf_cache_hits, 1u);
}

TEST(DatabaseIncremental, BulkLoadFallsBackToBatchedRebuild) {
  Dictionary dict;
  Rng rng(3);
  Database db(&dict);
  ASSERT_TRUE(db.InsertText("a sc b .\n").ok());
  (void)db.Closure();
  SchemaWorkloadSpec spec;
  spec.num_classes = 8;
  spec.num_properties = 5;
  spec.num_instances = 20;
  spec.num_facts = 40;
  db.InsertGraph(SchemaWorkload(spec, &dict, &rng));
  EXPECT_EQ(db.stats().closure_bulk_resets, 1u);
  EXPECT_EQ(db.Closure(), RdfsClosure(db.graph()));
  EXPECT_EQ(db.stats().closure_full_builds, 2u);
}

// The acceptance fuzz: ≥1000 random mutation steps interleaved with
// queries and entailment checks; maintained closure and nf(D) must be
// bit-identical to scratch recomputation at every step, and every
// query/entailment answer must match a fresh database over the same
// data.
class DatabaseFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DatabaseFuzz,
                         ::testing::Range<uint64_t>(1, 6));

TEST_P(DatabaseFuzz, MaintainedStateMatchesScratchRecompute) {
  Dictionary dict;
  Rng rng(GetParam() * 97);
  const bool pathological = GetParam() % 2 == 0;
  std::vector<Term> universe = Universe(&dict, pathological);
  Database db(&dict);
  (void)db.Normalized();  // materialize: every mutation is maintained
  const char* query_text =
      "head: ?X below c .\n"
      "body: ?X sc c .\n";
  int mutations = 0;
  for (int step = 0; mutations < 220; ++step) {
    const uint64_t dice = rng.Below(100);
    if (dice < 45 || db.size() == 0) {
      Triple t = RandomTriple(universe, &rng, 0.5);
      if (!t.IsWellFormedData()) continue;
      db.Insert(t);
      ++mutations;
    } else if (dice < 70) {
      db.Erase(db.graph()[rng.Below(db.size())]);
      ++mutations;
    } else if (dice < 85) {
      MutationBatch batch;
      for (int i = 0; i < 3; ++i) {
        Triple t = RandomTriple(universe, &rng, 0.5);
        if (t.IsWellFormedData()) batch.Insert(t);
      }
      if (db.size() > 0) batch.Erase(db.graph()[rng.Below(db.size())]);
      db.Apply(batch);
      mutations += static_cast<int>(batch.size());
    } else if (dice < 93) {
      Result<Graph> got = db.ExecuteQuery(query_text);
      Database fresh_db(&dict);
      fresh_db.InsertGraph(db.graph());
      Result<Graph> want = fresh_db.ExecuteQuery(query_text);
      ASSERT_EQ(got.ok(), want.ok());
      if (got.ok()) ASSERT_EQ(*got, *want);
      continue;
    } else {
      Triple t = RandomTriple(universe, &rng, 0.5);
      if (!t.IsWellFormedData()) continue;
      ASSERT_EQ(db.Entails(Graph({t})), RdfsEntails(db.graph(), Graph({t})));
      ASSERT_EQ(db.EntailsTriple(t), RdfsClosure(db.graph()).Contains(t));
      continue;
    }
    // After every mutation: maintained artifacts == scratch recompute.
    ASSERT_EQ(db.Closure(), RdfsClosure(db.graph()))
        << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(db.Normalized(), NormalForm(db.graph()))
        << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(db.stats().closure_full_builds, 1u);  // genuinely incremental
  }
  // Batched mutations maintain once per batch, so the update count is
  // below the mutation count — but every one of the 220 mutations went
  // through some incremental pass, never a full rebuild.
  EXPECT_GE(db.stats().closure_delta_updates +
                db.stats().closure_erase_updates,
            100u);
}

}  // namespace
}  // namespace swdb
