// End-to-end tests over the paper's Fig. 1 art-schema example: parsing,
// RDFS inference, normal forms, query answering, proofs and containment
// working together through the public API.

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "inference/proof.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "parser/text.h"
#include "query/answer.h"
#include "query/containment.h"
#include "rdf/iso.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::Q;

// The paper's Fig. 1: a schema describing art resources, with schema and
// data at the same level.
constexpr const char* kArtGraph = R"(
# Schema
painter   sc artist .
sculptor  sc artist .
painting  sc artifact .
sculpture sc artifact .
paints    sp creates .
sculpts   sp creates .
paints    dom painter .
paints    range painting .
sculpts   dom sculptor .
sculpts   range sculpture .
creates   dom artist .
creates   range artifact .
exhibited dom artifact .
# Data
Picasso   paints Guernica .
Rodin     sculpts TheThinker .
Guernica  exhibited ReinaSofia .
_:Flemish paints TheBattle .
TheBattle exhibited Uffizi .
)";

class ArtIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<Graph> g = ParseGraph(kArtGraph, &dict_);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    art_ = *g;
  }

  Dictionary dict_;
  Graph art_;
};

TEST_F(ArtIntegrationTest, SchemaInferences) {
  Graph cl = RdfsClosure(art_);
  Term picasso = dict_.Iri("Picasso");
  Term guernica = dict_.Iri("Guernica");
  // dom/range typing.
  EXPECT_TRUE(cl.Contains(Triple(picasso, vocab::kType,
                                 dict_.Iri("painter"))));
  EXPECT_TRUE(cl.Contains(Triple(guernica, vocab::kType,
                                 dict_.Iri("painting"))));
  // sc lifting.
  EXPECT_TRUE(cl.Contains(Triple(picasso, vocab::kType,
                                 dict_.Iri("artist"))));
  EXPECT_TRUE(cl.Contains(Triple(guernica, vocab::kType,
                                 dict_.Iri("artifact"))));
  // sp inheritance.
  EXPECT_TRUE(cl.Contains(Triple(picasso, dict_.Iri("creates"), guernica)));
  // Nothing spurious.
  EXPECT_FALSE(cl.Contains(Triple(picasso, vocab::kType,
                                  dict_.Iri("sculptor"))));
  EXPECT_FALSE(cl.Contains(Triple(picasso, dict_.Iri("sculpts"),
                                  guernica)));
}

TEST_F(ArtIntegrationTest, EntailmentQueriesWithBlanks) {
  // "Some painter painted something exhibited at the Reina Sofia."
  Graph question = Data(&dict_,
                        "_:A paints _:W .\n"
                        "_:W exhibited ReinaSofia .\n"
                        "_:A type painter .\n");
  EXPECT_TRUE(RdfsEntails(art_, question));
  Graph false_question = Data(&dict_,
                              "_:A sculpts _:W .\n"
                              "_:W exhibited ReinaSofia .\n");
  EXPECT_FALSE(RdfsEntails(art_, false_question));
}

TEST_F(ArtIntegrationTest, ProofOfDerivedFact) {
  Graph goal = Data(&dict_, "Rodin creates TheThinker .");
  Result<Proof> proof = ProveEntailment(art_, goal);
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(CheckProof(*proof).ok()) << CheckProof(*proof).ToString();
}

TEST_F(ArtIntegrationTest, FlemishQueryFromThePaper) {
  // §4's example: artifacts created by Flemish artists exhibited at the
  // Uffizi. We model "Flemish" via an explicit type triple on the blank.
  Graph db = art_;
  db.Insert(dict_.Blank("Flemish"), vocab::kType, dict_.Iri("Flemish"));
  Query q = Q(&dict_,
              "head: ?A creates ?Y .\n"
              "body: ?A type Flemish .\n"
              "body: ?A paints ?Y .\n"
              "body: ?Y exhibited Uffizi .\n");
  QueryEvaluator eval(&dict_);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, db);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(pre->size(), 1u);
  // The answer binds ?A to the blank Flemish painter.
  const Graph& answer = (*pre)[0];
  ASSERT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer[0].s.IsBlank());
  EXPECT_EQ(answer[0].o, dict_.Iri("TheBattle"));
}

TEST_F(ArtIntegrationTest, ConstraintExcludesAnonymousArtists) {
  Query q = Q(&dict_,
              "head: ?A madeSomething yes .\n"
              "body: ?A creates ?Y .\n"
              "bind: ?A\n");
  QueryEvaluator eval(&dict_);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q, art_);
  ASSERT_TRUE(pre.ok());
  // Picasso and Rodin qualify; the anonymous Flemish painter does not.
  EXPECT_EQ(pre->size(), 2u);
}

TEST_F(ArtIntegrationTest, PremiseExtendsSchemaHypothetically) {
  // Hypothetically assume exhibited-at-Uffizi implies "famous".
  Query q = Q(&dict_,
              "head: ?Y type famousWork .\n"
              "body: ?Y type famousWork .\n"
              "premise: exhibited dom artifact .\n"
              "premise: exhibitedAtUffizi sp exhibited .\n"
              "premise: exhibitedAtUffizi range famousPlace .\n");
  // Simpler: supply the type fact directly as a premise.
  Query q2 = Q(&dict_,
               "head: ?Y worth much .\n"
               "body: ?Y type masterpiece .\n"
               "premise: Guernica type masterpiece .\n");
  QueryEvaluator eval(&dict_);
  Result<std::vector<Graph>> pre = eval.PreAnswer(q2, art_);
  ASSERT_TRUE(pre.ok());
  ASSERT_EQ(pre->size(), 1u);
  EXPECT_TRUE((*pre)[0].Contains(Triple(dict_.Iri("Guernica"),
                                        dict_.Iri("worth"),
                                        dict_.Iri("much"))));
  (void)q;
}

TEST_F(ArtIntegrationTest, NormalFormIsStableAcrossPresentations) {
  // Re-serialize, reparse into a fresh dictionary, add derivable triples;
  // the normal form stays isomorphic (same dictionary required for
  // comparison, so mutate within dict_).
  Graph redundant = art_;
  redundant.Insert(dict_.Iri("Picasso"), dict_.Iri("creates"),
                   dict_.Iri("Guernica"));  // derivable
  redundant.Insert(dict_.Iri("Picasso"), vocab::kType,
                   dict_.Iri("painter"));  // derivable
  ASSERT_TRUE(RdfsEquivalent(art_, redundant));
  EXPECT_TRUE(AreIsomorphic(NormalForm(art_), NormalForm(redundant)));
}

TEST_F(ArtIntegrationTest, QueryContainmentInTheArtDomain) {
  // "painters of exhibited works" ⊑ "creators of anything".
  Query painters = Q(&dict_,
                     "head: ?A made ?Y .\n"
                     "body: ?A paints ?Y .\n"
                     "body: ?Y exhibited ?W .\n");
  Query creators = Q(&dict_,
                     "head: ?A made ?Y .\n"
                     "body: ?A paints ?Y .\n");
  Result<bool> contained = ContainedStandard(painters, creators, &dict_);
  ASSERT_TRUE(contained.ok());
  EXPECT_TRUE(*contained);
  Result<bool> reverse = ContainedStandard(creators, painters, &dict_);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(*reverse);
}

TEST_F(ArtIntegrationTest, AnswersRoundTripThroughSerializer) {
  Query q = Q(&dict_,
              "head: ?A creatorOf ?Y .\n"
              "body: ?A creates ?Y .\n");
  QueryEvaluator eval(&dict_);
  Result<Graph> ans = eval.AnswerUnion(q, art_);
  ASSERT_TRUE(ans.ok());
  std::string text = FormatGraph(*ans, dict_);
  Result<Graph> reparsed = ParseGraph(text, &dict_);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *ans);
}

}  // namespace
}  // namespace swdb
