// Parameterized property tests: each suite sweeps a seed range and
// checks an invariant from the paper on randomized workloads.

#include <gtest/gtest.h>

#include "cq/cq.h"
#include "gen/generators.h"
#include "inference/closure.h"
#include "model/canonical.h"
#include "normal/core.h"
#include "normal/normal_form.h"
#include "query/answer.h"
#include "rdf/hom.h"
#include "rdf/iso.h"
#include "util/rng.h"

namespace swdb {
namespace {

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Range<uint64_t>(1, 13));

Graph SmallSchema(Dictionary* dict, Rng* rng) {
  SchemaWorkloadSpec spec;
  spec.num_classes = 4;
  spec.num_properties = 3;
  spec.num_instances = 5;
  spec.num_facts = 8;
  spec.blank_instance_ratio = 0.25;
  return SchemaWorkload(spec, dict, rng);
}

TEST_P(SeededProperty, ClosureIsSoundAndMonotone) {
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  Graph cl = RdfsClosure(g);
  // Soundness: G ⊨ cl(G) and cl(G) ⊨ G (equivalence, Def. 2.7).
  EXPECT_TRUE(RdfsEquivalent(g, cl));
  // Monotone: adding a triple never shrinks the closure.
  Graph bigger = g;
  bigger.Insert(dict.Iri("urn:extra"), dict.Iri("urn:p0"),
                dict.Iri("urn:extra2"));
  EXPECT_TRUE(cl.IsSubgraphOf(RdfsClosure(bigger)));
}

TEST_P(SeededProperty, ClosureAgreesWithNaiveReference) {
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  EXPECT_EQ(RdfsClosure(g), RdfsClosureNaive(g));
}

TEST_P(SeededProperty, SemanticClosureMatchesDeductive) {
  // Thm 3.6(2) on randomized workloads.
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  EXPECT_EQ(SemanticClosure(g, &dict), RdfsClosure(g));
}

TEST_P(SeededProperty, MembershipMatchesMaterializedClosure) {
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  ClosureMembership membership(g);
  Graph cl = RdfsClosure(g);
  // Every closure triple is a member; sampled non-closure triples are
  // not.
  for (const Triple& t : cl) {
    EXPECT_TRUE(membership.Contains(t));
  }
  std::vector<Term> universe = g.Universe();
  for (int i = 0; i < 50; ++i) {
    Term s = universe[rng.Below(universe.size())];
    Term p = universe[rng.Below(universe.size())];
    Term o = universe[rng.Below(universe.size())];
    if (!p.IsIri()) continue;
    Triple t(s, p, o);
    EXPECT_EQ(membership.Contains(t), cl.Contains(t));
  }
}

TEST_P(SeededProperty, EntailmentHasCanonicalModelWitness) {
  // Thm 2.6/2.8 round trip: G ⊨ H iff the canonical model of G
  // satisfies H (checked by the independent model machinery).
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  SchemaWorkloadSpec tiny;
  tiny.num_classes = 2;
  tiny.num_properties = 2;
  tiny.num_instances = 2;
  tiny.num_facts = 2;
  Graph h = SchemaWorkload(tiny, &dict, &rng);
  EXPECT_EQ(RdfsEntails(g, h), SemanticRdfsEntails(g, h, &dict));
}

TEST_P(SeededProperty, SimpleEntailmentThreeWayAgreement) {
  // rdf solver == CQ pipeline == term-model semantics.
  Dictionary dict;
  Rng rng(GetParam());
  RandomGraphSpec spec;
  spec.num_nodes = 7;
  spec.num_triples = 10;
  spec.num_predicates = 2;
  spec.blank_ratio = 0.4;
  Graph g1 = RandomSimpleGraph(spec, &dict, &rng);
  spec.num_triples = 4;
  Graph g2 = RandomSimpleGraph(spec, &dict, &rng);
  bool solver = SimpleEntails(g1, g2);
  EXPECT_EQ(solver, CqSimpleEntails(g1, g2));
  EXPECT_EQ(solver, SemanticSimpleEntails(g1, g2));
}

TEST_P(SeededProperty, CoreIsLeanEquivalentAndIdempotent) {
  Dictionary dict;
  Rng rng(GetParam());
  RandomGraphSpec spec;
  spec.num_nodes = 7;
  spec.num_triples = 11;
  spec.num_predicates = 2;
  spec.blank_ratio = 0.6;
  Graph g = RandomSimpleGraph(spec, &dict, &rng);
  Graph core = Core(g);
  EXPECT_TRUE(IsLean(core));
  EXPECT_TRUE(SimpleEquivalent(core, g));
  EXPECT_EQ(Core(core), core);
  EXPECT_TRUE(core.IsSubgraphOf(g));
}

TEST_P(SeededProperty, EquivalenceIffIsomorphicCores) {
  // Thm 3.11(2) on random pairs built to be equivalent (blank-renamed
  // redundant extensions).
  Dictionary dict;
  Rng rng(GetParam());
  RandomGraphSpec spec;
  spec.num_nodes = 6;
  spec.num_triples = 8;
  spec.num_predicates = 2;
  spec.blank_ratio = 0.5;
  Graph g = RandomSimpleGraph(spec, &dict, &rng);
  // Build an equivalent variant: fresh copy + redundant specializations.
  Graph variant = FreshBlankCopy(g, &dict);
  for (int i = 0; i < 3 && !variant.empty(); ++i) {
    Triple t = variant[rng.Below(variant.size())];
    variant.Insert(Triple(t.s, t.p, dict.FreshBlank()));
  }
  ASSERT_TRUE(SimpleEquivalent(g, variant));
  EXPECT_TRUE(AreIsomorphic(Core(g), Core(variant)));
  // And a non-equivalent one: add a fresh ground fact.
  Graph other = g;
  other.Insert(dict.FreshIri(), dict.Iri("urn:p0"), dict.FreshIri());
  ASSERT_FALSE(SimpleEquivalent(g, other));
  EXPECT_FALSE(AreIsomorphic(Core(g), Core(other)));
}

TEST_P(SeededProperty, NormalFormUniqueAndSyntaxIndependent) {
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  Graph mutated = EquivalentMutation(g, 3, &dict, &rng);
  ASSERT_TRUE(RdfsEquivalent(g, mutated));
  EXPECT_TRUE(AreIsomorphic(NormalForm(g), NormalForm(mutated)));
}

TEST_P(SeededProperty, AnswersInvariantUnderDatabaseEquivalence) {
  // Thm 4.6 on randomized schema databases and derived queries.
  Dictionary dict;
  Rng rng(GetParam());
  Graph db = SmallSchema(&dict, &rng);
  Graph equivalent = EquivalentMutation(db, 3, &dict, &rng);
  ASSERT_TRUE(RdfsEquivalent(db, equivalent));
  Query q = PatternQueryFromGraph(db, 2, 0.5, &dict, &rng);
  if (!q.Validate().ok()) GTEST_SKIP();
  QueryEvaluator eval(&dict);
  Result<Graph> a1 = eval.AnswerUnion(q, db);
  Result<Graph> a2 = eval.AnswerUnion(q, equivalent);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_TRUE(AreIsomorphic(*a1, *a2));
}

TEST_P(SeededProperty, UnionAnswerEntailsMergeAnswer) {
  // Prop 4.5(2).
  Dictionary dict;
  Rng rng(GetParam());
  RandomGraphSpec spec;
  spec.num_nodes = 7;
  spec.num_triples = 10;
  spec.num_predicates = 3;
  spec.blank_ratio = 0.4;
  Graph db = RandomSimpleGraph(spec, &dict, &rng);
  Query q = PatternQueryFromGraph(db, 2, 0.6, &dict, &rng);
  if (!q.Validate().ok()) GTEST_SKIP();
  QueryEvaluator eval(&dict);
  Result<Graph> u = eval.AnswerUnion(q, db);
  Result<Graph> m = eval.AnswerMerge(q, db);
  ASSERT_TRUE(u.ok() && m.ok());
  EXPECT_TRUE(RdfsEntails(*u, *m));
}

TEST_P(SeededProperty, AnswerMonotoneUnderDatabaseEntailment) {
  // Prop 4.5(1): D' ⊇ D (hence D' ⊨ D) gives ans(q,D') ⊨ ans(q,D).
  Dictionary dict;
  Rng rng(GetParam());
  RandomGraphSpec spec;
  spec.num_nodes = 6;
  spec.num_triples = 8;
  spec.num_predicates = 2;
  spec.blank_ratio = 0.0;
  Graph db = RandomSimpleGraph(spec, &dict, &rng);
  Graph db_bigger = db;
  spec.num_triples = 4;
  db_bigger.InsertAll(RandomSimpleGraph(spec, &dict, &rng));
  Query q = PatternQueryFromGraph(db, 2, 0.5, &dict, &rng);
  if (!q.Validate().ok()) GTEST_SKIP();
  QueryEvaluator eval(&dict);
  Result<Graph> small = eval.AnswerUnion(q, db);
  Result<Graph> large = eval.AnswerUnion(q, db_bigger);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_TRUE(RdfsEntails(*large, *small));
}

TEST_P(SeededProperty, ProofsExistExactlyForEntailments) {
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = SmallSchema(&dict, &rng);
  Graph cl = RdfsClosure(g);
  // A triple from the closure is provable; a foreign triple is not.
  if (!cl.empty()) {
    Triple t = cl[rng.Below(cl.size())];
    EXPECT_TRUE(RdfsEntails(g, Graph{t}));
  }
  Triple foreign(dict.FreshIri(), dict.Iri("urn:p0"), dict.FreshIri());
  EXPECT_FALSE(RdfsEntails(g, Graph{foreign}));
}

}  // namespace
}  // namespace swdb
