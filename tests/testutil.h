#ifndef SWDB_TESTS_TESTUTIL_H_
#define SWDB_TESTS_TESTUTIL_H_

#include <string>

#include <gtest/gtest.h>

#include "parser/text.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/term.h"

namespace swdb::testing {

/// Parses a graph literal, failing the test on parse errors. Variables
/// allowed so the same helper builds pattern graphs.
inline Graph G(Dictionary* dict, const std::string& text) {
  Result<Graph> g = ParseGraph(text, dict, /*allow_vars=*/true);
  EXPECT_TRUE(g.ok()) << g.status().ToString() << "\nwhile parsing:\n"
                      << text;
  return g.ok() ? *g : Graph();
}

/// Parses a data graph (variables rejected).
inline Graph Data(Dictionary* dict, const std::string& text) {
  Result<Graph> g = ParseGraph(text, dict, /*allow_vars=*/false);
  EXPECT_TRUE(g.ok()) << g.status().ToString() << "\nwhile parsing:\n"
                      << text;
  return g.ok() ? *g : Graph();
}

/// Parses a query literal, failing the test on errors.
inline Query Q(Dictionary* dict, const std::string& text) {
  Result<Query> q = ParseQuery(text, dict);
  EXPECT_TRUE(q.ok()) << q.status().ToString() << "\nwhile parsing:\n"
                      << text;
  return q.ok() ? *q : Query();
}

}  // namespace swdb::testing

#endif  // SWDB_TESTS_TESTUTIL_H_
