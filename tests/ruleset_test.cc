#include <gtest/gtest.h>

#include "inference/closure.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using vocab::kSc;
using vocab::kSp;
using vocab::kType;

TEST(RuleSet, AllEqualsDefaultClosure) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "p sp q .\n"
                 "q dom b .\n"
                 "x p y .\n"
                 "u type a .\n");
  EXPECT_EQ(RdfsClosureWithRules(g, RuleSet::All()), RdfsClosure(g));
}

TEST(RuleSet, PreMarinMissesBlankPropertyTyping) {
  // Note 2.4: with a blank standing for a property, the original W3C
  // rules cannot derive the typing that the semantics entails.
  Dictionary dict;
  Term blank = dict.Blank("P");
  Term p = dict.Iri("p");
  Term b = dict.Iri("b");
  Term x = dict.Iri("x");
  Term y = dict.Iri("y");
  Graph g{Triple(p, kSp, blank), Triple(blank, vocab::kDom, b),
          Triple(x, p, y)};
  Graph full = RdfsClosureWithRules(g, RuleSet::All());
  Graph pre_marin = RdfsClosureWithRules(g, RuleSet::PreMarin());
  Triple derived(x, kType, b);
  EXPECT_TRUE(full.Contains(derived));
  EXPECT_FALSE(pre_marin.Contains(derived));
  EXPECT_TRUE(pre_marin.IsSubgraphOf(full));
}

TEST(RuleSet, PreMarinStillDoesDirectDomTyping) {
  Dictionary dict;
  Graph g = Data(&dict, "p dom c .\nx p y .");
  Graph pre_marin = RdfsClosureWithRules(g, RuleSet::PreMarin());
  EXPECT_TRUE(pre_marin.Contains(
      Triple(dict.Iri("x"), kType, dict.Iri("c"))));
}

TEST(RuleSet, PreMarinAgreesOnExplicitSpChains) {
  // When the property hierarchy is over URIs, rule (3) rewrites uses
  // upward explicitly and direct dom typing catches up — Marin's premise
  // only matters when the superproperty cannot appear in predicate
  // position (a blank).
  Dictionary dict;
  Graph g = Data(&dict,
                 "p sp q .\n"
                 "q dom c .\n"
                 "x p y .\n");
  Graph full = RdfsClosureWithRules(g, RuleSet::All());
  Graph pre_marin = RdfsClosureWithRules(g, RuleSet::PreMarin());
  EXPECT_EQ(full, pre_marin);
}

TEST(RuleSet, WithoutTransitivityChainsStayOpen) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\nb sc c .");
  RuleSet rules;
  rules.sc_transitivity = false;
  Graph cl = RdfsClosureWithRules(g, rules);
  EXPECT_FALSE(cl.Contains(
      Triple(dict.Iri("a"), kSc, dict.Iri("c"))));
  Graph full = RdfsClosureWithRules(g, RuleSet::All());
  EXPECT_TRUE(full.Contains(Triple(dict.Iri("a"), kSc, dict.Iri("c"))));
}

TEST(RuleSet, WithoutScTypingNoLifting) {
  Dictionary dict;
  Graph g = Data(&dict, "a sc b .\nx type a .");
  RuleSet rules;
  rules.sc_typing = false;
  Graph cl = RdfsClosureWithRules(g, rules);
  EXPECT_FALSE(cl.Contains(Triple(dict.Iri("x"), kType, dict.Iri("b"))));
}

TEST(RuleSet, WithoutReflexivityNoTautologies) {
  Dictionary dict;
  Graph g = Data(&dict, "x p y .");
  RuleSet rules;
  rules.reflexivity = false;
  Graph cl = RdfsClosureWithRules(g, rules);
  EXPECT_EQ(cl, g);  // nothing derivable without reflexivity seeds
}

TEST(RuleSet, WithoutSpInheritanceUsesDoNotPropagate) {
  Dictionary dict;
  Graph g = Data(&dict, "p sp q .\nx p y .");
  RuleSet rules;
  rules.sp_inheritance = false;
  Graph cl = RdfsClosureWithRules(g, rules);
  EXPECT_FALSE(cl.Contains(
      Triple(dict.Iri("x"), dict.Iri("q"), dict.Iri("y"))));
}

TEST(RuleSet, EveryAblationIsSubsetOfFull) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "p sp q .\n"
                 "q dom a .\n"
                 "q range c .\n"
                 "x p y .\n"
                 "u type a .\n");
  Graph full = RdfsClosureWithRules(g, RuleSet::All());
  for (int bit = 0; bit < 8; ++bit) {
    RuleSet rules;
    switch (bit) {
      case 0: rules.sp_transitivity = false; break;
      case 1: rules.sp_inheritance = false; break;
      case 2: rules.sc_transitivity = false; break;
      case 3: rules.sc_typing = false; break;
      case 4: rules.dom_typing = false; break;
      case 5: rules.range_typing = false; break;
      case 6: rules.reflexivity = false; break;
      case 7: rules.marin_subproperty_typing = false; break;
    }
    Graph ablated = RdfsClosureWithRules(g, rules);
    EXPECT_TRUE(ablated.IsSubgraphOf(full)) << "ablation bit " << bit;
    EXPECT_TRUE(g.IsSubgraphOf(ablated)) << "ablation bit " << bit;
  }
}

}  // namespace
}  // namespace swdb
