// Randomized cross-checks of the worklist closure engine against the
// naive rule-enumeration reference on *pathological* graphs: reserved
// vocabulary appearing in subject/object positions, sp edges into the
// vocabulary, blank properties — every interaction Note 2.4 and
// Example 3.15 warn about.

#include <gtest/gtest.h>

#include "inference/closure.h"
#include "model/interpretation.h"
#include "model/canonical.h"
#include "rdf/graph.h"
#include "util/rng.h"

namespace swdb {
namespace {

// A random graph over a tiny universe that *includes* the five reserved
// terms as first-class citizens in every position (predicate positions
// keep IRIs only, per well-formedness).
Graph PathologicalGraph(Dictionary* dict, Rng* rng, uint32_t triples) {
  std::vector<Term> names = {
      vocab::kSp,          vocab::kSc,          vocab::kType,
      vocab::kDom,         vocab::kRange,       dict->Iri("fz:a"),
      dict->Iri("fz:b"),   dict->Iri("fz:p"),   dict->Iri("fz:q"),
      dict->Blank("fzX"),  dict->Blank("fzY"),
  };
  Graph g;
  for (uint32_t i = 0; i < triples; ++i) {
    Term s = names[rng->Below(names.size())];
    Term p = names[rng->Below(names.size())];
    Term o = names[rng->Below(names.size())];
    Triple t(s, p, o);
    if (t.IsWellFormedData()) g.Insert(t);
  }
  return g;
}

class ClosureFuzz : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ClosureFuzz,
                         ::testing::Range<uint64_t>(1, 41));

TEST_P(ClosureFuzz, WorklistMatchesNaiveOnPathologicalGraphs) {
  Dictionary dict;
  Rng rng(GetParam());
  Graph g = PathologicalGraph(&dict, &rng, 4 + rng.Below(6));
  Graph fast = RdfsClosure(g);
  Graph naive = RdfsClosureNaive(g);
  EXPECT_EQ(fast, naive) << "seed " << GetParam();
}

TEST_P(ClosureFuzz, MembershipFallbackMatchesOnPathologicalGraphs) {
  Dictionary dict;
  Rng rng(GetParam() + 1000);
  Graph g = PathologicalGraph(&dict, &rng, 4 + rng.Below(6));
  ClosureMembership membership(g);
  Graph cl = RdfsClosure(g);
  for (const Triple& t : cl) {
    EXPECT_TRUE(membership.Contains(t)) << "seed " << GetParam();
  }
  // Sample some non-members.
  std::vector<Term> universe = g.Universe();
  if (universe.empty()) return;
  for (int i = 0; i < 30; ++i) {
    Term s = universe[rng.Below(universe.size())];
    Term p = universe[rng.Below(universe.size())];
    Term o = universe[rng.Below(universe.size())];
    if (!p.IsIri()) continue;
    Triple t(s, p, o);
    EXPECT_EQ(membership.Contains(t), cl.Contains(t))
        << "seed " << GetParam();
  }
}

TEST_P(ClosureFuzz, CanonicalModelIsAModelEvenForPathologicalGraphs) {
  Dictionary dict;
  Rng rng(GetParam() + 2000);
  Graph g = PathologicalGraph(&dict, &rng, 3 + rng.Below(5));
  Interpretation canonical = CanonicalModel(g, &dict);
  EXPECT_TRUE(canonical.CheckRdfsConditions().ok())
      << "seed " << GetParam() << ": "
      << canonical.CheckRdfsConditions().ToString();
  EXPECT_TRUE(SatisfiesSimple(canonical, g)) << "seed " << GetParam();
}

TEST_P(ClosureFuzz, SemanticClosureMatchesOnPathologicalGraphs) {
  Dictionary dict;
  Rng rng(GetParam() + 3000);
  Graph g = PathologicalGraph(&dict, &rng, 3 + rng.Below(5));
  EXPECT_EQ(SemanticClosure(g, &dict), RdfsClosure(g))
      << "seed " << GetParam();
}

}  // namespace
}  // namespace swdb
