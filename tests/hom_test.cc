#include "rdf/hom.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "util/str.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::G;

class HomTest : public ::testing::Test {
 protected:
  Dictionary dict_;
};

TEST_F(HomTest, GroundSubgraphMaps) {
  Graph g1 = Data(&dict_, "a p b .\nb p c .");
  Graph g2 = Data(&dict_, "a p b .");
  EXPECT_TRUE(HasHomomorphism(g2, g1));
  EXPECT_FALSE(HasHomomorphism(g1, g2));
}

TEST_F(HomTest, BlankMapsToUri) {
  Graph pattern = Data(&dict_, "_:X p b .");
  Graph target = Data(&dict_, "a p b .");
  Result<std::optional<TermMap>> r = FindHomomorphism(pattern, target);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ((*r)->Apply(dict_.Blank("X")), dict_.Iri("a"));
}

TEST_F(HomTest, SharedBlankMustAgree) {
  Graph pattern = Data(&dict_, "_:X p b .\n_:X q c .");
  Graph target_ok = Data(&dict_, "a p b .\na q c .");
  Graph target_bad = Data(&dict_, "a p b .\nd q c .");
  EXPECT_TRUE(HasHomomorphism(pattern, target_ok));
  EXPECT_FALSE(HasHomomorphism(pattern, target_bad));
}

TEST_F(HomTest, RepeatedBlankInOneTriple) {
  Graph pattern = Data(&dict_, "_:X p _:X .");
  Graph no_loop = Data(&dict_, "a p b .");
  Graph loop = Data(&dict_, "a p a .");
  EXPECT_FALSE(HasHomomorphism(pattern, no_loop));
  EXPECT_TRUE(HasHomomorphism(pattern, loop));
}

TEST_F(HomTest, EmptyPatternAlwaysMaps) {
  Graph empty;
  Graph target = Data(&dict_, "a p b .");
  EXPECT_TRUE(HasHomomorphism(empty, target));
  EXPECT_TRUE(HasHomomorphism(empty, empty));
}

TEST_F(HomTest, NonEmptyPatternNeverMapsToEmpty) {
  Graph pattern = Data(&dict_, "_:X p _:Y .");
  EXPECT_FALSE(HasHomomorphism(pattern, Graph()));
}

TEST_F(HomTest, VariablesInPatternsBindLikeBlanks) {
  Graph pattern = G(&dict_, "?S ?P ?O .");
  Graph target = Data(&dict_, "a p b .");
  PatternMatcher matcher(pattern.triples(), &target);
  size_t solutions = 0;
  Status s = matcher.Enumerate([&](const TermMap& mu) {
    EXPECT_EQ(mu.Apply(dict_.Var("S")), dict_.Iri("a"));
    EXPECT_EQ(mu.Apply(dict_.Var("P")), dict_.Iri("p"));
    EXPECT_EQ(mu.Apply(dict_.Var("O")), dict_.Iri("b"));
    ++solutions;
    return true;
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(solutions, 1u);
}

TEST_F(HomTest, EnumerationIsDuplicateFree) {
  Graph pattern = G(&dict_, "?X p ?Y .\n?Y p ?Z .");
  Graph target = Data(&dict_, "a p b .\nb p c .\nb p d .");
  PatternMatcher matcher(pattern.triples(), &target);
  std::vector<std::vector<Term>> seen;
  Status s = matcher.Enumerate([&](const TermMap& mu) {
    seen.push_back({mu.Apply(dict_.Var("X")), mu.Apply(dict_.Var("Y")),
                    mu.Apply(dict_.Var("Z"))});
    return true;
  });
  EXPECT_TRUE(s.ok());
  std::sort(seen.begin(), seen.end());
  auto dup = std::adjacent_find(seen.begin(), seen.end());
  EXPECT_EQ(dup, seen.end());
  EXPECT_EQ(seen.size(), 2u);  // (a,b,c) and (a,b,d)
}

TEST_F(HomTest, BudgetExhaustionReportsLimitExceeded) {
  // A 10-variable clique pattern against a large random-ish target with
  // a tiny budget must hit the limit.
  Graph pattern;
  Term p = dict_.Iri("p");
  std::vector<Term> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(dict_.Var(NumberedName("v", i)));
  for (Term x : vars) {
    for (Term y : vars) {
      if (x != y) pattern.Insert(x, p, y);
    }
  }
  Graph target;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i != j && (i + j) % 3 != 0) {
        target.Insert(dict_.Iri(NumberedName("n", i)), p,
                      dict_.Iri(NumberedName("n", j)));
      }
    }
  }
  MatchOptions options;
  options.max_steps = 5;
  PatternMatcher matcher(pattern.triples(), &target, options);
  size_t count = 0;
  Status s = matcher.Enumerate([&](const TermMap&) {
    ++count;
    return true;
  });
  EXPECT_EQ(s.code(), StatusCode::kLimitExceeded);
}

TEST_F(HomTest, SimpleEntailsDirection) {
  // Thm 2.8(2): G1 ⊨ G2 iff there is a map G2 → G1.
  Graph g1 = Data(&dict_, "a p b .");
  Graph g2 = Data(&dict_, "_:X p b .");
  EXPECT_TRUE(SimpleEntails(g1, g2));   // X → a
  EXPECT_FALSE(SimpleEntails(g2, g1));  // a is not in g2
}

TEST_F(HomTest, EntailmentIsReflexiveAndTransitive) {
  Graph g1 = Data(&dict_, "a p b .\nb p c .");
  Graph g2 = Data(&dict_, "_:X p _:Y .\n_:Y p _:Z .");
  Graph g3 = Data(&dict_, "_:U p _:V .");
  EXPECT_TRUE(SimpleEntails(g1, g1));
  EXPECT_TRUE(SimpleEntails(g1, g2));
  EXPECT_TRUE(SimpleEntails(g2, g3));
  EXPECT_TRUE(SimpleEntails(g1, g3));
}

TEST_F(HomTest, EquivalenceOfBlankRenamings) {
  Graph g1 = Data(&dict_, "_:X p _:Y .");
  Graph g2 = Data(&dict_, "_:U p _:V .");
  EXPECT_TRUE(SimpleEquivalent(g1, g2));
}

TEST_F(HomTest, LeanAndNonLeanEquivalent) {
  // {(a,p,X)} ≡ {(a,p,X),(a,p,Y)}.
  Graph lean = Data(&dict_, "a p _:X .");
  Graph redundant = Data(&dict_, "a p _:X .\na p _:Y .");
  EXPECT_TRUE(SimpleEquivalent(lean, redundant));
}

TEST_F(HomTest, GroundTriplePrefilterRejectsEarly) {
  Graph pattern = Data(&dict_, "a p b .\n_:X p c .");
  Graph target = Data(&dict_, "_:X p c .\nd p c .");  // lacks ground (a,p,b)
  EXPECT_FALSE(HasHomomorphism(pattern, target));
}

}  // namespace
}  // namespace swdb
