#include "rdf/hom.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testutil.h"
#include "util/str.h"

namespace swdb {
namespace {

using swdb::testing::Data;
using swdb::testing::G;

class HomTest : public ::testing::Test {
 protected:
  Dictionary dict_;
};

TEST_F(HomTest, GroundSubgraphMaps) {
  Graph g1 = Data(&dict_, "a p b .\nb p c .");
  Graph g2 = Data(&dict_, "a p b .");
  EXPECT_TRUE(HasHomomorphism(g2, g1));
  EXPECT_FALSE(HasHomomorphism(g1, g2));
}

TEST_F(HomTest, BlankMapsToUri) {
  Graph pattern = Data(&dict_, "_:X p b .");
  Graph target = Data(&dict_, "a p b .");
  Result<std::optional<TermMap>> r = FindHomomorphism(pattern, target);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ((*r)->Apply(dict_.Blank("X")), dict_.Iri("a"));
}

TEST_F(HomTest, SharedBlankMustAgree) {
  Graph pattern = Data(&dict_, "_:X p b .\n_:X q c .");
  Graph target_ok = Data(&dict_, "a p b .\na q c .");
  Graph target_bad = Data(&dict_, "a p b .\nd q c .");
  EXPECT_TRUE(HasHomomorphism(pattern, target_ok));
  EXPECT_FALSE(HasHomomorphism(pattern, target_bad));
}

TEST_F(HomTest, RepeatedBlankInOneTriple) {
  Graph pattern = Data(&dict_, "_:X p _:X .");
  Graph no_loop = Data(&dict_, "a p b .");
  Graph loop = Data(&dict_, "a p a .");
  EXPECT_FALSE(HasHomomorphism(pattern, no_loop));
  EXPECT_TRUE(HasHomomorphism(pattern, loop));
}

TEST_F(HomTest, EmptyPatternAlwaysMaps) {
  Graph empty;
  Graph target = Data(&dict_, "a p b .");
  EXPECT_TRUE(HasHomomorphism(empty, target));
  EXPECT_TRUE(HasHomomorphism(empty, empty));
}

TEST_F(HomTest, NonEmptyPatternNeverMapsToEmpty) {
  Graph pattern = Data(&dict_, "_:X p _:Y .");
  EXPECT_FALSE(HasHomomorphism(pattern, Graph()));
}

TEST_F(HomTest, VariablesInPatternsBindLikeBlanks) {
  Graph pattern = G(&dict_, "?S ?P ?O .");
  Graph target = Data(&dict_, "a p b .");
  PatternMatcher matcher(pattern.triples(), &target);
  size_t solutions = 0;
  Status s = matcher.Enumerate([&](const TermMap& mu) {
    EXPECT_EQ(mu.Apply(dict_.Var("S")), dict_.Iri("a"));
    EXPECT_EQ(mu.Apply(dict_.Var("P")), dict_.Iri("p"));
    EXPECT_EQ(mu.Apply(dict_.Var("O")), dict_.Iri("b"));
    ++solutions;
    return true;
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(solutions, 1u);
}

TEST_F(HomTest, EnumerationIsDuplicateFree) {
  Graph pattern = G(&dict_, "?X p ?Y .\n?Y p ?Z .");
  Graph target = Data(&dict_, "a p b .\nb p c .\nb p d .");
  PatternMatcher matcher(pattern.triples(), &target);
  std::vector<std::vector<Term>> seen;
  Status s = matcher.Enumerate([&](const TermMap& mu) {
    seen.push_back({mu.Apply(dict_.Var("X")), mu.Apply(dict_.Var("Y")),
                    mu.Apply(dict_.Var("Z"))});
    return true;
  });
  EXPECT_TRUE(s.ok());
  std::sort(seen.begin(), seen.end());
  auto dup = std::adjacent_find(seen.begin(), seen.end());
  EXPECT_EQ(dup, seen.end());
  EXPECT_EQ(seen.size(), 2u);  // (a,b,c) and (a,b,d)
}

TEST_F(HomTest, BudgetExhaustionReportsLimitExceeded) {
  // A 10-variable clique pattern against a large random-ish target with
  // a tiny budget must hit the limit.
  Graph pattern;
  Term p = dict_.Iri("p");
  std::vector<Term> vars;
  for (int i = 0; i < 6; ++i) vars.push_back(dict_.Var(NumberedName("v", i)));
  for (Term x : vars) {
    for (Term y : vars) {
      if (x != y) pattern.Insert(x, p, y);
    }
  }
  Graph target;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i != j && (i + j) % 3 != 0) {
        target.Insert(dict_.Iri(NumberedName("n", i)), p,
                      dict_.Iri(NumberedName("n", j)));
      }
    }
  }
  MatchOptions options;
  options.max_steps = 5;
  PatternMatcher matcher(pattern.triples(), &target, options);
  size_t count = 0;
  Status s = matcher.Enumerate([&](const TermMap&) {
    ++count;
    return true;
  });
  EXPECT_EQ(s.code(), StatusCode::kLimitExceeded);
}

TEST_F(HomTest, SimpleEntailsDirection) {
  // Thm 2.8(2): G1 ⊨ G2 iff there is a map G2 → G1.
  Graph g1 = Data(&dict_, "a p b .");
  Graph g2 = Data(&dict_, "_:X p b .");
  EXPECT_TRUE(SimpleEntails(g1, g2));   // X → a
  EXPECT_FALSE(SimpleEntails(g2, g1));  // a is not in g2
}

TEST_F(HomTest, EntailmentIsReflexiveAndTransitive) {
  Graph g1 = Data(&dict_, "a p b .\nb p c .");
  Graph g2 = Data(&dict_, "_:X p _:Y .\n_:Y p _:Z .");
  Graph g3 = Data(&dict_, "_:U p _:V .");
  EXPECT_TRUE(SimpleEntails(g1, g1));
  EXPECT_TRUE(SimpleEntails(g1, g2));
  EXPECT_TRUE(SimpleEntails(g2, g3));
  EXPECT_TRUE(SimpleEntails(g1, g3));
}

TEST_F(HomTest, EquivalenceOfBlankRenamings) {
  Graph g1 = Data(&dict_, "_:X p _:Y .");
  Graph g2 = Data(&dict_, "_:U p _:V .");
  EXPECT_TRUE(SimpleEquivalent(g1, g2));
}

TEST_F(HomTest, LeanAndNonLeanEquivalent) {
  // {(a,p,X)} ≡ {(a,p,X),(a,p,Y)}.
  Graph lean = Data(&dict_, "a p _:X .");
  Graph redundant = Data(&dict_, "a p _:X .\na p _:Y .");
  EXPECT_TRUE(SimpleEquivalent(lean, redundant));
}

TEST_F(HomTest, GroundTriplePrefilterRejectsEarly) {
  Graph pattern = Data(&dict_, "a p b .\n_:X p c .");
  Graph target = Data(&dict_, "_:X p c .\nd p c .");  // lacks ground (a,p,b)
  EXPECT_FALSE(HasHomomorphism(pattern, target));
}

TEST_F(HomTest, TrySimpleEntailsReportsBudgetInsteadOfAborting) {
  // The same adversarial shape as BudgetExhaustionReportsLimitExceeded:
  // the Try API must surface kLimitExceeded as a value, not crash.
  Graph pattern;
  Graph target;
  Term p = dict_.Iri("p");
  std::vector<Term> blanks;
  for (int i = 0; i < 6; ++i) {
    blanks.push_back(dict_.Blank(NumberedName("b", i)));
  }
  for (Term x : blanks) {
    for (Term y : blanks) {
      if (x != y) pattern.Insert(x, p, y);
    }
  }
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      if (i != j && (i + j) % 3 != 0) {
        target.Insert(dict_.Iri(NumberedName("n", i)), p,
                      dict_.Iri(NumberedName("n", j)));
      }
    }
  }
  MatchOptions options;
  options.max_steps = 5;
  Result<bool> r = TrySimpleEntails(target, pattern, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kLimitExceeded);
}

TEST_F(HomTest, StatsCountNodesCandidatesAndSolutions) {
  Graph pattern = G(&dict_, "?X p ?Y .");
  Graph target = Data(&dict_, "a p b .\na p c .\nb p d .");
  MatchStats stats;
  MatchOptions options;
  options.stats = &stats;
  PatternMatcher matcher(pattern, &target, options);
  size_t solutions = 0;
  Status s = matcher.Enumerate([&solutions](const TermMap&) {
    ++solutions;
    return true;
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(solutions, 3u);
  // One node resolves the predicate range once; its three candidates all
  // bind and reach a solution leaf.
  EXPECT_EQ(stats.nodes_expanded, 1u);
  EXPECT_EQ(stats.candidates_scanned, 3u);
  EXPECT_EQ(stats.binds_attempted, 3u);
  EXPECT_EQ(stats.solutions_found, 3u);
  EXPECT_EQ(stats.index_hits[static_cast<size_t>(IndexOrder::kPso)], 1u);
  EXPECT_EQ(stats.steps_used, matcher.steps_used());
  EXPECT_GE(stats.selectivity_recomputes, 1u);
  EXPECT_EQ(stats.steps_used, 4u);  // root node + three solution leaves
}

TEST_F(HomTest, BudgetExhaustionMidEnumerationKeepsPartialSolutions) {
  Graph pattern = G(&dict_, "?X p ?Y .");
  Graph target = Data(&dict_, "a p b .\na p c .\nb p d .");
  MatchOptions options;
  options.max_steps = 3;  // root + two solution leaves, then exhausted
  PatternMatcher matcher(pattern, &target, options);
  size_t solutions = 0;
  Status s = matcher.Enumerate([&solutions](const TermMap&) {
    ++solutions;
    return true;
  });
  EXPECT_EQ(s.code(), StatusCode::kLimitExceeded);
  EXPECT_EQ(solutions, 2u);  // partial enumeration was still delivered
}

TEST_F(HomTest, InjectiveBlanksInteractWithBlanksToBlanksOnly) {
  MatchOptions options;
  options.blanks_to_blanks_only = true;
  options.injective_blanks = true;

  Graph pattern = Data(&dict_, "_:A p _:B .");
  // No blanks in the target: blanks_to_blanks_only leaves no images.
  Graph ground_target = Data(&dict_, "a p b .");
  PatternMatcher no_blanks(pattern, &ground_target, options);
  Result<std::optional<TermMap>> r = no_blanks.FindAny();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());

  // A single blank self-loop satisfies blanks_to_blanks_only but not
  // injectivity (A and B would share the image).
  Graph loop_target = Data(&dict_, "_:U p _:U .");
  PatternMatcher loop(pattern, &loop_target, options);
  r = loop.FindAny();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());

  // Injectivity alone (without blanks_to_blanks_only) allows mapping A
  // and B to the two distinct URIs.
  MatchOptions injective_only;
  injective_only.injective_blanks = true;
  PatternMatcher uris(pattern, &ground_target, injective_only);
  r = uris.FindAny();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());

  // Two distinct blanks satisfy both restrictions.
  Graph two_blanks = Data(&dict_, "_:U p _:V .");
  PatternMatcher ok(pattern, &two_blanks, options);
  r = ok.FindAny();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_NE((*r)->Apply(dict_.Blank("A")), (*r)->Apply(dict_.Blank("B")));
}

TEST_F(HomTest, ExcludeTripleOnGroundPattern) {
  Graph pattern = Data(&dict_, "a p b .");
  Graph target = Data(&dict_, "a p b .\nb p c .");
  MatchOptions options;
  options.exclude_triple =
      Triple(dict_.Iri("a"), dict_.Iri("p"), dict_.Iri("b"));
  PatternMatcher matcher(pattern, &target, options);
  size_t solutions = 0;
  Status s = matcher.Enumerate([&solutions](const TermMap&) {
    ++solutions;
    return true;
  });
  // The ground prefilter must honour the exclusion: the pattern's only
  // support in the target is the excluded triple.
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(solutions, 0u);

  // Excluding an unrelated triple leaves the (empty-map) solution.
  matcher.set_exclude_triple(
      Triple(dict_.Iri("b"), dict_.Iri("p"), dict_.Iri("c")));
  solutions = 0;
  s = matcher.Enumerate([&solutions](const TermMap&) {
    ++solutions;
    return true;
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(solutions, 1u);
}

TEST_F(HomTest, SetTargetRebindsCompiledPattern) {
  Graph pattern = Data(&dict_, "_:X p c .");
  Graph with = Data(&dict_, "a p c .");
  Graph without = Data(&dict_, "a p b .");
  PatternMatcher matcher(pattern, &with);
  Result<std::optional<TermMap>> r = matcher.FindAny();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->has_value());
  matcher.set_target(&without);
  r = matcher.FindAny();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

TEST_F(HomTest, EnumerationOrderIsDeterministic) {
  // Regression pin for the dense-binding rewrite: candidates are walked
  // in index order and the most-constrained-first pick breaks ties by
  // pattern position, so the solution order is fully determined.
  Graph pattern = G(&dict_, "?X p ?Y .\n?Y p ?Z .");
  Graph target = Data(&dict_, "a p b .\nb p c .\nb p d .");
  auto run = [&]() {
    std::vector<std::vector<Term>> order;
    PatternMatcher matcher(pattern, &target);
    Status s = matcher.Enumerate([&](const TermMap& mu) {
      order.push_back({mu.Apply(dict_.Var("X")), mu.Apply(dict_.Var("Y")),
                       mu.Apply(dict_.Var("Z"))});
      return true;
    });
    EXPECT_TRUE(s.ok());
    return order;
  };
  std::vector<std::vector<Term>> first = run();
  ASSERT_EQ(first.size(), 2u);
  std::vector<std::vector<Term>> expected = {
      {dict_.Iri("a"), dict_.Iri("b"), dict_.Iri("c")},
      {dict_.Iri("a"), dict_.Iri("b"), dict_.Iri("d")},
  };
  EXPECT_EQ(first, expected);
  EXPECT_EQ(run(), first);  // stable across repeated runs
}

TEST_F(HomTest, StaticOrderAgreesWithDynamicOrder) {
  Graph pattern = G(&dict_, "?X p ?Y .\n?Y q ?Z .\n?Z p ?X .");
  Graph target = Data(&dict_,
                      "a p b .\nb q c .\nc p a .\n"
                      "b p c .\nc q a .\na q b .");
  auto solutions = [&](bool static_order) {
    MatchOptions options;
    options.static_order = static_order;
    PatternMatcher matcher(pattern, &target, options);
    std::vector<std::vector<Term>> out;
    Status s = matcher.Enumerate([&](const TermMap& mu) {
      out.push_back({mu.Apply(dict_.Var("X")), mu.Apply(dict_.Var("Y")),
                     mu.Apply(dict_.Var("Z"))});
      return true;
    });
    EXPECT_TRUE(s.ok());
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(solutions(false), solutions(true));
}

TEST_F(HomTest, RepeatedVariableAcrossPositionsOfOneTriple) {
  // (X, p, X) with X already bound by a neighbouring triple exercises
  // the within-triple repeated-slot check of the dense binder.
  Graph pattern = G(&dict_, "?X p ?X .\n?X q c .");
  Graph target = Data(&dict_, "a p a .\na q c .\nb p b .");
  PatternMatcher matcher(pattern, &target);
  std::vector<Term> xs;
  Status s = matcher.Enumerate([&](const TermMap& mu) {
    xs.push_back(mu.Apply(dict_.Var("X")));
    return true;
  });
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_EQ(xs[0], dict_.Iri("a"));
}

TEST_F(HomTest, RepeatedSlotFastPathFiltersResiduals) {
  // Unbound repeated slot (X, p, X): the index range is the whole p run,
  // and the matcher's pair-equality fast path must keep exactly the
  // diagonal rows, in range order, with the residual rejects counted as
  // scanned but never entering TryBind.
  Graph target;
  Term p = dict_.Iri("p");
  for (uint32_t i = 0; i < 40; ++i) {
    Term a = dict_.Iri("n" + std::to_string(i));
    Term b = dict_.Iri("n" + std::to_string((i + 1) % 40));
    target.Insert(Triple(a, p, b));  // off-diagonal
    if (i % 5 == 0) target.Insert(Triple(a, p, a));  // diagonal
  }
  Graph pattern = G(&dict_, "?X p ?X .");
  MatchStats stats;
  MatchOptions options;
  options.stats = &stats;
  PatternMatcher matcher(pattern, &target, options);
  std::vector<Term> xs;
  ASSERT_TRUE(matcher
                  .Enumerate([&](const TermMap& mu) {
                    xs.push_back(mu.Apply(dict_.Var("X")));
                    return true;
                  })
                  .ok());
  ASSERT_EQ(xs.size(), 8u);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));  // pso range order
  EXPECT_EQ(stats.candidates_scanned, target.size());
  EXPECT_EQ(stats.binds_attempted, 8u);
  EXPECT_EQ(stats.solutions_found, 8u);

  // Excluding one diagonal row drops exactly that solution.
  MatchStats stats2;
  options.stats = &stats2;
  options.exclude_triple = Triple(dict_.Iri("n0"), p, dict_.Iri("n0"));
  PatternMatcher excl(pattern, &target, options);
  size_t count = 0;
  ASSERT_TRUE(excl.Enumerate([&](const TermMap&) {
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 7u);
  EXPECT_EQ(stats2.binds_attempted, 7u);
}

TEST_F(HomTest, EnumerateSeededMatchesFilteredEnumerate) {
  Graph pattern = G(&dict_, "?X p ?Y .\n?Y q ?Z .");
  Graph target = Data(&dict_,
                      "a p b .\na p c .\nd p b .\n"
                      "b q e .\nb q f .\nc q e .");
  PatternMatcher matcher(pattern, &target);
  // Reference: full enumeration filtered on X = a.
  std::vector<std::vector<Term>> expected;
  ASSERT_TRUE(matcher
                  .Enumerate([&](const TermMap& mu) {
                    if (mu.Apply(dict_.Var("X")) != dict_.Iri("a")) {
                      return true;
                    }
                    expected.push_back({mu.Apply(dict_.Var("X")),
                                        mu.Apply(dict_.Var("Y")),
                                        mu.Apply(dict_.Var("Z"))});
                    return true;
                  })
                  .ok());
  ASSERT_EQ(expected.size(), 3u);
  std::vector<std::vector<Term>> seeded;
  std::vector<std::pair<Term, Term>> seed = {{dict_.Var("X"), dict_.Iri("a")}};
  ASSERT_TRUE(matcher
                  .EnumerateSeeded(seed,
                                   [&](const TermMap& mu) {
                                     seeded.push_back(
                                         {mu.Apply(dict_.Var("X")),
                                          mu.Apply(dict_.Var("Y")),
                                          mu.Apply(dict_.Var("Z"))});
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(seeded, expected);
}

TEST_F(HomTest, EnumerateSeededVerifiesTriplesMadeGroundBySeed) {
  // Seeding both variables grounds both pattern triples; the matcher
  // must verify them via Contains rather than trusting the seed.
  Graph pattern = G(&dict_, "?X p ?Y .\n?X q ?Y .");
  Graph target = Data(&dict_, "a p b .\na q b .\nc p d .");
  PatternMatcher matcher(pattern, &target);
  std::vector<std::pair<Term, Term>> good = {{dict_.Var("X"), dict_.Iri("a")},
                                             {dict_.Var("Y"), dict_.Iri("b")}};
  size_t count = 0;
  ASSERT_TRUE(matcher
                  .EnumerateSeeded(good,
                                   [&](const TermMap&) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 1u);
  // (c, d) supports the p-triple but not the q-triple.
  std::vector<std::pair<Term, Term>> bad = {{dict_.Var("X"), dict_.Iri("c")},
                                            {dict_.Var("Y"), dict_.Iri("d")}};
  count = 0;
  ASSERT_TRUE(matcher
                  .EnumerateSeeded(bad,
                                   [&](const TermMap&) {
                                     ++count;
                                     return true;
                                   })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(HomTest, EnumerateSeededHonoursBlankOptions) {
  Graph pattern = Data(&dict_, "_:A p _:B .");
  Graph target = Data(&dict_, "_:U p _:V .\na p _:V .");
  MatchOptions options;
  options.blanks_to_blanks_only = true;
  options.injective_blanks = true;
  PatternMatcher matcher(pattern, &target, options);
  auto count_with = [&](const std::vector<std::pair<Term, Term>>& seed) {
    size_t count = 0;
    Status s = matcher.EnumerateSeeded(seed, [&](const TermMap&) {
      ++count;
      return true;
    });
    EXPECT_TRUE(s.ok());
    return count;
  };
  // Seeding a blank slot with a URI violates blanks_to_blanks_only.
  EXPECT_EQ(count_with({{dict_.Blank("A"), dict_.Iri("a")}}), 0u);
  // Seeding both blanks to the same image violates injectivity.
  EXPECT_EQ(count_with({{dict_.Blank("A"), dict_.Blank("U")},
                        {dict_.Blank("B"), dict_.Blank("U")}}),
            0u);
  // A blank-to-blank injective seed succeeds.
  EXPECT_EQ(count_with({{dict_.Blank("A"), dict_.Blank("U")}}), 1u);
  // Contradictory duplicate seeds yield zero solutions, not an error.
  EXPECT_EQ(count_with({{dict_.Blank("A"), dict_.Blank("U")},
                        {dict_.Blank("A"), dict_.Blank("V")}}),
            0u);
}

TEST_F(HomTest, EnumerateSeededHonoursStepBudget) {
  Graph pattern = G(&dict_, "?X p ?Y .\n?Y p ?Z .");
  Graph target;
  Term p = dict_.Iri("p");
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      target.Insert(dict_.Iri(NumberedName("n", i)), p,
                    dict_.Iri(NumberedName("n", j)));
    }
  }
  PatternMatcher matcher(pattern.triples(), &target, MatchOptions{});
  matcher.set_max_steps(3);
  std::vector<std::pair<Term, Term>> seed = {{dict_.Var("X"), dict_.Iri("n0")}};
  Status s = matcher.EnumerateSeeded(seed, [](const TermMap&) { return true; });
  EXPECT_EQ(s.code(), StatusCode::kLimitExceeded);
  // Raising the budget back up lets the same matcher finish.
  matcher.set_max_steps(50'000'000);
  size_t count = 0;
  s = matcher.EnumerateSeeded(seed, [&](const TermMap&) {
    ++count;
    return true;
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(count, 400u);  // Y free over 20 nodes × Z free over 20 nodes
}

}  // namespace
}  // namespace swdb
