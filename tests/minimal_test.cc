#include "normal/minimal.h"

#include <gtest/gtest.h>

#include <set>

#include "inference/closure.h"
#include "rdf/iso.h"
#include "testutil.h"

namespace swdb {
namespace {

using swdb::testing::Data;

TEST(Minimal, Preconditions) {
  Dictionary dict;
  Graph ok = Data(&dict, "a sc b .\nx p y .");
  EXPECT_FALSE(HasReservedVocabInSubjectOrObject(ok));
  EXPECT_TRUE(IsAcyclicScSp(ok));

  Graph vocab_in_subject = Data(&dict, "type dom a .");
  EXPECT_TRUE(HasReservedVocabInSubjectOrObject(vocab_in_subject));

  Graph sc_cycle = Data(&dict, "a sc b .\nb sc a .");
  EXPECT_FALSE(IsAcyclicScSp(sc_cycle));

  Graph sp_cycle = Data(&dict, "p sp q .\nq sp p .");
  EXPECT_FALSE(IsAcyclicScSp(sp_cycle));

  Graph self_loop = Data(&dict, "a sc a .");
  EXPECT_TRUE(IsAcyclicScSp(self_loop));  // trivial loops tolerated
}

TEST(Minimal, RemovesTransitivelyRedundantScTriple) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n");
  Graph minimal = MinimalRepresentation(g);
  EXPECT_EQ(minimal.size(), 2u);
  EXPECT_TRUE(RdfsEquivalent(minimal, g));
  EXPECT_FALSE(minimal.Contains(
      Triple(dict.Iri("a"), vocab::kSc, dict.Iri("c"))));
}

TEST(Minimal, Example314TwoMinimalRepresentations) {
  // Paper Ex. 3.14: b ⇄ c via sp, both sp a. Deleting either (b,sp,a) or
  // (c,sp,a) gives two non-isomorphic reductions (transitive-reduction
  // non-uniqueness on cyclic graphs).
  Dictionary dict;
  Graph g = Data(&dict,
                 "b sp c .\n"
                 "c sp b .\n"
                 "b sp a .\n"
                 "c sp a .\n");
  std::vector<Graph> minimums = AllMinimumRepresentations(g);
  ASSERT_EQ(minimums.size(), 2u);
  for (const Graph& m : minimums) {
    EXPECT_TRUE(RdfsEquivalent(m, g));
    EXPECT_EQ(m.size(), 3u);
  }
  EXPECT_FALSE(AreIsomorphic(minimums[0], minimums[1]));
}

TEST(Minimal, Example315TwoMinimalRepresentationsDespiteAcyclicity) {
  // G = {(a,sc,b), (type,dom,a), (x,type,a), (x,type,b)} has two
  // non-isomorphic minimal representations G1, G2 (paper Ex. 3.15).
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "type dom a .\n"
                 "x type a .\n"
                 "x type b .\n");
  std::vector<Graph> minimums = AllMinimumRepresentations(g);
  ASSERT_EQ(minimums.size(), 2u);
  Graph g1 = Data(&dict, "a sc b .\ntype dom a .\nx type a .");
  Graph g2 = Data(&dict, "a sc b .\ntype dom a .\nx type b .");
  EXPECT_TRUE((minimums[0] == g1 && minimums[1] == g2) ||
              (minimums[0] == g2 && minimums[1] == g1));
  EXPECT_FALSE(AreIsomorphic(g1, g2));
}

TEST(Minimal, Theorem316UniqueMinimumUnderRestrictions) {
  // No reserved vocab in subject/object, acyclic sc/sp → unique minimum.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n"       // redundant
                 "p sp q .\n"
                 "q sp r .\n"
                 "p sp r .\n"       // redundant
                 "x p y .\n"
                 "x q y .\n"        // redundant (p sp q)
                 "p dom c .\n"
                 "x type c .\n");   // redundant (dom typing)
  ASSERT_FALSE(HasReservedVocabInSubjectOrObject(g));
  ASSERT_TRUE(IsAcyclicScSp(g));
  std::vector<Graph> minimums = AllMinimumRepresentations(g);
  ASSERT_EQ(minimums.size(), 1u);
  EXPECT_EQ(minimums[0].size(), 6u);
  // Greedy removal reaches the same unique minimum from any order.
  for (uint64_t seed : {0ULL, 1ULL, 2ULL, 3ULL}) {
    EXPECT_EQ(MinimalRepresentation(g, seed), minimums[0])
        << "seed " << seed;
  }
}

TEST(Minimal, GreedyOrderSensitivityOutsideTheRestrictedClass) {
  // On Example 3.15's graph, different orders can reach different
  // minimal representations.
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "type dom a .\n"
                 "x type a .\n"
                 "x type b .\n");
  std::set<std::vector<Triple>> results;
  for (uint64_t seed = 0; seed < 16; ++seed) {
    results.insert(MinimalRepresentation(g, seed).triples());
  }
  EXPECT_GE(results.size(), 2u);
}

TEST(Minimal, MinimalRepresentationIsAlwaysEquivalentSubgraph) {
  Dictionary dict;
  Graph g = Data(&dict,
                 "a sc b .\n"
                 "b sc c .\n"
                 "a sc c .\n"
                 "u type a .\n"
                 "u type c .\n");
  Graph m = MinimalRepresentation(g, 7);
  EXPECT_TRUE(m.IsSubgraphOf(g));
  EXPECT_TRUE(RdfsEquivalent(m, g));
}

}  // namespace
}  // namespace swdb
